// test_governor.cpp — the contention governor behind the queue-lock
// waiting tiers (runtime/governor.hpp): the spin -> yield -> park
// escalation thresholds of classify(), tier-name parsing, the
// forced-tier override, the waiter/parked censuses, and the governed
// policy's end-to-end escalation on a live word.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "core/waiting.hpp"
#include "runtime/governor.hpp"

namespace hemlock {
namespace {

/// Restores automatic classification however a test exits.
struct ForceGuard {
  ~ForceGuard() { ContentionGovernor::instance().clear_force(); }
};

// ---------------------------------------------- escalation thresholds --
TEST(Governor, ClassifySpinsWhileContendersFitTheCpus) {
  // runnable (waiters + owner) <= cpus: the paper's regime, busy-wait.
  EXPECT_EQ(ContentionGovernor::classify(8, 0), WaitTier::kSpin);
  EXPECT_EQ(ContentionGovernor::classify(8, 7), WaitTier::kSpin);
  EXPECT_EQ(ContentionGovernor::classify(1, 0), WaitTier::kSpin);
  EXPECT_EQ(ContentionGovernor::classify(64, 63), WaitTier::kSpin);
}

TEST(Governor, ClassifyYieldsUnderMildOversubscription) {
  // cpus < runnable <= 2*cpus: surrender timeslices, no syscalls.
  EXPECT_EQ(ContentionGovernor::classify(8, 8), WaitTier::kYield);
  EXPECT_EQ(ContentionGovernor::classify(8, 15), WaitTier::kYield);
  EXPECT_EQ(ContentionGovernor::classify(1, 1), WaitTier::kYield);
  EXPECT_EQ(ContentionGovernor::classify(4, 7), WaitTier::kYield);
}

TEST(Governor, ClassifyParksUnderHeavyOversubscription) {
  // runnable > 2*cpus: spinning starves the owner; sleep in the kernel.
  EXPECT_EQ(ContentionGovernor::classify(8, 16), WaitTier::kPark);
  EXPECT_EQ(ContentionGovernor::classify(1, 2), WaitTier::kPark);
  EXPECT_EQ(ContentionGovernor::classify(1, 15), WaitTier::kPark);
  EXPECT_EQ(ContentionGovernor::classify(4, 100), WaitTier::kPark);
}

TEST(Governor, ClassifyTreatsZeroCpusAsOne) {
  // Defensive: a probe failure must not divide the world by zero.
  EXPECT_EQ(ContentionGovernor::classify(0, 0), WaitTier::kSpin);
  EXPECT_EQ(ContentionGovernor::classify(0, 2), WaitTier::kPark);
}

// -------------------------------------------------------- tier names --
TEST(Governor, TierNamesRoundTrip) {
  for (const WaitTier t :
       {WaitTier::kSpin, WaitTier::kYield, WaitTier::kPark}) {
    WaitTier parsed;
    ASSERT_TRUE(parse_wait_tier(wait_tier_name(t), &parsed))
        << wait_tier_name(t);
    EXPECT_EQ(parsed, t);
  }
  WaitTier unused;
  EXPECT_FALSE(parse_wait_tier(nullptr, &unused));
  EXPECT_FALSE(parse_wait_tier("", &unused));
  EXPECT_FALSE(parse_wait_tier("auto", &unused));   // auto = not a tier
  EXPECT_FALSE(parse_wait_tier("Spin", &unused));   // no fuzzy matching
  EXPECT_FALSE(parse_wait_tier("parked", &unused));
}

// ------------------------------------------------------ live governor --
TEST(Governor, ForcedTierOverridesTheCensus) {
  auto& gov = ContentionGovernor::instance();
  ForceGuard restore;
  for (const WaitTier t :
       {WaitTier::kPark, WaitTier::kYield, WaitTier::kSpin}) {
    gov.force(t);
    EXPECT_TRUE(gov.forced());
    EXPECT_EQ(gov.tier(), t);
  }
  gov.clear_force();
  EXPECT_FALSE(gov.forced());
  // Unforced with no registered waiters: classify(cpus, waiters()).
  EXPECT_EQ(gov.tier(), ContentionGovernor::classify(gov.cpus(),
                                                     gov.waiters()));
}

TEST(Governor, WaiterCensusDrivesAutomaticEscalation) {
  auto& gov = ContentionGovernor::instance();
  ForceGuard restore;
  gov.clear_force();
  ASSERT_GE(gov.cpus(), 1u);
  const std::uint32_t before = gov.waiters();
  // Register enough fake waiters to push runnable past 2*cpus.
  const std::uint32_t fake = 2 * gov.cpus() + 2;
  for (std::uint32_t i = 0; i < fake; ++i) gov.begin_wait();
  EXPECT_EQ(gov.waiters(), before + fake);
  EXPECT_EQ(gov.tier(), WaitTier::kPark);
  for (std::uint32_t i = 0; i < fake; ++i) gov.end_wait();
  EXPECT_EQ(gov.waiters(), before);
}

TEST(Governor, ParkedCensusBalances) {
  auto& gov = ContentionGovernor::instance();
  std::atomic<std::uint32_t> word{0};
  const std::uint32_t before = gov.parked(&word);
  const std::uint32_t before_total = gov.parked_total();
  gov.begin_park(&word);
  gov.begin_park(&word);
  EXPECT_EQ(gov.parked(&word), before + 2);
  EXPECT_EQ(gov.parked_total(), before_total + 2);
  gov.end_park(&word);
  gov.end_park(&word);
  EXPECT_EQ(gov.parked(&word), before);
  EXPECT_EQ(gov.parked_total(), before_total);
}

// The census is per-lock (address-bucketed), not process-global: a
// sleeper on one lock's word must not make an unrelated lock's
// publisher believe *its* waiters are parked (the ROADMAP's
// cross-lock spurious-wake follow-up).
TEST(Governor, ParkedCensusIsPerAddressBucket) {
  auto& gov = ContentionGovernor::instance();
  // Two words in different buckets; any stride works, the bucket
  // function is exposed so the test can pick a genuine non-collision.
  alignas(64) std::atomic<std::uint32_t> words[64];
  std::atomic<std::uint32_t>* a = &words[0];
  std::atomic<std::uint32_t>* b = nullptr;
  for (auto& w : words) {
    if (ContentionGovernor::park_bucket(&w) !=
        ContentionGovernor::park_bucket(a)) {
      b = &w;
      break;
    }
  }
  ASSERT_NE(b, nullptr) << "bucket function maps 64 spread words to 1 bucket";
  const std::uint32_t a_before = gov.parked(a);
  const std::uint32_t b_before = gov.parked(b);
  gov.begin_park(a);
  EXPECT_EQ(gov.parked(a), a_before + 1);
  EXPECT_EQ(gov.parked(b), b_before);  // unrelated word: unaffected
  gov.end_park(a);
  EXPECT_EQ(gov.parked(a), a_before);
}

// The ParkDiag protocol counters must balance once every thread has
// come home: a joined workload leaves no futex sleep without a return,
// and every publish either issued the wake syscall or was gated off by
// the zero census. (These are the diagnostics the telemetry exporter
// surfaces as the governor block — see docs/OBSERVABILITY.md.)
TEST(Governor, ParkDiagBalancesAfterGovernedParkWorkload) {
  auto& gov = ContentionGovernor::instance();
  auto& d = gov.diag();
  ForceGuard restore;
  gov.force(WaitTier::kPark);

  // mo: relaxed throughout — diagnostic counters read while the only
  // threads that touch them are quiesced (before the workload / after
  // every join).
  const std::uint64_t sleeps0 = d.park_sleeps.load(std::memory_order_relaxed);
  const std::uint64_t wakeups0 =
      d.park_wakeups.load(std::memory_order_relaxed);  // mo: ditto
  const std::uint64_t syscalls0 =
      d.wake_syscalls.load(std::memory_order_relaxed);  // mo: ditto
  const std::uint64_t skips0 =
      d.wake_gate_skips.load(std::memory_order_relaxed);  // mo: ditto
  const std::uint64_t retries0 =
      d.baseline_retries.load(std::memory_order_relaxed);  // mo: ditto

  for (int round = 0; round < 8; ++round) {
    std::atomic<std::uint32_t> word{1};
    std::thread waiter(
        [&] { GovernedWaiting::wait_until(word, std::uint32_t{0}); });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    GovernedWaiting::publish(word, std::uint32_t{0});
    waiter.join();
  }

  const std::uint64_t sleeps =
      d.park_sleeps.load(std::memory_order_relaxed) - sleeps0;  // mo: ditto
  const std::uint64_t wakeups =
      d.park_wakeups.load(std::memory_order_relaxed) - wakeups0;  // mo: ditto
  const std::uint64_t syscalls =
      d.wake_syscalls.load(std::memory_order_relaxed) - syscalls0;  // mo: ditto
  const std::uint64_t skips =
      d.wake_gate_skips.load(std::memory_order_relaxed) - skips0;  // mo: ditto
  const std::uint64_t retries = d.baseline_retries.load(
                                    std::memory_order_relaxed) -  // mo: ditto
                                retries0;

  // Every sleep returned (joined threads cannot still be in futex_wait).
  EXPECT_EQ(sleeps, wakeups);
  // Each of the 8 publishes resolved its wake decision one way or the
  // other (other suites' teardown can add to either side, never remove).
  EXPECT_GE(syscalls + skips, 8u);
  // Park attempts either really slept or aborted in the
  // return-to-baseline window. Not one-per-round: a late-scheduled
  // waiter can find the word already published and never park, so
  // only the aggregate is asserted.
  EXPECT_GE(sleeps + retries, 1u);
}

// Parker and publisher agree on the bucket because they hash the same
// address — the property the publish-side syscall gate relies on.
TEST(Governor, ParkBucketIsStableAndInRange) {
  std::atomic<std::uint32_t> word{0};
  const std::size_t bucket = ContentionGovernor::park_bucket(&word);
  EXPECT_LT(bucket, ContentionGovernor::kParkBuckets);
  EXPECT_EQ(bucket, ContentionGovernor::park_bucket(&word));
}

// ------------------------------------- governed policy, end to end --
// The governed tier must complete a hand-off whatever tier the
// governor currently recommends — including a forced park, where the
// waiter really sleeps in futex_wait and publish() must wake it.
TEST(Governor, GovernedWaitingHandsOffUnderEveryForcedTier) {
  auto& gov = ContentionGovernor::instance();
  ForceGuard restore;
  for (const WaitTier t :
       {WaitTier::kSpin, WaitTier::kYield, WaitTier::kPark}) {
    gov.force(t);
    std::atomic<std::uint32_t> word{1};
    std::thread waiter(
        [&] { GovernedWaiting::wait_until(word, std::uint32_t{0}); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    GovernedWaiting::publish(word, std::uint32_t{0});
    waiter.join();
    EXPECT_EQ(word.load(), 0u) << wait_tier_name(t);
  }
}

}  // namespace
}  // namespace hemlock
