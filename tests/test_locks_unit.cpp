// test_locks_unit.cpp — focused unit tests for individual pieces the
// cross-cutting property suites treat as black boxes: waiting
// policies, the node pool (footnote 5), K42's element recovery, the
// lock registry, and the paper's §2 atomic-operation accounting where
// it is statically checkable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "core/lock_registry.hpp"
#include "core/waiting.hpp"
#include "locks/node_pool.hpp"

namespace hemlock {
namespace {

// ------------------------------------------------ waiting policies --
template <typename Policy>
void policy_handshake_roundtrip() {
  std::atomic<GrantWord> grant{kGrantEmpty};
  constexpr GrantWord kAddr = 0x1000;

  std::thread waiter([&] {
    Policy::wait_and_consume(grant, kAddr);  // consume must clear
  });
  // Publish after a beat, like unlock's handover store.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  grant.store(kAddr, std::memory_order_release);
  Policy::wait_until_empty(grant);  // unlock-side drain
  waiter.join();
  EXPECT_EQ(grant.load(), kGrantEmpty);
}

TEST(WaitingPolicy, PoliteHandshake) {
  policy_handshake_roundtrip<PoliteWaiting>();
}
TEST(WaitingPolicy, CtrCasHandshake) {
  policy_handshake_roundtrip<CtrCasWaiting>();
}
TEST(WaitingPolicy, CtrFaaHandshake) {
  policy_handshake_roundtrip<CtrFaaWaiting>();
}
TEST(WaitingPolicy, AdaptiveHandshake) {
  policy_handshake_roundtrip<AdaptiveWaiting>();
}
TEST(WaitingPolicy, FutexHandshake) {
  policy_handshake_roundtrip<FutexWaiting>();
}
TEST(WaitingPolicy, GovernedGrantHandshake) {
  policy_handshake_roundtrip<GovernedGrantWaiting>();
}

// A waiter for address A must ignore address B (the multi-waiting
// disambiguation primitive, §2.2).
template <typename Policy>
void policy_ignores_other_addresses() {
  std::atomic<GrantWord> grant{kGrantEmpty};
  constexpr GrantWord kMine = 0x2000, kOther = 0x3000;
  std::atomic<bool> consumed{false};
  std::thread waiter([&] {
    Policy::wait_and_consume(grant, kMine);
    consumed = true;
  });
  grant.store(kOther, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(consumed.load());           // other address ignored
  EXPECT_EQ(grant.load(), kOther);         // and NOT consumed
  grant.store(kMine, std::memory_order_release);
  waiter.join();
  EXPECT_TRUE(consumed.load());
  EXPECT_EQ(grant.load(), kGrantEmpty);
}

TEST(WaitingPolicy, PoliteIgnoresOtherAddresses) {
  policy_ignores_other_addresses<PoliteWaiting>();
}
TEST(WaitingPolicy, CtrCasIgnoresOtherAddresses) {
  policy_ignores_other_addresses<CtrCasWaiting>();
}
TEST(WaitingPolicy, CtrFaaIgnoresOtherAddresses) {
  policy_ignores_other_addresses<CtrFaaWaiting>();
}

// ------------------------------------------------------ node pool --
struct PoolNode {
  int payload = 0;
  PoolNode* pool_next = nullptr;
};

TEST(NodePool, ReusesReleasedNodesLifo) {
  PoolNode* a = NodePool<PoolNode>::acquire();
  PoolNode* b = NodePool<PoolNode>::acquire();
  EXPECT_NE(a, b);
  NodePool<PoolNode>::release(a);
  NodePool<PoolNode>::release(b);
  // LIFO: most recently released comes back first (locality, per the
  // paper's footnote 5: "A stack is convenient for locality").
  EXPECT_EQ(NodePool<PoolNode>::acquire(), b);
  EXPECT_EQ(NodePool<PoolNode>::acquire(), a);
  NodePool<PoolNode>::release(a);
  NodePool<PoolNode>::release(b);
}

TEST(NodePool, PerThreadStacksAreIndependent) {
  PoolNode* mine = NodePool<PoolNode>::acquire();
  PoolNode* theirs = nullptr;
  std::thread([&] { theirs = NodePool<PoolNode>::acquire(); }).join();
  EXPECT_NE(mine, theirs);
  NodePool<PoolNode>::release(mine);
  // `theirs` was leaked into the exited thread's (dead) stack — the
  // arena sweeper reclaims it at process exit; minted() only grows.
  EXPECT_GE(NodePool<PoolNode>::minted(), 2u);
}

TEST(NodePool, BoundedMintingUnderReuse) {
  const std::size_t before = NodePool<PoolNode>::minted();
  for (int i = 0; i < 1000; ++i) {
    PoolNode* n = NodePool<PoolNode>::acquire();
    NodePool<PoolNode>::release(n);
  }
  // Steady-state reuse must not mint new nodes.
  EXPECT_LE(NodePool<PoolNode>::minted(), before + 1);
}

TEST(NodePool, McsHighWaterMarkMatchesHeldLocks) {
  // Footnote 5: "the free stack will contain N elements where N is
  // the maximum number of locks concurrently held".
  const std::size_t before = NodePool<McsNode>::minted();
  std::thread([&] {
    std::vector<McsLock> locks(5);
    for (int round = 0; round < 3; ++round) {
      for (auto& l : locks) l.lock();
      for (auto& l : locks) l.unlock();
    }
    // 5 concurrent holds -> at most 5 minted for this thread.
    EXPECT_LE(NodePool<McsNode>::minted(), before + 5);
  }).join();
}

// ------------------------------------------------------- registry --
TEST(LockRegistry, NamesAreUniqueAndComplete) {
  const auto names = lock_names<AllLockTags>();
  EXPECT_GE(names.size(), 18u);
  std::set<std::string> uniq(names.begin(), names.end());
  EXPECT_EQ(uniq.size(), names.size());
  EXPECT_TRUE(uniq.count("hemlock"));
  EXPECT_TRUE(uniq.count("hemlock-"));
  EXPECT_TRUE(uniq.count("mcs"));
  EXPECT_TRUE(uniq.count("clh"));
  EXPECT_TRUE(uniq.count("ticket"));
}

TEST(LockRegistry, DispatchByNameGoesThroughTheFactory) {
  // Runtime name→algorithm dispatch lives in exactly one place: the
  // LockFactory, self-populated from this registry.
  const auto& factory = LockFactory::instance();
  EXPECT_EQ(factory.size(), std::tuple_size_v<AllLockTags>);
  const LockInfo* info = factory.info("hemlock");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->lock_words, lock_traits<Hemlock>::lock_words);
  EXPECT_EQ(info->size_bytes, sizeof(Hemlock));
  EXPECT_EQ(factory.find("no-such-lock"), nullptr);
}

TEST(LockRegistry, PaperFigureSetIsTheFiveCurves) {
  const auto names = lock_names<PaperFigureLockTags>();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "mcs");
  EXPECT_EQ(names[1], "clh");
  EXPECT_EQ(names[2], "ticket");
  EXPECT_EQ(names[3], "hemlock");
  EXPECT_EQ(names[4], "hemlock-");
}

// ------------------------------------------- K42 element recovery --
TEST(McsK42, LockBodyIsSelfContained) {
  // K42's queue element is needed "only while waiting": after lock()
  // returns, no heap/pool nodes are outstanding (everything lives in
  // the lock body or dead stack frames). Just verify heavy reuse
  // works without the node pool being involved at all.
  const std::size_t minted_before = NodePool<McsNode>::minted();
  McsK42Lock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 80000u);
  EXPECT_EQ(NodePool<McsNode>::minted(), minted_before);  // untouched
}

}  // namespace
}  // namespace hemlock
