// test_hemlock.cpp — Hemlock-family semantics beyond the generic lock
// contract: the Grant mailbox protocol (§2), context-freedom,
// multi-waiting disambiguation (§2.2's Figure-1 scenario), the
// fere-local spinning bound (Theorem 10) via the profiler, and the
// per-variant quirks (Overlap's deferred drain, AH's speculative
// store retraction, OHV1's advisory flag).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/hemlock.hpp"
#include "core/hemlock_ah.hpp"
#include "core/hemlock_chain.hpp"
#include "core/hemlock_cv.hpp"
#include "core/hemlock_ohv.hpp"
#include "core/hemlock_overlap.hpp"
#include "locks/clh.hpp"
#include "locks/mcs.hpp"
#include "locks/ticket.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/thread_rec.hpp"
#include "stats/lock_profiler.hpp"

namespace hemlock {
namespace {

GrantWord my_grant() {
  return self().grant.value.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Listing-1 invariant: the Grant word is empty before and after every
// lock/unlock pair (for the variants that maintain it).
template <typename L>
void check_grant_empty_invariant() {
  CacheAligned<L> lock;
  EXPECT_EQ(my_grant(), kGrantEmpty);
  for (int i = 0; i < 1000; ++i) {
    lock.value.lock();
    EXPECT_EQ(my_grant(), kGrantEmpty);
    lock.value.unlock();
    EXPECT_EQ(my_grant(), kGrantEmpty);
  }
}

TEST(HemlockGrant, EmptyBetweenUncontendedOps) {
  check_grant_empty_invariant<Hemlock>();
  check_grant_empty_invariant<HemlockNaive>();
  check_grant_empty_invariant<HemlockFaa>();
  check_grant_empty_invariant<HemlockAh>();
  check_grant_empty_invariant<HemlockOhv2>();
}

// After a contended handover completes (both sides returned), both
// threads' Grant words are empty again.
TEST(HemlockGrant, DrainedAfterContendedHandover) {
  CacheAligned<Hemlock> lock;
  GrantWord waiter_grant_after = 1;  // poison
  std::atomic<bool> held{false};

  lock.value.lock();
  std::thread waiter([&] {
    lock.value.lock();  // blocks until main unlocks
    waiter_grant_after = my_grant();
    lock.value.unlock();
    held.store(true);
  });
  // Let the waiter enqueue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.value.unlock();  // contended path: publish, await acknowledgement
  EXPECT_EQ(my_grant(), kGrantEmpty);  // drain completed before return
  waiter.join();
  EXPECT_TRUE(held.load());
  EXPECT_EQ(waiter_grant_after, kGrantEmpty);
}

// ---------------------------------------------------------------------------
// Context-freedom (§1): unlock needs nothing produced by lock — the
// two can be in different functions with no shared state beyond the
// lock's address and the calling thread's identity.
namespace context_free {
Hemlock g_lock;
void acquire_somewhere() { g_lock.lock(); }
void release_elsewhere() { g_lock.unlock(); }
}  // namespace context_free

TEST(HemlockSemantics, ContextFreeLockUnlockAcrossFunctions) {
  for (int i = 0; i < 100; ++i) {
    context_free::acquire_somewhere();
    context_free::release_elsewhere();
  }
  EXPECT_TRUE(context_free::g_lock.appears_unlocked());
}

// ---------------------------------------------------------------------------
// §2.2 Figure-1 scenario: one thread holds two contended locks; the
// immediate successors of BOTH queues busy-wait on the holder's single
// Grant word, and the address-based protocol routes each lock to the
// right successor regardless of release order.
template <typename L>
void multi_lock_disambiguation(bool release_in_reverse) {
  CacheAligned<L> l1, l2;
  std::atomic<int> got_l1{0}, got_l2{0};
  SpinBarrier enqueued(3);

  l1.value.lock();
  l2.value.lock();

  std::thread w1([&] {
    enqueued.arrive_and_wait();
    l1.value.lock();
    got_l1.store(1 + got_l2.load());  // record relative order
    l1.value.unlock();
  });
  std::thread w2([&] {
    enqueued.arrive_and_wait();
    l2.value.lock();
    got_l2.store(1 + got_l1.load());
    l2.value.unlock();
  });
  enqueued.arrive_and_wait();
  // Both waiters are now (about to be) spinning on OUR Grant word.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  if (release_in_reverse) {
    l2.value.unlock();
    l1.value.unlock();
  } else {
    l1.value.unlock();
    l2.value.unlock();
  }
  w1.join();
  w2.join();
  EXPECT_NE(got_l1.load(), 0);
  EXPECT_NE(got_l2.load(), 0);
}

TEST(HemlockSemantics, MultiWaitingDisambiguationReverseRelease) {
  multi_lock_disambiguation<Hemlock>(true);
  multi_lock_disambiguation<HemlockNaive>(true);
  multi_lock_disambiguation<HemlockFaa>(true);
  multi_lock_disambiguation<HemlockAh>(true);
  multi_lock_disambiguation<HemlockOhv1>(true);
  multi_lock_disambiguation<HemlockOhv2>(true);
  multi_lock_disambiguation<HemlockOverlap>(true);
  multi_lock_disambiguation<HemlockCv>(true);
  multi_lock_disambiguation<HemlockChain>(true);
}

TEST(HemlockSemantics, MultiWaitingDisambiguationForwardRelease) {
  multi_lock_disambiguation<Hemlock>(false);
  multi_lock_disambiguation<HemlockAh>(false);
  multi_lock_disambiguation<HemlockOhv1>(false);
  multi_lock_disambiguation<HemlockOhv2>(false);
  multi_lock_disambiguation<HemlockOverlap>(false);
  multi_lock_disambiguation<HemlockCv>(false);
  multi_lock_disambiguation<HemlockChain>(false);
}

// ---------------------------------------------------------------------------
// Fere-local spinning (Theorem 10): the number of threads spinning on
// one Grant word never exceeds the number of locks its owner holds.
// Reproduced via the profiler: with the leader holding K locks and one
// waiter per lock, max_grant_waiters must be ≤ K (and with this
// schedule, exactly reach K).
TEST(HemlockSemantics, FereLocalSpinningBound) {
  constexpr int kLocks = 4;
  std::vector<CacheAligned<Hemlock>> locks(kLocks);
  ThreadRegistry::reset_profile();
  LockProfiler::enable(true);

  for (auto& l : locks) l.value.lock();
  SpinBarrier enqueued(kLocks + 1);
  std::vector<std::thread> waiters;
  for (int k = 0; k < kLocks; ++k) {
    waiters.emplace_back([&, k] {
      enqueued.arrive_and_wait();
      locks[k].value.lock();
      locks[k].value.unlock();
    });
  }
  enqueued.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (int k = kLocks; k-- > 0;) locks[k].value.unlock();
  for (auto& w : waiters) w.join();

  LockProfiler::enable(false);
  const LockUsageProfile p = collect_lock_usage_profile();
  EXPECT_LE(p.max_grant_waiters, static_cast<std::uint32_t>(kLocks));
  EXPECT_GE(p.max_grant_waiters, 2u);  // schedule guarantees real multi-waiting
  EXPECT_EQ(p.max_locks_held, static_cast<std::uint32_t>(kLocks));
  EXPECT_EQ(p.nested_acquires, static_cast<std::uint64_t>(kLocks - 1));
  EXPECT_FALSE(p.purely_local());
  ThreadRegistry::reset_profile();
}

// With single-lock usage the profile must report purely local
// spinning (the §5.4 LevelDB finding).
TEST(HemlockSemantics, SimpleContentionIsPurelyLocal) {
  CacheAligned<Hemlock> lock;
  ThreadRegistry::reset_profile();
  LockProfiler::enable(true);
  SpinBarrier start(4);
  std::uint64_t counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < 20000; ++i) {
        lock.value.lock();
        ++counter;
        lock.value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  LockProfiler::enable(false);
  const LockUsageProfile p = collect_lock_usage_profile();
  EXPECT_EQ(counter, 80000u);
  EXPECT_LE(p.max_grant_waiters, 1u);
  EXPECT_TRUE(p.purely_local());
  EXPECT_EQ(p.max_locks_held, 1u);
  EXPECT_EQ(p.nested_acquires, 0u);
  ThreadRegistry::reset_profile();
}

// ---------------------------------------------------------------------------
// Overlap variant: unlock returns without waiting for the successor's
// acknowledgement; a subsequent lock() of the SAME lock must stall on
// the residual check rather than corrupting the queue (Appendix A).
TEST(HemlockOverlapTest, ReacquireAfterDeferredHandoverIsSafe) {
  CacheAligned<HemlockOverlap> lock;
  std::uint64_t counter = 0;
  SpinBarrier start(2);
  std::thread peer([&] {
    start.arrive_and_wait();
    for (int i = 0; i < 50000; ++i) {
      lock.value.lock();
      ++counter;
      lock.value.unlock();
    }
  });
  start.arrive_and_wait();
  // Tight relock loop on the same lock maximizes the residual window.
  for (int i = 0; i < 50000; ++i) {
    lock.value.lock();
    ++counter;
    lock.value.unlock();
  }
  peer.join();
  EXPECT_EQ(counter, 100000u);
  // Our grant may still hold the address until the peer's (long
  // gone) acknowledgement; by join() time it must be drained.
  EXPECT_EQ(my_grant(), kGrantEmpty);
}

// ---------------------------------------------------------------------------
// AH variant: the speculative store is retracted on the uncontended
// path (grant must be empty after an uncontended unlock).
TEST(HemlockAhTest, SpeculativeStoreRetractedWhenUncontended) {
  CacheAligned<HemlockAh> lock;
  for (int i = 0; i < 1000; ++i) {
    lock.value.lock();
    lock.value.unlock();
    ASSERT_EQ(my_grant(), kGrantEmpty);
  }
}

// ---------------------------------------------------------------------------
// OHV1: after a contended handover the unlocker's grant may hold an
// advisory flag for ANOTHER held lock, and the fast flag path must
// still hand over correctly. Scenario: hold L1+L2 with one waiter
// each; release L1 (waiter W2's L2-flag may be present), then L2.
TEST(HemlockOhv1Test, AdvisoryFlagSurvivesInterleavedUnlocks) {
  for (int round = 0; round < 50; ++round) {
    CacheAligned<HemlockOhv1> l1, l2;
    std::atomic<int> done{0};
    l1.value.lock();
    l2.value.lock();
    std::thread w1([&] {
      l1.value.lock();
      l1.value.unlock();
      done.fetch_add(1);
    });
    std::thread w2([&] {
      l2.value.lock();
      l2.value.unlock();
      done.fetch_add(1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    l1.value.unlock();
    l2.value.unlock();
    w1.join();
    w2.join();
    EXPECT_EQ(done.load(), 2);
  }
  // All advisory flags must have been consumed by now.
  EXPECT_EQ(my_grant(), kGrantEmpty);
}

// ---------------------------------------------------------------------------
// Thread exit while a tardy Overlap successor still owes an
// acknowledgement: the exiting thread's record must drain first
// (Appendix A / ThreadRec destructor). The unlocking thread exits
// immediately after unlock; the successor is delayed artificially.
TEST(HemlockOverlapTest, ThreadExitDrainsGrant) {
  CacheAligned<HemlockOverlap> lock;
  std::atomic<bool> t1_done{false};
  std::atomic<bool> t2_enqueued{false};

  std::thread t2;
  {
    std::thread t1([&] {
      lock.value.lock();
      t2_enqueued.wait(false);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      lock.value.unlock();  // deferred drain — returns immediately
      t1_done.store(true);
      // t1 exits here; its ThreadRec destructor must block until the
      // successor's acknowledgement lands.
    });
    t2 = std::thread([&] {
      t2_enqueued.store(true);
      t2_enqueued.notify_one();
      lock.value.lock();
      lock.value.unlock();
    });
    t1.join();
  }
  t2.join();
  EXPECT_TRUE(t1_done.load());
}

// ---------------------------------------------------------------------------
// HemlockCv parks instead of spinning: under heavy oversubscription
// (4x CPUs) progress persists. (A smoke test that the blocking tier
// engages without deadlock.)
TEST(HemlockCvTest, OversubscribedProgress) {
  CacheAligned<HemlockCv> lock;
  const unsigned threads = std::thread::hardware_concurrency() * 2;
  std::uint64_t counter = 0;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.value.lock();
        ++counter;
        lock.value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * 500);
}

// HemlockChain parks on private flags; same oversubscription smoke.
TEST(HemlockChainTest, OversubscribedProgress) {
  CacheAligned<HemlockChain> lock;
  const unsigned threads = std::thread::hardware_concurrency() * 2;
  std::uint64_t counter = 0;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.value.lock();
        ++counter;
        lock.value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * 500);
}

// ---------------------------------------------------------------------------
// Space claims (Table 1): Hemlock's lock body is one word across the
// whole family; the thread cost is the single Grant word.
TEST(HemlockSpace, LockBodyIsOneWord) {
  EXPECT_EQ(sizeof(Hemlock), sizeof(void*));
  EXPECT_EQ(sizeof(HemlockNaive), sizeof(void*));
  EXPECT_EQ(sizeof(HemlockFaa), sizeof(void*));
  EXPECT_EQ(sizeof(HemlockOverlap), sizeof(void*));
  EXPECT_EQ(sizeof(HemlockAh), sizeof(void*));
  EXPECT_EQ(sizeof(HemlockOhv1), sizeof(void*));
  EXPECT_EQ(sizeof(HemlockOhv2), sizeof(void*));
  EXPECT_EQ(sizeof(HemlockCv), sizeof(void*));
  EXPECT_EQ(sizeof(HemlockChain), sizeof(void*));
}

TEST(HemlockSpace, TraitsMatchTable1) {
  EXPECT_EQ(lock_traits<Hemlock>::lock_words, 1u);
  EXPECT_EQ(lock_traits<Hemlock>::held_words, 0u);
  EXPECT_EQ(lock_traits<Hemlock>::wait_words, 0u);
  EXPECT_EQ(lock_traits<Hemlock>::thread_words, 1u);
  EXPECT_FALSE(lock_traits<Hemlock>::nontrivial_init);
  EXPECT_EQ(lock_traits<McsLock>::lock_words, 2u);
  EXPECT_GT(lock_traits<McsLock>::held_words, 0u);
  EXPECT_GT(lock_traits<ClhLock>::lock_words, 2u);   // 2 + dummy element
  EXPECT_EQ(lock_traits<ClhLock>::held_words, 0u);   // Table 1: Held = 0
  EXPECT_TRUE(lock_traits<ClhLock>::nontrivial_init);
  EXPECT_EQ(lock_traits<TicketLock>::lock_words, 2u);
}

}  // namespace
}  // namespace hemlock
