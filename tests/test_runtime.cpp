// test_runtime.cpp — unit tests for the runtime substrate: cache-line
// geometry, PRNGs, barrier, timing, topology, and the ThreadRec /
// registry machinery the Hemlock family depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/prng.hpp"
#include "runtime/thread_rec.hpp"
#include "runtime/timing.hpp"
#include "runtime/topology.hpp"

namespace hemlock {
namespace {

TEST(Cacheline, AlignedWrapperOccupiesOneLine) {
  EXPECT_EQ(sizeof(CacheAligned<std::atomic<std::uint64_t>>), kCacheLineSize);
  EXPECT_EQ(alignof(CacheAligned<std::atomic<std::uint64_t>>), kCacheLineSize);
  CacheAligned<int> a(42);
  EXPECT_EQ(a.get(), 42);
}

TEST(Cacheline, WordAndLineAccounting) {
  EXPECT_EQ(words_for(8), 1u);
  EXPECT_EQ(words_for(9), 2u);
  EXPECT_EQ(words_for(16), 2u);
  EXPECT_EQ(lines_for(1), 1u);
  EXPECT_EQ(lines_for(64), 1u);
  EXPECT_EQ(lines_for(65), 2u);
}

TEST(Prng, SplitMixDeterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, XoshiroStreamsDecorrelated) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Prng, BelowIsInRangeAndCoversRange) {
  Xoshiro256 g(42);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t v = g.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(Prng, BelowOneAlwaysZero) {
  Xoshiro256 g(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.below(1), 0u);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        const int n = in_phase.fetch_add(1) + 1;
        if (n > kThreads) violation = true;
        barrier.arrive_and_wait();
        in_phase.fetch_sub(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(in_phase.load(), 0);
}

TEST(Timing, MonotoneAndPositive) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_GE(b, a);
  Timer t;
  volatile int x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GT(t.elapsed_ns(), 0);
  EXPECT_GE(t.elapsed_s(), 0.0);
}

TEST(Timing, OpsPerSec) {
  EXPECT_DOUBLE_EQ(ops_per_sec(1000, 1'000'000'000), 1000.0);
  EXPECT_DOUBLE_EQ(ops_per_sec(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(ops_per_sec(0, 123), 0.0);
}

TEST(Topology, SaneValues) {
  const Topology& t = topology();
  EXPECT_GE(t.logical_cpus, 1u);
  EXPECT_GE(t.physical_cores, 1u);
  EXPECT_GE(t.sockets, 1u);
  EXPECT_LE(t.physical_cores, t.logical_cpus);
  EXPECT_FALSE(t.describe().empty());
}

TEST(ThreadRec, GrantSequesteredOnOwnLine) {
  ThreadRec& me = self();
  const auto grant_addr = reinterpret_cast<std::uintptr_t>(&me.grant.value);
  const auto next_addr = reinterpret_cast<std::uintptr_t>(&me.registry_next);
  EXPECT_EQ(grant_addr % kCacheLineSize, 0u);
  EXPECT_GE(next_addr - grant_addr, kCacheLineSize);
}

TEST(ThreadRec, SelfIsStablePerThreadAndDistinctAcrossThreads) {
  ThreadRec* mine = &self();
  EXPECT_EQ(mine, &self());
  ThreadRec* theirs = nullptr;
  std::thread([&] { theirs = &self(); }).join();
  EXPECT_NE(mine, theirs);
}

TEST(ThreadRec, RegistryTracksLiveThreads) {
  (void)self();
  const auto base = ThreadRegistry::live_count();
  std::atomic<bool> go{false};
  std::atomic<std::uint32_t> observed{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      (void)self();
      while (!go.load()) std::this_thread::yield();
    });
  }
  // Wait until all four have registered.
  while (ThreadRegistry::live_count() < base + 4) std::this_thread::yield();
  ThreadRegistry::for_each([&](ThreadRec&) { observed.fetch_add(1); });
  EXPECT_GE(observed.load(), base + 4);
  go = true;
  for (auto& t : ts) t.join();
  // Exited threads must deregister (drained Grant words).
  while (ThreadRegistry::live_count() > base) std::this_thread::yield();
  EXPECT_EQ(ThreadRegistry::live_count(), base);
}

TEST(ThreadRec, IdsAreUnique) {
  std::set<std::uint32_t> ids;
  std::mutex mu;
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i) {
    ts.emplace_back([&] {
      std::lock_guard<std::mutex> g(mu);
      ids.insert(self().id);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ids.size(), 8u);
}

TEST(LockProfiler, HooksRespectEnableFlag) {
  ThreadRec& me = self();
  ThreadRegistry::reset_profile();
  LockProfiler::enable(false);
  LockProfiler::on_acquire(me);
  EXPECT_EQ(me.held_count.load(), 0u);
  LockProfiler::enable(true);
  LockProfiler::on_acquire(me);
  LockProfiler::on_acquire(me);  // nested
  EXPECT_EQ(me.held_count.load(), 2u);
  EXPECT_EQ(me.max_held.load(), 2u);
  EXPECT_EQ(me.nested_acquires.load(), 1u);
  LockProfiler::on_release(me);
  LockProfiler::on_release(me);
  EXPECT_EQ(me.held_count.load(), 0u);
  LockProfiler::on_wait_begin(me);
  EXPECT_EQ(me.grant_waiters.load(), 1u);
  EXPECT_EQ(me.max_grant_waiters.load(), 1u);
  LockProfiler::on_wait_end(me);
  EXPECT_EQ(me.grant_waiters.load(), 0u);
  LockProfiler::enable(false);
  ThreadRegistry::reset_profile();
}

TEST(SpinWait, EscalatesAfterLimit) {
  SpinWait w(4);
  for (int i = 0; i < 10; ++i) w.wait();
  EXPECT_GE(w.iterations(), 4u);
  w.reset();
  EXPECT_EQ(w.iterations(), 0u);
}

}  // namespace
}  // namespace hemlock
