// test_waiting_tiers.cpp — the queue-lock waiting tiers
// (core/waiting.hpp): policy-level hand-off round-trips on 32-bit,
// 64-bit and pointer words, and oversubscribed mutual-exclusion
// suites (threads = 4x hardware_concurrency) for MCS, CLH, Ticket and
// Anderson in spin and park (and adaptive) modes. The spin suites run
// a deliberately tiny schedule budget — each FIFO hand-off to a
// preempted busy-waiter costs a scheduler timeslice — while the
// park/adaptive suites run an order of magnitude more iterations in
// comparable wall time, which is the subsystem's whole point.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/waiting.hpp"
#include "locks/anderson.hpp"
#include "locks/clh.hpp"
#include "locks/mcs.hpp"
#include "locks/ticket.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/governor.hpp"

namespace hemlock {
namespace {

// ------------------------------------------- policy-level hand-offs --
template <typename Policy>
void word_handoff_roundtrip() {
  // 32-bit flag (MCS/CLH/Anderson shape): waiter blocks until 0.
  {
    std::atomic<std::uint32_t> w{1};
    std::thread waiter([&] { Policy::wait_until(w, std::uint32_t{0}); });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Policy::publish(w, std::uint32_t{0});
    waiter.join();
    EXPECT_EQ(w.load(), 0u);
  }
  // 64-bit ticket shape: waiter blocks until its ticket is served;
  // the parking tiers sleep on the low half of the word.
  {
    std::atomic<std::uint64_t> serving{41};
    std::thread waiter(
        [&] { Policy::wait_until(serving, std::uint64_t{42}); });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Policy::publish(serving, std::uint64_t{42});
    waiter.join();
    EXPECT_EQ(serving.load(), 42u);
  }
  // Pointer shape (MCS unlock waiting for the successor's back-link):
  // wait_while returns the first non-null value.
  {
    std::atomic<int*> link{nullptr};
    int target = 7;
    int* observed = nullptr;
    std::thread waiter([&] {
      observed = Policy::wait_while(link, static_cast<int*>(nullptr));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Policy::publish(link, &target);
    waiter.join();
    EXPECT_EQ(observed, &target);
  }
}

TEST(QueueWaitingTier, SpinHandoff) {
  word_handoff_roundtrip<QueueSpinWaiting>();
}
TEST(QueueWaitingTier, YieldHandoff) {
  word_handoff_roundtrip<QueueYieldWaiting>();
}
TEST(QueueWaitingTier, ParkHandoff) {
  word_handoff_roundtrip<SpinThenParkWaiting>();
}
TEST(QueueWaitingTier, GovernedHandoff) {
  word_handoff_roundtrip<GovernedWaiting>();
}

// A parked waiter must ignore publishes that do not satisfy its
// predicate (ticket shape: an earlier ticket being served wakes the
// sleeper, which must re-park rather than proceed).
TEST(QueueWaitingTier, ParkedWaiterRechecksItsPredicate) {
  std::atomic<std::uint64_t> serving{40};
  std::atomic<bool> proceeded{false};
  std::thread waiter([&] {
    SpinThenParkWaiting::wait_until(serving, std::uint64_t{42});
    proceeded.store(true);
  });
  SpinThenParkWaiting::publish(serving, std::uint64_t{41});  // not ours
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(proceeded.load());
  SpinThenParkWaiting::publish(serving, std::uint64_t{42});
  waiter.join();
  EXPECT_TRUE(proceeded.load());
}

// ---------------------------------------- slotted (ticket) parking --
// The per-slot futex ring (queue_wait::ticket_slot) that fixes the
// ticket-park thundering herd: a release wakes only the slot of the
// ticket it serves, so parked waiters for other tickets stay parked.

// Same (word, value) always maps to the same slot — waiter and
// publisher must agree — and consecutive tickets on one lock spread
// across slots (so the front waiter's wake is not shared with the
// herd behind it).
TEST(TicketRing, SlotKeyingIsStableAndSpreads) {
  std::atomic<std::uint64_t> word{0};
  for (std::uint64_t t = 0; t < 16; ++t) {
    EXPECT_EQ(&queue_wait::ticket_slot(&word, t),
              &queue_wait::ticket_slot(&word, t));
  }
  std::set<const void*> distinct;
  for (std::uint64_t t = 0; t < 16; ++t) {
    distinct.insert(&queue_wait::ticket_slot(&word, t));
  }
  // 16 consecutive tickets over 256 slots: collisions are possible in
  // principle but the multiplicative hash must not degenerate.
  EXPECT_GE(distinct.size(), 12u);
}

template <typename Policy>
void slotted_ticket_roundtrip() {
  std::atomic<std::uint64_t> serving{41};
  std::thread waiter([&] {
    Policy::wait_ticket(serving, std::uint64_t{42});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Policy::publish_ticket(serving, std::uint64_t{42});
  waiter.join();
  EXPECT_EQ(serving.load(), 42u);
}

TEST(TicketRing, ParkRoundtrip) {
  slotted_ticket_roundtrip<SpinThenParkWaiting>();
}
TEST(TicketRing, GovernedRoundtrip) {
  slotted_ticket_roundtrip<GovernedWaiting>();
}

// A slotted waiter must not proceed on a non-matching grant: serving
// an earlier ticket leaves the ticket-43 waiter blocked (its own slot
// was never woken), and the eventual matching publish releases it.
TEST(TicketRing, WaiterIgnoresOtherTicketsGrants) {
  std::atomic<std::uint64_t> serving{41};
  std::atomic<bool> proceeded{false};
  std::thread waiter([&] {
    SpinThenParkWaiting::wait_ticket(serving, std::uint64_t{43});
    proceeded.store(true);
  });
  SpinThenParkWaiting::publish_ticket(serving, std::uint64_t{42});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(proceeded.load());
  SpinThenParkWaiting::publish_ticket(serving, std::uint64_t{43});
  waiter.join();
  EXPECT_TRUE(proceeded.load());
}

// FIFO chain through the slotted path: waiters for tickets 1..N each
// parked on their own slot; each release wakes exactly the next
// ticket's slot and the chain unravels in order.
TEST(TicketRing, HandoffChainServesInTicketOrder) {
  constexpr std::uint64_t kWaiters = 4;
  std::atomic<std::uint64_t> serving{0};
  std::atomic<std::uint64_t> order{0};
  std::vector<std::uint64_t> served(kWaiters, 0);
  std::vector<std::thread> ts;
  for (std::uint64_t t = 1; t <= kWaiters; ++t) {
    ts.emplace_back([&, t] {
      SpinThenParkWaiting::wait_ticket(serving, t);
      served[t - 1] = order.fetch_add(1) + 1;
      SpinThenParkWaiting::publish_ticket(serving, t + 1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  SpinThenParkWaiting::publish_ticket(serving, std::uint64_t{1});
  for (auto& t : ts) t.join();
  for (std::uint64_t t = 1; t <= kWaiters; ++t) {
    EXPECT_EQ(served[t - 1], t) << "ticket " << t;
  }
}

// The slotted census balances like the direct-word one.
TEST(TicketRing, ParkCensusReturnsToBaseline) {
  auto& gov = ContentionGovernor::instance();
  const std::uint32_t before_total = gov.parked_total();
  std::atomic<std::uint64_t> serving{0};
  std::vector<std::thread> waiters;
  for (std::uint64_t t = 1; t <= 3; ++t) {
    waiters.emplace_back(
        [&, t] { SpinThenParkWaiting::wait_ticket(serving, t); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (std::uint64_t t = 1; t <= 3; ++t) {
    SpinThenParkWaiting::publish_ticket(serving, t);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(gov.parked_total(), before_total);
}

// The governor's parked census never leaks entries across a hand-off
// — neither on the waited word's own bucket nor process-wide.
TEST(QueueWaitingTier, ParkCensusReturnsToBaseline) {
  auto& gov = ContentionGovernor::instance();
  std::atomic<std::uint32_t> w{1};
  const std::uint32_t before_here = gov.parked(&w);
  const std::uint32_t before_total = gov.parked_total();
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back(
        [&] { SpinThenParkWaiting::wait_until(w, std::uint32_t{0}); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  SpinThenParkWaiting::publish(w, std::uint32_t{0});
  for (auto& t : waiters) t.join();
  EXPECT_EQ(gov.parked(&w), before_here);
  EXPECT_EQ(gov.parked_total(), before_total);
}

// --------------------------------------- oversubscribed exclusion --
// threads = 4x the hardware, everyone hammering one lock. Exact
// counter totals prove exclusion held; completing at all (within the
// suite timeout) proves the tier does not livelock the host.
template <typename L>
void oversubscribed_exclusion(int iters_per_thread) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads = 4 * hw;
  CacheAligned<L> lock;
  std::uint64_t counter = 0;
  SpinBarrier start(threads);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < iters_per_thread; ++i) {
        lock.value.lock();
        ++counter;
        lock.value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * iters_per_thread);
}

// Spin tiers: tiny budget — every hand-off may cost a timeslice.
constexpr int kSpinIters = 40;
// Park/adaptive tiers: 25x the spin budget; still completes quickly.
constexpr int kParkIters = 1000;

TEST(OversubscribedSpin, Mcs) {
  oversubscribed_exclusion<McsLock>(kSpinIters);
}
TEST(OversubscribedSpin, Clh) {
  oversubscribed_exclusion<ClhLock>(kSpinIters);
}
TEST(OversubscribedSpin, Ticket) {
  oversubscribed_exclusion<TicketLock>(kSpinIters);
}
TEST(OversubscribedSpin, Anderson) {
  // 4x hardware contenders must fit the waiting array.
  if (4 * std::max(1u, std::thread::hardware_concurrency()) > 256) {
    GTEST_SKIP() << "host too wide for the 256-slot test instantiation";
  }
  oversubscribed_exclusion<AndersonLockT<256, QueueSpinWaiting>>(kSpinIters);
}

TEST(OversubscribedPark, Mcs) {
  oversubscribed_exclusion<McsParkLock>(kParkIters);
}
TEST(OversubscribedPark, Clh) {
  oversubscribed_exclusion<ClhParkLock>(kParkIters);
}
TEST(OversubscribedPark, Ticket) {
  oversubscribed_exclusion<TicketParkLock>(kParkIters);
}
TEST(OversubscribedPark, Anderson) {
  if (4 * std::max(1u, std::thread::hardware_concurrency()) > 256) {
    GTEST_SKIP() << "host too wide for the 256-slot test instantiation";
  }
  oversubscribed_exclusion<AndersonLockT<256, SpinThenParkWaiting>>(
      kParkIters);
}

TEST(OversubscribedYield, Mcs) {
  oversubscribed_exclusion<McsYieldLock>(kParkIters);
}
TEST(OversubscribedAdaptive, Mcs) {
  oversubscribed_exclusion<McsGovernedLock>(kParkIters);
}
TEST(OversubscribedAdaptive, Clh) {
  oversubscribed_exclusion<ClhGovernedLock>(kParkIters);
}
TEST(OversubscribedAdaptive, Ticket) {
  oversubscribed_exclusion<TicketGovernedLock>(kParkIters);
}

// Mixed lock()/try_lock() traffic through the parked tier (MCS and
// Ticket expose try_lock): exactness must survive waiters sleeping.
template <typename L>
void oversubscribed_try_mix() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads = 4 * hw;
  CacheAligned<L> lock;
  std::uint64_t counter = 0;
  std::atomic<std::uint64_t> successes{0};
  SpinBarrier start(threads);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < 400; ++i) {
        if ((i + t) % 3 == 0 && lock.value.try_lock()) {
          ++counter;
          successes.fetch_add(1, std::memory_order_relaxed);
          lock.value.unlock();
        } else {
          lock.value.lock();
          ++counter;
          successes.fetch_add(1, std::memory_order_relaxed);
          lock.value.unlock();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, successes.load());
}

TEST(OversubscribedPark, McsTryMix) {
  oversubscribed_try_mix<McsParkLock>();
}
TEST(OversubscribedPark, TicketTryMix) {
  oversubscribed_try_mix<TicketParkLock>();
}

}  // namespace
}  // namespace hemlock
