// test_reclaim.cpp — epoch-based reclamation invariants and the
// sharded serving layer built on them.
//
// The contracts pinned down here:
//   * no object is freed while a reader that could reach it is still
//     inside its epoch (the memory-safety half);
//   * deferred frees DO happen once readers quiesce, under bounded
//     drain batches (the no-leak half);
//   * a stalled reader blocks epoch advance — observable in
//     DomainStats — but never deadlocks writers or drains;
//   * ShardedDB get/put/del/scan stay linearizable under concurrent
//     mixed traffic across flushes and compactions, in BOTH read
//     tiers (epoch-protected lock-free and shared-mode locked).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/any_lock.hpp"
#include "minikv/db_bench.hpp"  // bench_key
#include "minikv/sharded_db.hpp"
#include "minikv/traffic.hpp"
#include "reclaim/epoch.hpp"
#include "runtime/barrier.hpp"

namespace hemlock {
namespace {

using minikv::bench_key;
using minikv::ShardedDB;
using minikv::ShardedDbOptions;
using minikv::Slice;
using reclaim::EpochDomain;
using reclaim::EpochGuard;

// ----------------------------------------------------- epoch core --

TEST(EpochDomain, EnterExitNesting) {
  EpochDomain d;
  EXPECT_FALSE(d.in_epoch());
  d.enter();
  EXPECT_TRUE(d.in_epoch());
  d.enter();  // nested
  EXPECT_TRUE(d.in_epoch());
  d.exit();
  EXPECT_TRUE(d.in_epoch());  // still inside the outermost section
  d.exit();
  EXPECT_FALSE(d.in_epoch());
  {
    EpochGuard g(d);
    EXPECT_TRUE(d.in_epoch());
  }
  EXPECT_FALSE(d.in_epoch());
}

TEST(EpochDomain, RetiredObjectsDrainAfterQuiescence) {
  EpochDomain d;
  std::atomic<int> freed{0};
  struct Obj {
    std::atomic<int>* c;
    ~Obj() { c->fetch_add(1, std::memory_order_relaxed); }
  };
  constexpr int kObjects = 10;
  for (int i = 0; i < kObjects; ++i) {
    d.retire(new Obj{&freed});
  }
  EXPECT_EQ(freed.load(), 0);  // nothing freed inline at retire
  // No reader is in an epoch: two drains (two advances) make every
  // retiree safe, a third collects any stamped at the boundary.
  for (int i = 0; i < 3; ++i) d.drain(~std::size_t{0});
  EXPECT_EQ(freed.load(), kObjects);
  const auto st = d.stats();
  EXPECT_EQ(st.pending, 0u);
  EXPECT_EQ(st.freed, static_cast<std::uint64_t>(kObjects));
  EXPECT_GE(st.advances, 2u);
}

TEST(EpochDomain, DrainBatchesAreBounded) {
  EpochDomain d;
  std::atomic<int> freed{0};
  struct Obj {
    std::atomic<int>* c;
    ~Obj() { c->fetch_add(1, std::memory_order_relaxed); }
  };
  constexpr int kObjects = 100;
  for (int i = 0; i < kObjects; ++i) d.retire(new Obj{&freed});
  // Age everything past the safety horizon without freeing: with no
  // reader in-epoch every advance succeeds, so exactly two moves put
  // the retire stamps two epochs behind.
  ASSERT_TRUE(d.try_advance());
  ASSERT_TRUE(d.try_advance());
  // Each drain frees at most its batch.
  const std::size_t first = d.drain(7);
  EXPECT_LE(first, 7u);
  EXPECT_LE(freed.load(), 7);
  std::size_t total = first;
  for (int guard = 0; guard < 100 && total < kObjects; ++guard) {
    total += d.drain(7);
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kObjects));
  EXPECT_EQ(freed.load(), kObjects);
}

// The memory-safety half: an object retired while a reader is inside
// its epoch must not be freed until that reader exits — no matter how
// hard anyone drains.
TEST(EpochDomain, NoReclamationWhileReaderInEpoch) {
  EpochDomain d;
  std::atomic<bool> freed{false};
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};
  struct Obj {
    std::atomic<bool>* f;
    ~Obj() { f->store(true, std::memory_order_release); }
  };

  std::thread reader([&] {
    EpochGuard g(d);
    reader_in.store(true, std::memory_order_release);
    while (!release_reader.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!reader_in.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // Unlink + retire while the reader is pinned (as a writer would,
  // after removing the object from the shared structure).
  d.retire(new Obj{&freed});
  for (int i = 0; i < 50; ++i) d.drain(~std::size_t{0});
  EXPECT_FALSE(freed.load());  // reader still in-epoch: must survive
  const auto blocked = d.stats();
  EXPECT_GT(blocked.advance_blocked, 0u);  // reported, not deadlocked
  EXPECT_EQ(blocked.pending, 1u);

  release_reader.store(true, std::memory_order_release);
  reader.join();
  for (int i = 0; i < 3; ++i) d.drain(~std::size_t{0});
  EXPECT_TRUE(freed.load());  // quiescence unblocks reclamation
  EXPECT_EQ(d.stats().pending, 0u);
}

// The liveness half of the stalled-reader contract: while one reader
// stalls, writers keep retiring and draining without blocking; the
// backlog is bounded by what was retired, and is fully collected
// after the stall ends.
TEST(EpochDomain, StalledReaderBoundsGarbageButNeverBlocksWriters) {
  EpochDomain d;
  std::atomic<int> freed{0};
  std::atomic<bool> release_reader{false};
  std::atomic<bool> reader_in{false};
  struct Obj {
    std::atomic<int>* c;
    ~Obj() { c->fetch_add(1, std::memory_order_relaxed); }
  };

  std::thread reader([&] {
    EpochGuard g(d);
    reader_in.store(true, std::memory_order_release);
    while (!release_reader.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!reader_in.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  constexpr int kRetired = 200;
  for (int i = 0; i < kRetired; ++i) {
    d.retire(new Obj{&freed});
    d.drain(8);  // a writer's bounded piggyback drain — returns promptly
  }
  const auto st = d.stats();
  EXPECT_EQ(st.freed + st.pending, static_cast<std::uint64_t>(kRetired));
  EXPECT_GT(st.advance_blocked, 0u);

  release_reader.store(true, std::memory_order_release);
  reader.join();
  for (int i = 0; i < 3 + kRetired / 8; ++i) d.drain(8);
  EXPECT_EQ(freed.load(), kRetired);
  EXPECT_EQ(d.stats().pending, 0u);
}

// Concurrent readers + a retiring writer, sanitizer-checked (this
// suite runs under TSan in CI): readers traverse a published pointer
// that the writer keeps swinging and retiring.
TEST(EpochDomain, ConcurrentPublishRetireStress) {
  EpochDomain d;
  struct Node {
    std::uint64_t a, b;  // invariant: b == ~a
  };
  std::atomic<Node*> published{new Node{1, ~std::uint64_t{1}}};
  std::atomic<bool> stop{false};
  constexpr int kReaders = 3;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard g(d);
        Node* n = published.load(std::memory_order_acquire);
        // If n were freed under us this read is a use-after-free —
        // exactly what TSan/ASan would flag and the invariant check
        // would (probabilistically) catch.
        EXPECT_EQ(n->b, ~n->a);
      }
    });
  }
  std::thread writer([&] {
    for (std::uint64_t i = 2; i < 3000; ++i) {
      Node* fresh = new Node{i, ~i};
      Node* old = published.exchange(fresh, std::memory_order_acq_rel);
      d.retire(old);
      d.drain(16);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& t : readers) t.join();
  delete published.load(std::memory_order_relaxed);
  for (int i = 0; i < 3; ++i) d.drain(~std::size_t{0});
  EXPECT_EQ(d.stats().pending, 0u);
}

// ------------------------------------------------ sharded serving --

ShardedDbOptions small_db_options(bool epoch_reads) {
  ShardedDbOptions o;
  o.num_shards = 4;
  o.write_buffer_bytes = 4 << 10;  // tiny: force frequent flushes
  o.compaction_trigger = 3;        // ...and compactions
  o.epoch_reads = epoch_reads;
  return o;
}

class ShardedDbTiers : public ::testing::TestWithParam<bool> {};

TEST_P(ShardedDbTiers, GetPutDeleteRoundTrip) {
  EpochDomain domain;
  ShardedDB<AnyLock> db(small_db_options(GetParam()), &domain);
  std::string v;
  EXPECT_TRUE(db.get("absent", &v).is_not_found());
  ASSERT_TRUE(db.put("k1", "v1").is_ok());
  ASSERT_TRUE(db.put("k2", "v2").is_ok());
  ASSERT_TRUE(db.get("k1", &v).is_ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE(db.put("k1", "v1b").is_ok());  // overwrite
  ASSERT_TRUE(db.get("k1", &v).is_ok());
  EXPECT_EQ(v, "v1b");
  ASSERT_TRUE(db.del("k1").is_ok());
  EXPECT_TRUE(db.get("k1", &v).is_not_found());
  ASSERT_TRUE(db.get("k2", &v).is_ok());  // neighbor untouched
  EXPECT_EQ(v, "v2");
  // Deleted keys stay deleted across flush and compaction...
  db.flush();
  EXPECT_TRUE(db.get("k1", &v).is_not_found());
  // ...and can be resurrected by a later write.
  ASSERT_TRUE(db.put("k1", "back").is_ok());
  ASSERT_TRUE(db.get("k1", &v).is_ok());
  EXPECT_EQ(v, "back");
}

TEST_P(ShardedDbTiers, TombstonesSurviveFlushAndCompaction) {
  EpochDomain domain;
  ShardedDB<AnyLock> db(small_db_options(GetParam()), &domain);
  constexpr std::uint64_t kKeys = 2000;
  const std::string value(64, 'v');
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(db.put(bench_key(k), value).is_ok());
  }
  // Delete every third key, then churn enough writes to force the
  // tombstones through flushes and full-merge compactions.
  for (std::uint64_t k = 0; k < kKeys; k += 3) {
    ASSERT_TRUE(db.del(bench_key(k)).is_ok());
  }
  for (std::uint64_t k = kKeys; k < kKeys + 2000; ++k) {
    ASSERT_TRUE(db.put(bench_key(k), value).is_ok());
  }
  db.flush();
  EXPECT_GT(db.stats().compactions, 0u);
  std::string v;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (k % 3 == 0) {
      EXPECT_TRUE(db.get(bench_key(k), &v).is_not_found()) << k;
    } else {
      ASSERT_TRUE(db.get(bench_key(k), &v).is_ok()) << k;
      EXPECT_EQ(v, value);
    }
  }
}

TEST_P(ShardedDbTiers, ScanMergesShardsSortedAndElidesTombstones) {
  EpochDomain domain;
  ShardedDB<AnyLock> db(small_db_options(GetParam()), &domain);
  constexpr std::uint64_t kKeys = 500;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(db.put(bench_key(k), "v" + std::to_string(k)).is_ok());
  }
  db.flush();  // half the keyspace in tables...
  for (std::uint64_t k = 0; k < kKeys; k += 10) {
    ASSERT_TRUE(db.del(bench_key(k)).is_ok());  // ...tombstones in mem
  }
  std::vector<std::pair<std::string, std::string>> out;
  // Full scan: ascending, deduplicated, tombstones gone.
  EXPECT_EQ(db.scan(Slice(), kKeys, &out), kKeys - kKeys / 10);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(Slice(out[i - 1].first).compare(Slice(out[i].first)), 0);
  }
  for (const auto& [k, v] : out) {
    const std::uint64_t n = std::stoull(k);
    EXPECT_NE(n % 10, 0u) << k;
    EXPECT_EQ(v, "v" + std::to_string(n));
  }
  // Bounded scan from an offset: exactly limit entries, starting at
  // the first live key >= start.
  EXPECT_EQ(db.scan(bench_key(100), 7, &out), 7u);
  EXPECT_EQ(out.front().first, bench_key(101));  // 100 was deleted
  EXPECT_EQ(out.size(), 7u);
}

// Linearizability under concurrent mixed traffic: per-key monotone
// version counters — a reader may see any PREVIOUSLY written version
// (or miss during a delete window) but never an older value after a
// newer one was confirmed absent, and never torn data. Runs across
// flush/compaction churn; TSan in CI checks the memory model side.
TEST_P(ShardedDbTiers, ConcurrentMixedTrafficStress) {
  EpochDomain domain;
  ShardedDB<AnyLock> db(small_db_options(GetParam()), &domain);
  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr std::uint64_t kKeys = 64;  // few keys: maximize collisions
  constexpr int kWritesEach = 4000;
  std::atomic<bool> stop{false};
  SpinBarrier start(kWriters + kReaders);

  std::vector<std::thread> threads;
  // Writers: each owns a disjoint key stripe and writes strictly
  // increasing versions, deleting occasionally.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      start.arrive_and_wait();
      for (int i = 1; i <= kWritesEach; ++i) {
        const std::uint64_t k = w * kKeys / kWriters +
                                static_cast<std::uint64_t>(i) %
                                    (kKeys / kWriters);
        if (i % 17 == 0) {
          ASSERT_TRUE(db.del(bench_key(k)).is_ok());
        } else {
          ASSERT_TRUE(
              db.put(bench_key(k), std::to_string(i)).is_ok());
        }
      }
    });
  }
  // Readers: values parse back as integers in [1, kWritesEach] —
  // torn or freed-under-us data would fail the parse or the range.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      start.arrive_and_wait();
      std::string v;
      std::vector<std::pair<std::string, std::string>> out;
      std::uint64_t k = r;
      while (!stop.load(std::memory_order_relaxed)) {
        k = (k + 1) % kKeys;
        if (k % 16 == 0) {
          db.scan(bench_key(k), 8, &out);
          for (const auto& [sk, sv] : out) {
            ASSERT_FALSE(sv.empty()) << sk;
            const int n = std::stoi(sv);
            ASSERT_GE(n, 1);
            ASSERT_LE(n, kWritesEach);
          }
        } else if (db.get(bench_key(k), &v).is_ok()) {
          ASSERT_FALSE(v.empty());
          const int n = std::stoi(v);
          ASSERT_GE(n, 1);
          ASSERT_LE(n, kWritesEach);
        }
      }
    });
  }
  // Writers are the first kWriters threads.
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (int t = kWriters; t < kWriters + kReaders; ++t) threads[t].join();

  const auto st = db.stats();
  EXPECT_GT(st.flushes, 0u);  // the churn actually exercised reclamation
  if (GetParam()) {
    EXPECT_GT(st.epoch_gets, 0u);
    EXPECT_EQ(st.locked_gets, 0u);
  } else {
    EXPECT_GT(st.locked_gets, 0u);
    EXPECT_EQ(st.epoch_gets, 0u);
  }
  // Whatever is still pending drains once everyone is quiescent.
  for (int i = 0; i < 3; ++i) db.reclaim_drain(~std::size_t{0});
  EXPECT_EQ(db.stats().reclaim.pending, 0u);
}

INSTANTIATE_TEST_SUITE_P(ReadTiers, ShardedDbTiers,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "epoch_reads"
                                             : "locked_reads";
                         });

// Runtime-chosen shard locks reach the shards through the factory
// name, like every AnyLock consumer.
TEST(ShardedDb, NamedShardLocks) {
  ShardedDbOptions o;
  o.num_shards = 2;
  ShardedDB<AnyLock> db(o, "mcs");
  ASSERT_TRUE(db.put("a", "1").is_ok());
  std::string v;
  ASSERT_TRUE(db.get("a", &v).is_ok());
  EXPECT_EQ(v, "1");
  EXPECT_EQ(db.num_shards(), 2u);
}

// The traffic harness's backends agree on semantics where they
// overlap (the driver measures them interchangeably).
TEST(Traffic, BackendsAgreeOnBasicOps) {
  minikv::DB<AnyLock> central;
  minikv::CentralBackend<AnyLock> central_kv(central);
  EpochDomain domain;
  ShardedDB<AnyLock> sharded(small_db_options(true), &domain);
  minikv::ShardedBackend<AnyLock> sharded_kv(sharded);
  for (minikv::KvBackend* kv :
       {static_cast<minikv::KvBackend*>(&central_kv),
        static_cast<minikv::KvBackend*>(&sharded_kv)}) {
    ASSERT_TRUE(kv->put("x", "1").is_ok());
    std::string v;
    ASSERT_TRUE(kv->get("x", &v).is_ok());
    EXPECT_EQ(v, "1");
    std::vector<std::pair<std::string, std::string>> out;
    EXPECT_EQ(kv->scan(Slice(), 10, &out), 1u);
  }
  EXPECT_FALSE(central_kv.supports_delete());
  EXPECT_TRUE(sharded_kv.supports_delete());
  ASSERT_TRUE(sharded_kv.del("x").is_ok());
  std::string v;
  EXPECT_TRUE(sharded_kv.get("x", &v).is_not_found());
}

// Zipfian sanity: draws stay in range and are genuinely skewed (the
// most popular key appears far above the uniform expectation).
TEST(Traffic, ZipfianIsSkewedAndInRange) {
  constexpr std::uint64_t kItems = 1000;
  constexpr int kDraws = 20000;
  minikv::ZipfianGenerator zipf(kItems, 0.99, 42);
  std::vector<int> counts(kItems, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t k = zipf.next();
    ASSERT_LT(k, kItems);
    ++counts[k];
  }
  const int top = *std::max_element(counts.begin(), counts.end());
  // Uniform expectation is kDraws/kItems = 20; Zipf(0.99)'s head is
  // two orders of magnitude hotter.
  EXPECT_GT(top, 50 * (kDraws / static_cast<int>(kItems)));
}

TEST(Traffic, RunTrafficCountsEveryOperation) {
  EpochDomain domain;
  ShardedDB<AnyLock> db(small_db_options(true), &domain);
  minikv::ShardedBackend<AnyLock> kv(db);
  minikv::fill_backend(kv, 512, 32);
  const auto* scenario = minikv::find_traffic_scenario("write-burst");
  ASSERT_NE(scenario, nullptr);
  minikv::TrafficConfig cfg;
  cfg.threads = 2;
  cfg.duration_ms = 50;
  cfg.num_keys = 512;
  cfg.batch_size = 16;
  const auto res = minikv::run_traffic(kv, *scenario, cfg);
  EXPECT_GT(res.total_ops(), 0u);
  EXPECT_GT(res.gets, 0u);
  EXPECT_GT(res.puts, 0u);  // burst batches guarantee writes
  EXPECT_GT(res.dels, 0u);
  EXPECT_EQ(res.total_ops(),
            res.gets + res.scans + res.puts + res.dels);
  EXPECT_GT(res.batch_us.count(), 0u);  // latency histogram populated
  EXPECT_GT(res.mops_per_sec(), 0.0);
  // All four named scenarios exist (CI sweeps them by name).
  for (const char* name :
       {"read-heavy", "scan-heavy", "hot-key", "write-burst"}) {
    EXPECT_NE(minikv::find_traffic_scenario(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace hemlock
