// test_hemlock_site.cpp — the §2.3 on-stack Grant variant: exclusion,
// FIFO hand-through, multi-lock independence, and the structural
// claim that it never touches the thread-local Grant word (so a
// thread's Self mailbox stays empty throughout).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/hemlock.hpp"
#include "core/hemlock_site.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/thread_rec.hpp"

namespace hemlock {
namespace {

TEST(HemlockSite, UncontendedGuardRoundTrips) {
  CacheAligned<HemlockSite> lock;
  for (int i = 0; i < 10000; ++i) {
    HemlockSite::Guard g(lock.value);
  }
  EXPECT_TRUE(lock.value.appears_unlocked());
}

TEST(HemlockSite, MutualExclusionUnderContention) {
  CacheAligned<HemlockSite> lock;
  std::uint64_t counter = 0;
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  SpinBarrier start(8);
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < 5000; ++i) {
        HemlockSite::Guard g(lock.value);
        if (in_cs.fetch_add(1) != 0) violation = true;
        ++counter;
        in_cs.fetch_sub(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(counter, 40000u);
}

TEST(HemlockSite, NeverTouchesThreadLocalGrant) {
  // The whole point of the optimization: the Self mailbox is not
  // involved, so deep nesting cannot concentrate waiters on it.
  CacheAligned<HemlockSite> a, b, c;
  std::atomic<bool> ok{true};
  std::thread peer([&] {
    for (int i = 0; i < 2000; ++i) {
      HemlockSite::Guard g(a.value);
      if (self().grant.value.load(std::memory_order_relaxed) !=
          kGrantEmpty) {
        ok = false;
      }
    }
  });
  for (int i = 0; i < 2000; ++i) {
    HemlockSite::Guard ga(a.value);
    HemlockSite::Guard gb(b.value);
    HemlockSite::Guard gc(c.value);
    if (self().grant.value.load(std::memory_order_relaxed) != kGrantEmpty) {
      ok = false;
    }
  }
  peer.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(self().grant.value.load(std::memory_order_relaxed), kGrantEmpty);
}

TEST(HemlockSite, MixedUsageWithPlainHemlock) {
  // Site-by-site opt-in (§2.3): the same thread can hold plain
  // Hemlock locks (thread-local Grant) and HemlockSite locks
  // (on-stack Grant) simultaneously.
  CacheAligned<Hemlock> plain;
  CacheAligned<HemlockSite> site;
  std::uint64_t counter = 0;
  SpinBarrier start(6);
  std::vector<std::thread> ts;
  for (int t = 0; t < 6; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < 4000; ++i) {
        plain.value.lock();
        HemlockSite::Guard g(site.value);
        ++counter;
        plain.value.unlock();  // release order interleaved with guard
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 24000u);
}

TEST(HemlockSite, FifoHandThrough) {
  // Same staggered-arrival protocol as the generic FIFO test.
  for (int round = 0; round < 5; ++round) {
    CacheAligned<HemlockSite> lock;
    std::vector<int> order;
    std::mutex order_mu;
    std::atomic<int> go{-1};
    auto holder = std::make_unique<HemlockSite::Guard>(lock.value);
    std::vector<std::thread> ts;
    for (int w = 0; w < 4; ++w) {
      ts.emplace_back([&, w] {
        while (go.load(std::memory_order_acquire) < w) {
          std::this_thread::yield();
        }
        HemlockSite::Guard g(lock.value);
        std::lock_guard<std::mutex> og(order_mu);
        order.push_back(w);
      });
    }
    for (int w = 0; w < 4; ++w) {
      go.store(w, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    holder.reset();  // release; pen opens
    for (auto& t : ts) t.join();
    ASSERT_EQ(order.size(), 4u);
    for (int w = 0; w < 4; ++w) EXPECT_EQ(order[w], w);
  }
}

}  // namespace
}  // namespace hemlock
