// test_harness.cpp — the MutexBench framework itself: configuration
// plumbing, throughput accounting, fairness metric, the multi-waiting
// driver, thread sweeps, options parsing and table rendering. The
// benchmark harness is measurement infrastructure; bugs here corrupt
// every figure, so it gets its own suite.
#include <gtest/gtest.h>

#include <sstream>

#include "core/hemlock.hpp"
#include "harness/mutexbench.hpp"
#include "harness/options.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "locks/ticket.hpp"

namespace hemlock {
namespace {

TEST(MutexBench, SingleThreadCountsIterations) {
  MutexBenchConfig cfg;
  cfg.threads = 1;
  cfg.duration_ms = 50;
  const auto res = run_mutexbench<Hemlock>(cfg);
  EXPECT_GT(res.total_iterations, 1000u);  // uncontended: millions/sec
  EXPECT_GT(res.elapsed_ns, 40'000'000);
  EXPECT_EQ(res.per_thread.size(), 1u);
  EXPECT_EQ(res.per_thread[0], res.total_iterations);
  EXPECT_GT(res.msteps_per_sec(), 0.0);
}

TEST(MutexBench, AggregatesAcrossThreads) {
  MutexBenchConfig cfg;
  cfg.threads = 4;
  cfg.duration_ms = 50;
  const auto res = run_mutexbench<Hemlock>(cfg);
  std::uint64_t sum = 0;
  for (auto c : res.per_thread) sum += c;
  EXPECT_EQ(sum, res.total_iterations);
  EXPECT_EQ(res.per_thread.size(), 4u);
  for (auto c : res.per_thread) EXPECT_GT(c, 0u);
}

TEST(MutexBench, FifoLockIsFairUnderContention) {
  MutexBenchConfig cfg;
  cfg.threads = 4;
  cfg.duration_ms = 100;
  if (std::thread::hardware_concurrency() < cfg.threads) {
    GTEST_SKIP() << "fairness is a scheduler property when cores < threads "
                    "(FIFO admission needs truly concurrent contenders)";
  }
  const auto res = run_mutexbench<Hemlock>(cfg);
  // Jain index: FIFO admission should keep threads within a tight
  // band (1.0 = perfect). Generous bound: scheduling noise exists.
  EXPECT_GT(res.fairness(), 0.8);
}

TEST(MutexBench, ModerateWorkloadStepsSharedPrng) {
  MutexBenchConfig cfg;
  cfg.threads = 2;
  cfg.duration_ms = 50;
  cfg.cs_shared_prng_steps = 5;
  cfg.ncs_max_prng_steps = 400;
  const auto res = run_mutexbench<Hemlock>(cfg);
  EXPECT_GT(res.total_iterations, 0u);
  // Moderate contention does strictly more work per iteration than
  // max contention, so it must complete fewer iterations.
  MutexBenchConfig empty = cfg;
  empty.cs_shared_prng_steps = 0;
  empty.ncs_max_prng_steps = 0;
  const auto res_empty = run_mutexbench<Hemlock>(empty);
  EXPECT_GT(res_empty.total_iterations, res.total_iterations);
}

TEST(MultiWaitBench, LeaderCompletesSteps) {
  MultiWaitConfig cfg;
  cfg.threads = 4;
  cfg.num_locks = 10;
  cfg.duration_ms = 50;
  const auto res = run_multiwait_bench<Hemlock>(cfg);
  EXPECT_GT(res.leader_steps, 0u);
  EXPECT_GT(res.msteps_per_sec(), 0.0);
}

TEST(MultiWaitBench, WorksAcrossAlgorithms) {
  MultiWaitConfig cfg;
  cfg.threads = 3;
  cfg.num_locks = 4;
  cfg.duration_ms = 30;
  EXPECT_GT(run_multiwait_bench<TicketLock>(cfg).leader_steps, 0u);
  EXPECT_GT(run_multiwait_bench<HemlockNaive>(cfg).leader_steps, 0u);
}

TEST(ThreadSweep, MatchesPaperAxisShape) {
  const auto s = figure_thread_sweep(50);
  EXPECT_EQ(s.front(), 1u);
  EXPECT_EQ(s.back(), 50u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  // Paper anchors present up to the max.
  EXPECT_NE(std::find(s.begin(), s.end(), 20u), s.end());
  // Max always included even when not an anchor.
  const auto s2 = figure_thread_sweep(24);
  EXPECT_EQ(s2.back(), 24u);
  const auto s1 = figure_thread_sweep(1);
  EXPECT_EQ(s1, std::vector<std::uint32_t>{1});
}

TEST(Runner, MedianOverRuns) {
  int call = 0;
  const Summary s = repeat_runs(5, [&] { return static_cast<double>(++call); });
  EXPECT_EQ(s.runs(), 5u);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Options, ParsesAllForms) {
  const char* argv[] = {"prog",       "--duration-ms=250", "--runs", "7",
                        "--csv",      "--name=hemlock",    "--f=2.5"};
  Options o(7, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("duration-ms", 0), 250);
  EXPECT_EQ(o.get_int("runs", 0), 7);
  EXPECT_TRUE(o.has("csv"));
  EXPECT_FALSE(o.has("verbose"));
  EXPECT_EQ(o.get_string("name", ""), "hemlock");
  EXPECT_DOUBLE_EQ(o.get_double("f", 0.0), 2.5);
  EXPECT_EQ(o.get_int("absent", 42), 42);
  EXPECT_TRUE(o.unconsumed().empty());
}

TEST(Options, ReportsUnconsumedKeys) {
  const char* argv[] = {"prog", "--typo=1", "--used=2"};
  Options o(3, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("used", 0), 2);
  const auto unknown = o.unconsumed();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(TableRender, AlignedAndCsv) {
  Table t({"a", "bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream text, csv;
  t.print(text);
  t.print_csv(csv);
  EXPECT_NE(text.str().find("a"), std::string::npos);
  EXPECT_NE(text.str().find("---"), std::string::npos);
  EXPECT_EQ(csv.str(), "a,bee\n1,2\n333,4\n");
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
}

TEST(HostBanner, NonEmpty) {
  EXPECT_NE(host_banner().find("host:"), std::string::npos);
  EXPECT_GE(default_max_threads(false), 1u);
  EXPECT_EQ(default_max_threads(true), default_max_threads(false) * 2);
}

}  // namespace
}  // namespace hemlock
