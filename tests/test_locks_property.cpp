// test_locks_property.cpp — typed property tests run against EVERY
// lock algorithm in the registry (the Hemlock family and all
// baselines). Each test exercises a behavioural property from the
// paper's §3 correctness section or the lock concept contract:
//   * mutual exclusion (Theorem 2)
//   * lockout freedom / progress (Theorem 6)
//   * FIFO admission for FIFO algorithms (Theorem 8)
//   * try_lock semantics where the algorithm provides one (§2)
//   * independence of distinct lock instances
//   * hand-over-hand (coupled) locking across a chain of locks
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/lock_registry.hpp"
#include "locks/lockable.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"

namespace hemlock {
namespace {

// Thread counts sized for CI machines: enough to create real
// contention without drowning a FIFO spin lock in preemption.
constexpr int kThreads = 8;

// Iteration budget per thread: full on hosts with a core per
// contender; scaled down when cores < threads, where FIFO spin-lock
// handoffs run at scheduler speed (one preemption each, ~ms) and the
// multicore budget would stretch single cases into minutes of convoy.
// Exactness assertions are unaffected — only the schedule count is.
const int kItersPerThread =
    std::thread::hardware_concurrency() >= kThreads ? 4000 : 400;

template <typename L>
class LockProperty : public ::testing::Test {};

using AllLockTypes = ::testing::Types<
    Hemlock, HemlockNaive, HemlockFaa, HemlockFutex, HemlockAdaptive,
    HemlockOverlap,
    HemlockAh, HemlockOhv1, HemlockOhv2, HemlockCv, HemlockChain, McsLock,
    McsK42Lock, ClhLock, TicketLock, TasLock, TtasLock, TtasBackoffLock,
    AndersonLock<64>, McsYieldLock, McsParkLock, McsGovernedLock,
    ClhYieldLock, ClhParkLock, ClhGovernedLock, TicketYieldLock,
    TicketParkLock, TicketGovernedLock, AndersonYieldDefault,
    AndersonParkDefault, AndersonGovernedDefault, PthreadMutex>;

class LockNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    return lock_traits<T>::name;
  }
};

TYPED_TEST_SUITE(LockProperty, AllLockTypes, LockNames);

// ---------------------------------------------------------------------------
// Mutual exclusion: a plain (non-atomic) counter incremented under the
// lock must not lose updates, and the in-critical-section gauge must
// never exceed one.
TYPED_TEST(LockProperty, MutualExclusion) {
  CacheAligned<TypeParam> lock;
  std::uint64_t plain_counter = 0;  // protected by `lock`
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  SpinBarrier start(kThreads);

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < kItersPerThread; ++i) {
        lock.value.lock();
        if (in_cs.fetch_add(1, std::memory_order_relaxed) != 0) {
          violation.store(true, std::memory_order_relaxed);
        }
        ++plain_counter;
        in_cs.fetch_sub(1, std::memory_order_relaxed);
        lock.value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(plain_counter,
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
}

// ---------------------------------------------------------------------------
// Progress / lockout freedom: every thread completes a fixed quota;
// the test terminating at all is the assertion (gtest's per-test
// timeout turns a stall into a failure).
TYPED_TEST(LockProperty, EveryThreadCompletesItsQuota) {
  CacheAligned<TypeParam> lock;
  std::vector<std::uint64_t> done(kThreads, 0);
  SpinBarrier start(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kItersPerThread; ++i) {
        LockGuard<TypeParam> g(lock.value);
        ++done[t];
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(done[t], static_cast<std::uint64_t>(kItersPerThread))
        << "thread " << t;
  }
}

// ---------------------------------------------------------------------------
// Uncontended round-trips from a single thread: lock/unlock many times
// with no other participants (exercises the fast paths and, for
// Hemlock, the Listing-1 Grant-empty invariants between operations).
TYPED_TEST(LockProperty, UncontendedRoundTrips) {
  CacheAligned<TypeParam> lock;
  std::uint64_t n = 0;
  for (int i = 0; i < 100000; ++i) {
    lock.value.lock();
    ++n;
    lock.value.unlock();
  }
  EXPECT_EQ(n, 100000u);
}

// ---------------------------------------------------------------------------
// try_lock semantics (only for algorithms that provide it): succeeds
// when free, fails while another thread holds the lock, succeeds
// again after release, and a successful try_lock provides exclusion.
TYPED_TEST(LockProperty, TryLockSemantics) {
  if constexpr (!lock_traits<TypeParam>::has_trylock) {
    GTEST_SKIP() << lock_traits<TypeParam>::name
                 << " does not provide try_lock (per the paper, §2)";
  } else {
    CacheAligned<TypeParam> lock;
    ASSERT_TRUE(lock.value.try_lock());

    // Another thread must fail while we hold it.
    std::atomic<int> result{-1};
    std::thread([&] { result = lock.value.try_lock() ? 1 : 0; }).join();
    EXPECT_EQ(result.load(), 0);

    lock.value.unlock();

    // And succeed once released.
    std::thread([&] {
      result = lock.value.try_lock() ? 1 : 0;
      if (result == 1) lock.value.unlock();
    }).join();
    EXPECT_EQ(result.load(), 1);
  }
}

// ---------------------------------------------------------------------------
// try_lock under contention: mixed lock() / try_lock() users maintain
// exclusion and try_lock never blocks the system.
TYPED_TEST(LockProperty, TryLockUnderContention) {
  if constexpr (!lock_traits<TypeParam>::has_trylock) {
    GTEST_SKIP() << "no try_lock";
  } else {
    CacheAligned<TypeParam> lock;
    std::uint64_t counter = 0;
    std::atomic<std::uint64_t> try_successes{0};
    SpinBarrier start(kThreads);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        start.arrive_and_wait();
        for (int i = 0; i < kItersPerThread; ++i) {
          if (t % 2 == 0) {
            lock.value.lock();
            ++counter;
            lock.value.unlock();
          } else if (lock.value.try_lock()) {
            ++counter;
            try_successes.fetch_add(1, std::memory_order_relaxed);
            lock.value.unlock();
          }
        }
      });
    }
    for (auto& t : ts) t.join();
    const std::uint64_t blocking_iters =
        static_cast<std::uint64_t>((kThreads + 1) / 2) * kItersPerThread;
    EXPECT_EQ(counter, blocking_iters + try_successes.load());
  }
}

// ---------------------------------------------------------------------------
// Distinct lock instances are independent: holding lock A must not
// impede lock B's users. (For Hemlock this also exercises multiple
// locks sharing each thread's single Grant word.)
TYPED_TEST(LockProperty, InstancesAreIndependent) {
  CacheAligned<TypeParam> a, b;
  a.value.lock();  // hold A for the whole test

  std::uint64_t b_counter = 0;
  std::vector<std::thread> ts;
  SpinBarrier start(4);
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < kItersPerThread; ++i) {
        LockGuard<TypeParam> g(b.value);
        ++b_counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  a.value.unlock();
  EXPECT_EQ(b_counter, 4ull * kItersPerThread);
}

// ---------------------------------------------------------------------------
// Holding multiple locks simultaneously and releasing in arbitrary
// (reverse and forward) order — the capability the paper calls out as
// a hard requirement for pthread-style usage (§4: algorithms must
// "allow multiple locks to be held simultaneously and released in
// arbitrary order").
TYPED_TEST(LockProperty, MultipleLocksHeldArbitraryRelease) {
  constexpr int kLocks = 6;
  std::vector<CacheAligned<TypeParam>> locks(kLocks);
  std::uint64_t counters[kLocks] = {};
  SpinBarrier start(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kItersPerThread / 4; ++i) {
        // Acquire all ascending; release in a per-thread order.
        for (int k = 0; k < kLocks; ++k) locks[k].value.lock();
        for (int k = 0; k < kLocks; ++k) ++counters[k];
        if (t % 2 == 0) {
          for (int k = kLocks; k-- > 0;) locks[k].value.unlock();
        } else {
          for (int k = 0; k < kLocks; ++k) locks[k].value.unlock();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int k = 0; k < kLocks; ++k) {
    EXPECT_EQ(counters[k],
              static_cast<std::uint64_t>(kThreads) * (kItersPerThread / 4));
  }
}

// ---------------------------------------------------------------------------
// Hand-over-hand ("coupled") locking along a chain — the usage pattern
// the paper notes does NOT cause multi-waiting (§2.2). Each thread
// walks the chain holding at most two locks at once.
TYPED_TEST(LockProperty, HandOverHandChainWalk) {
  constexpr int kChain = 8;
  std::vector<CacheAligned<TypeParam>> chain(kChain);
  std::vector<std::uint64_t> cells(kChain, 0);
  SpinBarrier start(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < kItersPerThread / 8; ++i) {
        chain[0].value.lock();
        ++cells[0];
        for (int k = 1; k < kChain; ++k) {
          chain[k].value.lock();
          ++cells[k];
          chain[k - 1].value.unlock();
        }
        chain[kChain - 1].value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int k = 0; k < kChain; ++k) {
    EXPECT_EQ(cells[k], static_cast<std::uint64_t>(kThreads) *
                            (kItersPerThread / 8));
  }
}

// ---------------------------------------------------------------------------
// FIFO admission (Theorem 8) for FIFO algorithms: waiters that
// demonstrably enqueued in a known order must enter the critical
// section in that order. Orderly enqueueing is arranged by spacing
// arrivals with generous sleeps while the lock is held.
TYPED_TEST(LockProperty, FifoAdmission) {
  if constexpr (!lock_traits<TypeParam>::is_fifo) {
    GTEST_SKIP() << lock_traits<TypeParam>::name << " is not FIFO";
  } else {
    constexpr int kWaiters = 5;
    constexpr int kRounds = 6;
    for (int round = 0; round < kRounds; ++round) {
      CacheAligned<TypeParam> lock;
      std::vector<int> entry_order;
      std::mutex order_mu;
      std::atomic<int> go{-1};

      lock.value.lock();  // pen the waiters
      std::vector<std::thread> ts;
      for (int w = 0; w < kWaiters; ++w) {
        ts.emplace_back([&, w] {
          // Arrive strictly in index order: waiter w starts its
          // doorstep only when the driver has advanced `go` to w.
          while (go.load(std::memory_order_acquire) < w) {
            std::this_thread::yield();
          }
          lock.value.lock();
          {
            std::lock_guard<std::mutex> g(order_mu);
            entry_order.push_back(w);
          }
          lock.value.unlock();
        });
      }
      // Release arrivals one at a time; the inter-arrival gap dwarfs
      // the doorstep's cost (one atomic op), so enqueue order matches
      // index order with overwhelming probability.
      for (int w = 0; w < kWaiters; ++w) {
        go.store(w, std::memory_order_release);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      lock.value.unlock();
      for (auto& t : ts) t.join();

      ASSERT_EQ(entry_order.size(), static_cast<std::size_t>(kWaiters));
      for (int w = 0; w < kWaiters; ++w) {
        EXPECT_EQ(entry_order[w], w) << "round " << round;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A guard-based critical section propagates exceptions while still
// releasing the lock (RAII contract).
TYPED_TEST(LockProperty, GuardReleasesOnException) {
  CacheAligned<TypeParam> lock;
  EXPECT_THROW(
      {
        LockGuard<TypeParam> g(lock.value);
        throw std::runtime_error("boom");
      },
      std::runtime_error);
  // Lock must be free again: an uncontended acquire succeeds.
  lock.value.lock();
  lock.value.unlock();
}

// ---------------------------------------------------------------------------
// with_lock returns the lambda's value and serializes access.
TYPED_TEST(LockProperty, WithLockReturnsValue) {
  CacheAligned<TypeParam> lock;
  int x = 1;
  const int y = with_lock(lock.value, [&] { return x + 41; });
  EXPECT_EQ(y, 42);
}

}  // namespace
}  // namespace hemlock
