// test_stress.cpp — adversarial and randomized schedules for the
// Hemlock family: random multi-lock workloads (arbitrary hold sets,
// arbitrary release orders), the Figure-9 leader pattern, thread
// churn (records appearing/disappearing mid-contention), reentrancy
// of the registry under lock pressure, and oversubscribed runs.
// These are the schedules most likely to expose protocol races the
// clean unit tests cannot reach.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/hemlock.hpp"
#include "core/hemlock_ah.hpp"
#include "core/hemlock_chain.hpp"
#include "core/hemlock_cv.hpp"
#include "core/hemlock_ohv.hpp"
#include "core/hemlock_overlap.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/prng.hpp"

namespace hemlock {
namespace {

// Schedule budget scaling: full intensity on hosts with a core per
// contending thread; reduced when cores are scarce — there, every
// FIFO handoff costs a preemption (~ms), and multicore budgets
// stretch single cases into minutes of convoy. Invariants checked
// (exact totals) are unaffected; only the number of schedules is.
int scaled(int iters, int threads) {
  return static_cast<int>(std::thread::hardware_concurrency()) >= threads
             ? iters
             : iters / 8 + 1;
}

// Random multi-lock chaos: each thread repeatedly picks a random
// subset of locks, acquires them in ascending index order (deadlock
// discipline), mutates every covered counter, then releases in a
// randomly chosen order. Exact counter totals prove exclusion held
// across every interleaving.
template <typename L>
void random_multilock_chaos(std::uint64_t seed) {
  constexpr int kLocks = 8;
  constexpr int kThreads = 8;
  const int kIters = scaled(2500, kThreads);

  std::vector<CacheAligned<L>> locks(kLocks);
  std::uint64_t counters[kLocks] = {};
  std::uint64_t expected[kLocks] = {};
  std::atomic<std::uint64_t> expected_atomic[kLocks] = {};
  SpinBarrier start(kThreads);

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 prng(seed + t * 7919);
      start.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        // Random non-empty subset.
        std::uint32_t mask = prng.below(1u << kLocks);
        if (mask == 0) mask = 1;
        int held[kLocks];
        int n = 0;
        for (int k = 0; k < kLocks; ++k) {
          if (mask & (1u << k)) held[n++] = k;
        }
        for (int j = 0; j < n; ++j) locks[held[j]].value.lock();
        for (int j = 0; j < n; ++j) {
          ++counters[held[j]];
          expected_atomic[held[j]].fetch_add(1, std::memory_order_relaxed);
        }
        // Random release order.
        for (int j = n - 1; j > 0; --j) {
          std::swap(held[j], held[prng.below(j + 1)]);
        }
        for (int j = 0; j < n; ++j) locks[held[j]].value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int k = 0; k < kLocks; ++k) {
    expected[k] = expected_atomic[k].load();
    EXPECT_EQ(counters[k], expected[k]) << "lock " << k;
  }
}

TEST(StressMultiLock, HemlockCtr) { random_multilock_chaos<Hemlock>(1); }
TEST(StressMultiLock, HemlockNaive) {
  random_multilock_chaos<HemlockNaive>(2);
}
TEST(StressMultiLock, HemlockFaa) { random_multilock_chaos<HemlockFaa>(3); }
TEST(StressMultiLock, HemlockOverlap) {
  random_multilock_chaos<HemlockOverlap>(4);
}
TEST(StressMultiLock, HemlockAh) { random_multilock_chaos<HemlockAh>(5); }
TEST(StressMultiLock, HemlockOhv1) {
  random_multilock_chaos<HemlockOhv1>(6);
}
TEST(StressMultiLock, HemlockOhv2) {
  random_multilock_chaos<HemlockOhv2>(7);
}
TEST(StressMultiLock, HemlockCv) { random_multilock_chaos<HemlockCv>(8); }
TEST(StressMultiLock, HemlockChain) {
  random_multilock_chaos<HemlockChain>(9);
}

// The Figure-9 adversary, verified for correctness rather than speed:
// a leader sweeps all locks up and down while others hammer random
// ones; per-lock counters must stay exact despite maximal
// multi-waiting on the leader's Grant word.
template <typename L>
void figure9_shape() {
  constexpr int kLocks = 10;
  constexpr int kThreads = 6;
  std::vector<CacheAligned<L>> locks(kLocks);
  std::uint64_t counters[kLocks] = {};
  std::atomic<std::uint64_t> expected[kLocks] = {};
  std::atomic<bool> stop{false};
  SpinBarrier start(kThreads);

  std::vector<std::thread> ts;
  ts.emplace_back([&] {  // leader
    const int steps = scaled(400, kThreads);
    start.arrive_and_wait();
    for (int step = 0; step < steps; ++step) {
      for (int k = 0; k < kLocks; ++k) locks[k].value.lock();
      for (int k = 0; k < kLocks; ++k) {
        ++counters[k];
        expected[k].fetch_add(1, std::memory_order_relaxed);
      }
      for (int k = kLocks; k-- > 0;) locks[k].value.unlock();
    }
    stop.store(true);
  });
  for (int t = 1; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 prng(42 + t);
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(prng.below(kLocks));
        locks[k].value.lock();
        ++counters[k];
        expected[k].fetch_add(1, std::memory_order_relaxed);
        locks[k].value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int k = 0; k < kLocks; ++k) {
    EXPECT_EQ(counters[k], expected[k].load()) << "lock " << k;
  }
}

TEST(StressFigure9, Hemlock) { figure9_shape<Hemlock>(); }
TEST(StressFigure9, HemlockNaive) { figure9_shape<HemlockNaive>(); }
TEST(StressFigure9, HemlockAh) { figure9_shape<HemlockAh>(); }
TEST(StressFigure9, HemlockOhv1) { figure9_shape<HemlockOhv1>(); }

// Thread churn: short-lived threads contend, exit, and are replaced
// while the lock stays hot — exercising ThreadRec registration,
// Grant draining at exit (Appendix A), and registry unlink under
// contention.
template <typename L>
void thread_churn() {
  CacheAligned<L> lock;
  std::uint64_t counter = 0;
  constexpr int kWaves = 12;
  constexpr int kThreadsPerWave = 6;
  const int kItersPerThread = scaled(400, kThreadsPerWave);
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreadsPerWave; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < kItersPerThread; ++i) {
          lock.value.lock();
          ++counter;
          lock.value.unlock();
        }
      });
    }
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kWaves) * kThreadsPerWave *
                         kItersPerThread);
}

TEST(StressChurn, Hemlock) { thread_churn<Hemlock>(); }
TEST(StressChurn, HemlockOverlap) { thread_churn<HemlockOverlap>(); }
TEST(StressChurn, HemlockCv) { thread_churn<HemlockCv>(); }
TEST(StressChurn, HemlockChain) { thread_churn<HemlockChain>(); }

// Oversubscription: 3x hardware threads on one lock. FIFO spin locks
// survive preemption (slowly); totals must stay exact.
TEST(StressOversubscribed, HemlockAdaptive) {
  CacheAligned<HemlockAdaptive> lock;
  const unsigned threads = std::thread::hardware_concurrency() * 3;
  std::uint64_t counter = 0;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 300; ++i) {
        lock.value.lock();
        ++counter;
        lock.value.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * 300);
}

// Lock storms with mixed try_lock/lock traffic across the family.
template <typename L>
void mixed_try_storm() {
  CacheAligned<L> lock;
  std::uint64_t counter = 0;
  std::atomic<std::uint64_t> successes{0};
  SpinBarrier start(6);
  std::vector<std::thread> ts;
  for (int t = 0; t < 6; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 prng(t + 1);
      const int iters = scaled(3000, 6);
      start.arrive_and_wait();
      for (int i = 0; i < iters; ++i) {
        if (prng.below(2) == 0) {
          lock.value.lock();
          ++counter;
          successes.fetch_add(1, std::memory_order_relaxed);
          lock.value.unlock();
        } else if (lock.value.try_lock()) {
          ++counter;
          successes.fetch_add(1, std::memory_order_relaxed);
          lock.value.unlock();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, successes.load());
}

TEST(StressTryLock, Hemlock) { mixed_try_storm<Hemlock>(); }
TEST(StressTryLock, HemlockAh) { mixed_try_storm<HemlockAh>(); }
TEST(StressTryLock, HemlockOhv1) { mixed_try_storm<HemlockOhv1>(); }
TEST(StressTryLock, HemlockOhv2) { mixed_try_storm<HemlockOhv2>(); }
TEST(StressTryLock, HemlockOverlap) { mixed_try_storm<HemlockOverlap>(); }
TEST(StressTryLock, HemlockChain) { mixed_try_storm<HemlockChain>(); }

}  // namespace
}  // namespace hemlock
