// test_perf_counters.cpp — the optional PMU reader. Containers often
// deny perf_event_open; every behaviour must degrade gracefully, and
// when counters ARE available they must actually count.
#include <gtest/gtest.h>

#include <cstdint>

#include "stats/perf_counters.hpp"

namespace hemlock {
namespace {

TEST(PerfCounters, UnavailableCounterIsInertNotFatal) {
  PerfCounter c(PerfCounter::Event::kCacheMisses);
  // Whether or not the kernel granted it, the API must be callable.
  c.start();
  volatile int sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
  c.stop();
  if (!c.available()) {
    EXPECT_EQ(c.read(), 0u);
  }
  EXPECT_STREQ(c.name(), "cache-misses");
}

TEST(PerfCounters, InstructionsCountWhenAvailable) {
  PerfCounter c(PerfCounter::Event::kInstructions);
  if (!c.available()) {
    GTEST_SKIP() << "perf_event_open not permitted in this environment";
  }
  c.start();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  c.stop();
  EXPECT_GT(c.read(), 100000u);  // at least one instruction per iter
}

TEST(PerfCounters, SampleHelperReportsAvailability) {
  bool ran = false;
  const auto sample = sample_cache_traffic([&] { ran = true; });
  EXPECT_TRUE(ran);  // the workload runs regardless of PMU access
  if (sample.available) {
    EXPECT_GE(sample.references, sample.misses);
  } else {
    EXPECT_EQ(sample.references, 0u);
    EXPECT_EQ(sample.misses, 0u);
  }
}

TEST(PerfCounters, EventNamesAreStable) {
  EXPECT_STREQ(PerfCounter(PerfCounter::Event::kCycles).name(), "cycles");
  EXPECT_STREQ(PerfCounter(PerfCounter::Event::kCacheReferences).name(),
               "cache-references");
  EXPECT_STREQ(PerfCounter(PerfCounter::Event::kInstructions).name(),
               "instructions");
}

}  // namespace
}  // namespace hemlock
