// test_param_sweeps.cpp — value-parameterized (TEST_P) property
// sweeps across configuration grids: MutexBench workload points,
// coherence-simulator protocol × thread-count combinations, histogram
// geometries, and multi-waiting shapes. These complement the typed
// suites (which sweep lock *types*) by sweeping *configurations* for
// a fixed set of invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "coherence/protocol.hpp"
#include "coherence/sim_bench.hpp"
#include "coherence/sim_locks.hpp"
#include "core/hemlock.hpp"
#include "harness/mutexbench.hpp"
#include "stats/histogram.hpp"

namespace hemlock {
namespace {

// ------------------------------------------------------------------
// MutexBench invariants over a (threads, cs_steps, ncs_steps) grid:
// iterations conserve across per-thread counts, throughput is
// positive, and the configured workload terminates.
using BenchPoint = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class MutexBenchGrid : public ::testing::TestWithParam<BenchPoint> {};

TEST_P(MutexBenchGrid, ConservesIterationsAndTerminates) {
  const auto [threads, cs, ncs] = GetParam();
  MutexBenchConfig cfg;
  cfg.threads = threads;
  cfg.duration_ms = 40;
  cfg.cs_shared_prng_steps = cs;
  cfg.ncs_max_prng_steps = ncs;
  const auto res = run_mutexbench<Hemlock>(cfg);
  std::uint64_t sum = 0;
  for (auto c : res.per_thread) sum += c;
  EXPECT_EQ(sum, res.total_iterations);
  EXPECT_GT(res.total_iterations, 0u);
  EXPECT_GT(res.msteps_per_sec(), 0.0);
  EXPECT_LE(res.fairness(), 1.0 + 1e-9);
  EXPECT_GT(res.fairness(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadGrid, MutexBenchGrid,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),   // threads
                       ::testing::Values(0u, 5u),            // CS steps
                       ::testing::Values(0u, 400u)),         // NCS steps
    [](const ::testing::TestParamInfo<BenchPoint>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_cs" +
             std::to_string(std::get<1>(info.param)) + "_ncs" +
             std::to_string(std::get<2>(info.param));
    });

// ------------------------------------------------------------------
// Coherence-simulator invariants over protocol × threads: counter
// conservation (hits + offcore == ops classified), the CTR ordering,
// and zero-traffic uncontended runs — for every protocol the paper's
// hosts use.
using SimPoint = std::tuple<coherence::Protocol, std::uint32_t>;

class CoherenceGrid : public ::testing::TestWithParam<SimPoint> {};

TEST_P(CoherenceGrid, CountersConsistentAndCtrOrdered) {
  const auto [protocol, threads] = GetParam();
  const auto ctr = coherence::run_sim_bench<coherence::SimHemlockCtr>(
      protocol, threads, 200);
  const auto naive = coherence::run_sim_bench<coherence::SimHemlockNaive>(
      protocol, threads, 200);

  for (const auto* r : {&ctr, &naive}) {
    // Every simulated access is either a local hit or an offcore
    // transaction (reads and RFOs partition the misses).
    EXPECT_EQ(r->totals.hits + r->totals.offcore_total(), r->totals.ops);
    // Upgrades are a subset of RFOs.
    EXPECT_LE(r->totals.upgrades, r->totals.rfos);
    EXPECT_EQ(r->pairs, static_cast<std::uint64_t>(threads) * 200);
  }
  // The CTR-beats-naive ordering is a statement about concurrent
  // polling; it only manifests when every simulated core is a real
  // core (see test_coherence.cpp's SimLocks skips). Report the
  // narrowing as SKIPPED — a silently passing case would let a CTR
  // regression land unnoticed on small CI hosts.
  if (threads < 8) return;  // ordering not asserted at low contention
  if (std::thread::hardware_concurrency() < threads) {
    GTEST_SKIP() << "CTR-vs-naive ordering needs a core per polling "
                    "thread (" << threads << " > "
                 << std::thread::hardware_concurrency()
                 << "); conservation invariants above were still checked";
  }
  EXPECT_LT(ctr.offcore_per_pair(), naive.offcore_per_pair())
      << coherence::protocol_name(protocol) << " @ " << threads;
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolGrid, CoherenceGrid,
    ::testing::Combine(::testing::Values(coherence::Protocol::kMesi,
                                         coherence::Protocol::kMesif,
                                         coherence::Protocol::kMoesi),
                       ::testing::Values(1u, 4u, 8u, 12u)),
    [](const ::testing::TestParamInfo<SimPoint>& info) {
      return std::string(
                 coherence::protocol_name(std::get<0>(info.param))) +
             "_t" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------------
// Histogram relative-error bound over sub-bucket geometries: for b
// sub-bucket bits the quantile error must stay below 2^-b.
class HistogramGeometry : public ::testing::TestWithParam<unsigned> {};

TEST_P(HistogramGeometry, QuantileErrorWithinGeometryBound) {
  const unsigned bits = GetParam();
  Histogram h(bits);
  const double bound = 1.0 / static_cast<double>(1u << bits);
  for (std::uint64_t v : {100ull, 10'000ull, 1'000'000ull, 123'456'789ull}) {
    h.reset();
    for (int i = 0; i < 101; ++i) h.record(v);
    const double err =
        std::abs(static_cast<double>(h.quantile(0.5)) -
                 static_cast<double>(v)) /
        static_cast<double>(v);
    EXPECT_LE(err, bound + 1e-12) << "value " << v << " bits " << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, HistogramGeometry,
                         ::testing::Values(3u, 5u, 7u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "bits" + std::to_string(info.param);
                         });

// ------------------------------------------------------------------
// Multi-waiting driver over lock-set sizes: the leader terminates and
// scores, whatever the lock-array size (including the degenerate 1).
class MultiWaitShape : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiWaitShape, LeaderScoresForAnyLockCount) {
  MultiWaitConfig cfg;
  cfg.threads = 4;
  cfg.num_locks = GetParam();
  cfg.duration_ms = 40;
  const auto res = run_multiwait_bench<Hemlock>(cfg);
  EXPECT_GT(res.leader_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(LockCounts, MultiWaitShape,
                         ::testing::Values(1u, 2u, 10u, 32u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "locks" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace hemlock
