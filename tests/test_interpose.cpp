// test_interpose.cpp — the pthread_mutex_t shim: overlay geometry,
// lazy adoption of PTHREAD_MUTEX_INITIALIZER storage, factory-based
// algorithm selection (HEMLOCK_LOCK), per-algorithm mutual exclusion
// through the shim surface, and a full LD_PRELOAD integration run of
// the plain-pthreads demo binary against every supported algorithm.
#include <gtest/gtest.h>

#include <errno.h>
#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "interpose/shim_mutex.hpp"

namespace hemlock::interpose {
namespace {

TEST(ShimMutex, OverlayFitsPthreadStorage) {
  EXPECT_LE(sizeof(ShimMutex), sizeof(pthread_mutex_t));
}

// The shim keeps no name table of its own: HEMLOCK_LOCK values are
// factory names, filtered only by hostability. The classic
// interposition roster must all be present.
TEST(ShimMutex, SupportedNamesAreTheHostableFactorySubset) {
  const auto& factory = LockFactory::instance();
  const auto supported = supported_lock_names();
  ASSERT_FALSE(supported.empty());

  // Exactly the hostable subset, in registry order.
  std::vector<std::string_view> expected;
  for (const LockVTable* vt : factory.entries()) {
    if (shim_hostable(vt->info)) expected.push_back(vt->info.name);
  }
  EXPECT_EQ(supported, expected);

  for (const char* name :
       {"hemlock", "hemlock-", "hemlock-faa", "hemlock-ohv1", "hemlock-ohv2",
        "mcs", "clh", "ticket", "tas", "ttas"}) {
    EXPECT_NE(std::find(supported.begin(), supported.end(), name),
              supported.end())
        << name;
  }
}

TEST(ShimMutex, RefusesAggressiveHandOverAndCondvarParking) {
  // Appendix B: AH's speculative store is unsafe when the mutex's
  // memory may be freed by its last user — the shim must not offer
  // it. hemlock-cv would re-enter the interposed pthread surface.
  const auto& factory = LockFactory::instance();
  for (const char* name : {"hemlock-ah", "hemlock-cv"}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;        // in the factory roster...
    EXPECT_FALSE(shim_hostable(*info)) << name;  // ...but not hostable
    EXPECT_FALSE(info->pthread_overlay_safe) << name;
  }
  // Size-excluded: bodies larger than the overlay budget.
  for (const char* name : {"mcs-k42", "anderson", "pthread"}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(shim_hostable(*info)) << name;
    EXPECT_GT(info->size_bytes, kShimStorageBytes) << name;
  }
}

TEST(ShimMutex, SelectedLockIsHostable) {
  // Whatever the environment says, the process-wide selection must
  // resolve to a hostable factory entry (unknown names fall back).
  const LockVTable& vt = selected_lock();
  EXPECT_TRUE(shim_hostable(vt.info));
  EXPECT_NE(LockFactory::instance().find(vt.info.name), nullptr);
}

// The (HEMLOCK_LOCK, HEMLOCK_WAIT) selection rule, exercised directly
// through the pure resolver so every combination is testable without
// re-execing the process.
TEST(ShimMutex, WaitTierReselectsTheLockVariant) {
  const auto resolved = [](const char* lock_env, const char* wait_env) {
    return resolve_shim_lock(lock_env, wait_env).info.name;
  };
  // Explicit tiers move within the algorithm's family.
  EXPECT_EQ(resolved("mcs", "spin"), "mcs");
  EXPECT_EQ(resolved("mcs", "yield"), "mcs-yield");
  EXPECT_EQ(resolved("mcs", "park"), "mcs-park");
  EXPECT_EQ(resolved("clh", "park"), "clh-park");
  EXPECT_EQ(resolved("ticket", "park"), "ticket-park");
  // ...including back down from an explicit variant name.
  EXPECT_EQ(resolved("mcs-park", "spin"), "mcs");
  EXPECT_EQ(resolved("mcs-adaptive", "park"), "mcs-park");
  // The Hemlock family parks via its futex Grant policy; "yield" is
  // served by its governed policy (no fixed yield tier exists).
  EXPECT_EQ(resolved("hemlock", "park"), "hemlock-futex");
  EXPECT_EQ(resolved("hemlock", "yield"), "hemlock-adaptive");
  EXPECT_EQ(resolved("hemlock", "spin"), "hemlock");
  // Algorithms without the requested tier keep their selection.
  EXPECT_EQ(resolved("tas", "park"), "tas");
  EXPECT_EQ(resolved("hemlock-faa", "park"), "hemlock-faa");
}

TEST(ShimMutex, AutoTierHostsPureSpinQueueLocksAsGoverned) {
  const auto resolved = [](const char* lock_env, const char* wait_env) {
    return resolve_shim_lock(lock_env, wait_env).info.name;
  };
  // Unset/auto: pure busy-wait queue locks become oversubscription-
  // adaptive, so the MCS-through-the-shim convoy (ROADMAP) cannot
  // recur by default.
  EXPECT_EQ(resolved("mcs", nullptr), "mcs-adaptive");
  EXPECT_EQ(resolved("clh", ""), "clh-adaptive");
  EXPECT_EQ(resolved("ticket", "auto"), "ticket-adaptive");
  // The default selection (Hemlock CTR) busy-waits too, so auto hosts
  // it on the family's governed grant policy — the gate is the
  // oversub_safe descriptor, not a tier name.
  EXPECT_EQ(resolved(nullptr, nullptr), "hemlock-adaptive");
  EXPECT_EQ(resolved("hemlock", nullptr), "hemlock-adaptive");
  // Explicitly-chosen oversubscription-safe variants are honored.
  EXPECT_EQ(resolved("mcs-park", nullptr), "mcs-park");
  EXPECT_EQ(resolved("hemlock-futex", nullptr), "hemlock-futex");
  EXPECT_EQ(resolved("hemlock-adaptive", nullptr), "hemlock-adaptive");
  // The "-spin" alias is the explicit pure-spin request: honored.
  EXPECT_EQ(resolved("mcs-spin", nullptr), "mcs");
  EXPECT_EQ(resolved("hemlock-spin", nullptr), "hemlock");
  // Busy-waiting algorithms without an adaptive sibling stay put.
  EXPECT_EQ(resolved("tas", nullptr), "tas");
  EXPECT_EQ(resolved("ttas", nullptr), "ttas");
  EXPECT_EQ(resolved("hemlock-faa", nullptr), "hemlock-faa");
  // Unknown tier values degrade to auto (with a stderr note).
  EXPECT_EQ(resolved("mcs", "bogus"), "mcs-adaptive");
  // Unknown lock names still fall back to the default.
  EXPECT_EQ(resolved("nonsense", "park"), "hemlock-futex");
}

TEST(ShimMutex, InitLockUnlockDestroyRoundTrip) {
  pthread_mutex_t m;
  ASSERT_EQ(ShimMutex::shim_init(&m), 0);
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_trylock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
  // Re-init after destroy must work (POSIX lifecycle).
  ASSERT_EQ(ShimMutex::shim_init(&m), 0);
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
}

TEST(ShimMutex, StaticInitializerAdoptedLazily) {
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;  // never shim_init'ed
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
}

TEST(ShimMutex, ConcurrentFirstUseAdoptsExactlyOnce) {
  for (int round = 0; round < 20; ++round) {
    pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
    long counter = 0;
    std::atomic<int> go{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 8; ++t) {
      ts.emplace_back([&] {
        go.fetch_add(1);
        while (go.load() < 8) {
        }
        for (int i = 0; i < 1000; ++i) {
          ShimMutex::shim_lock(&m);
          ++counter;
          ShimMutex::shim_unlock(&m);
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(counter, 8000);
    ShimMutex::shim_destroy(&m);
  }
}

TEST(ShimMutex, TrylockContract) {
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  ASSERT_EQ(ShimMutex::shim_trylock(&m), 0);
  std::thread([&] { EXPECT_EQ(ShimMutex::shim_trylock(&m), EBUSY); }).join();
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  ShimMutex::shim_destroy(&m);
}

// Full integration: run the plain-pthreads demo binary under
// LD_PRELOAD for every supported algorithm. The demo exits non-zero
// if its counters are wrong, so one EXPECT per algorithm covers
// adoption, exclusion, trylock and destroy through the real dynamic
// linker path.
TEST(PreloadIntegration, DemoRunsCorrectlyUnderEveryAlgorithm) {
#if !defined(HEMLOCK_PRELOAD_SO) || !defined(HEMLOCK_PRELOAD_DEMO)
  GTEST_SKIP() << "preload paths not configured";
#else
  const std::string preload = HEMLOCK_PRELOAD_SO;
  const std::string demo = HEMLOCK_PRELOAD_DEMO;
  // Bounded per-thread iterations: queue-lock handoffs run at
  // scheduler speed when the host has fewer cores than demo threads,
  // and this sweep covers every supported algorithm.
  const std::string env = "HEMLOCK_DEMO_ITERS=2000 LD_PRELOAD=" + preload;
  for (const std::string_view algo : supported_lock_names()) {
    const std::string cmd = env + " HEMLOCK_LOCK=" + std::string(algo) + " " +
                            demo + " > /dev/null";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << "HEMLOCK_LOCK=" << algo;
  }
  // Unknown algorithm falls back to the default but still works.
  const std::string fallback =
      env + " HEMLOCK_LOCK=nonsense " + demo + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(fallback.c_str()), 0);
#endif
}

}  // namespace
}  // namespace hemlock::interpose
