// test_interpose.cpp — the pthread_mutex_t shim: overlay geometry,
// lazy adoption of PTHREAD_MUTEX_INITIALIZER storage, env-var
// algorithm selection, per-kind mutual exclusion through the shim
// surface, and a full LD_PRELOAD integration run of the plain-pthreads
// demo binary against every supported algorithm.
#include <gtest/gtest.h>

#include <errno.h>
#include <pthread.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "interpose/shim_mutex.hpp"

namespace hemlock::interpose {
namespace {

TEST(ShimMutex, OverlayFitsPthreadStorage) {
  EXPECT_LE(sizeof(ShimMutex), sizeof(pthread_mutex_t));
}

TEST(ShimMutex, ParseKnownNames) {
  LockKind k;
  EXPECT_TRUE(parse_lock_kind("hemlock", &k));
  EXPECT_EQ(k, LockKind::kHemlock);
  EXPECT_TRUE(parse_lock_kind("hemlock-", &k));
  EXPECT_EQ(k, LockKind::kHemlockNaive);
  EXPECT_TRUE(parse_lock_kind("mcs", &k));
  EXPECT_TRUE(parse_lock_kind("clh", &k));
  EXPECT_TRUE(parse_lock_kind("ticket", &k));
  EXPECT_TRUE(parse_lock_kind("hemlock-ohv1", &k));
  EXPECT_TRUE(parse_lock_kind("hemlock-ohv2", &k));
  EXPECT_FALSE(parse_lock_kind("bogus", &k));
}

TEST(ShimMutex, RefusesAggressiveHandOver) {
  // Appendix B: AH's speculative store is unsafe when the mutex's
  // memory may be freed by its last user — the shim must not offer it.
  LockKind k;
  EXPECT_FALSE(parse_lock_kind("hemlock-ah", &k));
}

TEST(ShimMutex, InitLockUnlockDestroyRoundTrip) {
  pthread_mutex_t m;
  ASSERT_EQ(ShimMutex::shim_init(&m), 0);
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_trylock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
  // Re-init after destroy must work (POSIX lifecycle).
  ASSERT_EQ(ShimMutex::shim_init(&m), 0);
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
}

TEST(ShimMutex, StaticInitializerAdoptedLazily) {
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;  // never shim_init'ed
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
}

TEST(ShimMutex, ConcurrentFirstUseAdoptsExactlyOnce) {
  for (int round = 0; round < 20; ++round) {
    pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
    long counter = 0;
    std::atomic<int> go{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 8; ++t) {
      ts.emplace_back([&] {
        go.fetch_add(1);
        while (go.load() < 8) {
        }
        for (int i = 0; i < 1000; ++i) {
          ShimMutex::shim_lock(&m);
          ++counter;
          ShimMutex::shim_unlock(&m);
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(counter, 8000);
    ShimMutex::shim_destroy(&m);
  }
}

TEST(ShimMutex, TrylockContract) {
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  ASSERT_EQ(ShimMutex::shim_trylock(&m), 0);
  std::thread([&] { EXPECT_EQ(ShimMutex::shim_trylock(&m), EBUSY); }).join();
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  ShimMutex::shim_destroy(&m);
}

// Full integration: run the plain-pthreads demo binary under
// LD_PRELOAD for every supported algorithm. The demo exits non-zero
// if its counters are wrong, so one EXPECT per algorithm covers
// adoption, exclusion, trylock and destroy through the real dynamic
// linker path.
TEST(PreloadIntegration, DemoRunsCorrectlyUnderEveryAlgorithm) {
#if !defined(HEMLOCK_PRELOAD_SO) || !defined(HEMLOCK_PRELOAD_DEMO)
  GTEST_SKIP() << "preload paths not configured";
#else
  const std::string preload = HEMLOCK_PRELOAD_SO;
  const std::string demo = HEMLOCK_PRELOAD_DEMO;
  for (const char* algo :
       {"hemlock", "hemlock-", "hemlock-faa", "hemlock-ohv1", "hemlock-ohv2",
        "mcs", "clh", "ticket", "tas", "ttas"}) {
    const std::string cmd = "LD_PRELOAD=" + preload + " HEMLOCK_LOCK=" +
                            std::string(algo) + " " + demo + " > /dev/null";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << "HEMLOCK_LOCK=" << algo;
  }
  // Unknown algorithm falls back to the default but still works.
  const std::string fallback = "LD_PRELOAD=" + preload +
                               " HEMLOCK_LOCK=nonsense " + demo +
                               " > /dev/null 2>&1";
  EXPECT_EQ(std::system(fallback.c_str()), 0);
#endif
}

}  // namespace
}  // namespace hemlock::interpose
