// test_interpose.cpp — the pthread_mutex_t shim: overlay geometry,
// lazy adoption of PTHREAD_MUTEX_INITIALIZER storage, factory-based
// algorithm selection (HEMLOCK_LOCK), per-algorithm mutual exclusion
// through the shim surface, the pthread_cond_t futex overlay
// (lost-wakeup stress, timedwait accuracy, broadcast-then-destroy,
// spurious-wakeup tolerance — each across the waiting tiers), and a
// full LD_PRELOAD integration run of the plain-pthreads demo binaries
// against every supported algorithm.
#include <gtest/gtest.h>

#include <errno.h>
#include <pthread.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "interpose/foreign.hpp"
#include "interpose/shim_cond.hpp"
#include "interpose/shim_mutex.hpp"
#include "interpose/shim_rwlock.hpp"
#include "runtime/governor.hpp"

namespace hemlock::interpose {
namespace {

TEST(ShimMutex, OverlayFitsPthreadStorage) {
  EXPECT_LE(sizeof(ShimMutex), sizeof(pthread_mutex_t));
}

// The shim keeps no name table of its own: HEMLOCK_LOCK values are
// factory names, filtered only by hostability. The classic
// interposition roster must all be present.
TEST(ShimMutex, SupportedNamesAreTheHostableFactorySubset) {
  const auto& factory = LockFactory::instance();
  const auto supported = supported_lock_names();
  ASSERT_FALSE(supported.empty());

  // Exactly the hostable subset, in registry order.
  std::vector<std::string_view> expected;
  for (const LockVTable* vt : factory.entries()) {
    if (shim_hostable(vt->info)) expected.push_back(vt->info.name);
  }
  EXPECT_EQ(supported, expected);

  for (const char* name :
       {"hemlock", "hemlock-", "hemlock-faa", "hemlock-ohv1", "hemlock-ohv2",
        "mcs", "clh", "ticket", "tas", "ttas"}) {
    EXPECT_NE(std::find(supported.begin(), supported.end(), name),
              supported.end())
        << name;
  }
}

TEST(ShimMutex, RefusesAggressiveHandOverAndCondvarParking) {
  // Appendix B: AH's speculative store is unsafe when the mutex's
  // memory may be freed by its last user — the shim must not offer
  // it. hemlock-cv would re-enter the interposed pthread surface.
  const auto& factory = LockFactory::instance();
  for (const char* name : {"hemlock-ah", "hemlock-cv"}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;        // in the factory roster...
    EXPECT_FALSE(shim_hostable(*info)) << name;  // ...but not hostable
    EXPECT_FALSE(info->pthread_overlay_safe) << name;
  }
  // Size-excluded: bodies larger than the overlay budget.
  for (const char* name : {"mcs-k42", "pthread"}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(shim_hostable(*info)) << name;
    EXPECT_GT(info->size_bytes, kShimStorageBytes) << name;
  }
  // Anderson rides the roster boxed (locks/boxed.hpp): its erased
  // body now FITS the overlay budget, but the boxing ctor mallocs —
  // hosting it could re-enter the shim through the allocator's own
  // lock, so the traits opt it out instead.
  {
    const LockInfo* info = factory.info("anderson");
    ASSERT_NE(info, nullptr);
    EXPECT_LE(info->size_bytes, kShimStorageBytes);
    EXPECT_FALSE(info->pthread_overlay_safe);
    EXPECT_FALSE(shim_hostable(*info));
  }
}

TEST(ShimMutex, SelectedLockIsHostable) {
  // Whatever the environment says, the process-wide selection must
  // resolve to a hostable factory entry (unknown names fall back).
  const LockVTable& vt = selected_lock();
  EXPECT_TRUE(shim_hostable(vt.info));
  EXPECT_NE(LockFactory::instance().find(vt.info.name), nullptr);
}

// The (HEMLOCK_LOCK, HEMLOCK_WAIT) selection rule, exercised directly
// through the pure resolver so every combination is testable without
// re-execing the process.
TEST(ShimMutex, WaitTierReselectsTheLockVariant) {
  const auto resolved = [](const char* lock_env, const char* wait_env) {
    return resolve_shim_lock(lock_env, wait_env).info.name;
  };
  // Explicit tiers move within the algorithm's family.
  EXPECT_EQ(resolved("mcs", "spin"), "mcs");
  EXPECT_EQ(resolved("mcs", "yield"), "mcs-yield");
  EXPECT_EQ(resolved("mcs", "park"), "mcs-park");
  EXPECT_EQ(resolved("clh", "park"), "clh-park");
  EXPECT_EQ(resolved("ticket", "park"), "ticket-park");
  // ...including back down from an explicit variant name.
  EXPECT_EQ(resolved("mcs-park", "spin"), "mcs");
  EXPECT_EQ(resolved("mcs-adaptive", "park"), "mcs-park");
  // The Hemlock family parks via its futex Grant policy; "yield" is
  // served by its governed policy (no fixed yield tier exists).
  EXPECT_EQ(resolved("hemlock", "park"), "hemlock-futex");
  EXPECT_EQ(resolved("hemlock", "yield"), "hemlock-adaptive");
  EXPECT_EQ(resolved("hemlock", "spin"), "hemlock");
  // Algorithms without the requested tier keep their selection.
  EXPECT_EQ(resolved("tas", "park"), "tas");
  EXPECT_EQ(resolved("hemlock-faa", "park"), "hemlock-faa");
}

TEST(ShimMutex, AutoTierHostsPureSpinQueueLocksAsGoverned) {
  const auto resolved = [](const char* lock_env, const char* wait_env) {
    return resolve_shim_lock(lock_env, wait_env).info.name;
  };
  // Unset/auto: pure busy-wait queue locks become oversubscription-
  // adaptive, so the MCS-through-the-shim convoy (ROADMAP) cannot
  // recur by default.
  EXPECT_EQ(resolved("mcs", nullptr), "mcs-adaptive");
  EXPECT_EQ(resolved("clh", ""), "clh-adaptive");
  EXPECT_EQ(resolved("ticket", "auto"), "ticket-adaptive");
  // The default selection (Hemlock CTR) busy-waits too, so auto hosts
  // it on the family's governed grant policy — the gate is the
  // oversub_safe descriptor, not a tier name.
  EXPECT_EQ(resolved(nullptr, nullptr), "hemlock-adaptive");
  EXPECT_EQ(resolved("hemlock", nullptr), "hemlock-adaptive");
  // Explicitly-chosen oversubscription-safe variants are honored.
  EXPECT_EQ(resolved("mcs-park", nullptr), "mcs-park");
  EXPECT_EQ(resolved("hemlock-futex", nullptr), "hemlock-futex");
  EXPECT_EQ(resolved("hemlock-adaptive", nullptr), "hemlock-adaptive");
  // The "-spin" alias is the explicit pure-spin request: honored.
  EXPECT_EQ(resolved("mcs-spin", nullptr), "mcs");
  EXPECT_EQ(resolved("hemlock-spin", nullptr), "hemlock");
  // Busy-waiting algorithms without an adaptive sibling stay put.
  EXPECT_EQ(resolved("tas", nullptr), "tas");
  EXPECT_EQ(resolved("ttas", nullptr), "ttas");
  EXPECT_EQ(resolved("hemlock-faa", nullptr), "hemlock-faa");
  // Unknown tier values degrade to auto (with a stderr note).
  EXPECT_EQ(resolved("mcs", "bogus"), "mcs-adaptive");
  // Unknown lock names still fall back to the default.
  EXPECT_EQ(resolved("nonsense", "park"), "hemlock-futex");
}

TEST(ShimMutex, InitLockUnlockDestroyRoundTrip) {
  pthread_mutex_t m;
  ASSERT_EQ(ShimMutex::shim_init(&m), 0);
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_trylock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
  // Re-init after destroy must work (POSIX lifecycle).
  ASSERT_EQ(ShimMutex::shim_init(&m), 0);
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
}

TEST(ShimMutex, StaticInitializerAdoptedLazily) {
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;  // never shim_init'ed
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
}

TEST(ShimMutex, ConcurrentFirstUseAdoptsExactlyOnce) {
  for (int round = 0; round < 20; ++round) {
    pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
    long counter = 0;
    std::atomic<int> go{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 8; ++t) {
      ts.emplace_back([&] {
        go.fetch_add(1);
        while (go.load() < 8) {
        }
        for (int i = 0; i < 1000; ++i) {
          ShimMutex::shim_lock(&m);
          ++counter;
          ShimMutex::shim_unlock(&m);
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(counter, 8000);
    ShimMutex::shim_destroy(&m);
  }
}

TEST(ShimMutex, TrylockContract) {
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  ASSERT_EQ(ShimMutex::shim_trylock(&m), 0);
  std::thread([&] { EXPECT_EQ(ShimMutex::shim_trylock(&m), EBUSY); }).join();
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  ShimMutex::shim_destroy(&m);
}

// ===================================================================
// The pthread_cond_t overlay (shim_cond).
// ===================================================================

TEST(ShimCond, OverlayFitsPthreadStorage) {
  EXPECT_LE(sizeof(ShimCond), sizeof(pthread_cond_t));
  EXPECT_LE(alignof(ShimCond), alignof(pthread_cond_t));
}

// Condvar coverage is a descriptor-driven subset of mutex coverage:
// every hostable algorithm currently qualifies, the excluded-by-design
// entries stay excluded, and the LockInfo bit is what decides.
TEST(ShimCond, CoverageIsTheCondvarCapableFactorySubset) {
  const auto& factory = LockFactory::instance();
  const auto supported = supported_cond_lock_names();
  ASSERT_FALSE(supported.empty());
  std::vector<std::string_view> expected;
  for (const LockVTable* vt : factory.entries()) {
    if (shim_cond_capable(vt->info)) expected.push_back(vt->info.name);
  }
  EXPECT_EQ(supported, expected);
  // The overlay re-acquires through the shim's vtable, so condvar
  // coverage currently equals mutex coverage.
  EXPECT_EQ(supported, supported_lock_names());
  for (const char* name : {"hemlock-ah", "hemlock-cv", "pthread"}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(shim_cond_capable(*info)) << name;
  }
}

namespace {

/// Restores the governor's automatic tier classification on scope
/// exit, so a failing ASSERT cannot leak a forced tier into sibling
/// tests.
struct TierGuard {
  explicit TierGuard(WaitTier t) { ContentionGovernor::instance().force(t); }
  ~TierGuard() { ContentionGovernor::instance().clear_force(); }
};

constexpr WaitTier kAllTiers[] = {WaitTier::kSpin, WaitTier::kYield,
                                  WaitTier::kPark};

/// A bounded producer/consumer queue driven entirely through the shim
/// surface (ShimMutex + ShimCond static entry points — the same code
/// the LD_PRELOAD symbols call). Totals are exact iff no wakeup is
/// lost and exclusion holds.
struct BoundedQueue {
  static constexpr int kCapacity = 4;

  pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t not_empty = PTHREAD_COND_INITIALIZER;
  pthread_cond_t not_full = PTHREAD_COND_INITIALIZER;
  long ring[kCapacity] = {};
  int head = 0;
  int size = 0;
  long produced = 0, produced_sum = 0;
  long consumed = 0, consumed_sum = 0;
  bool done = false;

  void push(long item) {
    ShimMutex::shim_lock(&mu);
    while (size == kCapacity) ShimCond::shim_wait(&not_full, &mu);
    ring[(head + size) % kCapacity] = item;
    ++size;
    ++produced;
    produced_sum += item;
    ShimMutex::shim_unlock(&mu);
    ShimCond::shim_signal(&not_empty);
  }

  /// One consume; false when production has finished and the ring is
  /// drained. Alternates untimed and timed waits so both paths run.
  bool pop() {
    ShimMutex::shim_lock(&mu);
    while (size == 0 && !done) {
      if ((consumed & 1) == 0) {
        ShimCond::shim_wait(&not_empty, &mu);
      } else {
        struct timespec deadline;
        clock_gettime(CLOCK_REALTIME, &deadline);
        deadline.tv_nsec += 20 * 1000 * 1000;  // 20 ms, then re-check
        if (deadline.tv_nsec >= 1000000000L) {
          deadline.tv_nsec -= 1000000000L;
          ++deadline.tv_sec;
        }
        ShimCond::shim_timedwait(&not_empty, &mu, &deadline);
      }
    }
    if (size == 0) {
      ShimMutex::shim_unlock(&mu);
      return false;
    }
    consumed_sum += ring[head];
    head = (head + 1) % kCapacity;
    --size;
    ++consumed;
    ShimMutex::shim_unlock(&mu);
    ShimCond::shim_signal(&not_full);
    return true;
  }

  void finish() {
    ShimMutex::shim_lock(&mu);
    done = true;
    ShimMutex::shim_unlock(&mu);
    ShimCond::shim_broadcast(&not_empty);
  }

  void destroy() {
    ShimCond::shim_destroy(&not_empty);
    ShimCond::shim_destroy(&not_full);
    ShimMutex::shim_destroy(&mu);
  }
};

}  // namespace

TEST(ShimCond, SignalWaitRoundTrip) {
  pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
  bool flag = false;
  std::thread waiter([&] {
    ShimMutex::shim_lock(&mu);
    while (!flag) EXPECT_EQ(ShimCond::shim_wait(&cv, &mu), 0);
    ShimMutex::shim_unlock(&mu);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ShimMutex::shim_lock(&mu);
  flag = true;
  ShimMutex::shim_unlock(&mu);
  EXPECT_EQ(ShimCond::shim_signal(&cv), 0);
  waiter.join();
  EXPECT_EQ(ShimCond::shim_destroy(&cv), 0);
  ShimMutex::shim_destroy(&mu);
}

// Lost-wakeup stress: N producers and M consumers over a tiny bounded
// ring, for each waiting tier. A single lost signal deadlocks the
// queue (the suite timeout catches it); exact totals prove exclusion.
TEST(ShimCond, LostWakeupStressAcrossTiers) {
  for (const WaitTier tier : kAllTiers) {
    TierGuard forced(tier);
    BoundedQueue q;
    constexpr int kProducers = 3, kConsumers = 2;
    constexpr long kItemsPerProducer = 800;
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&q, p] {
        for (long i = 0; i < kItemsPerProducer; ++i) {
          q.push(p * kItemsPerProducer + i + 1);
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&q] {
        while (q.pop()) {
        }
      });
    }
    for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
    q.finish();
    for (int c = 0; c < kConsumers; ++c) {
      threads[static_cast<size_t>(kProducers + c)].join();
    }
    EXPECT_EQ(q.produced, kProducers * kItemsPerProducer)
        << wait_tier_name(tier);
    EXPECT_EQ(q.consumed, q.produced) << wait_tier_name(tier);
    EXPECT_EQ(q.consumed_sum, q.produced_sum) << wait_tier_name(tier);
    q.destroy();
  }
}

// timedwait with nobody signalling: ETIMEDOUT, not earlier than the
// deadline (modulo one scheduler tick), and certainly not a hang.
TEST(ShimCond, TimedwaitTimesOutAccurately) {
  for (const WaitTier tier : kAllTiers) {
    TierGuard forced(tier);
    pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
    pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
    constexpr long kWaitMs = 80;
    struct timespec deadline;
    clock_gettime(CLOCK_REALTIME, &deadline);
    deadline.tv_nsec += kWaitMs * 1000 * 1000;
    if (deadline.tv_nsec >= 1000000000L) {
      deadline.tv_nsec -= 1000000000L;
      ++deadline.tv_sec;
    }
    ShimMutex::shim_lock(&mu);
    const auto start = std::chrono::steady_clock::now();
    const int rc = ShimCond::shim_timedwait(&cv, &mu, &deadline);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    ShimMutex::shim_unlock(&mu);
    EXPECT_EQ(rc, ETIMEDOUT) << wait_tier_name(tier);
    EXPECT_GE(elapsed.count(), kWaitMs - 20) << wait_tier_name(tier);
    ShimCond::shim_destroy(&cv);
    ShimMutex::shim_destroy(&mu);
  }
}

TEST(ShimCond, TimedwaitPastDeadlineReturnsImmediately) {
  pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
  struct timespec past;
  clock_gettime(CLOCK_REALTIME, &past);
  past.tv_sec -= 5;
  ShimMutex::shim_lock(&mu);
  EXPECT_EQ(ShimCond::shim_timedwait(&cv, &mu, &past), ETIMEDOUT);
  // The mutex was re-acquired on the way out: we can still unlock it.
  ShimMutex::shim_unlock(&mu);
  ShimCond::shim_destroy(&cv);
  ShimMutex::shim_destroy(&mu);
}

TEST(ShimCond, InvalidAbstimeIsEinvalBeforeAnyStateChange) {
  pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
  struct timespec bad{};
  bad.tv_nsec = 2000000000L;  // out of [0, 1e9)
  ShimMutex::shim_lock(&mu);
  EXPECT_EQ(ShimCond::shim_timedwait(&cv, &mu, &bad), EINVAL);
  ShimMutex::shim_unlock(&mu);  // still held: EINVAL left it untouched
  ShimCond::shim_destroy(&cv);
  ShimMutex::shim_destroy(&mu);
}

// POSIX allows destroying a condvar as soon as all blocked threads
// have been awakened — i.e. immediately after the broadcast, while
// waiters may still be inside pthread_cond_wait re-acquiring the
// mutex. The overlay's destroy drains those stragglers.
TEST(ShimCond, BroadcastThenImmediateDestroy) {
  for (const WaitTier tier : kAllTiers) {
    TierGuard forced(tier);
    for (int round = 0; round < 5; ++round) {
      pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
      auto* cv = new pthread_cond_t;
      ShimCond::shim_init(cv);
      bool flag = false;
      std::atomic<int> returned{0};
      std::vector<std::thread> waiters;
      for (int i = 0; i < 4; ++i) {
        waiters.emplace_back([&, cv] {
          ShimMutex::shim_lock(&mu);
          while (!flag) ShimCond::shim_wait(cv, &mu);
          ShimMutex::shim_unlock(&mu);
          returned.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ShimMutex::shim_lock(&mu);
      flag = true;
      ShimMutex::shim_unlock(&mu);
      ShimCond::shim_broadcast(cv);
      EXPECT_EQ(ShimCond::shim_destroy(cv), 0);
      delete cv;  // storage gone: any late overlay touch would be UAF
      for (auto& t : waiters) t.join();
      EXPECT_EQ(returned.load(), 4) << wait_tier_name(tier);
      ShimMutex::shim_destroy(&mu);
    }
  }
}

// A storm of signals and broadcasts that do NOT change the predicate
// must neither wedge the waiter nor let it through: every overlay
// return is at most a spurious wakeup, absorbed by the caller's
// predicate loop (the POSIX contract this condvar leans on).
TEST(ShimCond, SpuriousWakeupTolerance) {
  for (const WaitTier tier : kAllTiers) {
    TierGuard forced(tier);
    pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
    pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
    bool flag = false;
    std::atomic<bool> escaped{false};
    std::thread waiter([&] {
      ShimMutex::shim_lock(&mu);
      while (!flag) ShimCond::shim_wait(&cv, &mu);
      ShimMutex::shim_unlock(&mu);
      escaped.store(true);
    });
    for (int i = 0; i < 200; ++i) {
      (i & 1) != 0 ? ShimCond::shim_signal(&cv) : ShimCond::shim_broadcast(&cv);
      if ((i & 15) == 0) std::this_thread::yield();
    }
    EXPECT_FALSE(escaped.load()) << wait_tier_name(tier);
    ShimMutex::shim_lock(&mu);
    flag = true;
    ShimMutex::shim_unlock(&mu);
    ShimCond::shim_signal(&cv);
    waiter.join();
    EXPECT_TRUE(escaped.load()) << wait_tier_name(tier);
    ShimCond::shim_destroy(&cv);
    ShimMutex::shim_destroy(&mu);
  }
}

// Concurrent waits must share one mutex (POSIX). glibc makes the
// mismatch undefined; the overlay reports EINVAL.
TEST(ShimCond, MismatchedMutexWhileWaitingIsEinval) {
  pthread_mutex_t m1 = PTHREAD_MUTEX_INITIALIZER;
  pthread_mutex_t m2 = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
  bool flag = false;
  std::thread waiter([&] {
    ShimMutex::shim_lock(&m1);
    while (!flag) ShimCond::shim_wait(&cv, &m1);
    ShimMutex::shim_unlock(&m1);
  });
  // Wait until the waiter has genuinely registered on (cv, m1) — a
  // fixed sleep would race a slow-starting thread into associating
  // the condvar with m2 instead.
  const auto* sc = reinterpret_cast<const ShimCond*>(&cv);
  while (sc->waiters.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  ShimMutex::shim_lock(&m2);
  EXPECT_EQ(ShimCond::shim_wait(&cv, &m2), EINVAL);
  ShimMutex::shim_unlock(&m2);
  ShimMutex::shim_lock(&m1);
  flag = true;
  ShimMutex::shim_unlock(&m1);
  ShimCond::shim_signal(&cv);
  waiter.join();
  ShimCond::shim_destroy(&cv);
  ShimMutex::shim_destroy(&m1);
  ShimMutex::shim_destroy(&m2);
}

// The lifecycle counters mirror the mutex registry's discipline:
// monotone, and moved by the operations that claim to move them.
TEST(ShimCond, LifecycleStatsMove) {
  auto& stats = cond_stats();
  const auto waits = stats.waits.load();
  const auto signals = stats.signals.load();
  const auto broadcasts = stats.broadcasts.load();
  const auto timeouts = stats.timeouts.load();
  pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
  struct timespec past;
  clock_gettime(CLOCK_REALTIME, &past);
  past.tv_sec -= 1;
  ShimMutex::shim_lock(&mu);
  EXPECT_EQ(ShimCond::shim_timedwait(&cv, &mu, &past), ETIMEDOUT);
  ShimMutex::shim_unlock(&mu);
  ShimCond::shim_signal(&cv);
  ShimCond::shim_broadcast(&cv);
  EXPECT_GT(stats.waits.load(), waits);
  EXPECT_GT(stats.signals.load(), signals);
  EXPECT_GT(stats.broadcasts.load(), broadcasts);
  EXPECT_GT(stats.timeouts.load(), timeouts);
  ShimCond::shim_destroy(&cv);
  ShimMutex::shim_destroy(&mu);
}

// ===================================================================
// The pthread_rwlock_t overlay (shim_rwlock).
// ===================================================================

TEST(ShimRwLock, OverlayFitsPthreadStorage) {
  EXPECT_LE(sizeof(ShimRwLock), sizeof(pthread_rwlock_t));
  EXPECT_LE(alignof(ShimRwLock), alignof(pthread_rwlock_t));
}

// The hostable subset: the compact rwlock family (16 bytes, native
// shared mode); the sharded family and every exclusive-only algorithm
// are excluded by the descriptor gate.
TEST(ShimRwLock, SupportedNamesAreTheRwlockHostableSubset) {
  const auto& factory = LockFactory::instance();
  const auto supported = supported_rwlock_names();
  ASSERT_FALSE(supported.empty());
  std::vector<std::string_view> expected;
  for (const LockVTable* vt : factory.entries()) {
    if (shim_rwlock_hostable(vt->info)) expected.push_back(vt->info.name);
  }
  EXPECT_EQ(supported, expected);
  for (const char* name :
       {"rwlock-compact", "rwlock-compact-yield", "rwlock-compact-park",
        "rwlock-compact-adaptive"}) {
    EXPECT_NE(std::find(supported.begin(), supported.end(), name),
              supported.end())
        << name;
  }
  // Exclusive algorithms and the sharded family are not rwlock-hostable.
  for (const char* name : {"hemlock", "mcs", "ticket", "rwlock"}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(shim_rwlock_hostable(*info)) << name;
    EXPECT_EQ(std::find(supported.begin(), supported.end(), name),
              supported.end())
        << name;
  }
}

// The (HEMLOCK_RWLOCK, HEMLOCK_WAIT) selection rule through the pure
// resolver.
TEST(ShimRwLock, ResolverSelectsTiersWithinTheCompactFamily) {
  const auto resolved = [](const char* rwlock_env, const char* wait_env) {
    return resolve_shim_rwlock(rwlock_env, wait_env).info.name;
  };
  // Default (auto): the compact family's governed tier, so the rwlock
  // through the shim never convoys when the host oversubscribes.
  EXPECT_EQ(resolved(nullptr, nullptr), "rwlock-compact-adaptive");
  EXPECT_EQ(resolved("", ""), "rwlock-compact-adaptive");
  // Explicit tiers move within the family.
  EXPECT_EQ(resolved("rwlock-compact", "spin"), "rwlock-compact");
  EXPECT_EQ(resolved("rwlock-compact", "yield"), "rwlock-compact-yield");
  EXPECT_EQ(resolved("rwlock-compact", "park"), "rwlock-compact-park");
  EXPECT_EQ(resolved(nullptr, "park"), "rwlock-compact-park");
  // The "-spin" alias is the explicit pure-spin request: honored.
  EXPECT_EQ(resolved("rwlock-compact-spin", nullptr), "rwlock-compact");
  // The sharded names do not fit: their compact sibling in the same
  // tier is hosted instead (then auto-tiering applies as usual).
  EXPECT_EQ(resolved("rwlock", nullptr), "rwlock-compact-adaptive");
  EXPECT_EQ(resolved("rwlock-park", nullptr), "rwlock-compact-park");
  EXPECT_EQ(resolved("rwlock", "spin"), "rwlock-compact");
  // Non-rwlock and unknown names fall back (with a stderr note).
  EXPECT_EQ(resolved("mcs", nullptr), "rwlock-compact-adaptive");
  EXPECT_EQ(resolved("nonsense", "park"), "rwlock-compact-park");
}

TEST(ShimRwLock, InitLockUnlockDestroyRoundTrip) {
  pthread_rwlock_t rw;
  ASSERT_EQ(ShimRwLock::shim_init(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_rdlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_rdlock(&rw), 0);  // second reader
  EXPECT_EQ(ShimRwLock::shim_trywrlock(&rw), EBUSY);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_wrlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_tryrdlock(&rw), EBUSY);
  EXPECT_EQ(ShimRwLock::shim_trywrlock(&rw), EBUSY);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_tryrdlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_destroy(&rw), 0);
  // Re-init after destroy (POSIX lifecycle).
  ASSERT_EQ(ShimRwLock::shim_init(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_wrlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_destroy(&rw), 0);
}

TEST(ShimRwLock, StaticInitializerAdoptedLazily) {
  pthread_rwlock_t rw = PTHREAD_RWLOCK_INITIALIZER;  // never shim_init'ed
  EXPECT_EQ(ShimRwLock::shim_rdlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_destroy(&rw), 0);
}

// Readers and writers through the shim surface: exact write totals
// and no torn reads, i.e. the hosted rwlock's exclusion survives the
// overlay's unlock-mode dispatch.
TEST(ShimRwLock, MixedReadersWritersAreExact) {
  pthread_rwlock_t rw = PTHREAD_RWLOCK_INITIALIZER;
  long a = 0, b = 0;
  std::atomic<long> torn{0};
  constexpr int kWriters = 2, kReaders = 4, kWrites = 2000;
  std::vector<std::thread> ts;
  std::atomic<bool> stop{false};
  for (int r = 0; r < kReaders; ++r) {
    ts.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ShimRwLock::shim_rdlock(&rw);
        if (a != b) torn.fetch_add(1, std::memory_order_relaxed);
        ShimRwLock::shim_unlock(&rw);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    ts.emplace_back([&] {
      for (int i = 0; i < kWrites; ++i) {
        ShimRwLock::shim_wrlock(&rw);
        ++a;
        ++b;
        ShimRwLock::shim_unlock(&rw);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    ts[static_cast<size_t>(kReaders + w)].join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (int r = 0; r < kReaders; ++r) ts[static_cast<size_t>(r)].join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(a, static_cast<long>(kWriters) * kWrites);
  EXPECT_EQ(b, a);
  ShimRwLock::shim_destroy(&rw);
}

TEST(ShimRwLock, TimedLocksHonorDeadlinesAndEinval) {
  pthread_rwlock_t rw = PTHREAD_RWLOCK_INITIALIZER;
  // Invalid abstime: EINVAL before any state change.
  struct timespec bad{};
  bad.tv_nsec = 2000000000L;
  EXPECT_EQ(ShimRwLock::shim_timedrdlock(&rw, &bad), EINVAL);
  EXPECT_EQ(ShimRwLock::shim_timedwrlock(&rw, &bad), EINVAL);
  EXPECT_EQ(ShimRwLock::shim_clockrdlock(&rw, CLOCK_TAI, &bad), EINVAL);
  // Uncontended timed acquires succeed immediately.
  struct timespec soon;
  clock_gettime(CLOCK_REALTIME, &soon);
  soon.tv_sec += 1;
  EXPECT_EQ(ShimRwLock::shim_timedrdlock(&rw, &soon), 0);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_timedwrlock(&rw, &soon), 0);
  // Contended: a past deadline reports ETIMEDOUT promptly, and a
  // short future deadline expires rather than hanging.
  struct timespec past;
  clock_gettime(CLOCK_REALTIME, &past);
  past.tv_sec -= 1;
  EXPECT_EQ(ShimRwLock::shim_timedrdlock(&rw, &past), ETIMEDOUT);
  struct timespec brief;
  clock_gettime(CLOCK_MONOTONIC, &brief);
  brief.tv_nsec += 50 * 1000 * 1000;
  if (brief.tv_nsec >= 1000000000L) {
    brief.tv_nsec -= 1000000000L;
    ++brief.tv_sec;
  }
  EXPECT_EQ(ShimRwLock::shim_clockrdlock(&rw, CLOCK_MONOTONIC, &brief),
            ETIMEDOUT);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  ShimRwLock::shim_destroy(&rw);
}

TEST(ShimRwLock, NullIsEinval) {
  EXPECT_EQ(ShimRwLock::shim_rdlock(nullptr), EINVAL);
  EXPECT_EQ(ShimRwLock::shim_wrlock(nullptr), EINVAL);
  EXPECT_EQ(ShimRwLock::shim_unlock(nullptr), EINVAL);
  EXPECT_EQ(ShimRwLock::shim_destroy(nullptr), EINVAL);
}

// ===================================================================
// PROCESS_SHARED routing (interpose/foreign).
// ===================================================================

// A pshared mutex must not be hosted in the process-local overlay: it
// is routed to glibc at init, every operation forwards, and destroy
// deregisters it.
TEST(ForeignRouting, PsharedMutexRoutesToGlibc) {
  if (!real_pthread().resolved) {
    GTEST_SKIP() << "real pthread symbols not resolvable";
  }
  pthread_mutexattr_t attr;
  ASSERT_EQ(pthread_mutexattr_init(&attr), 0);
  ASSERT_EQ(pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED), 0);
  pthread_mutex_t m;
  ASSERT_EQ(ShimMutex::shim_init(&m, &attr), 0);
  EXPECT_TRUE(ForeignRegistry::contains(&m));
  // Operations forward to glibc and behave.
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  std::thread([&] { EXPECT_EQ(ShimMutex::shim_trylock(&m), EBUSY); }).join();
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  long counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        ShimMutex::shim_lock(&m);
        ++counter;
        ShimMutex::shim_unlock(&m);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 4000);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
  EXPECT_FALSE(ForeignRegistry::contains(&m));
  pthread_mutexattr_destroy(&attr);
}

TEST(ForeignRouting, PsharedCondRoutesToGlibc) {
  if (!real_pthread().resolved) {
    GTEST_SKIP() << "real pthread symbols not resolvable";
  }
  pthread_mutexattr_t mattr;
  pthread_condattr_t cattr;
  ASSERT_EQ(pthread_mutexattr_init(&mattr), 0);
  ASSERT_EQ(pthread_mutexattr_setpshared(&mattr, PTHREAD_PROCESS_SHARED), 0);
  ASSERT_EQ(pthread_condattr_init(&cattr), 0);
  ASSERT_EQ(pthread_condattr_setpshared(&cattr, PTHREAD_PROCESS_SHARED), 0);
  pthread_mutex_t m;
  pthread_cond_t c;
  ASSERT_EQ(ShimMutex::shim_init(&m, &mattr), 0);
  ASSERT_EQ(ShimCond::shim_init(&c, &cattr), 0);
  EXPECT_TRUE(ForeignRegistry::contains(&c));
  // A real glibc signal/wait round trip through the forwarded surface.
  bool flag = false;
  std::thread waiter([&] {
    ShimMutex::shim_lock(&m);
    while (!flag) EXPECT_EQ(ShimCond::shim_wait(&c, &m), 0);
    ShimMutex::shim_unlock(&m);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ShimMutex::shim_lock(&m);
  flag = true;
  ShimMutex::shim_unlock(&m);
  EXPECT_EQ(ShimCond::shim_signal(&c), 0);
  waiter.join();
  EXPECT_EQ(ShimCond::shim_destroy(&c), 0);
  EXPECT_FALSE(ForeignRegistry::contains(&c));
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
  pthread_condattr_destroy(&cattr);
  pthread_mutexattr_destroy(&mattr);
}

TEST(ForeignRouting, PsharedRwlockRoutesToGlibc) {
  if (!real_pthread().resolved) {
    GTEST_SKIP() << "real pthread symbols not resolvable";
  }
  pthread_rwlockattr_t attr;
  ASSERT_EQ(pthread_rwlockattr_init(&attr), 0);
  ASSERT_EQ(pthread_rwlockattr_setpshared(&attr, PTHREAD_PROCESS_SHARED), 0);
  pthread_rwlock_t rw;
  ASSERT_EQ(ShimRwLock::shim_init(&rw, &attr), 0);
  EXPECT_TRUE(ForeignRegistry::contains(&rw));
  EXPECT_EQ(ShimRwLock::shim_rdlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_tryrdlock(&rw), 0);  // glibc: shared re-entry
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_wrlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_trywrlock(&rw), EBUSY);
  EXPECT_EQ(ShimRwLock::shim_unlock(&rw), 0);
  EXPECT_EQ(ShimRwLock::shim_destroy(&rw), 0);
  EXPECT_FALSE(ForeignRegistry::contains(&rw));
  pthread_rwlockattr_destroy(&attr);
}

// Process-private attrs stay in the overlay (no foreign routing).
TEST(ForeignRouting, PrivateAttrObjectsStayHosted) {
  pthread_mutexattr_t attr;
  ASSERT_EQ(pthread_mutexattr_init(&attr), 0);
  pthread_mutex_t m;
  ASSERT_EQ(ShimMutex::shim_init(&m, &attr), 0);
  EXPECT_FALSE(ForeignRegistry::contains(&m));
  EXPECT_EQ(ShimMutex::shim_lock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_unlock(&m), 0);
  EXPECT_EQ(ShimMutex::shim_destroy(&m), 0);
  pthread_mutexattr_destroy(&attr);
}

// ===================================================================
// Condattr clocks (ShimCond::clock).
// ===================================================================

// A condvar configured for CLOCK_MONOTONIC must measure timedwait
// deadlines on CLOCK_MONOTONIC. The old hard-coded CLOCK_REALTIME
// turned any monotonic deadline (epoch: boot) into the distant past
// and returned ETIMEDOUT immediately — so the elapsed-time assertion
// is the regression discriminator.
TEST(ShimCondClock, TimedwaitMeasuresTheConfiguredClock) {
  pthread_condattr_t attr;
  ASSERT_EQ(pthread_condattr_init(&attr), 0);
  ASSERT_EQ(pthread_condattr_setclock(&attr, CLOCK_MONOTONIC), 0);
  pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t cv;
  ASSERT_EQ(ShimCond::shim_init(&cv, &attr), 0);
  const auto* sc = reinterpret_cast<const ShimCond*>(&cv);
  EXPECT_EQ(sc->clock.load(), CLOCK_MONOTONIC);

  constexpr long kWaitMs = 60;
  struct timespec deadline;
  clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_nsec += kWaitMs * 1000 * 1000;
  if (deadline.tv_nsec >= 1000000000L) {
    deadline.tv_nsec -= 1000000000L;
    ++deadline.tv_sec;
  }
  ShimMutex::shim_lock(&mu);
  const auto start = std::chrono::steady_clock::now();
  const int rc = ShimCond::shim_timedwait(&cv, &mu, &deadline);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ShimMutex::shim_unlock(&mu);
  EXPECT_EQ(rc, ETIMEDOUT);
  EXPECT_GE(elapsed.count(), kWaitMs - 20)
      << "monotonic deadline was measured on the wrong clock";
  ShimCond::shim_destroy(&cv);
  ShimMutex::shim_destroy(&mu);
  pthread_condattr_destroy(&attr);
}

// Defaulted attrs and static initializers keep the POSIX default.
TEST(ShimCondClock, DefaultIsRealtime) {
  pthread_cond_t lazy = PTHREAD_COND_INITIALIZER;
  ShimCond::shim_signal(&lazy);  // adopt
  EXPECT_EQ(reinterpret_cast<const ShimCond*>(&lazy)->clock.load(),
            CLOCK_REALTIME);
  ShimCond::shim_destroy(&lazy);

  pthread_condattr_t attr;
  ASSERT_EQ(pthread_condattr_init(&attr), 0);
  pthread_cond_t cv;
  ASSERT_EQ(ShimCond::shim_init(&cv, &attr), 0);
  EXPECT_EQ(reinterpret_cast<const ShimCond*>(&cv)->clock.load(),
            CLOCK_REALTIME);
  ShimCond::shim_destroy(&cv);
  pthread_condattr_destroy(&attr);
}

// The three integration tests below exec the plain-pthreads demo
// binaries with LD_PRELOAD=libhemlock_preload.so. Under ASan that
// preload slot is already spoken for: the sanitizer runtime must come
// first in the initial library list, and the dynamic linker refuses
// the stack (`ASan runtime does not come first`). The in-process shim
// suites above retain full coverage in sanitizer legs; the dynamic-
// linker path is exercised by the plain CI legs' smoke steps.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HEMLOCK_TEST_UNDER_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define HEMLOCK_TEST_UNDER_ASAN 1
#endif
inline bool preload_blocked_by_sanitizer() {
#if defined(HEMLOCK_TEST_UNDER_ASAN)
  return true;
#else
  return false;
#endif
}

// Full integration: run the plain-pthreads demo binary under
// LD_PRELOAD for every supported algorithm. The demo exits non-zero
// if its counters are wrong, so one EXPECT per algorithm covers
// adoption, exclusion, trylock and destroy through the real dynamic
// linker path.
TEST(PreloadIntegration, DemoRunsCorrectlyUnderEveryAlgorithm) {
#if !defined(HEMLOCK_PRELOAD_SO) || !defined(HEMLOCK_PRELOAD_DEMO)
  GTEST_SKIP() << "preload paths not configured";
#else
  if (preload_blocked_by_sanitizer()) {
    GTEST_SKIP() << "LD_PRELOAD slot owned by the sanitizer runtime";
  }
  const std::string preload = HEMLOCK_PRELOAD_SO;
  const std::string demo = HEMLOCK_PRELOAD_DEMO;
  // Bounded per-thread iterations: queue-lock handoffs run at
  // scheduler speed when the host has fewer cores than demo threads,
  // and this sweep covers every supported algorithm.
  const std::string env = "HEMLOCK_DEMO_ITERS=2000 LD_PRELOAD=" + preload;
  for (const std::string_view algo : supported_lock_names()) {
    const std::string cmd = env + " HEMLOCK_LOCK=" + std::string(algo) + " " +
                            demo + " > /dev/null";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << "HEMLOCK_LOCK=" << algo;
  }
  // Unknown algorithm falls back to the default but still works.
  const std::string fallback =
      env + " HEMLOCK_LOCK=nonsense " + demo + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(fallback.c_str()), 0);
#endif
}

// The condvar demo (producer/consumer through real pthread_cond_*)
// under LD_PRELOAD for every condvar-capable algorithm: the overlay's
// wait/signal/broadcast/timedwait paths through the actual dynamic
// linker, on top of each hosted mutex.
TEST(PreloadIntegration, CondDemoRunsCorrectlyUnderEveryAlgorithm) {
#if !defined(HEMLOCK_PRELOAD_SO) || !defined(HEMLOCK_PRELOAD_COND_DEMO)
  GTEST_SKIP() << "preload paths not configured";
#else
  if (preload_blocked_by_sanitizer()) {
    GTEST_SKIP() << "LD_PRELOAD slot owned by the sanitizer runtime";
  }
  const std::string preload = HEMLOCK_PRELOAD_SO;
  const std::string demo = HEMLOCK_PRELOAD_COND_DEMO;
  const std::string env = "HEMLOCK_DEMO_ITERS=1000 LD_PRELOAD=" + preload;
  for (const std::string_view algo : supported_cond_lock_names()) {
    const std::string cmd = env + " HEMLOCK_LOCK=" + std::string(algo) + " " +
                            demo + " > /dev/null";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << "HEMLOCK_LOCK=" << algo;
  }
#endif
}

// The rwlock demo (readers/writers through real pthread_rwlock_*)
// under LD_PRELOAD for every rwlock-hostable algorithm: the overlay's
// rdlock/wrlock/timedrdlock/trywrlock/unlock dispatch through the
// actual dynamic linker. The demo exits non-zero on any torn read or
// lost write generation.
TEST(PreloadIntegration, RwlockDemoRunsCorrectlyUnderEveryAlgorithm) {
#if !defined(HEMLOCK_PRELOAD_SO) || !defined(HEMLOCK_PRELOAD_RWLOCK_DEMO)
  GTEST_SKIP() << "preload paths not configured";
#else
  if (preload_blocked_by_sanitizer()) {
    GTEST_SKIP() << "LD_PRELOAD slot owned by the sanitizer runtime";
  }
  const std::string preload = HEMLOCK_PRELOAD_SO;
  const std::string demo = HEMLOCK_PRELOAD_RWLOCK_DEMO;
  const std::string env = "HEMLOCK_DEMO_ITERS=500 LD_PRELOAD=" + preload;
  for (const std::string_view algo : supported_rwlock_names()) {
    const std::string cmd = env +
                            " HEMLOCK_RWLOCK=" + std::string(algo) + " " +
                            demo + " > /dev/null";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << "HEMLOCK_RWLOCK=" << algo;
  }
  // Unknown selection falls back to the default family but still works.
  const std::string fallback =
      env + " HEMLOCK_RWLOCK=nonsense " + demo + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(fallback.c_str()), 0);
#endif
}

}  // namespace
}  // namespace hemlock::interpose
