// test_any_lock.cpp — the type-erased public API: factory roster
// integrity, LockInfo consistency with lock_traits<>, unknown-name
// rejection, the inline-buffer guarantee (with the boxed-storage
// demotion of bulk-bodied algorithms), runtime lock registration,
// shim/factory name-set agreement, and a parameterized
// mutual-exclusion stress sweep that runs EVERY factory algorithm
// through AnyLock.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "api/hemlock_api.hpp"
#include "interpose/shim_mutex.hpp"
#include "runtime/barrier.hpp"

namespace hemlock {
namespace {

// --------------------------------------------------------- factory --
TEST(LockFactory, RosterMatchesRegistry) {
  const auto& factory = LockFactory::instance();
  const auto factory_names = factory.names();
  const auto registry_names = lock_names<AllLockTags>();
  ASSERT_EQ(factory_names.size(), registry_names.size());
  for (std::size_t i = 0; i < factory_names.size(); ++i) {
    EXPECT_EQ(factory_names[i], registry_names[i]) << "index " << i;
  }
  // Names are unique — the factory key space is well-defined.
  std::set<std::string_view> uniq(factory_names.begin(), factory_names.end());
  EXPECT_EQ(uniq.size(), factory_names.size());
}

TEST(LockFactory, UnknownNamesAreRejectedEverywhere) {
  const auto& factory = LockFactory::instance();
  EXPECT_EQ(factory.find("no-such-lock"), nullptr);
  EXPECT_EQ(factory.info("no-such-lock"), nullptr);
  EXPECT_EQ(find_lock("no-such-lock"), nullptr);
  EXPECT_THROW(factory.make("no-such-lock"), std::invalid_argument);
  EXPECT_THROW(AnyLock{"no-such-lock"}, std::invalid_argument);
  // Near-misses don't fuzzy-match.
  EXPECT_EQ(factory.find("Hemlock"), nullptr);
  EXPECT_EQ(factory.find("hemlock "), nullptr);
  EXPECT_EQ(factory.find(""), nullptr);
}

// info() must agree field-for-field with the compile-time traits it
// is materialized from, for the whole roster.
TEST(LockFactory, InfoMatchesLockTraits) {
  const auto& factory = LockFactory::instance();
  for_each_lock_type<AllLockTags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    constexpr LockInfo expected = make_lock_info<L>();
    const LockInfo* info = factory.info(lock_traits<L>::name);
    ASSERT_NE(info, nullptr) << lock_traits<L>::name;
    EXPECT_EQ(info->name, expected.name);
    EXPECT_EQ(info->lock_words, expected.lock_words);
    EXPECT_EQ(info->held_words, expected.held_words);
    EXPECT_EQ(info->wait_words, expected.wait_words);
    EXPECT_EQ(info->thread_words, expected.thread_words);
    EXPECT_EQ(info->nontrivial_init, expected.nontrivial_init);
    EXPECT_EQ(info->is_fifo, expected.is_fifo);
    EXPECT_EQ(info->has_trylock, expected.has_trylock);
    EXPECT_EQ(info->spinning, expected.spinning);
    EXPECT_EQ(info->size_bytes, sizeof(L));
    EXPECT_EQ(info->align_bytes, alignof(L));
  });
}

TEST(LockFactory, SafetyBoundsAreRecorded) {
  const auto& factory = LockFactory::instance();
  // Anderson's waiting array bounds contenders (in every waiting
  // tier); everyone else is unbounded.
  for (const LockVTable* vt : factory.entries()) {
    if (vt->info.name.starts_with("anderson")) {
      EXPECT_EQ(vt->info.max_threads, AndersonDefault::capacity())
          << vt->info.name;
    } else {
      EXPECT_EQ(vt->info.max_threads, 0u) << vt->info.name;
    }
  }
  // The two overlay-unsafe algorithms carry their flag.
  EXPECT_FALSE(factory.info("hemlock-ah")->pthread_overlay_safe);
  EXPECT_FALSE(factory.info("hemlock-cv")->pthread_overlay_safe);
  EXPECT_TRUE(factory.info("hemlock")->pthread_overlay_safe);
}

// The waiting-tier vocabulary: descriptors carry the policy name and
// the oversubscription-safety bit the shim's auto-selection keys on.
TEST(LockFactory, WaitingTiersAreRecorded) {
  const auto& factory = LockFactory::instance();
  for (const auto& [name, waiting, safe] :
       {std::tuple{"mcs", "spin", false}, {"mcs-yield", "yield", true},
        {"mcs-park", "park", true}, {"mcs-adaptive", "adaptive", true},
        {"clh", "spin", false}, {"clh-park", "park", true},
        {"ticket", "spin", false}, {"ticket-park", "park", true},
        {"anderson", "spin", false}, {"anderson-park", "park", true},
        {"hemlock", "ctr-cas", false}, {"hemlock-", "load", false},
        {"hemlock-futex", "futex", true}, {"hemlock-adaptive", "adaptive", true},
        {"hemlock-cv", "park", true}, {"hemlock-chain", "park", true},
        {"pthread", "park", true}}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->waiting, waiting) << name;
    EXPECT_EQ(info->oversub_safe, safe) << name;
  }
  // Every registered algorithm declares *some* waiting policy.
  for (const LockVTable* vt : factory.entries()) {
    EXPECT_FALSE(vt->info.waiting.empty()) << vt->info.name;
  }
}

// "-spin" is the explicit name of the default pure-spin tier: it
// canonicalizes to the base entry (one vtable, not a duplicate).
TEST(LockFactory, SpinSuffixCanonicalizesToTheBaseEntry) {
  const auto& factory = LockFactory::instance();
  for (const char* base : {"mcs", "clh", "ticket", "anderson"}) {
    const std::string alias = std::string(base) + "-spin";
    EXPECT_EQ(factory.find(alias), factory.find(base)) << alias;
    EXPECT_EQ(find_lock(alias), find_lock(base)) << alias;
  }
  AnyLock lk("mcs-spin");
  EXPECT_EQ(lk.name(), "mcs");  // canonical name, not the alias
  // The alias never resurrects unknown bases or chains suffixes.
  EXPECT_EQ(factory.find("nope-spin"), nullptr);
  EXPECT_EQ(factory.find("-spin"), nullptr);
  EXPECT_EQ(factory.find("mcs-spin-spin"), nullptr);
  EXPECT_EQ(find_lock("mcs-spin-spin"), nullptr);
}

// ------------------------------------------ runtime registration --
// A lock family OUTSIDE AllLockTags, registered with the factory at
// run time — how an embedder brings its own shard lock to the sharded
// serving layer without recompiling the registry.
class RuntimeTestLock {
 public:
  void lock() {
    while (held_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() { held_.store(false, std::memory_order_release); }
  bool try_lock() { return !held_.exchange(true, std::memory_order_acquire); }

 private:
  std::atomic<bool> held_{false};
};

}  // namespace

template <>
struct lock_traits<RuntimeTestLock> {
  static constexpr const char* name = "runtime-test-tas";
  static constexpr std::size_t lock_words = 1;
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = false;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kGlobal;
};

namespace {

TEST(LockFactoryRuntime, RegistrationRoundTrip) {
  ASSERT_TRUE(LockFactory::register_lock_type<RuntimeTestLock>());
  // Resolves everywhere a compile-time roster name does.
  const auto& factory = LockFactory::instance();
  const LockVTable* vt = factory.find("runtime-test-tas");
  ASSERT_NE(vt, nullptr);
  EXPECT_EQ(vt, find_lock("runtime-test-tas"));
  ASSERT_NE(factory.info("runtime-test-tas"), nullptr);
  EXPECT_EQ(factory.info("runtime-test-tas")->size_bytes,
            sizeof(RuntimeTestLock));

  // ...including the erased construction paths, with real mutual
  // exclusion through the registered thunks.
  AnyLock lk = factory.make("runtime-test-tas");
  EXPECT_EQ(lk.name(), "runtime-test-tas");
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::uint64_t counter = 0;
  SpinBarrier start(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        LockGuard<AnyLock> g(lk);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);

  // Listed by runtime_entries(), invisible to the compile-time roster
  // views (names()/entries() stay the static registry, so the roster
  // sweeps above remain exact).
  const auto runtime = LockFactory::runtime_entries();
  EXPECT_NE(std::find(runtime.begin(), runtime.end(), vt), runtime.end());
  for (const auto name : factory.names()) {
    EXPECT_NE(name, "runtime-test-tas");
  }

  // Re-registering the same name is refused.
  EXPECT_FALSE(LockFactory::register_lock_type<RuntimeTestLock>());
}

TEST(LockFactoryRuntime, InvalidRegistrationsAreRejected) {
  // Colliding with a roster name — directly or through the "-spin"
  // alias — is refused, so registration can never shadow an existing
  // spelling.
  static LockVTable collides = lock_vtable<RuntimeTestLock>;
  collides.info.name = "mcs";
  EXPECT_FALSE(LockFactory::register_lock(collides));
  static LockVTable alias_collides = lock_vtable<RuntimeTestLock>;
  alias_collides.info.name = "mcs-spin";
  EXPECT_FALSE(LockFactory::register_lock(alias_collides));

  static LockVTable unnamed = lock_vtable<RuntimeTestLock>;
  unnamed.info.name = "";
  EXPECT_FALSE(LockFactory::register_lock(unnamed));

  // An entry AnyLock's inline buffer could not host is refused (the
  // typed path rejects this at compile time; the raw path must too).
  static LockVTable oversized = lock_vtable<RuntimeTestLock>;
  oversized.info.name = "runtime-oversized";
  oversized.info.size_bytes = AnyLock::kStorageBytes + 1;
  EXPECT_FALSE(LockFactory::register_lock(oversized));

  static LockVTable thunkless = lock_vtable<RuntimeTestLock>;
  thunkless.info.name = "runtime-thunkless";
  thunkless.lock = nullptr;
  EXPECT_FALSE(LockFactory::register_lock(thunkless));

  // None of the rejects leaked into the lookup paths.
  EXPECT_EQ(find_lock("runtime-oversized"), nullptr);
  EXPECT_EQ(find_lock("runtime-thunkless"), nullptr);
}

// ----------------------------------------------- shim/factory sets --
// The interposition shim keeps no name table: its supported set must
// be exactly the hostable subset of the factory roster.
TEST(LockFactory, ShimSupportsExactlyTheHostableSubset) {
  const auto& factory = LockFactory::instance();
  const auto supported = interpose::supported_lock_names();
  std::set<std::string_view> supported_set(supported.begin(),
                                           supported.end());
  EXPECT_EQ(supported_set.size(), supported.size());  // no duplicates
  for (const LockVTable* vt : factory.entries()) {
    EXPECT_EQ(supported_set.count(vt->info.name) == 1,
              interpose::shim_hostable(vt->info))
        << vt->info.name;
  }
  // Every supported name is a factory name.
  for (const auto name : supported) {
    EXPECT_NE(factory.find(name), nullptr) << name;
  }
}

// --------------------------------------------------------- AnyLock --
TEST(AnyLock, InlineBufferFitsEveryRosterLock) {
  // Compile-time guarantee (the static_asserts in LockErasure<> are
  // the real enforcement); restated at run time over the live roster
  // so a reader can see the buffer accounting.
  for (const LockVTable* vt : LockFactory::instance().entries()) {
    EXPECT_LE(vt->info.size_bytes, AnyLock::kStorageBytes) << vt->info.name;
    EXPECT_LE(vt->info.align_bytes, AnyLock::kStorageAlign) << vt->info.name;
  }
  static_assert(sizeof(AnyLock) >= AnyLock::kStorageBytes);
  // The boxed-storage demotion (locks/boxed.hpp): Anderson's waiting
  // array and the sharded-ingress rwlock no longer size the buffer —
  // every AnyLock is cacheline-scale, not kilobytes.
  static_assert(sizeof(BoxedLock<AndersonDefault>) == sizeof(void*));
  static_assert(AnyLock::kStorageBytes < sizeof(AndersonDefault));
  static_assert(AnyLock::kStorageBytes < sizeof(RwLock));
  static_assert(AnyLock::kStorageBytes <= 256);
}

// Boxing changes the storage strategy, not the algorithm: same
// factory name, same bounds, still mutual exclusion.
TEST(AnyLock, BoxedLocksKeepTheirIdentity) {
  AnyLock lk("anderson");
  EXPECT_EQ(lk.name(), "anderson");
  EXPECT_EQ(lk.info().max_threads, AndersonDefault::capacity());
  EXPECT_TRUE(lk.info().nontrivial_init);        // heap-allocating ctor
  EXPECT_FALSE(lk.info().pthread_overlay_safe);  // malloc-in-shim hazard
  lk.lock();
  lk.unlock();
  AnyLock rw("rwlock");
  EXPECT_TRUE(rw.info().rwlock_capable);  // shared surface passes through
  rw.lock_shared();
  EXPECT_TRUE(rw.try_lock_shared());
  rw.unlock_shared();
  rw.unlock_shared();
}

TEST(AnyLock, DefaultIsTheHeadlineAlgorithm) {
  AnyLock lk;
  EXPECT_EQ(lk.name(), kDefaultLockName);
  EXPECT_EQ(lk.name(), "hemlock");
  lk.lock();
  lk.unlock();
}

TEST(AnyLock, WorksWithRaiiGuards) {
  AnyLock lk("mcs");
  {
    LockGuard<AnyLock> g(lk);
  }
  {
    std::scoped_lock g(lk);  // BasicLockable interop
  }
  EXPECT_EQ(with_lock(lk, [] { return 42; }), 42);
}

TEST(AnyLock, FactoryMakeConstructsInPlace) {
  AnyLock lk = LockFactory::instance().make("ticket");
  EXPECT_EQ(lk.name(), "ticket");
  EXPECT_TRUE(lk.try_lock());
  lk.unlock();
}

// ------------------------------------- parameterized roster sweep --
class AnyLockRoster : public ::testing::TestWithParam<std::string> {};

// Mutual-exclusion stress through the type-erased surface: exact
// counter totals prove exclusion held for every algorithm name.
TEST_P(AnyLockRoster, MutualExclusionStress) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  AnyLock lk(GetParam());
  std::uint64_t counter = 0;
  SpinBarrier start(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        lk.lock();
        ++counter;
        lk.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

// try_lock honors the descriptor: algorithms with a native try_lock
// succeed uncontended and count exactly; the rest always refuse.
TEST_P(AnyLockRoster, TryLockHonorsDescriptor) {
  AnyLock lk(GetParam());
  if (lk.info().has_trylock) {
    ASSERT_TRUE(lk.try_lock());
    lk.unlock();
    // Mixed lock/try_lock traffic stays exact.
    constexpr int kThreads = 4;
    std::uint64_t counter = 0;
    std::atomic<std::uint64_t> successes{0};
    SpinBarrier start(kThreads);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        start.arrive_and_wait();
        for (int i = 0; i < 1500; ++i) {
          if ((i + t) % 2 == 0) {
            lk.lock();
            ++counter;
            successes.fetch_add(1, std::memory_order_relaxed);
            lk.unlock();
          } else if (lk.try_lock()) {
            ++counter;
            successes.fetch_add(1, std::memory_order_relaxed);
            lk.unlock();
          }
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(counter, successes.load());
  } else {
    EXPECT_FALSE(lk.try_lock());  // conservative attempt, even unheld
    lk.lock();
    lk.unlock();
  }
}

TEST_P(AnyLockRoster, InfoIsTheNamedAlgorithms) {
  AnyLock lk(GetParam());
  EXPECT_EQ(lk.name(), GetParam());
  const LockInfo* info = LockFactory::instance().info(GetParam());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(&lk.info(), info);  // same static descriptor, not a copy
}

std::vector<std::string> all_factory_names() {
  std::vector<std::string> names;
  for (const auto name : LockFactory::instance().names()) {
    names.emplace_back(name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    FullRoster, AnyLockRoster, ::testing::ValuesIn(all_factory_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string id = info.param;
      std::replace(id.begin(), id.end(), '-', '_');
      return id;
    });

}  // namespace
}  // namespace hemlock
