// test_rwlock.cpp — the reader-writer family (locks/rwlock.hpp): the
// reader/writer exclusion invariant (plain-variable mutation under the
// write mode, checked from the read mode — TSan sees any overlap as a
// data race), genuine reader concurrency, the writer-starvation bound
// writer preference buys, 4x-oversubscribed mixed traffic across the
// spin/park/adaptive tiers, try-operation semantics, and the
// type-erased shared surface (AnyLock lock_shared, the exclusive
// fallback, and the rwlock_capable descriptor).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "api/hemlock_api.hpp"
#include "locks/rwlock.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"

namespace hemlock {
namespace {

// ------------------------------------------------- exclusion invariant --
// Writers advance two plain (non-atomic) counters in lockstep; readers
// snapshot both and require equality. A reader overlapping a writer is
// a torn snapshot here and a data race under TSan; a writer
// overlapping a writer loses increments.
template <typename Rw>
void reader_writer_exclusion(int writer_iters) {
  const unsigned readers = 4, writers = 2;
  CacheAligned<Rw> lock;
  std::uint64_t a = 0, b = 0;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  SpinBarrier start(readers + writers);
  std::vector<std::thread> ts;
  for (unsigned r = 0; r < readers; ++r) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        lock.value.lock_shared();
        if (a != b) torn.fetch_add(1, std::memory_order_relaxed);
        lock.value.unlock_shared();
      }
    });
  }
  for (unsigned w = 0; w < writers; ++w) {
    ts.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < writer_iters; ++i) {
        lock.value.lock();
        ++a;
        ++b;
        lock.value.unlock();
      }
    });
  }
  for (unsigned w = 0; w < writers; ++w) ts[readers + w].join();
  stop.store(true, std::memory_order_relaxed);
  for (unsigned r = 0; r < readers; ++r) ts[r].join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(a, static_cast<std::uint64_t>(writers) * writer_iters);
  EXPECT_EQ(b, a);
  EXPECT_TRUE(lock.value.appears_unlocked());
}

TEST(RwLockExclusion, Spin) { reader_writer_exclusion<RwLock>(4000); }
TEST(RwLockExclusion, Yield) { reader_writer_exclusion<RwYieldLock>(4000); }
TEST(RwLockExclusion, Park) { reader_writer_exclusion<RwParkLock>(4000); }
TEST(RwLockExclusion, Adaptive) {
  reader_writer_exclusion<RwGovernedLock>(4000);
}
TEST(RwLockExclusion, Compact) {
  reader_writer_exclusion<RwCompactLock>(4000);
}
TEST(RwLockExclusion, CompactPark) {
  reader_writer_exclusion<RwCompactParkLock>(4000);
}

// ------------------------------------------------- reader concurrency --
// All N readers must be inside the shared section simultaneously: an
// rwlock degraded to exclusive would admit one at a time and this
// rendezvous could never complete (the suite timeout catches it).
template <typename Rw>
void readers_overlap() {
  constexpr unsigned kReaders = 4;
  CacheAligned<Rw> lock;
  std::atomic<unsigned> inside{0};
  std::vector<std::thread> ts;
  for (unsigned r = 0; r < kReaders; ++r) {
    ts.emplace_back([&] {
      lock.value.lock_shared();
      inside.fetch_add(1, std::memory_order_acq_rel);
      while (inside.load(std::memory_order_acquire) < kReaders) {
        std::this_thread::yield();
      }
      lock.value.unlock_shared();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(inside.load(), kReaders);
}

TEST(RwLockConcurrency, SpinReadersOverlap) { readers_overlap<RwLock>(); }
TEST(RwLockConcurrency, ParkReadersOverlap) {
  readers_overlap<RwParkLock>();
}
TEST(RwLockConcurrency, CompactReadersOverlap) {
  readers_overlap<RwCompactLock>();
}

// --------------------------------------------- writer starvation bound --
// A continuous reader stream must not starve a writer: once the writer
// closes the gate, new readers wait, admitted readers drain, and the
// writer acquires. Generous bound — the property is "bounded", not
// "fast".
template <typename Rw>
void writer_gets_through_reader_stream() {
  CacheAligned<Rw> lock;
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_done{false};
  constexpr unsigned kReaders = 4;
  std::vector<std::thread> readers;
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lock.value.lock_shared();
        lock.value.unlock_shared();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread writer([&] {
    lock.value.lock();
    lock.value.unlock();
    writer_done.store(true, std::memory_order_release);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!writer_done.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(writer_done.load()) << "writer starved by readers";
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (auto& t : readers) t.join();
}

TEST(RwLockStarvation, SpinWriterBounded) {
  writer_gets_through_reader_stream<RwLock>();
}
TEST(RwLockStarvation, AdaptiveWriterBounded) {
  writer_gets_through_reader_stream<RwGovernedLock>();
}
TEST(RwLockStarvation, CompactParkWriterBounded) {
  writer_gets_through_reader_stream<RwCompactParkLock>();
}

// --------------------------------------- oversubscribed mixed traffic --
// threads = 4x hardware, ~80% reads. Exact write totals prove writer
// exclusion; zero torn reads prove reader/writer exclusion; finishing
// inside the suite timeout proves the tier does not livelock the host
// (mirrors tests/test_waiting_tiers.cpp's budgets: tiny for spin,
// an order more for the surrendering tiers).
template <typename Rw>
void oversubscribed_mixed(int writes_per_thread) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads = 4 * hw;
  CacheAligned<Rw> lock;
  std::uint64_t a = 0, b = 0;
  std::atomic<std::uint64_t> torn{0};
  SpinBarrier start(threads);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      start.arrive_and_wait();
      int writes = 0;
      for (std::uint32_t i = 0; writes < writes_per_thread; ++i) {
        if ((i + t) % 5 == 0) {
          lock.value.lock();
          ++a;
          ++b;
          lock.value.unlock();
          ++writes;
        } else {
          lock.value.lock_shared();
          if (a != b) torn.fetch_add(1, std::memory_order_relaxed);
          lock.value.unlock_shared();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(a, static_cast<std::uint64_t>(threads) * writes_per_thread);
  EXPECT_EQ(b, a);
}

constexpr int kSpinWrites = 30;
constexpr int kParkWrites = 400;

TEST(RwLockOversubscribed, Spin) {
  oversubscribed_mixed<RwLock>(kSpinWrites);
}
TEST(RwLockOversubscribed, Park) {
  oversubscribed_mixed<RwParkLock>(kParkWrites);
}
TEST(RwLockOversubscribed, Adaptive) {
  oversubscribed_mixed<RwGovernedLock>(kParkWrites);
}
TEST(RwLockOversubscribed, CompactPark) {
  oversubscribed_mixed<RwCompactParkLock>(kParkWrites);
}
TEST(RwLockOversubscribed, CompactAdaptive) {
  oversubscribed_mixed<RwCompactGovernedLock>(kParkWrites);
}

// --------------------------------------------------- try-op semantics --
TEST(RwLockTry, WriteExcludesEverything) {
  RwLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RwLockTry, ReadersShareButExcludeWriters) {
  RwLock lock;
  ASSERT_TRUE(lock.try_lock_shared());
  EXPECT_TRUE(lock.try_lock_shared());  // a second reader is admitted
  EXPECT_FALSE(lock.try_lock());        // a writer is not
  lock.unlock_shared();
  EXPECT_FALSE(lock.try_lock());  // one reader still holds
  lock.unlock_shared();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// ------------------------------------------------- type-erased surface --
TEST(AnyLockShared, RwlockCapableDescriptor) {
  const auto& factory = LockFactory::instance();
  for (const char* name :
       {"rwlock", "rwlock-yield", "rwlock-park", "rwlock-adaptive",
        "rwlock-compact", "rwlock-compact-park"}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_TRUE(info->rwlock_capable) << name;
  }
  for (const char* name : {"hemlock", "mcs", "ticket", "pthread"}) {
    const LockInfo* info = factory.info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(info->rwlock_capable) << name;
  }
}

TEST(AnyLockShared, NativeSharedModeAdmitsConcurrentReaders) {
  AnyLock lk("rwlock");
  EXPECT_TRUE(lk.info().rwlock_capable);
  lk.lock_shared();
  EXPECT_TRUE(lk.try_lock_shared());  // concurrent reader admitted
  EXPECT_FALSE(lk.try_lock());
  lk.unlock_shared();
  lk.unlock_shared();
  lk.lock();
  EXPECT_FALSE(lk.try_lock_shared());
  lk.unlock();
}

TEST(AnyLockShared, ExclusiveFallbackAdmitsOneReader) {
  AnyLock lk("hemlock");
  EXPECT_FALSE(lk.info().rwlock_capable);
  lk.lock_shared();                    // really an exclusive hold
  EXPECT_FALSE(lk.try_lock_shared());  // a second "reader" is refused
  lk.unlock_shared();
  EXPECT_TRUE(lk.try_lock_shared());
  lk.unlock_shared();
}

// The whole roster serves the shared surface: mixed shared/exclusive
// traffic stays exact whether the mode is native or the fallback.
TEST(AnyLockShared, SharedSurfaceIsTotalOverTheRoster) {
  for (const LockVTable* vt : LockFactory::instance().entries()) {
    AnyLock lk(*vt);
    lk.lock_shared();
    lk.unlock_shared();
    lk.lock();
    lk.unlock();
  }
}

// minikv's read path takes the shared mode through DB<AnyLock>; the
// dedicated minikv suite covers the database semantics — here we only
// pin that a shared-capable central lock is accepted end to end.
TEST(AnyLockShared, SharedGuardInterop) {
  AnyLock lk("rwlock-compact");
  {
    SharedLockGuard<AnyLock> g(lk);
    EXPECT_FALSE(lk.try_lock());
  }
  EXPECT_TRUE(lk.try_lock());
  lk.unlock();
}

}  // namespace
}  // namespace hemlock
