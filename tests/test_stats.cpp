// test_stats.cpp — the statistics substrate: log-linear histogram,
// run summaries (the paper's median-of-N protocol), and the lock
// usage profile rendering.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "stats/histogram.hpp"
#include "stats/lock_profiler.hpp"
#include "stats/summary.hpp"

namespace hemlock {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExactForSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  // Values below the sub-bucket count are recorded exactly.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 31u);
}

TEST(Histogram, BoundedRelativeErrorAcrossMagnitudes) {
  Histogram h(5);  // 32 sub-buckets -> <= 1/32 relative error
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50000; ++i) {
    const int mag = static_cast<int>(rng() % 40);
    const std::uint64_t v = (1ULL << mag) + rng() % (1ULL << mag);
    h.record(v);
    const std::uint64_t q = h.quantile(1.0);
    (void)q;
  }
  // Median of a known singleton distribution.
  Histogram h2;
  for (int i = 0; i < 1001; ++i) h2.record(1'000'000);
  const double err =
      std::abs(static_cast<double>(h2.quantile(0.5)) - 1e6) / 1e6;
  EXPECT_LT(err, 1.0 / 32.0 + 1e-9);
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 10000; ++i) h.record(rng() % 1'000'000);
  std::uint64_t prev = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() % 100000;
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q));
  }
}

TEST(Histogram, MeanTracksSum) {
  Histogram h;
  h.record_n(10, 3);
  h.record(70);
  EXPECT_DOUBLE_EQ(h.mean(), (30.0 + 70.0) / 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, SummaryStringMentionsPercentiles) {
  Histogram h;
  h.record(42);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(Summary, MedianOddAndEven) {
  Summary s;
  for (double v : {5.0, 1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);  // odd count
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.5);  // even count
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 13.0 / 4.0);
}

TEST(Summary, MedianOfSevenMatchesPaperProtocol) {
  // "We report the median of 7 independent runs" — an outlier-robust
  // statistic: one crazy run must not move it.
  Summary s;
  for (double v : {10.0, 10.1, 9.9, 10.05, 9.95, 10.02, 1000.0}) s.add(v);
  EXPECT_NEAR(s.median(), 10.02, 1e-9);
  EXPECT_GT(s.spread(), 0.0);
}

TEST(Summary, StddevAndDescribe) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);  // < 2 runs
  s.add(4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-9);
  EXPECT_NE(s.describe().find("median="), std::string::npos);
}

TEST(LockUsageProfileRender, MentionsEveryHeadlineStat) {
  LockUsageProfile p;
  p.nested_acquires = 24;
  p.max_locks_held = 2;
  p.max_grant_waiters = 1;
  const std::string s = p.describe();
  EXPECT_NE(s.find("24"), std::string::npos);
  EXPECT_NE(s.find("purely local"), std::string::npos);
  EXPECT_TRUE(p.purely_local());
  p.max_grant_waiters = 3;
  EXPECT_FALSE(p.purely_local());
  EXPECT_NE(p.describe().find("multi-waiting"), std::string::npos);
}

}  // namespace
}  // namespace hemlock
