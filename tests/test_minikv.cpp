// test_minikv.cpp — unit and integration tests for the MiniKV
// substrate (the Figure-8 LevelDB substitute): slice, varint
// encoding, arena, skiplist, memtable, immutable tables, the sharded
// LRU cache, and the DB facade with its pluggable central mutex.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/hemlock.hpp"
#include "locks/mcs.hpp"
#include "locks/std_adapter.hpp"
#include "locks/system.hpp"
#include "minikv/arena.hpp"
#include "minikv/cache.hpp"
#include "minikv/db.hpp"
#include "minikv/db_bench.hpp"
#include "minikv/memtable.hpp"
#include "minikv/skiplist.hpp"
#include "minikv/slice.hpp"
#include "minikv/status.hpp"
#include "minikv/table.hpp"

namespace hemlock::minikv {
namespace {

// ---------------------------------------------------------- Slice --
TEST(Slice, BasicViewsAndCompare) {
  Slice a("abc");
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.to_string(), "abc");
  EXPECT_TRUE(Slice("") .empty());
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);   // prefix sorts first
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
  Slice b("hello world");
  b.remove_prefix(6);
  EXPECT_EQ(b.to_string(), "world");
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

// --------------------------------------------------------- varint --
TEST(Varint, RoundTripsAllWidths) {
  for (std::uint32_t v : {0u, 1u, 127u, 128u, 300u, 16383u, 16384u,
                          2097151u, 268435455u, 4294967295u}) {
    char buf[8];
    char* end = detail::encode_varint32(buf, v);
    EXPECT_EQ(static_cast<std::size_t>(end - buf),
              detail::varint32_length(v));
    const char* p = buf;
    EXPECT_EQ(detail::decode_varint32(&p), v);
    EXPECT_EQ(p, end);
  }
}

// ----------------------------------------------------------- Arena --
TEST(Arena, AllocatesAndAccountsMemory) {
  Arena arena;
  EXPECT_EQ(arena.memory_usage(), 0u);
  char* p1 = arena.allocate(100);
  ASSERT_NE(p1, nullptr);
  std::memset(p1, 0xAB, 100);
  EXPECT_GT(arena.memory_usage(), 0u);
  // Aligned allocations are pointer-aligned.
  for (int i = 0; i < 50; ++i) {
    arena.allocate(3);  // misalign the bump pointer
    char* q = arena.allocate_aligned(16);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(void*), 0u);
  }
  // Large allocations get dedicated blocks.
  char* big = arena.allocate(8192);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 8192);
}

// -------------------------------------------------------- SkipList --
struct IntCmp {
  int operator()(std::uint64_t a, std::uint64_t b) const {
    return a < b ? -1 : (a > b ? 1 : 0);
  }
};

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  SkipList<std::uint64_t, IntCmp> list(IntCmp{}, &arena);
  std::mt19937 rng(42);
  std::set<std::uint64_t> inserted;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng() % 10000 + 1;  // avoid 0 (head key)
    if (inserted.insert(v).second) list.insert(v);
  }
  for (std::uint64_t v = 1; v <= 10000; ++v) {
    EXPECT_EQ(list.contains(v), inserted.count(v) == 1) << v;
  }
}

TEST(SkipListTest, IterationIsSorted) {
  Arena arena;
  SkipList<std::uint64_t, IntCmp> list(IntCmp{}, &arena);
  for (std::uint64_t v : {5u, 1u, 9u, 3u, 7u}) list.insert(v);
  SkipList<std::uint64_t, IntCmp>::Iterator it(&list);
  std::vector<std::uint64_t> got;
  for (it.seek_to_first(); it.valid(); it.next()) got.push_back(it.key());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 3, 5, 7, 9}));
  it.seek(4);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 5u);
  it.seek(10);
  EXPECT_FALSE(it.valid());
}

TEST(SkipListTest, ConcurrentReadersWithOneWriter) {
  Arena arena;
  SkipList<std::uint64_t, IntCmp> list(IntCmp{}, &arena);
  constexpr std::uint64_t kMax = 20000;
  std::atomic<std::uint64_t> watermark{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    // r by value: the thread outlives the loop iteration's scope.
    readers.emplace_back([&, r] {
      std::mt19937 rng(r + 1);
      while (watermark.load(std::memory_order_acquire) < kMax) {
        const std::uint64_t w = watermark.load(std::memory_order_acquire);
        if (w == 0) continue;
        const std::uint64_t probe = rng() % w + 1;
        // Everything at or below the watermark must be present.
        if (!list.contains(probe)) failed.store(true);
      }
    });
  }
  for (std::uint64_t v = 1; v <= kMax; ++v) {
    list.insert(v);
    watermark.store(v, std::memory_order_release);
  }
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
}

// -------------------------------------------------------- MemTable --
TEST(MemTableTest, AddGetNewestWins) {
  MemTable mem;
  std::string v;
  EXPECT_FALSE(mem.get("k", &v));
  mem.add(1, "k", "v1");
  ASSERT_TRUE(mem.get("k", &v));
  EXPECT_EQ(v, "v1");
  mem.add(2, "k", "v2");  // overwrite: newest must win
  ASSERT_TRUE(mem.get("k", &v));
  EXPECT_EQ(v, "v2");
  EXPECT_FALSE(mem.get("other", &v));
  EXPECT_EQ(mem.entries(), 2u);
}

TEST(MemTableTest, DistinctKeysAndEmptyValues) {
  MemTable mem;
  mem.add(1, "a", "");
  mem.add(2, "ab", "x");
  mem.add(3, "b", std::string(1000, 'z'));
  std::string v;
  ASSERT_TRUE(mem.get("a", &v));
  EXPECT_EQ(v, "");
  ASSERT_TRUE(mem.get("ab", &v));
  EXPECT_EQ(v, "x");
  ASSERT_TRUE(mem.get("b", &v));
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_FALSE(mem.get("aa", &v));
}

TEST(MemTableTest, SnapshotSortedDeduplicates) {
  MemTable mem;
  mem.add(1, "b", "old-b");
  mem.add(2, "a", "va");
  mem.add(3, "b", "new-b");
  mem.add(4, "c", "vc");
  const auto snap = mem.snapshot_sorted();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], (std::pair<std::string, std::string>{"a", "va"}));
  EXPECT_EQ(snap[1], (std::pair<std::string, std::string>{"b", "new-b"}));
  EXPECT_EQ(snap[2], (std::pair<std::string, std::string>{"c", "vc"}));
}

// --------------------------------------------------- ImmutableTable --
std::vector<std::pair<std::string, std::string>> make_sorted(int n) {
  std::vector<std::pair<std::string, std::string>> v;
  for (int i = 0; i < n; ++i) {
    v.emplace_back(bench_key(static_cast<std::uint64_t>(i) * 2),
                   "val" + std::to_string(i * 2));
  }
  return v;
}

TEST(ImmutableTableTest, BlockLookupFindsEveryKey) {
  ImmutableTable t(1, make_sorted(100), /*block_fanout=*/7);
  EXPECT_EQ(t.num_entries(), 100u);
  EXPECT_EQ(t.num_blocks(), (100 + 6) / 7);
  std::string v;
  for (int i = 0; i < 100; ++i) {
    const auto key = bench_key(static_cast<std::uint64_t>(i) * 2);
    const std::int64_t b = t.block_for(key);
    ASSERT_GE(b, 0);
    auto block = t.read_block(static_cast<std::size_t>(b));
    ASSERT_TRUE(block->get(key, &v)) << key;
    EXPECT_EQ(v, "val" + std::to_string(i * 2));
  }
}

TEST(ImmutableTableTest, MissesFallInTheRightPlaces) {
  ImmutableTable t(2, make_sorted(50), 8);
  std::string v;
  // Key below the smallest: no candidate block.
  EXPECT_EQ(t.block_for("0000000000000000"), 0);  // equals first key -> block 0
  ImmutableTable t2(3, {{"b", "1"}, {"d", "2"}}, 8);
  EXPECT_EQ(t2.block_for("a"), -1);
  const std::int64_t b = t2.block_for("c");
  ASSERT_GE(b, 0);
  EXPECT_FALSE(t2.read_block(static_cast<std::size_t>(b))->get("c", &v));
  EXPECT_TRUE(t2.read_block(static_cast<std::size_t>(b))->get("b", &v));
}

// ------------------------------------------------------------ Cache --
TEST(CacheTest, HitMissPromoteEvict) {
  ShardedLruCache<Block> cache(16 * 1024);
  auto mkblock = [](int tag) {
    auto b = std::make_shared<Block>();
    b->entries.emplace_back("k" + std::to_string(tag), "v");
    return b;
  };
  const BlockKey k1{1, 0}, k2{1, 1};
  EXPECT_EQ(cache.lookup(k1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(k1, mkblock(1), 100);
  auto got = cache.lookup(k1);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  cache.insert(k2, mkblock(2), 100);
  EXPECT_NE(cache.lookup(k2), nullptr);
  EXPECT_GT(cache.usage(), 0u);
  cache.erase(k1);
  EXPECT_EQ(cache.lookup(k1), nullptr);
}

TEST(CacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  // Single small capacity: inserting beyond capacity evicts LRU.
  LruShard<Block> shard;
  shard.set_capacity(250);
  auto blk = [] { return std::make_shared<Block>(); };
  shard.insert(BlockKey{1, 0}, blk(), 100);
  shard.insert(BlockKey{1, 1}, blk(), 100);
  // Touch {1,0} so {1,1} is LRU.
  EXPECT_NE(shard.lookup(BlockKey{1, 0}), nullptr);
  shard.insert(BlockKey{1, 2}, blk(), 100);  // forces eviction of {1,1}
  EXPECT_EQ(shard.lookup(BlockKey{1, 1}), nullptr);
  EXPECT_NE(shard.lookup(BlockKey{1, 0}), nullptr);
  EXPECT_NE(shard.lookup(BlockKey{1, 2}), nullptr);
  EXPECT_GE(shard.evictions(), 1u);
}

TEST(CacheTest, ReplacingSameKeyUpdatesCharge) {
  LruShard<Block> shard;
  shard.set_capacity(1000);
  auto blk = [] { return std::make_shared<Block>(); };
  shard.insert(BlockKey{7, 7}, blk(), 400);
  EXPECT_EQ(shard.usage(), 400u);
  shard.insert(BlockKey{7, 7}, blk(), 100);
  EXPECT_EQ(shard.usage(), 100u);
}

// --------------------------------------------------------------- DB --
TEST(DbTest, PutGetAcrossFlushes) {
  DbOptions opt;
  opt.write_buffer_bytes = 16 * 1024;  // force frequent flushes
  DB<StdMutex> db(opt);
  constexpr int kKeys = 5000;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db.put(bench_key(i), "value" + std::to_string(i)).is_ok());
  }
  EXPECT_GT(db.num_tables(), 0u);  // flushes happened
  std::string v;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db.get(bench_key(i), &v).is_ok()) << i;
    EXPECT_EQ(v, "value" + std::to_string(i));
  }
  EXPECT_TRUE(db.get(bench_key(kKeys + 1), &v).is_not_found());
}

TEST(DbTest, OverwritesResolveToNewestAcrossTables) {
  DbOptions opt;
  opt.write_buffer_bytes = 8 * 1024;
  DB<StdMutex> db(opt);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 500; ++i) {
      db.put(bench_key(i), "r" + std::to_string(round));
    }
    db.flush();
  }
  std::string v;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.get(bench_key(i), &v).is_ok());
    EXPECT_EQ(v, "r4") << "key " << i;
  }
}

TEST(DbTest, CacheServesRepeatedReads) {
  DB<StdMutex> db;
  fill_seq(db, 2000, 64);
  std::string v;
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 2000; i += 50) {
      ASSERT_TRUE(db.get(bench_key(i), &v).is_ok());
    }
  }
  EXPECT_GT(db.cache_hits(), 0u);
}

// The central integration property: concurrent readers + writer with
// a *Hemlock* central mutex return coherent values.
TEST(DbTest, ConcurrentReadersAndWriterWithHemlockMutex) {
  DbOptions opt;
  opt.write_buffer_bytes = 64 * 1024;
  DB<Hemlock> db(opt);
  constexpr std::uint64_t kKeys = 2000;
  fill_seq(db, kKeys, 32);

  std::atomic<bool> stop{false};
  std::atomic<bool> wrong{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 6; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 prng(r + 99);
      std::string v;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k = prng.below(kKeys);
        if (!db.get(bench_key(k), &v).is_ok()) {
          wrong.store(true);  // every key was pre-populated
        }
      }
    });
  }
  // Writer keeps overwriting (values change but keys never vanish).
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t k = 0; k < kKeys; k += 37) {
      db.put(bench_key(k), "round" + std::to_string(round));
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(wrong.load());
}

TEST(DbBench, FillSeqThenReadRandomFindsEverything) {
  DB<McsLock> db;
  fill_seq(db, 10000, 100);
  ReadRandomConfig cfg;
  cfg.threads = 4;
  cfg.duration_ms = 200;
  cfg.num_keys = 10000;
  const ReadRandomResult res = run_readrandom(db, cfg);
  EXPECT_GT(res.total_reads, 0u);
  EXPECT_EQ(res.total_reads, res.found);  // all keys exist
  EXPECT_GT(res.mops_per_sec(), 0.0);
}

TEST(DbBench, KeyFormatMatchesDbBench) {
  EXPECT_EQ(bench_key(0), "0000000000000000");
  EXPECT_EQ(bench_key(42), "0000000000000042");
  EXPECT_EQ(bench_key(9999999999999999ULL), "9999999999999999");
}

}  // namespace
}  // namespace hemlock::minikv
