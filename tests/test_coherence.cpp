// test_coherence.cpp — the coherence model and simulated locks.
// Deterministic single-threaded scripts pin down every protocol
// transition's accounting; multi-threaded runs then assert the
// Table 2 structural properties (who causes more offcore traffic).
#include <gtest/gtest.h>

#include <cstdint>

#include "coherence/cache_model.hpp"
#include "coherence/protocol.hpp"
#include "coherence/sim_atomic.hpp"
#include "coherence/sim_bench.hpp"
#include "coherence/sim_locks.hpp"

namespace hemlock::coherence {
namespace {

// -------------------------------------------------- state machine --
TEST(CacheModelTest, ColdReadGetsExclusive) {
  CacheModel m(Protocol::kMesi, 2);
  const auto line = m.add_line();
  SimCoreBinding bind(0);
  m.on_load(0, line);
  EXPECT_EQ(m.state(0, line), LineState::kExclusive);
  const auto c = m.counters(0);
  EXPECT_EQ(c.data_reads, 1u);
  EXPECT_EQ(c.rfos, 0u);
  // Second read is a pure hit.
  m.on_load(0, line);
  EXPECT_EQ(m.counters(0).hits, 1u);
}

TEST(CacheModelTest, SilentExclusiveToModifiedUpgrade) {
  CacheModel m(Protocol::kMesi, 2);
  const auto line = m.add_line();
  m.on_load(0, line);   // E
  m.on_store(0, line);  // E->M, silent
  EXPECT_EQ(m.state(0, line), LineState::kModified);
  const auto c = m.counters(0);
  EXPECT_EQ(c.rfos, 0u);  // no offcore traffic for the upgrade
  EXPECT_EQ(c.hits, 1u);
}

TEST(CacheModelTest, SharedStoreCostsUpgradeRfo) {
  CacheModel m(Protocol::kMesi, 2);
  const auto line = m.add_line();
  m.on_load(0, line);  // core0: E
  m.on_load(1, line);  // core1 joins: both S
  EXPECT_EQ(m.state(0, line), LineState::kShared);
  EXPECT_EQ(m.state(1, line), LineState::kShared);
  m.on_store(1, line);  // S->M upgrade: RFO + invalidation of core0
  const auto c1 = m.counters(1);
  EXPECT_EQ(c1.rfos, 1u);
  EXPECT_EQ(c1.upgrades, 1u);
  EXPECT_EQ(c1.invalidations, 1u);
  EXPECT_EQ(m.state(0, line), LineState::kInvalid);
  EXPECT_EQ(m.state(1, line), LineState::kModified);
}

TEST(CacheModelTest, ReadFromModifiedForcesWriteback) {
  CacheModel m(Protocol::kMesi, 2);
  const auto line = m.add_line();
  m.on_store(0, line);  // I->M (write miss RFO)
  EXPECT_EQ(m.counters(0).rfos, 1u);
  EXPECT_EQ(m.counters(0).upgrades, 0u);  // did not have the data
  m.on_load(1, line);  // pulls the dirty line: writeback + both S
  EXPECT_EQ(m.counters(1).data_reads, 1u);
  EXPECT_EQ(m.counters(1).writebacks, 1u);
  EXPECT_EQ(m.state(0, line), LineState::kShared);
  EXPECT_EQ(m.state(1, line), LineState::kShared);
}

TEST(CacheModelTest, MoesiKeepsDirtyOwner) {
  CacheModel m(Protocol::kMoesi, 2);
  const auto line = m.add_line();
  m.on_store(0, line);  // M
  m.on_load(1, line);   // MOESI: owner -> O (no memory writeback path)
  EXPECT_EQ(m.state(0, line), LineState::kOwned);
  EXPECT_EQ(m.state(1, line), LineState::kShared);
  // O still has read permission: next read is a hit.
  m.on_load(0, line);
  EXPECT_EQ(m.counters(0).hits, 1u);
  // Writing from O is an upgrade RFO.
  m.on_store(0, line);
  EXPECT_EQ(m.counters(0).upgrades, 1u);
  EXPECT_EQ(m.state(1, line), LineState::kInvalid);
}

TEST(CacheModelTest, MesifDesignatesForwarder) {
  CacheModel m(Protocol::kMesif, 3);
  const auto line = m.add_line();
  m.on_load(0, line);  // E
  m.on_load(1, line);  // core1 becomes the forwarder
  EXPECT_EQ(m.state(1, line), LineState::kForward);
  EXPECT_EQ(m.state(0, line), LineState::kShared);
  m.on_load(2, line);  // newest sharer takes over F
  EXPECT_EQ(m.state(2, line), LineState::kForward);
  EXPECT_EQ(m.state(1, line), LineState::kShared);
}

TEST(CacheModelTest, RmwAlwaysTakesOwnership) {
  CacheModel m(Protocol::kMesi, 2);
  const auto line = m.add_line();
  m.on_rmw(0, line);  // cold RMW: RFO
  EXPECT_EQ(m.state(0, line), LineState::kModified);
  EXPECT_EQ(m.counters(0).rfos, 1u);
  m.on_rmw(0, line);  // subsequent RMW in M: local hit — CTR's premise
  EXPECT_EQ(m.counters(0).hits, 1u);
}

TEST(CacheModelTest, CountersResetButStatesPersist) {
  CacheModel m(Protocol::kMesi, 2);
  const auto line = m.add_line();
  m.on_store(0, line);
  m.reset_counters();
  EXPECT_EQ(m.total().ops, 0u);
  EXPECT_EQ(m.state(0, line), LineState::kModified);
}

TEST(CacheModelTest, RenderLineShowsStates) {
  CacheModel m(Protocol::kMesi, 3);
  const auto line = m.add_line();
  m.on_store(1, line);
  EXPECT_EQ(m.render_line(line), "I M I");
}

// --------------------------------------------- CTR microprotocol --
// The §2.1 claim, scripted: a naive hand-over (load-poll + clearing
// store) costs one more offcore transaction than a CTR hand-over
// (CAS-poll) because of the S->M upgrade.
TEST(CtrMicroProtocol, NaiveHandoverPaysUpgrade) {
  CacheModel m(Protocol::kMesif, 2);
  SimAtomic<std::uint64_t> grant(&m, 0);

  // Owner (core 0) publishes; waiter (core 1) load-polls, sees it,
  // clears with a store.
  {
    SimCoreBinding owner(0);
    grant.store(1);  // I->M RFO
  }
  m.reset_counters();
  {
    SimCoreBinding waiter(1);
    EXPECT_EQ(grant.load(), 1u);  // miss: pulls line to S
    grant.store(0);               // S->M upgrade: a SECOND offcore op
  }
  const auto naive = m.total();
  EXPECT_EQ(naive.offcore_total(), 2u);
  EXPECT_EQ(naive.upgrades, 1u);

  // Same hand-over with CAS-polling: one offcore op total.
  CacheModel m2(Protocol::kMesif, 2);
  SimAtomic<std::uint64_t> grant2(&m2, 0);
  {
    SimCoreBinding owner(0);
    grant2.store(1);
  }
  m2.reset_counters();
  {
    SimCoreBinding waiter(1);
    EXPECT_EQ(grant2.compare_and_swap(1, 0), 1u);  // RFO, consume in one
  }
  const auto ctr = m2.total();
  EXPECT_EQ(ctr.offcore_total(), 1u);
  EXPECT_EQ(ctr.upgrades, 0u);
}

// ------------------------------------------------- sim lock runs --
TEST(SimLocks, SingleThreadIsCheap) {
  // One thread, no contention: per-pair offcore must be ~0 after the
  // first pair warms the lines into M.
  const auto r = run_sim_bench<SimHemlockCtr>(Protocol::kMesif, 1, 1000);
  EXPECT_EQ(r.pairs, 1000u);
  EXPECT_LT(r.offcore_per_pair(), 0.1);
  const auto t = run_sim_bench<SimTicketLock>(Protocol::kMesif, 1, 1000);
  EXPECT_LT(t.offcore_per_pair(), 0.1);
  const auto mcs = run_sim_bench<SimMcsLock>(Protocol::kMesif, 1, 1000);
  EXPECT_LT(mcs.offcore_per_pair(), 0.1);
  const auto clh = run_sim_bench<SimClhLock>(Protocol::kMesif, 1, 1000);
  EXPECT_LT(clh.offcore_per_pair(), 0.1);
}

TEST(SimLocks, AllAlgorithmsSynchronizeCorrectly) {
  // The simulated locks must actually provide mutual exclusion (their
  // value updates are real): verified through a shared plain counter.
  // (Run each algorithm at moderate contention.)
  constexpr std::uint32_t kThreads = 6, kIters = 500;
  auto check = [&](auto make_result) {
    const SimBenchResult r = make_result();
    EXPECT_EQ(r.pairs, static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_GT(r.totals.ops, r.pairs);  // at least one access per op
  };
  check([&] {
    return run_sim_bench<SimMcsLock>(Protocol::kMesif, kThreads, kIters);
  });
  check([&] {
    return run_sim_bench<SimClhLock>(Protocol::kMesif, kThreads, kIters);
  });
  check([&] {
    return run_sim_bench<SimTicketLock>(Protocol::kMesif, kThreads, kIters);
  });
  check([&] {
    return run_sim_bench<SimHemlockCtr>(Protocol::kMesif, kThreads, kIters);
  });
  check([&] {
    return run_sim_bench<SimHemlockNaive>(Protocol::kMesif, kThreads, kIters);
  });
}

// The Table 2 structural claims at contention:
//  (1) Ticket's offcore rate dwarfs every queue lock's (global
//      spinning: every release invalidates every waiter);
//  (2) Hemlock with CTR produces less traffic than Hemlock without;
//  (3) Hemlock with CTR produces less traffic than MCS (no queue
//      nodes: no arrival-store/spin-line coupling, no head-field
//      maintenance in unlock).
// CLH vs Hemlock is a *near-tie* in this idealized model: the model
// counts minimum protocol transitions, while the paper's measured CLH
// elevation (11.1 vs 6.81) includes node-migration/reinitialization
// effects ("We isolated that increase to the stores the reinitialize
// the queue nodes") that exceed one clean upgrade transaction on real
// NUMA hardware. We assert the near-tie band rather than a strict
// inequality and record the nuance in EXPERIMENTS.md.
TEST(SimLocks, Table2OrderingHolds) {
  constexpr std::uint32_t kThreads = 16, kIters = 400;
  if (std::thread::hardware_concurrency() < kThreads) {
    GTEST_SKIP() << "the simulator charges *actual* interleavings: with "
                    "fewer cores than threads, waiters never poll "
                    "concurrently and the measured traffic reflects the "
                    "scheduler, not the protocol (needs >= " << kThreads
                 << " cores)";
  }
  const double mcs =
      run_sim_bench<SimMcsLock>(Protocol::kMesif, kThreads, kIters)
          .offcore_per_pair();
  const double clh =
      run_sim_bench<SimClhLock>(Protocol::kMesif, kThreads, kIters)
          .offcore_per_pair();
  const double ticket =
      run_sim_bench<SimTicketLock>(Protocol::kMesif, kThreads, kIters)
          .offcore_per_pair();
  const double hemlock =
      run_sim_bench<SimHemlockCtr>(Protocol::kMesif, kThreads, kIters)
          .offcore_per_pair();
  const double hemlock_naive =
      run_sim_bench<SimHemlockNaive>(Protocol::kMesif, kThreads, kIters)
          .offcore_per_pair();

  EXPECT_GT(ticket, 2.0 * mcs) << "global spinning must dominate";
  EXPECT_GT(ticket, 2.0 * clh);
  EXPECT_GT(ticket, 2.0 * hemlock);
  EXPECT_LT(hemlock, hemlock_naive) << "CTR must reduce offcore traffic";
  EXPECT_LT(hemlock, mcs) << "context-free + nodeless must beat MCS";
  EXPECT_LT(hemlock, clh * 1.25) << "at worst a near-tie with CLH";
}

// Protocols agree on the ordering (the paper observes the same
// relative results on MESIF-Intel and MOESI-AMD/SPARC hosts).
TEST(SimLocks, OrderingIsProtocolRobust) {
  constexpr std::uint32_t kThreads = 8, kIters = 300;
  if (std::thread::hardware_concurrency() < kThreads) {
    GTEST_SKIP() << "interleaving-dependent ordering needs a core per "
                    "polling thread (see Table2OrderingHolds)";
  }
  for (const Protocol p :
       {Protocol::kMesi, Protocol::kMesif, Protocol::kMoesi}) {
    const double ticket =
        run_sim_bench<SimTicketLock>(p, kThreads, kIters).offcore_per_pair();
    const double hemlock =
        run_sim_bench<SimHemlockCtr>(p, kThreads, kIters).offcore_per_pair();
    const double hemlock_naive =
        run_sim_bench<SimHemlockNaive>(p, kThreads, kIters)
            .offcore_per_pair();
    EXPECT_GT(ticket, hemlock) << protocol_name(p);
    EXPECT_LT(hemlock, hemlock_naive) << protocol_name(p);
  }
}

}  // namespace
}  // namespace hemlock::coherence
