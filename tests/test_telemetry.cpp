// test_telemetry.cpp — the lock-runtime telemetry layer
// (stats/telemetry.hpp): log2 bucket edges, handle lifecycle and
// slot-scrub-on-release, hook counting through AnyLock, sampled
// wait/hold histograms, snapshot/merge exactness under thread churn
// (exited threads fold into the retired array), reset, the JSON
// export, and the condvar-source registration.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/any_lock.hpp"
#include "api/factory.hpp"
#include "stats/telemetry.hpp"

namespace hemlock::telemetry {
namespace {

#if HEMLOCK_TELEMETRY_ENABLED

TEST(Telemetry, Log2BucketEdges) {
  EXPECT_EQ(log2_bucket(0), 0u);
  EXPECT_EQ(log2_bucket(1), 0u);
  EXPECT_EQ(log2_bucket(2), 1u);
  EXPECT_EQ(log2_bucket(3), 1u);
  EXPECT_EQ(log2_bucket(4), 2u);
  EXPECT_EQ(log2_bucket(1023), 9u);
  EXPECT_EQ(log2_bucket(1024), 10u);
  EXPECT_EQ(log2_bucket(1ull << 38), 38u);
  // The top bucket absorbs everything at and past 2^39.
  EXPECT_EQ(log2_bucket(1ull << 39), kHistBuckets - 1);
  EXPECT_EQ(log2_bucket(~0ull), kHistBuckets - 1);
}

TEST(Telemetry, HandleLifecycle) {
  const TelemetryHandle h = register_handle("tm-lifecycle");
  ASSERT_NE(h.id, 0);
  EXPECT_EQ(handle_name(h), "tm-lifecycle");

  // Same name refcounts onto the same slot.
  const TelemetryHandle h2 = register_handle("tm-lifecycle");
  EXPECT_EQ(h2.id, h.id);

  release_handle(h2);
  EXPECT_EQ(handle_name(h), "tm-lifecycle");  // one ref remains
  release_handle(h);
  EXPECT_EQ(handle_name(h), std::string_view{});  // slot freed

  // The empty name never claims a slot.
  EXPECT_EQ(register_handle("").id, 0);
}

TEST(Telemetry, HandleNamesTruncateNotOverflow) {
  const std::string longname(200, 'x');
  const TelemetryHandle h = register_handle(longname);
  ASSERT_NE(h.id, 0);
  const std::string_view stored = handle_name(h);
  EXPECT_LT(stored.size(), 200u);
  EXPECT_EQ(stored, longname.substr(0, stored.size()));
  // Truncated spelling still refcounts (lookup uses the stored name).
  const TelemetryHandle h2 = register_handle(std::string(stored));
  EXPECT_EQ(h2.id, h.id);
  release_handle(h2);
  release_handle(h);
}

TEST(Telemetry, TableFullFallsBackToUnattributed) {
  std::vector<TelemetryHandle> claimed;
  for (int i = 0; i < 64; ++i) {
    const TelemetryHandle h =
        register_handle("tm-fill-" + std::to_string(i));
    if (h.id == 0) break;
    claimed.push_back(h);
  }
  // The table holds kMaxHandles - 1 usable slots process-wide; with
  // whatever other suites hold, at least one registration above must
  // have overflowed into the {0} fallback.
  EXPECT_LT(claimed.size(), 64u);
  for (const TelemetryHandle h : claimed) release_handle(h);
}

/// The named row in a snapshot, or nullptr.
const LockTelemetry* find_row(const Snapshot& snap, std::string_view name) {
  for (const LockTelemetry& lt : snap.locks) {
    if (lt.name == name) return &lt;
  }
  return nullptr;
}

TEST(Telemetry, HooksCountAndReleaseScrubs) {
  const TelemetryHandle h = register_handle("tm-count");
  ASSERT_NE(h.id, 0);
  for (int i = 0; i < 5; ++i) {
    on_lock_begin(h);
    on_lock_acquired(h);
    on_unlock_begin(h);
    on_unlock_end(h);
  }
  on_try_failure(h);
  on_shared_begin(h);
  on_shared_acquired(h);

  const Snapshot snap = collect();
  const LockTelemetry* row = find_row(snap, "tm-count");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->acquires, 5u);
  EXPECT_EQ(row->try_failures, 1u);
  EXPECT_EQ(row->shared_acquires, 1u);

  // Release scrubs the slot: a new handle that reuses it must not
  // inherit the old counters, and the old name must be gone.
  release_handle(h);
  EXPECT_EQ(find_row(collect(), "tm-count"), nullptr);
  const TelemetryHandle h2 = register_handle("tm-count-reborn");
  ASSERT_NE(h2.id, 0);
  const LockTelemetry* reborn = find_row(collect(), "tm-count-reborn");
  // All-zero rows are skipped entirely — reuse starts from nothing.
  EXPECT_EQ(reborn, nullptr);
  release_handle(h2);
}

TEST(Telemetry, SampledTimingFillsWaitAndHoldHistograms) {
  // The sampler fires when (++ops % kSampleEvery) == 1; ops is
  // owner-thread sampling state that deliberately survives slot
  // scrubs, so the phase here depends on what earlier tests did with
  // the reused slot. kSampleEvery + 1 consecutive cycles cross the
  // firing point at least once (and at most twice) from any phase.
  const TelemetryHandle h = register_handle("tm-sampled");
  ASSERT_NE(h.id, 0);
  for (unsigned i = 0; i < kSampleEvery + 1; ++i) {
    on_lock_begin(h);
    on_lock_acquired(h);
    on_unlock_begin(h);
    on_unlock_end(h);
  }
  const Snapshot snap = collect();
  const LockTelemetry* row = find_row(snap, "tm-sampled");
  ASSERT_NE(row, nullptr);
  EXPECT_GE(row->wait_ns.count(), 1u);
  EXPECT_LE(row->wait_ns.count(), 2u);
  EXPECT_GE(row->hold_ns.count(), 1u);
  EXPECT_LE(row->hold_ns.count(), 2u);
  release_handle(h);
}

TEST(Telemetry, HistogramBucketsMaterializeAtLowerEdge) {
  const TelemetryHandle h = register_handle("tm-hist");
  ASSERT_NE(h.id, 0);
  // Plant counts directly in two buckets of this thread's slab; the
  // snapshot re-materializes bucket b as count at value 2^b.
  TmSlot& s = my_slab().slots[h.id];
  s.wait_hist[5].store(3, std::memory_order_relaxed);   // mo: test setup
  s.wait_hist[12].store(1, std::memory_order_relaxed);  // mo: test setup
  const Snapshot snap = collect();
  const LockTelemetry* row = find_row(snap, "tm-hist");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->wait_ns.count(), 4u);
  EXPECT_EQ(row->wait_ns.min(), 1u << 5);
  EXPECT_EQ(row->wait_ns.max(), 1u << 12);
  // p50 lands in bucket 5's [2^5, 2^6) range (3 of 4 samples).
  EXPECT_GE(row->wait_ns.quantile(0.5), 1u << 5);
  EXPECT_LT(row->wait_ns.quantile(0.5), 1u << 6);
  release_handle(h);
}

TEST(Telemetry, SnapshotExactUnderThreadChurn) {
  const TelemetryHandle h = register_handle("tm-churn");
  ASSERT_NE(h.id, 0);
  constexpr int kWaves = 3;
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;

  // A concurrent collector exercises snapshot-vs-writer and
  // snapshot-vs-deregistration (retired fold) races while waves of
  // threads count and exit.
  std::atomic<bool> stop{false};
  std::thread collector([&] {
    while (!stop.load(std::memory_order_acquire)) {  // mo: test handshake
      const Snapshot snap = collect();
      const LockTelemetry* row = find_row(snap, "tm-churn");
      if (row != nullptr) {
        // Monotonic and never past the final total.
        EXPECT_LE(row->acquires,
                  static_cast<std::uint64_t>(kWaves * kThreads * kOps));
      }
    }
  });

  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          on_lock_begin(h);
          on_lock_acquired(h);
          on_unlock_begin(h);
          on_unlock_end(h);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  stop.store(true, std::memory_order_release);  // mo: test handshake
  collector.join();

  // Writers quiesced: the snapshot is exact — live slabs plus the
  // retired fold of every exited worker must balance to the op count.
  const Snapshot snap = collect();
  const LockTelemetry* row = find_row(snap, "tm-churn");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->acquires,
            static_cast<std::uint64_t>(kWaves * kThreads * kOps));
  release_handle(h);
}

TEST(Telemetry, AnyLockNamedConstructionCounts) {
  {
    AnyLock l = LockFactory::instance().make("hemlock", "tm-anylock");
    l.lock();
    l.unlock();
    ASSERT_TRUE(l.try_lock());
    l.unlock();

    const Snapshot snap = collect();
    const LockTelemetry* row = find_row(snap, "tm-anylock");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->acquires, 2u);
    EXPECT_EQ(handle_name(l.telemetry_handle()), "tm-anylock");
  }
  // Destruction released the last reference and scrubbed the slot.
  EXPECT_EQ(find_row(collect(), "tm-anylock"), nullptr);
}

TEST(Telemetry, AnyLockSharedModeCountsReaders) {
  AnyLock l =
      LockFactory::instance().make("rwlock-compact", "tm-readers");
  l.lock_shared();
  l.unlock_shared();
  l.lock_shared();
  l.unlock_shared();
  const Snapshot snap = collect();
  const LockTelemetry* row = find_row(snap, "tm-readers");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->shared_acquires, 2u);
  EXPECT_EQ(row->acquires, 0u);
}

TEST(Telemetry, TryFailureCountsUnderContention) {
  AnyLock l = LockFactory::instance().make("ttas", "tm-tryfail");
  l.lock();
  std::thread loser([&] { EXPECT_FALSE(l.try_lock()); });
  loser.join();
  l.unlock();
  const Snapshot snap = collect();
  const LockTelemetry* row = find_row(snap, "tm-tryfail");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->acquires, 1u);
  EXPECT_EQ(row->try_failures, 1u);
}

TEST(Telemetry, ResetZeroesSlotsAndGovernorDiag) {
  const TelemetryHandle h = register_handle("tm-reset");
  ASSERT_NE(h.id, 0);
  on_lock_begin(h);
  on_lock_acquired(h);
  on_unlock_begin(h);
  on_unlock_end(h);
  ASSERT_NE(find_row(collect(), "tm-reset"), nullptr);

  reset();

  // The handle survives a reset (it names a live lock); only its
  // counters clear, so the all-zero row disappears from snapshots.
  EXPECT_EQ(handle_name(h), "tm-reset");
  EXPECT_EQ(find_row(collect(), "tm-reset"), nullptr);
  const GovernorTelemetry g = collect().governor;
  EXPECT_EQ(g.park_sleeps, 0u);
  EXPECT_EQ(g.park_wakeups, 0u);
  EXPECT_EQ(g.wake_syscalls, 0u);
  EXPECT_EQ(g.census_high_water_max, 0u);
  release_handle(h);
}

#endif  // HEMLOCK_TELEMETRY_ENABLED

TEST(Telemetry, ToJsonCarriesSchemaAndSections) {
  const std::string json = to_json(collect());
  EXPECT_NE(json.find("\"schema\":\"hemlock-telemetry-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"locks\":["), std::string::npos);
  EXPECT_NE(json.find("\"governor\":{"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":{"), std::string::npos);
}

TEST(Telemetry, CondSourceAppearsInSnapshotsOnceRegistered) {
  set_cond_source(+[] {
    return CondCounters{1, 2, 3, 4, 5, 6, 7};
  });
  const Snapshot snap = collect();
  ASSERT_TRUE(snap.cond_present);
  EXPECT_EQ(snap.cond.adopted, 1u);
  EXPECT_EQ(snap.cond.chain_wakes, 7u);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"cond\":{\"adopted\":1"), std::string::npos);
  set_cond_source(nullptr);
  EXPECT_FALSE(collect().cond_present);
}

}  // namespace
}  // namespace hemlock::telemetry
