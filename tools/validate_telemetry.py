#!/usr/bin/env python3
"""Schema validator for hemlock-telemetry-v1 JSON documents.

Validates the telemetry snapshot exported by HEMLOCK_STATS=json[:path]
and the "telemetry" block bench_minikv_traffic embeds in its
hemlock-bench-v1 trajectory file. CI's perf-smoke job runs this over
the uploaded artifacts so a malformed exporter fails the build, not
the downstream dashboard.

Usage:
  validate_telemetry.py <file.json> [<file.json> ...]
  validate_telemetry.py --self-test

A hemlock-bench-v1 input is accepted when it carries a "telemetry"
member (which is then validated); a bare hemlock-telemetry-v1 document
is validated directly.
"""

import json
import sys

HIST_KEYS = {"count": int, "p50": int, "p99": int, "max": int}

LOCK_KEYS = {
    "name": str,
    "acquires": int,
    "contended": int,
    "try_failures": int,
    "parks": int,
    "wakes": int,
    "escalations": int,
    "shared_acquires": int,
    "wait_ns": dict,
    "hold_ns": dict,
}

GOVERNOR_KEYS = {
    "cpus": int,
    "waiters": int,
    "parked": int,
    "wake_syscalls": int,
    "wake_gate_skips": int,
    "park_sleeps": int,
    "park_wakeups": int,
    "baseline_retries": int,
    "escalations": int,
    "census_high_water": dict,
}

EPOCH_KEYS = {
    "epoch": int,
    "pending": int,
    "freed": int,
    "advances": int,
    "advance_blocked": int,
}

COND_KEYS = {
    "adopted": int,
    "waits": int,
    "timeouts": int,
    "signals": int,
    "broadcasts": int,
    "requeued": int,
    "chain_wakes": int,
}


def check_keys(obj, spec, where, errors):
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected object, got {type(obj).__name__}")
        return
    for key, typ in spec.items():
        if key not in obj:
            errors.append(f"{where}: missing key {key!r}")
        elif not isinstance(obj[key], typ):
            errors.append(
                f"{where}.{key}: expected {typ.__name__}, got "
                f"{type(obj[key]).__name__}"
            )
        elif typ is int and obj[key] < 0:
            errors.append(f"{where}.{key}: negative counter {obj[key]}")


def validate_telemetry(doc):
    """Returns a list of problems; empty means valid."""
    errors = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != "hemlock-telemetry-v1":
        return [f"schema is {doc.get('schema')!r}, want hemlock-telemetry-v1"]
    if not isinstance(doc.get("pid"), int):
        errors.append("pid: missing or not an int")

    locks = doc.get("locks")
    if not isinstance(locks, list):
        errors.append("locks: missing or not an array")
    else:
        for i, lock in enumerate(locks):
            where = f"locks[{i}]"
            check_keys(lock, LOCK_KEYS, where, errors)
            if isinstance(lock, dict):
                for hist in ("wait_ns", "hold_ns"):
                    if isinstance(lock.get(hist), dict):
                        check_keys(lock[hist], HIST_KEYS,
                                   f"{where}.{hist}", errors)

    check_keys(doc.get("governor"), GOVERNOR_KEYS, "governor", errors)
    gov = doc.get("governor")
    if isinstance(gov, dict) and isinstance(gov.get("census_high_water"),
                                            dict):
        check_keys(gov["census_high_water"], {"max": int, "bucket": int},
                   "governor.census_high_water", errors)
    check_keys(doc.get("epoch"), EPOCH_KEYS, "epoch", errors)
    if "cond" in doc:
        check_keys(doc["cond"], COND_KEYS, "cond", errors)
    return errors


def validate_file(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict) and doc.get("schema") == "hemlock-bench-v1":
        if "telemetry" not in doc:
            return [f"{path}: hemlock-bench-v1 without a telemetry block"]
        doc = doc["telemetry"]
    return [f"{path}: {e}" for e in validate_telemetry(doc)]


def minimal_doc():
    hist = {"count": 1, "p50": 1023, "p99": 4095, "max": 3000}
    return {
        "schema": "hemlock-telemetry-v1",
        "pid": 1234,
        "locks": [
            {
                "name": "minikv:central",
                "acquires": 10,
                "contended": 2,
                "try_failures": 0,
                "parks": 1,
                "wakes": 1,
                "escalations": 0,
                "shared_acquires": 3,
                "wait_ns": dict(hist),
                "hold_ns": dict(hist),
            }
        ],
        "governor": {
            "cpus": 1,
            "waiters": 0,
            "parked": 0,
            "wake_syscalls": 5,
            "wake_gate_skips": 2,
            "park_sleeps": 5,
            "park_wakeups": 5,
            "baseline_retries": 0,
            "escalations": 3,
            "census_high_water": {"max": 2, "bucket": 17},
        },
        "epoch": {
            "epoch": 4,
            "pending": 0,
            "freed": 12,
            "advances": 4,
            "advance_blocked": 0,
        },
        "cond": {
            "adopted": 1,
            "waits": 8,
            "timeouts": 1,
            "signals": 4,
            "broadcasts": 2,
            "requeued": 3,
            "chain_wakes": 3,
        },
    }


def self_test():
    """Planted fixtures: the valid document must pass, each mutation
    must fail — proving the checks are not vacuous."""
    failures = []

    doc = minimal_doc()
    errs = validate_telemetry(doc)
    if errs:
        failures.append(f"valid document rejected: {errs}")

    no_cond = minimal_doc()
    del no_cond["cond"]
    if validate_telemetry(no_cond):
        failures.append("cond block should be optional")

    bad_schema = minimal_doc()
    bad_schema["schema"] = "hemlock-telemetry-v0"
    if not validate_telemetry(bad_schema):
        failures.append("wrong schema accepted")

    missing_key = minimal_doc()
    del missing_key["locks"][0]["contended"]
    if not validate_telemetry(missing_key):
        failures.append("missing lock key accepted")

    wrong_type = minimal_doc()
    wrong_type["governor"]["parked"] = "3"
    if not validate_telemetry(wrong_type):
        failures.append("string counter accepted")

    negative = minimal_doc()
    negative["epoch"]["freed"] = -1
    if not validate_telemetry(negative):
        failures.append("negative counter accepted")

    bad_hist = minimal_doc()
    del bad_hist["locks"][0]["wait_ns"]["p99"]
    if not validate_telemetry(bad_hist):
        failures.append("histogram missing p99 accepted")

    if failures:
        print("SELF-TEST FAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("SELF-TEST PASS: valid fixture accepted, 6 mutations rejected")
    return 0


def main():
    args = sys.argv[1:]
    if args == ["--self-test"]:
        return self_test()
    if not args:
        print(__doc__)
        return 2
    problems = []
    for path in args:
        problems.extend(validate_file(path))
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"PASS: {len(args)} file(s) conform to hemlock-telemetry-v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
