// telemetry_codegen_probe.cpp — TU compiled to assembly (never
// linked) by tools/check_telemetry_off.py to prove the telemetry
// hooks are zero-cost under -DHEMLOCK_TELEMETRY=OFF.
//
// It instantiates the hooked hot paths: AnyLock's lock/try/shared
// cycles (the inline on_lock_begin/... hooks), a named construction
// (register_handle/release_handle), and a futex-waiting lock cycle
// (the waiting layer's HEMLOCK_TM_* statement macros). With
// -DHEMLOCK_TELEMETRY_DISABLED the generated assembly must contain no
// telemetry residue — no slab/attribution thread-locals, no
// out-of-line telemetry calls; without it, the residue must appear —
// proving the probe exercises hooked code and the OFF check is not
// vacuous. (The markers are mangled-name fragments, not the word
// "telemetry": the assembly's .file debug directives name
// telemetry.hpp in both configurations.)
#include "api/any_lock.hpp"
#include "core/hemlock.hpp"
#include "stats/telemetry.hpp"

namespace probe {

void any_lock_cycle(hemlock::AnyLock& l) {
  l.lock();
  l.unlock();
}

bool any_lock_try(hemlock::AnyLock& l) {
  if (l.try_lock()) {
    l.unlock();
    return true;
  }
  return false;
}

void any_lock_shared_cycle(hemlock::AnyLock& l) {
  l.lock_shared();
  l.unlock_shared();
}

hemlock::AnyLock make_named() {
  return hemlock::AnyLock("hemlock", "probe-lock");
}

void named_scope() {
  hemlock::AnyLock l("hemlock", "probe-scoped");  // dtor: release_handle
  l.lock();
  l.unlock();
}

void futex_cycle(hemlock::HemlockFutex& l) {
  l.lock();
  l.unlock();
}

void adaptive_cycle(hemlock::HemlockAdaptive& l) {
  l.lock();
  l.unlock();
}

}  // namespace probe
