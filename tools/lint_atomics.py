#!/usr/bin/env python3
"""Static lints for the concurrency-sensitive source tree.

Two checks, both wired as ctest legs (and runnable standalone):

``mo`` — every ``memory_order_*`` operation in ``src/`` must carry a
``// mo: <why>`` justification. PR 8's ``retire()`` fence fix was
exactly an unjustified ordering: the code compiled, the tests passed,
and the bug waited for the right interleaving. The lint makes the
author state *why* an ordering is sufficient at the point it is
chosen, so review happens against a claim instead of a guess.

A "use" is any line whose code (comments and string literals stripped)
mentions ``memory_order``. Consecutive use-lines form one *cluster*
(a multi-line ``compare_exchange_strong`` call is one decision, not
two), and a cluster is justified when a ``mo:`` comment appears

  * on any line of the cluster (trailing comment), or
  * in the contiguous block of comment-only lines directly above it
    (a multi-line ``// mo: ...`` explanation counts as a whole).

``yield-tags`` — the yield-point tag inventory in
``docs/VERIFYING.md`` must equal the set of tags actually present in
the source (``HEMLOCK_VERIFY_YIELD("...")`` / ``yield_point("...")``
string literals, comment-stripped). The inventory is the documented
coverage map of the interleaving verifier; a marker added without
documentation — or documented but deleted — makes that map lie.
The inventory lives between ``<!-- yield-tag-inventory:begin -->``
and ``<!-- yield-tag-inventory:end -->`` markers as backticked tags;
``--print-inventory`` emits a fresh block to paste on mismatch.

``--self-test`` runs both checks against planted positive *and*
negative fixtures (anti-vacuity, like check_verify_off.py): a lint
that cannot fail its planted negatives proves nothing.

Usage:
  lint_atomics.py [--root <repo root>] [--check mo|yield-tags|all]
  lint_atomics.py --print-inventory
  lint_atomics.py --self-test
"""

import argparse
import re
import sys
import tempfile
from pathlib import Path

SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}
MO_TOKEN = "memory_order"
MO_JUSTIFIED = re.compile(r"(?:^|\s)mo:\s?\S")
YIELD_CALL = re.compile(
    r"\b(?:HEMLOCK_VERIFY_YIELD|yield_point)\s*\(\s*\"([^\"]+)\""
)
INVENTORY_BEGIN = "<!-- yield-tag-inventory:begin -->"
INVENTORY_END = "<!-- yield-tag-inventory:end -->"
BACKTICKED = re.compile(r"`([^`]+)`")


def split_code_and_comments(text):
    """Per line, split source into (code, comments, code+strings).

    The *code* channel blanks string/char literal interiors so a
    ``memory_order`` inside a diagnostic string is not a "use"; the
    *comments* channel carries comment text only (so commented-out
    atomics are not uses either); the *code+strings* channel keeps
    literal contents but still strips comments (yield-tag collection
    reads tags out of string literals). Handles ``//``, ``/* ... */`` and
    escape sequences; raw strings are not used in this codebase (the
    self-test pins the constructs that are).
    """
    code_lines = [[]]
    comment_lines = [[]]
    literal_lines = [[]]
    state = "code"  # code | line_comment | block_comment | string | char
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            if state == "line_comment":
                state = "code"
            code_lines.append([])
            comment_lines.append([])
            literal_lines.append([])
            i += 1
            continue
        if state == "code":
            two = text[i : i + 2]
            if two == "//":
                state = "line_comment"
                i += 2
                continue
            if two == "/*":
                state = "block_comment"
                i += 2
                continue
            if ch == '"':
                state = "string"
                code_lines[-1].append('"')
                literal_lines[-1].append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                code_lines[-1].append("'")
                literal_lines[-1].append("'")
                i += 1
                continue
            code_lines[-1].append(ch)
            literal_lines[-1].append(ch)
        elif state == "line_comment":
            comment_lines[-1].append(ch)
        elif state == "block_comment":
            if text[i : i + 2] == "*/":
                state = "code"
                i += 2
                continue
            comment_lines[-1].append(ch)
        elif state in ("string", "char"):
            if ch == "\\":
                literal_lines[-1].append(text[i : i + 2])
                i += 2
                continue
            literal_lines[-1].append(ch)
            if (state == "string" and ch == '"') or (
                state == "char" and ch == "'"
            ):
                code_lines[-1].append(ch)
                state = "code"
        i += 1
    return (
        ["".join(parts) for parts in code_lines],
        ["".join(parts) for parts in comment_lines],
        ["".join(parts) for parts in literal_lines],
    )


# A code line ending mid-expression (trailing comma, open paren, binary
# operator) continues onto the next: the lines form one statement and
# therefore one justification cluster.
CONTINUES_BELOW = re.compile(r"[,(&|+\-*/=<]\s*$")


def find_mo_violations(text):
    """Return 1-based line numbers of unjustified memory_order clusters."""
    code, comments, _ = split_code_and_comments(text)
    n = len(code)
    uses = [MO_TOKEN in code[i] for i in range(n)]
    violations = []
    i = 0
    while i < n:
        if not uses[i]:
            i += 1
            continue
        start = i
        while i < n and uses[i]:
            i += 1
        end = i  # cluster is [start, end)
        # Pull the cluster's start up to the head of its statement, so
        # a multi-line call's earlier lines (and their comments) are in
        # scope for the justification.
        while start > 0 and CONTINUES_BELOW.search(code[start - 1].rstrip()):
            start -= 1
        justified = any(
            MO_JUSTIFIED.search(comments[j]) for j in range(start, end)
        )
        if not justified:
            # Walk the contiguous comment-only block directly above.
            j = start - 1
            while (
                j >= 0
                and not code[j].strip()
                and comments[j].strip()
            ):
                if MO_JUSTIFIED.search(comments[j]):
                    justified = True
                    break
                j -= 1
        if not justified:
            violations.append(start + 1)
    return violations


def iter_source_files(src_root):
    for path in sorted(src_root.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def check_mo(root):
    src = root / "src"
    if not src.is_dir():
        print(f"FAIL: no src/ under {root}")
        return 1
    bad = []
    for path in iter_source_files(src):
        text = path.read_text(errors="replace")
        if MO_TOKEN not in text:
            continue
        for line in find_mo_violations(text):
            bad.append(f"{path.relative_to(root)}:{line}")
    if bad:
        print(
            f"FAIL: {len(bad)} memory_order use(s) without a "
            "same-or-previous-line '// mo: <why>' justification:"
        )
        for entry in bad:
            print(f"  {entry}")
        return 1
    print("PASS: every memory_order use in src/ carries a // mo: comment")
    return 0


def collect_source_tags(root):
    tags = set()
    for path in iter_source_files(root / "src"):
        channels = split_code_and_comments(path.read_text(errors="replace"))
        for line in channels[2]:  # code with string literals intact
            tags.update(YIELD_CALL.findall(line))
    return tags


def parse_inventory(doc_text):
    try:
        begin = doc_text.index(INVENTORY_BEGIN) + len(INVENTORY_BEGIN)
        end = doc_text.index(INVENTORY_END, begin)
    except ValueError:
        return None
    return set(BACKTICKED.findall(doc_text[begin:end]))


def format_inventory(tags):
    lines = [INVENTORY_BEGIN]
    for tag in sorted(tags):
        lines.append(f"`{tag}`")
    lines.append(INVENTORY_END)
    return "\n".join(lines)


def check_yield_tags(root, doc_path=None):
    doc = doc_path or (root / "docs" / "VERIFYING.md")
    if not doc.is_file():
        print(f"FAIL: {doc} not found")
        return 1
    documented = parse_inventory(doc.read_text(errors="replace"))
    if documented is None:
        print(
            f"FAIL: {doc.name} has no {INVENTORY_BEGIN} ... "
            f"{INVENTORY_END} block"
        )
        return 1
    actual = collect_source_tags(root)
    missing = sorted(actual - documented)
    stale = sorted(documented - actual)
    if missing or stale:
        if missing:
            print(
                "FAIL: yield tags in source but not in the "
                f"{doc.name} inventory: {missing}"
            )
        if stale:
            print(
                "FAIL: yield tags documented but absent from source "
                f"(stale inventory): {stale}"
            )
        print("Regenerate the block with: lint_atomics.py --print-inventory")
        return 1
    print(
        f"PASS: yield-tag inventory in sync ({len(actual)} tags)"
    )
    return 0


# ---------------------------------------------------------------------------
# Self-test fixtures. Each is (name, source, expected violation lines);
# the negatives MUST fail — a lint that passes everything checks nothing.

MO_FIXTURES = [
    (
        "justified-same-line",
        "v.store(1, std::memory_order_release);  // mo: publishes init\n",
        [],
    ),
    (
        "justified-previous-line",
        "// mo: acquire pairs with the release store in unlock()\n"
        "auto x = v.load(std::memory_order_acquire);\n",
        [],
    ),
    (
        "justified-multiline-comment-above",
        "// mo: doorstep SWAP is acq_rel — release publishes the node,\n"
        "// acquire observes the predecessor's publication.\n"
        "auto* p = tail.exchange(n, std::memory_order_acq_rel);\n",
        [],
    ),
    (
        "justified-multiline-statement",
        "// mo: acq_rel on success, relaxed on failure (no acquisition)\n"
        "ok = v.compare_exchange_strong(e, d,\n"
        "                               std::memory_order_acq_rel,\n"
        "                               std::memory_order_relaxed);\n",
        [],
    ),
    (
        "justified-inside-cluster",
        "ok = v.compare_exchange_strong(e, d,\n"
        "                               // mo: acq_rel pairs with unlock\n"
        "                               std::memory_order_acq_rel,\n"
        "                               std::memory_order_relaxed);\n",
        [],
    ),
    (
        "unjustified",  # planted negative: must be flagged
        "v.store(1, std::memory_order_release);\n",
        [1],
    ),
    (
        "unjustified-after-justified",  # second cluster unjustified
        "v.store(1, std::memory_order_relaxed);  // mo: init, pre-publish\n"
        "x = 42;\n"
        "v.store(2, std::memory_order_release);\n",
        [3],
    ),
    (
        "ordinary-comment-is-not-justification",
        "// release so the next acquirer sees our writes\n"
        "v.store(1, std::memory_order_release);\n",
        [2],
    ),
    (
        "comment-only-mention-is-not-a-use",
        "// a relaxed memory_order_relaxed load would race here\n"
        "x = 42;\n",
        [],
    ),
    (
        "string-literal-is-not-a-use",
        'const char* what = "unexpected memory_order_seq_cst";\n',
        [],
    ),
    (
        "blank-line-breaks-the-comment-walk",
        "// mo: this justifies nothing — it is detached\n"
        "\n"
        "v.store(1, std::memory_order_release);\n",
        [3],
    ),
    (
        "block-comment-above",
        "/* mo: seq_cst Dekker handshake with the writer's gate close */\n"
        "c.fetch_add(1, std::memory_order_seq_cst);\n",
        [],
    ),
]

YIELD_DOC_OK = f"""# Verifying
{INVENTORY_BEGIN}
`mcs:queued`
`rwlock:announced`
{INVENTORY_END}
"""

YIELD_DOC_STALE = f"""# Verifying
{INVENTORY_BEGIN}
`mcs:queued`
`rwlock:announced`
`ghost:tag`
{INVENTORY_END}
"""

YIELD_DOC_MISSING = f"""# Verifying
{INVENTORY_BEGIN}
`mcs:queued`
{INVENTORY_END}
"""

YIELD_SRC = """
void f() {
  HEMLOCK_VERIFY_YIELD("mcs:queued");
  verify::yield_point("rwlock:announced");
  // HEMLOCK_VERIFY_YIELD("commented:out") must not be collected
}
#define HEMLOCK_VERIFY_YIELD(tag) ((void)0)  // no literal: not collected
"""


def self_test():
    failures = []
    for name, source, expected in MO_FIXTURES:
        got = find_mo_violations(source)
        if got != expected:
            failures.append(
                f"mo fixture '{name}': expected violations at {expected}, "
                f"got {got}"
            )
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        (root / "src").mkdir()
        (root / "docs").mkdir()
        (root / "src" / "probe.hpp").write_text(YIELD_SRC)
        cases = [
            ("in-sync", YIELD_DOC_OK, 0),
            ("stale-tag", YIELD_DOC_STALE, 1),
            ("missing-tag", YIELD_DOC_MISSING, 1),
            ("no-inventory-block", "# Verifying\nno markers here\n", 1),
        ]
        for name, doc, expected_rc in cases:
            (root / "docs" / "VERIFYING.md").write_text(doc)
            rc = check_yield_tags(root)
            if rc != expected_rc:
                failures.append(
                    f"yield fixture '{name}': expected exit {expected_rc}, "
                    f"got {rc}"
                )
    if failures:
        print(f"FAIL: {len(failures)} self-test failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"PASS: self-test — {len(MO_FIXTURES)} mo fixtures and "
        "4 yield-tag fixtures behave as planted"
    )
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="memory-order justification and yield-tag sync lints"
    )
    ap.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: this script's grandparent)",
    )
    ap.add_argument(
        "--check",
        choices=["mo", "yield-tags", "all"],
        default="all",
    )
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument(
        "--print-inventory",
        action="store_true",
        help="emit a fresh yield-tag inventory block for VERIFYING.md",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.print_inventory:
        print(format_inventory(collect_source_tags(args.root)))
        return 0

    rc = 0
    if args.check in ("mo", "all"):
        rc |= check_mo(args.root)
    if args.check in ("yield-tags", "all"):
        rc |= check_yield_tags(args.root)
    return rc


if __name__ == "__main__":
    sys.exit(main())
