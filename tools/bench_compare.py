#!/usr/bin/env python3
"""bench_compare — the bench-trajectory regression gate.

CI's perf-smoke job has recorded a ``BENCH_*.json`` (schema
``hemlock-bench-v1``) trajectory artifact on every commit since PR 2,
but nothing *compared* them: a PR could halve a lock's hand-off
throughput and merge green. This tool closes that loop. It diffs a
candidate set of trajectory files (the PR's perf-smoke output) against
a baseline *window* — ``--baseline`` may be repeated, one directory
per recent main-branch artifact — and fails on any throughput drop
beyond the threshold for a (bench, lock, threads) key.

Design notes, sized to the tiny CI budgets that produce these files:

* Keys are compared point-by-point — a regression confined to one
  lock at one thread count (the classic oversubscription convoy) must
  not be averaged away by twenty healthy curves.
* Each key's baseline is the **median across the window**, not the
  latest value alone. A single latest-artifact gate lets slow
  multi-PR drift through (five successive 20% drops each pass a 30%
  per-step check while compounding to 2.4x); against the window
  median, the accumulated drop eventually exceeds the threshold and
  the gate trips. The median also shrugs off one anomalously slow or
  fast runner in the window.
* The default threshold is deliberately loose (30%) because the
  perf-smoke budgets are deliberately tiny (50 ms runs): this gate
  exists to catch collapses — a convoying queue lock is 10-100x off,
  not 1.3x — while staying quiet across runner-to-runner jitter.
* A noise floor skips keys whose baseline value is too small to
  divide meaningfully: near-zero throughput at a tiny budget is
  mostly timer noise, and a ratio of two noises gates nothing.
* Values are "higher is better" (every emitting bench reports
  throughput; the schema's ``unit`` is asserted to look like one).
* Baseline/candidate asymmetries (new bench, removed lock, different
  thread sweep) are reported but never fail the gate: trajectories
  evolve with the roster, and only like-for-like keys are evidence.

Exit status: 0 when no enforced regression (or ``--advisory``),
1 on regression, 2 on usage/schema errors.

Run ``bench_compare.py --self-test`` for the synthetic-fixture suite
CI registers as a ctest.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import statistics
import sys
import tempfile

SCHEMA = "hemlock-bench-v1"


def load_trajectories(directory):
    """Map bench id -> parsed doc for every BENCH_*.json in directory."""
    docs = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            raise ValueError(f"{path}: schema {doc.get('schema')!r}, "
                             f"want {SCHEMA!r}")
        unit = doc.get("unit", "")
        if "per_sec" not in unit:
            raise ValueError(f"{path}: unit {unit!r} is not a throughput "
                             "(higher-is-better) unit; teach bench_compare "
                             "its direction before gating on it")
        docs[doc["bench"]] = doc
    return docs


def point_map(doc):
    """Flatten a trajectory doc to {(lock, threads): value}, skipping
    null values (a bench that could not run a configuration)."""
    points = {}
    for series in doc.get("series", []):
        lock = series["lock"]
        for point in series.get("points", []):
            value = point.get("value")
            if value is not None:
                points[(lock, point["threads"])] = float(value)
    return points


def compare(baseline_window, candidate_docs, threshold, noise_floor):
    """Return (regressions, notes, compared_keys).

    baseline_window: list of {bench: doc} maps, one per baseline
    artifact. A key's baseline value is the median of its values
    across the window (the windowed trend check: slow multi-PR drift
    that stays under the threshold per step still exceeds it against
    the window median).

    regressions: list of (bench, lock, threads, base, cand, drop_frac)
    notes: human-readable asymmetry/skip notes (never failures)
    """
    regressions = []
    notes = []
    compared = 0
    baseline_benches = set()
    for docs in baseline_window:
        baseline_benches |= set(docs)
    for bench in sorted(baseline_benches | set(candidate_docs)):
        if bench not in baseline_benches:
            notes.append(f"{bench}: new bench (no baseline) — advisory only")
            continue
        if bench not in candidate_docs:
            notes.append(f"{bench}: present in baseline but not in candidate")
            continue
        window_points = [point_map(docs[bench]) for docs in baseline_window
                         if bench in docs]
        baseline_keys = set()
        for points in window_points:
            baseline_keys |= set(points)
        cand_points = point_map(candidate_docs[bench])
        for key in sorted(baseline_keys | set(cand_points)):
            lock, threads = key
            if key not in baseline_keys or key not in cand_points:
                where = "baseline" if key not in cand_points else "candidate"
                notes.append(f"{bench}/{lock}@{threads}t: only in {where}")
                continue
            base = statistics.median([points[key] for points in window_points
                                      if key in points])
            cand = cand_points[key]
            if base < noise_floor:
                notes.append(f"{bench}/{lock}@{threads}t: baseline {base:g} "
                             f"below noise floor {noise_floor:g}, skipped")
                continue
            compared += 1
            drop = (base - cand) / base
            if drop > threshold:
                regressions.append((bench, lock, threads, base, cand, drop))
    return regressions, notes, compared


def run_compare(args):
    baselines = args.baseline if isinstance(args.baseline, list) \
        else [args.baseline]
    try:
        baseline_window = [load_trajectories(d) for d in baselines]
        candidate_docs = load_trajectories(args.candidate)
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2
    baseline_window = [docs for docs in baseline_window if docs]
    if not baseline_window:
        # First run ever (or artifact fetch failed upstream): nothing to
        # gate against. Advisory by definition.
        print(f"bench_compare: no baseline trajectories in {baselines!r} "
              "— advisory pass (gate becomes enforcing once a main-branch "
              "artifact exists)")
        return 0
    if not candidate_docs:
        print(f"bench_compare: no candidate trajectories in "
              f"{args.candidate!r}", file=sys.stderr)
        return 2

    try:
        regressions, notes, compared = compare(
            baseline_window, candidate_docs, args.threshold,
            args.noise_floor)
    except (KeyError, TypeError, ValueError) as err:
        # A doc that passed the schema tag but is structurally broken
        # (series missing "lock"/"threads", non-numeric value, ...)
        # is a schema error (exit 2), not a perf regression (exit 1) —
        # the CI gate must not send authors bisecting lock hand-off
        # paths over a malformed artifact.
        print(f"bench_compare: malformed trajectory document: {err!r}",
              file=sys.stderr)
        return 2

    for note in notes:
        print(f"  note: {note}")
    print(f"bench_compare: {compared} (bench, lock, threads) keys compared "
          f"against a {len(baseline_window)}-artifact baseline window "
          f"(per-key median), threshold {args.threshold:.0%} drop, noise "
          f"floor {args.noise_floor:g}")
    if not regressions:
        print("bench_compare: no regression beyond threshold")
        return 0
    regressions.sort(key=lambda r: -r[5])
    print(f"bench_compare: {len(regressions)} REGRESSION(S):")
    for bench, lock, threads, base, cand, drop in regressions:
        print(f"  {bench}/{lock}@{threads}t: {base:g} -> {cand:g} "
              f"({drop:+.0%} drop)")
    if args.advisory:
        print("bench_compare: advisory mode — reporting only, not failing")
        return 0
    print("bench_compare: FAIL — median throughput dropped beyond the "
          "threshold.\nIf the drop is intended (e.g. a correctness fix "
          "with a known cost), say so in the PR and re-run with a fresh "
          "main baseline after merge; if not, bisect the touched lock's "
          "hand-off path (see README 'Perf regression gate').",
          file=sys.stderr)
    return 1


# ---------------------------------------------------------------------
# Self-test: synthetic fixtures exercising every verdict the CI gate
# relies on. Registered as ctest `test_bench_compare`.
# ---------------------------------------------------------------------

def _write_doc(directory, bench, values, unit="msteps_per_sec",
               telemetry=None):
    """values: {lock: {threads: value-or-None}}; telemetry: optional
    hemlock-telemetry-v1 block (bench_minikv_traffic embeds one)."""
    doc = {
        "schema": SCHEMA,
        "bench": bench,
        "unit": unit,
        "host": {"logical_cpus": 4, "model": "self-test"},
        "duration_ms": 50,
        "runs": 1,
        "series": [
            {"lock": lock,
             "points": [{"threads": t, "value": v}
                        for t, v in sorted(points.items())]}
            for lock, points in sorted(values.items())
        ],
    }
    if telemetry is not None:
        doc["telemetry"] = telemetry
    path = os.path.join(directory, f"BENCH_{bench}.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path


def _gate(baseline, candidate, **kwargs):
    args = argparse.Namespace(
        baseline=baseline, candidate=candidate,
        threshold=kwargs.get("threshold", 0.30),
        noise_floor=kwargs.get("noise_floor", 1.0),
        advisory=kwargs.get("advisory", False))
    return run_compare(args)


def self_test():
    failures = []

    def check(name, got, want):
        status = "ok" if got == want else f"FAIL (exit {got}, want {want})"
        print(f"self-test: {name}: {status}")
        if got != want:
            failures.append(name)

    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "base")
        os.makedirs(base)
        healthy = {"hemlock": {1: 30.0, 4: 12.0}, "mcs": {1: 28.0, 4: 3.0}}
        _write_doc(base, "fig2_max_contention", healthy)

        # Identical candidate: pass.
        same = os.path.join(tmp, "same")
        os.makedirs(same)
        _write_doc(same, "fig2_max_contention", healthy)
        check("identical trajectories pass", _gate(base, same), 0)

        # Jitter within the threshold (20% drop on one key): pass.
        jitter = os.path.join(tmp, "jitter")
        os.makedirs(jitter)
        _write_doc(jitter, "fig2_max_contention",
                   {"hemlock": {1: 24.0, 4: 12.5}, "mcs": {1: 28.9, 4: 3.1}})
        check("20% jitter passes at 30% threshold", _gate(base, jitter), 0)

        # The acceptance case: one key synthetically degraded far past
        # the threshold (the convoy shape) must fail the gate.
        degraded = os.path.join(tmp, "degraded")
        os.makedirs(degraded)
        _write_doc(degraded, "fig2_max_contention",
                   {"hemlock": {1: 30.0, 4: 1.2}, "mcs": {1: 28.0, 4: 3.0}})
        check("90% drop on one key fails", _gate(base, degraded), 1)
        check("...but passes in advisory mode",
              _gate(base, degraded, advisory=True), 0)

        # Noise floor: a 'collapse' from 0.4 to 0.1 is two timer noises
        # at a 50 ms budget, not evidence.
        noisy_base = os.path.join(tmp, "noisy_base")
        os.makedirs(noisy_base)
        _write_doc(noisy_base, "oversub", {"mcs-park": {16: 0.4}})
        noisy_cand = os.path.join(tmp, "noisy_cand")
        os.makedirs(noisy_cand)
        _write_doc(noisy_cand, "oversub", {"mcs-park": {16: 0.1}})
        check("sub-noise-floor drop is skipped",
              _gate(noisy_base, noisy_cand), 0)

        # Asymmetries are notes, not failures.
        asym = os.path.join(tmp, "asym")
        os.makedirs(asym)
        _write_doc(asym, "fig2_max_contention",
                   {"hemlock": {1: 30.0, 4: 12.0, 8: 9.0},
                    "clh": {1: 20.0}})  # mcs gone, clh new, 8t new
        check("roster/sweep asymmetry passes", _gate(base, asym), 0)

        # Null values (a configuration that could not run) are skipped.
        nulls = os.path.join(tmp, "nulls")
        os.makedirs(nulls)
        _write_doc(nulls, "fig2_max_contention",
                   {"hemlock": {1: 30.0, 4: None}, "mcs": {1: 28.0, 4: 3.0}})
        check("null candidate points are skipped", _gate(base, nulls), 0)

        # ---- minikv serving keys (series names contain '@') ----------
        # bench_minikv_traffic emits backend@scenario series ("lock"
        # is a composite label, not a factory name). The comparator
        # must treat these as opaque keys: gate per (bench, key,
        # threads) exactly like plain lock names.
        kv_base = os.path.join(tmp, "kv_base")
        os.makedirs(kv_base)
        kv_healthy = {
            "central@read-heavy": {1: 4.0, 8: 1.2},
            "sharded@read-heavy": {1: 4.5, 8: 14.0},
            "sharded-locked@write-burst": {8: 6.0},
        }
        _write_doc(kv_base, "minikv_traffic", kv_healthy,
                   unit="mops_per_sec")
        kv_same = os.path.join(tmp, "kv_same")
        os.makedirs(kv_same)
        _write_doc(kv_same, "minikv_traffic", kv_healthy,
                   unit="mops_per_sec")
        check("minikv backend@scenario keys pass unchanged",
              _gate(kv_base, kv_same), 0)
        kv_collapse = os.path.join(tmp, "kv_collapse")
        os.makedirs(kv_collapse)
        _write_doc(kv_collapse, "minikv_traffic",
                   {"central@read-heavy": {1: 4.0, 8: 1.2},
                    "sharded@read-heavy": {1: 4.5, 8: 1.3},  # epoch path lost
                    "sharded-locked@write-burst": {8: 6.0}},
                   unit="mops_per_sec")
        check("sharded read-path collapse fails on its '@' key",
              _gate(kv_base, kv_collapse), 1)

        # ---- telemetry block is ignored ------------------------------
        # bench_minikv_traffic embeds a hemlock-telemetry-v1 snapshot
        # as a top-level "telemetry" member. The comparator reads only
        # "series": a candidate carrying the block (against a baseline
        # without one) must gate identically — the block is metadata,
        # never a comparison key.
        kv_telem = os.path.join(tmp, "kv_telem")
        os.makedirs(kv_telem)
        _write_doc(kv_telem, "minikv_traffic", kv_healthy,
                   unit="mops_per_sec",
                   telemetry={"schema": "hemlock-telemetry-v1",
                              "pid": 1,
                              "locks": [{"name": "minikv:central",
                                         "acquires": 12345}],
                              "governor": {"cpus": 4},
                              "epoch": {"epoch": 2}})
        check("telemetry block in candidate is ignored",
              _gate(kv_base, kv_telem), 0)
        check("telemetry block in baseline is ignored",
              _gate(kv_telem, kv_same), 0)

        # ---- windowed trend check (multi-baseline) -------------------
        # Slow drift: main artifacts decayed 30 -> 24 -> 20 (each step
        # under the 30% threshold, so a latest-only gate never fires);
        # the candidate continues the slide to 14. Against the window
        # median (24) that is a 42% drop — caught. Against the latest
        # artifact alone (20) it is exactly 30% — passed. The pair of
        # verdicts is the whole point of the window.
        drift1 = os.path.join(tmp, "drift1")  # oldest
        drift2 = os.path.join(tmp, "drift2")
        drift3 = os.path.join(tmp, "drift3")  # latest
        for d, v in ((drift1, 30.0), (drift2, 24.0), (drift3, 20.0)):
            os.makedirs(d)
            _write_doc(d, "fig2_max_contention", {"hemlock": {4: v}})
        drift_cand = os.path.join(tmp, "drift_cand")
        os.makedirs(drift_cand)
        _write_doc(drift_cand, "fig2_max_contention", {"hemlock": {4: 14.0}})
        check("slow drift passes a latest-only gate",
              _gate(drift3, drift_cand), 0)
        check("slow drift fails against the window median",
              _gate([drift1, drift2, drift3], drift_cand), 1)

        # One anomalously slow baseline run in the window must not
        # inflate a healthy candidate into a pass of a real regression
        # — nor fail a healthy candidate: the median ignores it.
        outlier = os.path.join(tmp, "outlier")
        os.makedirs(outlier)
        _write_doc(outlier, "fig2_max_contention", {"hemlock": {4: 2.0}})
        healthy_cand = os.path.join(tmp, "healthy_cand")
        os.makedirs(healthy_cand)
        _write_doc(healthy_cand, "fig2_max_contention", {"hemlock": {4: 29.0}})
        check("window median shrugs off one slow baseline run",
              _gate([drift1, outlier, drift2], healthy_cand), 0)

        # A key present in only part of the window still gates (median
        # over the artifacts that have it).
        partial = os.path.join(tmp, "partial")
        os.makedirs(partial)
        _write_doc(partial, "fig2_max_contention",
                   {"hemlock": {4: 30.0}, "clh": {4: 10.0}})
        clh_drop = os.path.join(tmp, "clh_drop")
        os.makedirs(clh_drop)
        _write_doc(clh_drop, "fig2_max_contention",
                   {"hemlock": {4: 30.0}, "clh": {4: 1.0}})
        check("key in part of the window still gates",
              _gate([drift1, partial], clh_drop), 1)

        # Empty baseline directory: advisory pass (first-run bootstrap).
        empty = os.path.join(tmp, "empty")
        os.makedirs(empty)
        check("missing baseline is an advisory pass", _gate(empty, same), 0)
        check("window of empty baselines is an advisory pass",
              _gate([empty, empty], same), 0)

        # Malformed schema: usage error, not a silent pass.
        bad = os.path.join(tmp, "bad")
        os.makedirs(bad)
        with open(os.path.join(bad, "BENCH_x.json"), "w",
                  encoding="utf-8") as f:
            json.dump({"schema": "nope", "bench": "x",
                       "unit": "msteps_per_sec"}, f)
        check("wrong schema is an error", _gate(base, bad), 2)

        # Right schema tag but structurally broken (series point
        # missing "threads"): schema error (2), never a fake
        # regression verdict (1).
        broken = os.path.join(tmp, "broken")
        os.makedirs(broken)
        with open(os.path.join(broken, "BENCH_fig2_max_contention.json"),
                  "w", encoding="utf-8") as f:
            json.dump({"schema": SCHEMA, "bench": "fig2_max_contention",
                       "unit": "msteps_per_sec",
                       "series": [{"lock": "hemlock",
                                   "points": [{"value": 3.0}]}]}, f)
        check("structurally broken doc is an error", _gate(base, broken), 2)

        # A latency-unit file must be rejected until taught, not
        # silently gated in the wrong direction.
        lat = os.path.join(tmp, "lat")
        os.makedirs(lat)
        _write_doc(lat, "latency", {"hemlock": {1: 100.0}}, unit="ns_per_op")
        check("non-throughput unit is an error", _gate(lat, lat), 2)

    if failures:
        print(f"self-test: {len(failures)} FAILED: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("self-test: all verdicts OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff hemlock-bench-v1 BENCH_*.json trajectory sets; "
                    "fail on per-key median-throughput regressions.")
    parser.add_argument("--baseline", action="append",
                        help="directory holding baseline BENCH_*.json "
                             "(a main-branch perf-smoke artifact). May be "
                             "repeated: each key is gated against the "
                             "MEDIAN across the window, so slow multi-PR "
                             "drift is caught, not just single-step drops")
    parser.add_argument("--candidate",
                        help="directory holding the PR's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional drop that fails a key "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--noise-floor", type=float, default=1.0,
                        help="skip keys whose baseline value is below this "
                             "(tiny-budget noise; default 1.0 bench units)")
    parser.add_argument("--advisory", action="store_true",
                        help="report regressions but always exit 0")
    parser.add_argument("--self-test", action="store_true",
                        help="run the synthetic-fixture suite and exit")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("--baseline and --candidate are required "
                     "(or use --self-test)")
    return run_compare(args)


if __name__ == "__main__":
    sys.exit(main())
