// verify_codegen_probe.cpp — TU compiled to assembly (never linked)
// by tools/check_verify_off.py to prove the HEMLOCK_VERIFY_YIELD
// markers are zero-cost when disabled.
//
// It instantiates the hottest instrumented paths of every family.
// Without -DHEMLOCK_VERIFY, the generated assembly must contain no
// verifier residue (no yield tag strings, no tl_hook access); with
// it, the residue must appear — which proves the probe actually
// exercises instrumented code and the OFF check is not vacuous.
#include "core/hemlock.hpp"
#include "locks/anderson.hpp"
#include "locks/clh.hpp"
#include "locks/mcs.hpp"
#include "locks/rwlock.hpp"
#include "locks/ticket.hpp"

namespace probe {

void hemlock_cycle(hemlock::Hemlock& l) {
  l.lock();
  l.unlock();
}

void hemlock_naive_cycle(hemlock::HemlockNaive& l) {
  l.lock();
  l.unlock();
}

void hemlock_adaptive_cycle(hemlock::HemlockAdaptive& l) {
  l.lock();
  l.unlock();
}

void mcs_cycle(hemlock::McsLock& l) {
  l.lock();
  l.unlock();
}

void mcs_park_cycle(hemlock::McsParkLock& l) {
  l.lock();
  l.unlock();
}

void clh_cycle(hemlock::ClhLock& l) {
  l.lock();
  l.unlock();
}

void ticket_cycle(hemlock::TicketLock& l) {
  l.lock();
  l.unlock();
}

void ticket_park_cycle(hemlock::TicketParkLock& l) {
  l.lock();
  l.unlock();
}

void anderson_cycle(hemlock::AndersonLockT<4>& l) {
  l.lock();
  l.unlock();
}

void rwlock_cycle(hemlock::RwLock& l) {
  l.lock();
  l.unlock();
  l.lock_shared();
  l.unlock_shared();
}

}  // namespace probe
