#!/usr/bin/env python3
"""Codegen tripwire for the telemetry hooks' zero-cost-when-off claim.

Compiles tools/telemetry_codegen_probe.cpp to assembly twice with the
project compiler:

  1. WITH -DHEMLOCK_TELEMETRY_DISABLED (the -DHEMLOCK_TELEMETRY=OFF
     build): the assembly must contain NO telemetry residue — no
     slab/attribution thread-locals, no out-of-line hook calls. This
     is the acceptance criterion that the OFF build's hooked headers
     compile to the same code as an unhooked tree (every hook is an
     empty inline, every HEMLOCK_TM_* macro is ``((void)0)``).

  2. WITHOUT the define (telemetry on, the default): the same residue
     MUST appear. This guards the first check against vacuity — if a
     refactor stopped the probe from instantiating hooked code, check
     1 would pass forever while proving nothing.

The residue markers are mangled-name fragments rather than the word
"telemetry": the assembly's .file/.loc debug directives name
telemetry.hpp in both configurations, so a plain substring would
false-positive.

Usage:
  check_telemetry_off.py --compiler <c++> --source-dir <repo root>
"""

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

# Mangled fragments of the telemetry namespace's symbols: the
# thread-local slab cache and attribution (referenced by the inline
# hooks), the cold slab resolver, the out-of-line waiting-layer hooks,
# the trace appender, and the handle lifecycle.
RESIDUE = [
    "9telemetry6t_slabE",
    "9telemetry6t_attrE",
    "9slab_slowEv",
    "12wl_contendedEv",
    "10trace_emitE",
    "15register_handleE",
    "14release_handleE",
    "10g_trace_onE",
]


def compile_to_asm(compiler: str, source_dir: Path, out: Path,
                   telemetry_off: bool) -> str:
    probe = source_dir / "tools" / "telemetry_codegen_probe.cpp"
    cmd = [
        compiler,
        "-std=c++20",
        "-O2",
        "-S",
        "-I",
        str(source_dir / "src"),
        str(probe),
        "-o",
        str(out),
    ]
    if telemetry_off:
        cmd.insert(1, "-DHEMLOCK_TELEMETRY_DISABLED")
    res = subprocess.run(cmd, capture_output=True, text=True)
    if res.returncode != 0:
        sys.exit(
            f"FAIL: probe compile ({'OFF' if telemetry_off else 'ON'}) "
            f"failed:\n{' '.join(cmd)}\n{res.stderr}"
        )
    return out.read_text(errors="replace")


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--compiler", required=True)
    ap.add_argument("--source-dir", required=True, type=Path)
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as td:
        asm_off = compile_to_asm(
            args.compiler, args.source_dir, Path(td) / "off.s", True
        )
        asm_on = compile_to_asm(
            args.compiler, args.source_dir, Path(td) / "on.s", False
        )

    leaked = [m for m in RESIDUE if m in asm_off]
    if leaked:
        print(
            "FAIL: telemetry residue in the -DHEMLOCK_TELEMETRY=OFF "
            f"build's codegen (the hooks are not zero-cost): {leaked}"
        )
        return 1

    present = [m for m in RESIDUE if m in asm_on]
    if len(present) < len(RESIDUE) // 2:
        print(
            "FAIL: telemetry-on assembly shows almost no instrumentation "
            f"(only {present}) — the probe no longer exercises the hooked "
            "paths, so the OFF check above is vacuous"
        )
        return 1

    print(
        f"PASS: OFF assembly clean; ON assembly carries "
        f"{len(present)}/{len(RESIDUE)} residue markers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
