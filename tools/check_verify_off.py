#!/usr/bin/env python3
"""Codegen tripwire for the interleaving verifier's zero-cost claim.

Compiles tools/verify_codegen_probe.cpp to assembly twice with the
project compiler:

  1. WITHOUT -DHEMLOCK_VERIFY: the assembly must contain NO verifier
     residue — no yield tag strings (``hemlock:queued`` etc.) and no
     reference to the ``tl_hook`` thread-local. This is the acceptance
     criterion that a normal build's instrumented headers compile to
     the same code as an uninstrumented tree (HEMLOCK_VERIFY_YIELD
     expands to ``((void)0)``).

  2. WITH -DHEMLOCK_VERIFY: the same residue MUST appear. This guards
     the first check against vacuity — if a refactor stopped the probe
     from instantiating instrumented code, check 1 would pass forever
     while proving nothing.

Usage:
  check_verify_off.py --compiler <c++> --source-dir <repo root>
"""

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

# Residue markers: a few per-family yield tags (string literals land in
# .rodata of the -S output) plus the verifier's thread-local.
RESIDUE = [
    "hemlock:queued",
    "hemlock:handover",
    "grant:ctr-poll",
    "mcs:queued",
    "clh:queued",
    "ticket:drawn",
    "anderson:slot",
    "rwlock:announced",
    "rwlock:gate-closed",
    "queue:published",
    "tl_hook",
]


def compile_to_asm(compiler: str, source_dir: Path, out: Path,
                   verify_on: bool) -> str:
    probe = source_dir / "tools" / "verify_codegen_probe.cpp"
    cmd = [
        compiler,
        "-std=c++20",
        "-O2",
        "-S",
        "-I",
        str(source_dir / "src"),
        str(probe),
        "-o",
        str(out),
    ]
    if verify_on:
        cmd.insert(1, "-DHEMLOCK_VERIFY")
    res = subprocess.run(cmd, capture_output=True, text=True)
    if res.returncode != 0:
        sys.exit(
            f"FAIL: probe compile ({'ON' if verify_on else 'OFF'}) failed:\n"
            f"{' '.join(cmd)}\n{res.stderr}"
        )
    return out.read_text(errors="replace")


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--compiler", required=True)
    ap.add_argument("--source-dir", required=True, type=Path)
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as td:
        asm_off = compile_to_asm(
            args.compiler, args.source_dir, Path(td) / "off.s", False
        )
        asm_on = compile_to_asm(
            args.compiler, args.source_dir, Path(td) / "on.s", True
        )

    leaked = [m for m in RESIDUE if m in asm_off]
    if leaked:
        print(
            "FAIL: verifier residue in the non-verify build's codegen "
            f"(HEMLOCK_VERIFY_YIELD is not zero-cost): {leaked}"
        )
        return 1

    present = [m for m in RESIDUE if m in asm_on]
    if len(present) < len(RESIDUE) // 2:
        print(
            "FAIL: verify-build assembly shows almost no instrumentation "
            f"(only {present}) — the probe no longer exercises the "
            "instrumented paths, so the OFF check above is vacuous"
        )
        return 1

    print(
        f"PASS: OFF assembly clean; ON assembly carries "
        f"{len(present)}/{len(RESIDUE)} residue markers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
