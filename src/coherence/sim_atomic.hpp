// sim_atomic.hpp — atomics instrumented against the coherence model.
//
// A SimAtomic behaves exactly like a std::atomic<T> (the value
// updates really happen, so the simulated lock algorithms actually
// synchronize), but every access additionally drives the CacheModel's
// transition machinery, charging the issuing *simulated core* with
// the offcore events the access would cost on hardware. The calling
// thread's core identity comes from a thread_local set by the driver
// (sim_bench.hpp).
#pragma once

#include <atomic>
#include <cstdint>

#include "coherence/cache_model.hpp"

namespace hemlock::coherence {

/// The calling thread's simulated core id (set by SimCoreBinding).
std::uint32_t current_core();

/// RAII binding of this OS thread to a simulated core id.
class SimCoreBinding {
 public:
  explicit SimCoreBinding(std::uint32_t core);
  ~SimCoreBinding();
  SimCoreBinding(const SimCoreBinding&) = delete;
  SimCoreBinding& operator=(const SimCoreBinding&) = delete;
};

/// Tag: place a SimAtomic on an existing line instead of a fresh one
/// (models intra-line adjacency, e.g. the head field "adjacent to the
/// tail" in the paper's 2-word MCS/CLH lock bodies, §5.1).
struct ShareLine {
  std::uint32_t line;
};

/// Atomic word living on its own simulated cache line (or, with
/// ShareLine, co-resident with another word).
template <typename T>
class SimAtomic {
 public:
  /// Register a line in `model` and initialize the value.
  explicit SimAtomic(CacheModel* model, T init = T{})
      : model_(model), line_(model->add_line()), value_(init) {}

  /// Place on an existing line (false/true-sharing studies and the
  /// MCS/CLH head-next-to-tail layout).
  SimAtomic(CacheModel* model, ShareLine share, T init = T{})
      : model_(model), line_(share.line), value_(init) {}

  SimAtomic(const SimAtomic&) = delete;
  SimAtomic& operator=(const SimAtomic&) = delete;

  /// Plain load (charged as a read).
  T load() const {
    model_->on_load(current_core(), line_);
    // mo: acquire — mirrors the strongest ordering the modelled
    // algorithms ask of a plain load; the sim measures traffic, not
    // orderings, so one conservative choice per op keeps it faithful.
    return value_.load(std::memory_order_acquire);
  }

  /// Plain store (charged as a write).
  void store(T v) {
    model_->on_store(current_core(), line_);
    value_.store(v, std::memory_order_release);  // mo: see load()
  }

  /// Atomic exchange (charged as an RMW).
  T exchange(T v) {
    model_->on_rmw(current_core(), line_);
    return value_.exchange(v, std::memory_order_acq_rel);  // mo: see load()
  }

  /// Atomic compare-and-swap; returns the *previous* value like the
  /// paper's CAS. Failed CAS is still an RMW (owns the line — the CTR
  /// premise).
  T compare_and_swap(T expected, T desired) {
    model_->on_rmw(current_core(), line_);
    T e = expected;
    // mo: acq_rel/acquire — conservative, as load().
    value_.compare_exchange_strong(e, desired, std::memory_order_acq_rel,
                                   std::memory_order_acquire);
    return e;
  }

  /// Atomic fetch-and-add (FAA(0) is the paper's
  /// read-with-intent-to-write).
  T fetch_add(T delta) {
    model_->on_rmw(current_core(), line_);
    return value_.fetch_add(delta, std::memory_order_acq_rel);  // mo: see load()
  }

  /// The model line backing this variable (tests).
  std::uint32_t line() const { return line_; }

 private:
  CacheModel* model_;
  std::uint32_t line_;
  std::atomic<T> value_;
};

}  // namespace hemlock::coherence
