// sim_bench.hpp — driver that reproduces Table 2's OffCore column.
//
// Runs T threads through `iters` lock/unlock pairs each on a
// simulated lock (sim_locks.hpp) over a CacheModel, and reports the
// offcore accesses per lock-unlock pair — the paper's Table 2 metric
// ("the OffCore column reports the number of offcore accesses ...
// per lock-unlock pair", measured at 32 threads with empty critical
// and non-critical sections).
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "coherence/cache_model.hpp"
#include "coherence/protocol.hpp"
#include "coherence/sim_atomic.hpp"
#include "runtime/barrier.hpp"
#include "runtime/pause.hpp"

namespace hemlock::coherence {

/// Simulated-benchmark outcome.
struct SimBenchResult {
  CoherenceCounters totals;       ///< summed over cores
  std::uint64_t pairs = 0;        ///< lock-unlock pairs completed
  double offcore_per_pair() const {
    return pairs ? static_cast<double>(totals.offcore_total()) /
                       static_cast<double>(pairs)
                 : 0.0;
  }
  double invalidations_per_pair() const {
    return pairs ? static_cast<double>(totals.invalidations) /
                       static_cast<double>(pairs)
                 : 0.0;
  }
};

/// Execute the empty-critical-section MutexBench shape on SimLock.
/// SimLock must be constructible from (CacheModel*, threads) and
/// expose lock()/unlock() keyed on current_core().
///
/// `ncs_relax` inserts a short un-simulated pause between pairs. On
/// real hardware every lock operation costs ~100ns of coherence
/// latency, so under an empty critical section waiters are always
/// queued; in the simulator the model-mutex holder can otherwise
/// blast through its whole loop un-contended (system-mutex handoff
/// bias), which would measure the *un*contended protocol by accident.
/// The pause restores realistic queue formation without adding any
/// simulated memory traffic.
template <typename SimLock>
SimBenchResult run_sim_bench(Protocol protocol, std::uint32_t threads,
                             std::uint32_t iters,
                             std::uint32_t ncs_relax = 64) {
  CacheModel model(protocol, threads);
  SimLock lock(&model, threads);
  SpinBarrier barrier(threads);

  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        SimCoreBinding bind(t);
        barrier.arrive_and_wait();
        for (std::uint32_t i = 0; i < iters; ++i) {
          lock.lock();
          lock.unlock();
          for (std::uint32_t s = 0; s < ncs_relax; ++s) cpu_relax();
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  SimBenchResult res;
  res.totals = model.total();
  res.pairs = static_cast<std::uint64_t>(threads) * iters;
  return res;
}

/// Table 2 row: algorithm name -> simulated offcore per pair, with
/// the paper's measured reference value for EXPERIMENTS.md.
struct Table2Row {
  std::string name;
  double offcore_sim;
  double paper_offcore;  ///< the paper's Table 2 value (X5-2, 32 thr)
};

/// Run the full Table 2 set (MCS, CLH, Ticket, Hemlock, Hemlock-)
/// under `protocol` at `threads` threads.
std::vector<Table2Row> run_table2(Protocol protocol, std::uint32_t threads,
                                  std::uint32_t iters);

}  // namespace hemlock::coherence
