#include "coherence/cache_model.hpp"

#include <cassert>
#include <sstream>

namespace hemlock::coherence {

CacheModel::CacheModel(Protocol protocol, std::uint32_t cores)
    : protocol_(protocol), cores_(cores), per_core_(cores) {
  assert(cores > 0);
}

std::uint32_t CacheModel::add_line() {
  std::lock_guard<std::mutex> g(mu_);
  const auto id = static_cast<std::uint32_t>(states_.size() / cores_);
  states_.insert(states_.end(), cores_, LineState::kInvalid);
  return id;
}

void CacheModel::on_load(std::uint32_t core, std::uint32_t line) {
  std::lock_guard<std::mutex> g(mu_);
  auto& me = states_[line * cores_ + core];
  auto& c = per_core_[core];
  ++c.ops;
  if (can_read(me)) {
    ++c.hits;
    return;
  }
  ++c.data_reads;
  read_miss_locked(core, line);
}

void CacheModel::on_store(std::uint32_t core, std::uint32_t line) {
  std::lock_guard<std::mutex> g(mu_);
  auto& me = states_[line * cores_ + core];
  auto& c = per_core_[core];
  ++c.ops;
  if (me == LineState::kModified) {
    ++c.hits;
    return;
  }
  if (me == LineState::kExclusive) {
    // Silent E->M upgrade: no offcore transaction.
    me = LineState::kModified;
    ++c.hits;
    return;
  }
  write_acquire_locked(core, line, /*is_rmw=*/false);
}

void CacheModel::on_rmw(std::uint32_t core, std::uint32_t line) {
  std::lock_guard<std::mutex> g(mu_);
  auto& me = states_[line * cores_ + core];
  auto& c = per_core_[core];
  ++c.ops;
  if (me == LineState::kModified) {
    ++c.hits;
    return;
  }
  if (me == LineState::kExclusive) {
    me = LineState::kModified;
    ++c.hits;
    return;
  }
  write_acquire_locked(core, line, /*is_rmw=*/true);
}

void CacheModel::read_miss_locked(std::uint32_t core, std::uint32_t line) {
  LineState* row = &states_[line * cores_];
  auto& c = per_core_[core];
  bool any_sharer = false;
  for (std::uint32_t p = 0; p < cores_; ++p) {
    if (p == core) continue;
    switch (row[p]) {
      case LineState::kModified:
        // Dirty supplier.
        ++c.writebacks;
        row[p] = (protocol_ == Protocol::kMoesi) ? LineState::kOwned
                                                 : LineState::kShared;
        any_sharer = true;
        break;
      case LineState::kExclusive:
        row[p] = LineState::kShared;
        any_sharer = true;
        break;
      case LineState::kOwned:  // MOESI: stays O, supplies data
        any_sharer = true;
        break;
      case LineState::kForward:
        // MESIF: forwarder supplies and demotes to plain S; the
        // requester becomes the new F below.
        row[p] = LineState::kShared;
        any_sharer = true;
        break;
      case LineState::kShared:
        any_sharer = true;
        break;
      case LineState::kInvalid:
        break;
    }
  }
  if (!any_sharer) {
    row[core] = LineState::kExclusive;
  } else if (protocol_ == Protocol::kMesif) {
    row[core] = LineState::kForward;  // newest sharer forwards
  } else {
    row[core] = LineState::kShared;
  }
}

void CacheModel::write_acquire_locked(std::uint32_t core, std::uint32_t line,
                                      bool /*is_rmw*/) {
  LineState* row = &states_[line * cores_];
  auto& c = per_core_[core];
  ++c.rfos;
  if (can_read(row[core])) {
    // Had the data in S/O/F — ownership upgrade.
    ++c.upgrades;
  }
  for (std::uint32_t p = 0; p < cores_; ++p) {
    if (p == core) continue;
    if (row[p] != LineState::kInvalid) {
      if (row[p] == LineState::kModified || row[p] == LineState::kOwned) {
        ++c.writebacks;  // dirty peer flushes as it invalidates
      }
      row[p] = LineState::kInvalid;
      ++c.invalidations;
    }
  }
  row[core] = LineState::kModified;
}

CoherenceCounters CacheModel::counters(std::uint32_t core) const {
  std::lock_guard<std::mutex> g(mu_);
  return per_core_[core];
}

CoherenceCounters CacheModel::total() const {
  std::lock_guard<std::mutex> g(mu_);
  CoherenceCounters t;
  for (const auto& c : per_core_) t += c;
  return t;
}

void CacheModel::reset_counters() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& c : per_core_) c = CoherenceCounters{};
}

LineState CacheModel::state(std::uint32_t core, std::uint32_t line) const {
  std::lock_guard<std::mutex> g(mu_);
  return states_[line * cores_ + core];
}

std::string CacheModel::render_line(std::uint32_t line) const {
  std::lock_guard<std::mutex> g(mu_);
  std::ostringstream os;
  for (std::uint32_t p = 0; p < cores_; ++p) {
    if (p) os << ' ';
    os << state_letter(states_[line * cores_ + p]);
  }
  return os.str();
}

}  // namespace hemlock::coherence
