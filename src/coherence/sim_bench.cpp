#include "coherence/sim_bench.hpp"

#include "coherence/sim_atomic.hpp"
#include "coherence/sim_locks.hpp"

namespace hemlock::coherence {

namespace {
thread_local std::uint32_t t_sim_core = 0;
}  // namespace

std::uint32_t current_core() { return t_sim_core; }

SimCoreBinding::SimCoreBinding(std::uint32_t core) { t_sim_core = core; }
SimCoreBinding::~SimCoreBinding() { t_sim_core = 0; }

std::vector<Table2Row> run_table2(Protocol protocol, std::uint32_t threads,
                                  std::uint32_t iters) {
  // Paper Table 2 reference values (Oracle X5-2, 32 threads).
  std::vector<Table2Row> rows;
  rows.push_back({"mcs",
                  run_sim_bench<SimMcsLock>(protocol, threads, iters)
                      .offcore_per_pair(),
                  10.6});
  rows.push_back({"clh",
                  run_sim_bench<SimClhLock>(protocol, threads, iters)
                      .offcore_per_pair(),
                  11.1});
  rows.push_back({"ticket",
                  run_sim_bench<SimTicketLock>(protocol, threads, iters)
                      .offcore_per_pair(),
                  45.9});
  rows.push_back({"hemlock",
                  run_sim_bench<SimHemlockCtr>(protocol, threads, iters)
                      .offcore_per_pair(),
                  6.81});
  rows.push_back({"hemlock-",
                  run_sim_bench<SimHemlockNaive>(protocol, threads, iters)
                      .offcore_per_pair(),
                  7.92});
  return rows;
}

}  // namespace hemlock::coherence
