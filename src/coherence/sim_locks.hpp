// sim_locks.hpp — the paper's five figure algorithms re-expressed
// over SimAtomic, so the coherence model can charge exactly the
// memory traffic each protocol step costs (Table 2's OffCore column).
//
// Each simulated lock protects a single instance (the Table 2
// benchmark has one central lock), with per-thread structures indexed
// by the simulated core id. The value updates are real atomics, so
// the algorithms genuinely synchronize while being metered.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coherence/sim_atomic.hpp"
#include "runtime/pause.hpp"

namespace hemlock::coherence {

/// Classic Ticket Lock (global spinning on now-serving).
class SimTicketLock {
 public:
  SimTicketLock(CacheModel* model, std::uint32_t /*threads*/)
      : next_(model, 0), serving_(model, 0) {}

  void lock() {
    const std::uint64_t my = next_.fetch_add(1);
    while (serving_.load() != my) cpu_relax();
  }
  void unlock() { serving_.store(serving_.load() + 1); }

 private:
  SimAtomic<std::uint64_t> next_;
  SimAtomic<std::uint64_t> serving_;
};

/// Classic MCS (local spinning on own node; nodes recycled per
/// thread, so the reinitialization stores the paper blames for
/// MCS/CLH's elevated offcore rates are charged faithfully). The
/// owner pointer (head) lives in the lock body "in a field adjacent
/// to the tail" (§5.1) — the same cache line — so the head traffic
/// that Hemlock's context-freedom avoids (§1) is charged too.
class SimMcsLock {
 public:
  SimMcsLock(CacheModel* model, std::uint32_t threads)
      : tail_(model, 0), head_(model, ShareLine{tail_.line()}, 0) {
    nodes_.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      nodes_.push_back(std::make_unique<Node>(model));
    }
  }

  void lock() {
    const std::uint32_t me = current_core();
    Node& n = *nodes_[me];
    n.next.store(0);
    n.locked.store(1);
    const std::uint64_t pred = tail_.exchange(me + 1);
    if (pred != 0) {
      nodes_[pred - 1]->next.store(me + 1);
      while (n.locked.load() != 0) cpu_relax();
    }
    // Record the owner's node for the context-free unlock (executes
    // inside the effective critical section, §1).
    head_.store(me + 1);
  }

  void unlock() {
    const std::uint32_t me = current_core();
    Node& n = *nodes_[head_.load() - 1];  // dependent load via head
    std::uint64_t succ = n.next.load();
    if (succ == 0) {
      if (tail_.compare_and_swap(me + 1, 0) == me + 1) return;
      while ((succ = n.next.load()) == 0) cpu_relax();
    }
    nodes_[succ - 1]->locked.store(0);
  }

 private:
  // A real (padded) McsNode is ONE cache line holding both fields, so
  // a successor's arrival store to `next` invalidates the line the
  // node's owner is spinning on via `locked` — a coupling cost the
  // model must charge.
  struct Node {
    explicit Node(CacheModel* m)
        : next(m, 0), locked(m, ShareLine{next.line()}, 0) {}
    SimAtomic<std::uint64_t> next;
    SimAtomic<std::uint64_t> locked;  // same line as next
  };
  SimAtomic<std::uint64_t> tail_;
  SimAtomic<std::uint64_t> head_;  // same line as tail_
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// CLH (local spinning on the predecessor's node; nodes migrate, and
/// the release->reuse reinitialization store is charged, as for MCS).
/// Scott's standard-interface variant stores the owner's node in a
/// head field adjacent to the tail (same cache line), charged like
/// MCS's.
class SimClhLock {
 public:
  SimClhLock(CacheModel* model, std::uint32_t threads)
      : tail_(model, /*dummy=*/threads + 1),
        head_(model, ShareLine{tail_.line()}, 0) {
    // Node ids are 1-based; node threads+1 is the initial dummy.
    for (std::uint32_t i = 0; i < threads + 1; ++i) {
      nodes_.push_back(std::make_unique<SimAtomic<std::uint64_t>>(model, 0));
    }
    my_node_.assign(threads, 0);
    for (std::uint32_t t = 0; t < threads; ++t) my_node_[t] = t + 1;
  }

  void lock() {
    const std::uint32_t me = current_core();
    const std::uint64_t mine = my_node_[me];
    node(mine).store(1);  // reinitialize for this epoch
    const std::uint64_t pred = tail_.exchange(mine);
    while (node(pred).load() != 0) cpu_relax();
    // Acquired: the predecessor's node migrates to us for future use,
    // and the head field records our enqueued node for unlock.
    my_node_[me] = pred;
    head_.store(mine);
  }

  void unlock() {
    node(head_.load()).store(0);  // dependent load via head
  }

 private:
  SimAtomic<std::uint64_t>& node(std::uint64_t id) { return *nodes_[id - 1]; }

  SimAtomic<std::uint64_t> tail_;
  SimAtomic<std::uint64_t> head_;  // same line as tail_
  std::vector<std::unique_ptr<SimAtomic<std::uint64_t>>> nodes_;
  std::vector<std::uint64_t> my_node_;  // thread-private
};

/// Hemlock (Listings 1-2). `Ctr` selects the waiting policy: CAS/FAA
/// polling (Listing 2) versus plain loads + a clearing store
/// (Listing 1, "Hemlock-"). The Grant value 1 stands for the single
/// lock's address.
template <bool Ctr>
class SimHemlockLock {
 public:
  SimHemlockLock(CacheModel* model, std::uint32_t threads) : tail_(model, 0) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      grants_.push_back(std::make_unique<SimAtomic<std::uint64_t>>(model, 0));
    }
  }

  void lock() {
    const std::uint32_t me = current_core();
    const std::uint64_t pred = tail_.exchange(me + 1);
    if (pred != 0) {
      SimAtomic<std::uint64_t>& g = *grants_[pred - 1];
      if constexpr (Ctr) {
        // Listing 2 line 9: CAS-poll; the failed CAS already owns the
        // line, so the successful consume is a local hit.
        while (g.compare_and_swap(1, 0) != 1) cpu_relax();
      } else {
        // Listing 1 lines 11-12: load-poll then clearing store — the
        // store pays the S->M upgrade CTR exists to avoid.
        while (g.load() != 1) cpu_relax();
        g.store(0);
      }
    }
  }

  void unlock() {
    const std::uint32_t me = current_core();
    const std::uint64_t v = tail_.compare_and_swap(me + 1, 0);
    if (v != me + 1) {
      SimAtomic<std::uint64_t>& g = *grants_[me];
      g.store(1);
      if constexpr (Ctr) {
        // Listing 2 line 15: FAA(0) — read with intent to write.
        while (g.fetch_add(0) != 0) cpu_relax();
      } else {
        while (g.load() != 0) cpu_relax();
      }
    }
  }

 private:
  SimAtomic<std::uint64_t> tail_;
  std::vector<std::unique_ptr<SimAtomic<std::uint64_t>>> grants_;
};

using SimHemlockCtr = SimHemlockLock<true>;
using SimHemlockNaive = SimHemlockLock<false>;

}  // namespace hemlock::coherence
