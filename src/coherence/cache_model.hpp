// cache_model.hpp — directory-style invalidation coherence model.
//
// Tracks, for each registered cache line and each core, the line's
// coherence state, and charges every simulated access with the
// protocol transitions it would cause on real hardware: local hits,
// offcore data reads, RFOs (write misses and upgrades), peer
// invalidations and dirty-supply writebacks. Caches are modelled as
// infinite-capacity for the tracked lines — the benchmark working
// sets are tiny ("offcore accesses largely reflect cache coherent
// communications", §5.5), so capacity misses are irrelevant and every
// offcore event is a coherence event.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "coherence/protocol.hpp"

namespace hemlock::coherence {

/// The model. Thread-safe: all transitions serialize on an internal
/// mutex, so counts are exact for whatever interleaving the calling
/// threads actually produce.
class CacheModel {
 public:
  /// `cores` is the number of simulated CPUs (≥ the number of calling
  /// threads; callers identify themselves with a core id).
  CacheModel(Protocol protocol, std::uint32_t cores);

  CacheModel(const CacheModel&) = delete;
  CacheModel& operator=(const CacheModel&) = delete;

  /// Register a fresh cache line (all cores start Invalid); returns
  /// its id. Every SimAtomic occupies its own line, mirroring the
  /// library's sequestration discipline.
  std::uint32_t add_line();

  /// Charge a load by `core` on `line`.
  void on_load(std::uint32_t core, std::uint32_t line);
  /// Charge a store.
  void on_store(std::uint32_t core, std::uint32_t line);
  /// Charge an atomic read-modify-write (CAS/SWAP/FAA — including
  /// failed CAS and FAA-of-0, which still take ownership: the CTR
  /// premise).
  void on_rmw(std::uint32_t core, std::uint32_t line);

  /// Per-core counters.
  CoherenceCounters counters(std::uint32_t core) const;
  /// Sum over all cores.
  CoherenceCounters total() const;
  /// Zero all counters (line states persist).
  void reset_counters();

  /// Current state of `line` in `core`'s cache (tests).
  LineState state(std::uint32_t core, std::uint32_t line) const;
  /// Protocol in force.
  Protocol protocol() const { return protocol_; }
  /// Core count.
  std::uint32_t cores() const { return cores_; }

  /// Debug rendering of a line's state vector, e.g. "M I I S".
  std::string render_line(std::uint32_t line) const;

 private:
  // REQUIRES mu_ held.
  void read_miss_locked(std::uint32_t core, std::uint32_t line);
  void write_acquire_locked(std::uint32_t core, std::uint32_t line,
                            bool is_rmw);

  Protocol protocol_;
  std::uint32_t cores_;
  mutable std::mutex mu_;
  // states_[line * cores_ + core]
  std::vector<LineState> states_;
  std::vector<CoherenceCounters> per_core_;
};

}  // namespace hemlock::coherence
