// protocol.hpp — cache-coherence protocol vocabulary.
//
// Table 2 of the paper measures "offcore accesses" — memory requests
// that cannot be satisfied from a core's local cache, dominated here
// by coherence misses on the lock words. PMU counters are unavailable
// in this reproduction environment (see DESIGN.md's substitution
// table), so src/coherence re-derives those counts mechanistically: a
// single-writer invalidation protocol simulated over exactly the
// cache lines the lock algorithms touch.
//
// Three protocol flavours are modelled, matching the paper's hosts:
//   * MESIF — Intel X5-2 (§5.1; Goodman & Hum [30])
//   * MOESI — SPARC T7-2 and AMD EPYC (§5.2-5.3)
//   * MESI  — the textbook baseline [31]
// §2.1's CTR argument is protocol-level: polling with loads leaves
// the line in S and forces an S→M upgrade on the hand-over's critical
// path; polling with CAS/FAA keeps the line in M so the consume is a
// local hit.
#pragma once

#include <cstdint>
#include <string_view>

namespace hemlock::coherence {

/// Per-(line, core) coherence state.
enum class LineState : std::uint8_t {
  kInvalid,    ///< I — no permission
  kShared,     ///< S — read permission, clean w.r.t. this core
  kExclusive,  ///< E — sole reader, clean; silent upgrade to M
  kModified,   ///< M — sole owner, dirty
  kOwned,      ///< O — MOESI: dirty but shared (supplier on reads)
  kForward,    ///< F — MESIF: designated clean supplier among sharers
};

/// Which protocol the model enforces.
enum class Protocol : std::uint8_t { kMesi, kMesif, kMoesi };

/// Printable protocol name.
constexpr std::string_view protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kMesi: return "MESI";
    case Protocol::kMesif: return "MESIF";
    case Protocol::kMoesi: return "MOESI";
  }
  return "?";
}

/// Printable state letter.
constexpr char state_letter(LineState s) {
  switch (s) {
    case LineState::kInvalid: return 'I';
    case LineState::kShared: return 'S';
    case LineState::kExclusive: return 'E';
    case LineState::kModified: return 'M';
    case LineState::kOwned: return 'O';
    case LineState::kForward: return 'F';
  }
  return '?';
}

/// True when the state grants read permission.
constexpr bool can_read(LineState s) { return s != LineState::kInvalid; }
/// True when the state grants write permission without a bus/dir op.
constexpr bool can_write_silently(LineState s) {
  return s == LineState::kModified;
}

/// Event counters in the spirit of the paper's measurement: the sum
/// offcore_requests.all_data_rd + offcore_requests.demand_rfo
/// (footnote 10) is offcore_total().
struct CoherenceCounters {
  std::uint64_t data_reads = 0;   ///< offcore read requests (load misses)
  std::uint64_t rfos = 0;         ///< offcore read-for-ownership (write misses + S/O/F→M upgrades)
  std::uint64_t upgrades = 0;     ///< subset of rfos: had the data, needed ownership
  std::uint64_t invalidations = 0;///< peer lines invalidated by our writes
  std::uint64_t writebacks = 0;   ///< dirty lines supplied/flushed on remote requests
  std::uint64_t hits = 0;         ///< satisfied locally
  std::uint64_t ops = 0;          ///< total simulated accesses

  /// The paper's "OffCore" metric.
  std::uint64_t offcore_total() const { return data_reads + rfos; }

  CoherenceCounters& operator+=(const CoherenceCounters& o) {
    data_reads += o.data_reads;
    rfos += o.rfos;
    upgrades += o.upgrades;
    invalidations += o.invalidations;
    writebacks += o.writebacks;
    hits += o.hits;
    ops += o.ops;
    return *this;
  }
};

}  // namespace hemlock::coherence
