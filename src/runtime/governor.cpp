#include "runtime/governor.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace hemlock {

namespace {

/// nproc without touching topology() — that path allocates a
/// std::string for the model name, and the governor must stay usable
/// from inside the interposition shim's first lock acquisition, where
/// a malloc (whose allocator may guard state with an interposed
/// pthread mutex) could re-enter the shim.
std::uint32_t detect_cpus() noexcept {
#if defined(_SC_NPROCESSORS_ONLN)
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<std::uint32_t>(n);
#endif
  return 1;
}

}  // namespace

bool parse_wait_tier(const char* s, WaitTier* out) noexcept {
  if (s == nullptr || out == nullptr) return false;
  for (const WaitTier t :
       {WaitTier::kSpin, WaitTier::kYield, WaitTier::kPark}) {
    if (std::strcmp(s, wait_tier_name(t)) == 0) {
      *out = t;
      return true;
    }
  }
  return false;
}

ContentionGovernor::ContentionGovernor() noexcept : cpus_(detect_cpus()) {
  // HEMLOCK_WAIT pins the tier for governed waiters even outside the
  // shim (benches, embedders). The shim additionally re-selects the
  // lock *variant* from the same variable; both act in the same
  // direction. Unknown values mean "auto" — the shim reports them.
  WaitTier t;
  if (parse_wait_tier(std::getenv("HEMLOCK_WAIT"), &t)) force(t);
}

ContentionGovernor& ContentionGovernor::instance() noexcept {
  static ContentionGovernor governor;
  return governor;
}

}  // namespace hemlock
