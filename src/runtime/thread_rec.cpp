#include "runtime/thread_rec.hpp"

#include <algorithm>

#include "runtime/pause.hpp"

namespace hemlock {

std::atomic<bool> LockProfiler::enabled_{false};

namespace {

// Registry guard. Deliberately NOT std::mutex: under the LD_PRELOAD
// interposition library every pthread_mutex (and therefore every
// std::mutex) in the process is replaced by a library lock whose
// lock() path registers the thread — which would re-enter this
// registry. A private raw spinlock breaks that recursion. Nothing
// here is on a lock fast path.
class RegistrySpinLock {
 public:
  void lock() noexcept {
    // mo: acquire TAS — pairs with unlock's release store; the prior
    // holder's registry edits are visible.
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      cpu_relax();
    }
  }
  void unlock() noexcept {
    // mo: release — publishes this holder's registry edits.
    flag_.store(0, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

struct RegistryGuard {
  explicit RegistryGuard(RegistrySpinLock& l) : lock(l) { lock.lock(); }
  ~RegistryGuard() { lock.unlock(); }
  RegistrySpinLock& lock;
};

RegistrySpinLock g_registry_mu;
ThreadRec* g_head = nullptr;
std::uint32_t g_ever = 0;
std::uint32_t g_live = 0;
ThreadRegistry::RetiredProfile g_retired;

// Holder gives the thread_local a destructor that drains the Grant
// word (paper Appendix A) before deregistering.
struct Holder {
  ThreadRec rec;

  Holder() { ThreadRegistry::register_rec(&rec); }

  ~Holder() {
    // A tardy successor (Overlap variant) may not yet have fetched
    // and cleared our Grant; its acknowledgement store must land
    // before this memory is reclaimed.
    SpinWait waiter;
    // mo: acquire drain — pairs with the successor's releasing
    // consume; its acknowledgement must land before reclamation.
    while (rec.grant.value.load(std::memory_order_acquire) != kGrantEmpty) {
      waiter.wait();
    }
    ThreadRegistry::deregister_rec(&rec);
  }
};

}  // namespace

ThreadRec& self() {
  static thread_local Holder holder;
  return holder.rec;
}

void ThreadRegistry::register_rec(ThreadRec* rec) {
  RegistryGuard g(g_registry_mu);
  rec->id = g_ever++;
  rec->registry_next = g_head;
  g_head = rec;
  ++g_live;
  // mo: release — publishes id/registry_next before for_each can
  // observe the record as live.
  rec->live.store(true, std::memory_order_release);
}

void ThreadRegistry::deregister_rec(ThreadRec* rec) {
  RegistryGuard g(g_registry_mu);
  // mo: release — orders the record's last profiling writes before
  // the tombstone that for_each checks.
  rec->live.store(false, std::memory_order_release);
  ThreadRec** link = &g_head;
  while (*link != nullptr && *link != rec) link = &(*link)->registry_next;
  if (*link == rec) *link = rec->registry_next;
  --g_live;
  // Preserve this thread's profiling contribution past its exit.
  // mo: relaxed — own-thread profiling counters; monotonic stats.
  g_retired.nested_acquires +=
      rec->nested_acquires.load(std::memory_order_relaxed);
  g_retired.max_held = std::max(
      // mo: relaxed — stats.
      g_retired.max_held, rec->max_held.load(std::memory_order_relaxed));
  g_retired.max_grant_waiters =
      std::max(g_retired.max_grant_waiters,
               // mo: relaxed — stats.
               rec->max_grant_waiters.load(std::memory_order_relaxed));
#if HEMLOCK_TELEMETRY_ENABLED
  // Same preservation for the per-lock telemetry slab (the telemetry
  // fold takes its own accumulator lock; registry -> fold is the one
  // permitted nesting order).
  telemetry::on_thread_exit(rec->telemetry_slab);
#endif
}

ThreadRegistry::RetiredProfile ThreadRegistry::retired_profile() {
  RegistryGuard g(g_registry_mu);
  return g_retired;
}

void ThreadRegistry::for_each(const std::function<void(ThreadRec&)>& fn) {
  RegistryGuard g(g_registry_mu);
  for (ThreadRec* r = g_head; r != nullptr; r = r->registry_next) {
    // mo: acquire — pairs with register_rec's release so the
    // record's fields are visible for live entries.
    if (r->live.load(std::memory_order_acquire)) fn(*r);
  }
}

void ThreadRegistry::for_each_raw(void (*fn)(ThreadRec&, void*), void* ctx) {
  RegistryGuard g(g_registry_mu);
  for (ThreadRec* r = g_head; r != nullptr; r = r->registry_next) {
    // mo: acquire — as for_each.
    if (r->live.load(std::memory_order_acquire)) fn(*r, ctx);
  }
}

std::uint32_t ThreadRegistry::ever_registered() {
  RegistryGuard g(g_registry_mu);
  return g_ever;
}

std::uint32_t ThreadRegistry::live_count() {
  RegistryGuard g(g_registry_mu);
  return g_live;
}

void ThreadRegistry::reset_profile() {
  RegistryGuard g(g_registry_mu);
  g_retired = RetiredProfile{};
  for (ThreadRec* r = g_head; r != nullptr; r = r->registry_next) {
    // mo: relaxed — stats reset; racing samples are already racy.
    r->held_count.store(0, std::memory_order_relaxed);
    r->max_held.store(0, std::memory_order_relaxed);
    r->nested_acquires.store(0, std::memory_order_relaxed);
    r->grant_waiters.store(0, std::memory_order_relaxed);
    r->max_grant_waiters.store(0, std::memory_order_relaxed);
  }
}

}  // namespace hemlock
