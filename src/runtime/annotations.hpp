// annotations.hpp — Clang Thread Safety Analysis macro surface.
//
// Lock discipline — who holds what, in which mode, released on which
// path — is exactly the class of invariant the paper's proofs rest on
// and exactly what slips past tests until the right interleaving
// fires. Clang's -Wthread-safety turns a slice of it into build-time
// rejection: lock types declare themselves capabilities, lock/unlock
// surface their acquire/release contract, and data declares which
// capability guards it. The analysis is purely static and
// intra-procedural; it costs nothing at run time and nothing on
// compilers that lack the attributes (every macro expands to nothing
// on GCC, so the portable build is byte-identical).
//
// CI compiles the clang leg with -DHEMLOCK_THREAD_SAFETY=ON, which
// adds -Werror=thread-safety — see docs/ANALYSIS.md for the
// conventions, including when HEMLOCK_NO_THREAD_SAFETY_ANALYSIS is an
// acceptable escape hatch (deliberately asymmetric hand-off protocols
// the analysis cannot express, each use carrying a one-line
// justification).
//
// Naming follows clang's own mutex.h example and libc++'s
// _LIBCPP_THREAD_SAFETY_ANNOTATION: the macro name says what the
// function DOES (HEMLOCK_ACQUIRE), the attribute underneath is the
// modern capability spelling (acquire_capability).
#pragma once

#if defined(__clang__)
#define HEMLOCK_THREAD_ANNOTATION(x) __attribute__((x))
#else
// GCC parses but does not implement the capability attributes;
// expanding to nothing keeps -Werror builds clean and codegen
// identical across compilers.
#define HEMLOCK_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability ("mutex" / "role" string shows
/// up in diagnostics). Every lock in the roster carries this.
#define HEMLOCK_CAPABILITY(x) HEMLOCK_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (LockGuard / SharedLockGuard).
#define HEMLOCK_SCOPED_CAPABILITY HEMLOCK_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given
/// capability (writes need exclusive; reads admit shared).
#define HEMLOCK_GUARDED_BY(x) HEMLOCK_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define HEMLOCK_PT_GUARDED_BY(x) HEMLOCK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (exclusive mode); callers must not
/// already hold it.
#define HEMLOCK_ACQUIRE(...) \
  HEMLOCK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared (reader) mode.
#define HEMLOCK_ACQUIRE_SHARED(...) \
  HEMLOCK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the (exclusively held) capability.
#define HEMLOCK_RELEASE(...) \
  HEMLOCK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases the shared-mode hold.
#define HEMLOCK_RELEASE_SHARED(...) \
  HEMLOCK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function releases a hold of either mode — what a scoped guard's
/// destructor wants when the guard may wrap shared acquisitions.
#define HEMLOCK_RELEASE_GENERIC(...) \
  HEMLOCK_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attempts the capability; first argument is the return
/// value meaning success (true for every lock here).
#define HEMLOCK_TRY_ACQUIRE(...) \
  HEMLOCK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Shared-mode attempt.
#define HEMLOCK_TRY_ACQUIRE_SHARED(...) \
  HEMLOCK_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must hold the capability exclusively for the call's duration
/// (the function neither acquires nor releases it).
#define HEMLOCK_REQUIRES(...) \
  HEMLOCK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define HEMLOCK_REQUIRES_SHARED(...) \
  HEMLOCK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy documentation —
/// every lock in this library self-deadlocks on re-acquisition).
#define HEMLOCK_EXCLUDES(...) \
  HEMLOCK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (the analysis trusts
/// it from this point on).
#define HEMLOCK_ASSERT_CAPABILITY(x) \
  HEMLOCK_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define HEMLOCK_RETURN_CAPABILITY(x) HEMLOCK_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is exempt from analysis while its
/// interface annotations still bind callers. Every use in this
/// codebase carries a one-line justification comment; legitimate
/// reasons are enumerated in docs/ANALYSIS.md (asymmetric hand-off
/// protocols, epoch-protected lock-free readers, dynamic capability
/// identity in the interposition shim).
#define HEMLOCK_NO_THREAD_SAFETY_ANALYSIS \
  HEMLOCK_THREAD_ANNOTATION(no_thread_safety_analysis)
