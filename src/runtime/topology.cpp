#include "runtime/topology.hpp"

#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

namespace hemlock {
namespace {

Topology probe() {
  Topology t;
  t.logical_cpus = std::max(1u, std::thread::hardware_concurrency());

  std::ifstream cpuinfo("/proc/cpuinfo");
  if (!cpuinfo) {
    t.physical_cores = t.logical_cpus;
    return t;
  }

  std::set<std::pair<int, int>> cores;  // (physical id, core id)
  std::set<int> packages;
  int cur_physical = 0;
  int cur_core = 0;
  std::uint32_t processors = 0;
  std::string line;
  while (std::getline(cpuinfo, line)) {
    auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    // Trim trailing whitespace/tabs from the key.
    while (!key.empty() && (key.back() == ' ' || key.back() == '\t')) {
      key.pop_back();
    }
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);

    if (key == "processor") {
      ++processors;
    } else if (key == "physical id") {
      cur_physical = std::atoi(value.c_str());
      packages.insert(cur_physical);
    } else if (key == "core id") {
      cur_core = std::atoi(value.c_str());
      cores.insert({cur_physical, cur_core});
    } else if (key == "model name" && t.model_name.empty()) {
      t.model_name = value;
    }
  }

  if (processors > 0) t.logical_cpus = processors;
  t.sockets = packages.empty() ? 1 : static_cast<std::uint32_t>(packages.size());
  t.physical_cores =
      cores.empty() ? t.logical_cpus : static_cast<std::uint32_t>(cores.size());
  t.smt_ways = t.physical_cores > 0 ? t.logical_cpus / t.physical_cores : 1;
  if (t.smt_ways == 0) t.smt_ways = 1;
  return t;
}

}  // namespace

std::string Topology::describe() const {
  std::ostringstream os;
  os << logical_cpus << " logical CPUs (" << sockets << " socket"
     << (sockets == 1 ? "" : "s") << ", " << physical_cores << " cores, SMT x"
     << smt_ways << ")";
  if (!model_name.empty()) os << " — " << model_name;
  return os.str();
}

const Topology& topology() {
  static const Topology t = probe();
  return t;
}

}  // namespace hemlock
