// thread_rec.hpp — the per-thread record holding the Grant word.
//
// Hemlock's entire per-thread footprint is one word: the Grant field
// (paper §1: "requiring just one word per thread plus one word per
// lock"). ThreadRec sequesters that word as the sole occupant of a
// cache line (§2.3) and adds, on separate *cold* lines, the registry
// linkage and optional profiling counters used to reproduce the §5.4
// application characterization (locks held simultaneously,
// multi-waiting degree). The cold state is never touched on lock
// fast paths unless profiling is explicitly enabled.
//
// Lifetime rule (paper Appendix A): "When ultimately destroying a
// thread, it is necessary to wait while the thread's Grant field
// [transitions] back to null before reclaiming the memory underlying
// Grant." ThreadRec's destructor enforces exactly that, which makes
// the Overlap variant (deferred acknowledgement) safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "runtime/cacheline.hpp"
#include "stats/telemetry.hpp"

namespace hemlock {

/// Values stored in a Grant word: null (0), a lock address, or — for
/// the Optimized Hand-Over Variant 1 (paper Listing 5) — a lock
/// address with the low bit set (L|1, "successor certainly exists").
using GrantWord = std::uintptr_t;
inline constexpr GrantWord kGrantEmpty = 0;

/// Per-thread locking record. Obtain the calling thread's record with
/// self(); records are registered for the lifetime of the thread and
/// enumerable via ThreadRegistry for tests and profilers.
struct ThreadRec {
  // ---- hot line: the Grant mailbox ------------------------------------
  /// The singleton mailbox between this thread and whichever waiter is
  /// its immediate successor on some lock's queue. Protocol invariants
  /// (paper §2): only this thread stores a non-null value here (during
  /// its unlock), and the only store performed by *another* thread is
  /// the successor's acknowledgement clearing it back to null.
  CacheAligned<std::atomic<GrantWord>> grant{kGrantEmpty};

  // ---- epoch lines: reclamation slots (src/reclaim/epoch.hpp) ----------
  /// Per-domain epoch announcement words. Slot `i` belongs to the
  /// EpochDomain holding slot id `i`; 0 means "quiescent in that
  /// domain", any other value is the global epoch the thread pinned on
  /// entry. Written only by the owning thread; read by whichever
  /// thread attempts an epoch advance. Each word owns a cache line so
  /// readers announcing epochs never false-share with the Grant word
  /// or with each other's announcements.
  static constexpr std::uint32_t kMaxEpochDomains = 4;
  CacheAligned<std::atomic<std::uint64_t>> epochs[kMaxEpochDomains]{};
  /// Reentrancy depth per domain — owner-thread-only (a thread may
  /// nest enter() calls; only the outermost publishes/clears the
  /// announcement word), so plain integers on a cold line suffice.
  std::uint32_t epoch_depth[kMaxEpochDomains] = {};

  // ---- cold line(s): registry + profiling ------------------------------
  /// Intrusive registry link; managed by ThreadRegistry.
  ThreadRec* registry_next = nullptr;
  /// Dense id assigned at registration (stable for the thread's life).
  std::uint32_t id = 0;
  /// True between registration and deregistration.
  std::atomic<bool> live{false};

  // Profiling counters (§5.4 characterization). Updated only when
  // LockProfiler is enabled; all relaxed — they are statistics, not
  // synchronization.
  std::atomic<std::uint32_t> held_count{0};       ///< locks currently held
  std::atomic<std::uint32_t> max_held{0};         ///< high-water mark of held_count
  std::atomic<std::uint64_t> nested_acquires{0};  ///< lock() calls made while >=1 lock held
  std::atomic<std::uint32_t> grant_waiters{0};    ///< threads now spinning on this->grant
  std::atomic<std::uint32_t> max_grant_waiters{0};///< high-water mark of grant_waiters

#if HEMLOCK_TELEMETRY_ENABLED
  /// Per-lock telemetry counters for this thread (stats/telemetry.hpp).
  /// Cold relative to the Grant line; written only by the owning
  /// thread, read by snapshot walks. Folded into the telemetry retired
  /// accumulator at deregistration.
  telemetry::Slab telemetry_slab;
#endif

  ThreadRec() = default;
  ThreadRec(const ThreadRec&) = delete;
  ThreadRec& operator=(const ThreadRec&) = delete;
};

// Grant occupies the record's first cache line by itself: CacheAligned
// pads it to a full line and everything after it therefore starts on
// the next line. (Checked at runtime in tests/test_runtime.cpp since
// offsetof on this type is conditionally-supported.)
static_assert(alignof(ThreadRec) >= kCacheLineSize);

/// The calling thread's record. First call registers the thread; the
/// record is deregistered (after draining its Grant word) when the
/// thread exits.
ThreadRec& self();

/// Global roster of live ThreadRecs (meta-level: registration and
/// enumeration take an internal mutex; nothing here is on a lock fast
/// path).
class ThreadRegistry {
 public:
  /// Invoke fn(rec) for every currently-live record. The registry
  /// mutex is held for the whole walk, so records cannot be unlinked
  /// mid-traversal; fn must not register/deregister threads.
  static void for_each(const std::function<void(ThreadRec&)>& fn);

  /// As for_each, but through a plain function pointer — no
  /// std::function, no potential allocation. Safe to call from the
  /// telemetry SIGUSR1 report path and other no-allocation contexts
  /// (same registry-lock rules as for_each).
  static void for_each_raw(void (*fn)(ThreadRec&, void*), void* ctx);

  /// Number of threads ever registered (monotone).
  static std::uint32_t ever_registered();
  /// Number of currently-live registered threads.
  static std::uint32_t live_count();

  /// Reset the §5.4 profiling counters on every live record and the
  /// retired tally.
  static void reset_profile();

  /// Profiling counters folded in from threads that have already
  /// exited (their ThreadRecs are gone; the registry accumulates
  /// their contribution at deregistration so post-run collection sees
  /// the whole workload).
  struct RetiredProfile {
    std::uint64_t nested_acquires = 0;
    std::uint32_t max_held = 0;
    std::uint32_t max_grant_waiters = 0;
  };
  static RetiredProfile retired_profile();

  // Internal: called by self()'s per-thread holder at thread start /
  // exit. Not for direct use.
  static void register_rec(ThreadRec* rec);
  static void deregister_rec(ThreadRec* rec);
};

/// Global profiling switch for the §5.4 characterization counters.
/// Off by default; the fast-path cost when off is one relaxed bool
/// load per instrumented site (and the instrumented sites themselves
/// are compiled only into the profiling hooks, not the lock
/// algorithms' inner loops).
class LockProfiler {
 public:
  /// Enable/disable counter updates globally.
  static void enable(bool on) noexcept {
    // mo: relaxed — profiling switch; counters are advisory stats.
    enabled_.store(on, std::memory_order_relaxed);
  }
  /// Whether counters are being collected.
  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);  // mo: see enable()
  }

  // ---- hooks called by instrumented lock implementations --------------

  /// A thread acquired a lock (post-CS-entry).
  static void on_acquire(ThreadRec& me) noexcept {
    if (!enabled()) return;
    // mo: relaxed — profiling counters (§5.4); advisory stats only.
    std::uint32_t prior = me.held_count.fetch_add(1, std::memory_order_relaxed);
    if (prior >= 1) me.nested_acquires.fetch_add(1, std::memory_order_relaxed);
    bump_max(me.max_held, prior + 1);
  }

  /// A thread released a lock.
  static void on_release(ThreadRec& me) noexcept {
    if (!enabled()) return;
    me.held_count.fetch_sub(1, std::memory_order_relaxed);  // mo: stats
  }

  /// A waiter began spinning on `pred`'s Grant word.
  static void on_wait_begin(ThreadRec& pred) noexcept {
    if (!enabled()) return;
    // mo: relaxed — profiling counter; advisory stats only.
    std::uint32_t now = pred.grant_waiters.fetch_add(1, std::memory_order_relaxed) + 1;
    bump_max(pred.max_grant_waiters, now);
  }

  /// A waiter stopped spinning on `pred`'s Grant word.
  static void on_wait_end(ThreadRec& pred) noexcept {
    if (!enabled()) return;
    pred.grant_waiters.fetch_sub(1, std::memory_order_relaxed);  // mo: stats
  }

 private:
  static void bump_max(std::atomic<std::uint32_t>& slot,
                       std::uint32_t candidate) noexcept {
    // mo: relaxed — racy max of a profiling counter.
    std::uint32_t cur = slot.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !slot.compare_exchange_weak(cur, candidate,
                                       std::memory_order_relaxed)) {  // mo: ditto
    }
  }
  static std::atomic<bool> enabled_;
};

}  // namespace hemlock
