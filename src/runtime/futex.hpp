// futex.hpp — thin wrappers over the Linux futex syscall.
//
// Appendix C and §6 of the paper discuss polite waiting policies
// (WaitOnAddress / park-unpark) as alternatives to pure spinning.
// hemlock_cv and hemlock_chain use these wrappers for their blocking
// tiers. On non-Linux builds the wrappers degrade to spinning, which
// is semantically safe (futex wakeups are permitted to be spurious in
// both directions).
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

#include "runtime/pause.hpp"

namespace hemlock {

/// Sleep while *addr == expected. May wake spuriously; callers must
/// re-check their predicate in a loop.
inline void futex_wait(std::atomic<std::uint32_t>* addr,
                       std::uint32_t expected) noexcept {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
#else
  if (addr->load(std::memory_order_acquire) == expected) cpu_relax();
#endif
}

/// Sleep while *addr == expected, for at most `nanos` nanoseconds.
/// For waits on the low half of an 8-byte word: a publish that leaves
/// the low 32 bits unchanged (e.g. an MCS successor pointer whose low
/// half happens to equal the parked snapshot's) is invisible to the
/// kernel's compare, and its wake can land before the sleep begins —
/// so such sleeps must be bounded, not indefinite. May wake
/// spuriously; callers must re-check their predicate in a loop.
inline void futex_wait_for(std::atomic<std::uint32_t>* addr,
                           std::uint32_t expected,
                           std::int64_t nanos) noexcept {
#if defined(__linux__)
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(nanos / 1000000000);
  ts.tv_nsec = static_cast<long>(nanos % 1000000000);
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
#else
  (void)nanos;
  if (addr->load(std::memory_order_acquire) == expected) cpu_relax();
#endif
}

/// Wake up to `count` waiters blocked in futex_wait on addr.
inline void futex_wake(std::atomic<std::uint32_t>* addr,
                       std::uint32_t count) noexcept {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAKE_PRIVATE, count, nullptr, nullptr, 0);
#else
  (void)addr;
  (void)count;
#endif
}

/// Wake every waiter on addr.
inline void futex_wake_all(std::atomic<std::uint32_t>* addr) noexcept {
  futex_wake(addr, 0x7FFFFFFF);
}

}  // namespace hemlock
