// futex.hpp — thin wrappers over the Linux futex syscall.
//
// Appendix C and §6 of the paper discuss polite waiting policies
// (WaitOnAddress / park-unpark) as alternatives to pure spinning.
// hemlock_cv and hemlock_chain use these wrappers for their blocking
// tiers, and the interposition layer's condvar overlay (shim_cond)
// builds its wait/notify protocol on them. On non-Linux builds the
// wrappers degrade to spinning, which is semantically safe (futex
// wakeups are permitted to be spurious in both directions).
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__linux__)
#include <errno.h>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

#include "core/verify_hooks.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// Sleep while *addr == expected. May wake spuriously; callers must
/// re-check their predicate in a loop.
inline void futex_wait(std::atomic<std::uint32_t>* addr,
                       std::uint32_t expected) noexcept {
#if defined(HEMLOCK_VERIFY)
  // Under the interleaving verifier every logical thread shares one
  // running OS thread at a time; a kernel sleep would stall the whole
  // harness with no publisher left to wake it. A verify-scenario wait
  // is therefore a scheduler yield that returns spuriously — legal by
  // this function's own contract — and the caller's predicate loop
  // (which has its own yield markers) does the actual waiting.
  if (verify::in_scenario()) {
    verify::yield_point("futex:wait");
    return;
  }
#endif
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
#else
  // mo: acquire — portable-fallback recheck pairs with the waker's
  // release publish, as FUTEX_WAIT's kernel check would.
  if (addr->load(std::memory_order_acquire) == expected) cpu_relax();
#endif
}

/// Sleep while *addr == expected, for at most `nanos` nanoseconds.
/// For waits on the low half of an 8-byte word: a publish that leaves
/// the low 32 bits unchanged (e.g. an MCS successor pointer whose low
/// half happens to equal the parked snapshot's) is invisible to the
/// kernel's compare, and its wake can land before the sleep begins —
/// so such sleeps must be bounded, not indefinite. May wake
/// spuriously; callers must re-check their predicate in a loop.
///
/// Returns why the sleep ended, errno-style: 0 for a wake (or a
/// spurious return), ETIMEDOUT when the bound expired, EAGAIN when
/// *addr != expected at sleep time, EINTR on signal delivery. The
/// parking tiers ignore the reason (their predicate loop re-checks);
/// the condvar overlay's timedwait needs ETIMEDOUT to be faithful —
/// "time passed" must come from the kernel's clock, not a userspace
/// re-read racing the wakeup.
inline int futex_wait_for(std::atomic<std::uint32_t>* addr,
                          std::uint32_t expected,
                          std::int64_t nanos) noexcept {
#if defined(HEMLOCK_VERIFY)
  // See futex_wait: verify scenarios yield to the harness scheduler
  // instead of sleeping, and report a spurious (0) return — never
  // ETIMEDOUT, so timed paths re-check their own deadlines.
  if (verify::in_scenario()) {
    verify::yield_point("futex:wait");
    return 0;
  }
#endif
#if defined(__linux__)
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(nanos / 1000000000);
  ts.tv_nsec = static_cast<long>(nanos % 1000000000);
  const long rc = syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
                          FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
  return rc == 0 ? 0 : errno;
#else
  (void)nanos;
  // mo: acquire — portable-fallback recheck, as in futex_wait above.
  if (addr->load(std::memory_order_acquire) == expected) cpu_relax();
  return 0;
#endif
}

/// Wake up to `count` waiters blocked in futex_wait on addr.
inline void futex_wake(std::atomic<std::uint32_t>* addr,
                       std::uint32_t count) noexcept {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAKE_PRIVATE, count, nullptr, nullptr, 0);
#else
  (void)addr;
  (void)count;
#endif
}

/// Wake every waiter on addr.
inline void futex_wake_all(std::atomic<std::uint32_t>* addr) noexcept {
  futex_wake(addr, 0x7FFFFFFF);
}

/// FUTEX_CMP_REQUEUE: iff *from == expected, wake up to `wake` waiters
/// sleeping on `from` and move up to `requeue_cap` more onto `to`'s
/// wait queue without running them — the thundering-herd valve condvar
/// broadcasts are built on (glibc's pre-2.25 condvar used exactly this
/// onto the mutex word). The cap matters to callers that account for
/// moved sleepers: the kernel requeues from the head of a FIFO queue,
/// so capping at the caller's census keeps late-arriving sleepers (who
/// have not been counted) on `from` for a later wake. Returns the
/// number of waiters woken plus requeued, or -1 with errno == EAGAIN
/// when *from != expected (the caller raced a concurrent mutation and
/// must re-decide — typically by falling back to a plain wake-all,
/// which is always semantically safe).
inline long futex_cmp_requeue(std::atomic<std::uint32_t>* from,
                              std::uint32_t expected, std::uint32_t wake,
                              std::uint32_t requeue_cap,
                              std::atomic<std::uint32_t>* to) noexcept {
#if defined(__linux__)
  // val2 (the requeue cap) travels in the timeout slot, cast per the
  // futex(2) calling convention.
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(from),
                 FUTEX_CMP_REQUEUE_PRIVATE, wake,
                 reinterpret_cast<struct timespec*>(
                     static_cast<std::uintptr_t>(requeue_cap)),
                 reinterpret_cast<std::uint32_t*>(to), expected);
#else
  // No kernel queues to move: everyone is spinning anyway. Report
  // "nothing requeued"; the caller's wake path covers correctness.
  (void)wake;
  (void)requeue_cap;
  (void)to;
  // mo: acquire — portable-fallback recheck, as in futex_wait above.
  if (from->load(std::memory_order_acquire) != expected) return -1;
  return 0;
#endif
}

}  // namespace hemlock
