#include "runtime/timing.hpp"

namespace hemlock {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

double ops_per_sec(std::uint64_t ops, std::int64_t elapsed_ns) noexcept {
  if (elapsed_ns <= 0) return 0.0;
  return static_cast<double>(ops) / (static_cast<double>(elapsed_ns) * 1e-9);
}

}  // namespace hemlock
