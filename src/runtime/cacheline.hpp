// cacheline.hpp — cache-line geometry and padding utilities.
//
// Every contended word in this library is "sequestered" as the sole
// occupant of a cache line (paper §2.3: "to avoid false sharing we
// opted to sequester the Grant field as the sole occupant of a cache
// line"). MCS/CLH queue nodes are padded the same way so that baseline
// comparisons are fair, matching the paper's methodology.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hemlock {

/// Size, in bytes, of the destructive-interference unit we pad to.
/// 64 bytes on every platform this library targets (x86-64, aarch64
/// with 64B lines; on 128B-line parts 64B-aligned still avoids the
/// worst sharing and keeps Table 1 word-accounting comparable).
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T so it starts on its own cache line and no other object
/// shares its final line (alignas rounds sizeof up to a multiple of
/// the alignment). Used for contended atomics — Grant fields, lock
/// tails, barrier phases — and for keeping bulky shared state (e.g.
/// the moderate-contention workload's shared PRNG) off its
/// neighbours' lines.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;

  /// Construct the wrapped value in place.
  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  /// Access the wrapped value.
  T& get() noexcept { return value; }
  const T& get() const noexcept { return value; }
};

static_assert(sizeof(CacheAligned<long>) == kCacheLineSize);
static_assert(alignof(CacheAligned<long>) == kCacheLineSize);
static_assert(sizeof(CacheAligned<char[65]>) == 2 * kCacheLineSize);

/// Number of cache lines an object of `bytes` bytes spans when
/// line-aligned. Used by lock_traits to report Table 1 style space.
constexpr std::size_t lines_for(std::size_t bytes) noexcept {
  return (bytes + kCacheLineSize - 1) / kCacheLineSize;
}

/// Number of machine words (8 bytes) in `bytes`, rounded up. Table 1
/// in the paper reports lock footprints in words.
constexpr std::size_t words_for(std::size_t bytes) noexcept {
  return (bytes + sizeof(void*) - 1) / sizeof(void*);
}

}  // namespace hemlock
