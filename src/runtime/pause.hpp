// pause.hpp — busy-wait pacing primitives.
//
// The paper's busy-wait loops all use the Intel PAUSE instruction
// (§5: "All lock busy-wait loops used the Intel PAUSE instruction").
// cpu_relax() is the portable equivalent. SpinWait adds an optional
// spin-then-yield escalation used by tests so that heavily
// oversubscribed schedules cannot livelock; benchmarks use bare
// cpu_relax() to match the paper.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#if defined(__linux__)
#include <sched.h>
#endif

namespace hemlock {

/// One polite busy-wait beat: de-pipelines the spin loop, reduces
/// power, and on hyperthreaded cores yields issue slots to the
/// sibling (which may be the lock owner).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // mo: compiler-only fence — keeps the spin loop from being
  // collapsed on architectures without a pause hint; no HW ordering.
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Surrender the CPU to the scheduler. Used by SpinWait's escalation
/// tier, never on benchmark fast paths.
inline void cpu_yield() noexcept {
#if defined(__linux__)
  sched_yield();
#endif
}

/// Escalating waiter: spins with cpu_relax() for `spin_limit`
/// iterations, then starts interleaving sched_yield() so that waiting
/// threads make progress even when the machine is oversubscribed
/// (more runnable threads than logical CPUs — the SPARC experiments
/// in §5.2 run up to 512 threads in exactly this regime).
class SpinWait {
 public:
  explicit SpinWait(std::uint32_t spin_limit = kDefaultSpinLimit) noexcept
      : spin_limit_(spin_limit) {}

  /// One wait beat; call inside the poll loop.
  void wait() noexcept {
    if (iterations_ < spin_limit_) {
      ++iterations_;
      cpu_relax();
    } else {
      cpu_yield();
    }
  }

  /// Restart the escalation schedule (call after observing progress).
  void reset() noexcept { iterations_ = 0; }

  /// How many beats have elapsed since the last reset.
  std::uint64_t iterations() const noexcept { return iterations_; }

  static constexpr std::uint32_t kDefaultSpinLimit = 4096;

 private:
  std::uint32_t spin_limit_;
  std::uint64_t iterations_ = 0;
};

}  // namespace hemlock
