// barrier.hpp — sense-reversing centralized barrier.
//
// Benchmark threads must begin their measured loops simultaneously;
// staggered starts would let early threads bank uncontended
// iterations and distort the contention curves (Figures 2-9). A
// sense-reversing barrier is reusable across rounds with no reset
// step, which the multi-round median-of-N runner relies on.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/cacheline.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// Reusable centralized barrier for a fixed party count.
/// Not on any measured path: used only at phase boundaries.
class SpinBarrier {
 public:
  /// `parties` is the number of threads that must arrive per phase.
  explicit SpinBarrier(std::uint32_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all parties have arrived at this phase.
  void arrive_and_wait() noexcept {
    // mo: relaxed — our own sense from the previous phase; the
    // acq_rel arrival below does the synchronization.
    const bool my_sense = !sense_.value.load(std::memory_order_relaxed);
    // mo: acq_rel arrival — release publishes this party's pre-barrier
    // work, acquire (on the last arriver) pulls in everyone else's.
    if (remaining_.value.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: re-arm the count, then flip the sense to
      // release the cohort. Release ordering publishes the re-armed
      // count before waiters can start the next phase.
      // mo: relaxed re-arm, then release sense flip — the release
      // publishes the re-armed count before waiters start phase N+1.
      remaining_.value.store(parties_, std::memory_order_relaxed);
      sense_.value.store(my_sense, std::memory_order_release);
    } else {
      SpinWait waiter;
      // mo: acquire — pairs with the last arriver's release flip.
      while (sense_.value.load(std::memory_order_acquire) != my_sense) {
        waiter.wait();
      }
    }
  }

  /// Party count this barrier was built for.
  std::uint32_t parties() const noexcept { return parties_; }

 private:
  std::uint32_t parties_;
  CacheAligned<std::atomic<std::uint32_t>> remaining_;
  CacheAligned<std::atomic<bool>> sense_{false};
};

}  // namespace hemlock
