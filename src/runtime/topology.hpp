// topology.hpp — CPU topology discovery.
//
// The paper reports results across three machines (72-CPU Intel X5-2,
// 512-CPU SPARC T7-2, 256-CPU AMD EPYC). The bench harness uses the
// discovered topology to pick default thread sweeps (1..2x logical
// CPUs, so the oversubscribed regime of Figures 4-7 is exercised) and
// EXPERIMENTS.md records the host the numbers came from.
#pragma once

#include <cstdint>
#include <string>

namespace hemlock {

/// Summary of the host's processor layout.
struct Topology {
  std::uint32_t logical_cpus = 1;   ///< schedulable hardware threads
  std::uint32_t physical_cores = 1; ///< distinct cores (logical/SMT)
  std::uint32_t sockets = 1;        ///< physical packages
  std::uint32_t smt_ways = 1;       ///< logical CPUs per core
  std::string model_name;           ///< e.g. "Intel(R) Xeon(R) ..."

  /// Human-readable one-liner for bench headers.
  std::string describe() const;
};

/// Probe /proc/cpuinfo (Linux) with std::thread::hardware_concurrency
/// as fallback. Cached after the first call; thread-safe.
const Topology& topology();

}  // namespace hemlock
