// governor.hpp — the runtime contention governor for the waiting-tier
// subsystem.
//
// The paper's CTR waiting policy (§2.1) assumes a dedicated core per
// contender: "back-off in the busy-waiting loop is not useful". That
// assumption fails on oversubscribed hosts — through the LD_PRELOAD
// shim, a FIFO queue lock whose next owner has been preempted convoys
// at scheduler speed (one timeslice per hand-off). The governor is the
// process-wide sensor that decides *how* waiters should wait when the
// paper's regime does not hold: it compares the machine's CPU budget
// (nproc) against the number of threads currently inside an escalated
// waiting loop and recommends one of three tiers:
//
//   kSpin  — contenders fit the CPUs: busy-wait, paper-faithful.
//   kYield — mild oversubscription: interleave sched_yield so the
//            owner (or the next owner) can run.
//   kPark  — heavy oversubscription: sleep in the kernel via futex
//            and let the hand-off store wake the successor.
//
// The GovernedWaiting policy (core/waiting.hpp) consults tier() each
// escalation round; the fixed-tier policies use the governor only for
// the per-lock (address-bucketed) parked census that gates hand-off
// wakeups on the published word. The thresholds
// live in classify(), a pure function, so they are unit-testable
// without actually oversubscribing the test host (tests/test_governor).
#pragma once

#include <atomic>
#include <cstdint>

namespace hemlock {

/// Waiting tiers, in escalation order.
enum class WaitTier : std::uint8_t { kSpin = 0, kYield = 1, kPark = 2 };

/// Canonical tier names — the HEMLOCK_WAIT vocabulary and the factory
/// variant suffixes ("mcs-park" hosts the kPark tier).
constexpr const char* wait_tier_name(WaitTier t) noexcept {
  switch (t) {
    case WaitTier::kSpin: return "spin";
    case WaitTier::kYield: return "yield";
    case WaitTier::kPark: return "park";
  }
  return "?";
}

/// Parse a tier name ("spin" | "yield" | "park"). Returns false —
/// leaving *out untouched — for anything else (including nullptr).
bool parse_wait_tier(const char* s, WaitTier* out) noexcept;

/// Process-wide waiting-tier sensor. All counters are relaxed atomics:
/// they are advisory statistics that pick a waiting strategy, never
/// synchronization. Safe to consult from inside any lock's wait loop
/// (no allocation, no internal locking — this code runs inside the
/// interposition shim where a malloc could deadlock).
class ContentionGovernor {
 public:
  /// The process-wide governor. Reads HEMLOCK_WAIT once at first use:
  /// a valid tier name pins tier() for the whole process (the same
  /// override the shim applies by re-selecting the lock variant).
  static ContentionGovernor& instance() noexcept;

  /// The escalation rule, as a pure function of (CPU budget, live
  /// escalated waiters). `waiters + 1` approximates the runnable
  /// contenders (the waiters plus the owner they wait for):
  ///   runnable <= cpus      -> kSpin   (the paper's dedicated-core regime)
  ///   runnable <= 2 * cpus  -> kYield  (mild oversubscription)
  ///   otherwise             -> kPark   (spinning would starve the owner)
  static WaitTier classify(std::uint32_t cpus,
                           std::uint32_t waiters) noexcept {
    if (cpus == 0) cpus = 1;
    const std::uint32_t runnable = waiters + 1;
    if (runnable <= cpus) return WaitTier::kSpin;
    if (runnable <= 2 * cpus) return WaitTier::kYield;
    return WaitTier::kPark;
  }

  /// The currently recommended tier: the forced tier if one is pinned,
  /// else classify(nproc, live escalated waiters). Two relaxed loads —
  /// cheap enough to call every escalation round.
  WaitTier tier() noexcept {
    // mo: relaxed — advisory census reads; the tier choice is a
    // strategy hint, never synchronization (class comment).
    const std::uint8_t f = forced_.load(std::memory_order_relaxed);
    if (f != kAuto) return static_cast<WaitTier>(f);
    // mo: relaxed — advisory census read, as above.
    return classify(cpus_, waiters_.load(std::memory_order_relaxed));
  }

  /// Waiter census: a thread entering/leaving an escalated waiting
  /// loop (past the doorstep spin phase). Feeds classify().
  void begin_wait() noexcept {
    // mo: relaxed — advisory census; see tier().
    waiters_.fetch_add(1, std::memory_order_relaxed);
  }
  void end_wait() noexcept {
    // mo: relaxed — advisory census; see tier().
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
  /// Live escalated waiters right now.
  std::uint32_t waiters() const noexcept {
    // mo: relaxed — advisory census; see tier().
    return waiters_.load(std::memory_order_relaxed);
  }

  /// Number of per-address parked-census buckets (power of two). The
  /// census used to be one process-global counter, which made every
  /// parking lock inflate every *other* lock's publish path: one lock
  /// with a sleeper forced the wake syscall onto all unrelated locks'
  /// hand-off stores (ROADMAP follow-up). Hashing the waited word's
  /// address into a small bucket array bounds that cross-talk to hash
  /// collisions; collisions only ever cause extra (harmless) wakes,
  /// never missed ones, because a parker and its publisher always
  /// agree on the bucket — they hash the same address.
  static constexpr std::size_t kParkBuckets = 64;

  /// The census bucket for a waited word, exposed for tests. Drops the
  /// word-alignment bits, then folds higher bits in so arrays of locks
  /// (stride = one cache line or one pthread_mutex_t) spread out.
  static std::size_t park_bucket(const void* addr) noexcept {
    auto p = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    return static_cast<std::size_t>(p ^ (p >> 6) ^ (p >> 12)) &
           (kParkBuckets - 1);
  }

  /// Diagnostic counters around the park / publish protocol. Pure
  /// statistics (never synchronization, all relaxed), always compiled
  /// in: they exist so the intermittent parked-census convoy under
  /// heavy preemption (ROADMAP item 6) leaves evidence — and so the
  /// telemetry exporter can report the wake-gate economy. Distinct
  /// from the per-lock telemetry slabs, which attribute by lock; these
  /// attribute to the governor's own protocol branches.
  struct ParkDiag {
    /// futex_wake syscalls actually issued by publishers.
    std::atomic<std::uint64_t> wake_syscalls{0};
    /// Publishes that skipped the wake syscall because the parked
    /// census for the word's bucket read zero.
    std::atomic<std::uint64_t> wake_gate_skips{0};
    /// futex_wait calls that actually slept (census committed).
    std::atomic<std::uint64_t> park_sleeps{0};
    /// Returns from futex_wait (sleeps that ended — spurious or woken).
    std::atomic<std::uint64_t> park_wakeups{0};
    /// Park attempts aborted before the syscall because the re-check
    /// under the census found the awaited condition already satisfied
    /// (the return-to-baseline retry window).
    std::atomic<std::uint64_t> baseline_retries{0};
    /// Governed-tier escalation transitions (round tier changed).
    std::atomic<std::uint64_t> escalations{0};
    /// Racy-max high-water of each bucket's parked census.
    std::atomic<std::uint32_t> census_high[kParkBuckets]{};
  };

  /// The process-wide diagnostic counters (see ParkDiag).
  ParkDiag& diag() noexcept { return diag_; }

  /// Parked census: a thread about to sleep in futex_wait on `addr` /
  /// back from it. Publishers of the same word read parked(addr)
  /// (after a seq_cst fence) to skip the wake syscall when nobody can
  /// possibly be sleeping on it.
  void begin_park(const void* addr) noexcept {
    const std::size_t b = park_bucket(addr);
    // mo: relaxed — the parker's seq_cst fence before sleeping (and
    // the publisher's before reading) order the census; see
    // waiting.hpp's park_round/publish_and_wake Dekker pair.
    const std::uint32_t now =
        parked_[b].fetch_add(1, std::memory_order_relaxed) + 1;
    // mo: relaxed — racy max of a diagnostic high-water (same idiom as
    // LockProfiler::bump_max).
    std::uint32_t cur = diag_.census_high[b].load(std::memory_order_relaxed);
    while (now > cur &&
           !diag_.census_high[b].compare_exchange_weak(
               cur, now, std::memory_order_relaxed)) {  // mo: ditto
    }
  }
  void end_park(const void* addr) noexcept {
    // mo: relaxed — census decrement; an extra wake is harmless.
    parked_[park_bucket(addr)].fetch_sub(1, std::memory_order_relaxed);
  }
  /// Threads parked (or committing to park) on addr's bucket right now.
  std::uint32_t parked(const void* addr) const noexcept {
    // mo: relaxed — the caller's seq_cst fence (publish_and_wake)
    // supplies the store->load ordering this gate needs.
    return parked_[park_bucket(addr)].load(std::memory_order_relaxed);
  }
  /// Process-wide parked total (diagnostics and census-balance tests).
  std::uint32_t parked_total() const noexcept {
    std::uint32_t sum = 0;
    // mo: relaxed — diagnostic sum; no ordering implied.
    for (const auto& b : parked_) sum += b.load(std::memory_order_relaxed);
    return sum;
  }

  /// Pin tier() to `t` regardless of the census (tests, embedders).
  void force(WaitTier t) noexcept {
    // mo: relaxed — advisory pin; waiters pick it up on their next
    // escalation round.
    forced_.store(static_cast<std::uint8_t>(t), std::memory_order_relaxed);
  }
  /// Return tier() to automatic classification.
  void clear_force() noexcept {
    forced_.store(kAuto, std::memory_order_relaxed);  // mo: as force()
  }
  /// True when a tier is pinned.
  bool forced() const noexcept {
    return forced_.load(std::memory_order_relaxed) != kAuto;  // mo: advisory
  }

  /// The CPU budget classify() runs against (sampled once, at
  /// construction, via sysconf — no allocation, no locking).
  std::uint32_t cpus() const noexcept { return cpus_; }

 private:
  ContentionGovernor() noexcept;  // samples nproc, applies HEMLOCK_WAIT

  static constexpr std::uint8_t kAuto = 0xFF;

  std::uint32_t cpus_ = 1;
  std::atomic<std::uint32_t> waiters_{0};
  /// Per-address-bucket parked censuses (see park_bucket). Packed, not
  /// cache-padded: these words are touched only on park/unpark and on
  /// contended publishes — paths already paying a syscall.
  std::atomic<std::uint32_t> parked_[kParkBuckets]{};
  std::atomic<std::uint8_t> forced_{kAuto};
  ParkDiag diag_;
};

}  // namespace hemlock
