// timing.hpp — monotonic time sources for the measurement harness.
//
// Benchmarks run for a wall-clock interval and report aggregate
// iterations (paper §5.1: "At the end of a 10 second measurement
// interval the benchmark reports the total number of aggregate
// iterations"). Timed loops poll a cached deadline flag rather than
// calling the clock per iteration, so timing cost stays off the
// measured path.
#pragma once

#include <chrono>
#include <cstdint>

namespace hemlock {

using Clock = std::chrono::steady_clock;

/// Current monotonic time in nanoseconds.
std::int64_t now_ns() noexcept;

/// Simple interval stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(now_ns()) {}

  /// Restart the interval at now.
  void reset() noexcept { start_ = now_ns(); }

  /// Nanoseconds since construction / last reset.
  std::int64_t elapsed_ns() const noexcept { return now_ns() - start_; }

  /// Seconds since construction / last reset.
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::int64_t start_;
};

/// Throughput helper: operations per second given a count and an
/// elapsed interval; returns 0 for degenerate intervals.
double ops_per_sec(std::uint64_t ops, std::int64_t elapsed_ns) noexcept;

}  // namespace hemlock
