// prng.hpp — fast pseudo-random number generators for workloads.
//
// The paper's moderate-contention workload (§5.1, Figure 3) steps C++
// std::mt19937 generators; the benchmarks use std::mt19937 directly
// for fidelity. Everything else in the harness (key generation,
// random lock selection in the multi-waiting benchmark, test
// schedules) uses the cheaper generators here so PRNG cost does not
// distort lock measurements.
#pragma once

#include <cstdint>

namespace hemlock {

/// SplitMix64 (Steele, Lea, Flood 2014). Stateless-feeling stream
/// stepper; primary use is seeding Xoshiro streams so that per-thread
/// generators are decorrelated.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** (Blackman & Vigna 2018): 4x64-bit state, excellent
/// statistical quality, ~1ns/step. Satisfies UniformRandomBitGenerator
/// so it composes with <random> distributions when needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 per the reference implementation's guidance.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift
  /// rejection method; bound must be nonzero.
  std::uint32_t below(std::uint32_t bound) noexcept {
    std::uint64_t x = next() & 0xFFFFFFFFULL;
    std::uint64_t m = x * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        x = next() & 0xFFFFFFFFULL;
        m = x * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Unbiased integer in [0, bound) for 64-bit bounds (key spaces can
  /// exceed UINT32_MAX); same Lemire construction widened to 128-bit.
  std::uint64_t below64(std::uint64_t bound) noexcept {
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace hemlock
