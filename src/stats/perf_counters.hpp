// perf_counters.hpp — optional live hardware-counter readings.
//
// The paper's Table 2 measures offcore traffic with `perf stat`
// (offcore_requests.all_data_rd + offcore_requests.demand_rfo,
// footnote 10). Raw offcore events are model-specific, so this
// reader exposes the architecturally generic cache events
// (cache-references / cache-misses / LLC loads+stores), which track
// the same coherence traffic directionally. Containers and VMs
// frequently disallow perf_event_open; everything here degrades
// gracefully to "unavailable" (and the coherence simulator remains
// Table 2's primary reproduction path — see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hemlock {

/// One live perf counter (process-wide, all CPUs of this process).
class PerfCounter {
 public:
  /// Generic event selector.
  enum class Event {
    kCacheReferences,
    kCacheMisses,
    kInstructions,
    kCycles,
  };

  /// Open the counter; available() reports success.
  explicit PerfCounter(Event event);
  ~PerfCounter();
  PerfCounter(const PerfCounter&) = delete;
  PerfCounter& operator=(const PerfCounter&) = delete;

  /// True when the kernel granted the event.
  bool available() const noexcept { return fd_ >= 0; }

  /// Zero and start counting.
  void start() noexcept;
  /// Stop counting.
  void stop() noexcept;
  /// Current value (0 when unavailable).
  std::uint64_t read() const noexcept;

  /// The event's human-readable name.
  const char* name() const noexcept;

 private:
  Event event_;
  int fd_ = -1;
};

/// Convenience: run `fn` with cache-references + cache-misses armed;
/// returns {references, misses, available}. When the PMU is
/// inaccessible, runs fn anyway and reports available == false.
struct CacheTrafficSample {
  std::uint64_t references = 0;
  std::uint64_t misses = 0;
  bool available = false;
};

template <typename Fn>
CacheTrafficSample sample_cache_traffic(Fn&& fn) {
  PerfCounter refs(PerfCounter::Event::kCacheReferences);
  PerfCounter miss(PerfCounter::Event::kCacheMisses);
  CacheTrafficSample out;
  out.available = refs.available() && miss.available();
  refs.start();
  miss.start();
  fn();
  refs.stop();
  miss.stop();
  out.references = refs.read();
  out.misses = miss.read();
  return out;
}

}  // namespace hemlock
