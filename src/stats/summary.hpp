// summary.hpp — run-to-run aggregation for benchmark results.
//
// The paper reports "the median of 7 independent runs" (§5.1) and
// "the median of 5 runs" (§5.4). Summary collects per-run scores and
// exposes exactly those statistics, plus spread measures used by
// EXPERIMENTS.md to qualify reproduction confidence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hemlock {

/// Accumulates per-run scalar scores (throughput, steps/s, ...).
class Summary {
 public:
  /// Add one run's score.
  void add(double value) { values_.push_back(value); }

  /// Number of runs recorded.
  std::size_t runs() const noexcept { return values_.size(); }

  /// Median (the paper's headline statistic). 0 if empty.
  double median() const;
  /// Smallest recorded score.
  double min() const;
  /// Largest recorded score.
  double max() const;
  /// Arithmetic mean.
  double mean() const;
  /// Sample standard deviation (0 for fewer than two runs).
  double stddev() const;
  /// Relative spread: (max-min)/median; 0 if empty.
  double spread() const;

  /// All scores, insertion order.
  const std::vector<double>& values() const noexcept { return values_; }

  /// "median=… (n=…, spread=…%)" one-liner.
  std::string describe() const;

 private:
  std::vector<double> values_;
};

}  // namespace hemlock
