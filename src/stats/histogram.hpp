// histogram.hpp — log-linear latency histogram.
//
// Used by the latency benches to report acquire/release and handover
// latency distributions (the paper's Figure 2 single-thread point is
// a latency measurement; we extend it with percentiles). Log-linear
// bucketing (à la HdrHistogram): values are grouped by power-of-two
// magnitude, each magnitude split into a fixed number of linear
// sub-buckets, giving bounded relative error across nanoseconds to
// seconds with a few KB of counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hemlock {

/// Fixed-range log-linear histogram of non-negative 64-bit values.
/// Thread-compatible (callers serialize or keep one per thread and
/// merge).
class Histogram {
 public:
  /// `sub_bucket_bits` linear sub-buckets per power of two (default
  /// 32 sub-buckets → ≤3.1% relative error).
  explicit Histogram(unsigned sub_bucket_bits = 5);

  /// Record one value.
  void record(std::uint64_t value) noexcept;
  /// Record `count` occurrences of value.
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;

  /// Merge another histogram (same geometry) into this one.
  void merge(const Histogram& other);

  /// Total recorded count.
  std::uint64_t count() const noexcept { return total_; }
  /// Smallest recorded value (0 if empty).
  std::uint64_t min() const noexcept { return total_ ? min_ : 0; }
  /// Largest recorded value.
  std::uint64_t max() const noexcept { return max_; }
  /// Arithmetic mean of recorded values (bucket-midpoint approximation).
  double mean() const noexcept;

  /// Value at quantile q in [0,1] (bucket upper-bound approximation).
  std::uint64_t quantile(double q) const noexcept;

  /// "p50=… p99=… max=…" one-liner for bench output.
  std::string summary() const;

  /// Remove all recordings.
  void reset() noexcept;

 private:
  std::size_t bucket_index(std::uint64_t value) const noexcept;
  std::uint64_t bucket_upper(std::size_t index) const noexcept;

  unsigned sub_bits_;
  std::uint64_t sub_count_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace hemlock
