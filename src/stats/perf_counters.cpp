#include "stats/perf_counters.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace hemlock {

#if defined(__linux__)

namespace {

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

std::uint64_t config_for(PerfCounter::Event e) {
  switch (e) {
    case PerfCounter::Event::kCacheReferences:
      return PERF_COUNT_HW_CACHE_REFERENCES;
    case PerfCounter::Event::kCacheMisses:
      return PERF_COUNT_HW_CACHE_MISSES;
    case PerfCounter::Event::kInstructions:
      return PERF_COUNT_HW_INSTRUCTIONS;
    case PerfCounter::Event::kCycles:
      return PERF_COUNT_HW_CPU_CYCLES;
  }
  return PERF_COUNT_HW_CACHE_MISSES;
}

}  // namespace

PerfCounter::PerfCounter(Event event) : event_(event) {
  perf_event_attr attr{};
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config_for(event);
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count child threads too
  // pid=0, cpu=-1: this process, any CPU.
  fd_ = static_cast<int>(perf_event_open(&attr, 0, -1, -1, 0));
}

PerfCounter::~PerfCounter() {
  if (fd_ >= 0) close(fd_);
}

void PerfCounter::start() noexcept {
  if (fd_ < 0) return;
  ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
  ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
}

void PerfCounter::stop() noexcept {
  if (fd_ < 0) return;
  ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
}

std::uint64_t PerfCounter::read() const noexcept {
  if (fd_ < 0) return 0;
  std::uint64_t value = 0;
  if (::read(fd_, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

#else  // !__linux__

PerfCounter::PerfCounter(Event event) : event_(event) {}
PerfCounter::~PerfCounter() = default;
void PerfCounter::start() noexcept {}
void PerfCounter::stop() noexcept {}
std::uint64_t PerfCounter::read() const noexcept { return 0; }

#endif

const char* PerfCounter::name() const noexcept {
  switch (event_) {
    case Event::kCacheReferences: return "cache-references";
    case Event::kCacheMisses: return "cache-misses";
    case Event::kInstructions: return "instructions";
    case Event::kCycles: return "cycles";
  }
  return "?";
}

}  // namespace hemlock
