#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace hemlock {

double Summary::median() const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return (n % 2 == 1) ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double Summary::min() const {
  return values_.empty() ? 0.0
                         : *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  return values_.empty() ? 0.0
                         : *std::max_element(values_.begin(), values_.end());
}

double Summary::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::spread() const {
  const double med = median();
  if (med == 0.0) return 0.0;
  return (max() - min()) / med;
}

std::string Summary::describe() const {
  std::ostringstream os;
  os.precision(4);
  os << "median=" << median() << " (n=" << runs()
     << ", spread=" << spread() * 100.0 << "%)";
  return os.str();
}

}  // namespace hemlock
