#include "stats/lock_profiler.hpp"

#include <algorithm>
#include <sstream>

#include "runtime/thread_rec.hpp"

namespace hemlock {

LockUsageProfile collect_lock_usage_profile() {
  LockUsageProfile p;
  ThreadRegistry::for_each([&](ThreadRec& rec) {
    // mo: relaxed — monotonic stats counters; no ordering implied.
    p.nested_acquires += rec.nested_acquires.load(std::memory_order_relaxed);
    p.max_locks_held = std::max(  // mo: relaxed stats, as above
        p.max_locks_held, rec.max_held.load(std::memory_order_relaxed));
    p.max_grant_waiters =  // mo: relaxed stats, as above
        std::max(p.max_grant_waiters,
                 rec.max_grant_waiters.load(std::memory_order_relaxed));
  });
  // Fold in threads that exited during/after the measured interval.
  const auto retired = ThreadRegistry::retired_profile();
  p.nested_acquires += retired.nested_acquires;
  p.max_locks_held = std::max(p.max_locks_held, retired.max_held);
  p.max_grant_waiters = std::max(p.max_grant_waiters,
                                 retired.max_grant_waiters);
  return p;
}

void reset_lock_usage_profile() { ThreadRegistry::reset_profile(); }

std::string LockUsageProfile::describe() const {
  std::ostringstream os;
  os << "lock-usage profile (cf. paper §5.4):\n"
     << "  lock() calls while already holding a lock : " << nested_acquires
     << "\n"
     << "  max locks held simultaneously by a thread : " << max_locks_held
     << "\n"
     << "  max threads waiting on any one Grant field: " << max_grant_waiters
     << "\n"
     << "  spinning locality                          : "
     << (purely_local() ? "purely local" : "multi-waiting observed") << "\n";
  return os.str();
}

}  // namespace hemlock
