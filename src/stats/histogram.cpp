#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace hemlock {

Histogram::Histogram(unsigned sub_bucket_bits)
    : sub_bits_(sub_bucket_bits), sub_count_(1ULL << sub_bucket_bits) {
  // 64 magnitudes x sub_count_ sub-buckets covers the full u64 range.
  buckets_.assign(64 * sub_count_, 0);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  if (value < sub_count_) return static_cast<std::size_t>(value);
  const unsigned magnitude = 63 - std::countl_zero(value);
  // Within this magnitude, the top sub_bits_ bits below the leading
  // bit select the linear sub-bucket.
  const unsigned shift = magnitude - sub_bits_;
  const std::uint64_t sub = (value >> shift) & (sub_count_ - 1);
  return static_cast<std::size_t>((magnitude - sub_bits_ + 1) * sub_count_ +
                                  sub);
}

std::uint64_t Histogram::bucket_upper(std::size_t index) const noexcept {
  const std::uint64_t band = index / sub_count_;
  const std::uint64_t sub = index % sub_count_;
  if (band == 0) return sub;
  const unsigned shift = static_cast<unsigned>(band - 1);
  return ((sub_count_ + sub + 1) << shift) - 1;
}

void Histogram::record(std::uint64_t value) noexcept { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t count) noexcept {
  if (count == 0) return;
  std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  buckets_[idx] += count;
  total_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::merge(const Histogram& other) {
  if (other.buckets_.size() != buckets_.size()) {
    // Geometry mismatch: re-record through the quantile-free path by
    // folding counts at bucket upper bounds (approximate but safe).
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      if (other.buckets_[i]) record_n(other.bucket_upper(i), other.buckets_[i]);
    }
    return;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double Histogram::mean() const noexcept {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << total_ << " min=" << min() << " p50=" << quantile(0.50)
     << " p90=" << quantile(0.90) << " p99=" << quantile(0.99)
     << " max=" << max_;
  return os.str();
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  min_ = ~0ULL;
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace hemlock
