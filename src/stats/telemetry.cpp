// telemetry.cpp — slab registry, handle table, flight recorder, and
// the HEMLOCK_STATS / HEMLOCK_TRACE / SIGUSR1 exporters.

#include "stats/telemetry.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "reclaim/epoch.hpp"
#include "runtime/governor.hpp"
#include "runtime/pause.hpp"
#include "runtime/thread_rec.hpp"

namespace hemlock::telemetry {

namespace {

/// Raw spinlock for the cold registry paths (same rationale as the
/// thread registry's: under the LD_PRELOAD shim a std::mutex here
/// would re-enter the interposed surface).
class TmSpinLock {
 public:
  void lock() noexcept {
    // mo: acquire TAS — pairs with unlock's release so the prior
    // holder's table edits are visible.
    while (flag_.exchange(1, std::memory_order_acquire) != 0) cpu_relax();
  }
  void unlock() noexcept {
    // mo: release — publishes this holder's table edits.
    flag_.store(0, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

struct TmGuard {
  explicit TmGuard(TmSpinLock& l) : lock(l) { lock.lock(); }
  ~TmGuard() { lock.unlock(); }
  TmSpinLock& lock;
};

/// Condvar-counter source registered by the interpose layer (the
/// stats layer cannot see ShimCond itself).
std::atomic<CondCounters (*)()> g_cond_source{nullptr};

}  // namespace

void set_cond_source(CondCounters (*source)()) {
  // mo: release publish / acquire read at use — the source function's
  // static state is set up before registration.
  g_cond_source.store(source, std::memory_order_release);
}

#if HEMLOCK_TELEMETRY_ENABLED

namespace {

// ---------------------------------------------------------------------
// Handle table.
// ---------------------------------------------------------------------

constexpr std::size_t kNameBytes = 48;

struct HandleEntry {
  bool live = false;
  std::uint32_t refs = 0;
  char name[kNameBytes] = {};
};

TmSpinLock g_handle_mu;
HandleEntry g_handles[kMaxHandles];  // slot 0 = "(unattributed)"

/// Counters folded in from exited threads, indexed like a slab.
/// Guarded by g_fold_mu (deregistration holds the thread-registry
/// lock when folding; collect() takes the locks strictly one at a
/// time, so the orders never nest into a cycle).
struct RetiredSlot {
  std::uint64_t acquires = 0, contended = 0, try_failures = 0, parks = 0,
                wakes = 0, escalations = 0, shared_acquires = 0;
  std::uint64_t wait_hist[kHistBuckets] = {};
  std::uint64_t hold_hist[kHistBuckets] = {};
};

TmSpinLock g_fold_mu;
RetiredSlot g_retired[kMaxHandles];

/// Shared fallback slab for hooks that fire after the calling
/// thread's ThreadRec was torn down (thread_local destructor order).
/// Cross-thread racy, but these are relaxed statistics.
Slab g_late_slab;
thread_local bool t_slab_dead = false;

/// Zero one slot id everywhere: retired fold + every live slab.
void zero_slot_everywhere(std::uint16_t id) {
  {
    TmGuard g(g_fold_mu);
    g_retired[id] = RetiredSlot{};
  }
  ThreadRegistry::for_each([id](ThreadRec& rec) {
    TmSlot& s = rec.telemetry_slab.slots[id];
    // mo: relaxed — stats reset; concurrent owner increments are racy
    // by the same contract as ThreadRegistry::reset_profile.
    s.acquires.store(0, std::memory_order_relaxed);
    s.contended.store(0, std::memory_order_relaxed);
    s.try_failures.store(0, std::memory_order_relaxed);
    s.parks.store(0, std::memory_order_relaxed);
    s.wakes.store(0, std::memory_order_relaxed);
    s.escalations.store(0, std::memory_order_relaxed);
    s.shared_acquires.store(0, std::memory_order_relaxed);
    for (unsigned b = 0; b < kHistBuckets; ++b) {
      s.wait_hist[b].store(0, std::memory_order_relaxed);  // mo: stats reset
      s.hold_hist[b].store(0, std::memory_order_relaxed);  // mo: stats reset
    }
  });
  TmSlot& late = g_late_slab.slots[id];
  late.acquires.store(0, std::memory_order_relaxed);  // mo: stats reset
  late.contended.store(0, std::memory_order_relaxed);  // mo: stats reset
  late.try_failures.store(0, std::memory_order_relaxed);  // mo: stats reset
  late.parks.store(0, std::memory_order_relaxed);  // mo: stats reset
  late.wakes.store(0, std::memory_order_relaxed);  // mo: stats reset
  late.escalations.store(0, std::memory_order_relaxed);  // mo: stats reset
  late.shared_acquires.store(0, std::memory_order_relaxed);  // mo: stats reset
  for (unsigned b = 0; b < kHistBuckets; ++b) {
    late.wait_hist[b].store(0, std::memory_order_relaxed);  // mo: stats reset
    late.hold_hist[b].store(0, std::memory_order_relaxed);  // mo: stats reset
  }
}

}  // namespace

TelemetryHandle register_handle(std::string_view name) noexcept {
  if (name.empty()) return {};
  std::uint16_t claimed = 0;
  {
    TmGuard g(g_handle_mu);
    // Refcount an existing live entry with the same name.
    for (std::uint16_t i = 1; i < kMaxHandles; ++i) {
      HandleEntry& e = g_handles[i];
      if (e.live && name == std::string_view(e.name)) {
        ++e.refs;
        return {i};
      }
    }
    for (std::uint16_t i = 1; i < kMaxHandles; ++i) {
      HandleEntry& e = g_handles[i];
      if (!e.live) {
        e.live = true;
        e.refs = 1;
        const std::size_t n = name.size() < kNameBytes - 1 ? name.size()
                                                          : kNameBytes - 1;
        std::memcpy(e.name, name.data(), n);
        e.name[n] = '\0';
        claimed = i;
        break;
      }
    }
  }
  if (claimed == 0) return {};  // table full: fall back to unattributed
  return {claimed};
}

void release_handle(TelemetryHandle h) noexcept {
  if (h.id == 0 || h.id >= kMaxHandles) return;
  {
    TmGuard g(g_handle_mu);
    HandleEntry& e = g_handles[h.id];
    if (!e.live || e.refs == 0) return;
    if (--e.refs != 0) return;
    // Last reference: keep the slot marked live until the counters are
    // scrubbed, so a racing register_handle cannot adopt a dirty slot.
  }
  zero_slot_everywhere(h.id);
  TmGuard g(g_handle_mu);
  g_handles[h.id].live = false;
  g_handles[h.id].name[0] = '\0';
}

std::string_view handle_name(TelemetryHandle h) noexcept {
  if (h.id == 0 || h.id >= kMaxHandles) return {};
  TmGuard g(g_handle_mu);
  return g_handles[h.id].live ? std::string_view(g_handles[h.id].name)
                              : std::string_view{};
}

Slab* slab_slow() noexcept {
  if (t_slab_dead) return &g_late_slab;
  Slab* s = &self().telemetry_slab;
  t_slab = s;
  return s;
}

void on_thread_exit(Slab& slab) noexcept {
  t_slab = nullptr;
  t_slab_dead = true;
  TmGuard g(g_fold_mu);
  for (std::uint16_t i = 0; i < kMaxHandles; ++i) {
    const TmSlot& s = slab.slots[i];
    RetiredSlot& r = g_retired[i];
    // mo: relaxed — the exiting thread's own monotonic counters; the
    // registry lock orders this fold against snapshot walks.
    r.acquires += s.acquires.load(std::memory_order_relaxed);
    r.contended += s.contended.load(std::memory_order_relaxed);  // mo: ditto
    r.try_failures += s.try_failures.load(std::memory_order_relaxed);  // mo: ditto
    r.parks += s.parks.load(std::memory_order_relaxed);  // mo: ditto
    r.wakes += s.wakes.load(std::memory_order_relaxed);  // mo: ditto
    r.escalations += s.escalations.load(std::memory_order_relaxed);  // mo: ditto
    r.shared_acquires += s.shared_acquires.load(std::memory_order_relaxed);  // mo: ditto
    for (unsigned b = 0; b < kHistBuckets; ++b) {
      r.wait_hist[b] += s.wait_hist[b].load(std::memory_order_relaxed);  // mo: ditto
      r.hold_hist[b] += s.hold_hist[b].load(std::memory_order_relaxed);  // mo: ditto
    }
  }
}

// ---------------------------------------------------------------------
// Waiting-layer hooks.
// ---------------------------------------------------------------------

namespace {
inline TmSlot& attr_slot() noexcept {
  return my_slab().slots[t_attr < kMaxHandles ? t_attr : 0];
}
}  // namespace

void wl_contended() noexcept {
  bump(attr_slot().contended);  // single-writer slab counter
  trace(Ev::kContended, t_attr);
}

void wl_park() noexcept {
  bump(attr_slot().parks);  // single-writer slab counter
  trace(Ev::kPark, t_attr);
}

void wl_wake() noexcept {
  bump(attr_slot().wakes);  // single-writer slab counter
  trace(Ev::kWake, t_attr);
}

void wl_escalate() noexcept {
  bump(attr_slot().escalations);  // single-writer slab counter
  trace(Ev::kEscalate, t_attr);
}

// ---------------------------------------------------------------------
// Flight recorder.
//
// Rings live in one lazily-allocated global pool (allocated on the
// loading thread when HEMLOCK_TRACE enables tracing — never on a lock
// path). A thread claims a ring on its first traced event and keeps
// it forever, so events from exited threads survive to the dump.
// ---------------------------------------------------------------------

namespace {

constexpr std::size_t kTraceCap = 4096;   ///< events per thread (ring)
constexpr std::size_t kTraceThreads = 64; ///< claimable rings per process

struct TraceRec {
  std::uint64_t ticks;
  std::uint32_t arg;
  std::uint16_t handle;
  std::uint8_t ev;
  std::uint8_t pad;
};
static_assert(sizeof(TraceRec) == 16);

struct TraceRing {
  TraceRec recs[kTraceCap];
  std::atomic<std::uint64_t> count{0};  ///< total appended (owner-written)
  std::uint32_t tid = 0;
};

TraceRing* g_trace_pool = nullptr;           ///< kTraceThreads rings
std::atomic<std::uint32_t> g_trace_claimed{0};
std::atomic<std::uint64_t> g_trace_dropped{0};
thread_local TraceRing* t_trace_ring = nullptr;
thread_local bool t_trace_saturated = false;

char g_trace_path[256] = {};
std::uint64_t g_cal_ticks0 = 0;
std::int64_t g_cal_ns0 = 0;

inline std::uint64_t trace_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(now_ns());
#endif
}

const char* ev_name(std::uint8_t ev) noexcept {
  switch (static_cast<Ev>(ev)) {
    case Ev::kAcquire: return "acquire";
    case Ev::kContended: return "contended";
    case Ev::kPark: return "park";
    case Ev::kWake: return "wake";
    case Ev::kEscalate: return "escalate";
    case Ev::kEpochAdvance: return "epoch-advance";
  }
  return "?";
}

}  // namespace

void trace_emit(Ev ev, std::uint16_t handle, std::uint32_t arg) noexcept {
  TraceRing* r = t_trace_ring;
  if (r == nullptr) {
    if (t_trace_saturated || g_trace_pool == nullptr) {
      // mo: relaxed — diagnostic drop counter.
      g_trace_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // mo: relaxed — slot claim; each thread claims a distinct index,
    // and the pool itself was published before g_trace_on was set.
    const std::uint32_t idx =
        g_trace_claimed.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kTraceThreads) {
      t_trace_saturated = true;
      g_trace_dropped.fetch_add(1, std::memory_order_relaxed);  // mo: stats
      return;
    }
    r = &g_trace_pool[idx];
    r->tid = idx;
    t_trace_ring = r;
  }
  // mo: relaxed owner read — only this thread writes count.
  const std::uint64_t i = r->count.load(std::memory_order_relaxed);
  r->recs[i % kTraceCap] = {trace_ticks(), arg, handle,
                            static_cast<std::uint8_t>(ev), 0};
  // mo: release — the record is complete before the dump walk (which
  // runs after threads quiesce, but release keeps the pairing honest).
  r->count.store(i + 1, std::memory_order_release);
}

namespace {

/// Dump the rings as Chrome trace-event JSON (instant events with
/// thread scope). Linear two-point TSC calibration: (ticks0, ns0) at
/// enable, (ticks1, ns1) here, spread over the program lifetime.
void trace_dump() {
  // mo: relaxed — flipping the switch off before the dump walk; any
  // concurrently-appended event is either seen via count or dropped.
  g_trace_on.store(false, std::memory_order_relaxed);
  if (g_trace_pool == nullptr || g_trace_path[0] == '\0') return;
  std::FILE* f = std::fopen(g_trace_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[hemlock-telemetry] cannot open HEMLOCK_TRACE=%s\n",
                 g_trace_path);
    return;
  }
  const std::uint64_t ticks1 = trace_ticks();
  const std::int64_t ns1 = now_ns();
  const double ns_per_tick =
      ticks1 > g_cal_ticks0
          ? static_cast<double>(ns1 - g_cal_ns0) /
                static_cast<double>(ticks1 - g_cal_ticks0)
          : 1.0;
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
  bool first = true;
  // mo: relaxed — pool claim count; threads are quiescing at exit and
  // a racing late claim only loses its (empty) ring.
  const std::uint32_t rings =
      std::min<std::uint32_t>(g_trace_claimed.load(std::memory_order_relaxed),
                              kTraceThreads);
  for (std::uint32_t ri = 0; ri < rings; ++ri) {
    TraceRing& r = g_trace_pool[ri];
    // mo: acquire — pairs with trace_emit's release so the records up
    // to `count` are fully written.
    const std::uint64_t total = r.count.load(std::memory_order_acquire);
    const std::uint64_t begin = total > kTraceCap ? total - kTraceCap : 0;
    for (std::uint64_t i = begin; i < total; ++i) {
      const TraceRec& rec = r.recs[i % kTraceCap];
      const double us =
          (static_cast<double>(g_cal_ns0) +
           static_cast<double>(rec.ticks - g_cal_ticks0) * ns_per_tick) /
          1000.0;
      char name[96];
      const std::string_view lock = handle_name({rec.handle});
      if (lock.empty()) {
        std::snprintf(name, sizeof(name), "%s", ev_name(rec.ev));
      } else {
        std::snprintf(name, sizeof(name), "%s %.*s", ev_name(rec.ev),
                      static_cast<int>(lock.size()), lock.data());
      }
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                   "\"pid\":%d,\"tid\":%u,\"args\":{\"arg\":%u}}",
                   first ? "" : ",\n", name, us, static_cast<int>(getpid()),
                   r.tid, rec.arg);
      first = false;
    }
  }
  // mo: relaxed — diagnostic counter.
  const std::uint64_t dropped = g_trace_dropped.load(std::memory_order_relaxed);
  std::fprintf(f,
               "%s{\"name\":\"hemlock-trace-dropped\",\"ph\":\"i\",\"s\":\"g\","
               "\"ts\":0,\"pid\":%d,\"tid\":0,\"args\":{\"dropped\":%" PRIu64
               "}}\n]}\n",
               first ? "" : ",\n", static_cast<int>(getpid()), dropped);
  std::fclose(f);
}

}  // namespace

#endif  // HEMLOCK_TELEMETRY_ENABLED

// ---------------------------------------------------------------------
// Snapshot / export.
// ---------------------------------------------------------------------

namespace {

GovernorTelemetry governor_snapshot() {
  auto& gov = ContentionGovernor::instance();
  auto& d = gov.diag();
  GovernorTelemetry g;
  g.cpus = gov.cpus();
  g.waiters = gov.waiters();
  g.parked_total = gov.parked_total();
  // mo: relaxed — diagnostic counters; see ParkDiag.
  g.wake_syscalls = d.wake_syscalls.load(std::memory_order_relaxed);
  g.wake_gate_skips = d.wake_gate_skips.load(std::memory_order_relaxed);  // mo: ditto
  g.park_sleeps = d.park_sleeps.load(std::memory_order_relaxed);  // mo: ditto
  g.park_wakeups = d.park_wakeups.load(std::memory_order_relaxed);  // mo: ditto
  g.baseline_retries = d.baseline_retries.load(std::memory_order_relaxed);  // mo: ditto
  g.escalations = d.escalations.load(std::memory_order_relaxed);  // mo: ditto
  for (std::size_t b = 0; b < ContentionGovernor::kParkBuckets; ++b) {
    // mo: relaxed — racy-max diagnostic high-water.
    const std::uint32_t hw = d.census_high[b].load(std::memory_order_relaxed);
    if (hw > g.census_high_water_max) {
      g.census_high_water_max = hw;
      g.census_high_water_bucket = static_cast<std::uint32_t>(b);
    }
  }
  return g;
}

EpochTelemetry epoch_snapshot() {
  const auto s = reclaim::EpochDomain::global().stats();
  return {s.epoch, s.pending, s.freed, s.advances, s.advance_blocked};
}

}  // namespace

Snapshot collect() {
  Snapshot snap;
  snap.governor = governor_snapshot();
  snap.epoch = epoch_snapshot();
  // mo: acquire — pairs with set_cond_source's release publish.
  if (auto* src = g_cond_source.load(std::memory_order_acquire)) {
    snap.cond = src();
    snap.cond_present = true;
  }
#if HEMLOCK_TELEMETRY_ENABLED
  struct Row {
    std::uint64_t c[7] = {};
    std::uint64_t wait[kHistBuckets] = {};
    std::uint64_t hold[kHistBuckets] = {};
  };
  std::vector<Row> rows(kMaxHandles);
  {
    TmGuard g(g_fold_mu);
    for (std::uint16_t i = 0; i < kMaxHandles; ++i) {
      const RetiredSlot& r = g_retired[i];
      Row& row = rows[i];
      row.c[0] = r.acquires;
      row.c[1] = r.contended;
      row.c[2] = r.try_failures;
      row.c[3] = r.parks;
      row.c[4] = r.wakes;
      row.c[5] = r.escalations;
      row.c[6] = r.shared_acquires;
      for (unsigned b = 0; b < kHistBuckets; ++b) {
        row.wait[b] = r.wait_hist[b];
        row.hold[b] = r.hold_hist[b];
      }
    }
  }
  const auto fold = [&rows](const Slab& slab) {
    for (std::uint16_t i = 0; i < kMaxHandles; ++i) {
      const TmSlot& s = slab.slots[i];
      Row& row = rows[i];
      // mo: relaxed — monotonic stats counters; racy-consistent
      // snapshot by design (exact once writers quiesce).
      row.c[0] += s.acquires.load(std::memory_order_relaxed);
      row.c[1] += s.contended.load(std::memory_order_relaxed);  // mo: ditto
      row.c[2] += s.try_failures.load(std::memory_order_relaxed);  // mo: ditto
      row.c[3] += s.parks.load(std::memory_order_relaxed);  // mo: ditto
      row.c[4] += s.wakes.load(std::memory_order_relaxed);  // mo: ditto
      row.c[5] += s.escalations.load(std::memory_order_relaxed);  // mo: ditto
      row.c[6] += s.shared_acquires.load(std::memory_order_relaxed);  // mo: ditto
      for (unsigned b = 0; b < kHistBuckets; ++b) {
        row.wait[b] += s.wait_hist[b].load(std::memory_order_relaxed);  // mo: ditto
        row.hold[b] += s.hold_hist[b].load(std::memory_order_relaxed);  // mo: ditto
      }
    }
  };
  ThreadRegistry::for_each(
      [&fold](ThreadRec& rec) { fold(rec.telemetry_slab); });
  fold(g_late_slab);

  for (std::uint16_t i = 0; i < kMaxHandles; ++i) {
    const Row& row = rows[i];
    LockTelemetry lt;
    lt.name = i == 0 ? "(unattributed)" : std::string(handle_name({i}));
    if (i != 0 && lt.name.empty()) lt.name = "(released)";
    lt.acquires = row.c[0];
    lt.contended = row.c[1];
    lt.try_failures = row.c[2];
    lt.parks = row.c[3];
    lt.wakes = row.c[4];
    lt.escalations = row.c[5];
    lt.shared_acquires = row.c[6];
    for (unsigned b = 0; b < kHistBuckets; ++b) {
      if (row.wait[b] != 0) lt.wait_ns.record_n(1ull << b, row.wait[b]);
      if (row.hold[b] != 0) lt.hold_ns.record_n(1ull << b, row.hold[b]);
    }
    if (!lt.empty()) snap.locks.push_back(std::move(lt));
  }
#endif  // HEMLOCK_TELEMETRY_ENABLED
  return snap;
}

void reset() {
#if HEMLOCK_TELEMETRY_ENABLED
  for (std::uint16_t i = 0; i < kMaxHandles; ++i) zero_slot_everywhere(i);
#endif
  auto& d = ContentionGovernor::instance().diag();
  // mo: relaxed — diagnostic reset; racing increments are racy anyway.
  d.wake_syscalls.store(0, std::memory_order_relaxed);
  d.wake_gate_skips.store(0, std::memory_order_relaxed);  // mo: ditto
  d.park_sleeps.store(0, std::memory_order_relaxed);  // mo: ditto
  d.park_wakeups.store(0, std::memory_order_relaxed);  // mo: ditto
  d.baseline_retries.store(0, std::memory_order_relaxed);  // mo: ditto
  d.escalations.store(0, std::memory_order_relaxed);  // mo: ditto
  for (std::size_t b = 0; b < ContentionGovernor::kParkBuckets; ++b) {
    d.census_high[b].store(0, std::memory_order_relaxed);  // mo: ditto
  }
}

namespace {

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_hist(std::string& out, const char* key, const Histogram& h) {
  out += '"';
  out += key;
  out += "\":{\"count\":";
  append_u64(out, h.count());
  out += ",\"p50\":";
  append_u64(out, h.quantile(0.50));
  out += ",\"p99\":";
  append_u64(out, h.quantile(0.99));
  out += ",\"max\":";
  append_u64(out, h.max());
  out += '}';
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::string out;
  out.reserve(2048);
  out += "{\"schema\":\"hemlock-telemetry-v1\",\"pid\":";
  append_u64(out, static_cast<std::uint64_t>(getpid()));
  out += ",\"locks\":[";
  bool first = true;
  for (const LockTelemetry& lt : snap.locks) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape_into(out, lt.name);
    out += "\",\"acquires\":";
    append_u64(out, lt.acquires);
    out += ",\"contended\":";
    append_u64(out, lt.contended);
    out += ",\"try_failures\":";
    append_u64(out, lt.try_failures);
    out += ",\"parks\":";
    append_u64(out, lt.parks);
    out += ",\"wakes\":";
    append_u64(out, lt.wakes);
    out += ",\"escalations\":";
    append_u64(out, lt.escalations);
    out += ",\"shared_acquires\":";
    append_u64(out, lt.shared_acquires);
    out += ',';
    append_hist(out, "wait_ns", lt.wait_ns);
    out += ',';
    append_hist(out, "hold_ns", lt.hold_ns);
    out += '}';
  }
  out += "],\"governor\":{\"cpus\":";
  append_u64(out, snap.governor.cpus);
  out += ",\"waiters\":";
  append_u64(out, snap.governor.waiters);
  out += ",\"parked\":";
  append_u64(out, snap.governor.parked_total);
  out += ",\"wake_syscalls\":";
  append_u64(out, snap.governor.wake_syscalls);
  out += ",\"wake_gate_skips\":";
  append_u64(out, snap.governor.wake_gate_skips);
  out += ",\"park_sleeps\":";
  append_u64(out, snap.governor.park_sleeps);
  out += ",\"park_wakeups\":";
  append_u64(out, snap.governor.park_wakeups);
  out += ",\"baseline_retries\":";
  append_u64(out, snap.governor.baseline_retries);
  out += ",\"escalations\":";
  append_u64(out, snap.governor.escalations);
  out += ",\"census_high_water\":{\"max\":";
  append_u64(out, snap.governor.census_high_water_max);
  out += ",\"bucket\":";
  append_u64(out, snap.governor.census_high_water_bucket);
  out += "}},\"epoch\":{\"epoch\":";
  append_u64(out, snap.epoch.epoch);
  out += ",\"pending\":";
  append_u64(out, snap.epoch.pending);
  out += ",\"freed\":";
  append_u64(out, snap.epoch.freed);
  out += ",\"advances\":";
  append_u64(out, snap.epoch.advances);
  out += ",\"advance_blocked\":";
  append_u64(out, snap.epoch.advance_blocked);
  out += '}';
  if (snap.cond_present) {
    out += ",\"cond\":{\"adopted\":";
    append_u64(out, snap.cond.adopted);
    out += ",\"waits\":";
    append_u64(out, snap.cond.waits);
    out += ",\"timeouts\":";
    append_u64(out, snap.cond.timeouts);
    out += ",\"signals\":";
    append_u64(out, snap.cond.signals);
    out += ",\"broadcasts\":";
    append_u64(out, snap.cond.broadcasts);
    out += ",\"requeued\":";
    append_u64(out, snap.cond.requeued);
    out += ",\"chain_wakes\":";
    append_u64(out, snap.cond.chain_wakes);
    out += '}';
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------
// No-allocation report (shared by the atexit dump and the SIGUSR1
// handler). snprintf into a bounded stack buffer + write(2) only.
// ---------------------------------------------------------------------

namespace {

struct FdSink {
  int fd;
  char buf[1024];
  void line(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0) {
      const auto len = static_cast<std::size_t>(n) < sizeof(buf)
                           ? static_cast<std::size_t>(n)
                           : sizeof(buf) - 1;
      (void)!write(fd, buf, len);
    }
  }
};

#if HEMLOCK_TELEMETRY_ENABLED
struct ReportRow {
  std::uint64_t c[7];
  std::uint64_t wait[kHistBuckets];
  std::uint64_t hold[kHistBuckets];
};
struct ReportState {
  ReportRow rows[kMaxHandles];
};

void fold_slab_into_report(const Slab& slab, ReportState* st) {
  for (std::uint16_t i = 0; i < kMaxHandles; ++i) {
    const TmSlot& s = slab.slots[i];
    ReportRow& row = st->rows[i];
    // mo: relaxed — monotonic stats counters; racy-consistent report.
    row.c[0] += s.acquires.load(std::memory_order_relaxed);
    row.c[1] += s.contended.load(std::memory_order_relaxed);  // mo: ditto
    row.c[2] += s.try_failures.load(std::memory_order_relaxed);  // mo: ditto
    row.c[3] += s.parks.load(std::memory_order_relaxed);  // mo: ditto
    row.c[4] += s.wakes.load(std::memory_order_relaxed);  // mo: ditto
    row.c[5] += s.escalations.load(std::memory_order_relaxed);  // mo: ditto
    row.c[6] += s.shared_acquires.load(std::memory_order_relaxed);  // mo: ditto
    for (unsigned b = 0; b < kHistBuckets; ++b) {
      row.wait[b] += s.wait_hist[b].load(std::memory_order_relaxed);  // mo: ditto
      row.hold[b] += s.hold_hist[b].load(std::memory_order_relaxed);  // mo: ditto
    }
  }
}

void fold_rec_into_report(ThreadRec& rec, void* ctx) {
  fold_slab_into_report(rec.telemetry_slab, static_cast<ReportState*>(ctx));
}

/// Approximate quantile over a log2 bucket array: the upper edge of
/// the bucket containing the q-th sample.
std::uint64_t bucket_quantile(const std::uint64_t* hist, double q) {
  std::uint64_t total = 0;
  for (unsigned b = 0; b < kHistBuckets; ++b) total += hist[b];
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kHistBuckets; ++b) {
    seen += hist[b];
    if (seen > rank) return (2ull << b) - 1;
  }
  return (2ull << (kHistBuckets - 1)) - 1;
}
#endif  // HEMLOCK_TELEMETRY_ENABLED

}  // namespace

void report_to_fd(int fd) {
  FdSink out{fd, {}};
  out.line("[hemlock-telemetry] pid %d\n", static_cast<int>(getpid()));
#if HEMLOCK_TELEMETRY_ENABLED
  static ReportState st;  // static: the SIGUSR1 handler's stack is small
  std::memset(&st, 0, sizeof(st));
  {
    TmGuard g(g_fold_mu);
    for (std::uint16_t i = 0; i < kMaxHandles; ++i) {
      const RetiredSlot& r = g_retired[i];
      ReportRow& row = st.rows[i];
      row.c[0] = r.acquires;
      row.c[1] = r.contended;
      row.c[2] = r.try_failures;
      row.c[3] = r.parks;
      row.c[4] = r.wakes;
      row.c[5] = r.escalations;
      row.c[6] = r.shared_acquires;
      for (unsigned b = 0; b < kHistBuckets; ++b) {
        row.wait[b] = r.wait_hist[b];
        row.hold[b] = r.hold_hist[b];
      }
    }
  }
  ThreadRegistry::for_each_raw(&fold_rec_into_report, &st);
  fold_slab_into_report(g_late_slab, &st);
  out.line("%-28s %10s %10s %8s %8s %8s %6s %8s %12s %12s\n", "lock",
           "acquires", "contended", "try-fail", "parks", "wakes", "escal",
           "shared", "wait-p99(ns)", "hold-p99(ns)");
  for (std::uint16_t i = 0; i < kMaxHandles; ++i) {
    const ReportRow& row = st.rows[i];
    std::uint64_t any = 0;
    for (std::uint64_t v : row.c) any |= v;
    if (any == 0) continue;
    char name[kNameBytes];
    if (i == 0) {
      std::snprintf(name, sizeof(name), "(unattributed)");
    } else {
      const std::string_view n = handle_name({i});
      if (n.empty()) {
        std::snprintf(name, sizeof(name), "(released #%u)", i);
      } else {
        std::snprintf(name, sizeof(name), "%.*s", static_cast<int>(n.size()),
                      n.data());
      }
    }
    out.line("%-28s %10" PRIu64 " %10" PRIu64 " %8" PRIu64 " %8" PRIu64
             " %8" PRIu64 " %6" PRIu64 " %8" PRIu64 " %12" PRIu64
             " %12" PRIu64 "\n",
             name, row.c[0], row.c[1], row.c[2], row.c[3], row.c[4], row.c[5],
             row.c[6], bucket_quantile(row.wait, 0.99),
             bucket_quantile(row.hold, 0.99));
  }
#endif  // HEMLOCK_TELEMETRY_ENABLED
  {
    auto& gov = ContentionGovernor::instance();
    auto& d = gov.diag();
    std::uint32_t hw_max = 0, hw_bucket = 0;
    for (std::size_t b = 0; b < ContentionGovernor::kParkBuckets; ++b) {
      // mo: relaxed — racy-max diagnostic high-water.
      const std::uint32_t hw = d.census_high[b].load(std::memory_order_relaxed);
      if (hw > hw_max) {
        hw_max = hw;
        hw_bucket = static_cast<std::uint32_t>(b);
      }
    }
    out.line("governor: cpus=%u waiters=%u parked=%u wake-syscalls=%" PRIu64
             " wake-gate-skips=%" PRIu64 " park-sleeps=%" PRIu64
             " park-wakeups=%" PRIu64 " baseline-retries=%" PRIu64
             " escalations=%" PRIu64 " census-high-water=%u (bucket %u)\n",
             gov.cpus(), gov.waiters(), gov.parked_total(),
             // mo: relaxed — diagnostic counters (ParkDiag contract).
             d.wake_syscalls.load(std::memory_order_relaxed),
             d.wake_gate_skips.load(std::memory_order_relaxed),
             d.park_sleeps.load(std::memory_order_relaxed),
             d.park_wakeups.load(std::memory_order_relaxed),
             d.baseline_retries.load(std::memory_order_relaxed),
             d.escalations.load(std::memory_order_relaxed), hw_max, hw_bucket);
  }
  {
    const auto e = reclaim::EpochDomain::global().stats();
    out.line("epoch: epoch=%" PRIu64 " pending=%" PRIu64 " freed=%" PRIu64
             " advances=%" PRIu64 " advance-blocked=%" PRIu64 "\n",
             e.epoch, e.pending, e.freed, e.advances, e.advance_blocked);
  }
  // mo: acquire — pairs with set_cond_source's release publish.
  if (auto* src = g_cond_source.load(std::memory_order_acquire)) {
    const CondCounters c = src();
    out.line("cond: adopted=%" PRIu64 " waits=%" PRIu64 " timeouts=%" PRIu64
             " signals=%" PRIu64 " broadcasts=%" PRIu64 " requeued=%" PRIu64
             " chain-wakes=%" PRIu64 "\n",
             c.adopted, c.waits, c.timeouts, c.signals, c.broadcasts,
             c.requeued, c.chain_wakes);
  }
}

// ---------------------------------------------------------------------
// Environment wiring: HEMLOCK_STATS, HEMLOCK_TRACE, SIGUSR1.
// ---------------------------------------------------------------------

namespace {

enum class StatsMode { kOff, kReport, kJson };
StatsMode g_stats_mode = StatsMode::kOff;
char g_stats_path[256] = {};

void stats_atexit() {
  if (g_stats_mode == StatsMode::kReport) {
    report_to_fd(STDERR_FILENO);
    return;
  }
  const std::string doc = to_json(collect());
  if (g_stats_path[0] != '\0') {
    if (std::FILE* f = std::fopen(g_stats_path, "w")) {
      std::fputs(doc.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      return;
    }
    std::fprintf(stderr, "[hemlock-telemetry] cannot open HEMLOCK_STATS path %s\n",
                 g_stats_path);
  }
  std::fputs(doc.c_str(), stderr);
  std::fputc('\n', stderr);
}

void sigusr1_handler(int) { report_to_fd(STDERR_FILENO); }

}  // namespace

void init_from_env() {
  static std::atomic<bool> once{false};
  // mo: relaxed — idempotence latch; init runs on the loading thread
  // before any competitor exists.
  if (once.exchange(true, std::memory_order_relaxed)) return;

  if (const char* stats = std::getenv("HEMLOCK_STATS");
      stats != nullptr && stats[0] != '\0') {
    std::string_view spec(stats);
    std::string_view mode = spec;
    if (const auto colon = spec.find(':'); colon != std::string_view::npos) {
      mode = spec.substr(0, colon);
      const std::string_view path = spec.substr(colon + 1);
      const std::size_t n = path.size() < sizeof(g_stats_path) - 1
                                ? path.size()
                                : sizeof(g_stats_path) - 1;
      std::memcpy(g_stats_path, path.data(), n);
      g_stats_path[n] = '\0';
    }
    if (mode == "report") {
      g_stats_mode = StatsMode::kReport;
    } else if (mode == "json") {
      g_stats_mode = StatsMode::kJson;
    } else {
      std::fprintf(stderr,
                   "[hemlock-telemetry] HEMLOCK_STATS=%s unrecognized "
                   "(want report|json[:path]); ignored\n",
                   stats);
    }
    if (g_stats_mode != StatsMode::kOff) {
      std::atexit(&stats_atexit);
      struct sigaction sa = {};
      sa.sa_handler = &sigusr1_handler;
      sigemptyset(&sa.sa_mask);
      sa.sa_flags = SA_RESTART;
      sigaction(SIGUSR1, &sa, nullptr);
    }
  }

#if HEMLOCK_TELEMETRY_ENABLED
  if (const char* trace = std::getenv("HEMLOCK_TRACE");
      trace != nullptr && trace[0] != '\0') {
    const std::size_t n = std::strlen(trace) < sizeof(g_trace_path) - 1
                              ? std::strlen(trace)
                              : sizeof(g_trace_path) - 1;
    std::memcpy(g_trace_path, trace, n);
    g_trace_path[n] = '\0';
    g_trace_pool = new TraceRing[kTraceThreads];
    g_cal_ticks0 = trace_ticks();
    g_cal_ns0 = now_ns();
    std::atexit(&trace_dump);
    // mo: release-ish not needed — the pool store above happens-before
    // any thread observes the flag via the loader's synchronization;
    // relaxed matches the hooks' relaxed reads.
    g_trace_on.store(true, std::memory_order_release);
  }
#endif
}

namespace {
struct EnvInit {
  EnvInit() { init_from_env(); }
};
EnvInit g_env_init;
}  // namespace

}  // namespace hemlock::telemetry
