// lock_profiler.hpp — aggregation of the §5.4 characterization.
//
// The paper: "Using an instrumented version of Hemlock we
// characterized the application behavior of LevelDB ... we found 24
// instances of calls to lock where a thread already held at least one
// other lock. ... The maximum number of locks held simultaneously by
// any thread was 2. The maximum number of threads waiting
// simultaneously on any Grant field was 1, thus the application
// enjoyed purely local spinning."
//
// The raw counters live on each ThreadRec (runtime/thread_rec.hpp)
// and are driven by LockProfiler hooks inside the Hemlock lock/unlock
// paths; this header aggregates them across the registry into exactly
// the three headline statistics above.
#pragma once

#include <cstdint>
#include <string>

namespace hemlock {

/// Snapshot of the profiling counters across all live threads.
struct LockUsageProfile {
  /// Total lock() calls made while the calling thread already held at
  /// least one other lock ("24 instances" in the paper's run).
  std::uint64_t nested_acquires = 0;
  /// Maximum number of locks held simultaneously by any thread ("2").
  std::uint32_t max_locks_held = 0;
  /// Maximum number of threads simultaneously waiting on any single
  /// Grant field — the multi-waiting degree ("1 ⇒ purely local
  /// spinning").
  std::uint32_t max_grant_waiters = 0;

  /// True when the profile implies purely local spinning (§5.4).
  bool purely_local() const noexcept { return max_grant_waiters <= 1; }

  /// Paper-style report block.
  std::string describe() const;
};

/// Aggregate the per-thread counters (LockProfiler must have been
/// enabled during the measured interval).
LockUsageProfile collect_lock_usage_profile();

/// Zero all per-thread counters (start of a measured interval).
void reset_lock_usage_profile();

}  // namespace hemlock
