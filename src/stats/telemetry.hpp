// telemetry.hpp — always-on per-lock runtime metrics and the opt-in
// flight recorder.
//
// The paper's §5.4 characterization ("24 nested acquires, max 2 locks
// held, max 1 Grant waiter") was only possible because Dice & Kogan
// ran an *instrumented* lock under LevelDB. This module makes our
// runtime answer the same questions about any live workload: every
// attribution point (AnyLock, the LD_PRELOAD shim families, the
// waiting tiers, the epoch domains) feeds per-thread counter slabs
// keyed by a small per-lock TelemetryHandle, and a registry-walking
// snapshot folds them — the same collect/merge shape as
// collect_lock_usage_profile().
//
// Cost model (the subsystem is always compiled in by default):
//  * Unattributed locks (handle id 0) pay one predicted branch per
//    hook — the id check — and nothing else.
//  * Attributed fast paths pay a handful of relaxed increments on a
//    thread-local cache line plus *sampled* wait/hold timing (one
//    clock pair every kSampleEvery-th acquisition), so the tax stays
//    a few nanoseconds per lock/unlock pair.
//  * Contended-path metrics (contended acquisitions, parks, wakes,
//    escalations) are counted from inside the waiting slow paths,
//    where a relaxed increment is invisible next to a syscall.
//  * -DHEMLOCK_TELEMETRY_DISABLED (CMake -DHEMLOCK_TELEMETRY=OFF)
//    compiles every hook to ((void)0); tools/check_telemetry_off.py
//    is the codegen tripwire proving no residue survives.
//
// The flight recorder is a fixed-size per-thread TSC-stamped event
// ring, enabled only via HEMLOCK_TRACE=<path>, dumped at exit as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
// Exporters: HEMLOCK_STATS=report|json[:path] atexit dump, SIGUSR1
// on-demand report, and telemetry blocks in bench JSON. See
// docs/OBSERVABILITY.md for the full metric inventory.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/timing.hpp"
#include "stats/histogram.hpp"

#if defined(HEMLOCK_TELEMETRY_DISABLED)
#define HEMLOCK_TELEMETRY_ENABLED 0
#else
#define HEMLOCK_TELEMETRY_ENABLED 1
#endif

namespace hemlock::telemetry {

/// Per-lock identity for metric attribution. id 0 is the reserved
/// "(unattributed)" bucket: hooks given it fall through at the cost
/// of one branch, and slow-path metrics with no current attribution
/// land in slot 0 so they are never silently dropped.
struct TelemetryHandle {
  std::uint16_t id = 0;
};

/// Fixed handle-table capacity (slot 0 reserved). A bounded table
/// keeps the per-thread slabs inline in ThreadRec — no allocation on
/// any path the interposition shim can reach.
inline constexpr std::uint16_t kMaxHandles = 32;

/// Log2-bucketed duration histograms: bucket i counts values in
/// [2^i, 2^(i+1)) ns; the top bucket absorbs everything >= 2^39 ns
/// (~9 min). Snapshots re-materialize these as stats/histogram
/// Histograms (sub_bucket_bits = 0 is exactly this geometry) so
/// quantile/summary rendering is shared, not re-implemented.
inline constexpr unsigned kHistBuckets = 40;

/// The log2 bucket for a duration (0 maps to bucket 0).
inline unsigned log2_bucket(std::uint64_t ns) noexcept {
  const unsigned b = ns == 0 ? 0u : static_cast<unsigned>(std::bit_width(ns)) - 1u;
  return b >= kHistBuckets ? kHistBuckets - 1 : b;
}

/// Sampling period for wait/hold timing: one clock pair per
/// kSampleEvery-th acquisition per (thread, handle). Counters are
/// exact; only the duration histograms are sampled.
inline constexpr std::uint32_t kSampleEvery = 64;

#if HEMLOCK_TELEMETRY_ENABLED

/// Single-writer counter increment: slab slots belong to one thread,
/// so a relaxed load+store — a plain `inc` in the asm — replaces the
/// lock-prefixed RMW a fetch_add would emit (measured at roughly half
/// the hook cost on the uncontended pair). Snapshot readers race
/// benignly; the only competing writer is release_handle's scrub,
/// which can race an increment only when the lock is being destroyed
/// mid-operation — undefined at the lock layer before telemetry is
/// involved.
template <typename T>
inline void bump(std::atomic<T>& c) noexcept {
  // mo: relaxed — single-writer statistic, never synchronization.
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

/// Per-(thread, handle) counters. Written by the owning thread with
/// relaxed atomics (they are statistics, never synchronization), read
/// concurrently by snapshot walks. The trailing sampling state is
/// owner-thread-only and never read by snapshots.
struct TmSlot {
  std::atomic<std::uint64_t> acquires{0};         ///< exclusive acquisitions
  std::atomic<std::uint64_t> contended{0};        ///< acquisitions that waited
  std::atomic<std::uint64_t> try_failures{0};     ///< failed try_lock attempts
  std::atomic<std::uint64_t> parks{0};            ///< futex sleeps entered
  std::atomic<std::uint64_t> wakes{0};            ///< wake syscalls issued
  std::atomic<std::uint64_t> escalations{0};      ///< waiting-tier transitions
  std::atomic<std::uint64_t> shared_acquires{0};  ///< reader admissions
  std::atomic<std::uint32_t> wait_hist[kHistBuckets]{};  ///< sampled wait ns
  std::atomic<std::uint32_t> hold_hist[kHistBuckets]{};  ///< sampled hold ns

  // ---- owner-thread sampling state (plain: never shared) --------------
  std::uint32_t ops = 0;            ///< acquisition counter driving sampling
  std::int64_t wait_begin_ns = 0;   ///< nonzero while timing a sampled wait
  std::int64_t hold_begin_ns = 0;   ///< nonzero while timing a sampled hold
};

/// The per-thread slab: one TmSlot per handle, hanging off ThreadRec.
struct Slab {
  TmSlot slots[kMaxHandles];
};

/// Thread-local slab cache. Populated on first hook via slab_slow()
/// (which registers through self()); cleared at thread deregistration
/// so late hooks from other thread_local destructors fall back to a
/// shared dummy slab instead of touching freed memory.
inline thread_local Slab* t_slab = nullptr;

/// The handle the calling thread is currently acquiring/releasing —
/// how the handle-blind waiting layer attributes its slow-path
/// metrics. 0 between operations.
inline thread_local std::uint16_t t_attr = 0;

/// Cold path of my_slab(): resolve the calling thread's slab (or the
/// shared post-exit dummy) and cache it.
Slab* slab_slow() noexcept;

inline Slab& my_slab() noexcept {
  Slab* s = t_slab;
  return *(s != nullptr ? s : slab_slow());
}

/// Flight-recorder master switch: set once at startup from
/// HEMLOCK_TRACE, read with a relaxed load on the (rare) traced
/// events' paths.
inline std::atomic<bool> g_trace_on{false};

/// Flight-recorder event kinds (one byte in the ring record).
enum class Ev : std::uint8_t {
  kAcquire = 0,
  kContended,
  kPark,
  kWake,
  kEscalate,
  kEpochAdvance,
};

/// Append one event to the calling thread's trace ring (out-of-line;
/// only reached when tracing is enabled).
void trace_emit(Ev ev, std::uint16_t handle, std::uint32_t arg) noexcept;

inline void trace(Ev ev, std::uint16_t handle, std::uint32_t arg = 0) noexcept {
  // mo: relaxed — advisory tracing switch; the ring is thread-local,
  // so no ordering is needed between the check and the append.
  if (g_trace_on.load(std::memory_order_relaxed)) trace_emit(ev, handle, arg);
}

// ---------------------------------------------------------------------
// Fast-path hooks (inline). Every hook is a no-op for handle id 0.
// ---------------------------------------------------------------------

/// Before a blocking exclusive acquire: publish the attribution for
/// the waiting layer and start a sampled wait timer.
inline void on_lock_begin(TelemetryHandle h) noexcept {
  if (h.id == 0) return;
  TmSlot& s = my_slab().slots[h.id];
  t_attr = h.id;
  if ((++s.ops % kSampleEvery) == 1) s.wait_begin_ns = now_ns();
}

/// After a blocking exclusive acquire returned.
inline void on_lock_acquired(TelemetryHandle h) noexcept {
  if (h.id == 0) return;
  TmSlot& s = my_slab().slots[h.id];
  t_attr = 0;
  bump(s.acquires);
  if (s.wait_begin_ns != 0) {
    const std::int64_t t1 = now_ns();
    bump(s.wait_hist[log2_bucket(
        static_cast<std::uint64_t>(t1 - s.wait_begin_ns))]);
    s.wait_begin_ns = 0;
    s.hold_begin_ns = t1;
  }
  trace(Ev::kAcquire, h.id);
}

/// A successful try_lock (no wait to time; still an acquisition).
inline void on_try_acquired(TelemetryHandle h) noexcept {
  if (h.id == 0) return;
  bump(my_slab().slots[h.id].acquires);
  trace(Ev::kAcquire, h.id);
}

/// A failed try_lock / try_lock_shared.
inline void on_try_failure(TelemetryHandle h) noexcept {
  if (h.id == 0) return;
  bump(my_slab().slots[h.id].try_failures);
}

/// A shared-mode (reader) admission. Reader holds are not timed: the
/// single per-slot hold timer cannot represent concurrent readers.
inline void on_shared_acquired(TelemetryHandle h) noexcept {
  if (h.id == 0) return;
  TmSlot& s = my_slab().slots[h.id];
  t_attr = 0;
  bump(s.shared_acquires);
}

/// Before a shared acquire: attribution only (see on_shared_acquired).
inline void on_shared_begin(TelemetryHandle h) noexcept {
  if (h.id == 0) return;
  t_attr = h.id;
}

/// Unlock entry: close a sampled hold interval and re-publish the
/// attribution so hand-off slow paths (drain waits, gated wakes)
/// attribute to the lock being released.
inline void on_unlock_begin(TelemetryHandle h) noexcept {
  if (h.id == 0) return;
  TmSlot& s = my_slab().slots[h.id];
  t_attr = h.id;
  if (s.hold_begin_ns != 0) {
    bump(s.hold_hist[log2_bucket(
        static_cast<std::uint64_t>(now_ns() - s.hold_begin_ns))]);
    s.hold_begin_ns = 0;
  }
}

/// Unlock exit: clear the attribution.
inline void on_unlock_end(TelemetryHandle h) noexcept {
  if (h.id == 0) return;
  t_attr = 0;
}

// ---------------------------------------------------------------------
// Waiting-layer hooks (out-of-line: they only run on contended slow
// paths, so a call is free next to the spin/yield/futex they sit by).
// They attribute to t_attr — slot 0 when no attribution is current.
// ---------------------------------------------------------------------

void wl_contended() noexcept;  ///< a waiter queued behind a predecessor
void wl_park() noexcept;       ///< a waiter is entering futex_wait
void wl_wake() noexcept;       ///< a publisher issued a wake syscall
void wl_escalate() noexcept;   ///< an escalating wait changed tier

#else  // !HEMLOCK_TELEMETRY_ENABLED

// Telemetry compiled out: the handle type survives (embedders keep
// compiling) and every hook is an empty inline the optimizer erases —
// tools/check_telemetry_off.py proves no residue reaches the asm.
inline void on_lock_begin(TelemetryHandle) noexcept {}
inline void on_lock_acquired(TelemetryHandle) noexcept {}
inline void on_try_acquired(TelemetryHandle) noexcept {}
inline void on_try_failure(TelemetryHandle) noexcept {}
inline void on_shared_begin(TelemetryHandle) noexcept {}
inline void on_shared_acquired(TelemetryHandle) noexcept {}
inline void on_unlock_begin(TelemetryHandle) noexcept {}
inline void on_unlock_end(TelemetryHandle) noexcept {}

#endif  // HEMLOCK_TELEMETRY_ENABLED

// ---------------------------------------------------------------------
// Statement-position hook macros for the waiting layer and the epoch
// domains. Under -DHEMLOCK_TELEMETRY=OFF these are literally ((void)0)
// — the codegen tripwire's contract.
// ---------------------------------------------------------------------

#if HEMLOCK_TELEMETRY_ENABLED
#define HEMLOCK_TM_CONTENDED() ::hemlock::telemetry::wl_contended()
#define HEMLOCK_TM_PARK() ::hemlock::telemetry::wl_park()
#define HEMLOCK_TM_WAKE() ::hemlock::telemetry::wl_wake()
#define HEMLOCK_TM_ESCALATE() ::hemlock::telemetry::wl_escalate()
#define HEMLOCK_TM_EPOCH_ADVANCE(epoch)                          \
  ::hemlock::telemetry::trace(::hemlock::telemetry::Ev::kEpochAdvance, 0, \
                              static_cast<std::uint32_t>(epoch))
#else
#define HEMLOCK_TM_CONTENDED() ((void)0)
#define HEMLOCK_TM_PARK() ((void)0)
#define HEMLOCK_TM_WAKE() ((void)0)
#define HEMLOCK_TM_ESCALATE() ((void)0)
#define HEMLOCK_TM_EPOCH_ADVANCE(epoch) ((void)0)
#endif

// ---------------------------------------------------------------------
// Handle registry (cold paths; allocation-free, spinlock-guarded so
// the shim may register its family handles from inside an interposed
// pthread operation).
// ---------------------------------------------------------------------

#if HEMLOCK_TELEMETRY_ENABLED

/// Register (or re-reference) the named handle. Handles are
/// refcounted by name: two AnyLocks sharing a telemetry name share a
/// handle (how a sharded structure reports as one logical lock).
/// Returns {0} when the table is full or the name is empty; names
/// longer than the fixed entry buffer are truncated.
TelemetryHandle register_handle(std::string_view name) noexcept;

/// Drop one reference; the last release zeroes every thread's slot
/// and the retired accumulator for the id, so a later register_handle
/// reusing the slot starts from scratch.
void release_handle(TelemetryHandle h) noexcept;

/// The registered name for a live handle ("" for id 0 / free slots).
std::string_view handle_name(TelemetryHandle h) noexcept;

/// Fold an exiting thread's slab into the retired accumulator and
/// invalidate its t_slab cache. Called by ThreadRegistry::
/// deregister_rec on the exiting thread, under the registry lock.
void on_thread_exit(Slab& slab) noexcept;

#else

inline TelemetryHandle register_handle(std::string_view) noexcept { return {}; }
inline void release_handle(TelemetryHandle) noexcept {}
inline std::string_view handle_name(TelemetryHandle) noexcept { return {}; }

#endif  // HEMLOCK_TELEMETRY_ENABLED

// ---------------------------------------------------------------------
// Snapshot / export API (cold; may allocate — never called from lock
// paths). Available in both build flavors: with telemetry compiled
// out, snapshots still carry the always-on governor diagnostics and
// epoch-domain stats, with an empty per-lock table.
// ---------------------------------------------------------------------

/// One per-lock row of a snapshot: counters summed over live threads
/// plus the retired fold, histograms re-materialized as
/// stats/histogram Histograms (log2 geometry, sub_bucket_bits = 0).
struct LockTelemetry {
  std::string name;
  std::uint64_t acquires = 0;
  std::uint64_t contended = 0;
  std::uint64_t try_failures = 0;
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  std::uint64_t escalations = 0;
  std::uint64_t shared_acquires = 0;
  Histogram wait_ns{0};
  Histogram hold_ns{0};

  /// True when every counter and both histograms are zero (rows like
  /// this are omitted from reports).
  bool empty() const noexcept {
    return acquires == 0 && contended == 0 && try_failures == 0 &&
           parks == 0 && wakes == 0 && escalations == 0 &&
           shared_acquires == 0 && wait_ns.count() == 0 &&
           hold_ns.count() == 0;
  }
};

/// Governor-side diagnostics: the waiting-tier census and the
/// parked-census instrumentation (ContentionGovernor::diag()).
struct GovernorTelemetry {
  std::uint32_t cpus = 0;
  std::uint32_t waiters = 0;
  std::uint32_t parked_total = 0;
  std::uint64_t wake_syscalls = 0;
  std::uint64_t wake_gate_skips = 0;
  std::uint64_t park_sleeps = 0;
  std::uint64_t park_wakeups = 0;
  std::uint64_t baseline_retries = 0;
  std::uint64_t escalations = 0;
  std::uint32_t census_high_water_max = 0;  ///< max over buckets
  std::uint32_t census_high_water_bucket = 0;
};

/// Epoch-domain stats for the process-global domain (limbo depth,
/// retire/drain counts, blocked advances).
struct EpochTelemetry {
  std::uint64_t epoch = 0;
  std::uint64_t pending = 0;
  std::uint64_t freed = 0;
  std::uint64_t advances = 0;
  std::uint64_t advance_blocked = 0;
};

/// Condvar-overlay lifecycle counters (plain values; the interpose
/// layer materializes these from ShimCond's CondStats and registers a
/// source below — the stats layer never depends on interpose).
struct CondCounters {
  std::uint64_t adopted = 0;
  std::uint64_t waits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t signals = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t requeued = 0;
  std::uint64_t chain_wakes = 0;
};

/// A full telemetry snapshot.
struct Snapshot {
  std::vector<LockTelemetry> locks;  ///< non-empty rows, handle order
  GovernorTelemetry governor;
  EpochTelemetry epoch;
  CondCounters cond;
  bool cond_present = false;  ///< a cond source was registered
};

/// Collect a snapshot: retired fold first, then a registry walk over
/// live slabs (racy-consistent — exact once the measured threads have
/// quiesced, like collect_lock_usage_profile()).
Snapshot collect();

/// Zero every live slab, the retired accumulator, and the governor
/// diagnostics (the epoch domain's counters are owned by the domain
/// and are not reset here).
void reset();

/// Register the condvar-counter source (interpose layer start-up).
void set_cond_source(CondCounters (*source)());

/// Render a snapshot as the hemlock-telemetry-v1 JSON document.
std::string to_json(const Snapshot& snap);

/// Human-readable per-lock table + governor/epoch/cond summaries,
/// written with snprintf+write only (no allocation, no stdio locks) so
/// the SIGUSR1 handler can share it. Not strictly async-signal-safe —
/// see docs/OBSERVABILITY.md for the caveat.
void report_to_fd(int fd);

/// Process the HEMLOCK_STATS / HEMLOCK_TRACE environment (install
/// atexit exporters, the SIGUSR1 handler, and the flight recorder).
/// Runs automatically at library load; idempotent and exposed for
/// tests.
void init_from_env();

}  // namespace hemlock::telemetry
