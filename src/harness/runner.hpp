// runner.hpp — median-of-N repetition, the paper's reporting protocol.
//
// "We report the median of 7 independent runs" (§5.1); Figure 8 uses
// the median of 5. repeat_runs executes any score-producing callable
// N times and accumulates a Summary whose median() is the reported
// number.
#pragma once

#include <string>

#include "harness/mutexbench.hpp"
#include "stats/summary.hpp"

namespace hemlock {

/// Run `fn` (returning a double score) `runs` times; collect scores.
template <typename Fn>
Summary repeat_runs(int runs, Fn&& fn) {
  Summary s;
  for (int i = 0; i < runs; ++i) {
    s.add(fn());
  }
  return s;
}

/// Median MutexBench throughput (M steps/sec) over `runs` runs.
template <BasicLockable L>
double mutexbench_median(const MutexBenchConfig& cfg, int runs) {
  return repeat_runs(runs, [&] {
           return run_mutexbench<L>(cfg).msteps_per_sec();
         })
      .median();
}

/// Median multi-waiting leader throughput over `runs` runs.
template <BasicLockable L>
double multiwait_median(const MultiWaitConfig& cfg, int runs) {
  return repeat_runs(runs, [&] {
           return run_multiwait_bench<L>(cfg).msteps_per_sec();
         })
      .median();
}

/// Median MutexBench throughput for a factory-named algorithm — the
/// --lock=<name> path (resolved through LockFactory; type-erased).
inline double mutexbench_median_named(std::string_view lock_name,
                                      const MutexBenchConfig& cfg, int runs) {
  return repeat_runs(runs, [&] {
           return run_mutexbench_named(lock_name, cfg).msteps_per_sec();
         })
      .median();
}

/// Median multi-waiting leader throughput for a factory-named
/// algorithm.
inline double multiwait_median_named(std::string_view lock_name,
                                     const MultiWaitConfig& cfg, int runs) {
  return repeat_runs(runs, [&] {
           return run_multiwait_bench_named(lock_name, cfg).msteps_per_sec();
         })
      .median();
}

}  // namespace hemlock
