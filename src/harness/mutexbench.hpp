// mutexbench.hpp — the paper's MutexBench workload driver (§5.1).
//
// "The MutexBench benchmark spawns T concurrent threads. Each thread
// loops as follows: acquire a central lock L; execute a critical
// section; release L; execute a non-critical section. At the end of a
// 10 second measurement interval the benchmark reports the total
// number of aggregate iterations completed by all the threads."
//
// Workload knobs reproduce the two figures' configurations:
//  * Maximum contention (Figures 2/4/6): empty critical and
//    non-critical sections.
//  * Moderate contention (Figures 3/5/7): "the non-critical section
//    generates a uniformly distributed random value in [0-400) and
//    steps a thread-local C++ std::mt19937 random number generator
//    (PRNG) that many steps ... The critical section advances a
//    shared random number generator 5 steps."
//
// The same driver powers the multi-waiting benchmark (§5.6 /
// Figure 9) via run_multiwait_bench.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "locks/lockable.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/prng.hpp"
#include "runtime/thread_rec.hpp"
#include "runtime/timing.hpp"

namespace hemlock {

/// MutexBench parameters.
struct MutexBenchConfig {
  std::uint32_t threads = 1;
  std::int64_t duration_ms = 1000;   ///< measurement interval
  std::uint32_t cs_shared_prng_steps = 0;  ///< CS work: steps of the shared mt19937
  std::uint32_t ncs_max_prng_steps = 0;    ///< NCS work: uniform [0, max) steps of a thread-local mt19937
  std::uint64_t seed = 0x5EEDDEADBEEFULL;  ///< workload seed
};

/// MutexBench outcome for one run.
struct MutexBenchResult {
  std::uint64_t total_iterations = 0;        ///< aggregate loop count
  std::int64_t elapsed_ns = 0;               ///< actual measured interval
  std::vector<std::uint64_t> per_thread;     ///< per-thread iteration counts

  /// The paper's Y axis: aggregate throughput in M steps/sec.
  double msteps_per_sec() const {
    return ops_per_sec(total_iterations, elapsed_ns) / 1e6;
  }
  /// Jain's fairness index over per-thread counts (1.0 = perfectly
  /// fair; FIFO locks should approach it at steady state).
  double fairness() const {
    if (per_thread.empty()) return 1.0;
    double sum = 0.0, sq = 0.0;
    for (auto v : per_thread) {
      sum += static_cast<double>(v);
      sq += static_cast<double>(v) * static_cast<double>(v);
    }
    if (sq == 0.0) return 1.0;
    const double n = static_cast<double>(per_thread.size());
    return (sum * sum) / (n * sq);
  }
};

/// Run MutexBench against lock type L. The lock instance is placed as
/// the sole occupant of a cache line, matching the paper's layout
/// discipline. Threads are "free-range unbound" (no pinning), as in
/// §5. Trailing `lock_args` are forwarded to L's constructor — how
/// the type-erased path (L = AnyLock) names its algorithm; the
/// templated figure path passes none.
template <BasicLockable L, typename... LockArgs>
MutexBenchResult run_mutexbench(const MutexBenchConfig& cfg,
                                const LockArgs&... lock_args) {
  struct Shared {
    CacheAligned<L> lock;
    CacheAligned<std::atomic<bool>> stop{false};
    CacheAligned<std::mt19937> shared_prng;
    SpinBarrier barrier;
    explicit Shared(std::uint32_t parties, std::uint64_t seed,
                    const LockArgs&... la)
        : lock(la...), barrier(parties) {
      shared_prng.value.seed(static_cast<std::uint32_t>(seed));
    }
  };
  auto shared = std::make_unique<Shared>(cfg.threads + 1, cfg.seed,
                                         lock_args...);

  std::vector<std::uint64_t> counts(cfg.threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (std::uint32_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      (void)self();  // register this thread's Grant record up front
      std::mt19937 local_prng(
          static_cast<std::uint32_t>(cfg.seed + 0x9E37 * (t + 1)));
      std::uniform_int_distribution<std::uint32_t> ncs_dist(
          0, cfg.ncs_max_prng_steps > 0 ? cfg.ncs_max_prng_steps - 1 : 0);
      std::uint64_t iters = 0;
      // The sink keeps the PRNG stepping from being optimized away
      // (maybe_unused: gcc >= 11 counts volatile writes as "set but
      // not used", which -Werror would promote).
      [[maybe_unused]] volatile std::uint32_t sink = 0;

      shared->barrier.arrive_and_wait();
      // mo: relaxed — advisory stop flag; per-thread results are
      // published by the joining barrier, not this load.
      while (!shared->stop.value.load(std::memory_order_relaxed)) {
        shared->lock.value.lock();
        for (std::uint32_t i = 0; i < cfg.cs_shared_prng_steps; ++i) {
          sink = static_cast<std::uint32_t>(shared->shared_prng.value());
        }
        shared->lock.value.unlock();
        if (cfg.ncs_max_prng_steps > 0) {
          const std::uint32_t steps = ncs_dist(local_prng);
          for (std::uint32_t i = 0; i < steps; ++i) {
            sink = static_cast<std::uint32_t>(local_prng());
          }
        }
        ++iters;
      }
      counts[t] = iters;
      shared->barrier.arrive_and_wait();  // end-of-run rendezvous
    });
  }

  shared->barrier.arrive_and_wait();  // release the cohort
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  // mo: relaxed — advisory stop flag; the barrier synchronizes.
  shared->stop.value.store(true, std::memory_order_relaxed);
  shared->barrier.arrive_and_wait();  // all workers done counting
  const std::int64_t elapsed = timer.elapsed_ns();
  for (auto& w : workers) w.join();

  MutexBenchResult res;
  res.elapsed_ns = elapsed;
  res.per_thread = counts;
  for (auto c : counts) res.total_iterations += c;
  return res;
}

/// Multi-waiting benchmark parameters (§5.6): NumLocks shared locks;
/// one leader acquires all of them in ascending order then releases
/// in reverse; every other thread repeatedly locks one randomly
/// chosen lock. The score is leader steps (full up-down sweeps) —
/// "We ignore the number of iterations completed by the non-leader
/// threads."
struct MultiWaitConfig {
  std::uint32_t threads = 2;       ///< total, including the leader
  std::uint32_t num_locks = 10;    ///< the paper uses 10
  std::int64_t duration_ms = 1000;
  std::uint64_t seed = 0xC0FFEE123ULL;
};

/// Multi-waiting outcome.
struct MultiWaitResult {
  std::uint64_t leader_steps = 0;
  std::int64_t elapsed_ns = 0;
  /// The paper's Y axis (Figure 9): leader throughput, M steps/sec.
  double msteps_per_sec() const {
    return ops_per_sec(leader_steps, elapsed_ns) / 1e6;
  }
};

/// Run the §5.6 multi-waiting benchmark against lock type L.
/// Trailing `lock_args` are forwarded to every lock's constructor
/// (deque: lock addresses stay pinned, and emplacement never moves a
/// — non-movable — lock).
template <BasicLockable L, typename... LockArgs>
MultiWaitResult run_multiwait_bench(const MultiWaitConfig& cfg,
                                    const LockArgs&... lock_args) {
  struct Shared {
    std::deque<CacheAligned<L>> locks;
    CacheAligned<std::atomic<bool>> stop{false};
    SpinBarrier barrier;
    Shared(std::uint32_t nlocks, std::uint32_t parties,
           const LockArgs&... la)
        : barrier(parties) {
      for (std::uint32_t i = 0; i < nlocks; ++i) locks.emplace_back(la...);
    }
  };
  auto shared = std::make_unique<Shared>(cfg.num_locks, cfg.threads + 1,
                                         lock_args...);

  std::uint64_t leader_steps = 0;
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  // Leader: acquire all locks ascending, release in reverse order.
  workers.emplace_back([&] {
    (void)self();
    std::uint64_t steps = 0;
    shared->barrier.arrive_and_wait();
    // mo: relaxed — advisory stop flag; the barrier synchronizes.
    while (!shared->stop.value.load(std::memory_order_relaxed)) {
      for (std::uint32_t i = 0; i < cfg.num_locks; ++i) {
        shared->locks[i].value.lock();
      }
      for (std::uint32_t i = cfg.num_locks; i-- > 0;) {
        shared->locks[i].value.unlock();
      }
      ++steps;
    }
    leader_steps = steps;
    shared->barrier.arrive_and_wait();
  });

  // Non-leaders: pick one random lock per iteration.
  for (std::uint32_t t = 1; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      (void)self();
      Xoshiro256 prng(cfg.seed + t);
      shared->barrier.arrive_and_wait();
      // mo: relaxed — advisory stop flag; the barrier synchronizes.
      while (!shared->stop.value.load(std::memory_order_relaxed)) {
        auto& lk = shared->locks[prng.below(cfg.num_locks)].value;
        lk.lock();
        lk.unlock();
      }
      shared->barrier.arrive_and_wait();
    });
  }

  shared->barrier.arrive_and_wait();
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  // mo: relaxed — advisory stop flag; the barrier synchronizes.
  shared->stop.value.store(true, std::memory_order_relaxed);
  shared->barrier.arrive_and_wait();
  const std::int64_t elapsed = timer.elapsed_ns();
  for (auto& w : workers) w.join();

  MultiWaitResult res;
  res.leader_steps = leader_steps;
  res.elapsed_ns = elapsed;
  return res;
}

/// Run MutexBench with the algorithm chosen by factory name — the
/// harness's --lock=<name> path (type-erased via AnyLock; the
/// templated overloads above remain the paper-fidelity figure path).
/// Throws std::invalid_argument for unknown names and for
/// contender-bounded algorithms (Anderson) run past their capacity.
MutexBenchResult run_mutexbench_named(std::string_view lock_name,
                                      const MutexBenchConfig& cfg);

/// Multi-waiting counterpart of run_mutexbench_named.
MultiWaitResult run_multiwait_bench_named(std::string_view lock_name,
                                          const MultiWaitConfig& cfg);

/// Thread counts for figure sweeps: approximately the paper's X axis
/// {1, 2, 5, 10, 20, 50, ...}, clipped to `max_threads`, always
/// including max_threads itself.
std::vector<std::uint32_t> figure_thread_sweep(std::uint32_t max_threads);

/// Default sweep ceiling: the host's logical CPU count, doubled when
/// `oversubscribe` (Figures 4-7 exercise thread counts past the CPU
/// count; see DESIGN.md's substitution table).
std::uint32_t default_max_threads(bool oversubscribe);

/// One-line host banner for bench headers (topology + build info).
std::string host_banner();

}  // namespace hemlock
