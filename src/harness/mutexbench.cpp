#include "harness/mutexbench.hpp"

#include <algorithm>
#include <sstream>

#include "runtime/topology.hpp"

namespace hemlock {

std::vector<std::uint32_t> figure_thread_sweep(std::uint32_t max_threads) {
  // The paper's log-ish x-axis: 1 2 5 10 20 50 100 200 500 ...
  static constexpr std::uint32_t kAnchors[] = {1,  2,   5,   10,  20, 50,
                                               100, 200, 500, 1000};
  std::vector<std::uint32_t> sweep;
  for (auto a : kAnchors) {
    if (a >= max_threads) break;
    sweep.push_back(a);
  }
  if (sweep.empty() || sweep.back() != max_threads) {
    sweep.push_back(max_threads);
  }
  return sweep;
}

std::uint32_t default_max_threads(bool oversubscribe) {
  const std::uint32_t cpus = topology().logical_cpus;
  return oversubscribe ? cpus * 2 : cpus;
}

std::string host_banner() {
  std::ostringstream os;
  os << "host: " << topology().describe();
  return os.str();
}

}  // namespace hemlock
