#include "harness/mutexbench.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "api/any_lock.hpp"
#include "runtime/topology.hpp"

namespace hemlock {

namespace {

/// Resolve a --lock=<name> to its factory entry, enforcing the
/// algorithm's contender bound (Anderson's waiting array wraps —
/// and corrupts the protocol — past LockInfo::max_threads).
const LockVTable& resolve_named_lock(std::string_view lock_name,
                                     std::uint32_t threads) {
  const LockVTable* vt = find_lock(lock_name);
  if (vt == nullptr) {
    throw std::invalid_argument("unknown lock algorithm \"" +
                                std::string(lock_name) + "\"");
  }
  if (vt->info.max_threads != 0 && threads > vt->info.max_threads) {
    throw std::invalid_argument(
        "lock algorithm \"" + std::string(lock_name) + "\" supports at most " +
        std::to_string(vt->info.max_threads) + " concurrent threads (asked " +
        std::to_string(threads) + ")");
  }
  return *vt;
}

}  // namespace

MutexBenchResult run_mutexbench_named(std::string_view lock_name,
                                      const MutexBenchConfig& cfg) {
  const LockVTable& vt = resolve_named_lock(lock_name, cfg.threads);
  return run_mutexbench<AnyLock>(cfg, vt);
}

MultiWaitResult run_multiwait_bench_named(std::string_view lock_name,
                                          const MultiWaitConfig& cfg) {
  const LockVTable& vt = resolve_named_lock(lock_name, cfg.threads);
  return run_multiwait_bench<AnyLock>(cfg, vt);
}

std::vector<std::uint32_t> figure_thread_sweep(std::uint32_t max_threads) {
  // The paper's log-ish x-axis: 1 2 5 10 20 50 100 200 500 ...
  static constexpr std::uint32_t kAnchors[] = {1,  2,   5,   10,  20, 50,
                                               100, 200, 500, 1000};
  std::vector<std::uint32_t> sweep;
  for (auto a : kAnchors) {
    if (a >= max_threads) break;
    sweep.push_back(a);
  }
  if (sweep.empty() || sweep.back() != max_threads) {
    sweep.push_back(max_threads);
  }
  return sweep;
}

std::uint32_t default_max_threads(bool oversubscribe) {
  const std::uint32_t cpus = topology().logical_cpus;
  return oversubscribe ? cpus * 2 : cpus;
}

std::string host_banner() {
  std::ostringstream os;
  os << "host: " << topology().describe();
  return os.str();
}

}  // namespace hemlock
