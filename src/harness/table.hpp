// table.hpp — aligned-text and CSV result tables.
//
// Bench binaries print "the same rows/series the paper reports":
// a human-readable aligned table on stdout and, with --csv, a
// machine-readable CSV block for replotting the figures.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace hemlock {

/// Column-aligned text table with an optional CSV rendering.
class Table {
 public:
  /// Create with header cells.
  explicit Table(std::vector<std::string> headers);

  /// Append a data row (must match the header arity).
  void add_row(std::vector<std::string> cells);

  /// Render aligned text (pads columns to the widest cell).
  void print(std::ostream& os) const;
  /// Render RFC-4180-ish CSV (no quoting needed for our cells).
  void print_csv(std::ostream& os) const;

  /// Format a double with fixed precision, trimming wide exponents.
  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hemlock
