#include "harness/options.hpp"

#include <cstdlib>

namespace hemlock {

Options::Options(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;  // ignore stray positionals
    arg.erase(0, 2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // bare flag
    }
  }
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  consumed_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def) const {
  consumed_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Options::get_string(const std::string& key,
                                const std::string& def) const {
  consumed_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return it->second;
}

std::vector<std::string> Options::get_string_list(
    const std::string& key) const {
  consumed_[key] = true;
  std::vector<std::string> out;
  auto it = kv_.find(key);
  if (it == kv_.end()) return out;
  const std::string& raw = it->second;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t comma = raw.find(',', start);
    const std::size_t end = comma == std::string::npos ? raw.size() : comma;
    if (end > start) out.push_back(raw.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool Options::has(const std::string& key) const {
  consumed_[key] = true;
  return kv_.count(key) != 0;
}

std::vector<std::string> Options::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (!consumed_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace hemlock
