#include "harness/options.hpp"

#include <cstdlib>

namespace hemlock {

Options::Options(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;  // ignore stray positionals
    arg.erase(0, 2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // bare flag
    }
  }
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  consumed_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def) const {
  consumed_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Options::get_string(const std::string& key,
                                const std::string& def) const {
  consumed_[key] = true;
  auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return it->second;
}

bool Options::has(const std::string& key) const {
  consumed_[key] = true;
  return kv_.count(key) != 0;
}

std::vector<std::string> Options::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (!consumed_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace hemlock
