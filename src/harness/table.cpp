#include "harness/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hemlock {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << cells[c];
      os << (c == 0 ? "" : "");
      // Reset alignment for subsequent columns.
      os << std::right;
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace hemlock
