// options.hpp — minimal command-line options for the bench binaries.
//
// Every bench accepts --key=value / --key value / bare --flag forms,
// e.g.:  bench_fig2_max_contention --duration-ms=2000 --runs=7
//        bench_fig8_kv_readrandom --threads=32 --profile
// Unknown keys are collected and reported so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hemlock {

/// Parsed command line. Keys are stored without the leading dashes.
class Options {
 public:
  Options(int argc, char** argv);

  /// Integer-valued option (or `def` if absent).
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  /// Float-valued option.
  double get_double(const std::string& key, double def) const;
  /// String-valued option.
  std::string get_string(const std::string& key,
                         const std::string& def) const;
  /// Comma-separated list option (e.g. --lock=hemlock,mcs,clh);
  /// empty vector when absent. Empty items are dropped.
  std::vector<std::string> get_string_list(const std::string& key) const;
  /// True if --key was present (with or without a value).
  bool has(const std::string& key) const;

  /// Keys that were parsed but never queried via the getters above;
  /// benches call this last to reject typos.
  std::vector<std::string> unconsumed() const;

  /// Program name (argv[0]).
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace hemlock
