// shim_cond.hpp — pthread_cond_t overlay: wait/notify over any
// AnyLock-backed interposed mutex.
//
// The mutex shim (shim_mutex.hpp) replaces a pthread_mutex_t's
// internals wholesale, which is exactly why glibc's own condvar can
// no longer wait on it: pthread_cond_wait manipulates raw glibc mutex
// state that the overlay destroyed. Until this layer existed, the
// interposition library simply refused condvar-using applications —
// a scope cut that excluded most real-world preload targets. ShimCond
// closes that gap with a self-contained, sequence-counted futex
// condvar whose only contact with the mutex is through the shim's own
// lock/unlock surface, so it composes with every hosted algorithm
// (hemlock, MCS, CLH, ticket, TAS, ... × every waiting tier).
//
// Protocol (the classic futex-sequence condvar, plus a requeue valve):
//
//  * wait: register in the waiter census, snapshot the sequence word,
//    release the mutex, sleep in futex_wait(seq, snapshot), then
//    re-acquire the mutex. A signal between the snapshot and the
//    sleep bumps `seq`, so the kernel's atomic compare refuses the
//    sleep — the lost-wakeup window is closed by futex itself. Any
//    kernel return surfaces as a (POSIX-permitted) spurious wakeup;
//    the caller's predicate loop absorbs it.
//  * signal: bump `seq`, wake one sleeper — syscall skipped when the
//    census says nobody can be sleeping.
//  * broadcast: bump `seq`, then FUTEX_CMP_REQUEUE — wake exactly one
//    waiter and *requeue* the rest onto the overlay's `chain` word
//    without running them. Each waiter that leaves the condvar wakes
//    at most one chained sleeper, so a broadcast releases at most one
//    new mutex contender per departing waiter instead of stampeding
//    the scheduler with N runnable threads that all immediately block
//    (glibc's pre-2.25 condvar used the same valve, requeueing onto
//    the mutex word; our hosted mutexes have no single futex word —
//    each algorithm parks on its own state — so the chain word plays
//    that role and hand-over happens at condvar exit).
//
// Where semantics diverge from glibc (documented in the README):
//  * timedwait measures its absolute deadline on the condvar's
//    configured clock (pthread_condattr_setclock; default
//    CLOCK_REALTIME) but converts it to a *relative* kernel timeout,
//    so a realtime clock jump during a CLOCK_REALTIME wait shifts
//    the effective deadline. clockwait accepts CLOCK_REALTIME or
//    CLOCK_MONOTONIC explicitly.
//  * wakeup-ordering fairness is the kernel futex queue's (FIFO per
//    word), not glibc's group machinery; a waiter that arrives after
//    a broadcast can be requeued with the herd and wake spuriously.
//  * destroy drains: it wakes and waits for every thread still inside
//    pthread_cond_wait to leave the condvar's memory before the
//    storage is scrubbed. Waiters touch the condvar only *before*
//    re-acquiring the mutex, so destroy-after-broadcast is safe even
//    while the caller still holds the associated mutex.
#pragma once

#include <pthread.h>
#include <time.h>

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "api/any_lock.hpp"
#include "interpose/shim_mutex.hpp"

namespace hemlock::interpose {

/// True iff the algorithm may back a condvar wait through the shim:
/// hostable in the mutex overlay and not opted out by its traits.
constexpr bool shim_cond_capable(const LockInfo& info) noexcept {
  return shim_hostable(info) && info.condvar_capable;
}

/// Factory names whose hosted mutexes support the condvar overlay
/// (the coverage the shim reports; currently every hostable name).
std::vector<std::string_view> supported_cond_lock_names();

/// Process-wide lifecycle counters for the condvar overlay, mirroring
/// the mutex shim's adoption discipline: monotonically increasing,
/// relaxed (diagnostics, never synchronization). Read via cond_stats().
struct CondStats {
  std::atomic<std::uint64_t> adopted{0};     ///< conds adopted (lazy or init)
  std::atomic<std::uint64_t> waits{0};       ///< wait + timedwait entries
  std::atomic<std::uint64_t> timeouts{0};    ///< timedwaits that timed out
  std::atomic<std::uint64_t> signals{0};     ///< pthread_cond_signal calls
  std::atomic<std::uint64_t> broadcasts{0};  ///< pthread_cond_broadcast calls
  std::atomic<std::uint64_t> requeued{0};    ///< waiters moved onto the chain
  std::atomic<std::uint64_t> chain_wakes{0}; ///< hand-over wakes of the chain
};

/// The process-wide condvar lifecycle counters.
CondStats& cond_stats() noexcept;

/// The overlay. POSIX storage is adopted in place; all-zero bytes
/// (PTHREAD_COND_INITIALIZER, or fresh pthread_cond_init) are a valid
/// fresh state, so adoption is a single CAS on the magic word.
struct ShimCond {
  static constexpr std::uint32_t kReady = 0x48434E44;  // "HCND"

  std::atomic<std::uint32_t> magic;
  /// Wakeup sequence: bumped by signal/broadcast; waiters sleep on it.
  std::atomic<std::uint32_t> seq;
  /// Requeue target: broadcast parks all-but-one waiter here; each
  /// waiter leaving the condvar hands over one chained sleeper.
  std::atomic<std::uint32_t> chain;
  /// Threads inside wait/timedwait that may still touch this storage
  /// (they deregister before re-acquiring the mutex — the destroy
  /// drain keys on this).
  std::atomic<std::uint32_t> waiters;
  /// Chain-wake credits: outside any broadcast window (below), an
  /// upper bound on the sleepers parked on `chain` — each departing
  /// waiter claims one credit and spends it on one chain wake, so the
  /// syscall is skipped whenever nobody can be chained. Credits are
  /// added with the *exact* requeued count, after the requeue syscall.
  std::atomic<std::int32_t> chained;
  /// Open broadcast windows: nonzero while some broadcast sits between
  /// its requeue (which creates chain sleepers) and its credit add
  /// (which covers them). Departing waiters that observe an open
  /// window wake the chain *unconditionally* instead of claiming a
  /// credit — a claimed credit whose wake lands on the still-empty
  /// chain would be spent without waking anyone, and the sleeper it
  /// was meant for would be stranded forever.
  std::atomic<std::uint32_t> windows;
  /// The clock pthread_cond_timedwait deadlines are measured on:
  /// pthread_condattr_setclock's choice, recorded at init. Zero —
  /// the lazy-adoption (PTHREAD_COND_INITIALIZER) state — is
  /// CLOCK_REALTIME, the POSIX default, so statically initialized
  /// condvars need no special case.
  std::atomic<std::int32_t> clock;
  /// The associated mutex, recorded at wait time. POSIX requires all
  /// concurrent waiters to use the same mutex; a mismatch while
  /// waiters are present is reported as EINVAL instead of UB.
  std::atomic<pthread_mutex_t*> mutex;

  // ---- the pthread_cond_* surface --------------------------------------
  /// pthread_cond_init. The condattr clock is honored (stored in
  /// `clock`, measured by timedwait); a PTHREAD_PROCESS_SHARED attr
  /// routes the condvar to glibc like the mutex shim does.
  static int shim_init(pthread_cond_t* c,
                       const pthread_condattr_t* attr = nullptr);
  /// pthread_cond_destroy: drain in-flight waiters, scrub storage.
  static int shim_destroy(pthread_cond_t* c);
  /// pthread_cond_wait.
  static int shim_wait(pthread_cond_t* c, pthread_mutex_t* m);
  /// pthread_cond_timedwait: absolute deadline on the condvar's
  /// configured clock (condattr clock; default CLOCK_REALTIME).
  static int shim_timedwait(pthread_cond_t* c, pthread_mutex_t* m,
                            const struct timespec* abstime);
  /// pthread_cond_clockwait (CLOCK_REALTIME or CLOCK_MONOTONIC).
  static int shim_clockwait(pthread_cond_t* c, pthread_mutex_t* m,
                            clockid_t clock, const struct timespec* abstime);
  /// pthread_cond_signal.
  static int shim_signal(pthread_cond_t* c);
  /// pthread_cond_broadcast (wake one, requeue the rest).
  static int shim_broadcast(pthread_cond_t* c);
};

static_assert(sizeof(ShimCond) <= sizeof(pthread_cond_t),
              "overlay must fit inside pthread_cond_t");
static_assert(alignof(ShimCond) <= alignof(pthread_cond_t),
              "overlay must not over-align pthread_cond_t storage");

}  // namespace hemlock::interpose
