// shim_rwlock.hpp — pthread_rwlock_t overlay hosting the compact
// reader-writer family.
//
// The final piece of the preload story: with mutexes and condvars
// interposed, read-mostly applications — exactly the workloads where
// a compact scalable lock pays — still ran glibc's rwlock. This
// overlay embeds a library rwlock (locks/rwlock.hpp, the "-compact"
// instantiation: Hemlock writer path + packed reader ingress, 16
// bytes) inside the application's pthread_rwlock_t storage (56 bytes
// on glibc/x86-64), selected once per process from HEMLOCK_RWLOCK and
// re-tiered by HEMLOCK_WAIT exactly like the mutex shim's
// HEMLOCK_LOCK.
//
// Statically initialized rwlocks (PTHREAD_RWLOCK_INITIALIZER —
// all-zero storage on glibc) are adopted lazily and race-safely on
// first use, like the mutex overlay.
//
// Divergences from glibc, all documented in the README:
//  * POSIX's pthread_rwlock_unlock releases whichever mode the caller
//    holds; the overlay dispatches on a writer-hold marker set by
//    wrlock (readers never observe it set while they hold).
//  * timedrdlock/timedwrlock poll (bounded try + sleep) rather than
//    queueing with a deadline; the deadline itself is honored on
//    CLOCK_REALTIME per POSIX.
//  * rwlockattr kind (reader/writer preference) is not modelled: the
//    hosted family is writer-preferring, matching glibc's
//    PREFER_WRITER_NONRECURSIVE_NP — recursive read acquisition can
//    deadlock behind a queued writer.
//  * PTHREAD_PROCESS_SHARED rwlocks are routed to glibc
//    (interpose/foreign.hpp), like pshared mutexes and condvars.
#pragma once

#include <pthread.h>
#include <time.h>

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "api/any_lock.hpp"
#include "interpose/shim_mutex.hpp"

namespace hemlock::interpose {

/// Overlay budget for the hosted rwlock's state: what remains of
/// glibc's pthread_rwlock_t after the adoption header.
inline constexpr std::size_t kShimRwStorageBytes =
    sizeof(pthread_rwlock_t) - 16;
inline constexpr std::size_t kShimRwStorageAlign = 8;

/// True iff the algorithm may be hosted inside an interposed
/// pthread_rwlock_t: a native shared mode, the overlay budget, and no
/// lifecycle hazard.
constexpr bool shim_rwlock_hostable(const LockInfo& info) noexcept {
  return info.rwlock_capable && info.size_bytes <= kShimRwStorageBytes &&
         info.align_bytes <= kShimRwStorageAlign &&
         info.pthread_overlay_safe;
}

/// Factory names the shim accepts from HEMLOCK_RWLOCK (the
/// rwlock-hostable subset of the roster, registry order).
std::vector<std::string_view> supported_rwlock_names();

/// The pure selection rule behind selected_rwlock(), exposed for
/// tests: resolve (HEMLOCK_RWLOCK, HEMLOCK_WAIT) to a hostable
/// factory entry. Unknown/non-hostable names fall back to the compact
/// rwlock family (reported on stderr); HEMLOCK_WAIT re-tiers within
/// the chosen family exactly as the mutex shim does, and auto mode
/// hosts busy-waiting selections as their governed variant.
const LockVTable& resolve_shim_rwlock(const char* rwlock_env,
                                      const char* wait_env) noexcept;

/// Process-wide selection: resolve_shim_rwlock($HEMLOCK_RWLOCK,
/// $HEMLOCK_WAIT), computed once on first use.
const LockVTable& selected_rwlock();

/// The overlay. POSIX storage is adopted in place; all-zero bytes
/// (PTHREAD_RWLOCK_INITIALIZER or fresh pthread_rwlock_init) read as
/// "not yet adopted".
struct ShimRwLock {
  static constexpr std::uint32_t kReady = 0x4852574C;    // "HRWL"
  static constexpr std::uint32_t kIniting = 0x52574930;  // "RWI0"

  std::atomic<std::uint32_t> magic;
  /// Nonzero while a writer holds: pthread_rwlock_unlock's mode
  /// dispatch (set after a write acquire, cleared before the write
  /// release; readers only run while no writer holds, so they always
  /// observe it clear).
  std::atomic<std::uint32_t> wheld;
  /// Dispatch table of the hosted algorithm (a static factory entry).
  const LockVTable* vt;
  alignas(kShimRwStorageAlign) unsigned char storage[kShimRwStorageBytes];

  // ---- the pthread_rwlock_* surface ----------------------------------
  static int shim_init(pthread_rwlock_t* rw,
                       const pthread_rwlockattr_t* attr = nullptr);
  static int shim_destroy(pthread_rwlock_t* rw);
  static int shim_rdlock(pthread_rwlock_t* rw);
  static int shim_tryrdlock(pthread_rwlock_t* rw);
  static int shim_timedrdlock(pthread_rwlock_t* rw,
                              const struct timespec* abstime);
  static int shim_clockrdlock(pthread_rwlock_t* rw, clockid_t clock,
                              const struct timespec* abstime);
  static int shim_wrlock(pthread_rwlock_t* rw);
  static int shim_trywrlock(pthread_rwlock_t* rw);
  static int shim_timedwrlock(pthread_rwlock_t* rw,
                              const struct timespec* abstime);
  static int shim_clockwrlock(pthread_rwlock_t* rw, clockid_t clock,
                              const struct timespec* abstime);
  static int shim_unlock(pthread_rwlock_t* rw);
};

static_assert(sizeof(ShimRwLock) <= sizeof(pthread_rwlock_t),
              "overlay must fit inside pthread_rwlock_t");
static_assert(alignof(ShimRwLock) <= alignof(pthread_rwlock_t),
              "overlay must not over-align pthread_rwlock_t storage");

}  // namespace hemlock::interpose
