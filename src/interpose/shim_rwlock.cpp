#include "interpose/shim_rwlock.hpp"

#include <errno.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/factory.hpp"
#include "interpose/foreign.hpp"
#include "interpose/tier_select.hpp"
#include "runtime/futex.hpp"
#include "runtime/governor.hpp"
#include "runtime/pause.hpp"
#include "stats/telemetry.hpp"

namespace hemlock::interpose {

std::vector<std::string_view> supported_rwlock_names() {
  std::vector<std::string_view> names;
  for (const LockVTable* vt : LockFactory::instance().entries()) {
    if (shim_rwlock_hostable(vt->info)) names.push_back(vt->info.name);
  }
  return names;
}

namespace {

/// The default hosted family. The sharded "rwlock" names cannot fit
/// the overlay; their compact siblings are the same protocol with a
/// packed ingress word.
constexpr std::string_view kDefaultRwFamily = "rwlock-compact";

/// Rwlock-overlay hostability as tier_select's lookup gate.
const LockVTable* hostable_rw_variant(std::string_view family,
                                      std::string_view suffix) noexcept {
  return hostable_variant(family, suffix, [](const LockInfo& info) {
    return shim_rwlock_hostable(info);
  });
}

}  // namespace

const LockVTable& resolve_shim_rwlock(const char* rwlock_env,
                                      const char* wait_env) noexcept {
  const LockVTable* fallback = find_lock(kDefaultRwFamily);
  const LockVTable* chosen = fallback;
  bool explicit_spin = false;
  if (rwlock_env != nullptr && rwlock_env[0] != '\0') {
    const LockVTable* named = find_lock(rwlock_env);
    if (named != nullptr && shim_rwlock_hostable(named->info)) {
      chosen = named;
      explicit_spin = std::string_view(rwlock_env).ends_with("-spin");
    } else if (named != nullptr && named->info.rwlock_capable) {
      // A real rwlock that does not fit the overlay (the sharded
      // family): host its compact sibling in the same tier.
      const std::string_view tier = named->info.waiting;
      const LockVTable* compact =
          tier == QueueSpinWaiting::name
              ? hostable_rw_variant(kDefaultRwFamily, "")
              : (hostable_rw_variant(
                     kDefaultRwFamily,
                     tier == QueueYieldWaiting::name  ? "-yield"
                     : tier == SpinThenParkWaiting::name ? "-park"
                                                         : "-adaptive"));
      if (compact != nullptr) {
        std::fprintf(stderr,
                     "[hemlock-interpose] HEMLOCK_RWLOCK=%s does not fit "
                     "the pthread_rwlock_t overlay; hosting %.*s\n",
                     rwlock_env,
                     static_cast<int>(compact->info.name.size()),
                     compact->info.name.data());
        chosen = compact;
        explicit_spin = std::string_view(rwlock_env).ends_with("-spin");
      }
    } else {
      std::fprintf(stderr,
                   "[hemlock-interpose] HEMLOCK_RWLOCK=%s rejected (%s); "
                   "using %.*s\n",
                   rwlock_env,
                   named == nullptr ? "not a factory algorithm"
                                    : "no shared (reader) mode",
                   static_cast<int>(kDefaultRwFamily.size()),
                   kDefaultRwFamily.data());
    }
  }

  const std::string_view family = waiting_family(chosen->info.name);
  WaitTier tier;
  if (parse_wait_tier(wait_env, &tier)) {
    const LockVTable* variant = nullptr;
    switch (tier) {
      case WaitTier::kSpin:
        variant = hostable_rw_variant(family, "");
        break;
      case WaitTier::kYield:
        variant = hostable_rw_variant(family, "-yield");
        break;
      case WaitTier::kPark:
        variant = hostable_rw_variant(family, "-park");
        break;
    }
    if (variant != nullptr) {
      chosen = variant;
    } else {
      std::fprintf(stderr,
                   "[hemlock-interpose] HEMLOCK_WAIT=%s: no such waiting "
                   "tier for %.*s; keeping %.*s\n",
                   wait_env, static_cast<int>(family.size()), family.data(),
                   static_cast<int>(chosen->info.name.size()),
                   chosen->info.name.data());
    }
  } else if (!chosen->info.oversub_safe && !explicit_spin) {
    // Auto: same rule as the mutex shim — a busy-waiting selection
    // would convoy when the process oversubscribes the host, so host
    // the governed variant (identical spinning while contenders fit
    // the CPUs). Silent, unlike the mutex shim's note: the rwlock
    // default itself lands here on every preload.
    const LockVTable* safe = hostable_rw_variant(family, "-adaptive");
    if (safe != nullptr) chosen = safe;
  }
  return *chosen;
}

const LockVTable& selected_rwlock() {
  static const LockVTable& vt = resolve_shim_rwlock(
      std::getenv("HEMLOCK_RWLOCK"), std::getenv("HEMLOCK_WAIT"));
  return vt;
}

namespace {

/// The telemetry row every interposed rwlock reports under (the mutex
/// shim's family×tier scheme: "rwlock:<selected algorithm>").
telemetry::TelemetryHandle rwlock_family_handle() {
  static const telemetry::TelemetryHandle h = [] {
    const std::string_view name = selected_rwlock().info.name;
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "rwlock:%.*s",
                                static_cast<int>(name.size()), name.data());
    return telemetry::register_handle(
        std::string_view(buf, static_cast<std::size_t>(n)));
  }();
  return h;
}

/// Adopt the pthread_rwlock_t storage (the mutex overlay's lazy
/// adoption, verbatim: PTHREAD_RWLOCK_INITIALIZER is all-zero).
ShimRwLock* adopt(pthread_rwlock_t* rw) {
  auto* srw = reinterpret_cast<ShimRwLock*>(rw);
  // mo: acquire peek — pairs with the kReady release below so an
  // adopted object's vt/storage are visible.
  std::uint32_t cur = srw->magic.load(std::memory_order_acquire);
  if (cur == ShimRwLock::kReady) return srw;
  std::uint32_t expected = 0;
  // mo: acq_rel claim — exactly one adopter wins; acquire on failure
  // orders the kReady poll below after the winner's stores.
  if (srw->magic.compare_exchange_strong(expected, ShimRwLock::kIniting,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    srw->vt = &selected_rwlock();
    srw->vt->construct(srw->storage);
    // mo: relaxed — the kReady release below publishes it.
    srw->wheld.store(0, std::memory_order_relaxed);
    // mo: release — publishes vt/storage/wheld to acquiring peeks.
    srw->magic.store(ShimRwLock::kReady, std::memory_order_release);
    return srw;
  }
  // mo: acquire poll — pairs with the winner's kReady release.
  while (srw->magic.load(std::memory_order_acquire) != ShimRwLock::kReady) {
    cpu_relax();
  }
  return srw;
}

/// Deadline-polled acquisition for the timed entry points: bounded
/// try + sleep until `abstime` on `clock`. Not a queued wait — the
/// hosted algorithms have no cancellable queue entry — but POSIX only
/// promises the deadline, which this honors on the kernel's clock.
template <typename TryFn>
int timed_poll(clockid_t clock, const struct timespec* abstime,
               const TryFn& try_acquire) {
  if (abstime == nullptr ||
      abstime->tv_nsec < 0 || abstime->tv_nsec >= 1000000000L) {
    return EINVAL;
  }
  constexpr long kPollNanos = 500 * 1000;  // 0.5 ms between attempts
  for (std::uint32_t spin = 0;; ++spin) {
    if (try_acquire()) return 0;
    struct timespec now;
    if (clock_gettime(clock, &now) != 0) return EINVAL;
    if (now.tv_sec > abstime->tv_sec ||
        (now.tv_sec == abstime->tv_sec && now.tv_nsec >= abstime->tv_nsec)) {
      return ETIMEDOUT;
    }
    if (spin < 64) {
      cpu_relax();
    } else {
      struct timespec nap{0, kPollNanos};
      nanosleep(&nap, nullptr);
    }
  }
}

}  // namespace

int ShimRwLock::shim_init(pthread_rwlock_t* rw,
                          const pthread_rwlockattr_t* attr) {
  if (rw == nullptr) return EINVAL;
  if (attr != nullptr) {
    int pshared = PTHREAD_PROCESS_PRIVATE;
    if (pthread_rwlockattr_getpshared(attr, &pshared) == 0 &&
        pshared == PTHREAD_PROCESS_SHARED) {
      // Same rule as the mutex shim: pshared objects are glibc's.
      const int rc = route_pshared_init(rw, "pthread_rwlock", [&] {
        return real_pthread().rwlock_init(rw, attr);
      });
      if (rc >= 0) return rc;
    }
    // rwlockattr kind (reader/writer preference) is not modelled: the
    // hosted family is writer-preferring regardless.
  }
  // Clear any stale routing entry left by a destroy-less pshared
  // object previously at this address (see shim_mutex's init).
  if (ForeignRegistry::contains(rw)) ForeignRegistry::erase(rw);
  std::memset(static_cast<void*>(rw), 0, sizeof(*rw));
  adopt(rw);
  return 0;
}

int ShimRwLock::shim_destroy(pthread_rwlock_t* rw) {
  if (rw == nullptr) return EINVAL;
  if (ForeignRegistry::contains(rw)) {
    const int rc = real_pthread().rwlock_destroy(rw);
    ForeignRegistry::erase(rw);
    return rc;
  }
  auto* srw = reinterpret_cast<ShimRwLock*>(rw);
  // mo: acquire — pairs with adopt's kReady release before destroy.
  if (srw->magic.load(std::memory_order_acquire) == kReady) {
    srw->vt->destroy(srw->storage);
  }
  std::memset(static_cast<void*>(rw), 0, sizeof(*rw));
  return 0;
}

int ShimRwLock::shim_rdlock(pthread_rwlock_t* rw) {
  if (rw == nullptr) return EINVAL;
  if (ForeignRegistry::contains(rw)) return real_pthread().rwlock_rdlock(rw);
  ShimRwLock* srw = adopt(rw);
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  telemetry::on_shared_begin(h);
  srw->vt->lock_shared(srw->storage);
  telemetry::on_shared_acquired(h);
  return 0;
}

int ShimRwLock::shim_tryrdlock(pthread_rwlock_t* rw) {
  if (rw == nullptr) return EINVAL;
  if (ForeignRegistry::contains(rw)) {
    return real_pthread().rwlock_tryrdlock(rw);
  }
  ShimRwLock* srw = adopt(rw);
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  if (srw->vt->try_lock_shared(srw->storage)) {
    telemetry::on_shared_acquired(h);
    return 0;
  }
  telemetry::on_try_failure(h);
  return EBUSY;
}

int ShimRwLock::shim_timedrdlock(pthread_rwlock_t* rw,
                                 const struct timespec* abstime) {
  if (rw == nullptr) return EINVAL;
  if (ForeignRegistry::contains(rw)) {
    return real_pthread().rwlock_timedrdlock(rw, abstime);
  }
  ShimRwLock* srw = adopt(rw);
  // Telemetry at poll completion, not per attempt: a timed wait is one
  // acquisition (or one failure), however many 0.5 ms probes it took.
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  const int rc = timed_poll(CLOCK_REALTIME, abstime, [srw] {
    return srw->vt->try_lock_shared(srw->storage);
  });
  if (rc == 0) {
    telemetry::on_shared_acquired(h);
  } else if (rc == ETIMEDOUT) {
    telemetry::on_try_failure(h);
  }
  return rc;
}

int ShimRwLock::shim_clockrdlock(pthread_rwlock_t* rw, clockid_t clock,
                                 const struct timespec* abstime) {
  if (rw == nullptr) return EINVAL;
  if (clock != CLOCK_REALTIME && clock != CLOCK_MONOTONIC) return EINVAL;
  if (ForeignRegistry::contains(rw)) {
    const RealPthread& real = real_pthread();
    return real.rwlock_clockrdlock != nullptr
               ? real.rwlock_clockrdlock(rw, clock, abstime)
               : EINVAL;
  }
  ShimRwLock* srw = adopt(rw);
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  const int rc = timed_poll(clock, abstime, [srw] {
    return srw->vt->try_lock_shared(srw->storage);
  });
  if (rc == 0) {
    telemetry::on_shared_acquired(h);
  } else if (rc == ETIMEDOUT) {
    telemetry::on_try_failure(h);
  }
  return rc;
}

int ShimRwLock::shim_wrlock(pthread_rwlock_t* rw) {
  if (rw == nullptr) return EINVAL;
  if (ForeignRegistry::contains(rw)) return real_pthread().rwlock_wrlock(rw);
  ShimRwLock* srw = adopt(rw);
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  telemetry::on_lock_begin(h);
  srw->vt->lock(srw->storage);
  telemetry::on_lock_acquired(h);
  // mo: relaxed — wheld is only read by lock holders (see shim_unlock's
  // mode-dispatch comment); the lock itself orders it.
  srw->wheld.store(1, std::memory_order_relaxed);
  return 0;
}

int ShimRwLock::shim_trywrlock(pthread_rwlock_t* rw) {
  if (rw == nullptr) return EINVAL;
  if (ForeignRegistry::contains(rw)) {
    return real_pthread().rwlock_trywrlock(rw);
  }
  ShimRwLock* srw = adopt(rw);
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  if (!srw->vt->try_lock(srw->storage)) {
    telemetry::on_try_failure(h);
    return EBUSY;
  }
  telemetry::on_try_acquired(h);
  // mo: relaxed — holder-only flag; the lock orders it (shim_unlock).
  srw->wheld.store(1, std::memory_order_relaxed);
  return 0;
}

int ShimRwLock::shim_timedwrlock(pthread_rwlock_t* rw,
                                 const struct timespec* abstime) {
  if (rw == nullptr) return EINVAL;
  if (ForeignRegistry::contains(rw)) {
    return real_pthread().rwlock_timedwrlock(rw, abstime);
  }
  ShimRwLock* srw = adopt(rw);
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  const int rc = timed_poll(CLOCK_REALTIME, abstime, [srw] {
    return srw->vt->try_lock(srw->storage);
  });
  if (rc == 0) {
    telemetry::on_try_acquired(h);
    // mo: relaxed — holder-only flag; the lock orders it (shim_unlock).
    srw->wheld.store(1, std::memory_order_relaxed);
  } else if (rc == ETIMEDOUT) {
    telemetry::on_try_failure(h);
  }
  return rc;
}

int ShimRwLock::shim_clockwrlock(pthread_rwlock_t* rw, clockid_t clock,
                                 const struct timespec* abstime) {
  if (rw == nullptr) return EINVAL;
  if (clock != CLOCK_REALTIME && clock != CLOCK_MONOTONIC) return EINVAL;
  if (ForeignRegistry::contains(rw)) {
    const RealPthread& real = real_pthread();
    return real.rwlock_clockwrlock != nullptr
               ? real.rwlock_clockwrlock(rw, clock, abstime)
               : EINVAL;
  }
  ShimRwLock* srw = adopt(rw);
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  const int rc = timed_poll(clock, abstime, [srw] {
    return srw->vt->try_lock(srw->storage);
  });
  if (rc == 0) {
    telemetry::on_try_acquired(h);
    // mo: relaxed — holder-only flag; the lock orders it (shim_unlock).
    srw->wheld.store(1, std::memory_order_relaxed);
  } else if (rc == ETIMEDOUT) {
    telemetry::on_try_failure(h);
  }
  return rc;
}

int ShimRwLock::shim_unlock(pthread_rwlock_t* rw) {
  if (rw == nullptr) return EINVAL;
  if (ForeignRegistry::contains(rw)) return real_pthread().rwlock_unlock(rw);
  ShimRwLock* srw = adopt(rw);
  // Mode dispatch: wheld is set only between a write acquire and its
  // release, and readers run only while no writer holds — so a reader
  // unlocking always reads it clear, and the writer (the sole holder)
  // always reads its own store.
  const telemetry::TelemetryHandle h = rwlock_family_handle();
  // mo: relaxed — holder-only flag; the comment above is the
  // ordering argument (the rwlock itself is the synchronizer).
  if (srw->wheld.load(std::memory_order_relaxed) != 0) {
    srw->wheld.store(0, std::memory_order_relaxed);
    telemetry::on_unlock_begin(h);
    srw->vt->unlock(srw->storage);
    telemetry::on_unlock_end(h);
  } else {
    // Attribution only — reader holds are not timed (any_lock.hpp's
    // unlock_shared makes the same call for the same reason).
    telemetry::on_shared_begin(h);
    srw->vt->unlock_shared(srw->storage);
    telemetry::on_unlock_end(h);
  }
  return 0;
}

}  // namespace hemlock::interpose
