#include "interpose/foreign.hpp"

#include <dlfcn.h>

#include <atomic>
#include <cstdio>

#include "runtime/pause.hpp"

namespace hemlock::interpose {

namespace {

/// Slots hold routed object addresses; empty slots are null. A tiny
/// TTAS spinlock guards mutations only — contains() scans lock-free.
std::atomic<const void*> g_slots[ForeignRegistry::kCapacity];
std::atomic<std::size_t> g_count{0};
std::atomic<std::uint32_t> g_mutate_lock{0};

struct MutateGuard {
  MutateGuard() {
    for (;;) {
      std::uint32_t expected = 0;
      // mo: acquire TAS — pairs with ~MutateGuard's release; the prior
      // mutator's slot edits are visible. Relaxed on failure.
      if (g_mutate_lock.compare_exchange_weak(expected, 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
        return;
      }
      // mo: relaxed TTAS poll — the acquiring CAS re-synchronizes.
      while (g_mutate_lock.load(std::memory_order_relaxed) != 0) {
        cpu_relax();
      }
    }
  }
  ~MutateGuard() {
    // mo: release — publishes this mutator's slot edits.
    g_mutate_lock.store(0, std::memory_order_release);
  }
};

}  // namespace

bool ForeignRegistry::insert(const void* obj) noexcept {
  MutateGuard g;
  for (auto& slot : g_slots) {
    // mo: relaxed scan — the mutate lock is held; slots are stable.
    if (slot.load(std::memory_order_relaxed) == nullptr) {
      // mo: release — publishes the routed address to lock-free
      // contains() scans.
      slot.store(obj, std::memory_order_release);
      // Count is bumped after the slot is visible: a contains() that
      // reads the new count also sees the slot (release/acquire), and
      // the object's own init-before-use ordering covers the rest.
      // mo: release — see the comment above.
      g_count.fetch_add(1, std::memory_order_release);
      return true;
    }
  }
  std::fprintf(stderr,
               "[hemlock-interpose] pshared registry full (%zu objects); "
               "refusing to initialize another PROCESS_SHARED object\n",
               kCapacity);
  return false;
}

void ForeignRegistry::erase(const void* obj) noexcept {
  MutateGuard g;
  for (auto& slot : g_slots) {
    // mo: relaxed scan — the mutate lock is held; slots are stable.
    if (slot.load(std::memory_order_relaxed) == obj) {
      // mo: release pair — unpublish the slot, then the count, so a
      // fast-path contains() that still sees count>0 rescans safely.
      slot.store(nullptr, std::memory_order_release);
      g_count.fetch_sub(1, std::memory_order_release);
      return;
    }
  }
}

bool ForeignRegistry::contains(const void* obj) noexcept {
  // mo: acquire fast path — pairs with insert's count release; a
  // nonzero count guarantees the slot stores below are visible.
  if (g_count.load(std::memory_order_acquire) == 0) return false;
  for (const auto& slot : g_slots) {
    // mo: acquire — pairs with insert's slot release store.
    if (slot.load(std::memory_order_acquire) == obj) return true;
  }
  return false;
}

std::size_t ForeignRegistry::size() noexcept {
  // mo: acquire — diagnostic read, ordered after the latest insert.
  return g_count.load(std::memory_order_acquire);
}

namespace {

template <typename Fn>
void resolve(Fn*& out, const char* name) noexcept {
  // RTLD_NEXT: the definition after the object containing this call —
  // glibc's, whether this code sits in the preload .so or in a test
  // binary linking hemlock_core directly. dlsym performs no
  // allocation on this path, so it is safe inside the shim.
  out = reinterpret_cast<Fn*>(dlsym(RTLD_NEXT, name));
}

RealPthread resolve_real() noexcept {
  RealPthread r;
  resolve(r.mutex_init, "pthread_mutex_init");
  resolve(r.mutex_destroy, "pthread_mutex_destroy");
  resolve(r.mutex_lock, "pthread_mutex_lock");
  resolve(r.mutex_trylock, "pthread_mutex_trylock");
  resolve(r.mutex_unlock, "pthread_mutex_unlock");
  resolve(r.cond_init, "pthread_cond_init");
  resolve(r.cond_destroy, "pthread_cond_destroy");
  resolve(r.cond_wait, "pthread_cond_wait");
  resolve(r.cond_timedwait, "pthread_cond_timedwait");
  resolve(r.cond_signal, "pthread_cond_signal");
  resolve(r.cond_broadcast, "pthread_cond_broadcast");
  resolve(r.cond_clockwait, "pthread_cond_clockwait");
  resolve(r.rwlock_init, "pthread_rwlock_init");
  resolve(r.rwlock_destroy, "pthread_rwlock_destroy");
  resolve(r.rwlock_rdlock, "pthread_rwlock_rdlock");
  resolve(r.rwlock_tryrdlock, "pthread_rwlock_tryrdlock");
  resolve(r.rwlock_timedrdlock, "pthread_rwlock_timedrdlock");
  resolve(r.rwlock_wrlock, "pthread_rwlock_wrlock");
  resolve(r.rwlock_trywrlock, "pthread_rwlock_trywrlock");
  resolve(r.rwlock_timedwrlock, "pthread_rwlock_timedwrlock");
  resolve(r.rwlock_unlock, "pthread_rwlock_unlock");
  resolve(r.rwlock_clockrdlock, "pthread_rwlock_clockrdlock");
  resolve(r.rwlock_clockwrlock, "pthread_rwlock_clockwrlock");
  // Every pointer the foreign-routing paths call unconditionally must
  // resolve before any object is routed; only the glibc>=2.30 clock
  // entry points (null-checked at their call sites) may be absent.
  r.resolved = r.mutex_init != nullptr && r.mutex_destroy != nullptr &&
               r.mutex_lock != nullptr && r.mutex_trylock != nullptr &&
               r.mutex_unlock != nullptr && r.cond_init != nullptr &&
               r.cond_destroy != nullptr && r.cond_wait != nullptr &&
               r.cond_timedwait != nullptr && r.cond_signal != nullptr &&
               r.cond_broadcast != nullptr && r.rwlock_init != nullptr &&
               r.rwlock_destroy != nullptr && r.rwlock_rdlock != nullptr &&
               r.rwlock_tryrdlock != nullptr &&
               r.rwlock_timedrdlock != nullptr &&
               r.rwlock_wrlock != nullptr && r.rwlock_trywrlock != nullptr &&
               r.rwlock_timedwrlock != nullptr && r.rwlock_unlock != nullptr;
  return r;
}

}  // namespace

const RealPthread& real_pthread() noexcept {
  static const RealPthread real = resolve_real();
  return real;
}

void warn_pshared_once(const char* what) noexcept {
  static std::atomic<bool> warned{false};
  // mo: relaxed — print-once latch; no data is published.
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(
        stderr,
        "[hemlock-interpose] %s initialized with PTHREAD_PROCESS_SHARED: "
        "hemlock's overlay is process-local, so pshared objects are routed "
        "to glibc (this notice prints once; further pshared objects route "
        "silently)\n",
        what);
  }
}

void warn_pshared_unroutable(const char* what) noexcept {
  std::fprintf(stderr,
               "[hemlock-interpose] PTHREAD_PROCESS_SHARED %s but the real "
               "pthread symbols could not be resolved; hosting "
               "process-locally (cross-process use will NOT work)\n",
               what);
}

}  // namespace hemlock::interpose
