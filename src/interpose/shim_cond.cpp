#include "interpose/shim_cond.hpp"

#include <errno.h>
#include <sched.h>
#include <time.h>

#include <cstdio>
#include <cstring>

#include "api/factory.hpp"
#include "interpose/foreign.hpp"
#include "interpose/shim_mutex.hpp"
#include "runtime/futex.hpp"
#include "stats/telemetry.hpp"

namespace hemlock::interpose {

std::vector<std::string_view> supported_cond_lock_names() {
  std::vector<std::string_view> names;
  for (const LockVTable* vt : LockFactory::instance().entries()) {
    if (shim_cond_capable(vt->info)) names.push_back(vt->info.name);
  }
  return names;
}

CondStats& cond_stats() noexcept {
  static CondStats stats;
  return stats;
}

namespace {

/// Adopt the pthread_cond_t storage. Unlike the mutex overlay there is
/// nothing to construct — the all-zero state (PTHREAD_COND_INITIALIZER)
/// is already a valid fresh condvar — so adoption is one CAS that
/// claims the magic word for lifecycle accounting.
ShimCond* adopt(pthread_cond_t* c) {
  auto* sc = reinterpret_cast<ShimCond*>(c);
  std::uint32_t expected = 0;
  // mo: acquire peek + acq_rel claim — the winning CAS publishes the
  // adopted state; losers acquire the winner's claim (either via the
  // peek or the CAS failure load) before using the condvar.
  if (sc->magic.load(std::memory_order_acquire) != ShimCond::kReady &&
      sc->magic.compare_exchange_strong(expected, ShimCond::kReady,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    // mo: relaxed — monotonic stats counter, no ordering needed.
    cond_stats().adopted.fetch_add(1, std::memory_order_relaxed);
    // Registered here, not at static init, so the telemetry snapshot
    // carries a cond block exactly when the condvar overlay was
    // exercised (re-registration by later adoptions is idempotent).
    telemetry::set_cond_source(+[] {
      const CondStats& s = cond_stats();
      return telemetry::CondCounters{
          // mo: relaxed — monotonic diagnostics; a snapshot tolerates
          // counters read mid-update.
          s.adopted.load(std::memory_order_relaxed),
          s.waits.load(std::memory_order_relaxed),
          s.timeouts.load(std::memory_order_relaxed),
          s.signals.load(std::memory_order_relaxed),
          s.broadcasts.load(std::memory_order_relaxed),
          s.requeued.load(std::memory_order_relaxed),
          s.chain_wakes.load(std::memory_order_relaxed)};
    });
  }
  return sc;
}

/// Nanoseconds until `abstime` on `clock`; <= 0 when the deadline has
/// passed. Large deadlines are clamped (no int64 overflow from
/// TIME_MAX-style sentinels applications like to pass).
std::int64_t nanos_until(clockid_t clock, const struct timespec* abstime) {
  struct timespec now;
  if (clock_gettime(clock, &now) != 0) return 0;
  const std::int64_t sec = static_cast<std::int64_t>(abstime->tv_sec) -
                           static_cast<std::int64_t>(now.tv_sec);
  if (sec > 1000000000LL) return 1000000000000000000LL;  // ~31 years
  if (sec < -1000000000LL) return -1;
  return sec * 1000000000LL +
         (static_cast<std::int64_t>(abstime->tv_nsec) - now.tv_nsec);
}

/// Hand one chained sleeper over: wake a single waiter that broadcast
/// requeued onto the chain word. Runs on every path out of a wait
/// (normal, spurious, timed out), so a sleeper leaving without
/// consuming a wake still propagates the chain — the unraveling
/// survives timeouts.
///
/// The wake is normally paid for with a credit (skipping the syscall
/// when none remain — the signal-only common case). While a broadcast
/// window is open, though, credits lag reality: the requeue may have
/// parked sleepers whose credits are not posted yet, and a credit
/// claimed *now* could spend its wake on the still-empty chain an
/// instant before they arrive — stranding one of them forever. So an
/// open window forces the unconditional wake and leaves the credits
/// alone; a wasted wake on an empty chain is one no-op syscall.
void hand_over_chain(ShimCond* sc) {
  // mo: seq_cst window check and credit claim — totally ordered
  // against broadcast's window open / requeue / credit post sequence,
  // so a credit can never be claimed inside a window it cannot see.
  if (sc->windows.load(std::memory_order_seq_cst) == 0) {
    std::int32_t credits = sc->chained.load(std::memory_order_seq_cst);
    while (credits > 0 &&
           // mo: seq_cst claim — same total order as above.
           !sc->chained.compare_exchange_weak(credits, credits - 1,
                                              std::memory_order_seq_cst)) {
    }
    if (credits <= 0) return;
  }
  futex_wake(&sc->chain, 1);
  // mo: relaxed — monotonic stats counter, no ordering needed.
  cond_stats().chain_wakes.fetch_add(1, std::memory_order_relaxed);
}

int wait_common(pthread_cond_t* c, pthread_mutex_t* m, clockid_t clock,
                const struct timespec* abstime) {
  if (c == nullptr || m == nullptr) return EINVAL;
  if (abstime != nullptr &&
      (abstime->tv_nsec < 0 || abstime->tv_nsec >= 1000000000L)) {
    return EINVAL;  // checked before any state change: the mutex stays held
  }
  ShimCond* sc = adopt(c);
  // mo: relaxed — monotonic stats counter, no ordering needed.
  cond_stats().waits.fetch_add(1, std::memory_order_relaxed);

  // POSIX requires every concurrent waiter to use the same mutex;
  // glibc makes the mismatch undefined, we make it EINVAL.
  // mo: relaxed mutex association — a best-effort diagnostic, not a
  // synchronization edge (the seq_cst census guards the real check);
  // callers holding m serialize the store.
  pthread_mutex_t* prev = sc->mutex.load(std::memory_order_relaxed);
  if (prev != m) {
    // mo: seq_cst census read — ordered against waiters' seq_cst
    // registration so a zero here proves no concurrent waiter.
    if (prev != nullptr && sc->waiters.load(std::memory_order_seq_cst) != 0) {
      return EINVAL;
    }
    sc->mutex.store(m, std::memory_order_relaxed);  // mo: see above
  }

  // Register before snapshotting: signal's skip-the-syscall gate loads
  // the census after its seq bump, so a registered waiter either gets
  // the wake syscall or observes the bumped sequence at sleep time.
  // mo: seq_cst register-then-snapshot — Dekker with signal's seq_cst
  // bump-then-census-read; both orders in the single total order.
  sc->waiters.fetch_add(1, std::memory_order_seq_cst);
  const std::uint32_t snap = sc->seq.load(std::memory_order_seq_cst);

  ShimMutex::shim_unlock(m);

  // One sleep, no re-check loop: whatever ends the sleep — a signal's
  // wake, a requeued chain hand-over, a timeout, EINTR, or the kernel
  // refusing because seq already moved — surfaces to the caller as a
  // (POSIX-sanctioned) possibly-spurious wakeup. The lost-wakeup race
  // between unlock and sleep is closed by futex's atomic compare of
  // seq against the pre-unlock snapshot.
  bool timed_out = false;
  if (abstime == nullptr) {
    futex_wait(&sc->seq, snap);
  } else {
    const std::int64_t rel = nanos_until(clock, abstime);
    if (rel <= 0) {
      timed_out = true;
    } else {
      // ETIMEDOUT comes from the kernel's clock, not a userspace
      // re-read racing the wakeup; every other reason reads as a wake.
      timed_out = futex_wait_for(&sc->seq, snap, rel) == ETIMEDOUT;
    }
  }

  // Both remaining touches of the condvar happen *before* the mutex
  // re-acquisition: a broadcaster may destroy the condvar as soon as
  // the drain below sees zero waiters, even while holding the mutex.
  hand_over_chain(sc);
  // mo: release deregistration — our final touch of the condvar
  // storage happens-before destroy's acquire drain observing zero.
  sc->waiters.fetch_sub(1, std::memory_order_release);

  ShimMutex::shim_lock(m);
  if (timed_out) {
    // mo: relaxed — monotonic stats counter, no ordering needed.
    cond_stats().timeouts.fetch_add(1, std::memory_order_relaxed);
    return ETIMEDOUT;
  }
  return 0;
}

}  // namespace

int ShimCond::shim_init(pthread_cond_t* c, const pthread_condattr_t* attr) {
  if (c == nullptr) return EINVAL;
  if (attr != nullptr) {
    int pshared = PTHREAD_PROCESS_PRIVATE;
    if (pthread_condattr_getpshared(attr, &pshared) == 0 &&
        pshared == PTHREAD_PROCESS_SHARED) {
      // Same rule as the mutex shim: pshared objects are glibc's.
      const int rc = route_pshared_init(
          c, "pthread_cond", [&] { return real_pthread().cond_init(c, attr); });
      if (rc >= 0) return rc;
    }
  }
  // Clear any stale routing entry left by a destroy-less pshared
  // object previously at this address (see shim_mutex's init).
  if (ForeignRegistry::contains(c)) ForeignRegistry::erase(c);
  std::memset(static_cast<void*>(c), 0, sizeof(*c));
  ShimCond* sc = adopt(c);
  clockid_t ck = CLOCK_REALTIME;
  if (attr != nullptr && pthread_condattr_getclock(attr, &ck) == 0) {
    // mo: relaxed — written during init, before the condvar is shared;
    // the caller publishes the condvar object itself.
    sc->clock.store(static_cast<std::int32_t>(ck),
                    std::memory_order_relaxed);
  }
  return 0;
}

int ShimCond::shim_destroy(pthread_cond_t* c) {
  if (c == nullptr) return EINVAL;
  if (ForeignRegistry::contains(c)) {
    const int rc = real_pthread().cond_destroy(c);
    ForeignRegistry::erase(c);
    return rc;
  }
  auto* sc = reinterpret_cast<ShimCond*>(c);
  // mo: acquire — pairs with adopt's claim so an adopted condvar's
  // state is visible before we drain it.
  if (sc->magic.load(std::memory_order_acquire) == kReady) {
    // Drain: threads still inside wait (POSIX allows destroy as soon
    // as they have all been *signaled*) may not have deregistered yet.
    // Keep bumping seq — so a waiter between unlock and sleep refuses
    // the sleep — and waking both words until every waiter has made
    // its final touch of this storage. Waiters deregister before
    // re-acquiring the mutex, so this loop terminates even when the
    // destroyer still holds the associated mutex.
    // mo: acquire drain — pairs with waiters' release deregistration,
    // so zero means every waiter's last touch of this storage is
    // visible before the memset below.
    while (sc->waiters.load(std::memory_order_acquire) != 0) {
      // mo: seq_cst bump — same total order as the waiters' snapshot,
      // so a waiter between unlock and sleep refuses the stale sleep.
      sc->seq.fetch_add(1, std::memory_order_seq_cst);
      futex_wake_all(&sc->seq);
      futex_wake_all(&sc->chain);
      sched_yield();
    }
  }
  std::memset(static_cast<void*>(c), 0, sizeof(*c));
  return 0;
}

namespace {

/// A glibc-routed (pshared) condvar may only wait on a glibc-routed
/// mutex: handing glibc's cond_wait a hemlock-hosted mutex would let
/// glibc manipulate the overlay bytes as its own mutex state. POSIX
/// already makes a pshared condvar with a non-pshared mutex
/// undefined; the shim makes it a loud EINVAL.
bool foreign_wait_mutex_ok(pthread_mutex_t* m) {
  if (m != nullptr && ForeignRegistry::contains(m)) return true;
  static std::atomic<bool> warned{false};
  // mo: relaxed — once-only warning gate; no data is published.
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "[hemlock-interpose] PROCESS_SHARED condvar waited on a "
                 "process-local (hemlock-hosted) mutex: refusing with "
                 "EINVAL — a pshared condvar needs a pshared mutex\n");
  }
  return false;
}

}  // namespace

int ShimCond::shim_wait(pthread_cond_t* c, pthread_mutex_t* m) {
  if (c != nullptr && ForeignRegistry::contains(c)) {
    if (!foreign_wait_mutex_ok(m)) return EINVAL;
    return real_pthread().cond_wait(c, m);
  }
  return wait_common(c, m, CLOCK_REALTIME, nullptr);
}

int ShimCond::shim_timedwait(pthread_cond_t* c, pthread_mutex_t* m,
                             const struct timespec* abstime) {
  if (abstime == nullptr) return EINVAL;
  if (c != nullptr && ForeignRegistry::contains(c)) {
    if (!foreign_wait_mutex_ok(m)) return EINVAL;
    return real_pthread().cond_timedwait(c, m, abstime);
  }
  if (c == nullptr) return EINVAL;
  // The deadline is measured on the condvar's configured clock
  // (condattr; CLOCK_REALTIME when defaulted or statically
  // initialized) — previously hard-coded to CLOCK_REALTIME, which
  // turned CLOCK_MONOTONIC deadlines into immediate timeouts.
  // mo: relaxed — clock is fixed at init time, before sharing.
  const auto clock = static_cast<clockid_t>(
      adopt(c)->clock.load(std::memory_order_relaxed));
  return wait_common(c, m, clock, abstime);
}

int ShimCond::shim_clockwait(pthread_cond_t* c, pthread_mutex_t* m,
                             clockid_t clock,
                             const struct timespec* abstime) {
  if (abstime == nullptr) return EINVAL;
  if (c != nullptr && ForeignRegistry::contains(c)) {
    if (!foreign_wait_mutex_ok(m)) return EINVAL;
    const RealPthread& real = real_pthread();
    if (real.cond_clockwait != nullptr) {
      return real.cond_clockwait(c, m, clock, abstime);
    }
    return EINVAL;
  }
  if (clock != CLOCK_REALTIME && clock != CLOCK_MONOTONIC) return EINVAL;
  return wait_common(c, m, clock, abstime);
}

int ShimCond::shim_signal(pthread_cond_t* c) {
  if (c == nullptr) return EINVAL;
  if (ForeignRegistry::contains(c)) return real_pthread().cond_signal(c);
  ShimCond* sc = adopt(c);
  // mo: relaxed — monotonic stats counter, no ordering needed.
  cond_stats().signals.fetch_add(1, std::memory_order_relaxed);
  // mo: seq_cst bump-then-census-read — Dekker with wait_common's
  // register-then-snapshot (see the census gate comment below).
  sc->seq.fetch_add(1, std::memory_order_seq_cst);
  // Census gate: a waiter registers (seq_cst) before snapshotting, so
  // reading zero here proves any not-yet-registered waiter will
  // snapshot the bumped sequence and refuse the stale sleep — the
  // syscall can be skipped. Signal wakes the seq word only: chained
  // sleepers were already awarded their broadcast and have dedicated
  // hand-over credits.
  // mo: seq_cst census read — the other half of the Dekker pair.
  if (sc->waiters.load(std::memory_order_seq_cst) != 0) {
    futex_wake(&sc->seq, 1);
  }
  return 0;
}

int ShimCond::shim_broadcast(pthread_cond_t* c) {
  if (c == nullptr) return EINVAL;
  if (ForeignRegistry::contains(c)) return real_pthread().cond_broadcast(c);
  ShimCond* sc = adopt(c);
  // mo: relaxed — monotonic stats counter, no ordering needed.
  cond_stats().broadcasts.fetch_add(1, std::memory_order_relaxed);
  // mo: seq_cst bump-then-census-read — same Dekker gate as signal.
  const std::uint32_t newseq =
      sc->seq.fetch_add(1, std::memory_order_seq_cst) + 1;
  const std::uint32_t est = sc->waiters.load(std::memory_order_seq_cst);
  if (est == 0) return 0;  // same census gate as signal

  // Open the broadcast window: between the requeue (which creates
  // chain sleepers) and the credit add (which covers them), the
  // credit pool undercounts — hand_over_chain wakes unconditionally
  // while it observes the window, so a waiter departing mid-window
  // cannot burn a credit on the still-empty chain and strand a
  // sleeper. Credits are then posted with the syscall's exact count.
  // The requeue cap of est - 1 means est (a census of every
  // pre-broadcast waiter) always covers the herd; only *post*-
  // broadcast sleepers (FIFO: they queue behind it) can be left on
  // seq, for their own future signal.
  // mo: seq_cst window open — totally ordered against
  // hand_over_chain's window check and credit claim.
  sc->windows.fetch_add(1, std::memory_order_seq_cst);
  const long moved = futex_cmp_requeue(&sc->seq, newseq, /*wake=*/1,
                                       /*requeue_cap=*/est - 1, &sc->chain);
  if (moved < 0) {
    // A concurrent signal/broadcast bumped seq between our add and the
    // syscall's compare (EAGAIN): nothing was woken or requeued.
    // Correctness over herd-avoidance: wake everyone on seq.
    futex_wake_all(&sc->seq);
  } else if (moved > 1) {
    const long requeued = moved - 1;
    // mo: seq_cst credit post — must order before the window close
    // below in the same total order hand_over_chain reads.
    sc->chained.fetch_add(static_cast<std::int32_t>(requeued),
                          std::memory_order_seq_cst);
    // mo: relaxed — monotonic stats counter, no ordering needed.
    cond_stats().requeued.fetch_add(static_cast<std::uint64_t>(requeued),
                                    std::memory_order_relaxed);
  }
  // mo: seq_cst window close — after the credit post above.
  sc->windows.fetch_sub(1, std::memory_order_seq_cst);
  return 0;
}

}  // namespace hemlock::interpose
