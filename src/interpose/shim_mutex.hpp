// shim_mutex.hpp — pthread_mutex_t overlay hosting any library lock.
//
// The paper's evaluation (§5): "We implemented all user-mode locks
// within LD_PRELOAD interposition libraries that expose the standard
// POSIX pthread_mutex_t programming interface ... This allows us to
// change lock implementations by varying the LD_PRELOAD environment
// variable and without modifying the application code that uses
// locks."
//
// ShimMutex is that mechanism's core: the selected lock algorithm's
// state is embedded *inside* the application's pthread_mutex_t
// storage (40 bytes on glibc/x86-64 — ample: every algorithm here
// fits in 16). The algorithm is chosen once per process from the
// HEMLOCK_LOCK environment variable. Statically initialized mutexes
// (PTHREAD_MUTEX_INITIALIZER — all-zero storage on glibc) are
// adopted lazily and race-safely on first use.
//
// Limitations (documented, matching the technique's scope):
//  * pthread_cond_* on an interposed mutex is NOT supported — the
//    real condvar implementation would manipulate raw mutex
//    internals that no longer exist. The paper's benchmarks
//    (MutexBench, LevelDB db_bench read paths) do not require it.
//  * hemlock-ah is deliberately NOT offered: Appendix B shows its
//    speculative unlock store is unsafe when a pthread mutex's
//    memory can be freed by its last user (the linux-kernel /
//    glibc bug-13690 pathology the paper cites).
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <string_view>

namespace hemlock::interpose {

/// Algorithms the shim can host.
enum class LockKind : std::uint32_t {
  kHemlock = 0,   ///< Listing 2 (CTR) — default
  kHemlockNaive,  ///< Listing 1
  kHemlockFaa,    ///< §2.1 FAA(0) polling
  kHemlockOhv1,   ///< Listing 5 (safe fast hand-over)
  kHemlockOhv2,   ///< Listing 6 (safe fast hand-over)
  kMcs,
  kClh,
  kTicket,
  kTas,
  kTtas,
};

/// Parse a HEMLOCK_LOCK value (lock_traits<>::name strings); returns
/// false for unknown/unsupported names (including "hemlock-ah").
bool parse_lock_kind(std::string_view name, LockKind* out);

/// Process-wide selection: $HEMLOCK_LOCK, defaulting to kHemlock;
/// unknown names fall back to the default (reported on stderr once).
LockKind selected_lock_kind();

/// The overlay. POSIX storage is adopted in place; all-zero bytes
/// (PTHREAD_MUTEX_INITIALIZER or fresh pthread_mutex_init) read as
/// "not yet adopted".
struct ShimMutex {
  static constexpr std::uint32_t kReady = 0x48454D4C;    // "HEML"
  static constexpr std::uint32_t kIniting = 0x494E4954;  // "INIT"

  std::atomic<std::uint32_t> magic;
  LockKind kind;
  alignas(8) unsigned char storage[24];

  // ---- the pthread_mutex_* surface -----------------------------------
  /// pthread_mutex_init: adopt eagerly with the process-wide kind.
  static int shim_init(pthread_mutex_t* m);
  /// pthread_mutex_destroy.
  static int shim_destroy(pthread_mutex_t* m);
  /// pthread_mutex_lock.
  static int shim_lock(pthread_mutex_t* m);
  /// pthread_mutex_trylock (EBUSY when held; algorithms without a
  /// try_lock — CLH — emulate correctly by locking... see .cpp).
  static int shim_trylock(pthread_mutex_t* m);
  /// pthread_mutex_unlock.
  static int shim_unlock(pthread_mutex_t* m);
};

static_assert(sizeof(ShimMutex) <= sizeof(pthread_mutex_t),
              "overlay must fit inside pthread_mutex_t");

}  // namespace hemlock::interpose
