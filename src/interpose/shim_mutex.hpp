// shim_mutex.hpp — pthread_mutex_t overlay hosting any library lock.
//
// The paper's evaluation (§5): "We implemented all user-mode locks
// within LD_PRELOAD interposition libraries that expose the standard
// POSIX pthread_mutex_t programming interface ... This allows us to
// change lock implementations by varying the LD_PRELOAD environment
// variable and without modifying the application code that uses
// locks."
//
// ShimMutex is that mechanism's core: the selected lock algorithm's
// state is embedded *inside* the application's pthread_mutex_t
// storage (40 bytes on glibc/x86-64). The algorithm is chosen once
// per process from the HEMLOCK_LOCK environment variable, resolved
// through the LockFactory — the same roster and the same
// name→algorithm dispatch as every other consumer; the shim keeps no
// table of its own. An algorithm is eligible ("hostable") iff its
// LockInfo says it fits the overlay budget and is
// pthread_overlay_safe. Statically initialized mutexes
// (PTHREAD_MUTEX_INITIALIZER — all-zero storage on glibc) are
// adopted lazily and race-safely on first use.
//
// Limitations (documented, matching the technique's scope):
//  * pthread_cond_* on an interposed mutex goes through the condvar
//    overlay (shim_cond.hpp) — glibc's own condvar would manipulate
//    raw mutex internals that no longer exist, so the preload library
//    interposes the full pthread_cond_* family alongside the mutexes.
//  * hemlock-ah is NOT hostable: Appendix B shows its speculative
//    unlock store is unsafe when a pthread mutex's memory can be
//    freed by its last user (the linux-kernel / glibc bug-13690
//    pathology the paper cites).
//  * hemlock-cv is NOT hostable: its parking path uses the very
//    pthread primitives being interposed.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "api/any_lock.hpp"

namespace hemlock::interpose {

/// Overlay budget for the hosted lock's state: what remains of
/// glibc's pthread_mutex_t after the adoption header.
inline constexpr std::size_t kShimStorageBytes = 24;
inline constexpr std::size_t kShimStorageAlign = 8;

/// True iff the algorithm may be hosted inside an interposed
/// pthread_mutex_t: fits the overlay budget and carries no lifecycle
/// hazard (info.pthread_overlay_safe).
constexpr bool shim_hostable(const LockInfo& info) noexcept {
  return info.size_bytes <= kShimStorageBytes &&
         info.align_bytes <= kShimStorageAlign && info.pthread_overlay_safe;
}

/// Factory names the shim accepts from HEMLOCK_LOCK (the hostable
/// subset of LockFactory::names(), registry order).
std::vector<std::string_view> supported_lock_names();

/// The pure selection rule behind selected_lock(), exposed for tests:
/// resolve (HEMLOCK_LOCK, HEMLOCK_WAIT) to a hostable factory entry.
///
///  * lock_env: factory name; unknown or non-hostable names fall back
///    to kDefaultLockName (reported on stderr).
///  * wait_env selects the waiting tier (core/waiting.hpp) by
///    re-selecting the lock *variant* within the chosen algorithm's
///    family:
///      "spin"  -> the bare name (pure busy-wait, paper-faithful)
///      "yield" -> "<base>-yield" (or "<base>-adaptive" as fallback)
///      "park"  -> "<base>-park"  (or "<base>-futex", so
///                 HEMLOCK_LOCK=hemlock HEMLOCK_WAIT=park parks too)
///      unset/"auto" -> pure-spin queue locks are hosted as their
///                 "-adaptive" (governed) variant, so oversubscription
///                 detected at run time escalates spin -> yield ->
///                 park instead of convoying; every other algorithm
///                 is hosted as named.
/// Allocation-free (this runs inside the application's first
/// pthread_mutex operation).
const LockVTable& resolve_shim_lock(const char* lock_env,
                                    const char* wait_env) noexcept;

/// Process-wide selection: resolve_shim_lock($HEMLOCK_LOCK,
/// $HEMLOCK_WAIT), computed once on first use.
const LockVTable& selected_lock();

/// The overlay. POSIX storage is adopted in place; all-zero bytes
/// (PTHREAD_MUTEX_INITIALIZER or fresh pthread_mutex_init) read as
/// "not yet adopted".
struct ShimMutex {
  static constexpr std::uint32_t kReady = 0x48454D4C;    // "HEML"
  static constexpr std::uint32_t kIniting = 0x494E4954;  // "INIT"

  std::atomic<std::uint32_t> magic;
  /// Dispatch table of the hosted algorithm (a static factory entry;
  /// set during adoption, constant thereafter).
  const LockVTable* vt;
  alignas(kShimStorageAlign) unsigned char storage[kShimStorageBytes];

  // ---- the pthread_mutex_* surface -----------------------------------
  /// pthread_mutex_init: adopt eagerly with the process-wide choice.
  /// A PTHREAD_PROCESS_SHARED attr routes the mutex to glibc instead
  /// (our overlay is process-local; hosting a pshared mutex would
  /// corrupt its cross-process users) — see interpose/foreign.hpp.
  /// Other attributes (recursive/errorcheck/robust) are not modelled.
  static int shim_init(pthread_mutex_t* m,
                       const pthread_mutexattr_t* attr = nullptr);
  /// pthread_mutex_destroy.
  static int shim_destroy(pthread_mutex_t* m);
  /// pthread_mutex_lock.
  static int shim_lock(pthread_mutex_t* m);
  /// pthread_mutex_trylock (EBUSY when held; algorithms without a
  /// native try_lock — CLH — conservatively report EBUSY, which
  /// callers must treat as "retry or lock()" anyway).
  static int shim_trylock(pthread_mutex_t* m);
  /// pthread_mutex_unlock.
  static int shim_unlock(pthread_mutex_t* m);
};

static_assert(sizeof(ShimMutex) <= sizeof(pthread_mutex_t),
              "overlay must fit inside pthread_mutex_t");

}  // namespace hemlock::interpose
