// pthread_interpose.cpp — the LD_PRELOAD surface.
//
// Compiled only into libhemlock_preload.so. Defines the strong
// pthread_mutex_*, pthread_cond_* and pthread_rwlock_* symbols so a
// preloaded application's mutexes are transparently replaced by the
// HEMLOCK_LOCK-selected algorithm, its condition variables by the
// futex overlay that knows how to wait on those mutexes, and its
// reader-writer locks by the HEMLOCK_RWLOCK-selected compact rwlock —
// the paper's §5 evaluation mechanism, widened from mutex-only
// programs to the full wait/notify and read-mostly workloads real
// preload targets run:
//
//   LD_PRELOAD=libhemlock_preload.so HEMLOCK_LOCK=hemlock ./app
//
// Symbol versioning: glibc exports these functions under versioned
// names (x86-64: pthread_cond_* at the default GLIBC_2.3.2 plus the
// GLIBC_2.2.5 compat set; other architectures use their own baseline
// tags, e.g. GLIBC_2.17 on aarch64). We deliberately define the
// symbols UNVERSIONED: the dynamic linker's versioned lookup matches
// an unversioned definition in an interposing object against *any*
// requested version, so one definition here covers both glibc symbol
// versions on every architecture — whereas baking version tags in
// (.symver + a version script) would hardwire per-arch glibc history
// for zero additional coverage.
//
// Internal library synchronization is interposition-safe by
// construction: the thread registry uses a private raw spinlock, the
// node pools use only atomics, and the condvar overlay allocates
// nothing — no call path below re-enters the interposed surface
// except the overlay's own deliberate mutex re-acquisition.
#include <pthread.h>
#include <time.h>

#include "interpose/shim_cond.hpp"
#include "interpose/shim_mutex.hpp"
#include "interpose/shim_rwlock.hpp"

using hemlock::interpose::ShimCond;
using hemlock::interpose::ShimMutex;
using hemlock::interpose::ShimRwLock;

extern "C" {

// ---- pthread_mutex_* -------------------------------------------------

int pthread_mutex_init(pthread_mutex_t* m, const pthread_mutexattr_t* attr) {
  // PTHREAD_PROCESS_SHARED routes to glibc (the overlay is
  // process-local); other attributes (recursive/errorcheck/robust)
  // are not modelled — the paper's framework likewise exposes plain
  // mutex semantics.
  return ShimMutex::shim_init(m, attr);
}

int pthread_mutex_destroy(pthread_mutex_t* m) {
  return ShimMutex::shim_destroy(m);
}

int pthread_mutex_lock(pthread_mutex_t* m) { return ShimMutex::shim_lock(m); }

int pthread_mutex_trylock(pthread_mutex_t* m) {
  return ShimMutex::shim_trylock(m);
}

int pthread_mutex_unlock(pthread_mutex_t* m) {
  return ShimMutex::shim_unlock(m);
}

// ---- pthread_cond_* --------------------------------------------------

int pthread_cond_init(pthread_cond_t* c, const pthread_condattr_t* attr) {
  // The condattr clock is honored (timedwait measures deadlines on
  // it); PTHREAD_PROCESS_SHARED routes to glibc.
  return ShimCond::shim_init(c, attr);
}

int pthread_cond_destroy(pthread_cond_t* c) {
  return ShimCond::shim_destroy(c);
}

int pthread_cond_wait(pthread_cond_t* c, pthread_mutex_t* m) {
  return ShimCond::shim_wait(c, m);
}

int pthread_cond_timedwait(pthread_cond_t* c, pthread_mutex_t* m,
                           const struct timespec* abstime) {
  return ShimCond::shim_timedwait(c, m, abstime);
}

int pthread_cond_clockwait(pthread_cond_t* c, pthread_mutex_t* m,
                           clockid_t clock, const struct timespec* abstime) {
  return ShimCond::shim_clockwait(c, m, clock, abstime);
}

int pthread_cond_signal(pthread_cond_t* c) { return ShimCond::shim_signal(c); }

int pthread_cond_broadcast(pthread_cond_t* c) {
  return ShimCond::shim_broadcast(c);
}

// ---- pthread_rwlock_* ------------------------------------------------

int pthread_rwlock_init(pthread_rwlock_t* rw,
                        const pthread_rwlockattr_t* attr) {
  return ShimRwLock::shim_init(rw, attr);
}

int pthread_rwlock_destroy(pthread_rwlock_t* rw) {
  return ShimRwLock::shim_destroy(rw);
}

int pthread_rwlock_rdlock(pthread_rwlock_t* rw) {
  return ShimRwLock::shim_rdlock(rw);
}

int pthread_rwlock_tryrdlock(pthread_rwlock_t* rw) {
  return ShimRwLock::shim_tryrdlock(rw);
}

int pthread_rwlock_timedrdlock(pthread_rwlock_t* rw,
                               const struct timespec* abstime) {
  return ShimRwLock::shim_timedrdlock(rw, abstime);
}

int pthread_rwlock_clockrdlock(pthread_rwlock_t* rw, clockid_t clock,
                               const struct timespec* abstime) {
  return ShimRwLock::shim_clockrdlock(rw, clock, abstime);
}

int pthread_rwlock_wrlock(pthread_rwlock_t* rw) {
  return ShimRwLock::shim_wrlock(rw);
}

int pthread_rwlock_trywrlock(pthread_rwlock_t* rw) {
  return ShimRwLock::shim_trywrlock(rw);
}

int pthread_rwlock_timedwrlock(pthread_rwlock_t* rw,
                               const struct timespec* abstime) {
  return ShimRwLock::shim_timedwrlock(rw, abstime);
}

int pthread_rwlock_clockwrlock(pthread_rwlock_t* rw, clockid_t clock,
                               const struct timespec* abstime) {
  return ShimRwLock::shim_clockwrlock(rw, clock, abstime);
}

int pthread_rwlock_unlock(pthread_rwlock_t* rw) {
  return ShimRwLock::shim_unlock(rw);
}

}  // extern "C"
