// pthread_interpose.cpp — the LD_PRELOAD surface.
//
// Compiled only into libhemlock_preload.so. Defines the strong
// pthread_mutex_* symbols so a preloaded application's mutexes are
// transparently replaced by the HEMLOCK_LOCK-selected algorithm —
// the paper's §5 evaluation mechanism:
//
//   LD_PRELOAD=libhemlock_preload.so HEMLOCK_LOCK=hemlock ./app
//
// Scope: mutex operations only (see shim_mutex.hpp for the condvar
// limitation). Internal library synchronization is interposition-safe
// by construction: the thread registry uses a private raw spinlock
// and the node pools use only atomics, so no call path below re-enters
// pthread_mutex_lock.
#include <pthread.h>

#include "interpose/shim_mutex.hpp"

using hemlock::interpose::ShimMutex;

extern "C" {

int pthread_mutex_init(pthread_mutex_t* m,
                       const pthread_mutexattr_t* /*attr*/) {
  // Attributes (recursive/errorcheck/robust) are not modelled — the
  // paper's framework likewise exposes plain mutex semantics.
  return ShimMutex::shim_init(m);
}

int pthread_mutex_destroy(pthread_mutex_t* m) {
  return ShimMutex::shim_destroy(m);
}

int pthread_mutex_lock(pthread_mutex_t* m) { return ShimMutex::shim_lock(m); }

int pthread_mutex_trylock(pthread_mutex_t* m) {
  return ShimMutex::shim_trylock(m);
}

int pthread_mutex_unlock(pthread_mutex_t* m) {
  return ShimMutex::shim_unlock(m);
}

}  // extern "C"
