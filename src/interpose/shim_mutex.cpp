#include "interpose/shim_mutex.hpp"

#include <errno.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "core/hemlock.hpp"
#include "core/hemlock_ohv.hpp"
#include "locks/clh.hpp"
#include "locks/mcs.hpp"
#include "locks/tas.hpp"
#include "locks/ticket.hpp"
#include "runtime/pause.hpp"

namespace hemlock::interpose {

namespace {

/// Visit the hosted lock object with the right static type. Every
/// algorithm here fits ShimMutex::storage (checked below).
template <typename Fn>
decltype(auto) dispatch(LockKind kind, unsigned char* storage, Fn&& fn) {
  switch (kind) {
    case LockKind::kHemlock:
      return fn(*reinterpret_cast<Hemlock*>(storage));
    case LockKind::kHemlockNaive:
      return fn(*reinterpret_cast<HemlockNaive*>(storage));
    case LockKind::kHemlockFaa:
      return fn(*reinterpret_cast<HemlockFaa*>(storage));
    case LockKind::kHemlockOhv1:
      return fn(*reinterpret_cast<HemlockOhv1*>(storage));
    case LockKind::kHemlockOhv2:
      return fn(*reinterpret_cast<HemlockOhv2*>(storage));
    case LockKind::kMcs:
      return fn(*reinterpret_cast<McsLock*>(storage));
    case LockKind::kClh:
      return fn(*reinterpret_cast<ClhLock*>(storage));
    case LockKind::kTicket:
      return fn(*reinterpret_cast<TicketLock*>(storage));
    case LockKind::kTas:
      return fn(*reinterpret_cast<TasLock*>(storage));
    case LockKind::kTtas:
      return fn(*reinterpret_cast<TtasLock*>(storage));
  }
  __builtin_unreachable();
}

template <typename L>
constexpr bool fits = sizeof(L) <= sizeof(ShimMutex::storage) &&
                      alignof(L) <= 8;
static_assert(fits<Hemlock> && fits<HemlockNaive> && fits<HemlockFaa> &&
              fits<HemlockOhv1> && fits<HemlockOhv2> && fits<McsLock> &&
              fits<ClhLock> && fits<TicketLock> && fits<TasLock> &&
              fits<TtasLock>);

void construct(LockKind kind, unsigned char* storage) {
  switch (kind) {
    case LockKind::kHemlock: new (storage) Hemlock(); break;
    case LockKind::kHemlockNaive: new (storage) HemlockNaive(); break;
    case LockKind::kHemlockFaa: new (storage) HemlockFaa(); break;
    case LockKind::kHemlockOhv1: new (storage) HemlockOhv1(); break;
    case LockKind::kHemlockOhv2: new (storage) HemlockOhv2(); break;
    case LockKind::kMcs: new (storage) McsLock(); break;
    case LockKind::kClh: new (storage) ClhLock(); break;
    case LockKind::kTicket: new (storage) TicketLock(); break;
    case LockKind::kTas: new (storage) TasLock(); break;
    case LockKind::kTtas: new (storage) TtasLock(); break;
  }
}

void destruct(LockKind kind, unsigned char* storage) {
  // Only CLH has a non-trivial destructor (dummy-node recovery,
  // Table 1's Init column); destroying the rest is a no-op.
  if (kind == LockKind::kClh) {
    reinterpret_cast<ClhLock*>(storage)->~ClhLock();
  }
}

/// Adopt the pthread_mutex_t storage: fast path when already ours,
/// else a race-safe lazy initialization keyed on the magic word
/// (PTHREAD_MUTEX_INITIALIZER is all-zero storage on glibc, so
/// statically initialized mutexes arrive here with magic == 0).
ShimMutex* adopt(pthread_mutex_t* m) {
  auto* sm = reinterpret_cast<ShimMutex*>(m);
  std::uint32_t cur = sm->magic.load(std::memory_order_acquire);
  if (cur == ShimMutex::kReady) return sm;
  std::uint32_t expected = 0;
  if (sm->magic.compare_exchange_strong(expected, ShimMutex::kIniting,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    sm->kind = selected_lock_kind();
    construct(sm->kind, sm->storage);
    sm->magic.store(ShimMutex::kReady, std::memory_order_release);
    return sm;
  }
  // Another thread is adopting; wait for it.
  while (sm->magic.load(std::memory_order_acquire) != ShimMutex::kReady) {
    cpu_relax();
  }
  return sm;
}

}  // namespace

bool parse_lock_kind(std::string_view name, LockKind* out) {
  struct Entry {
    std::string_view name;
    LockKind kind;
  };
  static constexpr Entry kTable[] = {
      {"hemlock", LockKind::kHemlock},
      {"hemlock-", LockKind::kHemlockNaive},
      {"hemlock-faa", LockKind::kHemlockFaa},
      {"hemlock-ohv1", LockKind::kHemlockOhv1},
      {"hemlock-ohv2", LockKind::kHemlockOhv2},
      {"mcs", LockKind::kMcs},
      {"clh", LockKind::kClh},
      {"ticket", LockKind::kTicket},
      {"tas", LockKind::kTas},
      {"ttas", LockKind::kTtas},
  };
  for (const auto& e : kTable) {
    if (e.name == name) {
      *out = e.kind;
      return true;
    }
  }
  return false;  // includes "hemlock-ah": unsafe for pthread lifetimes
}

LockKind selected_lock_kind() {
  static const LockKind kind = [] {
    const char* env = std::getenv("HEMLOCK_LOCK");
    if (env == nullptr || env[0] == '\0') return LockKind::kHemlock;
    LockKind k;
    if (parse_lock_kind(env, &k)) return k;
    std::fprintf(stderr,
                 "[hemlock-interpose] unknown/unsupported HEMLOCK_LOCK=%s "
                 "(note: hemlock-ah is excluded by design, paper Appendix "
                 "B); using hemlock\n",
                 env);
    return LockKind::kHemlock;
  }();
  return kind;
}

int ShimMutex::shim_init(pthread_mutex_t* m) {
  std::memset(static_cast<void*>(m), 0, sizeof(*m));
  adopt(m);
  return 0;
}

int ShimMutex::shim_destroy(pthread_mutex_t* m) {
  auto* sm = reinterpret_cast<ShimMutex*>(m);
  if (sm->magic.load(std::memory_order_acquire) == kReady) {
    destruct(sm->kind, sm->storage);
  }
  std::memset(static_cast<void*>(m), 0, sizeof(*m));
  return 0;
}

int ShimMutex::shim_lock(pthread_mutex_t* m) {
  ShimMutex* sm = adopt(m);
  dispatch(sm->kind, sm->storage, [](auto& lock) { lock.lock(); });
  return 0;
}

int ShimMutex::shim_trylock(pthread_mutex_t* m) {
  ShimMutex* sm = adopt(m);
  // CLH provides no try_lock (paper §2); report EBUSY, which callers
  // must treat as "retry or lock()" anyway.
  if (sm->kind == LockKind::kClh) return EBUSY;
  bool acquired = false;
  dispatch(sm->kind, sm->storage, [&](auto& lock) {
    if constexpr (requires(decltype(lock)& l) { l.try_lock(); }) {
      acquired = lock.try_lock();
    }
  });
  return acquired ? 0 : EBUSY;
}

int ShimMutex::shim_unlock(pthread_mutex_t* m) {
  ShimMutex* sm = adopt(m);
  dispatch(sm->kind, sm->storage, [](auto& lock) { lock.unlock(); });
  return 0;
}

}  // namespace hemlock::interpose
