#include "interpose/shim_mutex.hpp"

#include <errno.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/factory.hpp"
#include "runtime/pause.hpp"

namespace hemlock::interpose {

namespace {

/// Adopt the pthread_mutex_t storage: fast path when already ours,
/// else a race-safe lazy initialization keyed on the magic word
/// (PTHREAD_MUTEX_INITIALIZER is all-zero storage on glibc, so
/// statically initialized mutexes arrive here with magic == 0).
ShimMutex* adopt(pthread_mutex_t* m) {
  auto* sm = reinterpret_cast<ShimMutex*>(m);
  std::uint32_t cur = sm->magic.load(std::memory_order_acquire);
  if (cur == ShimMutex::kReady) return sm;
  std::uint32_t expected = 0;
  if (sm->magic.compare_exchange_strong(expected, ShimMutex::kIniting,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    sm->vt = &selected_lock();
    sm->vt->construct(sm->storage);
    sm->magic.store(ShimMutex::kReady, std::memory_order_release);
    return sm;
  }
  // Another thread is adopting; wait for it.
  while (sm->magic.load(std::memory_order_acquire) != ShimMutex::kReady) {
    cpu_relax();
  }
  return sm;
}

}  // namespace

std::vector<std::string_view> supported_lock_names() {
  std::vector<std::string_view> names;
  for (const LockVTable* vt : LockFactory::instance().entries()) {
    if (shim_hostable(vt->info)) names.push_back(vt->info.name);
  }
  return names;
}

const LockVTable& selected_lock() {
  static const LockVTable& vt = []() -> const LockVTable& {
    const LockVTable* fallback = find_lock(kDefaultLockName);
    const char* env = std::getenv("HEMLOCK_LOCK");
    if (env == nullptr || env[0] == '\0') return *fallback;
    const LockVTable* chosen = find_lock(env);
    if (chosen != nullptr && shim_hostable(chosen->info)) return *chosen;
    const char* reason =
        chosen == nullptr ? "not a factory algorithm"
        : !chosen->info.pthread_overlay_safe
            ? "excluded by design: unsafe under POSIX mutex lifetimes "
              "(paper Appendix B) or re-enters the interposed pthread "
              "surface"
            : "lock state does not fit the pthread_mutex_t overlay";
    std::fprintf(stderr,
                 "[hemlock-interpose] HEMLOCK_LOCK=%s rejected (%s); "
                 "using hemlock\n",
                 env, reason);
    return *fallback;
  }();
  return vt;
}

int ShimMutex::shim_init(pthread_mutex_t* m) {
  std::memset(static_cast<void*>(m), 0, sizeof(*m));
  adopt(m);
  return 0;
}

int ShimMutex::shim_destroy(pthread_mutex_t* m) {
  auto* sm = reinterpret_cast<ShimMutex*>(m);
  if (sm->magic.load(std::memory_order_acquire) == kReady) {
    sm->vt->destroy(sm->storage);
  }
  std::memset(static_cast<void*>(m), 0, sizeof(*m));
  return 0;
}

int ShimMutex::shim_lock(pthread_mutex_t* m) {
  ShimMutex* sm = adopt(m);
  sm->vt->lock(sm->storage);
  return 0;
}

int ShimMutex::shim_trylock(pthread_mutex_t* m) {
  ShimMutex* sm = adopt(m);
  return sm->vt->try_lock(sm->storage) ? 0 : EBUSY;
}

int ShimMutex::shim_unlock(pthread_mutex_t* m) {
  ShimMutex* sm = adopt(m);
  sm->vt->unlock(sm->storage);
  return 0;
}

}  // namespace hemlock::interpose
