#include "interpose/shim_mutex.hpp"

#include <errno.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "api/factory.hpp"
#include "interpose/foreign.hpp"
#include "interpose/tier_select.hpp"
#include "runtime/governor.hpp"
#include "runtime/pause.hpp"
#include "stats/telemetry.hpp"

namespace hemlock::interpose {

namespace {

/// Adopt the pthread_mutex_t storage: fast path when already ours,
/// else a race-safe lazy initialization keyed on the magic word
/// (PTHREAD_MUTEX_INITIALIZER is all-zero storage on glibc, so
/// statically initialized mutexes arrive here with magic == 0).
ShimMutex* adopt(pthread_mutex_t* m) {
  auto* sm = reinterpret_cast<ShimMutex*>(m);
  // mo: acquire peek — pairs with the kReady release below so an
  // adopted object's vt/storage are visible.
  std::uint32_t cur = sm->magic.load(std::memory_order_acquire);
  if (cur == ShimMutex::kReady) return sm;
  std::uint32_t expected = 0;
  // mo: acq_rel claim — exactly one adopter wins; acquire on failure
  // orders the kReady poll below after the winner's stores.
  if (sm->magic.compare_exchange_strong(expected, ShimMutex::kIniting,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    sm->vt = &selected_lock();
    sm->vt->construct(sm->storage);
    // mo: release — publishes vt/storage to acquiring peeks.
    sm->magic.store(ShimMutex::kReady, std::memory_order_release);
    return sm;
  }
  // Another thread is adopting; wait for it.
  // mo: acquire poll — pairs with the winner's kReady release.
  while (sm->magic.load(std::memory_order_acquire) != ShimMutex::kReady) {
    cpu_relax();
  }
  return sm;
}

}  // namespace

std::vector<std::string_view> supported_lock_names() {
  std::vector<std::string_view> names;
  for (const LockVTable* vt : LockFactory::instance().entries()) {
    if (shim_hostable(vt->info)) names.push_back(vt->info.name);
  }
  return names;
}

namespace {

/// Mutex-overlay hostability as tier_select's lookup gate.
const LockVTable* hostable_variant(std::string_view family,
                                   std::string_view suffix) noexcept {
  return interpose::hostable_variant(
      family, suffix, [](const LockInfo& info) { return shim_hostable(info); });
}

}  // namespace

const LockVTable& resolve_shim_lock(const char* lock_env,
                                    const char* wait_env) noexcept {
  const LockVTable* fallback = find_lock(kDefaultLockName);
  const LockVTable* chosen = fallback;
  // "mcs-spin" canonicalizes to the "mcs" vtable, but the alias is the
  // user's explicit request for the paper's pure busy-wait — auto mode
  // must honor it instead of rehosting onto the adaptive variant.
  bool explicit_spin = false;
  if (lock_env != nullptr && lock_env[0] != '\0') {
    const LockVTable* named = find_lock(lock_env);
    if (named != nullptr && shim_hostable(named->info)) {
      chosen = named;
      explicit_spin = std::string_view(lock_env).ends_with("-spin");
    } else {
      const char* reason =
          named == nullptr ? "not a factory algorithm"
          : !named->info.pthread_overlay_safe
              ? "excluded by design: unsafe under POSIX mutex lifetimes "
                "(paper Appendix B) or re-enters the interposed pthread "
                "surface"
              : "lock state does not fit the pthread_mutex_t overlay";
      std::fprintf(stderr,
                   "[hemlock-interpose] HEMLOCK_LOCK=%s rejected (%s); "
                   "using hemlock\n",
                   lock_env, reason);
    }
  }

  const std::string_view family = waiting_family(chosen->info.name);
  WaitTier tier;
  if (parse_wait_tier(wait_env, &tier)) {
    const LockVTable* variant = nullptr;
    switch (tier) {
      case WaitTier::kSpin:
        variant = hostable_variant(family, "");
        break;
      case WaitTier::kYield:
        variant = hostable_variant(family, "-yield");
        if (variant == nullptr) variant = hostable_variant(family, "-adaptive");
        break;
      case WaitTier::kPark:
        variant = hostable_variant(family, "-park");
        if (variant == nullptr) variant = hostable_variant(family, "-futex");
        break;
    }
    if (variant != nullptr) {
      chosen = variant;
    } else {
      std::fprintf(stderr,
                   "[hemlock-interpose] HEMLOCK_WAIT=%s: no such waiting "
                   "tier for %.*s; keeping %.*s\n",
                   wait_env, static_cast<int>(family.size()), family.data(),
                   static_cast<int>(chosen->info.name.size()),
                   chosen->info.name.data());
    }
  } else {
    if (wait_env != nullptr && wait_env[0] != '\0' &&
        std::strcmp(wait_env, "auto") != 0) {
      std::fprintf(stderr,
                   "[hemlock-interpose] HEMLOCK_WAIT=%s unrecognized "
                   "(want spin|yield|park|auto); using auto\n",
                   wait_env);
    }
    // Auto: a pure busy-wait algorithm would convoy at scheduler
    // speed if this process oversubscribes the host (ROADMAP: minutes
    // for 480k MCS hand-offs on 1 CPU). That covers the default CTR
    // hemlock as much as the spin queue locks, so the gate is the
    // oversub_safe descriptor, not a tier name. Host the governed
    // variant where one exists (it spins identically while contenders
    // fit the CPUs), else the family's parking variant.
    if (!chosen->info.oversub_safe && !explicit_spin) {
      const LockVTable* safe = hostable_variant(family, "-adaptive");
      if (safe == nullptr) safe = hostable_variant(family, "-futex");
      if (safe != nullptr) {
        std::fprintf(stderr,
                     "[hemlock-interpose] hosting %.*s as %.*s "
                     "(oversubscription-adaptive waiting; set "
                     "HEMLOCK_WAIT=spin for pure busy-waiting)\n",
                     static_cast<int>(family.size()), family.data(),
                     static_cast<int>(safe->info.name.size()),
                     safe->info.name.data());
        chosen = safe;
      }
    }
  }
  return *chosen;
}

const LockVTable& selected_lock() {
  static const LockVTable& vt = resolve_shim_lock(
      std::getenv("HEMLOCK_LOCK"), std::getenv("HEMLOCK_WAIT"));
  return vt;
}

namespace {

/// The telemetry row every interposed mutex reports under: one handle
/// per family×tier ("mutex:<selected algorithm>"), resolved once. A
/// 32-slot handle table cannot carry one row per pthread object;
/// per-object distinctions live in the flight recorder's per-thread
/// timelines instead (docs/OBSERVABILITY.md).
telemetry::TelemetryHandle mutex_family_handle() {
  static const telemetry::TelemetryHandle h = [] {
    const std::string_view name = selected_lock().info.name;
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "mutex:%.*s",
                                static_cast<int>(name.size()), name.data());
    return telemetry::register_handle(
        std::string_view(buf, static_cast<std::size_t>(n)));
  }();
  return h;
}

}  // namespace

int ShimMutex::shim_init(pthread_mutex_t* m, const pthread_mutexattr_t* attr) {
  int pshared = PTHREAD_PROCESS_PRIVATE;
  if (attr != nullptr &&
      pthread_mutexattr_getpshared(attr, &pshared) == 0 &&
      pshared == PTHREAD_PROCESS_SHARED) {
    // Our overlay is process-local state; hosting a pshared mutex
    // would corrupt its cross-process users. Route it to glibc and
    // remember the address so every later operation forwards too
    // (-1: real symbols unresolved — host locally, notice printed).
    const int rc = route_pshared_init(
        m, "pthread_mutex", [&] { return real_pthread().mutex_init(m, attr); });
    if (rc >= 0) return rc;
  }
  // A pshared object at this address may have been freed without its
  // destroy (the peer process owns the teardown); hosting here without
  // clearing the stale routing entry would forward this fresh mutex's
  // operations to glibc over overlay bytes.
  if (ForeignRegistry::contains(m)) ForeignRegistry::erase(m);
  std::memset(static_cast<void*>(m), 0, sizeof(*m));
  adopt(m);
  return 0;
}

int ShimMutex::shim_destroy(pthread_mutex_t* m) {
  if (ForeignRegistry::contains(m)) {
    const int rc = real_pthread().mutex_destroy(m);
    ForeignRegistry::erase(m);
    return rc;
  }
  auto* sm = reinterpret_cast<ShimMutex*>(m);
  // mo: acquire — pairs with adopt's kReady release before destroy.
  if (sm->magic.load(std::memory_order_acquire) == kReady) {
    sm->vt->destroy(sm->storage);
  }
  std::memset(static_cast<void*>(m), 0, sizeof(*m));
  return 0;
}

int ShimMutex::shim_lock(pthread_mutex_t* m) {
  if (ForeignRegistry::contains(m)) return real_pthread().mutex_lock(m);
  ShimMutex* sm = adopt(m);
  const telemetry::TelemetryHandle h = mutex_family_handle();
  telemetry::on_lock_begin(h);
  sm->vt->lock(sm->storage);
  telemetry::on_lock_acquired(h);
  return 0;
}

int ShimMutex::shim_trylock(pthread_mutex_t* m) {
  if (ForeignRegistry::contains(m)) return real_pthread().mutex_trylock(m);
  ShimMutex* sm = adopt(m);
  const telemetry::TelemetryHandle h = mutex_family_handle();
  if (sm->vt->try_lock(sm->storage)) {
    telemetry::on_try_acquired(h);
    return 0;
  }
  telemetry::on_try_failure(h);
  return EBUSY;
}

int ShimMutex::shim_unlock(pthread_mutex_t* m) {
  if (ForeignRegistry::contains(m)) return real_pthread().mutex_unlock(m);
  ShimMutex* sm = adopt(m);
  const telemetry::TelemetryHandle h = mutex_family_handle();
  telemetry::on_unlock_begin(h);
  sm->vt->unlock(sm->storage);
  telemetry::on_unlock_end(h);
  return 0;
}

}  // namespace hemlock::interpose
