// foreign.hpp — routing PROCESS_SHARED pthread objects back to glibc.
//
// The interposition shim hosts lock state inside the application's
// pthread_mutex_t / pthread_cond_t / pthread_rwlock_t storage — state
// that is meaningful only inside this process (factory vtable
// pointers, ThreadRec addresses, private-futex words). An object
// initialized with PTHREAD_PROCESS_SHARED lives in shared memory and
// is operated on by *other* processes, which would read our
// process-local overlay as garbage: silently accepting such objects
// into the shim corrupts every cross-process user.
//
// The fix: pthread_*_init detects the pshared attribute and routes the
// object to the real glibc implementation (resolved once via
// dlsym(RTLD_NEXT)), recording its address in a small fixed-size
// registry so every later operation on it is forwarded too. The
// registry is allocation-free (the shim runs inside arbitrary
// application callsites where a malloc could re-enter the interposed
// surface) and its lookup is one relaxed load when no pshared object
// exists — the overwhelmingly common case.
//
// Known limitation, documented in the README: detection happens at
// *init* time in this process. A pshared object initialized by a
// different (un-preloaded) process and used here without a local init
// is indistinguishable from adoptable storage.
#pragma once

#include <errno.h>
#include <pthread.h>
#include <time.h>

#include <cstddef>

namespace hemlock::interpose {

/// Fixed-capacity, allocation-free set of pthread objects that must be
/// forwarded to glibc (pshared). contains() is wait-free and costs one
/// relaxed load while the set is empty.
class ForeignRegistry {
 public:
  static constexpr std::size_t kCapacity = 128;

  /// Record `obj` as glibc-owned. False (with a stderr report) when
  /// the table is full — the caller should fail its init loudly
  /// rather than silently mis-host the object.
  static bool insert(const void* obj) noexcept;
  /// Forget `obj` (its destroy was forwarded).
  static void erase(const void* obj) noexcept;
  /// True iff `obj` was routed to glibc by a local pthread_*_init.
  static bool contains(const void* obj) noexcept;
  /// Live routed-object count (tests).
  static std::size_t size() noexcept;
};

/// The real glibc entry points, resolved once via dlsym(RTLD_NEXT)
/// from whichever object interposed them. Null only on resolution
/// failure (non-glibc dynamic linking); callers must check `resolved`.
struct RealPthread {
  bool resolved = false;

  int (*mutex_init)(pthread_mutex_t*, const pthread_mutexattr_t*) = nullptr;
  int (*mutex_destroy)(pthread_mutex_t*) = nullptr;
  int (*mutex_lock)(pthread_mutex_t*) = nullptr;
  int (*mutex_trylock)(pthread_mutex_t*) = nullptr;
  int (*mutex_unlock)(pthread_mutex_t*) = nullptr;

  int (*cond_init)(pthread_cond_t*, const pthread_condattr_t*) = nullptr;
  int (*cond_destroy)(pthread_cond_t*) = nullptr;
  int (*cond_wait)(pthread_cond_t*, pthread_mutex_t*) = nullptr;
  int (*cond_timedwait)(pthread_cond_t*, pthread_mutex_t*,
                        const struct timespec*) = nullptr;
  int (*cond_signal)(pthread_cond_t*) = nullptr;
  int (*cond_broadcast)(pthread_cond_t*) = nullptr;
  /// glibc >= 2.30; may be null on older libcs.
  int (*cond_clockwait)(pthread_cond_t*, pthread_mutex_t*, clockid_t,
                        const struct timespec*) = nullptr;

  int (*rwlock_init)(pthread_rwlock_t*, const pthread_rwlockattr_t*) =
      nullptr;
  int (*rwlock_destroy)(pthread_rwlock_t*) = nullptr;
  int (*rwlock_rdlock)(pthread_rwlock_t*) = nullptr;
  int (*rwlock_tryrdlock)(pthread_rwlock_t*) = nullptr;
  int (*rwlock_timedrdlock)(pthread_rwlock_t*,
                            const struct timespec*) = nullptr;
  int (*rwlock_wrlock)(pthread_rwlock_t*) = nullptr;
  int (*rwlock_trywrlock)(pthread_rwlock_t*) = nullptr;
  int (*rwlock_timedwrlock)(pthread_rwlock_t*,
                            const struct timespec*) = nullptr;
  int (*rwlock_unlock)(pthread_rwlock_t*) = nullptr;
  /// glibc >= 2.30; may be null on older libcs.
  int (*rwlock_clockrdlock)(pthread_rwlock_t*, clockid_t,
                            const struct timespec*) = nullptr;
  int (*rwlock_clockwrlock)(pthread_rwlock_t*, clockid_t,
                            const struct timespec*) = nullptr;
};

/// The process-wide resolved table (dlsym'd on first use).
const RealPthread& real_pthread() noexcept;

/// Emit the once-per-process pshared routing notice.
void warn_pshared_once(const char* what) noexcept;

/// Emit the real-symbols-unresolved fallback notice for a pshared
/// `what` that will be hosted process-locally instead.
void warn_pshared_unroutable(const char* what) noexcept;

/// Route a PROCESS_SHARED `obj` to glibc: warn once, register it in
/// the ForeignRegistry, run `real_init` (which must call the real
/// glibc init), and deregister on its failure. Returns the init's
/// result, ENOMEM when the registry is full, or -1 when the real
/// symbols could not be resolved — the caller then falls back to
/// hosting the object process-locally (with the loud notice already
/// printed). The shared implementation of the identical detection
/// blocks in the mutex/cond/rwlock shim inits.
template <typename InitFn>
int route_pshared_init(const void* obj, const char* what,
                       const InitFn& real_init) noexcept {
  if (!real_pthread().resolved) {
    warn_pshared_unroutable(what);
    return -1;
  }
  warn_pshared_once(what);
  if (!ForeignRegistry::insert(obj)) return ENOMEM;
  const int rc = real_init();
  if (rc != 0) ForeignRegistry::erase(obj);
  return rc;
}

}  // namespace hemlock::interpose
