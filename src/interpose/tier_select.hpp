// tier_select.hpp — name/tier primitives shared by the shim resolvers.
//
// Both environment resolvers (HEMLOCK_LOCK in shim_mutex,
// HEMLOCK_RWLOCK in shim_rwlock) re-tier a chosen algorithm within
// its family by suffix: strip the waiting-tier suffix to find the
// family, then look up "<family><suffix>" gated on the caller's
// hostability rule. These helpers are the single implementation of
// that vocabulary; the resolvers keep only their own fallback rules.
// Everything here is allocation-free — it runs inside the
// application's first pthread operation, where a malloc could
// re-enter the interposed surface.
#pragma once

#include <cstring>
#include <string_view>

#include "api/any_lock.hpp"

namespace hemlock::interpose {

/// The chosen algorithm's family name: the registered name minus its
/// waiting-tier suffix ("mcs-park" -> "mcs", "hemlock-futex" ->
/// "hemlock", "rwlock-compact-adaptive" -> "rwlock-compact"), so
/// HEMLOCK_WAIT can move *within* a family.
inline std::string_view waiting_family(std::string_view name) noexcept {
  for (const std::string_view suffix :
       {std::string_view{"-spin"}, std::string_view{"-yield"},
        std::string_view{"-park"}, std::string_view{"-adaptive"},
        std::string_view{"-futex"}}) {
    if (name.size() > suffix.size() && name.ends_with(suffix)) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

/// The factory entry named `family + suffix` that satisfies the
/// caller's hostability rule, or nullptr. Fixed-buffer concatenation:
/// no allocation on this path.
template <typename HostablePred>
const LockVTable* hostable_variant(std::string_view family,
                                   std::string_view suffix,
                                   const HostablePred& hostable) noexcept {
  char buf[96];
  if (family.size() + suffix.size() >= sizeof(buf)) return nullptr;
  std::memcpy(buf, family.data(), family.size());
  std::memcpy(buf + family.size(), suffix.data(), suffix.size());
  const std::string_view name(buf, family.size() + suffix.size());
  const LockVTable* vt = find_lock(name);
  return (vt != nullptr && hostable(vt->info)) ? vt : nullptr;
}

}  // namespace hemlock::interpose
