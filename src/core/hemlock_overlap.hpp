// hemlock_overlap.hpp — Hemlock with the Overlap optimization
// (paper Appendix A, Listing 3).
//
// The base algorithm's unlock waits for the successor's
// acknowledgement before returning. Overlap *defers* that wait: the
// unlocking thread publishes the lock address and returns
// immediately, shifting the drain to the prologue of its *next*
// contended synchronization operation, "allowing greater overlap
// between the successor and the outgoing owner."
//
// Two consequences handled here, straight from Appendix A:
//  * lock() must first ensure its own mailbox does not hold a
//    *residual* address of this same lock from a previous contended
//    unlock whose tardy successor has not consumed it yet (Listing 3
//    line 6) — otherwise a new successor could observe the stale
//    value and enter the critical section, "resulting in exclusion
//    and safety failure and a corrupt chain."
//  * unlock() waits for the mailbox to become empty *before* storing
//    (line 16), rather than after.
//
// Thread destruction must drain the Grant word (ThreadRec's
// destructor does; see thread_rec.cpp).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/hemlock.hpp"  // detail::hemlock_traits_base
#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/thread_rec.hpp"

namespace hemlock {

/// Hemlock + Overlap (Listing 3). One-word lock body; FIFO;
/// context-free. The paper measured little benefit and shipped
/// without it (§2); it is provided for the ablation benches.
template <typename Waiting = CtrCasWaiting>
class HEMLOCK_CAPABILITY("mutex") HemlockOverlapBase {
 public:
  HemlockOverlapBase() = default;
  HemlockOverlapBase(const HemlockOverlapBase&) = delete;
  HemlockOverlapBase& operator=(const HemlockOverlapBase&) = delete;

  /// Acquire (Listing 3 lines 5-11).
  void lock() noexcept HEMLOCK_ACQUIRE() {
    ThreadRec& me = self();
    // Line 6: residual check. "If thread T1 were to enqueue ... [a]
    // residual Grant value that happens to match that of the lock,
    // then when a successor T2 enqueues after T1, it will incorrectly
    // see that address in T1's grant field and then incorrectly enter
    // the critical section."  Wait for the tardy successor to drain.
    // mo: acquire residual poll — pairs with the tardy successor's
    // releasing consume so its clear is visible before we enqueue.
    while (me.grant.value.load(std::memory_order_acquire) == lock_word()) {
      cpu_relax();
    }
    // mo: acq_rel doorstep SWAP — release publishes our ThreadRec,
    // acquire orders us after the predecessor's enqueue.
    ThreadRec* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      profiled_wait_and_consume<Waiting>(pred->grant.value, lock_word(),
                                         *pred);
    }
    LockProfiler::on_acquire(me);
  }

  /// Non-blocking attempt. Must also respect the residual check:
  /// succeeding while our mailbox still holds this lock's address
  /// would arm the stale-grant pathology for our future successor.
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    ThreadRec& me = self();
    // mo: acquire residual check — as the lock() prologue poll.
    if (me.grant.value.load(std::memory_order_acquire) == lock_word()) {
      return false;  // tardy successor still draining; treat as busy
    }
    ThreadRec* expected = nullptr;
    // mo: acq_rel — acquire pairs with the releasing unlock CAS;
    // relaxed on failure, nothing was read.
    if (tail_.compare_exchange_strong(expected, &me,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      LockProfiler::on_acquire(me);
      return true;
    }
    return false;
  }

  /// Release (Listing 3 lines 12-17): wait for the mailbox to be
  /// empty (drain any *previous* handover), publish, and return
  /// without waiting for the acknowledgement.
  void unlock() noexcept HEMLOCK_RELEASE() {
    ThreadRec& me = self();
    ThreadRec* expected = &me;
    // mo: release hand-off — the critical section happens-before the
    // next acquirer's doorstep SWAP; relaxed on failure (the grant
    // publish below carries release for the contended path).
    if (!tail_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
      // Line 16: Grant may still hold an address from a previous
      // contended unlock whose successor has not cleared it.
      Waiting::wait_until_empty(me.grant.value);
      // Line 17: publish and leave; the drain is deferred.
      Waiting::publish(me.grant.value, lock_word());
    }
    LockProfiler::on_release(me);
  }

  /// Racy emptiness snapshot for tests.
  bool appears_unlocked() const noexcept {
    // mo: acquire — racy test-only snapshot; orders the observed
    // emptiness after the releasing unlock that produced it.
    return tail_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  GrantWord lock_word() const noexcept {
    return reinterpret_cast<GrantWord>(this);
  }

  std::atomic<ThreadRec*> tail_{nullptr};
};
static_assert(sizeof(HemlockOverlapBase<>) == sizeof(void*));

/// Overlap with CTR waiting (the form the ablation bench compares).
using HemlockOverlap = HemlockOverlapBase<CtrCasWaiting>;
/// Overlap with naive load-polling.
using HemlockOverlapNaive = HemlockOverlapBase<PoliteWaiting>;

template <>
struct lock_traits<HemlockOverlap>
    : detail::hemlock_traits_base<CtrCasWaiting> {
  static constexpr const char* name = "hemlock-overlap";
};
template <>
struct lock_traits<HemlockOverlapNaive>
    : detail::hemlock_traits_base<PoliteWaiting> {
  static constexpr const char* name = "hemlock-overlap-";
};

}  // namespace hemlock
