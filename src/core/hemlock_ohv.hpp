// hemlock_ohv.hpp — Hemlock with Optimized Hand-Over, variants 1 & 2
// (paper Appendix B, Listings 5 and 6).
//
// Both variants retain AH's fast contended hand-over while remaining
// immune to the use-after-free pathology, because neither touches the
// lock body after ownership may have transferred.
//
//  * Variant 1 (Listing 5) augments the Grant encoding with a
//    distinguished L|1 state: an arriving waiter CASes L|1 into its
//    predecessor's *empty* mailbox, advertising "a successor for L
//    certainly exists". An unlock that finds its own mailbox holding
//    L|1 passes ownership immediately — without touching the lock's
//    Tail at all, "further reducing coherence traffic on that
//    coherence hotspot."
//  * Variant 2 (Listing 6) first reads the Tail politely: successors
//    exist iff Tail != Self, in which case it passes ownership
//    directly, "avoiding the futile CAS and its write invalidation"
//    that the naive form incurs on the critical path under contention.
//
// NOTE: Variant 1 can leave an advisory L|1 flag in the thread's
// Grant word between operations, so the Listing-1 `Grant == null`
// entry assertions do not apply to it; threads must not interleave
// OHV1 locks with other Hemlock-family locks (they share the Grant
// word and the other variants' unlock drains would misread the flag).
// The test suite keeps families pure per scenario.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "core/hemlock.hpp"
#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/thread_rec.hpp"

namespace hemlock {

/// Optimized Hand-Over Variant 1 (Listing 5): successor-presence flag
/// in the Grant word's low bit.
class HEMLOCK_CAPABILITY("mutex") HemlockOhv1 {
 public:
  HemlockOhv1() = default;
  HemlockOhv1(const HemlockOhv1&) = delete;
  HemlockOhv1& operator=(const HemlockOhv1&) = delete;

  /// Acquire (Listing 5 lines 5-10).
  void lock() noexcept HEMLOCK_ACQUIRE() {
    ThreadRec& me = self();
    // mo: acq_rel doorstep SWAP — release publishes our ThreadRec,
    // acquire orders us after the predecessor's enqueue.
    ThreadRec* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      // Line 9: advertise our existence if the predecessor's mailbox
      // is empty. The flag is advisory — losing the race (mailbox
      // busy with another lock's traffic) merely means the
      // predecessor discovers us via its Tail access instead. If the
      // CAS observes our lock word already present, the hand-over has
      // begun and the consume loop below completes it.
      GrantWord empty = kGrantEmpty;
      // mo: acq_rel — success must be ordered against the mailbox
      // owner's publish/drain pair; relaxed on failure (advisory flag,
      // the consume loop below synchronizes).
      pred->grant.value.compare_exchange_strong(empty, flag_word(),
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed);
      // Line 10: CTR consume loop, as in Listing 2.
      profiled_wait_and_consume<CtrCasWaiting>(pred->grant.value, lock_word(),
                                               *pred);
    }
    LockProfiler::on_acquire(me);
  }

  /// Non-blocking attempt (CAS on Tail).
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    ThreadRec* expected = nullptr;
    // mo: acq_rel — acquire pairs with the releasing unlock CAS;
    // relaxed on failure, nothing was read.
    if (tail_.compare_exchange_strong(expected, &self(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      LockProfiler::on_acquire(self());
      return true;
    }
    return false;
  }

  /// Release (Listing 5 lines 11-19).
  void unlock() noexcept HEMLOCK_RELEASE() {
    ThreadRec& me = self();
    // Line 12: if our mailbox holds L|1, a successor for this lock
    // certainly exists — pass ownership without touching the Tail.
    // The value is stable under us: only our unique L-successor
    // writes L|1 (Lemma 9), its consume loop only fires on L, and
    // other locks' waiters only CAS an *empty* mailbox.
    // mo: relaxed — advisory peek at our own mailbox; pass_lock's
    // release store is what publishes the critical section.
    if (me.grant.value.load(std::memory_order_relaxed) == flag_word()) {
      pass_lock(me);
      LockProfiler::on_release(me);
      return;
    }
    ThreadRec* expected = &me;
    // mo: release hand-off — the critical section happens-before the
    // next acquirer's doorstep SWAP; relaxed on failure (pass_lock's
    // release publish covers the contended path).
    auto prior = tail_.compare_exchange_strong(expected, nullptr,
                                               std::memory_order_release,
                                               std::memory_order_relaxed);
    assert(prior || expected != nullptr);  // Listing 5 line 18: v != null
    if (!prior) {
      pass_lock(me);  // line 19
    }
    LockProfiler::on_release(me);
  }

  /// Racy emptiness snapshot for tests.
  bool appears_unlocked() const noexcept {
    // mo: acquire — racy test-only snapshot; orders the observed
    // emptiness after the releasing unlock that produced it.
    return tail_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  /// Lines 13-15: publish L (clearing any L|1 flag) and wait until
  /// the mailbox no longer holds L. Unlike the base algorithm we wait
  /// for `!= L` rather than `== null`: after our successor consumes,
  /// a waiter on a *different* lock we hold may immediately re-flag
  /// the mailbox with L'|1, and that is a legitimate resting state.
  void pass_lock(ThreadRec& me) noexcept {
    // mo: release hand-off — critical section happens-before the
    // successor's acquiring consume of the mailbox.
    me.grant.value.store(lock_word(), std::memory_order_release);
    // mo: acquire FAA(0) drain — pairs with the successor's releasing
    // consume CAS so its (empty or re-flagged) write is visible.
    while (me.grant.value.fetch_add(0, std::memory_order_acquire) ==
           lock_word()) {
      cpu_relax();
    }
  }

  GrantWord lock_word() const noexcept {
    return reinterpret_cast<GrantWord>(this);
  }
  /// L|1 — the "successor certainly exists" advertisement. Lock
  /// objects are pointer-aligned so bit 0 is always free.
  GrantWord flag_word() const noexcept { return lock_word() | 1; }

  std::atomic<ThreadRec*> tail_{nullptr};
};
static_assert(sizeof(HemlockOhv1) == sizeof(void*));
static_assert(alignof(HemlockOhv1) >= 2, "low tag bit must be free");

/// Optimized Hand-Over Variant 2 (Listing 6): polite Tail inspection
/// before the CAS.
template <typename Waiting = CtrCasWaiting>
class HEMLOCK_CAPABILITY("mutex") HemlockOhv2Base {
 public:
  HemlockOhv2Base() = default;
  HemlockOhv2Base(const HemlockOhv2Base&) = delete;
  HemlockOhv2Base& operator=(const HemlockOhv2Base&) = delete;

  /// Acquire — the base Listing-2 path (Listing 6 lines 5-11, with
  /// the paper's "constant-time arrival doorway step" comment).
  void lock() noexcept HEMLOCK_ACQUIRE() {
    ThreadRec& me = self();
    // mo: relaxed — assert-only peek at our own grant word.
    assert(me.grant.value.load(std::memory_order_relaxed) == kGrantEmpty);
    // mo: acq_rel doorstep SWAP — release publishes our ThreadRec,
    // acquire orders us after the predecessor's enqueue.
    ThreadRec* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      profiled_wait_and_consume<Waiting>(pred->grant.value, lock_word(),
                                         *pred);
    }
    LockProfiler::on_acquire(me);
  }

  /// Non-blocking attempt (CAS on Tail).
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    ThreadRec* expected = nullptr;
    // mo: acq_rel — acquire pairs with the releasing unlock CAS;
    // relaxed on failure, nothing was read.
    if (tail_.compare_exchange_strong(expected, &self(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      LockProfiler::on_acquire(self());
      return true;
    }
    return false;
  }

  /// Release (Listing 6 lines 12-21): successors exist iff
  /// Tail != Self; the polite load avoids a futile CAS (and its
  /// write-invalidation of the Tail line) on the contended path.
  void unlock() noexcept HEMLOCK_RELEASE() {
    ThreadRec& me = self();
    // mo: relaxed — assert-only peek at our own grant word.
    assert(me.grant.value.load(std::memory_order_relaxed) == kGrantEmpty);
    // Line 14. Reading our own prior SWAP is guaranteed by cache
    // coherence, so a non-Self observation proves a successor
    // enqueued (Tail cannot revert to null or to an older value
    // without our own unlock CAS).
    // mo: relaxed polite read — a decision hint only; pass_lock's
    // release publish (or the CAS below) carries the ordering.
    if (tail_.load(std::memory_order_relaxed) != &me) {
      pass_lock(me);
      LockProfiler::on_release(me);
      return;
    }
    ThreadRec* expected = &me;
    // mo: release hand-off — the critical section happens-before the
    // next acquirer's doorstep SWAP; relaxed on failure (pass_lock's
    // release publish covers the contended path).
    if (!tail_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
      assert(expected != nullptr);  // line 20
      pass_lock(me);                // line 21
    }
    LockProfiler::on_release(me);
  }

  /// Racy emptiness snapshot for tests.
  bool appears_unlocked() const noexcept {
    // mo: acquire — racy test-only snapshot; orders the observed
    // emptiness after the releasing unlock that produced it.
    return tail_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  /// Lines 15-17: publish and drain to empty, CTR-style.
  void pass_lock(ThreadRec& me) noexcept {
    Waiting::publish(me.grant.value, lock_word());
    Waiting::wait_until_empty(me.grant.value);
  }

  GrantWord lock_word() const noexcept {
    return reinterpret_cast<GrantWord>(this);
  }

  std::atomic<ThreadRec*> tail_{nullptr};
};
static_assert(sizeof(HemlockOhv2Base<>) == sizeof(void*));

using HemlockOhv2 = HemlockOhv2Base<CtrCasWaiting>;

template <>
struct lock_traits<HemlockOhv1> : detail::hemlock_traits_base<CtrCasWaiting> {
  static constexpr const char* name = "hemlock-ohv1";
};
template <>
struct lock_traits<HemlockOhv2> : detail::hemlock_traits_base<CtrCasWaiting> {
  static constexpr const char* name = "hemlock-ohv2";
};

}  // namespace hemlock
