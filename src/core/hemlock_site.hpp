// hemlock_site.hpp — the §2.3 on-stack Grant optimization.
//
// "If a lock site is well-balanced – with the lock and corresponding
// unlock operators lexically scoped and executing in the same stack
// frame – a Hemlock implementation can opt to use an on-stack Grant
// field instead of the thread-local Grant field accessed via Self.
// This optimization, which can be applied on an ad-hoc site-by-site
// basis, also acts to reduce multi-waiting on the thread-local Grant
// field." (The paper cites std::lock_guard/std::scoped_lock shapes as
// exactly this situation.)
//
// HemlockSite is the guard-only embodiment: acquisition constructs a
// Guard whose *stack frame* carries the Grant slot this waiter's
// successor will spin on. Because every queue entry has its own slot,
// a thread holding many HemlockSite locks never concentrates waiters
// on one word — multi-waiting degree is structurally 1 (strictly
// local spinning), at the cost of one cache line of stack per held
// lock and the loss of the bare lock()/unlock() interface (the guard
// *is* the context, so this form is deliberately not context-free;
// the paper frames it as a site-local opt-in, and mixed usage with
// plain Hemlock on other sites is the intended deployment).
//
// The Guard's destructor must fully drain the handover (successor's
// acknowledgement) before returning — the slot dies with the frame,
// so the Overlap deferral is structurally impossible here.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"

namespace hemlock {

/// Hemlock with per-acquisition on-stack Grant slots. One word of
/// lock body; acquisition only via HemlockSite::Guard.
class HEMLOCK_CAPABILITY("mutex") HemlockSite {
 public:
  HemlockSite() = default;
  HemlockSite(const HemlockSite&) = delete;
  HemlockSite& operator=(const HemlockSite&) = delete;

  /// On-stack queue element: the Grant slot lives inside the guard.
  class HEMLOCK_SCOPED_CAPABILITY [[nodiscard]] Guard {
   public:
    /// Acquire `lock` (blocking).
    explicit Guard(HemlockSite& lock) HEMLOCK_ACQUIRE(lock) : lock_(lock) {
      // mo: acq_rel doorstep SWAP — release publishes our slot,
      // acquire orders us after the predecessor's enqueue.
      Slot* pred = lock_.tail_.exchange(&slot_, std::memory_order_acq_rel);
      if (pred != nullptr) {
        // CTR consume on the predecessor's *slot* — guaranteed to be
        // the only thread polling that word (slot-per-acquisition).
        CtrCasWaiting::wait_and_consume(pred->grant.value,
                                        lock_.lock_word());
      }
    }

    /// Release. Drains the successor's acknowledgement before the
    /// frame (and the slot within it) is reclaimed.
    ~Guard() HEMLOCK_RELEASE() {
      Slot* expected = &slot_;
      // mo: release hand-off — the critical section happens-before
      // the next acquirer's doorstep SWAP; relaxed on failure (the
      // slot publish below carries release instead).
      if (!lock_.tail_.compare_exchange_strong(expected, nullptr,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
        // mo: release hand-off — critical section happens-before the
        // successor's acquiring consume of this slot.
        slot_.grant.value.store(lock_.lock_word(),
                                std::memory_order_release);
        CtrCasWaiting::wait_until_empty(slot_.grant.value);
      }
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    friend class HemlockSite;
    struct Slot {
      CacheAligned<std::atomic<GrantWord>> grant{kGrantEmpty};
    };

    HemlockSite& lock_;
    Slot slot_;
  };

  /// Racy emptiness snapshot for tests.
  bool appears_unlocked() const noexcept {
    // mo: acquire — racy test-only snapshot; orders the observed
    // emptiness after the releasing unlock that produced it.
    return tail_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  using Slot = Guard::Slot;

  GrantWord lock_word() const noexcept {
    return reinterpret_cast<GrantWord>(this);
  }

  std::atomic<Slot*> tail_{nullptr};
};
static_assert(sizeof(HemlockSite) == sizeof(void*));

template <>
struct lock_traits<HemlockSite> {
  static constexpr const char* name = "hemlock-site";
  static constexpr std::size_t lock_words = 1;
  static constexpr std::size_t held_words =
      kCacheLineSize / sizeof(void*);  // the on-stack slot, padded
  static constexpr std::size_t wait_words = kCacheLineSize / sizeof(void*);
  static constexpr std::size_t thread_words = 0;  // no Self state used
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = false;  // guard-only interface
  static constexpr Spinning spinning = Spinning::kLocal;  // slot/waiter
};

}  // namespace hemlock
