// hemlock.hpp — the Hemlock mutual-exclusion lock (paper Listings 1-2).
//
// One word per lock (the Tail pointer), one word per thread (the
// Grant mailbox in ThreadRec). Context-free, FIFO, fere-local
// spinning (§3). The algorithm, annotated with the paper's line
// numbers from Listing 1:
//
//   Lock(L):    pred = SWAP(&L->Tail, Self)            // line 8 (doorstep)
//               if pred != null:
//                 while pred->Grant != L: Pause        // line 11
//                 pred->Grant = null                   // line 12 (ack)
//   Unlock(L):  v = CAS(&L->Tail, Self, null)          // line 16
//               if v != Self:
//                 Self->Grant = L                      // line 20 (handover)
//                 while Self->Grant != null: Pause     // line 21 (drain)
//
// The Waiting policy parameter selects between the naive load-polling
// of Listing 1 (PoliteWaiting — "Hemlock-" in the figures) and the
// CTR forms of Listing 2 (CtrCasWaiting / CtrFaaWaiting).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/thread_rec.hpp"

namespace hemlock {

/// Hemlock lock body: a single word. For benchmark fairness the
/// harness places instances on separate cache lines; the class itself
/// stays one word so Table 1's space accounting holds for embedders.
template <typename Waiting = CtrCasWaiting>
class HEMLOCK_CAPABILITY("mutex") HemlockBase {
 public:
  HemlockBase() = default;
  HemlockBase(const HemlockBase&) = delete;
  HemlockBase& operator=(const HemlockBase&) = delete;

  /// Acquire. Uncontended: one SWAP. Contended: wait for this lock's
  /// address to appear in the predecessor's Grant mailbox, then
  /// acknowledge by clearing it (the only circumstance in which one
  /// thread stores into another's Grant field, §2).
  void lock() noexcept HEMLOCK_ACQUIRE() {
    ThreadRec& me = self();
    // Listing 1 line 6 invariant: our mailbox must be empty between
    // locking operations (holds for pure Hemlock/CTR/AH usage; see
    // hemlock_ohv.hpp for the variant that relaxes it).
    // mo: relaxed — assert-only peek at our own mailbox, no ordering.
    assert(me.grant.value.load(std::memory_order_relaxed) == kGrantEmpty);
    // mo: doorstep (line 8) is acq_rel — release publishes our record
    // to the successor that will obtain it from this SWAP; acquire
    // pairs with the release CAS of an uncontended unlock so the
    // previous critical section is visible when we get pred == null.
    ThreadRec* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      // Queued but not yet watching the mailbox: the window where the
      // owner's unlock CAS has already failed against our SWAP and
      // its publish may land before our first poll.
      HEMLOCK_VERIFY_YIELD("hemlock:queued");
      // Lines 11-12: the acquire observation of our lock word pairs
      // with the owner's release store in unlock, carrying the
      // critical section's writes.
      profiled_wait_and_consume<Waiting>(pred->grant.value, lock_word(),
                                         *pred);
    }
    // mo: relaxed — assert-only snapshot (line 13), no ordering.
    assert(tail_.load(std::memory_order_relaxed) != nullptr);
    LockProfiler::on_acquire(me);
  }

  /// Non-blocking attempt: CAS instead of SWAP (paper §2: "MCS and
  /// Hemlock allow trivial implementations of the TryLock operations").
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    ThreadRec* expected = nullptr;
    // mo: acq_rel on success — same pairing as lock()'s doorstep SWAP;
    // relaxed on failure (no acquisition, nothing to order).
    if (tail_.compare_exchange_strong(expected, &self(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      LockProfiler::on_acquire(self());
      return true;
    }
    return false;
  }

  /// Release. Uncontended: one CAS. Contended: publish the lock's
  /// address through our Grant mailbox and wait — outside the
  /// critical section — for the successor's acknowledgement so the
  /// mailbox can be reused (lines 20-21). A thread that unlocks a
  /// lock it does not hold stalls here forever, which the paper
  /// considers a debuggability feature (§2).
  void unlock() noexcept HEMLOCK_RELEASE() {
    ThreadRec& me = self();
    // mo: relaxed — assert-only peek at our own mailbox, no ordering.
    assert(me.grant.value.load(std::memory_order_relaxed) == kGrantEmpty);
    ThreadRec* expected = &me;
    // mo: line 16 CAS is release so the next uncontended acquirer
    // (who reads null from the SWAP) sees our critical section;
    // relaxed on failure — the Grant publish below carries ordering.
    if (!tail_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
      // Excision failed — a successor exists — but the Grant store
      // has not happened: the successor may already be polling.
      HEMLOCK_VERIFY_YIELD("hemlock:handover");
      // Waiters exist. Line 20: address-based ownership transfer —
      // release carries the critical section to the successor (and,
      // for the parking policy, wakes it).
      Waiting::publish(me.grant.value, lock_word());
      // Line 21: drain. Waiting happens after the transfer, off the
      // critical path; both MCS and Hemlock have such a non-wait-free
      // window (§2).
      Waiting::wait_until_empty(me.grant.value);
    }
    LockProfiler::on_release(me);
  }

  /// True if no thread holds or waits for the lock (racy snapshot;
  /// for tests and assertions only).
  bool appears_unlocked() const noexcept {
    // mo: acquire so test assertions reading through this snapshot see
    // the releasing thread's writes.
    return tail_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  GrantWord lock_word() const noexcept {
    return reinterpret_cast<GrantWord>(this);
  }

  std::atomic<ThreadRec*> tail_{nullptr};
};
static_assert(sizeof(HemlockBase<>) == sizeof(void*),
              "Hemlock's lock body is exactly one word (Table 1)");

/// Hemlock with the CTR optimization (Listing 2) — the configuration
/// all paper results use unless noted.
using Hemlock = HemlockBase<CtrCasWaiting>;
/// "Hemlock-": the simplistic reference implementation (Listing 1).
using HemlockNaive = HemlockBase<PoliteWaiting>;
/// CTR via fetch-and-add of zero (§2.1's LOCK:XADD alternative).
using HemlockFaa = HemlockBase<CtrFaaWaiting>;
/// Governed Grant policy: not a paper configuration; the Hemlock
/// family's adaptive waiting tier (CTR doorstep, then the governor's
/// spin/yield/park escalation). The shim hosts plain "hemlock" on
/// this when HEMLOCK_WAIT is unset; it also serves HEMLOCK_WAIT=yield
/// (the family has no fixed yield tier).
using HemlockAdaptive = HemlockBase<GovernedGrantWaiting>;
/// Spin-then-park via futex — the Appendix-C "polite waiting"
/// (WaitOnAddress) option for the base algorithm.
using HemlockFutex = HemlockBase<FutexWaiting>;

namespace detail {
template <typename W>
struct hemlock_traits_base {
  static constexpr std::size_t lock_words = 1;    // Table 1: Lock = 1
  static constexpr std::size_t held_words = 0;    // Held = 0
  static constexpr std::size_t wait_words = 0;    // Wait = 0
  static constexpr std::size_t thread_words = 1;  // Thread = 1 (Grant)
  static constexpr bool nontrivial_init = false;  // Init = none
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kFereLocal;
  /// The Grant waiting policy's name ("ctr-cas", "load", ...).
  static constexpr const char* waiting = W::name;
  /// The futex policy parks, the governed policy escalates and the
  /// adaptive policy yields; the paper's measured policies busy-wait
  /// and convoy when preempted.
  static constexpr bool oversub_safe =
      std::is_same_v<W, FutexWaiting> || std::is_same_v<W, AdaptiveWaiting> ||
      std::is_same_v<W, GovernedGrantWaiting>;
};
}  // namespace detail

template <>
struct lock_traits<Hemlock> : detail::hemlock_traits_base<CtrCasWaiting> {
  static constexpr const char* name = "hemlock";
};
template <>
struct lock_traits<HemlockNaive>
    : detail::hemlock_traits_base<PoliteWaiting> {
  static constexpr const char* name = "hemlock-";  // paper's figure label
};
template <>
struct lock_traits<HemlockFaa> : detail::hemlock_traits_base<CtrFaaWaiting> {
  static constexpr const char* name = "hemlock-faa";
};
template <>
struct lock_traits<HemlockAdaptive>
    : detail::hemlock_traits_base<GovernedGrantWaiting> {
  static constexpr const char* name = "hemlock-adaptive";
};
template <>
struct lock_traits<HemlockFutex>
    : detail::hemlock_traits_base<FutexWaiting> {
  static constexpr const char* name = "hemlock-futex";
};

}  // namespace hemlock
