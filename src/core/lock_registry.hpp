// lock_registry.hpp — compile-time roster of every lock algorithm.
//
// The paper's evaluation framework selects lock implementations at
// run time (via LD_PRELOAD + an environment variable, §5). This
// tuple is the library's single source of truth for *what exists*:
// the typed test/bench suites sweep it directly, and the runtime
// LockFactory (api/factory.hpp) self-populates from it. All
// name→algorithm dispatch happens in the factory; this header only
// enumerates types.
#pragma once

#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "core/hemlock.hpp"
#include "core/hemlock_ah.hpp"
#include "core/hemlock_chain.hpp"
#include "core/hemlock_cv.hpp"
#include "core/hemlock_ohv.hpp"
#include "core/hemlock_overlap.hpp"
#include "locks/anderson.hpp"
#include "locks/boxed.hpp"
#include "locks/clh.hpp"
#include "locks/lock_traits.hpp"
#include "locks/mcs.hpp"
#include "locks/mcs_k42.hpp"
#include "locks/rwlock.hpp"
#include "locks/system.hpp"
#include "locks/tas.hpp"
#include "locks/ticket.hpp"

namespace hemlock {

/// Value-carrier for a lock type (locks are not copyable; the
/// registry traffics in tags instead).
template <typename L>
struct lock_tag {
  using type = L;
};

/// Default Anderson capacity used by registry consumers: the waiting
/// array must cover every concurrent contender (lock() wraps the slot
/// ring past this bound — runtime consumers check
/// LockInfo::max_threads). 64 covers the thread counts the test
/// suites and typical hosts use; benches sweeping wider instantiate
/// AndersonLock<N> directly.
using AndersonDefault = AndersonLock<64>;
/// Waiting-tier variants of the default-capacity Anderson lock.
using AndersonYieldDefault = AndersonLockT<64, QueueYieldWaiting>;
using AndersonParkDefault = AndersonLockT<64, SpinThenParkWaiting>;
using AndersonGovernedDefault = AndersonLockT<64, GovernedWaiting>;

// Bulk-bodied algorithms enter the registry through the boxed
// side-storage path (locks/boxed.hpp): the erased footprint is one
// pointer, so AnyLock's inline buffer — sized to the roster MAXIMUM —
// stays cacheline-scale instead of inheriting Anderson's ~4 KiB
// waiting array or the sharded rwlock's per-shard ingress lines. The
// factory names are unchanged ("anderson", "rwlock", ...); only the
// erased storage strategy differs. Embedders that want the arrays
// inline use the concrete templates directly.
using AndersonBoxed = BoxedLock<AndersonDefault>;
using AndersonYieldBoxed = BoxedLock<AndersonYieldDefault>;
using AndersonParkBoxed = BoxedLock<AndersonParkDefault>;
using AndersonGovernedBoxed = BoxedLock<AndersonGovernedDefault>;
using RwBoxed = BoxedLock<RwLock>;
using RwYieldBoxed = BoxedLock<RwYieldLock>;
using RwParkBoxed = BoxedLock<RwParkLock>;
using RwGovernedBoxed = BoxedLock<RwGovernedLock>;

/// Every algorithm in the library, core contribution first, then the
/// paper's baselines, then the queue locks' oversubscription waiting
/// tiers (-yield / -park / -adaptive; see core/waiting.hpp), then the
/// reader-writer family (sharded-ingress and pthread_rwlock_t-sized
/// compact, each across the tiers), then the reference system mutexes.
using AllLockTags = std::tuple<
    lock_tag<Hemlock>, lock_tag<HemlockNaive>, lock_tag<HemlockFaa>,
    lock_tag<HemlockFutex>, lock_tag<HemlockAdaptive>,
    lock_tag<HemlockOverlap>, lock_tag<HemlockAh>,
    lock_tag<HemlockOhv1>, lock_tag<HemlockOhv2>, lock_tag<HemlockCv>,
    lock_tag<HemlockChain>, lock_tag<McsLock>, lock_tag<McsK42Lock>,
    lock_tag<ClhLock>, lock_tag<TicketLock>, lock_tag<TasLock>,
    lock_tag<TtasLock>, lock_tag<TtasBackoffLock>,
    lock_tag<AndersonBoxed>, lock_tag<McsYieldLock>,
    lock_tag<McsParkLock>, lock_tag<McsGovernedLock>,
    lock_tag<ClhYieldLock>, lock_tag<ClhParkLock>,
    lock_tag<ClhGovernedLock>, lock_tag<TicketYieldLock>,
    lock_tag<TicketParkLock>, lock_tag<TicketGovernedLock>,
    lock_tag<AndersonYieldBoxed>, lock_tag<AndersonParkBoxed>,
    lock_tag<AndersonGovernedBoxed>, lock_tag<RwBoxed>,
    lock_tag<RwYieldBoxed>, lock_tag<RwParkBoxed>,
    lock_tag<RwGovernedBoxed>, lock_tag<RwCompactLock>,
    lock_tag<RwCompactYieldLock>, lock_tag<RwCompactParkLock>,
    lock_tag<RwCompactGovernedLock>, lock_tag<PthreadMutex>>;

/// The five algorithms the paper's figures plot: MCS, CLH, Ticket,
/// Hemlock (CTR) and Hemlock- (naive).
using PaperFigureLockTags =
    std::tuple<lock_tag<McsLock>, lock_tag<ClhLock>, lock_tag<TicketLock>,
               lock_tag<Hemlock>, lock_tag<HemlockNaive>>;

/// Invoke fn(lock_tag<L>{}) for every lock type in Tags.
template <typename Tags = AllLockTags, typename Fn>
void for_each_lock_type(Fn&& fn) {
  std::apply([&](auto... tags) { (fn(tags), ...); }, Tags{});
}

/// Names of all registered algorithms, registry order.
template <typename Tags = AllLockTags>
std::vector<std::string> lock_names() {
  std::vector<std::string> names;
  for_each_lock_type<Tags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    names.emplace_back(lock_traits<L>::name);
  });
  return names;
}

}  // namespace hemlock
