// hemlock_ah.hpp — Hemlock with Aggressive Hand-Over (paper Appendix
// B, Listing 4).
//
// AH reorders unlock to store the lock address into Grant *first* —
// optimistically anticipating waiters — and only then CAS the Tail
// for the uncontended case. "This reorganization accomplishes
// handover earlier in the unlock path and improves scalability by
// reducing the critical path for handover ... The contended handover
// critical path is extremely short – the very first statement in the
// unlock operator conveys ownership to the successor."
//
// ## Lifetime caveat (Appendix B, verbatim consequence)
// Because unlock touches the lock body (the Tail CAS) *after*
// ownership may already have transferred, AH "can lead to surprising
// use-after-free memory lifecycle pathologies and is thus not safe
// for general use in a pthread_mutex implementation." It is safe when
// the lock body cannot be recycled while a thread is inside
// unlock(L): static/global locks, arenas, type-stable memory, GC, or
// RCU-style deferred reclamation. This library's tests and benches
// only use AH with static-duration or test-scoped lock storage, and
// the pthread interposition layer refuses to expose it.
// The safe fast-hand-over alternatives are in hemlock_ohv.hpp.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "core/hemlock.hpp"
#include "core/waiting.hpp"
#include "runtime/annotations.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/thread_rec.hpp"

namespace hemlock {

/// Hemlock + AH (+ CTR, as in Listing 4). "The AH form (with CTR)
/// provides the best overall performance of the Hemlock family and is
/// our preferred form when lifecycle concerns permit."
template <typename Waiting = CtrCasWaiting>
class HEMLOCK_CAPABILITY("mutex") HemlockAhBase {
 public:
  HemlockAhBase() = default;
  HemlockAhBase(const HemlockAhBase&) = delete;
  HemlockAhBase& operator=(const HemlockAhBase&) = delete;

  /// Acquire — identical to the base algorithm (Listing 4 lines 5-9).
  void lock() noexcept HEMLOCK_ACQUIRE() {
    ThreadRec& me = self();
    // mo: relaxed — assert-only peek at our own grant word.
    assert(me.grant.value.load(std::memory_order_relaxed) == kGrantEmpty);
    // mo: acq_rel doorstep SWAP — release publishes our ThreadRec,
    // acquire orders us after the predecessor's enqueue.
    ThreadRec* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      profiled_wait_and_consume<Waiting>(pred->grant.value, lock_word(),
                                         *pred);
    }
    LockProfiler::on_acquire(me);
  }

  /// Non-blocking attempt (CAS on Tail).
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    ThreadRec* expected = nullptr;
    // mo: acq_rel — acquire pairs with the releasing unlock CAS;
    // relaxed on failure, nothing was read.
    if (tail_.compare_exchange_strong(expected, &self(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      LockProfiler::on_acquire(self());
      return true;
    }
    return false;
  }

  /// Release (Listing 4 lines 10-17): speculative handover first.
  void unlock() noexcept HEMLOCK_RELEASE() {
    ThreadRec& me = self();
    // mo: relaxed — assert-only peek at our own grant word.
    assert(me.grant.value.load(std::memory_order_relaxed) == kGrantEmpty);
    // Line 12: optimistic transfer — if a successor is already
    // queued it can enter the critical section immediately, before
    // we even examine the Tail.
    Waiting::publish(me.grant.value, lock_word());
    ThreadRec* expected = &me;
    // mo: release hand-off — the critical section happens-before the
    // next acquirer's doorstep SWAP; relaxed on failure (the grant
    // publish above already carried release).
    if (tail_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
      // Lines 14-16: no waiters existed (and none could have observed
      // the speculative store: becoming our successor requires
      // swapping the Tail before this CAS, which would have made the
      // CAS fail). Retract the speculation; "the superfluous stores
      // ... are harmless to latency as the thread is likely to have
      // the underlying cache line in modified state."
      // publish (not a bare store): sleepers parked on this word by
      // OTHER locks' waiters must re-check after any mutation.
      Waiting::publish(me.grant.value, kGrantEmpty);
      LockProfiler::on_release(me);
      return;
    }
    // Line 17: waiters exist (or existed — the successor may have
    // consumed the grant and even released the lock already, so the
    // CAS may legitimately have observed Tail == null; Listing 1's
    // `assert v != null` is removed in AH for exactly that reason).
    Waiting::wait_until_empty(me.grant.value);
    LockProfiler::on_release(me);
  }

  /// Racy emptiness snapshot for tests.
  bool appears_unlocked() const noexcept {
    // mo: acquire — racy test-only snapshot; orders the observed
    // emptiness after the releasing unlock that produced it.
    return tail_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  GrantWord lock_word() const noexcept {
    return reinterpret_cast<GrantWord>(this);
  }

  std::atomic<ThreadRec*> tail_{nullptr};
};
static_assert(sizeof(HemlockAhBase<>) == sizeof(void*));

/// The paper's preferred form: AH + CTR.
using HemlockAh = HemlockAhBase<CtrCasWaiting>;

template <>
struct lock_traits<HemlockAh> : detail::hemlock_traits_base<CtrCasWaiting> {
  static constexpr const char* name = "hemlock-ah";
  /// Appendix B: AH's speculative unlock store is unsafe when a
  /// mutex's memory can be freed by its last user (the glibc
  /// bug-13690 pathology) — the pthread interposition shim must not
  /// host it.
  static constexpr bool pthread_overlay_safe = false;
};

}  // namespace hemlock
