// hemlock_cv.hpp — the paper's §6 future-work variant: Grant as a
// bounded buffer of capacity 1 protected by a per-thread mutex and
// condition variable.
//
// "An interesting variation we intend to explore in the future is to
// replace the simplistic spinning on the Grant field with a
// per-thread condition variable and mutex pair that protect the Grant
// field, allowing threads to use the same waiting policy as the
// platform mutex and condition variable primitives. ... This
// construction yields 2 interesting properties: (a) the new lock
// enjoys a fast-path, for uncontended locking, that doesn't require
// any underlying mutex or condition variable operations, (b) even if
// the underlying system mutex isn't FIFO, our new lock provides
// strict FIFO admission."
//
// Space: one word per lock (Tail) plus, per thread, {mutex, condvar,
// Grant} — attractive "for systems where locks outnumber threads."
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "core/hemlock.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"

namespace hemlock {

namespace detail {

/// Per-thread state for HemlockCv: the Grant mailbox plus the
/// mutex/condvar pair that implements the bounded-buffer waiting
/// policy. Registered lazily per thread; drained at thread exit.
struct CvRec {
  std::mutex mu;
  std::condition_variable cv;
  std::uintptr_t grant = 0;  // protected by mu

  ~CvRec() {
    // Appendix A note applies here too: the mailbox must drain before
    // the memory is reclaimed (a tardy successor may still consume).
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return grant == 0; });
  }
};

/// The calling thread's CvRec.
inline CvRec& cv_self() {
  static thread_local CvRec rec;
  return rec;
}

}  // namespace detail

/// Blocking Hemlock: spins never, parks in the OS via condvars, yet
/// preserves strict FIFO admission and the uncontended
/// single-atomic-op fast path.
class HEMLOCK_CAPABILITY("mutex") HemlockCv {
 public:
  HemlockCv() = default;
  HemlockCv(const HemlockCv&) = delete;
  HemlockCv& operator=(const HemlockCv&) = delete;

  /// Acquire. Uncontended: one SWAP, no mutex/condvar operations
  /// (property (a) above). Contended: block on the predecessor's
  /// condvar until this lock's address fills its mailbox, then
  /// consume ("take" from the bounded buffer) and notify.
  void lock() HEMLOCK_ACQUIRE() {
    detail::CvRec& me = detail::cv_self();
    // mo: acq_rel doorstep SWAP — release publishes our CvRec,
    // acquire orders us after the predecessor's enqueue.
    detail::CvRec* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      std::unique_lock<std::mutex> lk(pred->mu);
      pred->cv.wait(lk, [&] { return pred->grant == lock_word(); });
      pred->grant = 0;
      // Wake the predecessor's producer side (its next contended
      // unlock waits for the mailbox to empty) and any co-waiters
      // monitoring the same mailbox for other locks. Notify while
      // HOLDING the mutex: the predecessor's thread-exit destructor
      // may destroy the condvar as soon as it can observe grant == 0
      // under the mutex, so an unlocked notify could touch a dead
      // object (caught by TSan in the churn stress).
      pred->cv.notify_all();
    }
  }

  /// Non-blocking attempt (CAS on Tail; still no cv operations).
  bool try_lock() HEMLOCK_TRY_ACQUIRE(true) {
    detail::CvRec* expected = nullptr;
    // mo: acq_rel — acquire pairs with the releasing unlock CAS;
    // relaxed on failure, nothing was read.
    return tail_.compare_exchange_strong(expected, &detail::cv_self(),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  /// Release. Uncontended: one CAS. Contended: "put" the lock address
  /// into our bounded-buffer mailbox — waiting first, if necessary,
  /// for a previous handover to drain — and notify the successor.
  void unlock() HEMLOCK_RELEASE() {
    detail::CvRec& me = detail::cv_self();
    detail::CvRec* expected = &me;
    // mo: release hand-off — the critical section happens-before the
    // next acquirer's doorstep SWAP; relaxed on failure (the mutex-
    // protected mailbox hand-off synchronizes the contended path).
    if (!tail_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
      std::unique_lock<std::mutex> lk(me.mu);
      me.cv.wait(lk, [&] { return me.grant == 0; });  // buffer empty?
      me.grant = lock_word();
      me.cv.notify_all();  // under the mutex; see lock() for why
    }
  }

  /// Racy emptiness snapshot for tests.
  bool appears_unlocked() const noexcept {
    // mo: acquire — racy test-only snapshot; orders the observed
    // emptiness after the releasing unlock that produced it.
    return tail_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::uintptr_t lock_word() const noexcept {
    return reinterpret_cast<std::uintptr_t>(this);
  }

  std::atomic<detail::CvRec*> tail_{nullptr};
};
static_assert(sizeof(HemlockCv) == sizeof(void*));

template <>
struct lock_traits<HemlockCv> {
  static constexpr const char* name = "hemlock-cv";
  static constexpr std::size_t lock_words = 1;
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  // mutex + condvar + grant, in words (platform-dependent; reported
  // for this build's libstdc++).
  static constexpr std::size_t thread_words =
      (sizeof(std::mutex) + sizeof(std::condition_variable) +
       sizeof(std::uintptr_t)) /
      sizeof(void*);
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kFereLocal;
  /// The parking path waits on a per-thread std::mutex/condvar — the
  /// very pthread primitives an interposition library replaces — so
  /// hosting this lock inside an interposed pthread_mutex_t would
  /// re-enter the shim (and pthread_cond_wait on an interposed mutex
  /// is unsupported; see interpose/shim_mutex.hpp).
  static constexpr bool pthread_overlay_safe = false;
  static constexpr const char* waiting = "park";  // condvar parking
  static constexpr bool oversub_safe = true;
};

}  // namespace hemlock
