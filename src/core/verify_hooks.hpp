// verify_hooks.hpp — the zero-cost-when-disabled yield markers the
// interleaving verifier (src/verify/) schedules through.
//
// The stress suites hope the OS scheduler lands a thread inside a
// handoff window; the verifier *enumerates* the landings instead
// (progress64's verify.txt / ver_hemlock.c model). Lock code marks
// its interesting windows — doorstep-to-wait gaps, publish-to-drain
// gaps, the rwlock gate-close/drain walk, every busy-wait loop body —
// with HEMLOCK_VERIFY_YIELD("family:window"). During a verify run each
// marker is a scheduling point: the calling logical thread parks and
// the harness decides who runs next, so every bounded-depth
// interleaving of the marked windows is driven exactly once.
//
// Cost model, by build:
//  * Normal builds (no -DHEMLOCK_VERIFY): the macro expands to
//    ((void)0). No call, no branch, no symbol — codegen is identical
//    to an uninstrumented tree (tools/check_verify_off.py is the
//    ctest'd tripwire for exactly this claim).
//  * Verify builds (-DHEMLOCK_VERIFY): one thread-local pointer load
//    per marker outside a scenario; inside a scenario, a full
//    cooperative context hand-off to the harness scheduler.
//
// This header is deliberately dependency-free: it is included by the
// hottest lock headers (core/waiting.hpp, core/hemlock.hpp,
// locks/rwlock.hpp, runtime/futex.hpp) and must never pull harness
// machinery into them. The harness side lives in src/verify/.
#pragma once

#if defined(HEMLOCK_VERIFY)

#include <cstdint>

namespace hemlock::verify {

/// Per-scenario-thread hook installed by the harness (src/verify/
/// harness.cpp) for the duration of an enumeration. Lock code never
/// touches this directly — only through yield_point() below.
struct ThreadHook {
  /// Hand control to the harness scheduler: record that logical
  /// thread `id` ran up to `tag`, park, and return when rescheduled.
  void (*yield)(void* engine, std::uint32_t id, const char* tag);
  void* engine;      ///< the harness engine driving this enumeration
  std::uint32_t id;  ///< this OS thread's logical scenario id
};

namespace detail {
/// Non-null exactly while the calling OS thread is a scenario
/// participant of an active verify run. Defined in src/verify/
/// hooks.cpp (compiled into hemlock_core only under HEMLOCK_VERIFY).
extern thread_local ThreadHook* tl_hook;
}  // namespace detail

/// True when the calling thread is a logical thread of an active
/// verify scenario. runtime/futex.hpp consults this to turn kernel
/// sleeps into scheduler yields (a real futex_wait would block the
/// whole single-OS-thread-at-a-time harness).
inline bool in_scenario() noexcept { return detail::tl_hook != nullptr; }

/// A schedule point. Outside a scenario: one thread-local load and
/// done. Inside: parks the caller and lets the harness pick the next
/// logical thread per the schedule being enumerated.
inline void yield_point(const char* tag) noexcept {
  ThreadHook* h = detail::tl_hook;
  if (h != nullptr) h->yield(h->engine, h->id, tag);
}

/// Install/clear the calling thread's hook (harness internals only).
void set_thread_hook(ThreadHook* hook) noexcept;

}  // namespace hemlock::verify

#define HEMLOCK_VERIFY_YIELD(tag) ::hemlock::verify::yield_point(tag)

#else  // !HEMLOCK_VERIFY

// Normal builds: the marker vanishes. Keep this expansion exactly
// ((void)0) — tools/check_verify_off.py asserts no verifier residue
// survives preprocessing or codegen in uninstrumented builds.
#define HEMLOCK_VERIFY_YIELD(tag) ((void)0)

#endif  // HEMLOCK_VERIFY
