// hemlock_chain.hpp — the Appendix C park/unpark-capable variant.
//
// "To allow purely local spinning and enable the use of park-unpark
// waiting constructs, we can replace the per-thread Grant field with
// a per-thread pointer to a chain of waiting elements, each of which
// represents a waiting thread. The elements on T's chain are T's
// immediate successors for various locks. Waiting elements contain a
// next field, a flag and a reference to the lock being waited on and
// can be allocated on-stack. Instead of busy waiting on the
// predecessor's Grant field, waiting threads use CAS to push their
// element onto the predecessor's chain, and then busy-wait on the
// flag in their element. The contended unlock(L) operator detaches
// the thread's own chain, using SWAP of null, traverses the detached
// chain, and sets the flag in the element that references L. (At most
// one element will reference L). Any residual non-matching elements
// are returned to the chain. The detach-and-scan phase repeats until
// a matching successor is found and ownership is transferred."
//
// Each waiter spins briefly on its private flag then parks on it via
// futex — the park/unpark construct the chain exists to enable. The
// waker's futex_wake may land after the (stack-allocated) element is
// already popped and its frame reused; that is the standard
// wake-after-free futex idiom — the syscall either finds no waiters
// or spuriously wakes an unrelated one, and every wait loop here
// re-checks its predicate.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/hemlock.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/futex.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

namespace detail {

/// On-stack waiting element (Appendix C: next + flag + lock ref).
struct alignas(kCacheLineSize) ChainElem {
  ChainElem* next = nullptr;
  std::atomic<std::uint32_t> flag{0};  ///< 0 = waiting, 1 = granted
  const void* lock_addr = nullptr;
};

/// Per-thread chain head: this thread's immediate successors, one
/// element per lock they wait on. Sole occupant of its line.
struct ChainRec {
  CacheAligned<std::atomic<ChainElem*>> head{nullptr};
};

/// The calling thread's chain record.
inline ChainRec& chain_self() {
  static thread_local ChainRec rec;
  return rec;
}

}  // namespace detail

/// Hemlock with per-thread successor chains and futex parking.
/// Strictly local waiting (each waiter has a private flag), at the
/// cost of the unlock-side detach-and-scan.
class HEMLOCK_CAPABILITY("mutex") HemlockChain {
 public:
  HemlockChain() = default;
  HemlockChain(const HemlockChain&) = delete;
  HemlockChain& operator=(const HemlockChain&) = delete;

  /// Acquire: enqueue on the Tail; if contended, push an on-stack
  /// element onto the predecessor's chain and wait on our own flag.
  void lock() HEMLOCK_ACQUIRE() {
    detail::ChainRec& me = detail::chain_self();
    // mo: acq_rel doorstep SWAP — release publishes our ChainRec,
    // acquire orders us after the predecessor's enqueue.
    detail::ChainRec* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred == nullptr) return;

    detail::ChainElem elem;
    elem.lock_addr = this;
    // Treiber push onto the predecessor's chain.
    // mo: relaxed initial read — the CAS below revalidates it.
    detail::ChainElem* h = pred->head.value.load(std::memory_order_relaxed);
    do {
      elem.next = h;
    // mo: release push — publishes elem.next/lock_addr to the
    // predecessor's acquiring detach SWAP; relaxed failure reloads.
    } while (!pred->head.value.compare_exchange_weak(
        h, &elem, std::memory_order_release, std::memory_order_relaxed));

    // Spin-then-park on our private flag.
    // mo: acquire polls — pair with the owner's release flag store;
    // the previous critical section happens-before our entry.
    for (std::uint32_t spins = 0; spins < kSpinsBeforePark; ++spins) {
      if (elem.flag.load(std::memory_order_acquire) != 0) return;  // mo: acquire poll
      cpu_relax();
    }
    while (elem.flag.load(std::memory_order_acquire) == 0) {  // mo: as above
      futex_wait(&elem.flag, 0);
    }
  }

  /// Non-blocking attempt (CAS on Tail).
  bool try_lock() HEMLOCK_TRY_ACQUIRE(true) {
    detail::ChainRec* expected = nullptr;
    // mo: acq_rel — acquire pairs with the releasing unlock CAS;
    // relaxed on failure, nothing was read.
    return tail_.compare_exchange_strong(expected, &detail::chain_self(),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  /// Release: uncontended CAS, else detach-and-scan for the unique
  /// element referencing this lock, re-attaching bystanders.
  void unlock() HEMLOCK_RELEASE() {
    detail::ChainRec& me = detail::chain_self();
    detail::ChainRec* expected = &me;
    // mo: release hand-off — the critical section happens-before the
    // next acquirer's doorstep SWAP; relaxed on failure (the flag
    // store below carries release instead).
    if (tail_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
      return;
    }
    // A successor exists but may not have pushed its element yet;
    // repeat the detach-and-scan until it appears.
    for (;;) {
      // mo: acq_rel detach SWAP — acquire pairs with waiters' release
      // pushes (their elem fields are visible); release keeps the
      // splice-back below ordered for the next detach.
      detail::ChainElem* list =
          me.head.value.exchange(nullptr, std::memory_order_acq_rel);
      detail::ChainElem* match = nullptr;
      detail::ChainElem* keep_head = nullptr;
      detail::ChainElem* keep_tail = nullptr;
      while (list != nullptr) {
        detail::ChainElem* next = list->next;
        if (list->lock_addr == this) {
          match = list;  // at most one element references L
        } else {
          list->next = keep_head;
          keep_head = list;
          if (keep_tail == nullptr) keep_tail = list;
        }
        list = next;
      }
      if (keep_head != nullptr) {
        // Splice the bystanders back (they are other locks' waiters;
        // their unlocks — also by this thread — will find them).
        // mo: relaxed initial read — the CAS below revalidates it.
        detail::ChainElem* h = me.head.value.load(std::memory_order_relaxed);
        do {
          keep_tail->next = h;
        // mo: release splice — republishes the bystander links;
        // relaxed failure reloads.
        } while (!me.head.value.compare_exchange_weak(
            h, keep_head, std::memory_order_release,
            std::memory_order_relaxed));
      }
      if (match != nullptr) {
        // Transfer ownership. After the flag store the element (on
        // the successor's stack) may vanish at any moment; the wake
        // below tolerates that (see file comment).
        // mo: release hand-off — critical section happens-before the
        // successor's acquire flag poll.
        match->flag.store(1, std::memory_order_release);
        futex_wake(&match->flag, 1);
        return;
      }
      cpu_relax();
    }
  }

  /// Racy emptiness snapshot for tests.
  bool appears_unlocked() const noexcept {
    // mo: acquire — racy test-only snapshot; orders the observed
    // emptiness after the releasing unlock that produced it.
    return tail_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  static constexpr std::uint32_t kSpinsBeforePark = 512;

  std::atomic<detail::ChainRec*> tail_{nullptr};
};
static_assert(sizeof(HemlockChain) == sizeof(void*));

template <>
struct lock_traits<HemlockChain> {
  static constexpr const char* name = "hemlock-chain";
  static constexpr std::size_t lock_words = 1;
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words =
      sizeof(detail::ChainElem) / sizeof(void*);  // on-stack element
  static constexpr std::size_t thread_words = 1;  // chain head
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kLocal;  // private flags
  static constexpr const char* waiting = "park";  // futex park-unpark
  static constexpr bool oversub_safe = true;
};

}  // namespace hemlock
