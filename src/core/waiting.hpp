// waiting.hpp — busy-wait policies for the Grant mailbox protocol.
//
// The paper's Coherence Traffic Reduction optimization (§2.1) is a
// *waiting policy*: instead of polling a Grant word with plain loads
// (which pulls the line into S-state and forces an S→M upgrade when
// the waiter finally clears it), the waiter polls with an atomic
// read-modify-write — CAS (Listing 2 line 9) or fetch-and-add of 0
// ("read-with-intent-to-write") — so the line is already in M-state
// in the waiter's cache at the moment of hand-over. The unlock-side
// wait (Listing 2 line 15) uses FAA(0) because the Grant word "will
// be written by that same thread in subsequent unlock operations".
//
// Each policy provides:
//   wait_and_consume(g, expect): block until g == expect, then clear
//       g to kGrantEmpty (the successor's acknowledgement, §2), with
//       acquire semantics on the observation and release on the clear.
//   wait_until_empty(g): block until g == kGrantEmpty (the unlock-side
//       drain), with acquire semantics.
//
// "Because of the simple communication pattern, back-off in the
// busy-waiting loop is not useful" (§2.1) — none of the policies
// back off; AdaptiveWaiting only escalates to sched_yield for
// oversubscribed *test* environments, never by default in benches.
// Each policy additionally provides:
//   publish(g, value): the unlock-side handover store. Plain release
//       store for the spinning policies; the parking policy adds the
//       futex wake that its sleepers depend on.
// ---------------------------------------------------------------------
// Besides the Grant-mailbox policies above, this header defines the
// *queue-lock waiting tiers*: policies with a uniform word-waiting
// interface (wait_until / wait_while / publish) that MCS, CLH, Ticket
// and Anderson take as a template parameter, the same way the Hemlock
// variants take a Grant policy. They are the oversubscription
// subsystem: the paper's baselines busy-wait unconditionally, which
// convoys at scheduler speed when threads outnumber cores; the tiers
// let the same algorithms yield or park (futex) instead, under the
// ContentionGovernor's spin -> yield -> park escalation.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <type_traits>

#include "core/verify_hooks.hpp"
#include "runtime/futex.hpp"
#include "runtime/governor.hpp"
#include "runtime/pause.hpp"
#include "runtime/thread_rec.hpp"
#include "stats/telemetry.hpp"

namespace hemlock {

/// Sleep bound for futex parks on 8-byte words (Grant words, queue
/// nodes, tickets). The kernel compares only the low 32 bits, so a
/// publish whose value aliases the parked snapshot's low half passes
/// that compare and its wake can land before the sleep begins; the
/// bound turns that lost-wakeup deadlock into one re-check. 2 ms is
/// free against real contended hand-off latencies.
inline constexpr std::int64_t kWideWordParkNanos = 2000000;

/// Listing 1 waiting: plain-load polling, then a store to clear.
/// This is "Hemlock-" in the paper's figures (no CTR).
struct PoliteWaiting {
  static constexpr const char* name = "load";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    // mo: release hand-off — the critical section happens-before the
    // successor's acquire observation of this Grant value.
    g.store(value, std::memory_order_release);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    HEMLOCK_TM_CONTENDED();
    // mo: acquire poll pairs with publish's release, carrying the
    // predecessor's critical section.
    while (g.load(std::memory_order_acquire) != expect) {
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("grant:poll");
    }
    // The observe-then-ack gap is the window the CTR policies close
    // atomically; for the naive policy it is a schedule point.
    HEMLOCK_VERIFY_YIELD("grant:ack");
    // Acknowledge receipt: restore the mailbox to empty so the
    // predecessor may reuse it (the single store the paper counts as
    // Hemlock's only extra critical-path burden vs MCS/CLH, §2).
    // mo: release ack — the predecessor's drain acquires this so our
    // read of the mailbox is complete before it reuses the word.
    g.store(kGrantEmpty, std::memory_order_release);
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    // mo: acquire drain — pairs with the successor's release ack so
    // the mailbox is ours to reuse after observing kGrantEmpty.
    while (g.load(std::memory_order_acquire) != kGrantEmpty) {
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("grant:drain");
    }
  }
};

/// Listing 2 waiting: CTR via CAS-polling. Each failed CAS still
/// acquires the line in M-state, so the eventual successful consume
/// needs no S→M upgrade transaction on the critical hand-over path.
struct CtrCasWaiting {
  static constexpr const char* name = "ctr-cas";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    // mo: release hand-off — the critical section happens-before the
    // successor's acquire observation of this Grant value.
    g.store(value, std::memory_order_release);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    HEMLOCK_TM_CONTENDED();
    for (;;) {
      GrantWord e = expect;
      // mo: acq_rel consume — acquire pairs with publish's release
      // (carrying the critical section), release makes the ack
      // visible to the predecessor's drain; relaxed on failure (the
      // CTR poll is just a read-with-intent-to-write).
      if (g.compare_exchange_weak(e, kGrantEmpty, std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
        return;
      }
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("grant:ctr-poll");
    }
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    // FAA(0) as read-with-intent-to-write (paper Listing 2 line 15):
    // we expect to write this word in our own subsequent unlocks.
    // mo: acquire pairs with the successor's release ack.
    while (g.fetch_add(0, std::memory_order_acquire) != kGrantEmpty) {
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("grant:drain");
    }
  }
};

/// §2.1's alternative CTR encoding: poll with fetch-and-add of 0
/// (LOCK:XADD on x86) and clear with a normal store once the expected
/// address appears — "we simply replace the load instruction in the
/// traditional busy-wait loop with fetch-and-add of 0".
struct CtrFaaWaiting {
  static constexpr const char* name = "ctr-faa";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    // mo: release hand-off — the critical section happens-before the
    // successor's acquire observation of this Grant value.
    g.store(value, std::memory_order_release);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    HEMLOCK_TM_CONTENDED();
    // mo: acquire FAA(0) poll pairs with publish's release.
    while (g.fetch_add(0, std::memory_order_acquire) != expect) {
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("grant:ctr-poll");
    }
    HEMLOCK_VERIFY_YIELD("grant:ack");
    // mo: release ack toward the predecessor's acquire drain.
    g.store(kGrantEmpty, std::memory_order_release);
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    // mo: acquire FAA(0) drain — pairs with the release ack.
    while (g.fetch_add(0, std::memory_order_acquire) != kGrantEmpty) {
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("grant:drain");
    }
  }
};

/// Spin-then-park waiting via futex — the paper's Appendix C opening:
/// "threads in the Hemlock slow-path could optionally be made to wait
/// politely, voluntarily surrendering their CPU and blocking in the
/// operating system, via constructs such as WaitOnAddress, where a
/// waiting thread could use WaitOnAddress to monitor its
/// predecessor's Grant field." futex(2) is Linux's WaitOnAddress.
///
/// Mechanics: waiters spin briefly (the usual spin-then-park policy
/// the paper describes for user-mode locks), then sleep on the low
/// 32 bits of the Grant word. Every mutation of a Grant word under
/// this policy goes through publish()/the consume-clear below, which
/// issue futex_wake_all; sleeps are additionally bounded by
/// kWideWordParkNanos because two lock addresses may alias in their
/// low halves, making a publish invisible to the kernel's 32-bit
/// compare after its wake has already been spent.
struct FutexWaiting {
  static constexpr const char* name = "futex";
#if defined(HEMLOCK_VERIFY)
  // Verify builds shrink the spin budget so the interleaving
  // enumerator's bounded schedule depth reaches the park path instead
  // of being spent on equivalent spin iterations (each iteration is a
  // schedule point). Normal builds are untouched.
  static constexpr std::uint32_t kSpinsBeforePark = 4;
#else
  static constexpr std::uint32_t kSpinsBeforePark = 512;
#endif

  static_assert(std::endian::native == std::endian::little,
                "futex word overlay assumes little-endian layout");

  static std::atomic<std::uint32_t>* futex_word(
      std::atomic<GrantWord>& g) noexcept {
    // Low 32 bits of the grant word (little-endian: lowest address).
    return reinterpret_cast<std::atomic<std::uint32_t>*>(&g);
  }

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    // mo: release hand-off; the unconditional wake (no census here)
    // needs no extra fence — sleepers re-check after waking.
    g.store(value, std::memory_order_release);
    // mo: relaxed — diagnostic syscall tally (ParkDiag).
    ContentionGovernor::instance().diag().wake_syscalls.fetch_add(
        1, std::memory_order_relaxed);
    HEMLOCK_TM_WAKE();
    futex_wake_all(futex_word(g));
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    HEMLOCK_TM_CONTENDED();
    for (;;) {
      for (std::uint32_t i = 0; i < kSpinsBeforePark; ++i) {
        GrantWord e = expect;
        // mo: acq_rel consume / relaxed failed poll — same CTR
        // pairing as CtrCasWaiting.
        if (g.compare_exchange_weak(e, kGrantEmpty,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
          // Acknowledge; the publisher may be parked in its drain.
          wake_after_external_clear(g);
          return;
        }
        cpu_relax();
        HEMLOCK_VERIFY_YIELD("grant:futex-poll");
      }
      // mo: acquire snapshot — the kernel's futex compare against its
      // low word closes the publish-vs-sleep race.
      const GrantWord seen = g.load(std::memory_order_acquire);
      if (seen != expect) {
        auto& d = ContentionGovernor::instance().diag();
        // mo: relaxed — diagnostic sleep tally (ParkDiag).
        d.park_sleeps.fetch_add(1, std::memory_order_relaxed);
        HEMLOCK_TM_PARK();
        // Bounded: Grant words are 8 bytes wide (kWideWordParkNanos).
        futex_wait_for(futex_word(g), static_cast<std::uint32_t>(seen),
                       kWideWordParkNanos);
        // mo: relaxed — diagnostic wakeup tally (ParkDiag).
        d.park_wakeups.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    for (;;) {
      for (std::uint32_t i = 0; i < kSpinsBeforePark; ++i) {
        // mo: acquire drain — pairs with the successor's release ack.
        if (g.load(std::memory_order_acquire) == kGrantEmpty) return;
        cpu_relax();
        HEMLOCK_VERIFY_YIELD("grant:drain");
      }
      // mo: acquire snapshot for the kernel's futex compare.
      const GrantWord seen = g.load(std::memory_order_acquire);
      if (seen == kGrantEmpty) return;
      auto& d = ContentionGovernor::instance().diag();
      // mo: relaxed — diagnostic sleep tally (ParkDiag).
      d.park_sleeps.fetch_add(1, std::memory_order_relaxed);
      HEMLOCK_TM_PARK();
      futex_wait_for(futex_word(g), static_cast<std::uint32_t>(seen),
                     kWideWordParkNanos);
      // mo: relaxed — diagnostic wakeup tally (ParkDiag).
      d.park_wakeups.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Wake a publisher that may be parked in its drain, after a Grant
  /// clear performed outside the policy (profiled_wait_and_consume).
  static void wake_after_external_clear(std::atomic<GrantWord>& g) noexcept {
    // mo: relaxed — diagnostic syscall tally (ParkDiag).
    ContentionGovernor::instance().diag().wake_syscalls.fetch_add(
        1, std::memory_order_relaxed);
    HEMLOCK_TM_WAKE();
    futex_wake_all(futex_word(g));
  }
};

/// Waiting wrapper used by the Hemlock lock() paths: when the §5.4
/// profiler is off it defers to the configured policy untouched; when
/// profiling, it uses a peek-then-consume protocol that makes the
/// multi-waiting gauge *exact*. The waiter deregisters strictly
/// before its (then-guaranteed) consume: only this waiter can clear
/// the observed value (Lemma 9), and no next-epoch waiter can
/// register on the same Grant word until the owner's drain — which
/// needs our consume — completes. Hence the gauge can never count a
/// finished waiter alongside a fresh one.
template <typename Waiting>
inline void profiled_wait_and_consume(std::atomic<GrantWord>& g,
                                      GrantWord expect,
                                      ThreadRec& pred) noexcept {
  if (!LockProfiler::enabled()) {
    Waiting::wait_and_consume(g, expect);
    return;
  }
  HEMLOCK_TM_CONTENDED();  // the policy's own entry hook is bypassed here
  LockProfiler::on_wait_begin(pred);
  // mo: acquire peek pairs with publish's release — the consume CAS
  // below re-synchronizes, so the gauge bookkeeping between them
  // needs no stronger order.
  while (g.load(std::memory_order_acquire) != expect) {
    cpu_relax();
    HEMLOCK_VERIFY_YIELD("grant:profiled-poll");
  }
  LockProfiler::on_wait_end(pred);
  GrantWord e = expect;
  // mo: acq_rel consume / relaxed failure — same CTR pairing as
  // CtrCasWaiting (the failure arm is unreachable, see below).
  const bool consumed = g.compare_exchange_strong(
      e, kGrantEmpty, std::memory_order_acq_rel, std::memory_order_relaxed);
  (void)consumed;  // cannot fail: we are the unique consumer of `expect`
  if constexpr (requires { Waiting::wake_after_external_clear(g); }) {
    // The publisher may be parked in its drain; the plain CAS above
    // does not wake it.
    Waiting::wake_after_external_clear(g);
  }
}

/// Load-polling with spin-then-yield escalation. Not part of the
/// paper's measured configurations; used by the test suite so that
/// schedules with many more threads than CPUs cannot livelock the CI
/// machine. Semantically identical to PoliteWaiting.
struct AdaptiveWaiting {
  static constexpr const char* name = "adaptive";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    // mo: release hand-off — the critical section happens-before the
    // successor's acquire observation of this Grant value.
    g.store(value, std::memory_order_release);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    HEMLOCK_TM_CONTENDED();
    SpinWait w;
    // mo: acquire poll / release ack — identical pairing to
    // PoliteWaiting; only the loop body (yield escalation) differs.
    while (g.load(std::memory_order_acquire) != expect) {
      w.wait();
      HEMLOCK_VERIFY_YIELD("grant:poll");
    }
    HEMLOCK_VERIFY_YIELD("grant:ack");
    // mo: release ack toward the predecessor's acquire drain.
    g.store(kGrantEmpty, std::memory_order_release);
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    SpinWait w;
    // mo: acquire drain — pairs with the release ack.
    while (g.load(std::memory_order_acquire) != kGrantEmpty) {
      w.wait();
      HEMLOCK_VERIFY_YIELD("grant:drain");
    }
  }
};

// ======================================================================
// Queue-lock waiting tiers.
//
// Interface (each policy provides all three, templated over the word
// type — std::uint32_t flags, std::uint64_t tickets, queue-node
// pointers):
//   wait_until(w, expected): block until w == expected, acquire
//       semantics on the successful observation.
//   wait_while(w, unwanted): block until w != unwanted; returns the
//       first differing value (acquire).
//   publish(w, value): the releasing side's hand-off store (release).
//       For the parking tiers the futex wake is folded in here, gated
//       on the governor's parked-waiter census so uncontended unlocks
//       never pay a syscall.
//
// The paper's "back-off ... is not useful" guidance (§2.1) holds for
// dedicated cores; these tiers exist precisely for the regime where it
// does not. QueueSpinWaiting — the default everywhere — remains the
// paper-faithful busy-wait with zero added cost.
// ======================================================================

namespace queue_wait {

#if defined(HEMLOCK_VERIFY)
/// Verify builds compress the spin budgets: every loop iteration is a
/// schedule point to the interleaving enumerator, so a 1024-spin
/// doorstep would spend the whole bounded depth on equivalent polls
/// before any tier escalation became reachable.
inline constexpr std::uint32_t kDoorstepSpins = 4;
inline constexpr std::uint32_t kChunkSpins = 2;
#else
/// Spins of the free doorstep phase every tier performs before
/// escalating: fast hand-offs (the common case on non-oversubscribed
/// hosts) never reach a yield or a syscall.
inline constexpr std::uint32_t kDoorstepSpins = 1024;
/// Spin chunk between tier re-evaluations once escalated.
inline constexpr std::uint32_t kChunkSpins = 256;
#endif
/// Yield rounds the fixed park tier performs before sleeping (cheap
/// second chances around a preempted publisher).
inline constexpr std::uint32_t kYieldsBeforePark = 4;

/// The waited word's low 32 bits — the futex-comparable view.
template <typename T>
inline std::uint32_t low_word(T v) noexcept {
  if constexpr (std::is_pointer_v<T>) {
    return static_cast<std::uint32_t>(reinterpret_cast<std::uintptr_t>(v));
  } else {
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(v));
  }
}

/// The futex word overlaying the waited atomic (its low half for
/// 8-byte words). Hand-off mutations normally change the low half —
/// flags toggle 0/1, tickets increment, pointers go null -> non-null
/// — but a published pointer *can* alias the snapshot's low 32 bits
/// (e.g. a 4 GiB-aligned queue node), so 8-byte parks are bounded by
/// kWideWordParkNanos rather than trusting the kernel's compare.
template <typename T>
inline std::atomic<std::uint32_t>* futex_word(std::atomic<T>& w) noexcept {
  static_assert(std::atomic<T>::is_always_lock_free);
  static_assert(sizeof(std::atomic<T>) == sizeof(T));
  static_assert(sizeof(T) == 4 || sizeof(T) == 8);
  if constexpr (sizeof(T) == 8) {
    static_assert(std::endian::native == std::endian::little,
                  "futex word overlay assumes little-endian layout");
  }
  return reinterpret_cast<std::atomic<std::uint32_t>*>(&w);
}

// ---------------------------------------------------------------------
// Per-slot parking ring for exact-value waits (the ticket shape).
//
// Ticket locks wait globally: every waiter polls the one now-serving
// word, so when the parked tiers sleep there, every release must wake
// *every* sleeper — N-1 of which immediately re-park (the classic
// thundering herd of parked ticket locks; each hand-off paid N wake +
// N-1 re-park syscalls). But a ticket waiter knows the exact value it
// is waiting for, so its sleep can be keyed on (word address, awaited
// value) instead of the word alone: waiters hash into a small global
// ring of generation-counted futex words, and a release wakes only the
// slot of the ticket it just served — the front waiter (plus rare hash
// collisions, which re-check and re-park harmlessly).
// ---------------------------------------------------------------------

/// Slots in the process-wide ticket-parking ring. Collisions are
/// correctness-neutral (a woken collider re-checks its predicate and
/// re-parks), so the ring only needs to be large enough to make them
/// rare across the handful of hot parked ticket locks a process runs.
inline constexpr std::size_t kTicketRingSlots = 256;

/// The ring: generation counters bumped by every publish that targets
/// the slot. Sleepers snapshot the generation before re-checking their
/// predicate; the kernel's compare against that snapshot closes the
/// publish-vs-sleep race exactly as it does for direct word parks.
inline std::atomic<std::uint32_t> g_ticket_ring[kTicketRingSlots];

/// The ring slot for value `v` awaited on the word at `addr`.
template <typename T>
inline std::atomic<std::uint32_t>& ticket_slot(const void* addr,
                                               T v) noexcept {
  auto a = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  const auto mix = static_cast<std::uintptr_t>(
      static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ULL);
  const std::uintptr_t h = (a ^ (a >> 7)) + mix;
  return g_ticket_ring[static_cast<std::size_t>(h ^ (h >> 11)) &
                       (kTicketRingSlots - 1)];
}

/// One parking round on the slot keyed by (w, expected) instead of on
/// w itself. The generation snapshot plays the role the waited word's
/// value plays in park_round: a publisher bumps the slot's generation
/// (a seq_cst RMW — also the Dekker fence against the parked census)
/// strictly after storing the serving word, so a sleeper either reads
/// the bumped generation (and its predicate re-check then sees the
/// store) or is refused by the kernel's compare. Sleeps are bounded
/// anyway: a 2^32-generation wrap during one descheduled window is the
/// same theoretical hazard as the wide-word alias, and the same bound
/// turns it into a re-check.
template <typename T, typename Pred>
inline void park_round_slotted(std::atomic<T>& w, T expected,
                               const Pred& done) noexcept {
  auto& slot = ticket_slot(&w, expected);
  // mo: acquire generation snapshot — taken before the predicate
  // check so a publish between them bumps past `gen` and the kernel
  // refuses the sleep.
  const std::uint32_t gen = slot.load(std::memory_order_acquire);
  if (done(w.load(std::memory_order_acquire))) return;
  auto& gov = ContentionGovernor::instance();
  gov.begin_park(&slot);
  // mo: seq_cst fence — Dekker handshake with the publisher's seq_cst
  // generation bump + census read: either it sees our park
  // registration and wakes, or we re-read its published value here.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // mo: relaxed re-check — the fence above already orders it.
  if (!done(w.load(std::memory_order_relaxed))) {
    // mo: relaxed — diagnostic sleep tally (ParkDiag).
    gov.diag().park_sleeps.fetch_add(1, std::memory_order_relaxed);
    HEMLOCK_TM_PARK();
    futex_wait_for(&slot, gen, kWideWordParkNanos);
    // mo: relaxed — diagnostic wakeup tally (ParkDiag).
    gov.diag().park_wakeups.fetch_add(1, std::memory_order_relaxed);
  } else {
    // The re-check under the census found the condition already
    // satisfied: the return-to-baseline window the ROADMAP item 6
    // convoy lives in. Leave evidence.
    // mo: relaxed — diagnostic retry tally (ParkDiag).
    gov.diag().baseline_retries.fetch_add(1, std::memory_order_relaxed);
  }
  gov.end_park(&slot);
}

/// One parking round: announce the parked intent, re-check the word
/// behind a seq_cst fence (the Dekker handshake with publish()'s
/// store-fence-read of the parked census), then sleep. The kernel's
/// own compare of the futex word against `seen` closes the remaining
/// window; spurious returns are absorbed by the caller's loop.
template <typename T, typename Pred>
inline void park_round(std::atomic<T>& w, const Pred& done) noexcept {
  // mo: acquire snapshot — pairs with the publisher's release store.
  const T seen = w.load(std::memory_order_acquire);
  if (done(seen)) return;
  auto& gov = ContentionGovernor::instance();
  gov.begin_park(&w);
  // mo: seq_cst fence — Dekker handshake with publish_and_wake's
  // store-fence-census sequence; see that function's comment.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // mo: relaxed re-check — ordered by the fence above.
  const T again = w.load(std::memory_order_relaxed);
  if (again == seen) {
    // mo: relaxed — diagnostic sleep tally (ParkDiag).
    gov.diag().park_sleeps.fetch_add(1, std::memory_order_relaxed);
    HEMLOCK_TM_PARK();
    if constexpr (sizeof(T) == 8) {
      // Aliasing hazard (an MCS successor node at a 4 GiB-aligned
      // address, a ticket 2^32 hand-offs later): bounded sleep, see
      // kWideWordParkNanos.
      futex_wait_for(futex_word(w), low_word(seen), kWideWordParkNanos);
    } else {
      futex_wait(futex_word(w), low_word(seen));
    }
    // mo: relaxed — diagnostic wakeup tally (ParkDiag).
    gov.diag().park_wakeups.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Re-check under the census aborted the sleep (ROADMAP item 6's
    // return-to-baseline window).
    // mo: relaxed — diagnostic retry tally (ParkDiag).
    gov.diag().baseline_retries.fetch_add(1, std::memory_order_relaxed);
  }
  gov.end_park(&w);
}

/// The escalating wait's engine: a free doorstep spin, then rounds
/// whose behavior `tier_of_round(round)` selects, with `park_once`
/// supplying the park round (direct-word park_round, or the ticket
/// ring's slotted variant). Returns the first value satisfying
/// `done`. Escalated rounds are registered with the governor's waiter
/// census (that census *is* the oversubscription signal classify()
/// consumes). Callers that already performed their own doorstep
/// (GovernedGrantWaiting's CTR CAS loop) pass doorstep_spins = 0 so
/// escalation latency stays one budget.
template <typename T, typename Done, typename TierFn, typename ParkFn>
inline T wait_escalating_with(std::atomic<T>& w, const Done& done,
                              const TierFn& tier_of_round,
                              const ParkFn& park_once,
                              std::uint32_t doorstep_spins) noexcept {
  // mo: every poll below is acquire, pairing with the hand-off
  // store's release so the returned observation carries the
  // publisher's critical section.
  for (std::uint32_t i = 0; i < doorstep_spins; ++i) {
    const T v = w.load(std::memory_order_acquire);  // mo: acquire poll
    if (done(v)) return v;
    cpu_relax();
    HEMLOCK_VERIFY_YIELD("queue:doorstep");
  }
  auto& gov = ContentionGovernor::instance();
  gov.begin_wait();
  // Contended tally for the queue-lock wait shapes. The Grant policies
  // count at wait entry (wait_and_consume is only ever called behind a
  // real predecessor); here the done-predicate can be true on arrival
  // (a ticket whose turn it already is), so "contended" means the wait
  // outlasted the free doorstep spin and entered the escalated rounds.
  HEMLOCK_TM_CONTENDED();
  // Tier-transition tracking: the doorstep counts as kSpin, so a wait
  // whose first escalated round already yields/parks records one
  // transition, and a governed wait flapping between tiers records
  // each flap (that instability is exactly what the diagnostic exists
  // to expose).
  WaitTier prev_tier = WaitTier::kSpin;
  for (std::uint64_t round = 0;; ++round) {
    const WaitTier round_tier = tier_of_round(round);
    if (round_tier != prev_tier) {
      prev_tier = round_tier;
      // mo: relaxed — diagnostic escalation tally (ParkDiag).
      gov.diag().escalations.fetch_add(1, std::memory_order_relaxed);
      HEMLOCK_TM_ESCALATE();
    }
    switch (round_tier) {
      case WaitTier::kSpin:
        for (std::uint32_t i = 0; i < kChunkSpins; ++i) {
          // mo: acquire poll (see loop-head comment).
          const T v = w.load(std::memory_order_acquire);
          if (done(v)) {
            gov.end_wait();
            return v;
          }
          cpu_relax();
          HEMLOCK_VERIFY_YIELD("queue:spin");
        }
        break;
      case WaitTier::kYield: {
        // mo: acquire poll (see loop-head comment).
        const T v = w.load(std::memory_order_acquire);
        if (done(v)) {
          gov.end_wait();
          return v;
        }
        cpu_yield();
        HEMLOCK_VERIFY_YIELD("queue:yield");
        break;
      }
      case WaitTier::kPark:
        park_once();
        break;
    }
    // mo: acquire poll (see loop-head comment).
    const T v = w.load(std::memory_order_acquire);
    if (done(v)) {
      gov.end_wait();
      return v;
    }
  }
}

/// The escalating wait shared by every tier, parking directly on the
/// waited word.
template <typename T, typename Done, typename TierFn>
inline T wait_escalating(std::atomic<T>& w, const Done& done,
                         const TierFn& tier_of_round,
                         std::uint32_t doorstep_spins = kDoorstepSpins) noexcept {
  return wait_escalating_with(
      w, done, tier_of_round, [&] { park_round(w, done); }, doorstep_spins);
}

/// Hand-off store for the parking tiers: release the value, then wake
/// any sleepers. The seq_cst fence pairs with park_round()'s fence so
/// that either the publisher sees the parked census and wakes, or the
/// parker re-reads the published value and never sleeps — the wake
/// syscall is skipped whenever nobody is parked on this word's census
/// bucket (per-lock, not process-global: an unrelated lock's sleepers
/// no longer tax this lock's hand-offs).
template <typename T>
inline void publish_and_wake(std::atomic<T>& w, T value) noexcept {
  // mo: release hand-off store — waiters' acquire polls pair here.
  w.store(value, std::memory_order_release);
  // The value is visible but the wake has not happened: a parked
  // waiter resumed here must cope with seeing the store early.
  HEMLOCK_VERIFY_YIELD("queue:published");
  // mo: seq_cst fence — Dekker with park_round's fence: either we see
  // the parked census and wake, or the parker re-reads our store and
  // never sleeps.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  auto& gov = ContentionGovernor::instance();
  if (gov.parked(&w) != 0) {
    // mo: relaxed — diagnostic syscall tally (ParkDiag).
    gov.diag().wake_syscalls.fetch_add(1, std::memory_order_relaxed);
    HEMLOCK_TM_WAKE();
    futex_wake_all(futex_word(w));
  } else {
    // mo: relaxed — diagnostic gate-skip tally (ParkDiag).
    gov.diag().wake_gate_skips.fetch_add(1, std::memory_order_relaxed);
  }
}

/// wait_escalating for an exact awaited value, with park rounds routed
/// through the ticket ring (see park_round_slotted) so a release wakes
/// only the waiter it serves.
template <typename T, typename TierFn>
inline void wait_escalating_slotted(std::atomic<T>& w, T expected,
                                    const TierFn& tier_of_round) noexcept {
  const auto done = [expected](T v) { return v == expected; };
  (void)wait_escalating_with(
      w, done, tier_of_round,
      [&] { park_round_slotted(w, expected, done); }, kDoorstepSpins);
}

/// Hand-off store for slotted (exact-value) waiters: release the
/// value, bump its slot's generation (the RMW is the Dekker fence),
/// then wake that slot only — the front waiter, not the herd. Waiters
/// of *other* tickets sleep on their own slots and are not disturbed.
template <typename T>
inline void publish_and_wake_slotted(std::atomic<T>& w, T value) noexcept {
  // mo: release hand-off store — waiters' acquire polls pair here.
  w.store(value, std::memory_order_release);
  // Serving word published, slot generation not yet bumped — the
  // window the slotted Dekker handshake exists to close.
  HEMLOCK_VERIFY_YIELD("queue:published");
  auto& slot = ticket_slot(&w, value);
  // mo: seq_cst generation bump — the RMW doubles as the Dekker fence
  // against park_round_slotted's fence + census registration.
  slot.fetch_add(1, std::memory_order_seq_cst);
  auto& gov = ContentionGovernor::instance();
  if (gov.parked(&slot) != 0) {
    // mo: relaxed — diagnostic syscall tally (ParkDiag).
    gov.diag().wake_syscalls.fetch_add(1, std::memory_order_relaxed);
    HEMLOCK_TM_WAKE();
    futex_wake_all(&slot);
  } else {
    // mo: relaxed — diagnostic gate-skip tally (ParkDiag).
    gov.diag().wake_gate_skips.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace queue_wait

/// Pure busy-waiting — the paper's §5.1 baseline configuration and the
/// default tier everywhere. Identical code to the pre-subsystem locks;
/// deliberately exempt from the governor census so the measured
/// configurations carry zero added cost.
struct QueueSpinWaiting {
  static constexpr const char* name = "spin";
  static constexpr bool oversub_safe = false;
  /// Waiters never sleep — publishers need no wake consideration.
  static constexpr bool may_park = false;

  template <typename T>
  static void wait_until(std::atomic<T>& w, T expected) noexcept {
    // mo: acquire poll pairs with publish's release hand-off.
    while (w.load(std::memory_order_acquire) != expected) {
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("queue:spin");
    }
  }

  template <typename T>
  static T wait_while(std::atomic<T>& w, T unwanted) noexcept {
    T v;
    // mo: acquire poll pairs with publish's release hand-off.
    while ((v = w.load(std::memory_order_acquire)) == unwanted) {
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("queue:spin");
    }
    return v;
  }

  template <typename T>
  static void publish(std::atomic<T>& w, T value) noexcept {
    // mo: release hand-off — waiters' acquire polls pair here; no
    // sleepers under this tier, so no wake or fence.
    w.store(value, std::memory_order_release);
  }
};

/// Fixed yield tier: doorstep spin, then one sched_yield per poll.
/// Survives oversubscription (waiters surrender their timeslice to
/// whoever holds the lock) without ever paying a futex syscall.
struct QueueYieldWaiting {
  static constexpr const char* name = "yield";
  static constexpr bool oversub_safe = true;
  static constexpr bool may_park = false;

  template <typename T>
  static void wait_until(std::atomic<T>& w, T expected) noexcept {
    (void)queue_wait::wait_escalating(
        w, [expected](T v) { return v == expected; },
        [](std::uint64_t) { return WaitTier::kYield; });
  }

  template <typename T>
  static T wait_while(std::atomic<T>& w, T unwanted) noexcept {
    return queue_wait::wait_escalating(
        w, [unwanted](T v) { return v != unwanted; },
        [](std::uint64_t) { return WaitTier::kYield; });
  }

  template <typename T>
  static void publish(std::atomic<T>& w, T value) noexcept {
    // mo: release hand-off — waiters' acquire polls pair here; no
    // sleepers under this tier, so no wake or fence.
    w.store(value, std::memory_order_release);
  }
};

/// Fixed spin-then-park tier: bounded doorstep spin, a few yield
/// rounds, then futex park — Appendix C's "wait politely ... blocking
/// in the operating system, via constructs such as WaitOnAddress",
/// applied to the queue-lock baselines. The wake is folded into
/// publish(); uncontended-path stores skip the syscall via the
/// governor's parked census. This tier diverges from the paper's
/// no-backoff guidance (§2.1) by design: it trades a wake syscall per
/// contended hand-off for bounded latency when threads outnumber cores.
struct SpinThenParkWaiting {
  static constexpr const char* name = "park";
  static constexpr bool oversub_safe = true;
  static constexpr bool may_park = true;

  template <typename T>
  static void wait_until(std::atomic<T>& w, T expected) noexcept {
    (void)queue_wait::wait_escalating(
        w, [expected](T v) { return v == expected; }, tier_of_round);
  }

  template <typename T>
  static T wait_while(std::atomic<T>& w, T unwanted) noexcept {
    return queue_wait::wait_escalating(
        w, [unwanted](T v) { return v != unwanted; }, tier_of_round);
  }

  template <typename T>
  static void publish(std::atomic<T>& w, T value) noexcept {
    queue_wait::publish_and_wake(w, value);
  }

  /// Exact-value wait on a globally-shared word (ticket shape): park
  /// rounds sleep on the (word, value) ring slot, so a hand-off wakes
  /// only the waiter it serves instead of the whole herd.
  template <typename T>
  static void wait_ticket(std::atomic<T>& w, T expected) noexcept {
    queue_wait::wait_escalating_slotted(w, expected, tier_of_round);
  }

  /// The matching hand-off store: wake the published value's slot only.
  template <typename T>
  static void publish_ticket(std::atomic<T>& w, T value) noexcept {
    queue_wait::publish_and_wake_slotted(w, value);
  }

 private:
  static WaitTier tier_of_round(std::uint64_t round) noexcept {
    return round < queue_wait::kYieldsBeforePark ? WaitTier::kYield
                                                 : WaitTier::kPark;
  }
};

/// Adaptive tier: consults the ContentionGovernor every escalation
/// round, so the same lock spins on dedicated cores, yields under mild
/// oversubscription and parks under heavy oversubscription — Dhoked &
/// Mittal's observation that the waiting strategy should follow
/// *observed* contention rather than a compile-time choice. This is
/// what the interposition shim hosts for bare queue-lock names when
/// HEMLOCK_WAIT is unset.
struct GovernedWaiting {
  static constexpr const char* name = "adaptive";
  static constexpr bool oversub_safe = true;
  static constexpr bool may_park = true;

  template <typename T>
  static void wait_until(std::atomic<T>& w, T expected) noexcept {
    (void)queue_wait::wait_escalating(
        w, [expected](T v) { return v == expected; }, tier_of_round);
  }

  template <typename T>
  static T wait_while(std::atomic<T>& w, T unwanted) noexcept {
    return queue_wait::wait_escalating(
        w, [unwanted](T v) { return v != unwanted; }, tier_of_round);
  }

  template <typename T>
  static void publish(std::atomic<T>& w, T value) noexcept {
    // Governed waiters may be parked; same gated wake as the park tier.
    queue_wait::publish_and_wake(w, value);
  }

  /// Slotted ticket waiting, as in SpinThenParkWaiting (the governed
  /// tier parks under heavy oversubscription, so it herds identically).
  template <typename T>
  static void wait_ticket(std::atomic<T>& w, T expected) noexcept {
    queue_wait::wait_escalating_slotted(w, expected, tier_of_round);
  }

  template <typename T>
  static void publish_ticket(std::atomic<T>& w, T value) noexcept {
    queue_wait::publish_and_wake_slotted(w, value);
  }

 private:
  static WaitTier tier_of_round(std::uint64_t) noexcept {
    return ContentionGovernor::instance().tier();
  }
};

/// Governed Grant policy — the Hemlock family's member of the adaptive
/// tier, so "adaptive" means the same thing across every family: a
/// paper-faithful doorstep, then the ContentionGovernor's spin/yield/
/// park escalation. The doorstep is CTR CAS-polling (Listing 2 line
/// 9): hand-offs that complete inside it — the dedicated-core common
/// case — pay no S→M upgrade and never consult the governor. The shim
/// hosts plain "hemlock" on this policy when HEMLOCK_WAIT is unset,
/// so the default interposed lock cannot convoy when the process
/// oversubscribes the host.
struct GovernedGrantWaiting {
  static constexpr const char* name = "adaptive";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    queue_wait::publish_and_wake(g, value);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    HEMLOCK_TM_CONTENDED();
    for (std::uint32_t i = 0; i < queue_wait::kDoorstepSpins; ++i) {
      GrantWord e = expect;
      // mo: acq_rel consume / relaxed failed poll — same CTR pairing
      // as CtrCasWaiting.
      if (g.compare_exchange_weak(e, kGrantEmpty, std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
        wake_after_external_clear(g);
        return;
      }
      cpu_relax();
      HEMLOCK_VERIFY_YIELD("grant:ctr-poll");
    }
    (void)queue_wait::wait_escalating(
        g, [expect](GrantWord v) { return v == expect; }, tier_of_round,
        /*doorstep_spins=*/0);  // the CAS loop above was the doorstep
    GrantWord e = expect;
    // mo: acq_rel consume / relaxed failure — the escalating wait
    // returned only after observing `expect`, and only we may clear it.
    const bool consumed = g.compare_exchange_strong(
        e, kGrantEmpty, std::memory_order_acq_rel, std::memory_order_relaxed);
    (void)consumed;  // cannot fail: we are the unique consumer of `expect`
    wake_after_external_clear(g);
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    (void)queue_wait::wait_escalating(
        g, [](GrantWord v) { return v == kGrantEmpty; }, tier_of_round);
  }

  /// Wake a publisher that may be parked in its drain awaiting our
  /// clear — gated on the parked census (the same Dekker handshake as
  /// publish_and_wake) so hand-offs with no sleeper pay no syscall.
  static void wake_after_external_clear(std::atomic<GrantWord>& g) noexcept {
    // mo: seq_cst fence — Dekker between our Grant clear and the
    // census read, against the drain side's park registration + fence.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    auto& gov = ContentionGovernor::instance();
    if (gov.parked(&g) != 0) {
      // mo: relaxed — diagnostic syscall tally (ParkDiag).
      gov.diag().wake_syscalls.fetch_add(1, std::memory_order_relaxed);
      HEMLOCK_TM_WAKE();
      futex_wake_all(queue_wait::futex_word(g));
    } else {
      // mo: relaxed — diagnostic gate-skip tally (ParkDiag).
      gov.diag().wake_gate_skips.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  static WaitTier tier_of_round(std::uint64_t) noexcept {
    return ContentionGovernor::instance().tier();
  }
};

}  // namespace hemlock
