// waiting.hpp — busy-wait policies for the Grant mailbox protocol.
//
// The paper's Coherence Traffic Reduction optimization (§2.1) is a
// *waiting policy*: instead of polling a Grant word with plain loads
// (which pulls the line into S-state and forces an S→M upgrade when
// the waiter finally clears it), the waiter polls with an atomic
// read-modify-write — CAS (Listing 2 line 9) or fetch-and-add of 0
// ("read-with-intent-to-write") — so the line is already in M-state
// in the waiter's cache at the moment of hand-over. The unlock-side
// wait (Listing 2 line 15) uses FAA(0) because the Grant word "will
// be written by that same thread in subsequent unlock operations".
//
// Each policy provides:
//   wait_and_consume(g, expect): block until g == expect, then clear
//       g to kGrantEmpty (the successor's acknowledgement, §2), with
//       acquire semantics on the observation and release on the clear.
//   wait_until_empty(g): block until g == kGrantEmpty (the unlock-side
//       drain), with acquire semantics.
//
// "Because of the simple communication pattern, back-off in the
// busy-waiting loop is not useful" (§2.1) — none of the policies
// back off; AdaptiveWaiting only escalates to sched_yield for
// oversubscribed *test* environments, never by default in benches.
// Each policy additionally provides:
//   publish(g, value): the unlock-side handover store. Plain release
//       store for the spinning policies; the parking policy adds the
//       futex wake that its sleepers depend on.
#pragma once

#include <atomic>
#include <bit>
#include <type_traits>

#include "runtime/futex.hpp"
#include "runtime/pause.hpp"
#include "runtime/thread_rec.hpp"

namespace hemlock {

/// Listing 1 waiting: plain-load polling, then a store to clear.
/// This is "Hemlock-" in the paper's figures (no CTR).
struct PoliteWaiting {
  static constexpr const char* name = "load";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    g.store(value, std::memory_order_release);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    while (g.load(std::memory_order_acquire) != expect) {
      cpu_relax();
    }
    // Acknowledge receipt: restore the mailbox to empty so the
    // predecessor may reuse it (the single store the paper counts as
    // Hemlock's only extra critical-path burden vs MCS/CLH, §2).
    g.store(kGrantEmpty, std::memory_order_release);
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    while (g.load(std::memory_order_acquire) != kGrantEmpty) {
      cpu_relax();
    }
  }
};

/// Listing 2 waiting: CTR via CAS-polling. Each failed CAS still
/// acquires the line in M-state, so the eventual successful consume
/// needs no S→M upgrade transaction on the critical hand-over path.
struct CtrCasWaiting {
  static constexpr const char* name = "ctr-cas";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    g.store(value, std::memory_order_release);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    for (;;) {
      GrantWord e = expect;
      if (g.compare_exchange_weak(e, kGrantEmpty, std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
        return;
      }
      cpu_relax();
    }
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    // FAA(0) as read-with-intent-to-write (paper Listing 2 line 15):
    // we expect to write this word in our own subsequent unlocks.
    while (g.fetch_add(0, std::memory_order_acquire) != kGrantEmpty) {
      cpu_relax();
    }
  }
};

/// §2.1's alternative CTR encoding: poll with fetch-and-add of 0
/// (LOCK:XADD on x86) and clear with a normal store once the expected
/// address appears — "we simply replace the load instruction in the
/// traditional busy-wait loop with fetch-and-add of 0".
struct CtrFaaWaiting {
  static constexpr const char* name = "ctr-faa";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    g.store(value, std::memory_order_release);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    while (g.fetch_add(0, std::memory_order_acquire) != expect) {
      cpu_relax();
    }
    g.store(kGrantEmpty, std::memory_order_release);
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    while (g.fetch_add(0, std::memory_order_acquire) != kGrantEmpty) {
      cpu_relax();
    }
  }
};

/// Spin-then-park waiting via futex — the paper's Appendix C opening:
/// "threads in the Hemlock slow-path could optionally be made to wait
/// politely, voluntarily surrendering their CPU and blocking in the
/// operating system, via constructs such as WaitOnAddress, where a
/// waiting thread could use WaitOnAddress to monitor its
/// predecessor's Grant field." futex(2) is Linux's WaitOnAddress.
///
/// Mechanics: waiters spin briefly (the usual spin-then-park policy
/// the paper describes for user-mode locks), then sleep on the low
/// 32 bits of the Grant word. Every mutation of a Grant word under
/// this policy goes through publish()/the consume-clear below, which
/// issue futex_wake_all — so sleeps can never be lost, even when two
/// lock addresses alias in their low halves (the wake is
/// unconditional; sleepers re-check their full-width predicate).
struct FutexWaiting {
  static constexpr const char* name = "futex";
  static constexpr std::uint32_t kSpinsBeforePark = 512;

  static_assert(std::endian::native == std::endian::little,
                "futex word overlay assumes little-endian layout");

  static std::atomic<std::uint32_t>* futex_word(
      std::atomic<GrantWord>& g) noexcept {
    // Low 32 bits of the grant word (little-endian: lowest address).
    return reinterpret_cast<std::atomic<std::uint32_t>*>(&g);
  }

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    g.store(value, std::memory_order_release);
    futex_wake_all(futex_word(g));
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    for (;;) {
      for (std::uint32_t i = 0; i < kSpinsBeforePark; ++i) {
        GrantWord e = expect;
        if (g.compare_exchange_weak(e, kGrantEmpty,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
          // Acknowledge; the publisher may be parked in its drain.
          futex_wake_all(futex_word(g));
          return;
        }
        cpu_relax();
      }
      const GrantWord seen = g.load(std::memory_order_acquire);
      if (seen != expect) {
        futex_wait(futex_word(g), static_cast<std::uint32_t>(seen));
      }
    }
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    for (;;) {
      for (std::uint32_t i = 0; i < kSpinsBeforePark; ++i) {
        if (g.load(std::memory_order_acquire) == kGrantEmpty) return;
        cpu_relax();
      }
      const GrantWord seen = g.load(std::memory_order_acquire);
      if (seen == kGrantEmpty) return;
      futex_wait(futex_word(g), static_cast<std::uint32_t>(seen));
    }
  }
};

/// Waiting wrapper used by the Hemlock lock() paths: when the §5.4
/// profiler is off it defers to the configured policy untouched; when
/// profiling, it uses a peek-then-consume protocol that makes the
/// multi-waiting gauge *exact*. The waiter deregisters strictly
/// before its (then-guaranteed) consume: only this waiter can clear
/// the observed value (Lemma 9), and no next-epoch waiter can
/// register on the same Grant word until the owner's drain — which
/// needs our consume — completes. Hence the gauge can never count a
/// finished waiter alongside a fresh one.
template <typename Waiting>
inline void profiled_wait_and_consume(std::atomic<GrantWord>& g,
                                      GrantWord expect,
                                      ThreadRec& pred) noexcept {
  if (!LockProfiler::enabled()) {
    Waiting::wait_and_consume(g, expect);
    return;
  }
  LockProfiler::on_wait_begin(pred);
  while (g.load(std::memory_order_acquire) != expect) {
    cpu_relax();
  }
  LockProfiler::on_wait_end(pred);
  GrantWord e = expect;
  const bool consumed = g.compare_exchange_strong(
      e, kGrantEmpty, std::memory_order_acq_rel, std::memory_order_relaxed);
  (void)consumed;  // cannot fail: we are the unique consumer of `expect`
  if constexpr (std::is_same_v<Waiting, FutexWaiting>) {
    // The publisher may be parked in its drain; the plain CAS above
    // does not wake it.
    futex_wake_all(FutexWaiting::futex_word(g));
  }
}

/// Load-polling with spin-then-yield escalation. Not part of the
/// paper's measured configurations; used by the test suite so that
/// schedules with many more threads than CPUs cannot livelock the CI
/// machine. Semantically identical to PoliteWaiting.
struct AdaptiveWaiting {
  static constexpr const char* name = "adaptive";

  static void publish(std::atomic<GrantWord>& g, GrantWord value) noexcept {
    g.store(value, std::memory_order_release);
  }

  static void wait_and_consume(std::atomic<GrantWord>& g,
                               GrantWord expect) noexcept {
    SpinWait w;
    while (g.load(std::memory_order_acquire) != expect) {
      w.wait();
    }
    g.store(kGrantEmpty, std::memory_order_release);
  }

  static void wait_until_empty(std::atomic<GrantWord>& g) noexcept {
    SpinWait w;
    while (g.load(std::memory_order_acquire) != kGrantEmpty) {
      w.wait();
    }
  }
};

}  // namespace hemlock
