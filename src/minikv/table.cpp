#include "minikv/table.hpp"

#include <algorithm>
#include <cassert>

namespace hemlock::minikv {

bool Block::get(const Slice& key, std::string* value) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& kv, const Slice& k) {
        return Slice(kv.first).compare(k) < 0;
      });
  if (it == entries.end() || Slice(it->first) != key) return false;
  *value = it->second;
  return true;
}

std::size_t Block::charge() const {
  std::size_t bytes = sizeof(Block);
  for (const auto& [k, v] : entries) {
    bytes += k.size() + v.size() + 2 * sizeof(std::string);
  }
  return bytes;
}

ImmutableTable::ImmutableTable(
    std::uint64_t id, std::vector<std::pair<std::string, std::string>> sorted,
    std::size_t block_fanout)
    : id_(id), entries_(sorted.size()) {
  assert(block_fanout > 0);
  assert(std::is_sorted(sorted.begin(), sorted.end(),
                        [](const auto& a, const auto& b) {
                          return Slice(a.first).compare(Slice(b.first)) < 0;
                        }));
  if (!sorted.empty()) {
    smallest_ = sorted.front().first;
    largest_ = sorted.back().first;
  }
  for (std::size_t i = 0; i < sorted.size(); i += block_fanout) {
    const std::size_t end = std::min(i + block_fanout, sorted.size());
    block_first_keys_.push_back(sorted[i].first);
    blocks_.emplace_back(std::make_move_iterator(sorted.begin() + i),
                         std::make_move_iterator(sorted.begin() + end));
  }
}

std::int64_t ImmutableTable::block_for(const Slice& key) const {
  if (blocks_.empty()) return -1;
  // Last block whose first key is <= key.
  const auto it = std::upper_bound(
      block_first_keys_.begin(), block_first_keys_.end(), key,
      [](const Slice& k, const std::string& first) {
        return k.compare(Slice(first)) < 0;
      });
  if (it == block_first_keys_.begin()) return -1;  // key below the table
  return static_cast<std::int64_t>(
      std::distance(block_first_keys_.begin(), it) - 1);
}

std::shared_ptr<Block> ImmutableTable::read_block(std::size_t idx) const {
  assert(idx < blocks_.size());
  auto block = std::make_shared<Block>();
  block->entries = blocks_[idx];  // deliberate copy: the "decode" cost
  return block;
}

}  // namespace hemlock::minikv
