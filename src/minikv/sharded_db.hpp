// sharded_db.hpp — the sharded MiniKV serving layer: N hash-
// partitioned shards, per-shard runtime-chosen locks, and epoch-
// protected lock-free reads.
//
// DB<Lock> (db.hpp) reproduces LevelDB's single central mutex — the
// paper's Figure-8 bottleneck. ShardedDB is what a *serving system*
// built on the same storage shape looks like: the keyspace is hash-
// partitioned across shards, each shard is a miniature LevelDB
// (memtable + immutable table version + shared block cache) guarded
// by its own lock, and the default Get() path holds NO lock at all:
//
//   * Writers (put/del/flush/compact) hold the shard lock. They
//     replace the shard's memtable/version by PUBLISHING new pointers
//     (release stores) and retire the old structures to an epoch
//     domain (src/reclaim/epoch.hpp) instead of freeing them.
//   * Readers bracket their traversal with an EpochGuard and load the
//     published pointers (acquire). The publication order is load-
//     bearing: writers store the new version BEFORE the new memtable,
//     readers load the memtable BEFORE the version — so a reader that
//     observes the post-flush (empty) memtable is guaranteed to
//     observe the version holding the flushed table, and no key ever
//     vanishes mid-flush.
//   * A locked fallback (ShardedDbOptions::epoch_reads = false) takes
//     the shard lock in shared mode instead — the direct comparison
//     point for "when does QSBR beat a shared-mode lock" (README).
//
// Deletes exist at this layer (the central DB has none) via a 1-byte
// value tag: 'V' + payload for live values, 'T' for tombstones. The
// tag never touches the memtable/table formats; tombstones are elided
// during a shard's full-merge compaction, which is correct precisely
// because that compaction folds EVERY table of the shard into one
// (there is no older source left for a tombstone to shadow).
//
// Cross-shard Scan() enters/exits the epoch once per shard, collects
// each shard's bounded prefix with the same merge_scan the central DB
// uses, then merges — shards partition the keyspace, so the global
// result is a sort of disjoint per-shard results.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/any_lock.hpp"
#include "locks/lockable.hpp"
#include "minikv/cache.hpp"
#include "minikv/memtable.hpp"
#include "minikv/scan.hpp"
#include "minikv/slice.hpp"
#include "minikv/status.hpp"
#include "minikv/table.hpp"
#include "reclaim/epoch.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"

namespace hemlock::minikv {

/// Tuning knobs for the sharded serving layer.
struct ShardedDbOptions {
  /// Number of hash partitions (each with its own lock + memtable +
  /// table version).
  std::size_t num_shards = 16;
  /// Per-shard memtable budget before an inline flush.
  std::size_t write_buffer_bytes = 1 << 20;  // 1 MiB
  /// Block cache capacity, shared across all shards (table ids are
  /// DB-unique, so one cache serves every shard).
  std::size_t block_cache_bytes = 256 << 20;  // 256 MiB
  /// Entries per table block.
  std::size_t block_fanout = ImmutableTable::kDefaultBlockFanout;
  /// Per-shard full-merge compaction trigger (table count).
  std::size_t compaction_trigger = 8;
  /// true: Get()/Scan() run lock-free under epoch protection (the
  /// point of this layer). false: they take the shard lock in shared
  /// mode instead — the comparison baseline.
  bool epoch_reads = true;
  /// Reclamation work bound per write that triggered a flush.
  std::size_t drain_batch = reclaim::EpochDomain::kDefaultDrainBatch;
};

/// Operation counters + the reclamation domain's view.
struct ShardedDbStats {
  std::uint64_t epoch_gets = 0;   ///< lock-free gets served
  std::uint64_t locked_gets = 0;  ///< shared-mode fallback gets
  std::uint64_t scans = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  reclaim::DomainStats reclaim;
};

/// Sharded MiniKV database. ShardLock is the per-shard lock type;
/// the default AnyLock selects its algorithm at run time by factory
/// name: ShardedDB<> db(opts, "hemlock-futex");
template <BasicLockable ShardLock = AnyLock>
class ShardedDB {
 public:
  /// Default-constructed shard locks; reclamation through `domain`
  /// (nullptr = the process-global EpochDomain).
  explicit ShardedDB(ShardedDbOptions options = ShardedDbOptions{},
                     reclaim::EpochDomain* domain = nullptr)
      : options_(options),
        domain_(domain != nullptr ? domain : &reclaim::EpochDomain::global()),
        cache_(options.block_cache_bytes) {
    shards_.reserve(options_.num_shards);
    for (std::size_t i = 0; i < options_.num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// As above, constructing every shard's lock from `lock_args` —
  /// how AnyLock shards name their algorithm:
  /// ShardedDB<> db(opts, nullptr, "mcs"); (args are reused per
  /// shard, hence taken by const reference rather than forwarded; the
  /// domain comes before the pack so the pack stays deducible).
  template <typename... LockArgs>
    requires(sizeof...(LockArgs) > 0)
  ShardedDB(ShardedDbOptions options, reclaim::EpochDomain* domain,
            const LockArgs&... lock_args)
      : options_(options),
        domain_(domain != nullptr ? domain : &reclaim::EpochDomain::global()),
        cache_(options.block_cache_bytes) {
    shards_.reserve(options_.num_shards);
    for (std::size_t i = 0; i < options_.num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(lock_args...));
    }
  }

  /// Named/derived shard locks with the process-global domain:
  /// ShardedDB<> db(opts, "mcs"); (A first argument of EpochDomain*
  /// selects the overload above instead — exact non-template match.)
  template <typename... LockArgs>
    requires(sizeof...(LockArgs) > 0)
  explicit ShardedDB(ShardedDbOptions options, const LockArgs&... lock_args)
      : ShardedDB(options, static_cast<reclaim::EpochDomain*>(nullptr),
                  lock_args...) {}

  ShardedDB(const ShardedDB&) = delete;
  ShardedDB& operator=(const ShardedDB&) = delete;

  /// Requires external quiescence (no concurrent operations), like
  /// every destructor in the library. Frees the live structures and
  /// makes a bounded effort to drain this DB's retired garbage; any
  /// remainder (e.g. a stalled reader elsewhere in a shared domain)
  /// stays safely parked in the domain and is freed by later drains.
  ~ShardedDB() {
    for (auto& s : shards_) {
      // mo: relaxed — destructor requires external quiescence; no
      // concurrent publisher or reader exists to order against.
      delete s->mem.load(std::memory_order_relaxed);
      delete s->version.load(std::memory_order_relaxed);
    }
    for (int i = 0; i < 3; ++i) {  // two advances free everything retired
      domain_->drain(~std::size_t{0});
    }
  }

  /// Insert or overwrite key -> value.
  Status put(const Slice& key, const Slice& value) {
    std::string tagged;
    tagged.reserve(value.size() + 1);
    tagged.push_back(kValueTag);
    tagged.append(value.data(), value.size());
    puts_.fetch_add(1, std::memory_order_relaxed);  // mo: relaxed — stats
    return write(key, Slice(tagged));
  }

  /// Delete key (tombstone write; the key disappears from gets and
  /// scans immediately, storage is reclaimed at compaction).
  Status del(const Slice& key) {
    const char tomb[1] = {kTombstoneTag};
    deletes_.fetch_add(1, std::memory_order_relaxed);  // mo: relaxed — stats
    return write(key, Slice(tomb, 1));
  }

  /// Point lookup. Default: lock-free under epoch protection — the
  /// shard lock is untouched, writers retire rather than free, and
  /// the epoch guard keeps every structure this thread can reach
  /// alive. Fallback (epoch_reads=false): shard lock, shared mode.
  Status get(const Slice& key, std::string* value) {
    Shard& s = shard_for(key);
    std::string tagged;
    bool found;
    if (options_.epoch_reads) {
      epoch_gets_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
      reclaim::EpochGuard g(*domain_);
      found = search_shard(s, key, &tagged);
    } else if constexpr (SharedLockable<ShardLock>) {
      locked_gets_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
      SharedLockGuard<ShardLock> g(s.mu.value);
      found = search_shard(s, key, &tagged);
    } else {  // exclusive-only algorithm: readers serialize
      locked_gets_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
      LockGuard<ShardLock> g(s.mu.value);
      found = search_shard(s, key, &tagged);
    }
    if (!found || tagged.empty() || tagged[0] == kTombstoneTag) {
      return Status::not_found();
    }
    value->assign(tagged.data() + 1, tagged.size() - 1);
    return Status::ok();
  }

  /// Range scan: up to `limit` live entries with key >= `start`,
  /// ascending across the whole keyspace. Enters/exits the epoch (or
  /// shard lock) once per shard; shards partition the keyspace, so
  /// the merged result is the sorted union of bounded per-shard
  /// prefixes.
  std::size_t scan(const Slice& start, std::size_t limit,
                   std::vector<std::pair<std::string, std::string>>* out) {
    out->clear();
    if (limit == 0) return 0;
    scans_.fetch_add(1, std::memory_order_relaxed);  // mo: relaxed — stats
    std::vector<std::pair<std::string, std::string>> all;
    for (auto& sp : shards_) {
      Shard& s = *sp;
      if (options_.epoch_reads) {
        reclaim::EpochGuard g(*domain_);
        collect_shard(s, start, limit, &all);
      } else if constexpr (SharedLockable<ShardLock>) {
        SharedLockGuard<ShardLock> g(s.mu.value);
        collect_shard(s, start, limit, &all);
      } else {
        LockGuard<ShardLock> g(s.mu.value);
        collect_shard(s, start, limit, &all);
      }
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      return Slice(a.first).compare(Slice(b.first)) < 0;
    });
    if (all.size() > limit) all.resize(limit);
    *out = std::move(all);
    return out->size();
  }

  /// Force every shard's memtable into an immutable table.
  void flush() {
    for (auto& sp : shards_) {
      LockGuard<ShardLock> g(sp->mu.value);
      flush_shard_locked(*sp);
    }
    domain_->drain(options_.drain_batch);
  }

  /// Bounded reclamation step (also runs automatically after flushes
  /// triggered by writes). Returns objects freed.
  std::size_t reclaim_drain(std::size_t max_frees) {
    return domain_->drain(max_frees);
  }

  /// Shard count.
  std::size_t num_shards() const { return shards_.size(); }
  /// Total immutable tables across shards (diagnostics).
  std::size_t num_tables() {
    std::size_t n = 0;
    for (auto& sp : shards_) {
      LockGuard<ShardLock> g(sp->mu.value);
      // mo: relaxed — mu is held, so the published pointer is stable.
      n += sp->version.load(std::memory_order_relaxed)->tables.size();
    }
    return n;
  }

  /// Block cache statistics.
  std::uint64_t cache_hits() const { return cache_.hits(); }
  std::uint64_t cache_misses() const { return cache_.misses(); }

  /// Operation + reclamation counters.
  ShardedDbStats stats() const {
    ShardedDbStats st;
    // mo: relaxed — monotonic stats counters; no ordering implied.
    st.epoch_gets = epoch_gets_.load(std::memory_order_relaxed);
    st.locked_gets = locked_gets_.load(std::memory_order_relaxed);
    st.scans = scans_.load(std::memory_order_relaxed);
    st.puts = puts_.load(std::memory_order_relaxed);
    st.deletes = deletes_.load(std::memory_order_relaxed);
    st.flushes = flushes_.load(std::memory_order_relaxed);
    st.compactions = compactions_.load(std::memory_order_relaxed);
    st.reclaim = domain_->stats();
    return st;
  }

  /// The epoch domain this DB retires into.
  reclaim::EpochDomain& domain() { return *domain_; }

  static constexpr char kValueTag = 'V';
  static constexpr char kTombstoneTag = 'T';

 private:
  struct Shard {
    CacheAligned<ShardLock> mu;
    /// Published structures: swung under mu, read lock-free by
    /// epoch-protected readers. Raw pointers (not shared_ptr) because
    /// lifetime is the epoch domain's job — readers must not touch a
    /// contended refcount on the hot path.
    std::atomic<MemTable*> mem;
    std::atomic<TableVersion*> version;
    std::uint64_t next_seq HEMLOCK_GUARDED_BY(mu.value) = 1;  ///< under mu

    Shard() : mem(new MemTable()), version(new TableVersion()) {}
    template <typename... Args>
    explicit Shard(const Args&... args)
        : mu(args...), mem(new MemTable()), version(new TableVersion()) {}
    ~Shard() = default;  // mem/version freed by ShardedDB's destructor
  };

  /// Keyspace router: FNV-1a over the key bytes, splitmix-finalized
  /// so low-entropy key suffixes still spread across shards.
  Shard& shard_for(const Slice& key) {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < key.size(); ++i) {
      h ^= static_cast<unsigned char>(key.data()[i]);
      h *= 1099511628211ULL;
    }
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return *shards_[h % shards_.size()];
  }

  Status write(const Slice& key, const Slice& tagged) {
    Shard& s = shard_for(key);
    bool flushed = false;
    {
      LockGuard<ShardLock> g(s.mu.value);
      // mo: relaxed — mu is held; only flush_shard_locked (also
      // under mu) swings this pointer.
      MemTable* mem = s.mem.load(std::memory_order_relaxed);
      mem->add(s.next_seq++, key, tagged);
      if (mem->approximate_memory_usage() >= options_.write_buffer_bytes) {
        flush_shard_locked(s);
        flushed = true;
      }
    }
    // Reclamation piggybacks on the writes that generate garbage,
    // outside the shard lock and bounded, so a put() pays at most
    // drain_batch deleter calls.
    if (flushed) domain_->drain(options_.drain_batch);
    return Status::ok();
  }

  /// Lock-free (or shared-locked) search of one shard. The acquire
  /// loads pair with flush_shard_locked's release stores; mem is
  /// loaded FIRST (see the publication-order comment at the top).
  bool search_shard(Shard& s, const Slice& key, std::string* tagged) {
    // mo: acquire — pairs with the release publish in
    // flush_shard_locked; mem FIRST (publication-order invariant).
    MemTable* mem = s.mem.load(std::memory_order_acquire);
    TableVersion* version = s.version.load(std::memory_order_acquire);
    if (mem->get(key, tagged)) return true;
    for (const auto& table : version->tables) {  // newest first
      if (key.compare(table->smallest()) < 0 ||
          key.compare(table->largest()) > 0) {
        continue;
      }
      const std::int64_t idx = table->block_for(key);
      if (idx < 0) continue;
      if (read_block_cached(*table, static_cast<std::size_t>(idx))
              ->get(key, tagged)) {
        return true;
      }
    }
    return false;
  }

  /// Bounded per-shard scan leg: first `limit` LIVE entries >= start.
  /// Tombstones are filtered here but still suppress older versions
  /// inside merge_scan (newest-wins saw them first).
  void collect_shard(Shard& s, const Slice& start, std::size_t limit,
                     std::vector<std::pair<std::string, std::string>>* all) {
    // mo: acquire — pairs with flush_shard_locked's release publish;
    // mem FIRST (publication-order invariant, file header).
    MemTable* mem = s.mem.load(std::memory_order_acquire);
    TableVersion* version = s.version.load(std::memory_order_acquire);
    auto fetch = [this](const ImmutableTable& t, std::size_t b) {
      return read_block_cached(t, b);
    };
    std::size_t taken = 0;
    merge_scan(*mem, *version, start, fetch,
               [&](const Slice& k, const Slice& v) {
                 if (v.size() >= 1 && v.data()[0] == kValueTag) {
                   all->emplace_back(k.to_string(),
                                     std::string(v.data() + 1, v.size() - 1));
                   ++taken;
                 }
                 return taken < limit;
               });
  }

  /// REQUIRES: s.mu held. Freeze the memtable into a table, publish
  /// the new version THEN the new memtable (release order readers
  /// rely on), retire the old structures to the epoch domain.
  void flush_shard_locked(Shard& s) HEMLOCK_REQUIRES(s.mu.value) {
    // mo: relaxed — mu is held; this function is the only writer.
    MemTable* old_mem = s.mem.load(std::memory_order_relaxed);
    if (old_mem->entries() == 0) return;
    auto sorted = old_mem->snapshot_sorted();
    auto table = std::make_shared<ImmutableTable>(
        // mo: relaxed — unique-ID counter; uniqueness, not ordering.
        next_table_id_.fetch_add(1, std::memory_order_relaxed),
        std::move(sorted), options_.block_fanout);
    // mo: relaxed — mu is held; the published pointer is stable.
    TableVersion* old_version = s.version.load(std::memory_order_relaxed);
    auto* next = new TableVersion();
    next->tables.reserve(old_version->tables.size() + 1);
    next->tables.push_back(std::move(table));
    for (const auto& t : old_version->tables) next->tables.push_back(t);
    if (next->tables.size() > options_.compaction_trigger) {
      compact_tables(next);
    }
    // mo: release ×2 — publish version THEN empty memtable; readers
    // acquire-load mem first, so seeing the new (empty) memtable
    // implies seeing the version that holds the flushed table.
    s.version.store(next, std::memory_order_release);
    s.mem.store(new MemTable(), std::memory_order_release);
    // Retire AFTER unpublishing: in-epoch readers may still hold
    // these; the domain frees them two epochs from now.
    domain_->retire(old_version);
    domain_->retire(old_mem);
    flushes_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
  }

  /// Full-merge compaction of an unpublished version: fold every
  /// table (newest wins) into one, ELIDING tombstones — correct only
  /// because the merge consumes all of the shard's tables and the
  /// fresh memtable that accompanies this version is empty, so no
  /// older version of an elided key survives anywhere.
  void compact_tables(TableVersion* v) {
    std::vector<std::pair<std::string, std::string>> merged;
    std::unordered_set<std::string> seen;
    for (const auto& table : v->tables) {  // newest first: first wins
      for (std::size_t b = 0; b < table->num_blocks(); ++b) {
        const auto block = table->read_block(b);
        for (const auto& [k, val] : block->entries) {
          if (seen.insert(k).second &&
              (val.empty() || val[0] != kTombstoneTag)) {
            merged.emplace_back(k, val);
          }
        }
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) {
                return Slice(a.first).compare(Slice(b.first)) < 0;
              });
    auto compacted = std::make_shared<ImmutableTable>(
        // mo: relaxed — unique-ID counter; uniqueness, not ordering.
        next_table_id_.fetch_add(1, std::memory_order_relaxed),
        std::move(merged), options_.block_fanout);
    v->tables.clear();
    v->tables.push_back(std::move(compacted));
    compactions_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
  }

  std::shared_ptr<Block> read_block_cached(const ImmutableTable& table,
                                           std::size_t idx) {
    const BlockKey bkey{table.id(), static_cast<std::uint32_t>(idx)};
    std::shared_ptr<Block> block = cache_.lookup(bkey);
    if (block == nullptr) {
      block = table.read_block(idx);
      cache_.insert(bkey, block, block->charge());
    }
    return block;
  }

  ShardedDbOptions options_;
  reclaim::EpochDomain* domain_;
  ShardedLruCache<Block> cache_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_table_id_{1};  ///< DB-unique (cache keys)

  std::atomic<std::uint64_t> epoch_gets_{0}, locked_gets_{0}, scans_{0},
      puts_{0}, deletes_{0}, flushes_{0}, compactions_{0};
};

}  // namespace hemlock::minikv
