// db_bench.hpp — MiniKV's equivalent of LevelDB's db_bench driver.
//
// Reproduces the paper's Figure-8 methodology (§5.4):
//   "We first populated a database        [fillseq, 1 thread]
//    and then collected data              [readrandom, T threads,
//                                          fixed duration]
//    ... Each thread loops, generating random keys and then tries to
//    read the associated value from the database."
// Keys use db_bench's 16-digit zero-padded decimal format.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "minikv/db.hpp"
#include "runtime/barrier.hpp"
#include "runtime/prng.hpp"
#include "runtime/thread_rec.hpp"
#include "runtime/timing.hpp"

namespace hemlock::minikv {

/// db_bench's key format: 16-digit zero-padded decimal.
inline std::string bench_key(std::uint64_t k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(k));
  return std::string(buf, 16);
}

/// fillseq: populate keys [0, n) in order with `value_size`-byte
/// values from a single thread (the paper's
/// `db_bench --threads=1 --benchmarks=fillseq`).
template <BasicLockable L>
void fill_seq(DB<L>& db, std::uint64_t n, std::size_t value_size = 100) {
  std::string value(value_size, 'v');
  for (std::uint64_t k = 0; k < n; ++k) {
    db.put(bench_key(k), value);
  }
  db.flush();
}

/// readrandom parameters.
struct ReadRandomConfig {
  std::uint32_t threads = 1;
  std::int64_t duration_ms = 1000;  ///< the paper used 50 s runs
  std::uint64_t num_keys = 100000;  ///< keyspace to draw from
  std::uint64_t seed = 0xDBDBDBDBULL;
};

/// readrandom outcome.
struct ReadRandomResult {
  std::uint64_t total_reads = 0;
  std::uint64_t found = 0;
  std::int64_t elapsed_ns = 0;

  /// Figure 8's Y axis: millions of operations per second.
  double mops_per_sec() const {
    return ops_per_sec(total_reads, elapsed_ns) / 1e6;
  }
};

/// readrandom: T threads read uniformly random existing keys for the
/// configured duration; reports aggregate throughput.
template <BasicLockable L>
ReadRandomResult run_readrandom(DB<L>& db, const ReadRandomConfig& cfg) {
  struct Shared {
    CacheAligned<std::atomic<bool>> stop{false};
    SpinBarrier barrier;
    explicit Shared(std::uint32_t parties) : barrier(parties) {}
  };
  auto shared = std::make_unique<Shared>(cfg.threads + 1);

  std::vector<std::uint64_t> reads(cfg.threads, 0), hits(cfg.threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (std::uint32_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      (void)self();  // register the Grant record before the run
      Xoshiro256 prng(cfg.seed + 0x1234567 * (t + 1));
      std::string value;
      std::uint64_t r = 0, h = 0;
      shared->barrier.arrive_and_wait();
      // mo: relaxed — advisory stop flag; the barrier synchronizes.
      while (!shared->stop.value.load(std::memory_order_relaxed)) {
        const std::uint64_t k = prng.below64(cfg.num_keys);
        if (db.get(bench_key(k), &value).is_ok()) ++h;
        ++r;
      }
      reads[t] = r;
      hits[t] = h;
      shared->barrier.arrive_and_wait();
    });
  }

  shared->barrier.arrive_and_wait();
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  // mo: relaxed — advisory stop flag; the barrier synchronizes.
  shared->stop.value.store(true, std::memory_order_relaxed);
  shared->barrier.arrive_and_wait();
  const std::int64_t elapsed = timer.elapsed_ns();
  for (auto& w : workers) w.join();

  ReadRandomResult res;
  res.elapsed_ns = elapsed;
  for (std::uint32_t t = 0; t < cfg.threads; ++t) {
    res.total_reads += reads[t];
    res.found += hits[t];
  }
  return res;
}

}  // namespace hemlock::minikv
