// memtable.hpp — in-memory write buffer, LevelDB-style.
//
// Entries are encoded into arena storage as
//   varint32 key_size | key bytes | varint32 value_size | value bytes
// and indexed by a skiplist keyed on the encoded entry pointer, the
// same layout leveldb::MemTable uses (minus sequence numbers/value
// tags — MiniKV's DB layer serializes writers and replaces via
// last-writer-wins on flush, which preserves the Figure-8 workload's
// locking behaviour while staying simpler).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "minikv/arena.hpp"
#include "minikv/skiplist.hpp"
#include "minikv/slice.hpp"

namespace hemlock::minikv {

namespace detail {

/// Varint32 encode (LevelDB wire format); returns past-the-end.
inline char* encode_varint32(char* dst, std::uint32_t v) {
  auto* ptr = reinterpret_cast<std::uint8_t*>(dst);
  static constexpr int kMsb = 128;
  while (v >= kMsb) {
    *(ptr++) = static_cast<std::uint8_t>(v | kMsb);
    v >>= 7;
  }
  *(ptr++) = static_cast<std::uint8_t>(v);
  return reinterpret_cast<char*>(ptr);
}

/// Varint32 decode; advances *p.
inline std::uint32_t decode_varint32(const char** p) {
  const auto* ptr = reinterpret_cast<const std::uint8_t*>(*p);
  std::uint32_t result = 0;
  for (int shift = 0; shift <= 28; shift += 7) {
    const std::uint32_t byte = *ptr++;
    result |= (byte & 127) << shift;
    if ((byte & 128) == 0) break;
  }
  *p = reinterpret_cast<const char*>(ptr);
  return result;
}

/// Bytes needed to varint32-encode v.
inline std::size_t varint32_length(std::uint32_t v) {
  std::size_t len = 1;
  while (v >= 128) {
    v >>= 7;
    ++len;
  }
  return len;
}

/// Key view of an encoded entry.
inline Slice entry_key(const char* entry) {
  const char* p = entry;
  const std::uint32_t klen = decode_varint32(&p);
  return Slice(p, klen);
}

/// Value view of an encoded entry.
inline Slice entry_value(const char* entry) {
  const char* p = entry;
  const std::uint32_t klen = decode_varint32(&p);
  p += klen;
  const std::uint32_t vlen = decode_varint32(&p);
  return Slice(p, vlen);
}

/// Orders encoded entries by their keys, then by insertion sequence
/// (embedded after the value) so that later writes of the same key
/// sort *before* earlier ones — Get returns the newest.
struct EntryComparator {
  int operator()(const char* a, const char* b) const {
    const Slice ka = entry_key(a), kb = entry_key(b);
    const int c = ka.compare(kb);
    if (c != 0) return c;
    // Tie-break on the descending sequence trailer.
    const std::uint64_t sa = entry_seq(a), sb = entry_seq(b);
    if (sa > sb) return -1;
    if (sa < sb) return +1;
    return 0;
  }

  static std::uint64_t entry_seq(const char* entry) {
    const char* p = entry;
    const std::uint32_t klen = decode_varint32(&p);
    p += klen;
    const std::uint32_t vlen = decode_varint32(&p);
    p += vlen;
    std::uint64_t seq;
    std::memcpy(&seq, p, sizeof(seq));
    return seq;
  }
};

}  // namespace detail

/// In-memory sorted write buffer. Writers must be serialized
/// externally (the DB's central mutex); reads are safe concurrently
/// with one writer (the skiplist contract).
class MemTable {
 private:
  // Declared up front: Cursor (below) embeds an Index::Iterator.
  using Index = SkipList<const char*, detail::EntryComparator>;

 public:
  MemTable() : table_(detail::EntryComparator(), &arena_) {}
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Insert key -> value with a sequence number (monotone per DB).
  void add(std::uint64_t seq, const Slice& key, const Slice& value) {
    const std::size_t klen = key.size();
    const std::size_t vlen = value.size();
    const std::size_t bytes = detail::varint32_length(klen) + klen +
                              detail::varint32_length(vlen) + vlen +
                              sizeof(std::uint64_t);
    char* buf = arena_.allocate(bytes);
    char* p = detail::encode_varint32(buf, static_cast<std::uint32_t>(klen));
    std::memcpy(p, key.data(), klen);
    p += klen;
    p = detail::encode_varint32(p, static_cast<std::uint32_t>(vlen));
    std::memcpy(p, value.data(), vlen);
    p += vlen;
    std::memcpy(p, &seq, sizeof(seq));
    table_.insert(buf);
    // mo: relaxed — the counter is a fast-path hint (and a
    // diagnostic), not a publication point; the skiplist's own release
    // stores publish the entry to lock-free readers.
    entries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Newest value for key, if present.
  bool get(const Slice& key, std::string* value) const {
    // mo: relaxed — emptiness hint; a racing insert is published by
    // the skiplist's release stores, not this counter.
    if (entries_.load(std::memory_order_relaxed) == 0) {
      return false;  // common post-flush fast path
    }
    Index::Iterator it(&table_);
    const std::string probe = seek_probe(key);
    it.seek(probe.data());
    if (!it.valid()) return false;
    const Slice found = detail::entry_key(it.key());
    if (found != key) return false;
    *value = detail::entry_value(it.key()).to_string();
    return true;
  }

  /// Forward cursor over the *newest* version of each key, ascending,
  /// starting from the first key >= `start`. Safe concurrently with
  /// one writer (the skiplist iteration contract): entries inserted
  /// after a position was taken may or may not be observed, which is
  /// the usual "scan concurrent with writes" semantics.
  class Cursor {
   public:
    Cursor(const MemTable& mem, const Slice& start) : it_(&mem.table_) {
      const std::string probe = mem.seek_probe(start);
      it_.seek(probe.data());
    }

    bool valid() const { return it_.valid(); }
    Slice key() const { return detail::entry_key(it_.key()); }
    Slice value() const { return detail::entry_value(it_.key()); }

    /// Advance to the next distinct key (skipping the current key's
    /// superseded older versions, which sort immediately after).
    void next() {
      const Slice cur = key();  // arena-backed; stays valid across next()
      do {
        it_.next();
      } while (it_.valid() && detail::entry_key(it_.key()) == cur);
    }

   private:
    Index::Iterator it_;
  };

  /// Entries inserted (including superseded versions).
  std::size_t entries() const {
    return entries_.load(std::memory_order_relaxed);  // mo: stats
  }
  /// Approximate heap footprint (flush threshold input).
  std::size_t approximate_memory_usage() const {
    return arena_.memory_usage();
  }

  /// Snapshot the newest version of every key, sorted ascending —
  /// the flush input for ImmutableTable. REQUIRES: writers quiesced
  /// (DB holds its mutex across flush, as LevelDB does for the
  /// memtable switch).
  std::vector<std::pair<std::string, std::string>> snapshot_sorted() const {
    std::vector<std::pair<std::string, std::string>> out;
    Index::Iterator it(&table_);
    it.seek_to_first();
    std::string last_key;
    bool first = true;
    for (; it.valid(); it.next()) {
      const Slice k = detail::entry_key(it.key());
      if (first || k.view() != last_key) {
        out.emplace_back(k.to_string(),
                         detail::entry_value(it.key()).to_string());
        last_key.assign(k.data(), k.size());
        first = false;
      }
      // else: older version of the same key (sorted after) — skip.
    }
    return out;
  }

 private:
  /// Encoded entry that sorts as (key, +inf seq) — i.e. immediately
  /// before the newest real entry for `key` under EntryComparator's
  /// descending-sequence tie-break. Shared by get() and Cursor.
  std::string seek_probe(const Slice& key) const {
    const std::size_t klen = key.size();
    std::string probe;
    probe.resize(detail::varint32_length(klen) + klen +
                 detail::varint32_length(0) + sizeof(std::uint64_t));
    char* p = detail::encode_varint32(probe.data(),
                                      static_cast<std::uint32_t>(klen));
    std::memcpy(p, key.data(), klen);
    p += klen;
    p = detail::encode_varint32(p, 0);  // empty value
    const std::uint64_t max_seq = ~0ULL;
    std::memcpy(p, &max_seq, sizeof(max_seq));
    return probe;
  }

  Arena arena_;
  Index table_;
  std::atomic<std::size_t> entries_{0};
};

}  // namespace hemlock::minikv
