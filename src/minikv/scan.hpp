// scan.hpp — newest-wins merge scan over one (memtable, version)
// snapshot.
//
// Both DB<Lock>::scan() and ShardedDB's per-shard scan leg walk the
// same shape of snapshot: one mutable memtable plus a newest-first
// list of immutable tables, each individually sorted and de-duplicated.
// merge_scan() is the single k-way merge over those sources: ascending
// key order, and where several sources carry the same key the newest
// source wins (memtable, then tables in version order) — the scan
// twin of the point-lookup search order.
//
// The caller supplies the block fetch (so table blocks flow through
// the owning DB's block cache) and a visitor that returns false to
// stop — which is how bounded scans avoid materializing whole tables.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "minikv/memtable.hpp"
#include "minikv/slice.hpp"
#include "minikv/table.hpp"

namespace hemlock::minikv {

namespace detail {

/// Forward cursor over one ImmutableTable from the first key >=
/// start, fetching blocks through the caller's cache hook.
template <typename Fetch>
class TableCursor {
 public:
  TableCursor(const ImmutableTable& table, const Slice& start, Fetch& fetch)
      : table_(&table), fetch_(&fetch) {
    if (table.num_entries() == 0 || start.compare(table.largest()) > 0) {
      block_idx_ = table.num_blocks();  // invalid
      return;
    }
    const std::int64_t idx = table.block_for(start);
    block_idx_ = idx < 0 ? 0 : static_cast<std::size_t>(idx);
    load_block();
    // Position at the first entry >= start inside the block; the
    // block's first key can still be < start when block_for matched.
    auto it = std::lower_bound(
        block_->entries.begin(), block_->entries.end(), start,
        [](const auto& e, const Slice& k) {
          return Slice(e.first).compare(k) < 0;
        });
    entry_idx_ = static_cast<std::size_t>(it - block_->entries.begin());
    skip_exhausted_blocks();
  }

  bool valid() const { return block_idx_ < table_->num_blocks(); }
  Slice key() const { return Slice(block_->entries[entry_idx_].first); }
  Slice value() const { return Slice(block_->entries[entry_idx_].second); }

  void next() {
    ++entry_idx_;
    skip_exhausted_blocks();
  }

 private:
  void load_block() { block_ = (*fetch_)(*table_, block_idx_); }
  void skip_exhausted_blocks() {
    while (valid() && entry_idx_ >= block_->entries.size()) {
      ++block_idx_;
      entry_idx_ = 0;
      if (valid()) load_block();
    }
  }

  const ImmutableTable* table_;
  Fetch* fetch_;
  std::shared_ptr<Block> block_;
  std::size_t block_idx_ = 0;
  std::size_t entry_idx_ = 0;
};

}  // namespace detail

/// Merge-scan the snapshot (mem, version) from the first key >=
/// `start`, ascending, invoking fn(key, value) for the NEWEST version
/// of each key until fn returns false or the snapshot is exhausted.
/// `fetch(table, block_idx) -> std::shared_ptr<Block>` materializes
/// table blocks (normally via the DB's block cache).
///
/// Values are handed through verbatim — a layer that encodes
/// tombstones in its values (ShardedDB) filters them in its visitor,
/// where a suppressed key still consumed its older versions here.
template <typename Fetch, typename Fn>
void merge_scan(const MemTable& mem, const TableVersion& version,
                const Slice& start, Fetch&& fetch, Fn&& fn) {
  MemTable::Cursor mem_cursor(mem, start);
  // Fetch deduces as an lvalue reference for lvalue hooks; the cursor
  // stores a pointer, so strip the reference.
  std::vector<detail::TableCursor<std::remove_reference_t<Fetch>>>
      table_cursors;
  table_cursors.reserve(version.tables.size());
  for (const auto& t : version.tables) {  // newest first
    table_cursors.emplace_back(*t, start, fetch);
  }

  std::string yielded;  // reused owning copy of the key being advanced past
  for (;;) {
    // Minimum key across sources; among equal keys the first source
    // in (mem, tables newest-first) order is the newest version —
    // strict < keeps the first-seen winner on ties.
    Slice best_key, best_value;
    bool have = false;
    auto consider = [&](Slice k, Slice v) {
      if (!have || k.compare(best_key) < 0) {
        best_key = k;
        best_value = v;
        have = true;
      }
    };
    if (mem_cursor.valid()) consider(mem_cursor.key(), mem_cursor.value());
    for (auto& c : table_cursors) {
      if (c.valid()) consider(c.key(), c.value());
    }
    if (!have) return;
    if (!fn(best_key, best_value)) return;
    // Advance every source sitting on this key (older versions of it
    // must not surface later). Compare against an owning copy:
    // advancing a table cursor can release the block best_key points
    // into.
    yielded.assign(best_key.data(), best_key.size());
    const Slice done(yielded);
    if (mem_cursor.valid() && mem_cursor.key() == done) mem_cursor.next();
    for (auto& c : table_cursors) {
      if (c.valid() && c.key() == done) c.next();
    }
  }
}

}  // namespace hemlock::minikv
