// skiplist.hpp — concurrent skiplist, the memtable's index.
//
// Mirrors leveldb::SkipList's concurrency contract, which is what the
// Figure-8 workload depends on: writes are serialized externally (by
// the DB's central mutex — the very lock the benchmark contends on),
// while reads run lock-free and concurrently with one in-flight
// writer. Publication safety comes from release-storing next pointers
// bottom-up so a reader that observes a node at any level sees a
// fully initialized node.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "minikv/arena.hpp"
#include "runtime/prng.hpp"

namespace hemlock::minikv {

/// Skiplist keyed by `Key` (a trivially copyable handle, e.g. a
/// pointer to an arena-resident encoded entry). Comparator is a
/// stateless-ish functor: int operator()(Key a, Key b).
template <typename Key, typename Comparator>
class SkipList {
 public:
  /// `cmp` orders keys; `arena` owns node memory.
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(new_node(Key{}, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; ++i) {
      head_->set_next(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Insert key. REQUIRES: external serialization of writers; key not
  /// already present (MiniKV encodes a sequence number per entry so
  /// duplicates cannot collide, matching LevelDB).
  void insert(const Key& key) {
    Node* prev[kMaxHeight];
    [[maybe_unused]] Node* x = find_greater_or_equal(key, prev);
    assert(x == nullptr || !equal(key, x->key));  // x unused w/ NDEBUG

    const int height = random_height();
    if (height > max_height()) {
      for (int i = max_height(); i < height; ++i) prev[i] = head_;
      // mo: relaxed — readers tolerate a stale (smaller) height;
      // they simply do not use the new levels yet.
      max_height_.store(height, std::memory_order_relaxed);
    }

    Node* n = new_node(key, height);
    for (int i = 0; i < height; ++i) {
      // Link bottom-up. The store into n's next can be relaxed (n is
      // not yet published); the store into prev's next releases n.
      n->set_next_relaxed(i, prev[i]->next_relaxed(i));
      prev[i]->set_next(i, n);
    }
  }

  /// True iff an entry equal to key exists. Safe concurrently with
  /// one writer.
  bool contains(const Key& key) const {
    Node* x = find_greater_or_equal(key, nullptr);
    return x != nullptr && equal(key, x->key);
  }

  /// Forward iterator over the list (LevelDB-style explicit cursor).
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    /// True when positioned on a node.
    bool valid() const { return node_ != nullptr; }
    /// Key at the current position (REQUIRES valid()).
    const Key& key() const {
      assert(valid());
      return node_->key;
    }
    /// Advance.
    void next() {
      assert(valid());
      node_ = node_->next(0);
    }
    /// Position at the first node >= target.
    void seek(const Key& target) {
      node_ = list_->find_greater_or_equal(target, nullptr);
    }
    /// Position at the first node.
    void seek_to_first() { node_ = list_->head_->next(0); }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr unsigned kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    const Key key;

    Node* next(int level) const {
      // mo: acquire — pairs with set_next's release; the pointee's
      // key/links are initialized before we can traverse it.
      return next_[level].load(std::memory_order_acquire);
    }
    void set_next(int level, Node* n) {
      // mo: release publish — see next().
      next_[level].store(n, std::memory_order_release);
    }
    Node* next_relaxed(int level) const {
      // mo: relaxed — writer-side reload where the insert lock (or
      // single-writer phase) already owns the list.
      return next_[level].load(std::memory_order_relaxed);
    }
    void set_next_relaxed(int level, Node* n) {
      // mo: relaxed — initializing a node not yet published; the
      // set_next splice that publishes it carries release.
      next_[level].store(n, std::memory_order_relaxed);
    }

    // Tail array sized by node height at allocation time.
    std::atomic<Node*> next_[1];
  };

  Node* new_node(const Key& key, int height) {
    char* mem = arena_->allocate_aligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int random_height() {
    int height = 1;
    while (height < kMaxHeight && rnd_.below(kBranching) == 0) ++height;
    return height;
  }

  int max_height() const {
    // mo: relaxed — height hint; see insert's store.
    return max_height_.load(std::memory_order_relaxed);
  }

  bool equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }

  /// First node >= key; fills prev[] with the per-level predecessors
  /// when non-null (used by insert).
  Node* find_greater_or_equal(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = max_height() - 1;
    for (;;) {
      Node* next = x->next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Xoshiro256 rnd_;
};

}  // namespace hemlock::minikv
