// status.hpp — operation result type, LevelDB-style.
#pragma once

#include <string>
#include <utility>

namespace hemlock::minikv {

/// Result of a DB operation: OK, NotFound, or an error with a
/// message. Cheap to copy in the OK case.
class Status {
 public:
  /// Success.
  static Status ok() { return Status(); }
  /// Key absent (not an error for Get).
  static Status not_found(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  /// Invalid usage (e.g. operations on a closed DB).
  static Status invalid_argument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  /// Data integrity failure.
  static Status corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }

  /// True on success.
  bool is_ok() const { return code_ == Code::kOk; }
  /// True when the key was absent.
  bool is_not_found() const { return code_ == Code::kNotFound; }
  /// True for corruption errors.
  bool is_corruption() const { return code_ == Code::kCorruption; }

  /// Human-readable rendering.
  std::string to_string() const {
    switch (code_) {
      case Code::kOk: return "OK";
      case Code::kNotFound: return "NotFound: " + msg_;
      case Code::kInvalidArgument: return "InvalidArgument: " + msg_;
      case Code::kCorruption: return "Corruption: " + msg_;
    }
    return "Unknown";
  }

 private:
  enum class Code { kOk, kNotFound, kInvalidArgument, kCorruption };
  Status() : code_(Code::kOk) {}
  Status(Code c, std::string msg) : code_(c), msg_(std::move(msg)) {}
  Code code_;
  std::string msg_;
};

}  // namespace hemlock::minikv
