// cache.hpp — sharded LRU block cache, LevelDB-style.
//
// LevelDB routes every table block read through a ShardedLRUCache;
// MiniKV reproduces that layer so the Figure-8 readrandom workload
// has the same memory behaviour (hot blocks served from cache, cold
// reads paying the decode cost). Shards each have their own
// reader-writer mutex — these are *internal* locks, distinct from the
// DB's central mutex that the benchmark contends on (and they use
// std::shared_mutex so cache overhead stays constant while the
// central lock algorithm varies).
//
// The lookup path is a SHARED acquisition: when DB<Lock>::get() runs
// with a shared-mode central lock, its whole read path — snapshot,
// memtable search, block-cache touch — now admits concurrent readers;
// previously the cache's exclusive std::mutex made every cache hit
// briefly re-serialize reads that the central lock had just let
// through together. A shared holder cannot splice the recency list,
// so recency is tracked with a per-entry "referenced" bit (set on
// hit) and eviction runs second-chance/CLOCK over the list: a
// referenced victim is recycled to the front with its bit cleared
// instead of evicted. The scan is bounded by the list length, so one
// insert cannot loop forever under a storm of concurrent touches.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace hemlock::minikv {

/// Key for a cached block: (table id, block index).
struct BlockKey {
  std::uint64_t table_id;
  std::uint32_t block_index;

  bool operator==(const BlockKey& o) const {
    return table_id == o.table_id && block_index == o.block_index;
  }
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    // 64-bit mix of the two fields (splitmix64 finalizer).
    std::uint64_t x = k.table_id * 0x9E3779B97F4A7C15ULL + k.block_index;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// One cache shard: hash map + recency list, byte-budgeted.
/// Lookups take the shard lock SHARED; mutations (insert/erase) take
/// it exclusive.
template <typename V>
class LruShard {
 public:
  /// Set the shard's byte capacity.
  void set_capacity(std::size_t bytes) { capacity_ = bytes; }

  /// Look up; marks the entry referenced (second-chance recency) on
  /// hit. Shared acquisition — concurrent lookups never serialize.
  std::shared_ptr<V> lookup(const BlockKey& key) {
    std::shared_lock<std::shared_mutex> g(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
    // mo: relaxed — recency hint; losing a race costs one LRU chance.
    it->second.referenced.store(true, std::memory_order_relaxed);
    return it->second.value;
  }

  /// Insert (replacing any existing entry), evicting entries until
  /// within capacity. Second-chance: a victim whose referenced bit is
  /// set gets recycled to the front (bit cleared) instead of evicted;
  /// the walk is bounded by the list length, after which eviction is
  /// unconditional.
  void insert(const BlockKey& key, std::shared_ptr<V> value,
              std::size_t charge) {
    std::lock_guard<std::shared_mutex> g(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      usage_ -= it->second.charge;
      lru_.erase(it->second.lru_pos);
      map_.erase(it);
    }
    lru_.push_front(key);
    auto [pos, inserted] =
        map_.try_emplace(key, std::move(value), charge, lru_.begin());
    (void)pos;
    (void)inserted;
    usage_ += charge;
    std::size_t chances = lru_.size();
    while (usage_ > capacity_ && !lru_.empty()) {
      const BlockKey victim = lru_.back();
      auto vit = map_.find(victim);
      // mo: relaxed — recency hint (exclusive lock held; readers
      // race only with the harmless store in lookup).
      if (chances > 0 &&
          vit->second.referenced.load(std::memory_order_relaxed)) {
        --chances;
        vit->second.referenced.store(false, std::memory_order_relaxed);  // mo: hint
        lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
        vit->second.lru_pos = lru_.begin();
        continue;
      }
      lru_.pop_back();
      usage_ -= vit->second.charge;
      map_.erase(vit);
      ++evictions_;
    }
  }

  /// Remove a specific key if present.
  void erase(const BlockKey& key) {
    std::lock_guard<std::shared_mutex> g(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    usage_ -= it->second.charge;
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
  }

  /// Bytes currently cached.
  std::size_t usage() const {
    std::shared_lock<std::shared_mutex> g(mu_);
    return usage_;
  }
  /// Hit/miss/eviction counters (monotone).
  // mo: relaxed — monotonic stats counters.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);  // mo: stats
  }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::shared_ptr<V> value;
    std::size_t charge;
    typename std::list<BlockKey>::iterator lru_pos;
    /// Set by lookups under the SHARED lock (hence atomic); consumed
    /// by the second-chance eviction walk under the exclusive lock.
    std::atomic<bool> referenced{false};

    Entry(std::shared_ptr<V> v, std::size_t c,
          typename std::list<BlockKey>::iterator pos)
        : value(std::move(v)), charge(c), lru_pos(pos) {}
  };

  mutable std::shared_mutex mu_;
  std::size_t capacity_ = 0;
  std::size_t usage_ = 0;  ///< mutated under exclusive mu_ only
  std::atomic<std::uint64_t> hits_{0}, misses_{0};
  std::uint64_t evictions_ = 0;  ///< exclusive mu_ only
  std::list<BlockKey> lru_;
  std::unordered_map<BlockKey, Entry, BlockKeyHash> map_;
};

/// Sharded LRU cache (16 shards, hash-partitioned) — the LevelDB
/// block-cache shape.
template <typename V>
class ShardedLruCache {
 public:
  static constexpr std::size_t kNumShards = 16;

  /// Total capacity in bytes, split evenly across shards.
  explicit ShardedLruCache(std::size_t capacity_bytes) {
    for (auto& s : shards_) s.set_capacity(capacity_bytes / kNumShards + 1);
  }

  /// Look up a block.
  std::shared_ptr<V> lookup(const BlockKey& key) {
    return shard(key).lookup(key);
  }
  /// Insert a block with its byte charge.
  void insert(const BlockKey& key, std::shared_ptr<V> value,
              std::size_t charge) {
    shard(key).insert(key, std::move(value), charge);
  }
  /// Drop a block.
  void erase(const BlockKey& key) { shard(key).erase(key); }

  /// Aggregate statistics across shards.
  std::uint64_t hits() const { return sum(&LruShard<V>::hits); }
  std::uint64_t misses() const { return sum(&LruShard<V>::misses); }
  std::uint64_t evictions() const { return sum(&LruShard<V>::evictions); }
  std::size_t usage() const {
    std::size_t u = 0;
    for (const auto& s : shards_) u += s.usage();
    return u;
  }

 private:
  LruShard<V>& shard(const BlockKey& key) {
    return shards_[BlockKeyHash{}(key) % kNumShards];
  }
  template <typename Fn>
  std::uint64_t sum(Fn fn) const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += (s.*fn)();
    return total;
  }

  LruShard<V> shards_[kNumShards];
};

}  // namespace hemlock::minikv
