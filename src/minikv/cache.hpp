// cache.hpp — sharded LRU block cache, LevelDB-style.
//
// LevelDB routes every table block read through a ShardedLRUCache;
// MiniKV reproduces that layer so the Figure-8 readrandom workload
// has the same memory behaviour (hot blocks served from cache, cold
// reads paying the decode cost). Shards each have their own mutex —
// these are *internal* locks, distinct from the DB's central mutex
// that the benchmark contends on (and they use std::mutex so cache
// overhead stays constant while the central lock algorithm varies).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace hemlock::minikv {

/// Key for a cached block: (table id, block index).
struct BlockKey {
  std::uint64_t table_id;
  std::uint32_t block_index;

  bool operator==(const BlockKey& o) const {
    return table_id == o.table_id && block_index == o.block_index;
  }
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    // 64-bit mix of the two fields (splitmix64 finalizer).
    std::uint64_t x = k.table_id * 0x9E3779B97F4A7C15ULL + k.block_index;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// One LRU shard: hash map + intrusive recency list, byte-budgeted.
template <typename V>
class LruShard {
 public:
  /// Set the shard's byte capacity.
  void set_capacity(std::size_t bytes) { capacity_ = bytes; }

  /// Look up; promotes to most-recently-used on hit.
  std::shared_ptr<V> lookup(const BlockKey& key) {
    std::lock_guard<std::mutex> g(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.value;
  }

  /// Insert (replacing any existing entry), evicting LRU entries
  /// until within capacity.
  void insert(const BlockKey& key, std::shared_ptr<V> value,
              std::size_t charge) {
    std::lock_guard<std::mutex> g(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      usage_ -= it->second.charge;
      lru_.erase(it->second.lru_pos);
      map_.erase(it);
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{std::move(value), charge, lru_.begin()});
    usage_ += charge;
    while (usage_ > capacity_ && !lru_.empty()) {
      const BlockKey victim = lru_.back();
      lru_.pop_back();
      auto vit = map_.find(victim);
      usage_ -= vit->second.charge;
      map_.erase(vit);
      ++evictions_;
    }
  }

  /// Remove a specific key if present.
  void erase(const BlockKey& key) {
    std::lock_guard<std::mutex> g(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    usage_ -= it->second.charge;
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
  }

  /// Bytes currently cached.
  std::size_t usage() const {
    std::lock_guard<std::mutex> g(mu_);
    return usage_;
  }
  /// Hit/miss/eviction counters (monotone).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::shared_ptr<V> value;
    std::size_t charge;
    typename std::list<BlockKey>::iterator lru_pos;
  };

  mutable std::mutex mu_;
  std::size_t capacity_ = 0;
  std::size_t usage_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
  std::list<BlockKey> lru_;
  std::unordered_map<BlockKey, Entry, BlockKeyHash> map_;
};

/// Sharded LRU cache (16 shards, hash-partitioned) — the LevelDB
/// block-cache shape.
template <typename V>
class ShardedLruCache {
 public:
  static constexpr std::size_t kNumShards = 16;

  /// Total capacity in bytes, split evenly across shards.
  explicit ShardedLruCache(std::size_t capacity_bytes) {
    for (auto& s : shards_) s.set_capacity(capacity_bytes / kNumShards + 1);
  }

  /// Look up a block.
  std::shared_ptr<V> lookup(const BlockKey& key) {
    return shard(key).lookup(key);
  }
  /// Insert a block with its byte charge.
  void insert(const BlockKey& key, std::shared_ptr<V> value,
              std::size_t charge) {
    shard(key).insert(key, std::move(value), charge);
  }
  /// Drop a block.
  void erase(const BlockKey& key) { shard(key).erase(key); }

  /// Aggregate statistics across shards.
  std::uint64_t hits() const { return sum(&LruShard<V>::hits); }
  std::uint64_t misses() const { return sum(&LruShard<V>::misses); }
  std::uint64_t evictions() const { return sum(&LruShard<V>::evictions); }
  std::size_t usage() const {
    std::size_t u = 0;
    for (const auto& s : shards_) u += s.usage();
    return u;
  }

 private:
  LruShard<V>& shard(const BlockKey& key) {
    return shards_[BlockKeyHash{}(key) % kNumShards];
  }
  template <typename Fn>
  std::uint64_t sum(Fn fn) const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += (s.*fn)();
    return total;
  }

  LruShard<V> shards_[kNumShards];
};

}  // namespace hemlock::minikv
