// traffic.hpp — mixed-traffic client harness over the MiniKV layers.
//
// The Figure-8 driver (db_bench.hpp) measures one thing: uniform
// readrandom against the central-mutex DB. A serving system sees
// richer traffic — skewed key popularity, range scans, bursts of
// writes — and it is exactly that mix that separates the sharded
// epoch-read serving layer (sharded_db.hpp) from a central lock. This
// header defines:
//
//   * KvBackend — a thin virtual surface (get/put/del/scan) so ONE
//     driver measures DB<Lock>, ShardedDB<Lock> with epoch reads, and
//     ShardedDB with shared-mode locked reads, whatever the lock
//     algorithm (the adapters below erase the template).
//   * TrafficScenario — an operation mix (percentages, Zipfian skew,
//     scan depth, periodic write bursts) plus the four named
//     scenarios the bench sweeps: read-heavy, scan-heavy, hot-key,
//     write-burst.
//   * ZipfianGenerator — YCSB-style skewed key popularity with
//     scrambled ranks, so "hot" keys spread across shards instead of
//     colliding in one.
//   * run_traffic() — the batched client loop: each client thread
//     composes batches of operations from the scenario mix and times
//     each batch, reporting aggregate throughput plus a merged
//     batch-latency histogram (µs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "minikv/db.hpp"
#include "minikv/sharded_db.hpp"
#include "minikv/slice.hpp"
#include "minikv/status.hpp"
#include "runtime/prng.hpp"
#include "stats/histogram.hpp"

namespace hemlock::minikv {

/// Type-erased KV surface the traffic driver measures. Implementations
/// must be safe for concurrent calls from many client threads.
class KvBackend {
 public:
  virtual ~KvBackend() = default;

  virtual Status get(const Slice& key, std::string* value) = 0;
  virtual Status put(const Slice& key, const Slice& value) = 0;
  /// Remove `key`. Backends without native deletes (the central DB)
  /// degrade to an overwrite — still a write of the same weight, so
  /// the traffic mix stays comparable (and supports_delete() tells
  /// correctness tests which semantics to assert).
  virtual Status del(const Slice& key) = 0;
  virtual std::size_t scan(const Slice& start, std::size_t limit,
                           std::vector<std::pair<std::string, std::string>>*
                               out) = 0;
  virtual bool supports_delete() const = 0;
  /// Freeze buffered writes into tables (fill_backend calls this once
  /// after populating, matching the Figure-8 fillseq protocol).
  virtual void flush() = 0;
};

/// Central-mutex DB<Lock> as a traffic target (the baseline).
template <BasicLockable L>
class CentralBackend final : public KvBackend {
 public:
  explicit CentralBackend(DB<L>& db) : db_(db) {}

  Status get(const Slice& key, std::string* value) override {
    return db_.get(key, value);
  }
  Status put(const Slice& key, const Slice& value) override {
    return db_.put(key, value);
  }
  Status del(const Slice& key) override {
    return db_.put(key, Slice());  // no native delete: overwrite-empty
  }
  std::size_t scan(
      const Slice& start, std::size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) override {
    return db_.scan(start, limit, out);
  }
  bool supports_delete() const override { return false; }
  void flush() override { db_.flush(); }

 private:
  DB<L>& db_;
};

/// Sharded serving layer as a traffic target (epoch or locked reads,
/// per the ShardedDB's own options).
template <BasicLockable L = AnyLock>
class ShardedBackend final : public KvBackend {
 public:
  explicit ShardedBackend(ShardedDB<L>& db) : db_(db) {}

  Status get(const Slice& key, std::string* value) override {
    return db_.get(key, value);
  }
  Status put(const Slice& key, const Slice& value) override {
    return db_.put(key, value);
  }
  Status del(const Slice& key) override { return db_.del(key); }
  std::size_t scan(
      const Slice& start, std::size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) override {
    return db_.scan(start, limit, out);
  }
  bool supports_delete() const override { return true; }
  void flush() override { db_.flush(); }

 private:
  ShardedDB<L>& db_;
};

/// YCSB-style Zipfian key popularity (Gray et al.'s rejection-free
/// formula, as popularized by YCSB's ZipfianGenerator), with ranks
/// scrambled through SplitMix64 so popular keys land on unrelated
/// shards/blocks instead of clustering at the keyspace origin.
class ZipfianGenerator {
 public:
  /// Popularity over `items` keys with skew `theta` in (0,1); YCSB's
  /// default 0.99 concentrates ~50% of draws on <1% of keys.
  ZipfianGenerator(std::uint64_t items, double theta, std::uint64_t seed);

  /// Next key index in [0, items), scrambled.
  std::uint64_t next();

 private:
  std::uint64_t items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Xoshiro256 prng_;
};

/// One operation mix. Percentages are out of 100; the remainder after
/// scans/puts/deletes is reads.
struct TrafficScenario {
  std::string_view name;
  std::uint32_t scan_pct = 0;
  std::uint32_t put_pct = 0;
  std::uint32_t del_pct = 0;
  /// 0 = uniform key popularity; otherwise YCSB Zipfian skew.
  double zipf_theta = 0.0;
  /// Entries per scan.
  std::size_t scan_limit = 32;
  /// Every Nth batch is ALL writes (0 = never) — the write-burst
  /// pattern of upstream cache-fill / bulk-load traffic.
  std::uint32_t burst_every = 0;
};

/// The four scenarios the bench and CI sweep:
/// read-heavy (95/5 uniform), scan-heavy, hot-key (Zipf 0.99) and
/// write-burst (every 8th batch all-write, with deletes).
const std::vector<TrafficScenario>& default_traffic_scenarios();

/// By-name lookup into default_traffic_scenarios(); nullptr if absent.
const TrafficScenario* find_traffic_scenario(std::string_view name);

/// Client-harness knobs.
struct TrafficConfig {
  std::uint32_t threads = 1;
  std::int64_t duration_ms = 1000;
  std::uint64_t num_keys = 100000;  ///< keyspace (pre-filled by caller)
  std::size_t value_size = 100;
  std::size_t batch_size = 32;  ///< operations composed per batch
  std::uint64_t seed = 0x7AF1C0DE5EEDULL;
};

/// Aggregate outcome of one traffic run.
struct TrafficResult {
  std::uint64_t gets = 0;
  std::uint64_t scans = 0;
  std::uint64_t puts = 0;
  std::uint64_t dels = 0;
  std::uint64_t found = 0;  ///< gets that hit a live key
  std::int64_t elapsed_ns = 0;
  /// Per-batch latency, microseconds, merged across clients.
  Histogram batch_us;

  std::uint64_t total_ops() const { return gets + scans + puts + dels; }
  /// Millions of operations per second (a scan of k entries counts as
  /// one operation — it is one request).
  double mops_per_sec() const;
};

/// Run `scenario` against `kv` with `cfg.threads` batched clients for
/// the configured duration. The caller pre-fills the keyspace (see
/// fill_backend); client writes stay inside [0, num_keys).
TrafficResult run_traffic(KvBackend& kv, const TrafficScenario& scenario,
                          const TrafficConfig& cfg);

/// fillseq for any backend: keys [0, n) (bench_key format) from one
/// thread, then a flush if the backend buffers.
void fill_backend(KvBackend& kv, std::uint64_t n, std::size_t value_size);

}  // namespace hemlock::minikv
