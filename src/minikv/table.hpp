// table.hpp — immutable sorted tables ("SSTables") for flushed data.
//
// When the memtable reaches its flush threshold the DB freezes it
// into an ImmutableTable: entries packed into fixed-fanout blocks
// with a sparse index of block-first-keys. Point lookups binary
// search the index, fetch the block (through the DB's block cache —
// cache.hpp), and binary search inside it. This mirrors LevelDB's
// table/block/cache structure closely enough that the Figure-8
// readrandom workload exercises the same code shape: a short central-
// mutex critical section, then block-cache + search work outside it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "minikv/slice.hpp"

namespace hemlock::minikv {

/// A decoded block: a sorted run of key/value pairs. Blocks are
/// immutable and shared via shared_ptr (the block cache hands out
/// references that outlive evictions).
struct Block {
  std::vector<std::pair<std::string, std::string>> entries;

  /// Binary search inside the block.
  bool get(const Slice& key, std::string* value) const;

  /// Approximate byte charge for cache accounting.
  std::size_t charge() const;
};

/// Immutable sorted table built from a memtable snapshot.
class ImmutableTable {
 public:
  /// Build from sorted, de-duplicated entries (memtable snapshot).
  /// `id` must be process-unique (block-cache key space).
  ImmutableTable(std::uint64_t id,
                 std::vector<std::pair<std::string, std::string>> sorted,
                 std::size_t block_fanout = kDefaultBlockFanout);

  ImmutableTable(const ImmutableTable&) = delete;
  ImmutableTable& operator=(const ImmutableTable&) = delete;

  /// Process-unique table id.
  std::uint64_t id() const { return id_; }
  /// Number of blocks.
  std::size_t num_blocks() const { return blocks_.size(); }
  /// Total number of entries.
  std::size_t num_entries() const { return entries_; }

  /// Index of the block that could contain `key`, or -1 when out of
  /// range (key below the table's first key or table empty).
  std::int64_t block_for(const Slice& key) const;

  /// Materialize block `idx` (the cache-miss path: in LevelDB this is
  /// a disk read + decode; here it is a copy out of the table's
  /// storage, preserving the cost asymmetry vs. a cache hit).
  std::shared_ptr<Block> read_block(std::size_t idx) const;

  /// First key of the table (empty if no entries).
  const std::string& smallest() const { return smallest_; }
  /// Last key of the table.
  const std::string& largest() const { return largest_; }

  static constexpr std::size_t kDefaultBlockFanout = 16;

 private:
  std::uint64_t id_;
  std::size_t entries_;
  std::string smallest_, largest_;
  // block_first_keys_[i] is the first key in blocks_[i]; sorted.
  std::vector<std::string> block_first_keys_;
  std::vector<std::vector<std::pair<std::string, std::string>>> blocks_;
};

/// Version: the immutable set of tables current at some instant.
/// Snapshotted under a DB's central (or shard) lock, searched outside
/// it — newest table first, exactly LevelDB's read path across
/// levels. (Declared here, next to the tables it aggregates, so the
/// single-lock DB, the sharded DB and the merge-scan helper all share
/// one definition.)
struct TableVersion {
  std::vector<std::shared_ptr<ImmutableTable>> tables;  // newest first
};

}  // namespace hemlock::minikv
