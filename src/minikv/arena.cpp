#include "minikv/arena.hpp"

#include <cassert>

namespace hemlock::minikv {

Arena::Arena() = default;

Arena::~Arena() {
  for (char* b : blocks_) delete[] b;
}

char* Arena::allocate(std::size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_remaining_ -= bytes;
    return result;
  }
  return allocate_fallback(bytes);
}

char* Arena::allocate_aligned(std::size_t bytes) {
  constexpr std::size_t kAlign = alignof(void*);
  const std::size_t mod =
      reinterpret_cast<std::uintptr_t>(alloc_ptr_) & (kAlign - 1);
  const std::size_t slop = (mod == 0 ? 0 : kAlign - mod);
  const std::size_t needed = bytes + slop;
  if (needed <= alloc_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_remaining_ -= needed;
    return result;
  }
  // Fresh blocks from new[] are suitably aligned already.
  return allocate_fallback(bytes);
}

char* Arena::allocate_fallback(std::size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocations get their own block so the current block's
    // remaining space is not wasted.
    return allocate_new_block(bytes);
  }
  alloc_ptr_ = allocate_new_block(kBlockSize);
  alloc_remaining_ = kBlockSize;
  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_remaining_ -= bytes;
  return result;
}

char* Arena::allocate_new_block(std::size_t block_bytes) {
  char* block = new char[block_bytes];
  blocks_.push_back(block);
  // mo: relaxed — monotonic footprint counter; threshold checks
  // tolerate staleness.
  memory_usage_.fetch_add(block_bytes + sizeof(char*),
                          std::memory_order_relaxed);
  return block;
}

}  // namespace hemlock::minikv
