// slice.hpp — non-owning byte-string view, LevelDB-style.
//
// MiniKV is this repository's stand-in for the paper's LevelDB 1.20
// workload (Figure 8, §5.4). Slice mirrors leveldb::Slice: a cheap
// (pointer, length) view used across the memtable, table and cache
// layers so lookups never copy keys.
#pragma once

#include <cstring>
#include <string>
#include <string_view>

namespace hemlock::minikv {

/// Non-owning view of a byte string. The referenced storage must
/// outlive the Slice (typical sources: arena-allocated entries,
/// std::string locals held across the call).
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, std::size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  /// Pointer to the first byte.
  const char* data() const { return data_; }
  /// Length in bytes.
  std::size_t size() const { return size_; }
  /// True when empty.
  bool empty() const { return size_ == 0; }

  /// Byte at index i (no bounds check beyond assertions in callers).
  char operator[](std::size_t i) const { return data_[i]; }

  /// Drop the first n bytes from the view.
  void remove_prefix(std::size_t n) {
    data_ += n;
    size_ -= n;
  }

  /// Owned copy.
  std::string to_string() const { return std::string(data_, size_); }
  /// std::string_view of the same bytes.
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way byte-wise comparison (<0, 0, >0), memcmp semantics.
  int compare(const Slice& b) const {
    const std::size_t n = size_ < b.size_ ? size_ : b.size_;
    int r = std::memcmp(data_, b.data_, n);
    if (r == 0) {
      if (size_ < b.size_) r = -1;
      else if (size_ > b.size_) r = +1;
    }
    return r;
  }

  /// True when `x` is a prefix of this slice.
  bool starts_with(const Slice& x) const {
    return size_ >= x.size_ && std::memcmp(data_, x.data_, x.size_) == 0;
  }

 private:
  const char* data_;
  std::size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

}  // namespace hemlock::minikv
