// traffic.cpp — the batched mixed-traffic client harness.

#include "minikv/traffic.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "minikv/db_bench.hpp"  // bench_key
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/thread_rec.hpp"
#include "runtime/timing.hpp"

namespace hemlock::minikv {

// ---- Zipfian key popularity -------------------------------------------

ZipfianGenerator::ZipfianGenerator(std::uint64_t items, double theta,
                                   std::uint64_t seed)
    : items_(items), theta_(theta), prng_(seed) {
  // zeta(n) = sum 1/i^theta — O(n) once per generator; the traffic
  // keyspaces (1e5-ish) make this microseconds, not a hot path.
  double zetan = 0.0;
  for (std::uint64_t i = 1; i <= items_; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  zetan_ = zetan;
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = 1.0 + std::pow(0.5, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfianGenerator::next() {
  // Gray et al.'s closed-form inverse (the YCSB implementation).
  constexpr double kInv = 1.0 / 18446744073709551616.0;  // 2^-64
  const double u = (static_cast<double>(prng_.next()) + 0.5) * kInv;
  const double uz = u * zetan_;
  std::uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<std::uint64_t>(
        static_cast<double>(items_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= items_) rank = items_ - 1;
  }
  // Scramble: popularity attaches to ranks, the scramble decides
  // WHICH keys are popular — spreading the hot set across shards and
  // table blocks the way real key hashes do.
  return SplitMix64(rank).next() % items_;
}

// ---- scenarios --------------------------------------------------------

const std::vector<TrafficScenario>& default_traffic_scenarios() {
  static const std::vector<TrafficScenario> kScenarios = {
      // 95% point reads / 5% writes, uniform keys: the classic serving
      // mix where epoch-protected lock-free reads should dominate.
      {.name = "read-heavy", .put_pct = 5},
      // Range-scan heavy: scans hold the epoch (or shard lock) far
      // longer than a point get — the reclamation-pressure scenario.
      {.name = "scan-heavy", .scan_pct = 30, .put_pct = 10,
       .scan_limit = 32},
      // YCSB-default Zipfian skew: a handful of hot keys, so a central
      // lock convoys on the hot shard's traffic too.
      {.name = "hot-key", .put_pct = 10, .zipf_theta = 0.99},
      // Mostly-read steady state punctuated by all-write batches
      // (cache refill / bulk load); deletes exercise tombstones.
      {.name = "write-burst", .put_pct = 10, .del_pct = 5,
       .burst_every = 8},
  };
  return kScenarios;
}

const TrafficScenario* find_traffic_scenario(std::string_view name) {
  for (const auto& s : default_traffic_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---- the batched client loop ------------------------------------------

double TrafficResult::mops_per_sec() const {
  return ops_per_sec(total_ops(), elapsed_ns) / 1e6;
}

namespace {

/// Per-thread tallies, cache-padded (written every batch).
struct alignas(kCacheLineSize) ClientCounters {
  std::uint64_t gets = 0, scans = 0, puts = 0, dels = 0, found = 0;
  Histogram batch_us;
};

}  // namespace

TrafficResult run_traffic(KvBackend& kv, const TrafficScenario& scenario,
                          const TrafficConfig& cfg) {
  struct Shared {
    CacheAligned<std::atomic<bool>> stop{false};
    SpinBarrier barrier;
    explicit Shared(std::uint32_t parties) : barrier(parties) {}
  };
  auto shared = std::make_unique<Shared>(cfg.threads + 1);
  std::vector<ClientCounters> counters(cfg.threads);

  const std::string value(cfg.value_size, 'v');
  std::vector<std::thread> clients;
  clients.reserve(cfg.threads);
  for (std::uint32_t t = 0; t < cfg.threads; ++t) {
    clients.emplace_back([&, t] {
      (void)self();  // register the thread record (epoch slot lives there)
      ClientCounters& c = counters[t];
      Xoshiro256 prng(cfg.seed + 0x9E3779B9ULL * (t + 1));
      std::unique_ptr<ZipfianGenerator> zipf;
      if (scenario.zipf_theta > 0.0) {
        zipf = std::make_unique<ZipfianGenerator>(
            cfg.num_keys, scenario.zipf_theta, cfg.seed ^ (t + 1));
      }
      auto next_key = [&]() -> std::uint64_t {
        return zipf != nullptr ? zipf->next() : prng.below64(cfg.num_keys);
      };
      std::string got;
      std::vector<std::pair<std::string, std::string>> range;
      std::uint64_t batch_index = 0;
      shared->barrier.arrive_and_wait();
      // mo: relaxed — advisory stop flag; the barrier synchronizes.
      while (!shared->stop.value.load(std::memory_order_relaxed)) {
        // Compose the batch up front (op kinds + keys) so the timed
        // region below measures the KV layer, not the PRNG.
        const bool burst = scenario.burst_every != 0 &&
                           (++batch_index % scenario.burst_every) == 0;
        const std::int64_t begin = now_ns();
        for (std::size_t i = 0; i < cfg.batch_size; ++i) {
          const std::uint64_t k = next_key();
          const std::uint32_t roll = burst ? 0 : prng.below(100);
          if (burst || roll < scenario.put_pct) {
            (void)kv.put(bench_key(k), value);
            ++c.puts;
          } else if (roll < scenario.put_pct + scenario.del_pct) {
            (void)kv.del(bench_key(k));
            ++c.dels;
          } else if (roll <
                     scenario.put_pct + scenario.del_pct + scenario.scan_pct) {
            (void)kv.scan(bench_key(k), scenario.scan_limit, &range);
            ++c.scans;
          } else {
            if (kv.get(bench_key(k), &got).is_ok()) ++c.found;
            ++c.gets;
          }
        }
        const std::int64_t elapsed = now_ns() - begin;
        c.batch_us.record(static_cast<std::uint64_t>(elapsed / 1000));
      }
      shared->barrier.arrive_and_wait();
    });
  }

  shared->barrier.arrive_and_wait();
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  // mo: relaxed — advisory stop flag; the barrier synchronizes.
  shared->stop.value.store(true, std::memory_order_relaxed);
  shared->barrier.arrive_and_wait();
  const std::int64_t elapsed = timer.elapsed_ns();
  for (auto& w : clients) w.join();

  TrafficResult res;
  res.elapsed_ns = elapsed;
  for (const auto& c : counters) {
    res.gets += c.gets;
    res.scans += c.scans;
    res.puts += c.puts;
    res.dels += c.dels;
    res.found += c.found;
    res.batch_us.merge(c.batch_us);
  }
  return res;
}

void fill_backend(KvBackend& kv, std::uint64_t n, std::size_t value_size) {
  const std::string value(value_size, 'v');
  for (std::uint64_t k = 0; k < n; ++k) {
    (void)kv.put(bench_key(k), value);
  }
  kv.flush();
}

}  // namespace hemlock::minikv
