// sharded_db.cpp — out-of-line instantiation of the serving layer's
// default configuration.
//
// ShardedDB is header-only by nature (the shard lock is a template
// parameter), but the configuration every runtime consumer uses —
// ShardedDB<AnyLock>, algorithm chosen by factory name — is
// instantiated once here so the bench drivers, examples and tests
// link against a single compiled copy instead of each re-deriving
// ~all of the minikv + reclaim headers.

#include "minikv/sharded_db.hpp"

namespace hemlock::minikv {

template class ShardedDB<AnyLock>;

}  // namespace hemlock::minikv
