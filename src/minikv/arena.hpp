// arena.hpp — bump allocator backing the memtable's skiplist.
//
// Mirrors leveldb::Arena: allocation is a pointer bump within 4KB
// blocks; memory is reclaimed wholesale when the memtable is dropped.
// Nodes allocated here are immutable once published to readers, which
// is what lets Get() run outside the DB's central mutex.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hemlock::minikv {

/// Block-based bump allocator. Allocation is NOT thread-safe (MiniKV
/// serializes writers under the DB mutex, as LevelDB does); memory
/// usage accounting is readable concurrently.
class Arena {
 public:
  Arena();
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `bytes` (unaligned tail packing within the block).
  char* allocate(std::size_t bytes);

  /// Allocate with pointer alignment (for node structures).
  char* allocate_aligned(std::size_t bytes);

  /// Total heap footprint (for flush-threshold decisions); safe to
  /// read from any thread.
  std::size_t memory_usage() const {
    // mo: relaxed — approximate footprint read; see arena.cpp.
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* allocate_fallback(std::size_t bytes);
  char* allocate_new_block(std::size_t block_bytes);

  static constexpr std::size_t kBlockSize = 4096;

  char* alloc_ptr_ = nullptr;
  std::size_t alloc_remaining_ = 0;
  std::vector<char*> blocks_;
  std::atomic<std::size_t> memory_usage_{0};
};

}  // namespace hemlock::minikv
