// db.hpp — the MiniKV database: LevelDB's locking architecture with a
// pluggable central mutex.
//
// This is the Figure-8 substrate. The paper: "LevelDB uses
// coarse-grained locking, protecting the database with a single
// central mutex: DBImpl::Mutex. Profiling indicates contention on
// that lock via leveldb::DBImpl::Get()." DB<Lock> reproduces that
// architecture faithfully:
//
//  * ONE central mutex (the template parameter — Hemlock, MCS, CLH,
//    Ticket, ... are swapped in exactly where the paper's LD_PRELOAD
//    interposition swapped pthread_mutex implementations);
//  * Get() takes the central mutex *briefly* to snapshot the current
//    memtable + table-version (LevelDB: MakeRoomForWrite/Version
//    refs), then searches OUTSIDE the lock — so the benchmark's
//    critical sections are short and arrival-rate-bound, as in the
//    paper's profile;
//  * Put() serializes whole writes under the mutex (LevelDB's writer
//    queue collapses to this under db_bench's single-writer fill);
//  * memtable flushes happen inline under the mutex when the
//    memtable exceeds its budget (no background threads — determinism
//    for tests; the flush is off the readrandom hot path anyway).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "locks/lockable.hpp"
#include "minikv/cache.hpp"
#include "minikv/memtable.hpp"
#include "minikv/scan.hpp"
#include "minikv/slice.hpp"
#include "minikv/status.hpp"
#include "minikv/table.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"

namespace hemlock::minikv {

/// DB tuning knobs (a small subset of leveldb::Options).
struct DbOptions {
  /// Memtable budget before an inline flush to an immutable table.
  std::size_t write_buffer_bytes = 1 << 20;  // 1 MiB
  /// Block cache capacity. Sized to hold db_bench-scale working sets:
  /// LevelDB's reads are effectively memory-speed in the paper's
  /// Figure-8 runs (the OS page cache holds the whole database), and
  /// the benchmark's subject is the central mutex, not disk I/O.
  std::size_t block_cache_bytes = 256 << 20;  // 256 MiB
  /// Entries per table block.
  std::size_t block_fanout = ImmutableTable::kDefaultBlockFanout;
  /// Merge all immutable tables into one when their count exceeds
  /// this (MiniKV's stand-in for LevelDB's compaction, keeping the
  /// read path's table fan-out bounded).
  std::size_t compaction_trigger = 8;
};

// (TableVersion — the immutable table set snapshotted under the
// central mutex — now lives in minikv/table.hpp, shared with the
// sharded serving layer and the merge-scan helper.)

/// MiniKV database with central mutex of type CentralLock.
template <BasicLockable CentralLock>
class DB {
 public:
  explicit DB(DbOptions options = DbOptions{})
      : options_(options),
        cache_(options.block_cache_bytes),
        mem_(std::make_shared<MemTable>()),
        version_(std::make_shared<TableVersion>()) {}

  /// As above, forwarding `lock_args` to the central mutex's
  /// constructor — how a type-erased CentralLock (AnyLock) names its
  /// algorithm at run time: DB<AnyLock> db(DbOptions{}, "mcs");
  template <typename... LockArgs>
    requires(sizeof...(LockArgs) > 0)
  explicit DB(DbOptions options, LockArgs&&... lock_args)
      : options_(options),
        mu_(std::forward<LockArgs>(lock_args)...),
        cache_(options.block_cache_bytes),
        mem_(std::make_shared<MemTable>()),
        version_(std::make_shared<TableVersion>()) {}

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  /// Insert or overwrite key -> value.
  Status put(const Slice& key, const Slice& value) {
    LockGuard<CentralLock> g(mu_.value);
    mem_->add(next_seq_++, key, value);
    if (mem_->approximate_memory_usage() >= options_.write_buffer_bytes) {
      flush_memtable_locked();
    }
    return Status::ok();
  }

  /// Point lookup. The central-mutex critical section is only the
  /// snapshot of (memtable, version); the search runs unlocked. When
  /// the central lock has a shared mode (an rwlock, or an AnyLock
  /// naming one), the snapshot is taken as a *reader* — concurrent
  /// gets no longer serialize on the paper's Figure-8 bottleneck; the
  /// two shared_ptr copies are safe under shared holds because every
  /// mutator of mem_/version_ runs under the exclusive mode.
  Status get(const Slice& key, std::string* value) {
    std::shared_ptr<MemTable> mem;
    std::shared_ptr<TableVersion> version;
    if constexpr (SharedLockable<CentralLock>) {
      SharedLockGuard<CentralLock> g(mu_.value);  // DBImpl::Mutex, shared
      mem = mem_;
      version = version_;
    } else {
      LockGuard<CentralLock> g(mu_.value);  // DBImpl::Mutex
      mem = mem_;
      version = version_;
    }
    if (mem->get(key, value)) return Status::ok();
    for (const auto& table : version->tables) {  // newest first
      // Key-range filter, as LevelDB's Version::Get does per table
      // file — fillseq produces disjoint table ranges, so this keeps
      // the read path at ~one candidate table per lookup.
      if (key.compare(table->smallest()) < 0 ||
          key.compare(table->largest()) > 0) {
        continue;
      }
      if (table_get(*table, key, value)) return Status::ok();
    }
    return Status::not_found();
  }

  /// Range scan: up to `limit` entries with key >= `start`, ascending,
  /// newest version per key. Same locking shape as get(): the central
  /// mutex covers only the (memtable, version) snapshot — shared mode
  /// when the lock has one — and the k-way merge runs unlocked over
  /// the immutable snapshot.
  std::size_t scan(const Slice& start, std::size_t limit,
                   std::vector<std::pair<std::string, std::string>>* out) {
    out->clear();
    if (limit == 0) return 0;
    std::shared_ptr<MemTable> mem;
    std::shared_ptr<TableVersion> version;
    if constexpr (SharedLockable<CentralLock>) {
      SharedLockGuard<CentralLock> g(mu_.value);
      mem = mem_;
      version = version_;
    } else {
      LockGuard<CentralLock> g(mu_.value);
      mem = mem_;
      version = version_;
    }
    auto fetch = [this](const ImmutableTable& t, std::size_t b) {
      return read_block_cached(t, b);
    };
    merge_scan(*mem, *version, start, fetch,
               [&](const Slice& k, const Slice& v) {
                 out->emplace_back(k.to_string(), v.to_string());
                 return out->size() < limit;
               });
    return out->size();
  }

  /// Force the current memtable into an immutable table.
  void flush() {
    LockGuard<CentralLock> g(mu_.value);
    flush_memtable_locked();
  }

  /// Number of immutable tables (diagnostics/tests).
  std::size_t num_tables() {
    LockGuard<CentralLock> g(mu_.value);
    return version_->tables.size();
  }

  /// Entries currently buffered in the active memtable.
  std::size_t memtable_entries() {
    LockGuard<CentralLock> g(mu_.value);
    return mem_->entries();
  }

  /// Block cache statistics (hit ratio sanity in tests/benches).
  std::uint64_t cache_hits() const { return cache_.hits(); }
  std::uint64_t cache_misses() const { return cache_.misses(); }
  /// Number of merge compactions performed. Takes the central mutex:
  /// compactions_ is mu_-guarded, and a torn unlocked read of a
  /// 64-bit counter is exactly the discipline slip the analysis exists
  /// to catch.
  std::uint64_t compactions() {
    LockGuard<CentralLock> g(mu_.value);
    return compactions_;
  }

 private:
  /// REQUIRES: central mutex held.
  void flush_memtable_locked() HEMLOCK_REQUIRES(mu_.value) {
    if (mem_->entries() == 0) return;
    auto sorted = mem_->snapshot_sorted();
    auto table = std::make_shared<ImmutableTable>(
        next_table_id_++, std::move(sorted), options_.block_fanout);
    // Copy-on-write version bump: concurrent readers keep their
    // snapshot; new readers see the new table first.
    auto next = std::make_shared<TableVersion>();
    next->tables.reserve(version_->tables.size() + 1);
    next->tables.push_back(std::move(table));
    for (const auto& t : version_->tables) next->tables.push_back(t);
    if (next->tables.size() > options_.compaction_trigger) {
      compact_locked(next.get());
    }
    version_ = std::move(next);
    mem_ = std::make_shared<MemTable>();
  }

  /// Full merge compaction: fold every table (newest wins per key)
  /// into a single replacement table. REQUIRES: central mutex held;
  /// `v` not yet published (readers keep their old snapshots).
  void compact_locked(TableVersion* v) HEMLOCK_REQUIRES(mu_.value) {
    std::vector<std::pair<std::string, std::string>> merged;
    std::unordered_set<std::string> seen;
    for (const auto& table : v->tables) {  // newest first: first wins
      for (std::size_t b = 0; b < table->num_blocks(); ++b) {
        const auto block = table->read_block(b);
        for (const auto& [k, val] : block->entries) {
          if (seen.insert(k).second) merged.emplace_back(k, val);
        }
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) {
                return Slice(a.first).compare(Slice(b.first)) < 0;
              });
    auto compacted = std::make_shared<ImmutableTable>(
        next_table_id_++, std::move(merged), options_.block_fanout);
    v->tables.clear();
    v->tables.push_back(std::move(compacted));
    ++compactions_;
  }

  /// Materialize one table block through the block cache (unlocked;
  /// the cache's own lookup path is a shared acquisition, so this
  /// never re-serializes concurrent shared-mode readers on a hit).
  std::shared_ptr<Block> read_block_cached(const ImmutableTable& table,
                                           std::size_t idx) {
    const BlockKey bkey{table.id(), static_cast<std::uint32_t>(idx)};
    std::shared_ptr<Block> block = cache_.lookup(bkey);
    if (block == nullptr) {
      block = table.read_block(idx);
      cache_.insert(bkey, block, block->charge());
    }
    return block;
  }

  /// Search one table through the block cache (unlocked).
  bool table_get(const ImmutableTable& table, const Slice& key,
                 std::string* value) {
    const std::int64_t idx = table.block_for(key);
    if (idx < 0) return false;
    return read_block_cached(table, static_cast<std::size_t>(idx))
        ->get(key, value);
  }

  DbOptions options_;
  CacheAligned<CentralLock> mu_;  ///< THE central mutex (DBImpl::Mutex)
  ShardedLruCache<Block> cache_;

  // All fields below are protected by mu_ (readers snapshot the two
  // shared_ptrs under mu_ and then operate on immutable state).
  std::shared_ptr<MemTable> mem_ HEMLOCK_GUARDED_BY(mu_.value);
  std::shared_ptr<TableVersion> version_ HEMLOCK_GUARDED_BY(mu_.value);
  std::uint64_t next_seq_ HEMLOCK_GUARDED_BY(mu_.value) = 1;
  std::uint64_t next_table_id_ HEMLOCK_GUARDED_BY(mu_.value) = 1;
  std::uint64_t compactions_ HEMLOCK_GUARDED_BY(mu_.value) = 0;
};

}  // namespace hemlock::minikv
