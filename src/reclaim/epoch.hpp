// epoch.hpp — epoch-based memory reclamation (EBR/QSBR) for lock-free
// readers.
//
// The sharded MiniKV serving layer (minikv/sharded_db.hpp) lets Get()
// traverse a shard's memtable and table version WITHOUT holding any
// lock; the structures it walks are replaced (flush, compaction) by
// writers that still hold the shard lock. Something must defer the
// frees until every such reader is done. This module is that
// something: classic three-epoch reclamation in the style of Fraser's
// EBR / Linux RCU-sched.
//
//   * Readers bracket their traversal with enter()/exit() (or the
//     EpochGuard RAII). enter() publishes the current global epoch
//     into the calling thread's ThreadRec announcement slot; exit()
//     clears it. The per-thread state lives in runtime/thread_rec.hpp
//     (one cache-aligned word per domain), so readers never contend
//     on shared reclamation state.
//   * Writers retire(ptr, deleter) garbage after unlinking it. The
//     object is stamped with the current global epoch and parked on
//     the domain's limbo list.
//   * Anyone may try_advance(): the global epoch moves from E to E+1
//     only when every thread announcing an epoch announces exactly E
//     (a thread still at E-1 could hold references unlinked two
//     epochs back). Garbage retired at epoch R is freed once the
//     global epoch reaches R+2 — by then every reader that could have
//     observed the object has exited.
//   * drain(max) bounds reclamation work per call (the serving layer
//     calls it from write paths; an unbounded free storm there would
//     turn a put() into a latency cliff).
//
// A stalled reader never deadlocks the domain: advance attempts
// simply fail (counted in DomainStats::advance_blocked) and garbage
// accumulates (DomainStats::pending) until the reader exits. That
// bounded-interference contract is what tests/test_reclaim.cpp pins
// down.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/thread_rec.hpp"

namespace hemlock::reclaim {

/// Observable state of a domain, for tests and ops dashboards.
struct DomainStats {
  std::uint64_t epoch = 0;            ///< current global epoch
  std::uint64_t pending = 0;          ///< retired, not yet freed
  std::uint64_t freed = 0;            ///< total objects reclaimed
  std::uint64_t advances = 0;         ///< successful epoch advances
  std::uint64_t advance_blocked = 0;  ///< advance attempts refused by a
                                      ///< still-active reader
};

/// One independent reclamation domain. Each domain claims a slot in
/// every ThreadRec's announcement array (ThreadRec::kMaxEpochDomains
/// bounds how many domains can coexist); threads participate
/// automatically the first time they enter — registration IS the
/// thread's ThreadRec, no separate reader registry exists.
///
/// Thread-safety: enter/exit/retire/try_advance/drain/stats may be
/// called concurrently from any threads. The destructor requires the
/// domain quiesced (no thread in an epoch, no concurrent calls); it
/// frees everything still on the limbo list.
class EpochDomain {
 public:
  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Enter a read-side critical section: pin the current epoch.
  /// Nestable; only the outermost enter publishes.
  void enter() noexcept;
  /// Leave the read-side critical section (outermost exit clears the
  /// announcement, making the thread quiescent in this domain).
  void exit() noexcept;
  /// Whether the calling thread is currently inside this domain.
  bool in_epoch() const noexcept;

  /// Defer `deleter(p)` until no reader can still hold a reference.
  /// Call AFTER unlinking `p` from the shared structure. Never frees
  /// inline; never blocks on readers.
  void retire(void* p, void (*deleter)(void*));

  /// Typed convenience: defers `delete static_cast<T*>(p)`.
  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p),
           [](void* q) { delete static_cast<T*>(q); });
  }

  /// Attempt one epoch advance. Returns true when the epoch moved.
  /// Fails (and counts advance_blocked) while any thread announces an
  /// epoch older than the current one — the stalled-reader case.
  bool try_advance() noexcept;

  /// Advance if possible, then free up to `max_frees` safe retirees
  /// (retired two or more epochs ago). Returns the number freed.
  /// Bounded: a single call never does more than one advance attempt
  /// plus `max_frees` deleter invocations.
  std::size_t drain(std::size_t max_frees = kDefaultDrainBatch);

  /// Current counters (pending/freed/advances are exact; epoch is a
  /// racy snapshot by nature).
  DomainStats stats() const;

  /// The process-wide default domain (what ShardedDB uses unless
  /// given its own).
  static EpochDomain& global();

  static constexpr std::size_t kDefaultDrainBatch = 64;

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;  ///< global epoch at retire time
    Retired* next;
  };

  /// Spinlock over the limbo list (retire/drain are rare, off the
  /// read fast path; a raw spinlock keeps this header dependency-free
  /// for the locks the library itself implements).
  void lock_limbo() const noexcept;
  void unlock_limbo() const noexcept;

  std::uint32_t slot_;  ///< index into ThreadRec::epochs
  std::atomic<std::uint64_t> epoch_{1};  ///< 0 is reserved for "quiescent"

  mutable std::atomic<bool> limbo_lock_{false};
  Retired* limbo_head_ = nullptr;  ///< under limbo_lock_
  std::uint64_t pending_ = 0;      ///< under limbo_lock_
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> advances_{0};
  std::atomic<std::uint64_t> advance_blocked_{0};
};

/// RAII read-side section: enters on construction, exits on
/// destruction. The serving layer's Get()/Scan() use this.
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain& domain) noexcept : domain_(domain) {
    domain_.enter();
  }
  ~EpochGuard() { domain_.exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain& domain_;
};

}  // namespace hemlock::reclaim
