#include "reclaim/epoch.hpp"

#include <stdexcept>

#include "runtime/pause.hpp"
#include "stats/telemetry.hpp"

namespace hemlock::reclaim {

namespace {

/// Bitmap of claimed ThreadRec::epochs slots — one bit per live
/// EpochDomain, process-wide.
std::atomic<std::uint32_t> g_domain_slots{0};

}  // namespace

EpochDomain::EpochDomain() {
  // mo: relaxed initial read — the CAS below revalidates it.
  std::uint32_t bits = g_domain_slots.load(std::memory_order_relaxed);
  for (;;) {
    std::uint32_t free_bit = ThreadRec::kMaxEpochDomains;
    for (std::uint32_t i = 0; i < ThreadRec::kMaxEpochDomains; ++i) {
      if ((bits & (1u << i)) == 0) {
        free_bit = i;
        break;
      }
    }
    if (free_bit == ThreadRec::kMaxEpochDomains) {
      throw std::runtime_error(
          "hemlock: EpochDomain slots exhausted (ThreadRec::kMaxEpochDomains "
          "live domains already exist)");
    }
    // mo: acq_rel — claims are ordered against other domains'
    // claims/releases of the same bitmap; failure refreshes `bits`.
    if (g_domain_slots.compare_exchange_weak(bits, bits | (1u << free_bit),
                                             std::memory_order_acq_rel)) {
      slot_ = free_bit;
      return;
    }
    // bits was refreshed by the failed CAS; rescan.
  }
}

EpochDomain::~EpochDomain() {
  // Contract: quiesced (no reader in-epoch, no concurrent calls), so
  // every retiree is safe regardless of its stamp.
  Retired* n = limbo_head_;
  while (n != nullptr) {
    Retired* next = n->next;
    n->deleter(n->ptr);
    delete n;
    n = next;
  }
  limbo_head_ = nullptr;
  // mo: acq_rel — orders this domain's teardown before any successor
  // domain that re-claims the slot (and its epochs column).
  g_domain_slots.fetch_and(~(1u << slot_), std::memory_order_acq_rel);
}

void EpochDomain::enter() noexcept {
  ThreadRec& me = self();
  if (me.epoch_depth[slot_]++ != 0) return;  // nested: already pinned
  auto& announce = me.epochs[slot_].value;
  // mo: acquire — a first guess at the current epoch; the seq_cst
  // announce/recheck loop below does the real synchronization.
  std::uint64_t e = epoch_.load(std::memory_order_acquire);
  for (;;) {
    // seq_cst store/load pair: an advancer either sees this
    // announcement (and refuses to move past e+1) or has already
    // moved the epoch, in which case the recheck re-pins the fresh
    // value — a stale pin would needlessly block future advances.
    // mo: seq_cst announce/recheck — Dekker pair with try_advance's
    // seq_cst epoch-CAS/announcement-scan (see comment above).
    announce.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = epoch_.load(std::memory_order_seq_cst);
    if (now == e) return;
    e = now;
  }
}

void EpochDomain::exit() noexcept {
  ThreadRec& me = self();
  if (--me.epoch_depth[slot_] != 0) return;  // still nested
  // Release: every read the section performed happens-before the
  // quiescence an advancer observes.
  // mo: release (see comment above).
  me.epochs[slot_].value.store(0, std::memory_order_release);
}

bool EpochDomain::in_epoch() const noexcept {
  return self().epoch_depth[slot_] != 0;
}

void EpochDomain::retire(void* p, void (*deleter)(void*)) {
  // The caller's unlink/publication stores must be globally visible
  // before the stamp is read: a stale load yields a SMALLER stamp,
  // which frees EARLIER — a reader pinned at that stale epoch + 1 can
  // still hold the pre-unlink pointer when drain() frees p. The
  // seq_cst fence + load mirror enter()'s announce/recheck pairing and
  // force the store->load ordering plain acquire does not give on TSO.
  // mo: seq_cst fence + load — Dekker-style store->load ordering
  // described above; the stamp must not be read early.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  auto* node = new Retired{p, deleter,
                           // mo: seq_cst stamp (fence pairing above)
                           epoch_.load(std::memory_order_seq_cst), nullptr};
  lock_limbo();
  node->next = limbo_head_;
  limbo_head_ = node;
  ++pending_;
  unlock_limbo();
}

bool EpochDomain::try_advance() noexcept {
  // mo: seq_cst — part of the Dekker pair with enter()'s
  // announce/recheck: the scan below must be ordered after this read.
  const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  bool blocked = false;
  ThreadRegistry::for_each([&](ThreadRec& rec) {
    // mo: seq_cst scan — sees every announcement that the epoch
    // read above did not already supersede (enter()'s recheck).
    const std::uint64_t a =
        rec.epochs[slot_].value.load(std::memory_order_seq_cst);
    // A thread announcing e is current; announcing an older epoch
    // means it may still hold references unlinked two epochs back.
    if (a != 0 && a != e) blocked = true;
  });
  if (blocked) {
    advance_blocked_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
    return false;
  }
  std::uint64_t expected = e;
  // mo: seq_cst advance — totally ordered with announcements so no
  // reader can pin e-1 after the move is visible.
  if (epoch_.compare_exchange_strong(expected, e + 1,
                                     std::memory_order_seq_cst)) {
    advances_.fetch_add(1, std::memory_order_relaxed);  // mo: stats
    HEMLOCK_TM_EPOCH_ADVANCE(e + 1);
    return true;
  }
  return false;  // lost the race to a concurrent advancer
}

std::size_t EpochDomain::drain(std::size_t max_frees) {
  try_advance();
  // mo: acquire — orders our stamp comparisons after the advance
  // (possibly another thread's) that made `safe` current.
  const std::uint64_t safe = epoch_.load(std::memory_order_acquire);
  Retired* to_free = nullptr;
  std::size_t taken = 0;
  lock_limbo();
  Retired** pp = &limbo_head_;
  while (*pp != nullptr && taken < max_frees) {
    Retired* n = *pp;
    if (n->epoch + 2 <= safe) {  // every possible observer has exited
      *pp = n->next;
      n->next = to_free;
      to_free = n;
      ++taken;
    } else {
      pp = &n->next;
    }
  }
  pending_ -= taken;
  unlock_limbo();
  while (to_free != nullptr) {  // deleters run outside the limbo lock
    Retired* n = to_free;
    to_free = n->next;
    n->deleter(n->ptr);
    delete n;
  }
  freed_.fetch_add(taken, std::memory_order_relaxed);  // mo: stats
  return taken;
}

DomainStats EpochDomain::stats() const {
  DomainStats s;
  // mo: acquire — snapshot is ordered after the latest advance.
  s.epoch = epoch_.load(std::memory_order_acquire);
  lock_limbo();
  s.pending = pending_;
  unlock_limbo();
  // mo: relaxed — monotonic stats counters; no ordering implied.
  s.freed = freed_.load(std::memory_order_relaxed);
  s.advances = advances_.load(std::memory_order_relaxed);
  s.advance_blocked = advance_blocked_.load(std::memory_order_relaxed);
  return s;
}

EpochDomain& EpochDomain::global() {
  static EpochDomain domain;
  return domain;
}

void EpochDomain::lock_limbo() const noexcept {
  // mo: acquire TAS — pairs with unlock_limbo's release store; the
  // prior holder's list edits are visible.
  while (limbo_lock_.exchange(true, std::memory_order_acquire)) {
    SpinWait waiter;
    // mo: relaxed TTAS poll — the acquiring exchange re-synchronizes.
    while (limbo_lock_.load(std::memory_order_relaxed)) waiter.wait();
  }
}

void EpochDomain::unlock_limbo() const noexcept {
  // mo: release — publishes this holder's limbo-list edits.
  limbo_lock_.store(false, std::memory_order_release);
}

}  // namespace hemlock::reclaim
