// any_lock.hpp — the type-erased lock: one public type for every
// algorithm in the roster.
//
// The paper's evaluation swaps lock algorithms at run time behind a
// fixed pthread_mutex_t surface (§5); AnyLock is the same idea as a
// first-class C++ object. It satisfies BasicLockable/TryLockable, so
// anything written against the lock concept — LockGuard,
// std::scoped_lock, MiniKV's DB<>, the MutexBench drivers — runs any
// roster algorithm chosen by a runtime string.
//
// Design constraints, in order:
//  * AnyLock itself never allocates: the selected lock is constructed
//    in-place in an inline buffer sized (at compile time) to the
//    largest algorithm in the roster. (A *hosted* lock may allocate in
//    its own constructor — the BoxedLock<> side-storage adapters do,
//    which is why their traits opt out of the interposition shim via
//    pthread_overlay_safe = false.)
//  * One indirect call of overhead: operations dispatch through a
//    static vtable (one per algorithm, function-pointer thunks; see
//    lock_vtable<L>). No RTTI, no virtual bases, no double
//    indirection — bench/bench_any_lock_overhead.cpp measures the
//    tax instead of assuming it.
//  * Descriptors travel with the dispatch table: info() exposes the
//    LockInfo materialized from lock_traits<> so callers can adapt
//    (FIFO-ness, try_lock availability, contender bounds) without
//    knowing the concrete type.
//
// Note on size: the inline-buffer guarantee makes sizeof(AnyLock)
// the roster *maximum*. Bulk-bodied algorithms (Anderson's ~4 KiB
// waiting array, the sharded-ingress rwlock) enter the roster through
// locks/boxed.hpp — erased footprint: one pointer — precisely so that
// maximum stays cacheline-scale and per-shard erased locks (the
// sharded serving layer holds one per shard) cost bytes, not
// kilobytes. Embedders that need Table-1-sized locks use the concrete
// templates directly; AnyLock is the flexibility end of that
// trade-off, matching progress64's stable-C-surface approach.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>

#include "api/lock_info.hpp"
#include "core/lock_registry.hpp"
#include "locks/lockable.hpp"
#include "runtime/annotations.hpp"
#include "stats/telemetry.hpp"

namespace hemlock {

/// Static dispatch table for one lock algorithm: the LockInfo
/// descriptor plus in-place lifecycle and operation thunks over raw
/// storage. The same table serves AnyLock's inline buffer and the
/// interposition shim's pthread_mutex_t overlay — both are "a lock
/// hosted in caller-owned bytes".
struct LockVTable {
  LockInfo info;
  void (*construct)(void* storage);  ///< placement-new a fresh lock
  void (*destroy)(void* storage);    ///< destroy (must be unheld)
  void (*lock)(void* storage);
  void (*unlock)(void* storage);
  /// Non-blocking attempt; algorithms without a native try_lock
  /// (CLH, Anderson — see info.has_trylock) conservatively fail.
  bool (*try_lock)(void* storage);
  /// Shared (reader) mode. Reader-writer algorithms
  /// (info.rwlock_capable) admit concurrent readers here; exclusive
  /// algorithms degrade to their exclusive operations, so the shared
  /// surface is total over the roster (a shared acquire is then just
  /// an exclusive one — the "erased exclusive baseline" rwlock
  /// benches compare against).
  void (*lock_shared)(void* storage);
  void (*unlock_shared)(void* storage);
  bool (*try_lock_shared)(void* storage);
};

namespace detail {

/// Inline-storage geometry over a lock_tag tuple: the buffer must
/// hold the largest, most-aligned algorithm in the roster.
template <typename Tuple>
struct roster_storage;

template <typename... Ls>
struct roster_storage<std::tuple<lock_tag<Ls>...>> {
  static constexpr std::size_t size = std::max({sizeof(Ls)...});
  static constexpr std::size_t align = std::max({alignof(Ls)...});
};

}  // namespace detail

/// Runtime name lookup into the factory roster; nullptr for unknown
/// names. (Defined in factory.cpp — the single name→algorithm
/// dispatch point in the library.)
const LockVTable* find_lock(std::string_view name) noexcept;

/// The algorithm a default-constructed AnyLock (and the interposition
/// shim, absent HEMLOCK_LOCK) selects: the paper's headline lock.
inline constexpr std::string_view kDefaultLockName = "hemlock";

/// A mutual-exclusion lock whose algorithm is chosen at run time by
/// name. Satisfies BasicLockable and TryLockable; pinned to its
/// address like every lock (no copy, no move).
class HEMLOCK_CAPABILITY("mutex") AnyLock {
 public:
  /// Inline buffer geometry, fixed at compile time from the roster.
  static constexpr std::size_t kStorageBytes =
      detail::roster_storage<AllLockTags>::size;
  static constexpr std::size_t kStorageAlign =
      detail::roster_storage<AllLockTags>::align;

  /// The default algorithm ("hemlock").
  AnyLock() : AnyLock(*find_lock(kDefaultLockName)) {}

  /// The named algorithm; throws std::invalid_argument for names not
  /// in the factory roster (use find_lock()/LockFactory::info() for
  /// a non-throwing existence check).
  explicit AnyLock(std::string_view name) : AnyLock(checked(name)) {}

  /// The named algorithm, attributed to `telemetry_name` in the
  /// per-lock telemetry (stats/telemetry.hpp). Locks sharing a
  /// telemetry name share one metrics row — how a sharded structure
  /// reports as a single logical lock. Unnamed AnyLocks stay
  /// unattributed and pay only the hooks' id-zero branch.
  AnyLock(std::string_view name, std::string_view telemetry_name)
      : AnyLock(checked(name), telemetry_name) {}

  /// Direct construction from a factory entry (no lookup).
  explicit AnyLock(const LockVTable& vt) noexcept : vt_(&vt) {
    vt_->construct(storage_);
  }

  /// Factory-entry construction with telemetry attribution.
  AnyLock(const LockVTable& vt, std::string_view telemetry_name) noexcept
      : vt_(&vt), tm_(telemetry::register_handle(telemetry_name)) {
    vt_->construct(storage_);
  }

  /// Destroys the hosted lock. Like every lock in the library, the
  /// lock must be unheld and unawaited.
  ~AnyLock() {
    vt_->destroy(storage_);
    telemetry::release_handle(tm_);
  }

  AnyLock(const AnyLock&) = delete;
  AnyLock& operator=(const AnyLock&) = delete;

  /// Acquire (one indirect call, then the algorithm's own fast path).
  ///
  /// Contract (uniform across the roster):
  ///  * Non-recursive — re-acquiring while holding deadlocks (FIFO
  ///    algorithms self-deadlock behind their own queue entry).
  ///  * Acquire semantics: everything the previous holder wrote
  ///    before its unlock() happens-before this call's return.
  ///  * Blocking behavior is the algorithm's waiting tier. Pure
  ///    busy-wait selections (info().oversub_safe == false) convoy at
  ///    scheduler speed when runnable threads exceed cores — prefer
  ///    the "-adaptive" variant when oversubscription is possible.
  void lock() HEMLOCK_ACQUIRE() {
    telemetry::on_lock_begin(tm_);
    vt_->lock(storage_);
    telemetry::on_lock_acquired(tm_);
  }
  /// Release. Precondition: the calling thread holds the exclusive
  /// lock (POSIX would say EPERM; here it is undefined — queue locks
  /// would hand a grant nobody owns). Release semantics: writes made
  /// while holding are visible to the next acquirer.
  void unlock() HEMLOCK_RELEASE() {
    telemetry::on_unlock_begin(tm_);
    vt_->unlock(storage_);
    telemetry::on_unlock_end(tm_);
  }
  /// Non-blocking attempt; always false when !info().has_trylock
  /// (CLH and Anderson have no native try path — an attempt that
  /// never succeeds, not an error). On true, same ordering and
  /// ownership obligations as lock().
  bool try_lock() HEMLOCK_TRY_ACQUIRE(true) {
    const bool ok = vt_->try_lock(storage_);
    if (ok) {
      telemetry::on_try_acquired(tm_);
    } else {
      telemetry::on_try_failure(tm_);
    }
    return ok;
  }

  /// Shared (reader) acquire. Concurrent readers are admitted only
  /// when info().rwlock_capable; exclusive algorithms serve this as a
  /// plain lock(), so code written against the shared surface runs
  /// any roster algorithm (and an rwlock-aware caller can check the
  /// descriptor to know which semantics it got).
  /// Caveats: recursive shared acquisition can deadlock under the
  /// writer-preferring rwlock family (a waiting writer gates the
  /// re-entry), and holding shared while parked/preempted stalls
  /// writers — epoch-protected reads (src/reclaim/) are the
  /// read-mostly alternative that bounds memory instead of progress.
  void lock_shared() HEMLOCK_ACQUIRE_SHARED() {
    telemetry::on_shared_begin(tm_);
    vt_->lock_shared(storage_);
    telemetry::on_shared_acquired(tm_);
  }
  /// Shared release. Precondition: pairs one-to-one with a successful
  /// lock_shared()/try_lock_shared() by this thread. Release
  /// semantics toward the writer that drains the reader out.
  void unlock_shared() HEMLOCK_RELEASE_SHARED() {
    // Attribution only (reader holds are not timed — see
    // telemetry::on_shared_acquired): the drain hand-off a reader exit
    // can trigger should land on this lock's row.
    telemetry::on_shared_begin(tm_);
    vt_->unlock_shared(storage_);
    telemetry::on_unlock_end(tm_);
  }
  /// Non-blocking shared attempt; same pairing obligation on true.
  bool try_lock_shared() HEMLOCK_TRY_ACQUIRE_SHARED(true) {
    const bool ok = vt_->try_lock_shared(storage_);
    if (ok) {
      telemetry::on_shared_acquired(tm_);
    } else {
      telemetry::on_try_failure(tm_);
    }
    return ok;
  }

  /// The hosted algorithm's descriptor.
  const LockInfo& info() const noexcept { return vt_->info; }
  /// The hosted algorithm's registry name.
  std::string_view name() const noexcept { return vt_->info.name; }
  /// The telemetry attribution handle ({0} when unattributed).
  telemetry::TelemetryHandle telemetry_handle() const noexcept { return tm_; }

 private:
  static const LockVTable& checked(std::string_view name) {
    const LockVTable* vt = find_lock(name);
    if (vt == nullptr) {
      throw std::invalid_argument("hemlock: unknown lock algorithm \"" +
                                  std::string(name) + "\"");
    }
    return *vt;
  }

  const LockVTable* vt_;
  telemetry::TelemetryHandle tm_;  ///< {0} = unattributed
  alignas(kStorageAlign) unsigned char storage_[kStorageBytes];
};

static_assert(BasicLockable<AnyLock>);
static_assert(TryLockable<AnyLock>);
static_assert(SharedLockable<AnyLock>);

/// The erasure thunks for lock type L, and the one static vtable per
/// algorithm that AnyLock instances share.
template <typename L>
struct LockErasure {
  // The in-place guarantee: every algorithm handed to AnyLock must fit
  // the inline buffer. Trivially true for roster members (the buffer
  // is sized from the roster); this is the tripwire for future locks
  // registered without resizing the roster tuple — box oversized
  // bodies via locks/boxed.hpp instead of growing the buffer.
  static_assert(sizeof(L) <= AnyLock::kStorageBytes,
                "AnyLock's inline buffer must fit every registered lock "
                "— box it (locks/boxed.hpp) or add it to AllLockTags");
  static_assert(alignof(L) <= AnyLock::kStorageAlign,
                "AnyLock's inline buffer must satisfy every registered "
                "lock's alignment");
  static_assert(BasicLockable<L>);

  static void construct(void* p) { ::new (p) L(); }
  static void destroy(void* p) { std::destroy_at(static_cast<L*>(p)); }
  // The thunks acquire/release through an erased pointer whose hold
  // outlives the call — capability identity is invisible to the
  // analysis, so the bodies are exempt (the AnyLock surface above
  // carries the contract instead).
  static void do_lock(void* p) HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    static_cast<L*>(p)->lock();
  }
  static void do_unlock(void* p) HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    static_cast<L*>(p)->unlock();
  }
  static bool do_try_lock(void* p) HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    if constexpr (TryLockable<L>) {
      return static_cast<L*>(p)->try_lock();
    } else {
      return false;  // conservative: an attempt that never succeeds
    }
  }
  static void do_lock_shared(void* p) HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    if constexpr (SharedLockable<L>) {
      static_cast<L*>(p)->lock_shared();
    } else {
      static_cast<L*>(p)->lock();  // exclusive fallback (one "reader")
    }
  }
  static void do_unlock_shared(void* p) HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    if constexpr (SharedLockable<L>) {
      static_cast<L*>(p)->unlock_shared();
    } else {
      static_cast<L*>(p)->unlock();
    }
  }
  static bool do_try_lock_shared(void* p) HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    if constexpr (SharedLockable<L>) {
      return static_cast<L*>(p)->try_lock_shared();
    } else {
      return do_try_lock(p);
    }
  }
};

/// The static vtable for lock type L. One per algorithm per process;
/// AnyLock and the shim hold pointers into these.
template <typename L>
inline constexpr LockVTable lock_vtable = {
    make_lock_info<L>(),        &LockErasure<L>::construct,
    &LockErasure<L>::destroy,   &LockErasure<L>::do_lock,
    &LockErasure<L>::do_unlock, &LockErasure<L>::do_try_lock,
    &LockErasure<L>::do_lock_shared,
    &LockErasure<L>::do_unlock_shared,
    &LockErasure<L>::do_try_lock_shared,
};

}  // namespace hemlock
