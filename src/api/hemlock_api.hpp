// hemlock_api.hpp — the library's public surface, one include.
//
//   #include "api/hemlock_api.hpp"
//
//   hemlock::AnyLock lk("mcs");                    // runtime choice
//   hemlock::LockGuard<hemlock::AnyLock> g(lk);    // RAII
//
//   auto& f = hemlock::LockFactory::instance();    // roster queries
//   for (auto name : f.names()) ...
//
// Compile-time users (Table-1-sized locks, zero dispatch) reach the
// concrete templates through the same include: hemlock::Hemlock,
// hemlock::McsLock, ... — everything in AllLockTags.
#pragma once

#include "api/any_lock.hpp"
#include "api/factory.hpp"
#include "api/lock_info.hpp"
#include "core/lock_registry.hpp"
#include "locks/lockable.hpp"
#include "runtime/thread_rec.hpp"
