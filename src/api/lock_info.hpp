// lock_info.hpp — runtime descriptors for lock algorithms.
//
// lock_traits<> (locks/lock_traits.hpp) is compile-time metadata:
// it parameterizes templates and drives static accounting. LockInfo
// is the same metadata *materialized as a value* so that runtime
// consumers — the LockFactory, the interposition shim, benches
// resolving --lock=<name>, tooling printing rosters — can inspect an
// algorithm without naming its type. make_lock_info<L>() is the one
// bridge between the two worlds; nothing else re-states a trait.
#pragma once

#include <cstddef>
#include <string_view>

#include "locks/lock_traits.hpp"

namespace hemlock {

/// Human-readable spinning-class label ("global", "local",
/// "fere-local" — the §3 taxonomy).
constexpr std::string_view spinning_name(Spinning s) noexcept {
  switch (s) {
    case Spinning::kGlobal: return "global";
    case Spinning::kLocal: return "local";
    case Spinning::kFereLocal: return "fere-local";
  }
  return "?";
}

/// Value-form of lock_traits<L>, plus the runtime footprint facts a
/// type-erased holder needs (size/alignment) and two safety bounds
/// that gate where an algorithm may be deployed.
///
/// Semantics every roster member shares regardless of descriptor:
/// lock/unlock pair with acquire/release ordering (a release's
/// critical-section writes happen-before the next acquire's return),
/// acquisition is non-recursive, and unlock must come from the
/// holding thread. The descriptor fields capture where members
/// *differ*: admission order (is_fifo), native try paths
/// (has_trylock), contender bounds (max_threads), shim hostability,
/// and scheduling behavior under oversubscription (oversub_safe —
/// the field to check before deploying on hosts where runnable
/// threads may exceed cores).
struct LockInfo {
  std::string_view name;     ///< lock_traits<L>::name — the registry key
  std::size_t lock_words;    ///< Table 1: lock body size, 8-byte words
  std::size_t held_words;    ///< Table 1: extra space per held lock
  std::size_t wait_words;    ///< Table 1: extra space per waited-on lock
  std::size_t thread_words;  ///< Table 1: per-thread locking state
  bool nontrivial_init;      ///< Table 1: requires non-trivial ctor/dtor
  bool is_fifo;              ///< FIFO admission order
  bool has_trylock;          ///< native non-blocking acquisition
  Spinning spinning;         ///< busy-wait locality class (§3)
  std::size_t size_bytes;    ///< sizeof(L) — concrete storage footprint
  std::size_t align_bytes;   ///< alignof(L)
  /// Upper bound on concurrent contenders (0 = unbounded). Anderson's
  /// waiting array makes this finite; everything else is unbounded.
  /// Hard precondition, not a hint: a bounded algorithm's (max_threads
  /// + 1)-th simultaneous contender overruns the waiting structure
  /// (undefined behavior), so deployers sizing a thread pool off a
  /// roster name must check this field first.
  std::size_t max_threads;
  /// Safe to host inside an interposed pthread_mutex_t. False for
  /// hemlock-ah (Appendix B: speculative unlock store vs POSIX mutex
  /// lifetimes) and hemlock-cv (its parking path uses the very
  /// pthread primitives being interposed).
  bool pthread_overlay_safe;
  /// Safe to back a pthread_cond_* wait through the interposition
  /// shim's condvar overlay (shim_cond): the overlay unlocks the
  /// hosted mutex, sleeps on its own futex words, and re-acquires
  /// through the same vtable — so any overlay-safe algorithm
  /// qualifies unless its traits opt out. Follows pthread_overlay_safe
  /// when the trait does not declare condvar_capable.
  bool condvar_capable;
  /// Native shared (reader) mode: lock_shared / try_lock_shared /
  /// unlock_shared admit concurrent readers. When false, the erased
  /// shared-mode surface still exists but degrades to the exclusive
  /// operations (one "reader" at a time) — how an rwlock bench
  /// baselines against an exclusive lock, and how the descriptor
  /// gates what the pthread_rwlock_t shim may host.
  bool rwlock_capable;
  /// Waiting-policy name: how contenders wait ("spin", "yield",
  /// "park", "adaptive" for the queue-lock tiers; "ctr-cas" / "load" /
  /// "ctr-faa" / "futex" for the Hemlock Grant policies; see
  /// core/waiting.hpp).
  std::string_view waiting;
  /// Oversubscription safety: true when waiters surrender the CPU
  /// (yield or park) instead of burning their timeslice, so the lock
  /// keeps making prompt progress with more runnable threads than
  /// cores. Pure busy-wait algorithms convoy at scheduler speed in
  /// that regime and carry false here.
  bool oversub_safe;
};

/// Materialize the LockInfo for lock type L from lock_traits<L>.
/// The max_threads / pthread_overlay_safe fields come from optional
/// trait members; algorithms that don't declare them get the
/// permissive defaults (unbounded, overlay-safe).
template <typename L>
constexpr LockInfo make_lock_info() noexcept {
  using T = lock_traits<L>;
  LockInfo info{};
  info.name = T::name;
  info.lock_words = T::lock_words;
  info.held_words = T::held_words;
  info.wait_words = T::wait_words;
  info.thread_words = T::thread_words;
  info.nontrivial_init = T::nontrivial_init;
  info.is_fifo = T::is_fifo;
  info.has_trylock = T::has_trylock;
  info.spinning = T::spinning;
  info.size_bytes = sizeof(L);
  info.align_bytes = alignof(L);
  if constexpr (requires { T::max_threads; }) {
    info.max_threads = T::max_threads;
  } else {
    info.max_threads = 0;
  }
  if constexpr (requires { T::pthread_overlay_safe; }) {
    info.pthread_overlay_safe = T::pthread_overlay_safe;
  } else {
    info.pthread_overlay_safe = true;
  }
  if constexpr (requires { T::condvar_capable; }) {
    info.condvar_capable = T::condvar_capable;
  } else {
    info.condvar_capable = info.pthread_overlay_safe;
  }
  info.rwlock_capable = requires(L& l) {
    l.lock_shared();
    l.unlock_shared();
    l.try_lock_shared();
  };
  if constexpr (requires { T::waiting; }) {
    info.waiting = T::waiting;
  } else {
    info.waiting = "spin";  // busy-wait unless declared otherwise
  }
  if constexpr (requires { T::oversub_safe; }) {
    info.oversub_safe = T::oversub_safe;
  } else {
    info.oversub_safe = false;
  }
  return info;
}

}  // namespace hemlock
