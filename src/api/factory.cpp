#include "api/factory.hpp"

#include <atomic>
#include <cassert>
#include <stdexcept>
#include <string>

#include "core/lock_registry.hpp"

namespace hemlock {

namespace {

// ---- runtime-registered families --------------------------------------
// Fixed-capacity, allocation-free: find_lock() must stay callable from
// inside the interposition shim (see the comment on find_lock below),
// so the runtime roster is a static array published with a
// release-store of the count. Slots are written before the count that
// covers them, so lock-free readers only ever see fully-written
// entries.

const LockVTable* g_runtime[LockFactory::kMaxRuntimeLocks] = {};
std::atomic<std::size_t> g_runtime_count{0};
/// Serializes registrations (duplicate check + publish must be one
/// step); never taken on any lookup path.
std::atomic<bool> g_runtime_reg_lock{false};

const LockVTable* find_runtime_lock(std::string_view name) noexcept {
  // mo: acquire — pairs with the registrar's count release store, so
  // entries below the count are fully published.
  const std::size_t n = g_runtime_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (g_runtime[i]->info.name == name) return g_runtime[i];
  }
  return nullptr;
}

/// "-spin" is the explicit spelling of the default pure-spin tier:
/// the roster registers "mcs" (spin), "mcs-yield", "mcs-park",
/// "mcs-adaptive" — so "mcs-spin" canonicalizes to "mcs". Returns the
/// base name, or an empty view when the alias does not apply.
std::string_view strip_spin_suffix(std::string_view name) noexcept {
  constexpr std::string_view kSuffix = "-spin";
  if (name.size() > kSuffix.size() && name.ends_with(kSuffix)) {
    return name.substr(0, name.size() - kSuffix.size());
  }
  return {};
}

/// Exact lookup across the compile-time roster then the runtime
/// registrations, allocation-free (see find_lock).
const LockVTable* find_lock_exact(std::string_view name) noexcept {
  const LockVTable* found = nullptr;
  for_each_lock_type<AllLockTags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    if (found == nullptr && name == lock_vtable<L>.info.name) {
      found = &lock_vtable<L>;
    }
  });
  if (found != nullptr) return found;
  return find_runtime_lock(name);
}

}  // namespace

LockFactory::LockFactory() {
  entries_.reserve(std::tuple_size_v<AllLockTags>);
  for_each_lock_type<AllLockTags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    entries_.push_back(&lock_vtable<L>);
  });
  // Registry invariant: names are unique (also asserted by the test
  // suite against the full roster).
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      assert(entries_[i]->info.name != entries_[j]->info.name);
    }
  }
}

const LockFactory& LockFactory::instance() {
  static const LockFactory factory;
  return factory;
}

const LockVTable* LockFactory::find(std::string_view name) const noexcept {
  // Same resolution as the free function (compile-time roster,
  // runtime registrations, one "-spin" strip) — there is exactly one
  // name→algorithm rule in the library.
  return find_lock(name);
}

AnyLock LockFactory::make(std::string_view name) const {
  const LockVTable* vt = find(name);
  if (vt == nullptr) {
    throw std::invalid_argument("hemlock: unknown lock algorithm \"" +
                                std::string(name) + "\"");
  }
  return AnyLock(*vt);  // guaranteed elision: constructed in place
}

AnyLock LockFactory::make(std::string_view name,
                          std::string_view telemetry_name) const {
  const LockVTable* vt = find(name);
  if (vt == nullptr) {
    throw std::invalid_argument("hemlock: unknown lock algorithm \"" +
                                std::string(name) + "\"");
  }
  return AnyLock(*vt, telemetry_name);  // guaranteed elision
}

const LockInfo* LockFactory::info(std::string_view name) const noexcept {
  const LockVTable* vt = find(name);
  return vt != nullptr ? &vt->info : nullptr;
}

std::vector<std::string_view> LockFactory::names() const {
  std::vector<std::string_view> out;
  out.reserve(entries_.size());
  for (const LockVTable* vt : entries_) out.push_back(vt->info.name);
  return out;
}

bool LockFactory::register_lock(const LockVTable& vt) noexcept {
  if (vt.info.name.empty() || vt.construct == nullptr ||
      vt.destroy == nullptr || vt.lock == nullptr || vt.unlock == nullptr ||
      vt.try_lock == nullptr || vt.lock_shared == nullptr ||
      vt.unlock_shared == nullptr || vt.try_lock_shared == nullptr) {
    return false;
  }
  // The inline-buffer contract: AnyLock constructs registered locks
  // in place, so an oversized entry would smash the buffer. (The
  // typed path, register_lock_type<L>, rejects this at compile time;
  // big-bodied algorithms go through locks/boxed.hpp.)
  if (vt.info.size_bytes > AnyLock::kStorageBytes ||
      vt.info.align_bytes > AnyLock::kStorageAlign) {
    return false;
  }
  // mo: acquire TAS — pairs with the release below; the prior
  // registrar's table edits are visible.
  while (g_runtime_reg_lock.exchange(true, std::memory_order_acquire)) {
  }
  bool registered = false;
  // Duplicate check under the lock, against everything resolvable —
  // including the "-spin" alias, so a registration can never shadow
  // or be shadowed by an existing spelling.
  if (find_lock(vt.info.name) == nullptr) {
    // mo: relaxed — the registration lock is held; count is stable.
    const std::size_t n = g_runtime_count.load(std::memory_order_relaxed);
    if (n < kMaxRuntimeLocks) {
      g_runtime[n] = &vt;
      // mo: release — publishes the slot before the count that lets
      // lock-free lookups read it.
      g_runtime_count.store(n + 1, std::memory_order_release);
      registered = true;
    }
  }
  // mo: release — publishes this registrar's table edits.
  g_runtime_reg_lock.store(false, std::memory_order_release);
  return registered;
}

std::vector<const LockVTable*> LockFactory::runtime_entries() {
  std::vector<const LockVTable*> out;
  // mo: acquire — as find_runtime_lock's count load.
  const std::size_t n = g_runtime_count.load(std::memory_order_acquire);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(g_runtime[i]);
  return out;
}

const LockVTable* find_lock(std::string_view name) noexcept {
  // Deliberately allocation-free (no LockFactory::instance()): the
  // interposition shim resolves HEMLOCK_LOCK through this function
  // from inside the application's first pthread_mutex_lock, where a
  // malloc — whose allocator may itself guard state with a pthread
  // mutex — could re-enter the shim and deadlock. The vtables are
  // constant-initialized statics (or, for runtime registrations,
  // caller-owned statics behind a release-published count); this is
  // pure name comparison.
  if (const LockVTable* found = find_lock_exact(name)) return found;
  // Same "-spin" canonicalization as ever: one strip, then an exact
  // lookup only, so suffixes never chain.
  const std::string_view base = strip_spin_suffix(name);
  return base.empty() ? nullptr : find_lock_exact(base);
}

}  // namespace hemlock
