#include "api/factory.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "core/lock_registry.hpp"

namespace hemlock {

LockFactory::LockFactory() {
  entries_.reserve(std::tuple_size_v<AllLockTags>);
  for_each_lock_type<AllLockTags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    entries_.push_back(&lock_vtable<L>);
  });
  // Registry invariant: names are unique (also asserted by the test
  // suite against the full roster).
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      assert(entries_[i]->info.name != entries_[j]->info.name);
    }
  }
}

const LockFactory& LockFactory::instance() {
  static const LockFactory factory;
  return factory;
}

namespace {

/// "-spin" is the explicit spelling of the default pure-spin tier:
/// the roster registers "mcs" (spin), "mcs-yield", "mcs-park",
/// "mcs-adaptive" — so "mcs-spin" canonicalizes to "mcs". Returns the
/// base name, or an empty view when the alias does not apply.
std::string_view strip_spin_suffix(std::string_view name) noexcept {
  constexpr std::string_view kSuffix = "-spin";
  if (name.size() > kSuffix.size() && name.ends_with(kSuffix)) {
    return name.substr(0, name.size() - kSuffix.size());
  }
  return {};
}

}  // namespace

const LockVTable* LockFactory::find(std::string_view name) const noexcept {
  const auto exact = [this](std::string_view n) -> const LockVTable* {
    for (const LockVTable* vt : entries_) {
      if (vt->info.name == n) return vt;
    }
    return nullptr;
  };
  if (const LockVTable* vt = exact(name)) return vt;
  // One strip, then an exact lookup only — "mcs-spin" is an alias,
  // "mcs-spin-spin" is a typo.
  const std::string_view base = strip_spin_suffix(name);
  return base.empty() ? nullptr : exact(base);
}

AnyLock LockFactory::make(std::string_view name) const {
  const LockVTable* vt = find(name);
  if (vt == nullptr) {
    throw std::invalid_argument("hemlock: unknown lock algorithm \"" +
                                std::string(name) + "\"");
  }
  return AnyLock(*vt);  // guaranteed elision: constructed in place
}

const LockInfo* LockFactory::info(std::string_view name) const noexcept {
  const LockVTable* vt = find(name);
  return vt != nullptr ? &vt->info : nullptr;
}

std::vector<std::string_view> LockFactory::names() const {
  std::vector<std::string_view> out;
  out.reserve(entries_.size());
  for (const LockVTable* vt : entries_) out.push_back(vt->info.name);
  return out;
}

namespace {

/// Exact roster lookup, allocation-free (see find_lock).
const LockVTable* find_lock_exact(std::string_view name) noexcept {
  const LockVTable* found = nullptr;
  for_each_lock_type<AllLockTags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    if (found == nullptr && name == lock_vtable<L>.info.name) {
      found = &lock_vtable<L>;
    }
  });
  return found;
}

}  // namespace

const LockVTable* find_lock(std::string_view name) noexcept {
  // Deliberately allocation-free (no LockFactory::instance()): the
  // interposition shim resolves HEMLOCK_LOCK through this function
  // from inside the application's first pthread_mutex_lock, where a
  // malloc — whose allocator may itself guard state with a pthread
  // mutex — could re-enter the shim and deadlock. The vtables are
  // constant-initialized statics; this is pure name comparison.
  if (const LockVTable* found = find_lock_exact(name)) return found;
  // Same "-spin" canonicalization as LockFactory::find: one strip,
  // then an exact lookup only, so suffixes never chain.
  const std::string_view base = strip_spin_suffix(name);
  return base.empty() ? nullptr : find_lock_exact(base);
}

}  // namespace hemlock
