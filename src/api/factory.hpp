// factory.hpp — the runtime lock roster: name → algorithm, once.
//
// The library has exactly one compile-time roster (AllLockTags in
// core/lock_registry.hpp) and exactly one runtime dispatch point:
// this factory, self-populated from that roster. Every consumer that
// turns a *string* into a *lock* goes through here — the
// LD_PRELOAD shim's HEMLOCK_LOCK, the bench harness's --lock=<name>,
// examples, tests. Nothing else maintains a name table.
//
// Embedders can additionally register families at RUN TIME
// (register_lock / register_lock_type<L>): the vtable mechanism never
// cared whether an entry came from the tuple, so a registered family
// resolves through find()/make()/find_lock() — and therefore through
// AnyLock("name"), DB<AnyLock>, the sharded serving layer and the
// traffic driver — without editing AllLockTags. Registration is
// deliberately bounded (fixed slots, no allocation) so the shim-safe
// find_lock() stays allocation-free.
#pragma once

#include <string_view>
#include <vector>

#include "api/any_lock.hpp"

namespace hemlock {

/// String-keyed runtime roster of every registered lock algorithm.
/// Immutable after construction; the singleton is built on first use
/// from AllLockTags and is safe to query from any thread.
class LockFactory {
 public:
  /// The process-wide factory.
  static const LockFactory& instance();

  /// The entry for `name`, or nullptr if unknown. Entry pointers are
  /// stable for the life of the process. (The free function
  /// find_lock() answers the same question without touching the
  /// factory singleton — allocation-free, for the interposition
  /// shim's lock path.) A "-spin" suffix canonicalizes to the base
  /// name: the bare queue-lock names ARE the pure-spin tier, so
  /// "mcs-spin" resolves to "mcs" (completing the -spin/-yield/-park/
  /// -adaptive waiting-tier vocabulary of core/waiting.hpp).
  const LockVTable* find(std::string_view name) const noexcept;

  /// Construct the named algorithm as an AnyLock. Throws
  /// std::invalid_argument for unknown names.
  AnyLock make(std::string_view name) const;

  /// As make(), attributed to `telemetry_name` in the per-lock
  /// telemetry (AnyLock's two-name constructor).
  AnyLock make(std::string_view name, std::string_view telemetry_name) const;

  /// The named algorithm's descriptor, or nullptr if unknown.
  const LockInfo* info(std::string_view name) const noexcept;

  /// Names of all compile-time roster algorithms, registry order.
  /// (Runtime-registered families resolve through find()/make()/
  /// info() but are listed by runtime_entries(), not here — the
  /// roster sweeps in tests/benches pin down the static registry.)
  std::vector<std::string_view> names() const;

  /// Compile-time roster entries, registry order (for roster sweeps).
  const std::vector<const LockVTable*>& entries() const noexcept {
    return entries_;
  }

  /// Number of compile-time roster algorithms.
  std::size_t size() const noexcept { return entries_.size(); }

  // ---- runtime registration -------------------------------------------

  /// Maximum number of runtime-registered families per process. A
  /// fixed bound keeps lookup allocation-free (the interposition
  /// shim's constraint) — this is a roster, not a plugin ecosystem.
  static constexpr std::size_t kMaxRuntimeLocks = 16;

  /// Register a lock family at run time. `vt` must have static
  /// storage duration (entry pointers are handed out for the life of
  /// the process). Returns false — registering nothing — when the
  /// name is empty or already taken (including via the "-spin"
  /// alias), when a lifecycle/operation thunk is missing, when the
  /// lock would not fit AnyLock's inline buffer (size or alignment),
  /// or when all kMaxRuntimeLocks slots are used. Thread-safe:
  /// publication is release/acquire — a concurrent find() observes
  /// either the complete entry or no entry, never a torn one. Still,
  /// register at startup, before consumer threads resolve names: a
  /// lookup that races ahead of registration misses legitimately, and
  /// callers rarely distinguish "not yet" from "never".
  static bool register_lock(const LockVTable& vt) noexcept;

  /// Register lock type L through its static vtable — the typed
  /// convenience over register_lock(); the erasure's static_asserts
  /// check the buffer fit at compile time.
  template <typename L>
  static bool register_lock_type() noexcept {
    return register_lock(lock_vtable<L>);
  }

  /// Snapshot of the runtime-registered entries, registration order.
  static std::vector<const LockVTable*> runtime_entries();

 private:
  LockFactory();  // populates from AllLockTags

  std::vector<const LockVTable*> entries_;
};

}  // namespace hemlock
