// factory.hpp — the runtime lock roster: name → algorithm, once.
//
// The library has exactly one compile-time roster (AllLockTags in
// core/lock_registry.hpp) and exactly one runtime dispatch point:
// this factory, self-populated from that roster. Every consumer that
// turns a *string* into a *lock* goes through here — the
// LD_PRELOAD shim's HEMLOCK_LOCK, the bench harness's --lock=<name>,
// examples, tests. Nothing else maintains a name table.
#pragma once

#include <string_view>
#include <vector>

#include "api/any_lock.hpp"

namespace hemlock {

/// String-keyed runtime roster of every registered lock algorithm.
/// Immutable after construction; the singleton is built on first use
/// from AllLockTags and is safe to query from any thread.
class LockFactory {
 public:
  /// The process-wide factory.
  static const LockFactory& instance();

  /// The entry for `name`, or nullptr if unknown. Entry pointers are
  /// stable for the life of the process. (The free function
  /// find_lock() answers the same question without touching the
  /// factory singleton — allocation-free, for the interposition
  /// shim's lock path.) A "-spin" suffix canonicalizes to the base
  /// name: the bare queue-lock names ARE the pure-spin tier, so
  /// "mcs-spin" resolves to "mcs" (completing the -spin/-yield/-park/
  /// -adaptive waiting-tier vocabulary of core/waiting.hpp).
  const LockVTable* find(std::string_view name) const noexcept;

  /// Construct the named algorithm as an AnyLock. Throws
  /// std::invalid_argument for unknown names.
  AnyLock make(std::string_view name) const;

  /// The named algorithm's descriptor, or nullptr if unknown.
  const LockInfo* info(std::string_view name) const noexcept;

  /// Names of all registered algorithms, registry order.
  std::vector<std::string_view> names() const;

  /// All entries, registry order (for roster sweeps).
  const std::vector<const LockVTable*>& entries() const noexcept {
    return entries_;
  }

  /// Number of registered algorithms.
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  LockFactory();  // populates from AllLockTags

  std::vector<const LockVTable*> entries_;
};

}  // namespace hemlock
