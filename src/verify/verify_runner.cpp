// verify_runner.cpp — CLI for the interleaving verifier.
//
//   verify_runner --algo=hemlock                 exhaustive, default depth
//   verify_runner --algo=mcs --depth=12          deeper exhaustive run
//   verify_runner --algo=clh --mode=random --seed=7 --schedules=5000
//   verify_runner --algo=hemlock --mode=random --check-determinism
//   verify_runner --algo=broken                  exits 0 iff the planted
//                                                race is caught
//   verify_runner --algo=hemlock --replay=0,1,1,0   re-run one failing
//                                                schedule from a report
//   verify_runner --list
//
// Exit codes: 0 pass (for expect_fail scenarios: the violation was
// caught), 1 verification failure, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "verify/harness.hpp"
#include "verify/verify.hpp"

namespace {

using hemlock::verify::kNumScenarios;
using hemlock::verify::kScenarios;
using hemlock::verify::Options;

void list_scenarios() {
  std::printf("verify scenarios (%zu):\n", kNumScenarios);
  for (std::size_t i = 0; i < kNumScenarios; ++i) {
    std::printf("  %-18s %u threads%s  %s\n", kScenarios[i].name,
                kScenarios[i].threads,
                kScenarios[i].expect_fail ? " [expect-fail]" : "",
                kScenarios[i].summary);
  }
}

/// "--flag=value" matcher; returns the value part or null.
const char* flag_value(const char* arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

bool parse_replay(const char* s, std::vector<std::uint32_t>& out) {
  out.clear();
  while (*s != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s) return false;
    out.push_back(static_cast<std::uint32_t>(v));
    s = end;
    if (*s == ',') ++s;
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  const char* algo = nullptr;
  Options opt;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if ((v = flag_value(a, "--algo")) != nullptr) {
      algo = v;
    } else if ((v = flag_value(a, "--depth")) != nullptr) {
      opt.depth = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = flag_value(a, "--schedules")) != nullptr) {
      opt.schedules = std::strtoull(v, nullptr, 10);
    } else if ((v = flag_value(a, "--seed")) != nullptr) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if ((v = flag_value(a, "--max-steps")) != nullptr) {
      opt.max_steps = std::strtoull(v, nullptr, 10);
    } else if ((v = flag_value(a, "--mode")) != nullptr) {
      if (std::strcmp(v, "exhaustive") == 0) {
        opt.mode = Options::Mode::kExhaustive;
      } else if (std::strcmp(v, "random") == 0) {
        opt.mode = Options::Mode::kRandom;
      } else {
        std::fprintf(stderr, "unknown --mode=%s\n", v);
        return 2;
      }
    } else if ((v = flag_value(a, "--replay")) != nullptr) {
      if (!parse_replay(v, opt.replay)) {
        std::fprintf(stderr, "bad --replay vector: %s\n", v);
        return 2;
      }
    } else if (std::strcmp(a, "--check-determinism") == 0) {
      opt.mode = Options::Mode::kRandom;
      opt.check_determinism = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      opt.verbose = true;
    } else if (std::strcmp(a, "--list") == 0) {
      list_scenarios();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --list)\n", a);
      return 2;
    }
  }

  if (algo == nullptr) {
    std::fprintf(stderr, "usage: verify_runner --algo=<name> [--depth=<k>] "
                         "[--mode=exhaustive|random] [--schedules=<n>] "
                         "[--seed=<s>] [--replay=<a,b,...>] "
                         "[--check-determinism] | --list\n");
    return 2;
  }

  for (std::size_t i = 0; i < kNumScenarios; ++i) {
    if (std::strcmp(kScenarios[i].name, algo) == 0) {
      hemlock::verify::Engine engine(kScenarios[i], opt);
      return engine.run();
    }
  }
  std::fprintf(stderr, "no scenario named '%s'\n", algo);
  list_scenarios();
  return 2;
}
