// hooks.cpp — the verifier's only footprint inside hemlock_core.
//
// Kept deliberately tiny and self-contained: this TU is compiled into
// the core library under -DHEMLOCK_VERIFY so that every binary
// linking the instrumented headers resolves the thread-local without
// dragging the harness (src/verify/harness.cpp, which only
// verify_runner links) into test and bench executables.
#include "core/verify_hooks.hpp"

#if !defined(HEMLOCK_VERIFY)
#error "hooks.cpp must only be compiled with -DHEMLOCK_VERIFY=ON"
#endif

namespace hemlock::verify {

namespace detail {
thread_local ThreadHook* tl_hook = nullptr;
}  // namespace detail

void set_thread_hook(ThreadHook* hook) noexcept { detail::tl_hook = hook; }

}  // namespace hemlock::verify
