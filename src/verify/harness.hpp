// harness.hpp — the schedule-enumerating engine.
//
// Logical threads are real OS threads (the lock code's thread_local
// ThreadRec machinery — runtime/thread_rec.cpp — must keep meaning
// "one record per concurrent actor", which rules out fibers), but
// exactly one of them is ever runnable: a token travels between the
// scheduler and the workers through per-thread binary semaphores, and
// changes hands only at HEMLOCK_VERIFY_YIELD() markers. Context
// switches therefore happen at yield points and nowhere else, which
// makes an execution fully determined by the sequence of scheduling
// choices — a *schedule* — and makes schedules enumerable.
//
// Exhaustive mode is a DFS over schedule prefixes, the CHESS/
// progress64 shape: a prefix is the vector of choice indices taken at
// decision points (a decision point is any hand-off where more than
// one thread is runnable; forced moves are free). The first `depth`
// decisions are enumerated; beyond the prefix the scheduler falls
// back to a fair round-robin tail, so every enumerated run terminates
// whenever the lock under test is livelock-free under fair
// scheduling. After each run the prefix advances like an odometer
// (pop exhausted trailing digits, increment the last survivor); the
// enumeration is complete when the prefix empties.
//
// Random mode draws the first `depth` decisions from a seeded
// xoshiro256** stream instead — deeper bug-hunting runs, still fully
// replayable: the recorded choices of a failing run are printed as a
// --replay vector, which exhaustive-replays that one schedule.
#pragma once

#if !defined(HEMLOCK_VERIFY)
#error "src/verify/ is only built with -DHEMLOCK_VERIFY=ON"
#endif

#include <cstdint>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "runtime/prng.hpp"
#include "verify/verify.hpp"

namespace hemlock::verify {

/// Engine knobs, straight from verify_runner's flags.
struct Options {
  enum class Mode { kExhaustive, kRandom };
  Mode mode = Mode::kExhaustive;
  /// Enumerated decision-point bound. 2^depth schedules for 2-thread
  /// scenarios; the default keeps a full table run in CI seconds.
  std::uint32_t depth = 10;
  /// Random-mode schedule count (--schedules).
  std::uint64_t schedules = 500;
  std::uint64_t seed = 1;
  /// Non-empty: run exactly this one schedule prefix and stop.
  std::vector<std::uint32_t> replay;
  /// Run the random batch twice and require identical traces.
  bool check_determinism = false;
  /// Per-schedule step cap — the deadlock/livelock tripwire. Fair
  /// tails terminate every correct scenario far below this.
  std::uint64_t max_steps = 200000;
  bool verbose = false;
};

/// One enumeration of one scenario. Construct, run(), read the exit
/// code. A process hosts at most one Engine at a time (fail() reaches
/// it through a global to print the replay context).
class Engine {
 public:
  Engine(const Scenario& sc, const Options& opt);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Drive the full enumeration (or replay / random batch). Returns
  /// the process exit code: 0 on success — which for an expect_fail
  /// scenario means "no run survived to completion unfailed" only via
  /// fail()'s own exit; reaching the end of an expect_fail
  /// enumeration returns 1.
  int run();

  // -- harness internals (public for the hook trampoline) --
  void on_yield(std::uint32_t id, const char* tag);

 private:
  void start_workers();
  void stop_workers();
  void worker_main(std::uint32_t id);
  void run_one_schedule();
  std::uint32_t pick(std::uint32_t decision_index);
  bool advance_prefix();
  std::uint64_t trace_hash() const;
  [[noreturn]] void fail_now(const char* expr, const char* file, int line,
                             bool honor_expect_fail);

  friend void fail(const char* expr, const char* file, int line);
  friend const std::vector<Step>& current_trace();

  const Scenario& sc_;
  Options opt_;

  std::vector<std::thread> workers_;
  // unique_ptr: std::binary_semaphore is neither movable nor
  // default-constructible in a resizable container.
  std::vector<std::unique_ptr<std::binary_semaphore>> go_;
  std::binary_semaphore sched_{0};
  std::vector<bool> finished_;
  bool stop_ = false;

  // Current-schedule state.
  std::vector<Step> trace_;
  std::vector<std::uint32_t> prefix_;   ///< choices at decision points
  std::vector<std::uint32_t> branch_;   ///< runnable count at each one
  std::uint32_t decisions_ = 0;         ///< decision points consumed
  std::uint32_t last_run_ = 0;          ///< round-robin tail cursor
  bool tail_used_ = false;              ///< schedule ran past the prefix

  Xoshiro256 rng_{1};                   ///< random-mode choice stream

  // Enumeration bookkeeping.
  std::uint64_t schedules_run_ = 0;
  std::uint64_t total_steps_ = 0;
  std::uint64_t max_sched_steps_ = 0;
  std::uint64_t random_seq_ = 0;        ///< random-mode schedule index
};

}  // namespace hemlock::verify
