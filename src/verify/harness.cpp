// harness.cpp — engine implementation. See harness.hpp for the model.
#include "verify/harness.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runtime/thread_rec.hpp"

namespace hemlock::verify {

namespace {

/// The one live engine; fail() and current_trace() reach the
/// schedule context through it.
Engine* g_engine = nullptr;

void yield_trampoline(void* engine, std::uint32_t id, const char* tag) {
  static_cast<Engine*>(engine)->on_yield(id, tag);
}

const char* mode_name(Options::Mode m) {
  return m == Options::Mode::kExhaustive ? "exhaustive" : "random";
}

}  // namespace

Engine::Engine(const Scenario& sc, const Options& opt) : sc_(sc), opt_(opt) {
  if (sc_.threads == 0 || sc_.threads > kMaxScenarioThreads) {
    std::fprintf(stderr,
                 "verify: scenario %s declares %u threads; the harness "
                 "supports 1..%u (kMaxScenarioThreads)\n",
                 sc_.name, sc_.threads, kMaxScenarioThreads);
    std::fflush(nullptr);
    std::_Exit(1);
  }
  finished_.assign(sc_.threads, false);
}

Engine::~Engine() {
  if (!workers_.empty()) stop_workers();
  if (g_engine == this) g_engine = nullptr;
}

void Engine::start_workers() {
  for (std::uint32_t t = 0; t < sc_.threads; ++t) {
    go_.push_back(std::make_unique<std::binary_semaphore>(0));
  }
  for (std::uint32_t t = 0; t < sc_.threads; ++t) {
    workers_.emplace_back(&Engine::worker_main, this, t);
  }
  // Registration handshake: admit the workers one at a time, in
  // logical-id order, so runtime/thread_rec.cpp assigns registry ids
  // (which e.g. the rwlock's sharded ingress indexes by) identically
  // in every process run — replay vectors stay valid across runs.
  for (std::uint32_t t = 0; t < sc_.threads; ++t) {
    go_[t]->release();
    sched_.acquire();
  }
}

void Engine::stop_workers() {
  stop_ = true;
  for (auto& g : go_) g->release();
  for (auto& w : workers_) w.join();
  workers_.clear();
  go_.clear();
}

void Engine::worker_main(std::uint32_t id) {
  ThreadHook hook{&yield_trampoline, this, id};
  go_[id]->acquire();
  (void)self();  // register the ThreadRec while holding the token
  set_thread_hook(&hook);
  sched_.release();
  for (;;) {
    go_[id]->acquire();
    if (stop_) break;
    sc_.exec(id);
    finished_[id] = true;
    sched_.release();
  }
  set_thread_hook(nullptr);
}

void Engine::on_yield(std::uint32_t id, const char* tag) {
  trace_.push_back(Step{id, tag});
  ++total_steps_;
  if (trace_.size() > opt_.max_steps) {
    fail_now("schedule step cap exceeded (deadlock or livelock)",
             __FILE__, __LINE__, /*honor_expect_fail=*/false);
  }
  sched_.release();
  go_[id]->acquire();
}

void Engine::run_one_schedule() {
  sc_.init();
  trace_.clear();
  std::fill(finished_.begin(), finished_.end(), false);
  decisions_ = 0;
  tail_used_ = false;
  last_run_ = sc_.threads - 1;  // the tail's first pick is thread 0
  const std::uint64_t steps_before = total_steps_;

  for (;;) {
    std::uint32_t runnable[kMaxScenarioThreads];
    std::uint32_t n = 0;
    for (std::uint32_t t = 0; t < sc_.threads; ++t) {
      if (!finished_[t]) runnable[n++] = t;
    }
    if (n == 0) break;

    std::uint32_t id;
    if (n == 1) {
      id = runnable[0];  // forced move — consumes no depth
    } else if (decisions_ < prefix_.size()) {
      // Replaying a digit chosen by an earlier run (or a --replay
      // vector); refresh its branch count for the odometer. The
      // modulo tolerates hand-edited replay vectors.
      if (decisions_ < branch_.size()) {
        branch_[decisions_] = n;
      } else {
        branch_.push_back(n);
      }
      id = runnable[prefix_[decisions_] % n];
      ++decisions_;
    } else if (prefix_.size() < opt_.depth) {
      const std::uint32_t choice =
          opt_.mode == Options::Mode::kRandom ? rng_.below(n) : 0;
      prefix_.push_back(choice);
      branch_.push_back(n);
      id = runnable[choice];
      ++decisions_;
    } else {
      // Past the enumerated prefix: deterministic fair round-robin,
      // so every correct scenario terminates and replays exactly.
      tail_used_ = true;
      id = runnable[0];
      for (std::uint32_t off = 1; off <= sc_.threads; ++off) {
        const std::uint32_t t = (last_run_ + off) % sc_.threads;
        if (!finished_[t]) {
          id = t;
          break;
        }
      }
    }

    last_run_ = id;
    go_[id]->release();
    sched_.acquire();
  }

  sc_.fini();
  ++schedules_run_;
  const std::uint64_t steps = total_steps_ - steps_before;
  if (steps > max_sched_steps_) max_sched_steps_ = steps;
}

bool Engine::advance_prefix() {
  while (!prefix_.empty() &&
         prefix_.back() + 1 >= branch_[prefix_.size() - 1]) {
    prefix_.pop_back();
    branch_.pop_back();
  }
  if (prefix_.empty()) return false;
  ++prefix_.back();
  return true;
}

std::uint64_t Engine::trace_hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  for (const Step& s : trace_) {
    mix(static_cast<unsigned char>(s.thread));
    for (const char* p = s.tag; *p != '\0'; ++p) {
      mix(static_cast<unsigned char>(*p));
    }
    mix(0xFFU);
  }
  return h;
}

int Engine::run() {
  g_engine = this;
  start_workers();
  int rc = 0;

  if (!opt_.replay.empty()) {
    prefix_ = opt_.replay;
    branch_.assign(prefix_.size(), 2);  // refreshed as digits are consumed
    run_one_schedule();
    std::printf("replay: scenario %s, %zu-digit schedule ran clean (%" PRIu64
                " steps)\n",
                sc_.name, opt_.replay.size(), total_steps_);
  } else if (opt_.mode == Options::Mode::kExhaustive) {
    prefix_.clear();
    branch_.clear();
    for (;;) {
      run_one_schedule();
      if (!advance_prefix()) break;
    }
    if (sc_.post_all != nullptr) sc_.post_all();
  } else {
    const int passes = opt_.check_determinism ? 2 : 1;
    std::uint64_t pass_hash[2] = {0, 0};
    std::uint64_t schedules_first_pass = 0;
    for (int p = 0; p < passes; ++p) {
      SplitMix64 seeder(opt_.seed);
      std::uint64_t h = 0x2545F4914F6CDD1DULL;
      for (std::uint64_t s = 0; s < opt_.schedules; ++s) {
        random_seq_ = s;
        rng_ = Xoshiro256(seeder.next());
        prefix_.clear();
        branch_.clear();
        run_one_schedule();
        h = (h * 1099511628211ULL) ^ trace_hash();
      }
      pass_hash[p] = h;
      if (p == 0) schedules_first_pass = schedules_run_;
    }
    (void)schedules_first_pass;
    if (opt_.check_determinism) {
      if (pass_hash[0] != pass_hash[1]) {
        std::fprintf(stderr,
                     "DETERMINISM FAILURE: seed %" PRIu64 " depth %u: pass "
                     "hashes %016" PRIx64 " vs %016" PRIx64 "\n",
                     opt_.seed, opt_.depth, pass_hash[0], pass_hash[1]);
        rc = 1;
      } else {
        std::printf("determinism: 2 passes of %" PRIu64
                    " schedules hashed %016" PRIx64 " — identical\n",
                    opt_.schedules, pass_hash[0]);
      }
    }
    if (sc_.post_all != nullptr) sc_.post_all();
  }

  stop_workers();

  if (sc_.expect_fail) {
    // The broken scenario's whole point is to trip VERIFY_ASSERT
    // (which exits 0 for expect_fail scenarios before reaching here).
    std::fprintf(stderr,
                 "verify: scenario %s expected a VERIFY_ASSERT violation "
                 "but the full enumeration ran clean\n",
                 sc_.name);
    rc = 1;
  }

  std::printf("verify: %s [%s depth=%u]: %" PRIu64 " schedules, %" PRIu64
              " steps total, longest schedule %" PRIu64 " steps%s\n",
              sc_.name, mode_name(opt_.mode), opt_.depth, schedules_run_,
              total_steps_, max_sched_steps_, rc == 0 ? " — PASS" : "");
  g_engine = nullptr;
  return rc;
}

void Engine::fail_now(const char* expr, const char* file, int line,
                      bool honor_expect_fail) {
  std::fprintf(stderr, "\nVERIFY FAILURE: %s\n  at %s:%d\n", expr, file, line);
  std::fprintf(stderr,
               "  scenario: %s  mode: %s  schedule #%" PRIu64 "  depth: %u\n",
               sc_.name, mode_name(opt_.mode), schedules_run_, opt_.depth);
  std::string replay;
  for (std::uint32_t i = 0; i < decisions_ && i < prefix_.size(); ++i) {
    if (!replay.empty()) replay += ',';
    replay += std::to_string(prefix_[i]);
  }
  std::fprintf(stderr,
               "  reproduce: verify_runner --algo=%s --depth=%u --replay=%s\n",
               sc_.name, opt_.depth, replay.empty() ? "0" : replay.c_str());
  if (tail_used_) {
    std::fprintf(stderr,
                 "  (schedule ran past the enumerated prefix; the replay is "
                 "still exact — the tail is deterministic round-robin)\n");
  }
  const std::size_t kTail = 60;
  const std::size_t from = trace_.size() > kTail ? trace_.size() - kTail : 0;
  std::fprintf(stderr, "  trace (last %zu of %zu steps):\n",
               trace_.size() - from, trace_.size());
  for (std::size_t i = from; i < trace_.size(); ++i) {
    std::fprintf(stderr, "    [t%u] %s\n", trace_[i].thread, trace_[i].tag);
  }
  const bool expected = honor_expect_fail && sc_.expect_fail;
  if (expected) {
    std::fprintf(stderr,
                 "  expected failure for scenario %s — caught as intended\n",
                 sc_.name);
  }
  std::fflush(nullptr);
  // Lock methods are noexcept: no unwinding out of a failed invariant.
  // _Exit also skips the Holder destructors in thread_rec.cpp, which
  // would otherwise spin on Grant words the dead schedule never
  // drained.
  std::_Exit(expected ? 0 : 1);
}

void fail(const char* expr, const char* file, int line) {
  if (g_engine != nullptr) {
    g_engine->fail_now(expr, file, line, /*honor_expect_fail=*/true);
  }
  std::fprintf(stderr, "VERIFY FAILURE (no engine): %s at %s:%d\n", expr,
               file, line);
  std::fflush(nullptr);
  std::_Exit(1);
}

const std::vector<Step>& current_trace() {
  static const std::vector<Step> empty;
  return g_engine != nullptr ? g_engine->trace_ : empty;
}

}  // namespace hemlock::verify
