// verify.hpp — scenario-facing API of the interleaving verifier.
//
// A verify *scenario* is the progress64 ver_hemlock.c triple adapted
// to this codebase: init() builds the lock under test in static
// storage, exec(id) is the body each logical thread runs (lock /
// assert-exclusive / yield-inside-CS / unlock, a couple of times),
// fini() asserts quiescence after every thread finished. The harness
// (harness.hpp) then drives every bounded-depth interleaving of the
// HEMLOCK_VERIFY_YIELD() points the exec bodies pass through.
//
// Invariants are written with VERIFY_ASSERT. On violation the harness
// prints the scenario name, the failed expression, the consumed
// schedule prefix (the exact --replay argument that reproduces the
// run) and the tail of the step trace, then exits the process — lock
// methods are noexcept, so unwinding out of them is not an option.
//
// Everything here only exists under -DHEMLOCK_VERIFY; nothing in this
// directory is compiled into normal builds except hooks.cpp's
// thread-local (and that, too, only under the option).
#pragma once

#if !defined(HEMLOCK_VERIFY)
#error "src/verify/ is only built with -DHEMLOCK_VERIFY=ON"
#endif

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/verify_hooks.hpp"

namespace hemlock::verify {

/// One scheduling step of the trace: which logical thread ran, and
/// the yield tag it ran up to. Tags are string literals (never
/// dynamically built), so the pointer is stable for the process.
struct Step {
  std::uint32_t thread;
  const char* tag;
};

/// Hard cap on Scenario::threads: the harness collects runnable ids
/// into fixed-size stacks of this many slots. Engine's constructor
/// rejects larger scenarios loudly instead of overflowing them.
inline constexpr std::uint32_t kMaxScenarioThreads = 8;

/// A verify scenario, ver_funcs-table style.
struct Scenario {
  const char* name;     ///< --algo=<name>
  const char* summary;  ///< one line for --list
  std::uint32_t threads;  ///< logical threads (2, or 3 for reader overlap)
  void (*init)();       ///< build the lock under test (scheduler thread)
  void (*exec)(std::uint32_t id);  ///< per-logical-thread body
  void (*fini)();       ///< per-schedule quiescence checks + teardown
  /// Optional: runs once after the *whole* enumeration — for coverage
  /// assertions that no single schedule can establish (e.g. "some
  /// schedule overlapped two readers"). Null when unused.
  void (*post_all)();
  /// The broken-toy-lock regression proof: the harness expects a
  /// VERIFY_ASSERT violation and inverts the exit code.
  bool expect_fail;
};

/// The scenario table (scenarios.cpp).
extern const Scenario kScenarios[];
extern const std::size_t kNumScenarios;

/// Report an invariant violation and exit the process (exit 0 when
/// the running scenario is expect_fail, 1 otherwise). Callable from
/// any scenario thread; the caller holds the scheduler token, so the
/// trace it prints is consistent.
[[noreturn]] void fail(const char* expr, const char* file, int line);

/// The current schedule's step trace (valid during exec/fini; the
/// scheduler token serializes access). Scenario post-checks walk this
/// to assert ordering properties — e.g. FIFO admission — that no
/// single-threaded assertion can see.
const std::vector<Step>& current_trace();

}  // namespace hemlock::verify

/// Scenario invariant check. Unlike assert(), active in every build
/// of the verifier and reported with the replayable schedule.
#define VERIFY_ASSERT(cond)                                      \
  do {                                                           \
    if (!(cond)) ::hemlock::verify::fail(#cond, __FILE__, __LINE__); \
  } while (0)
