// scenarios.cpp — the per-family verify scenario table.
//
// Each scenario follows the progress64 ver_hemlock.c shape: init()
// placement-news the lock under test into static storage, exec(id)
// performs a couple of lock / assert-exclusive / yield-inside-CS /
// unlock rounds, fini() asserts quiescence. The shared-state checks
// (owner counters) are deliberately plain relaxed atomics: under the
// token-serialized harness only one thread runs at a time, so they
// are schedule-level ghosts, not synchronization — the lock under
// test is the only thing ordering the threads.
//
// Tag-struct template parameters carry each family's "queued" trace
// tag into the generic FIFO post-check (string literals cannot be
// non-type template arguments).
#include <atomic>
#include <cstring>
#include <new>
#include <type_traits>

#include "core/hemlock.hpp"
#include "locks/anderson.hpp"
#include "locks/clh.hpp"
#include "locks/mcs.hpp"
#include "locks/rwlock.hpp"
#include "locks/ticket.hpp"
#include "runtime/governor.hpp"
#include "runtime/thread_rec.hpp"
#include "verify/verify.hpp"

namespace hemlock::verify {
namespace {

constexpr int kIters = 2;  ///< lock/unlock rounds per logical thread

// ---------------------------------------------------------------------
// Trace post-checks (run in fini, scanning the schedule's yield trace).
// ---------------------------------------------------------------------

/// FIFO admission check. `queued_tag` marks a thread's enqueue point
/// (its arrival order); "cs-enter" marks its admission. Admissions
/// must pop arrivals in order. Families that emit the tag on every
/// acquire (CLH's exchange, ticket's draw, Anderson's slot claim) get
/// an exact FIFO check; families that emit it only when contended
/// (Hemlock, MCS: pred != null) additionally require that an
/// unannounced admission only happens while nobody is queued — a
/// queued waiter pins the tail, so a later arrival cannot see an
/// empty doorstep.
void check_fifo(const char* queued_tag) {
  const auto& tr = current_trace();
  std::uint32_t q[kMaxScenarioThreads];
  std::uint32_t qn = 0;
  for (const Step& s : tr) {
    if (std::strcmp(s.tag, queued_tag) == 0) {
      for (std::uint32_t i = 0; i < qn; ++i) {
        VERIFY_ASSERT(q[i] != s.thread);  // no double-queue without acquire
      }
      VERIFY_ASSERT(qn < kMaxScenarioThreads);
      q[qn++] = s.thread;
    } else if (std::strcmp(s.tag, "cs-enter") == 0) {
      bool queued = false;
      for (std::uint32_t i = 0; i < qn; ++i) {
        if (q[i] == s.thread) {
          VERIFY_ASSERT(i == 0);  // FIFO: no overtaking the queue head
          queued = true;
          break;
        }
      }
      if (queued) {
        --qn;
        for (std::uint32_t i = 0; i < qn; ++i) q[i] = q[i + 1];
      } else {
        VERIFY_ASSERT(qn == 0);  // uncontended acquire past a waiter
      }
    }
  }
  VERIFY_ASSERT(qn == 0);  // every arrival was eventually admitted
}

// Tag carriers for the template parameter.
struct HemlockQueuedTag { static constexpr const char* value = "hemlock:queued"; };
struct McsQueuedTag { static constexpr const char* value = "mcs:queued"; };
struct ClhQueuedTag { static constexpr const char* value = "clh:queued"; };
struct TicketQueuedTag { static constexpr const char* value = "ticket:drawn"; };
struct AndersonQueuedTag { static constexpr const char* value = "anderson:slot"; };

// ---------------------------------------------------------------------
// Generic mutual-exclusion scenario.
// ---------------------------------------------------------------------

/// Mutual exclusion over kIters rounds per thread, with yield points
/// straddling the ownership ghost so a broken lock is caught at the
/// first overlapping admission. QueuedTag (or void) selects the FIFO
/// post-check. ForceTier (or void) pins the ContentionGovernor for
/// the schedule — the governed-escalation scenarios use it to make
/// the park tier reachable deterministically instead of depending on
/// a live oversubscription census.
template <typename Lock, typename QueuedTag = void, typename ForceTier = void>
struct MutexScenario {
  alignas(Lock) static inline unsigned char storage[sizeof(Lock)];
  static inline Lock* lk = nullptr;
  static inline std::atomic<int> owners{0};

  static void init() {
    if constexpr (!std::is_void_v<ForceTier>) {
      ContentionGovernor::instance().force(ForceTier::value);
    }
    // mo: relaxed — verification ghost state; ordering is supplied
    // by the lock under test, these asserts only count admissions.
    owners.store(0, std::memory_order_relaxed);
    lk = new (storage) Lock();
  }

  static void exec(std::uint32_t) {
    for (int i = 0; i < kIters; ++i) {
      lk->lock();
      yield_point("cs-enter");
      // mo: relaxed — verification ghost state; ordering is supplied
      // by the lock under test, these asserts only count admissions.
      VERIFY_ASSERT(owners.fetch_add(1, std::memory_order_relaxed) == 0);
      yield_point("cs");
      // mo: relaxed — verification ghost state; ordering is supplied
      // by the lock under test, these asserts only count admissions.
      VERIFY_ASSERT(owners.fetch_sub(1, std::memory_order_relaxed) == 1);
      lk->unlock();
    }
    // Hemlock Listing 1 line 6: the Grant mailbox is empty between
    // locking operations. Trivially true for the node/ticket families
    // (they never touch it), load-bearing for the Hemlock ones.
    // mo: relaxed — verification ghost state; ordering is supplied
    // by the lock under test, these asserts only count admissions.
    VERIFY_ASSERT(self().grant.value.load(std::memory_order_relaxed) ==
                  kGrantEmpty);
  }

  static void fini() {
    // mo: relaxed — verification ghost state; ordering is supplied
    // by the lock under test, these asserts only count admissions.
    VERIFY_ASSERT(owners.load(std::memory_order_relaxed) == 0);
    if constexpr (requires { lk->appears_unlocked(); }) {
      VERIFY_ASSERT(lk->appears_unlocked());
    }
    if constexpr (!std::is_void_v<QueuedTag>) check_fifo(QueuedTag::value);
    lk->~Lock();
    lk = nullptr;
    if constexpr (!std::is_void_v<ForceTier>) {
      ContentionGovernor::instance().clear_force();
    }
  }
};

/// try_lock variant: acquisition by retry loop (every refusal is a
/// schedule point), same exclusion ghost.
template <typename Lock>
struct TryScenario {
  alignas(Lock) static inline unsigned char storage[sizeof(Lock)];
  static inline Lock* lk = nullptr;
  static inline std::atomic<int> owners{0};

  static void init() {
    // mo: relaxed — verification ghost state; ordering is supplied
    // by the lock under test, these asserts only count admissions.
    owners.store(0, std::memory_order_relaxed);
    lk = new (storage) Lock();
  }

  static void exec(std::uint32_t) {
    for (int i = 0; i < kIters; ++i) {
      while (!lk->try_lock()) {
        yield_point("try-retry");
      }
      yield_point("cs-enter");
      // mo: relaxed — verification ghost state; ordering is supplied
      // by the lock under test, these asserts only count admissions.
      VERIFY_ASSERT(owners.fetch_add(1, std::memory_order_relaxed) == 0);
      yield_point("cs");
      // mo: relaxed — verification ghost state; ordering is supplied
      // by the lock under test, these asserts only count admissions.
      VERIFY_ASSERT(owners.fetch_sub(1, std::memory_order_relaxed) == 1);
      lk->unlock();
    }
  }

  static void fini() {
    // mo: relaxed — verification ghost state; ordering is supplied
    // by the lock under test, these asserts only count admissions.
    VERIFY_ASSERT(owners.load(std::memory_order_relaxed) == 0);
    if constexpr (requires { lk->appears_unlocked(); }) {
      VERIFY_ASSERT(lk->appears_unlocked());
    }
    lk->~Lock();
    lk = nullptr;
  }
};

struct ForcePark { static constexpr WaitTier value = WaitTier::kPark; };

// ---------------------------------------------------------------------
// Reader-writer scenarios. Shards=2 keeps the writer's drain walk
// short enough to enumerate while still crossing a shard boundary.
// ---------------------------------------------------------------------

using VerRwLock = RwLockT<QueueSpinWaiting, 2>;

/// Thread role split: ids below `Writers` write, the rest read.
/// Writer sections must exclude everything; reader sections must
/// exclude writers but overlap each other (asserted over the whole
/// enumeration by post_all — no single schedule can prove overlap is
/// *possible*).
template <std::uint32_t Writers>
struct RwScenario {
  alignas(VerRwLock) static inline unsigned char storage[sizeof(VerRwLock)];
  static inline VerRwLock* lk = nullptr;
  static inline std::atomic<int> writers_in{0};
  static inline std::atomic<int> readers_in{0};
  static inline int max_reader_overlap = 0;  // across schedules; post_all

  static void init() {
    // mo: relaxed — verification ghost state; ordering is supplied
    // by the lock under test, these asserts only count admissions.
    writers_in.store(0, std::memory_order_relaxed);
    readers_in.store(0, std::memory_order_relaxed);
    lk = new (storage) VerRwLock();
  }

  static void exec(std::uint32_t id) {
    for (int i = 0; i < kIters; ++i) {
      if (id < Writers) {
        lk->lock();
        // mo: relaxed — verification ghost state; ordering is supplied
        // by the lock under test, these asserts only count admissions.
        VERIFY_ASSERT(writers_in.fetch_add(1, std::memory_order_relaxed) == 0);
        VERIFY_ASSERT(readers_in.load(std::memory_order_relaxed) == 0);
        yield_point("ws");
        // mo: relaxed — verification ghost state; ordering is supplied
        // by the lock under test, these asserts only count admissions.
        VERIFY_ASSERT(readers_in.load(std::memory_order_relaxed) == 0);
        VERIFY_ASSERT(writers_in.fetch_sub(1, std::memory_order_relaxed) == 1);
        lk->unlock();
      } else {
        lk->lock_shared();
        // mo: relaxed — verification ghost state; ordering is supplied
        // by the lock under test, these asserts only count admissions.
        const int in = readers_in.fetch_add(1, std::memory_order_relaxed) + 1;
        if (in > max_reader_overlap) max_reader_overlap = in;
        // mo: relaxed — verification ghost state; ordering is supplied
        // by the lock under test, these asserts only count admissions.
        VERIFY_ASSERT(writers_in.load(std::memory_order_relaxed) == 0);
        yield_point("rs");
        // mo: relaxed — verification ghost state; ordering is supplied
        // by the lock under test, these asserts only count admissions.
        VERIFY_ASSERT(writers_in.load(std::memory_order_relaxed) == 0);
        readers_in.fetch_sub(1, std::memory_order_relaxed);
        lk->unlock_shared();
      }
    }
  }

  static void fini() {
    // mo: relaxed — verification ghost state; ordering is supplied
    // by the lock under test, these asserts only count admissions.
    VERIFY_ASSERT(writers_in.load(std::memory_order_relaxed) == 0);
    VERIFY_ASSERT(readers_in.load(std::memory_order_relaxed) == 0);
    VERIFY_ASSERT(lk->appears_unlocked());
    lk->~VerRwLock();
    lk = nullptr;
  }

  /// Reader-overlap liveness: some enumerated schedule must have held
  /// two read sessions at once (writer exclusion alone would also
  /// pass every per-schedule assert).
  static void post_all_readers() {
    VERIFY_ASSERT(max_reader_overlap >= 2);
    max_reader_overlap = 0;
  }
};

using RwWW = RwScenario<2>;   // writer vs writer (2 threads)
using RwWR = RwScenario<1>;   // writer vs reader (2 threads)
using RwRRR = RwScenario<0>;  // readers only (3 threads, overlap check)

// ---------------------------------------------------------------------
// The deliberately-broken toy lock: test-and-set with the test and
// the set split by a yield point — the textbook lost-update race. The
// harness must catch it within the bounded depth; this regression-
// proofs the harness itself (a verifier that cannot find a planted
// bug proves nothing by passing).
// ---------------------------------------------------------------------

class BrokenTas {
 public:
  void lock() noexcept {
    for (;;) {
      // mo: acquire/release as a real TAS would use — the planted bug
      // is the check-to-set window, not the memory ordering.
      if (flag_.load(std::memory_order_acquire) == 0) {
        // The bug: another thread can run here, see flag_ == 0 too,
        // and both proceed to the store.
        yield_point("broken:check-to-set");
        // mo: release — as a real TAS unlock would use.
        flag_.store(1, std::memory_order_release);
        return;
      }
      yield_point("broken:poll");
    }
  }
  // mo: release — as a real TAS unlock would use.
  void unlock() noexcept { flag_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

}  // namespace

// The ver_funcs table.
const Scenario kScenarios[] = {
    {"hemlock", "Hemlock + CTR CAS grant (paper Listing 2)", 2,
     &MutexScenario<Hemlock, HemlockQueuedTag>::init,
     &MutexScenario<Hemlock, HemlockQueuedTag>::exec,
     &MutexScenario<Hemlock, HemlockQueuedTag>::fini, nullptr, false},
    {"hemlock-naive", "Hemlock- load-polling grant (paper Listing 1)", 2,
     &MutexScenario<HemlockNaive, HemlockQueuedTag>::init,
     &MutexScenario<HemlockNaive, HemlockQueuedTag>::exec,
     &MutexScenario<HemlockNaive, HemlockQueuedTag>::fini, nullptr, false},
    {"hemlock-faa", "Hemlock + CTR FAA(0) grant polling", 2,
     &MutexScenario<HemlockFaa, HemlockQueuedTag>::init,
     &MutexScenario<HemlockFaa, HemlockQueuedTag>::exec,
     &MutexScenario<HemlockFaa, HemlockQueuedTag>::fini, nullptr, false},
    {"hemlock-futex", "Hemlock + spin-then-park grant (futex shimmed)", 2,
     &MutexScenario<HemlockFutex, HemlockQueuedTag>::init,
     &MutexScenario<HemlockFutex, HemlockQueuedTag>::exec,
     &MutexScenario<HemlockFutex, HemlockQueuedTag>::fini, nullptr, false},
    {"hemlock-adaptive", "Hemlock + governed grant, tier forced to park", 2,
     &MutexScenario<HemlockAdaptive, HemlockQueuedTag, ForcePark>::init,
     &MutexScenario<HemlockAdaptive, HemlockQueuedTag, ForcePark>::exec,
     &MutexScenario<HemlockAdaptive, HemlockQueuedTag, ForcePark>::fini,
     nullptr, false},
    {"hemlock-try", "Hemlock try_lock retry loops", 2,
     &TryScenario<Hemlock>::init, &TryScenario<Hemlock>::exec,
     &TryScenario<Hemlock>::fini, nullptr, false},
    {"mcs", "MCS, spin tier", 2,
     &MutexScenario<McsLock, McsQueuedTag>::init,
     &MutexScenario<McsLock, McsQueuedTag>::exec,
     &MutexScenario<McsLock, McsQueuedTag>::fini, nullptr, false},
    {"mcs-park", "MCS, spin-then-park tier (futex shimmed)", 2,
     &MutexScenario<McsParkLock, McsQueuedTag>::init,
     &MutexScenario<McsParkLock, McsQueuedTag>::exec,
     &MutexScenario<McsParkLock, McsQueuedTag>::fini, nullptr, false},
    {"governed", "MCS, governed tier forced to park (escalation path)", 2,
     &MutexScenario<McsGovernedLock, McsQueuedTag, ForcePark>::init,
     &MutexScenario<McsGovernedLock, McsQueuedTag, ForcePark>::exec,
     &MutexScenario<McsGovernedLock, McsQueuedTag, ForcePark>::fini, nullptr,
     false},
    {"clh", "CLH, spin tier (node migration)", 2,
     &MutexScenario<ClhLock, ClhQueuedTag>::init,
     &MutexScenario<ClhLock, ClhQueuedTag>::exec,
     &MutexScenario<ClhLock, ClhQueuedTag>::fini, nullptr, false},
    {"ticket", "Ticket, spin tier (exact FIFO by draw order)", 2,
     &MutexScenario<TicketLock, TicketQueuedTag>::init,
     &MutexScenario<TicketLock, TicketQueuedTag>::exec,
     &MutexScenario<TicketLock, TicketQueuedTag>::fini, nullptr, false},
    {"ticket-park", "Ticket, park tier (slotted ring wakeups)", 2,
     &MutexScenario<TicketParkLock, TicketQueuedTag>::init,
     &MutexScenario<TicketParkLock, TicketQueuedTag>::exec,
     &MutexScenario<TicketParkLock, TicketQueuedTag>::fini, nullptr, false},
    {"anderson", "Anderson array lock (4-slot ring)", 2,
     &MutexScenario<AndersonLockT<4>, AndersonQueuedTag>::init,
     &MutexScenario<AndersonLockT<4>, AndersonQueuedTag>::exec,
     &MutexScenario<AndersonLockT<4>, AndersonQueuedTag>::fini, nullptr,
     false},
    {"rwlock-ww", "rwlock: two writers (Hemlock writer path)", 2,
     &RwWW::init, &RwWW::exec, &RwWW::fini, nullptr, false},
    {"rwlock-wr", "rwlock: writer vs reader (gate-close/drain Dekker)", 2,
     &RwWR::init, &RwWR::exec, &RwWR::fini, nullptr, false},
    {"rwlock-readers", "rwlock: three readers (overlap must occur)", 3,
     &RwRRR::init, &RwRRR::exec, &RwRRR::fini, &RwRRR::post_all_readers,
     false},
    {"broken", "deliberately racy test-and-set — must be caught", 2,
     &MutexScenario<BrokenTas>::init, &MutexScenario<BrokenTas>::exec,
     &MutexScenario<BrokenTas>::fini, nullptr, true},
};

const std::size_t kNumScenarios = sizeof(kScenarios) / sizeof(kScenarios[0]);

}  // namespace hemlock::verify
