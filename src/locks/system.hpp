// system.hpp — wrappers for the platform's native mutexes.
//
// The paper's evaluation interposes on the POSIX pthread_mutex_t
// interface (§5); these wrappers let the same harness, tests and
// benches run the *un*-interposed system primitives as additional
// reference points.
#pragma once

#include <mutex>

#include <pthread.h>

#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"

namespace hemlock {

/// Raw pthread_mutex_t with default attributes (typically a
/// futex-based adaptive mutex on Linux — blocks instead of spinning,
/// so it is *not* comparable to the spin locks under oversubscription
/// and is reported separately in benches).
class HEMLOCK_CAPABILITY("mutex") PthreadMutex {
 public:
  PthreadMutex() { pthread_mutex_init(&mu_, nullptr); }
  ~PthreadMutex() { pthread_mutex_destroy(&mu_); }
  PthreadMutex(const PthreadMutex&) = delete;
  PthreadMutex& operator=(const PthreadMutex&) = delete;

  /// Acquire.
  void lock() noexcept HEMLOCK_ACQUIRE() { pthread_mutex_lock(&mu_); }
  /// Non-blocking attempt.
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    return pthread_mutex_trylock(&mu_) == 0;
  }
  /// Release.
  void unlock() noexcept HEMLOCK_RELEASE() { pthread_mutex_unlock(&mu_); }

 private:
  pthread_mutex_t mu_;
};

template <>
struct lock_traits<PthreadMutex> {
  static constexpr const char* name = "pthread";
  static constexpr std::size_t lock_words =
      sizeof(pthread_mutex_t) / sizeof(void*);
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = true;
  static constexpr bool is_fifo = false;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kGlobal;
  /// glibc's default mutex blocks in the kernel (futex) under
  /// contention — the reference point the parking tiers are measured
  /// against.
  static constexpr const char* waiting = "park";
  static constexpr bool oversub_safe = true;
};

template <>
struct lock_traits<std::mutex> {
  static constexpr const char* name = "std-mutex";
  static constexpr std::size_t lock_words = sizeof(std::mutex) / sizeof(void*);
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = true;
  static constexpr bool is_fifo = false;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kGlobal;
  static constexpr const char* waiting = "park";
  static constexpr bool oversub_safe = true;
};

}  // namespace hemlock
