// std_adapter.hpp — a capability-annotated veneer over std::mutex.
//
// Clang's thread-safety analysis only tracks types that carry a
// capability attribute. libstdc++'s std::mutex does not, so naming it
// in GUARDED_BY/ACQUIRE expressions (e.g. instantiating DB<L> or
// LockGuard<L> with L = std::mutex) trips -Wthread-safety-attributes.
// StdMutex is the drop-in replacement for those call sites: the same
// standard mutex underneath, but visible to the analysis. The bodies
// need no escape hatch — the inner std::mutex is untracked, so the
// analysis sees only the annotated interface.
#pragma once

#include <mutex>

#include "locks/lock_traits.hpp"
#include "locks/system.hpp"
#include "runtime/annotations.hpp"

namespace hemlock {

/// std::mutex with a capability attribute, for annotated call sites.
class HEMLOCK_CAPABILITY("mutex") StdMutex {
 public:
  StdMutex() = default;
  StdMutex(const StdMutex&) = delete;
  StdMutex& operator=(const StdMutex&) = delete;

  /// Acquire.
  void lock() HEMLOCK_ACQUIRE() { mu_.lock(); }
  /// Non-blocking attempt.
  bool try_lock() HEMLOCK_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  /// Release.
  void unlock() HEMLOCK_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Same identity as the raw std::mutex it wraps.
template <>
struct lock_traits<StdMutex> : lock_traits<std::mutex> {};

}  // namespace hemlock
