// anderson.hpp — Anderson's array-based queueing lock.
//
// From the paper's related work (§4): "Anderson's array-based
// queueing lock is based on Ticket Locks but provides local spinning.
// It employs a waiting array for each lock instance, sized to ensure
// there is at least one array element for each potentially waiting
// thread, yielding a potentially large footprint. The maximum number
// of participating threads must be known in advance when initializing
// the lock." Included to anchor the space/locality trade-off Hemlock
// improves on (Table 1 discussion).
//
// The Waiting template parameter selects the waiting tier
// (core/waiting.hpp): pure spin (the textbook algorithm) or the
// yield/park/governed tiers for oversubscribed hosts. Each waiter has
// a private slot, so the parking tiers wake exactly the intended
// successor.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// Array-based queue lock for at most `MaxThreads` concurrent
/// contenders (callers must guarantee the bound; exceeding it wraps
/// the slot ring and corrupts the protocol).
template <std::uint32_t MaxThreads = 64, typename Waiting = QueueSpinWaiting>
class HEMLOCK_CAPABILITY("mutex") AndersonLockT {
 public:
  AndersonLockT() {
    // mo: relaxed — construction precedes any concurrent use; the
    // caller publishes the lock object itself.
    slots_[0].value.store(1, std::memory_order_relaxed);  // slot 0 may run
    for (std::uint32_t i = 1; i < MaxThreads; ++i) {
      slots_[i].value.store(0, std::memory_order_relaxed);  // mo: as above
    }
  }
  AndersonLockT(const AndersonLockT&) = delete;
  AndersonLockT& operator=(const AndersonLockT&) = delete;

  /// Acquire: take a slot with fetch-and-add, wait (per the tier)
  /// locally on it.
  void lock() HEMLOCK_ACQUIRE() {
    // mo: relaxed draw — the slot index carries no payload; the wait
    // on the slot below supplies acquire ordering.
    const std::uint64_t ticket =
        next_.value.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t idx = static_cast<std::uint32_t>(ticket % MaxThreads);
    // Slot claimed, not yet watching it.
    HEMLOCK_VERIFY_YIELD("anderson:slot");
    Waiting::wait_until(slots_[idx].value, std::uint32_t{1});
    // Admitted but permission not yet consumed — the slot must not be
    // observable as enabled by its next-lap claimant here.
    HEMLOCK_VERIFY_YIELD("anderson:admitted");
    // mo: relaxed — consuming the permission so the slot is clean for
    // its next lap; ordered before our eventual publish of the *next*
    // slot by release there, and nobody reads this slot until then.
    slots_[idx].value.store(0, std::memory_order_relaxed);
    owner_idx_ = idx;  // protected by the lock itself
  }

  /// Release: enable the next slot in the ring (the parking tiers
  /// fold their census-gated wake into publish()).
  void unlock() HEMLOCK_RELEASE() {
    const std::uint32_t nxt = (owner_idx_ + 1) % MaxThreads;
    HEMLOCK_VERIFY_YIELD("anderson:handoff");
    Waiting::publish(slots_[nxt].value, std::uint32_t{1});
  }

  /// Max contenders supported.
  static constexpr std::uint32_t capacity() { return MaxThreads; }

 private:
  CacheAligned<std::atomic<std::uint64_t>> next_;
  std::uint32_t owner_idx_ = 0;  ///< valid only while held
  CacheAligned<std::atomic<std::uint32_t>> slots_[MaxThreads];
};

/// The paper's baseline shape: pure busy-wait (existing spelling
/// `AndersonLock<N>` preserved via this alias).
template <std::uint32_t MaxThreads = 64>
using AndersonLock = AndersonLockT<MaxThreads, QueueSpinWaiting>;

namespace detail {
template <std::uint32_t N, typename W>
struct anderson_traits_base {
  static constexpr std::size_t lock_words =
      (sizeof(AndersonLockT<N, W>)) / sizeof(void*);  // the big array
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = true;  // slot ring priming
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = false;
  static constexpr Spinning spinning = Spinning::kLocal;
  /// The waiting array bounds concurrent contenders; runtime
  /// consumers (LockInfo) enforce this where the thread count is a
  /// run-time quantity.
  static constexpr std::size_t max_threads = N;
  static constexpr const char* waiting = W::name;
  static constexpr bool oversub_safe = W::oversub_safe;
};
}  // namespace detail

template <std::uint32_t N>
struct lock_traits<AndersonLockT<N, QueueSpinWaiting>>
    : detail::anderson_traits_base<N, QueueSpinWaiting> {
  static constexpr const char* name = "anderson";
};
template <std::uint32_t N>
struct lock_traits<AndersonLockT<N, QueueYieldWaiting>>
    : detail::anderson_traits_base<N, QueueYieldWaiting> {
  static constexpr const char* name = "anderson-yield";
};
template <std::uint32_t N>
struct lock_traits<AndersonLockT<N, SpinThenParkWaiting>>
    : detail::anderson_traits_base<N, SpinThenParkWaiting> {
  static constexpr const char* name = "anderson-park";
};
template <std::uint32_t N>
struct lock_traits<AndersonLockT<N, GovernedWaiting>>
    : detail::anderson_traits_base<N, GovernedWaiting> {
  static constexpr const char* name = "anderson-adaptive";
};

}  // namespace hemlock
