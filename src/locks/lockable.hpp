// lockable.hpp — the lock concept and RAII guards.
//
// Every lock in this library (baselines and the Hemlock family)
// satisfies BasicLockable: lock()/unlock() callable from any thread,
// with unlock() invoked by the owning thread. Locks additionally
// advertising TryLockable provide a non-blocking try_lock(). All our
// locks are therefore drop-in compatible with std::lock_guard,
// std::unique_lock and std::scoped_lock (C++ Core Guidelines CP.20:
// "Use RAII, never plain lock()/unlock()").
#pragma once

#include <concepts>
#include <utility>

#include "runtime/annotations.hpp"

namespace hemlock {

/// A mutual-exclusion lock: lock() blocks until the calling thread
/// owns the lock; unlock() releases it (caller must be the owner).
template <typename L>
concept BasicLockable = requires(L& l) {
  l.lock();
  l.unlock();
};

/// A lock that additionally supports a non-blocking acquisition
/// attempt. Per the paper (§2), MCS and Hemlock admit trivial
/// try_lock via CAS; CLH does not (its traits say so).
template <typename L>
concept TryLockable = BasicLockable<L> && requires(L& l) {
  { l.try_lock() } -> std::convertible_to<bool>;
};

/// A reader-writer lock: the exclusive BasicLockable surface plus a
/// shared mode in which any number of readers may hold the lock
/// simultaneously (std::shared_mutex's Lockable subset). Exclusive
/// and shared holds are mutually exclusive.
template <typename L>
concept SharedLockable = BasicLockable<L> && requires(L& l) {
  l.lock_shared();
  l.unlock_shared();
  { l.try_lock_shared() } -> std::convertible_to<bool>;
};

/// Minimal RAII guard, equivalent to std::lock_guard but usable with
/// our lock concept in contexts where <mutex> is undesirable.
/// Prefer this (or std::lock_guard) over bare lock()/unlock() pairs.
template <BasicLockable L>
class HEMLOCK_SCOPED_CAPABILITY [[nodiscard]] LockGuard {
 public:
  /// Acquires `l`; releases it on scope exit. (The body locks through
  /// the parameter, not the member, so Clang's thread-safety analysis
  /// can match the acquisition against the HEMLOCK_ACQUIRE contract.)
  explicit LockGuard(L& l) HEMLOCK_ACQUIRE(l) : lock_(l) { l.lock(); }
  ~LockGuard() HEMLOCK_RELEASE() { lock_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  L& lock_;
};

/// RAII guard for the shared (reader) side of a SharedLockable —
/// std::shared_lock's scope-only subset, without <shared_mutex>.
template <SharedLockable L>
class HEMLOCK_SCOPED_CAPABILITY [[nodiscard]] SharedLockGuard {
 public:
  /// Acquires `l` in shared mode; releases it on scope exit.
  explicit SharedLockGuard(L& l) HEMLOCK_ACQUIRE_SHARED(l) : lock_(l) {
    l.lock_shared();
  }
  // Generic release: the scoped hold is shared-mode, and
  // release_generic matches whichever mode the guard tracked.
  ~SharedLockGuard() HEMLOCK_RELEASE_GENERIC() { lock_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  L& lock_;
};

/// Runs `fn` inside the critical section guarded by `l` and returns
/// its result. The paper notes (§2.3 footnote) that lexically scoped
/// critical sections — lambdas — make site-by-site optimizations like
/// on-stack Grant fields possible; with_lock is that lexical shape.
template <BasicLockable L, typename Fn>
decltype(auto) with_lock(L& l, Fn&& fn) {
  LockGuard<L> g(l);
  return std::forward<Fn>(fn)();
}

}  // namespace hemlock
