// mcs.hpp — classic MCS queue lock (Mellor-Crummey & Scott, 1991).
//
// Configured exactly as the paper's baseline (§5.1): "our
// implementation stores the current head of the queue – the owner –
// in a field adjacent to the tail, so the lock body size was 2
// words", making the lock usable behind the context-free pthread
// interface (no node passed from lock to unlock); queue nodes are
// cache-line padded ("we also elected to align and pad the MCS and
// CLH queue nodes ... to provide a fair comparison") and recycled
// through the thread-local free stacks of node_pool.hpp (footnote 5).
//
// The Waiting template parameter selects the waiting tier
// (core/waiting.hpp): QueueSpinWaiting is the paper's pure busy-wait
// baseline; the yield/park/governed tiers make the same algorithm
// survive oversubscribed hosts, where a FIFO hand-off to a preempted
// spinner otherwise costs a scheduler timeslice.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "locks/node_pool.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// MCS queue element. One per (thread, lock-held-or-waited) pair,
/// padded to a cache line so waiters on different nodes never share.
/// Shared across all waiting tiers (the tier only changes how the
/// words are polled/published, never their layout).
struct alignas(kCacheLineSize) McsNode {
  std::atomic<McsNode*> next{nullptr};
  std::atomic<std::uint32_t> locked{0};
  McsNode* pool_next = nullptr;  ///< node_pool intrusive link
};
static_assert(sizeof(McsNode) == kCacheLineSize);

/// Classic MCS lock, 2-word body (tail + head), parameterized over the
/// waiting tier.
template <typename Waiting = QueueSpinWaiting>
class HEMLOCK_CAPABILITY("mutex") McsLockT {
 public:
  McsLockT() = default;
  McsLockT(const McsLockT&) = delete;
  McsLockT& operator=(const McsLockT&) = delete;

  /// Acquire. Uncontended: one SWAP. Contended: enqueue then wait
  /// (per the tier) on the node's own flag.
  void lock() HEMLOCK_ACQUIRE() {
    McsNode* n = NodePool<McsNode>::acquire();
    // mo: relaxed init — the doorstep SWAP below releases these stores
    // to the successor that reads the node through pred->next.
    n->next.store(nullptr, std::memory_order_relaxed);
    n->locked.store(1, std::memory_order_relaxed);
    // mo: doorstep SWAP is acq_rel — release publishes the node's
    // initialization above to the successor that will read it via
    // pred->next; acquire observes the predecessor's publication
    // symmetrically.
    McsNode* pred = tail_.exchange(n, std::memory_order_acq_rel);
    if (pred != nullptr) {
      // In the queue (tail swung) but not yet reachable from the
      // predecessor — the arrival gap unlock's link wait covers.
      HEMLOCK_VERIFY_YIELD("mcs:queued");
      // Make ourselves reachable from the predecessor (waking it if
      // it parked in its unlock-side link wait), then wait for the
      // owner's hand-off on our own (local) flag.
      Waiting::publish(pred->next, n);
      HEMLOCK_VERIFY_YIELD("mcs:linked");
      Waiting::wait_until(n->locked, std::uint32_t{0});
    }
    // head_ is protected by the lock itself (paper §1: such accesses
    // "execute within the effective critical section").
    head_ = n;
  }

  /// Non-blocking attempt (paper §2: "MCS ... allow[s] trivial
  /// implementations of the TryLock operations – using CAS instead
  /// of SWAP").
  bool try_lock() HEMLOCK_TRY_ACQUIRE(true) {
    McsNode* n = NodePool<McsNode>::acquire();
    // mo: relaxed init — the success CAS below releases these stores
    // (failure discards the node, nothing published).
    n->next.store(nullptr, std::memory_order_relaxed);
    n->locked.store(1, std::memory_order_relaxed);
    McsNode* expected = nullptr;
    // mo: acq_rel on success — same pairing as lock()'s doorstep SWAP;
    // relaxed on failure (no acquisition, nothing to order).
    if (tail_.compare_exchange_strong(expected, n, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      head_ = n;
      return true;
    }
    NodePool<McsNode>::release(n);
    return false;
  }

  /// Release. Uncontended: one CAS. Contended: wait for the arriving
  /// successor's back-link, then hand off with a single store (the
  /// non-wait-free window both MCS and Hemlock share, §2).
  void unlock() HEMLOCK_RELEASE() {
    McsNode* n = head_;
    // mo: acquire pairs with the successor's publish of pred->next so
    // its node initialization is visible before we store to it.
    McsNode* succ = n->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      // No successor observed; one may swing the tail before our CAS.
      HEMLOCK_VERIFY_YIELD("mcs:no-succ");
      McsNode* expected = n;
      // mo: release on success so the next uncontended acquirer (who
      // reads null from the SWAP) sees our critical section; relaxed
      // on failure — the hand-off publish below carries ordering.
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        NodePool<McsNode>::release(n);
        return;
      }
      // A successor swapped in but has not linked yet; its store to
      // n->next is imminent (unless it was preempted mid-arrival —
      // the parking tiers sleep through exactly that gap).
      succ = Waiting::wait_while(n->next, static_cast<McsNode*>(nullptr));
    }
    HEMLOCK_VERIFY_YIELD("mcs:handoff");
    Waiting::publish(succ->locked, std::uint32_t{0});
    NodePool<McsNode>::release(n);
  }

 private:
  std::atomic<McsNode*> tail_{nullptr};
  McsNode* head_ = nullptr;  ///< owner's node; valid only while held
};

/// The paper's baseline: pure busy-wait.
using McsLock = McsLockT<QueueSpinWaiting>;
/// Spin-then-yield tier for mildly oversubscribed hosts.
using McsYieldLock = McsLockT<QueueYieldWaiting>;
/// Spin-then-park (futex) tier for heavy oversubscription.
using McsParkLock = McsLockT<SpinThenParkWaiting>;
/// Governor-adaptive tier (spin -> yield -> park as contention grows).
using McsGovernedLock = McsLockT<GovernedWaiting>;

namespace detail {
template <typename W>
struct mcs_traits_base {
  static constexpr std::size_t lock_words = 2;  // tail + head (Table 1)
  static constexpr std::size_t held_words = sizeof(McsNode) / sizeof(void*);
  static constexpr std::size_t wait_words = sizeof(McsNode) / sizeof(void*);
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kLocal;
  static constexpr const char* waiting = W::name;
  static constexpr bool oversub_safe = W::oversub_safe;
};
}  // namespace detail

template <>
struct lock_traits<McsLock> : detail::mcs_traits_base<QueueSpinWaiting> {
  static constexpr const char* name = "mcs";
};
template <>
struct lock_traits<McsYieldLock>
    : detail::mcs_traits_base<QueueYieldWaiting> {
  static constexpr const char* name = "mcs-yield";
};
template <>
struct lock_traits<McsParkLock>
    : detail::mcs_traits_base<SpinThenParkWaiting> {
  static constexpr const char* name = "mcs-park";
};
template <>
struct lock_traits<McsGovernedLock>
    : detail::mcs_traits_base<GovernedWaiting> {
  static constexpr const char* name = "mcs-adaptive";
};

}  // namespace hemlock
