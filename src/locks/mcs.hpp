// mcs.hpp — classic MCS queue lock (Mellor-Crummey & Scott, 1991).
//
// Configured exactly as the paper's baseline (§5.1): "our
// implementation stores the current head of the queue – the owner –
// in a field adjacent to the tail, so the lock body size was 2
// words", making the lock usable behind the context-free pthread
// interface (no node passed from lock to unlock); queue nodes are
// cache-line padded ("we also elected to align and pad the MCS and
// CLH queue nodes ... to provide a fair comparison") and recycled
// through the thread-local free stacks of node_pool.hpp (footnote 5).
#pragma once

#include <atomic>
#include <cstdint>

#include "locks/lock_traits.hpp"
#include "locks/node_pool.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// MCS queue element. One per (thread, lock-held-or-waited) pair,
/// padded to a cache line so waiters on different nodes never share.
struct alignas(kCacheLineSize) McsNode {
  std::atomic<McsNode*> next{nullptr};
  std::atomic<std::uint32_t> locked{0};
  McsNode* pool_next = nullptr;  ///< node_pool intrusive link
};
static_assert(sizeof(McsNode) == kCacheLineSize);

/// Classic MCS lock, 2-word body (tail + head).
class McsLock {
 public:
  McsLock() = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  /// Acquire. Uncontended: one SWAP. Contended: enqueue then spin
  /// locally on the node's own flag.
  void lock() {
    McsNode* n = NodePool<McsNode>::acquire();
    n->next.store(nullptr, std::memory_order_relaxed);
    n->locked.store(1, std::memory_order_relaxed);
    // Doorstep: swing the tail to our node; acq_rel so the node's
    // initialization above is published to the successor that will
    // read it via pred->next, and so we observe the predecessor's
    // publication symmetrically.
    McsNode* pred = tail_.exchange(n, std::memory_order_acq_rel);
    if (pred != nullptr) {
      // Make ourselves reachable from the predecessor, then wait for
      // the owner's hand-off on our own (local) flag.
      pred->next.store(n, std::memory_order_release);
      while (n->locked.load(std::memory_order_acquire) != 0) {
        cpu_relax();
      }
    }
    // head_ is protected by the lock itself (paper §1: such accesses
    // "execute within the effective critical section").
    head_ = n;
  }

  /// Non-blocking attempt (paper §2: "MCS ... allow[s] trivial
  /// implementations of the TryLock operations – using CAS instead
  /// of SWAP").
  bool try_lock() {
    McsNode* n = NodePool<McsNode>::acquire();
    n->next.store(nullptr, std::memory_order_relaxed);
    n->locked.store(1, std::memory_order_relaxed);
    McsNode* expected = nullptr;
    if (tail_.compare_exchange_strong(expected, n, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      head_ = n;
      return true;
    }
    NodePool<McsNode>::release(n);
    return false;
  }

  /// Release. Uncontended: one CAS. Contended: wait for the arriving
  /// successor's back-link, then hand off with a single store (the
  /// non-wait-free window both MCS and Hemlock share, §2).
  void unlock() {
    McsNode* n = head_;
    McsNode* succ = n->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      McsNode* expected = n;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        NodePool<McsNode>::release(n);
        return;
      }
      // A successor swapped in but has not linked yet; its store to
      // n->next is imminent.
      while ((succ = n->next.load(std::memory_order_acquire)) == nullptr) {
        cpu_relax();
      }
    }
    succ->locked.store(0, std::memory_order_release);
    NodePool<McsNode>::release(n);
  }

 private:
  std::atomic<McsNode*> tail_{nullptr};
  McsNode* head_ = nullptr;  ///< owner's node; valid only while held
};

template <>
struct lock_traits<McsLock> {
  static constexpr const char* name = "mcs";
  static constexpr std::size_t lock_words = 2;  // tail + head (Table 1)
  static constexpr std::size_t held_words = sizeof(McsNode) / sizeof(void*);
  static constexpr std::size_t wait_words = sizeof(McsNode) / sizeof(void*);
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kLocal;
};

}  // namespace hemlock
