// node_pool.hpp — thread-local free stacks of queue elements.
//
// Implements the paper's footnote 5 exactly: "to avoid malloc and its
// locks, we instead use a thread-local stack of free queue nodes. In
// the lock operator, we first try to allocate from that free list,
// and then fall back to malloc only as necessary. In unlock, we
// return nodes to that free list. ... We reclaim the elements from
// the stack when T1 exits. A stack is convenient for locality."
//
// Nodes handed out by a pool are only ever *returned* by the same
// thread for MCS (nodes go back in unlock). CLH nodes migrate between
// threads (§2.3), so a node allocated from thread A's pool may be
// retired into thread B's pool — the pool therefore owns node memory
// collectively via a global retirement list swept at thread exit.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>

#include "runtime/cacheline.hpp"

namespace hemlock {

/// Thread-local LIFO free list of cache-line-padded nodes of type
/// Node. Node must be default-constructible and expose an intrusive
/// `Node* pool_next` member.
///
/// Lifetime: nodes are heap blocks. Because CLH nodes migrate across
/// threads, a node freed into this thread's pool may have been minted
/// by another thread's pool; we therefore never assume ownership for
/// deallocation purposes per-thread. Instead every minted node is
/// also threaded onto a global all-nodes list (lock-free push) and
/// the whole arena is reclaimed at process exit. This wastes at most
/// (max concurrently waited/held locks) nodes per thread — the same
/// high-water behaviour as the paper's implementation, which
/// "currently do[es]n't bother to trim the thread-local stack".
template <typename Node>
class NodePool {
 public:
  /// Pop a node from the calling thread's free stack, minting a new
  /// one if the stack is empty.
  static Node* acquire() {
    Node*& head = local_head();
    if (Node* n = head) {
      head = n->pool_next;
      n->pool_next = nullptr;
      return n;
    }
    return mint();
  }

  /// Push a node onto the calling thread's free stack.
  static void release(Node* n) noexcept {
    Node*& head = local_head();
    n->pool_next = head;
    head = n;
  }

  /// Nodes minted process-wide (diagnostic; bounds footprint tests).
  static std::size_t minted() noexcept {
    return minted_count().load(std::memory_order_relaxed);  // mo: stats
  }

 private:
  struct Block {
    Node node;
    Block* all_next = nullptr;
  };

  static Node* mint() {
    auto* b = new Block();
    // Thread onto the global arena list for end-of-process reclaim.
    // mo: relaxed initial read — the CAS below revalidates it.
    Block* head = all_head().load(std::memory_order_relaxed);
    do {
      b->all_next = head;
    // mo: release push — publishes b->all_next to the sweeper's
    // acquire exchange; relaxed failure reloads head.
    } while (!all_head().compare_exchange_weak(head, b,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
    minted_count().fetch_add(1, std::memory_order_relaxed);  // mo: stats
    return &b->node;
  }

  static Node*& local_head() {
    thread_local Node* head = nullptr;
    return head;
  }

  static std::atomic<Block*>& all_head() {
    static std::atomic<Block*> head{nullptr};
    return head;
  }

  static std::atomic<std::size_t>& minted_count() {
    static std::atomic<std::size_t> c{0};
    return c;
  }

  // Sweeps the arena when the process tears down. Registered once via
  // a function-local static in all_head() users; nodes must not be in
  // any queue by then (all locks destroyed / threads joined).
  struct Sweeper {
    ~Sweeper() {
      // mo: acquire — pairs with each minter's release push so every
      // all_next link is visible before we walk and delete.
      Block* b = NodePool::all_head().exchange(nullptr,
                                               std::memory_order_acquire);
      while (b != nullptr) {
        Block* next = b->all_next;
        delete b;
        b = next;
      }
    }
  };
  static inline Sweeper sweeper_{};
};

}  // namespace hemlock
