// lock_traits.hpp — static metadata describing each lock algorithm.
//
// Drives Table 1 of the paper (space usage: lock body words, per-held
// and per-wait element cost, per-thread state, non-trivial init) and
// lets the parameterized test/bench suites adapt per algorithm
// (FIFO-ness, try_lock availability, spinning locality).
#pragma once

#include <cstddef>

namespace hemlock {

/// How threads busy-wait while contending for the lock.
enum class Spinning {
  kGlobal,    ///< all waiters poll one word (TAS/TTAS/Ticket)
  kLocal,     ///< each waiter polls a private word (MCS/CLH/Anderson)
  kFereLocal, ///< local except under multi-lock holding (Hemlock, §3)
};

/// Per-algorithm metadata. Every lock type in the library specializes
/// this template; `E` in the paper's Table 1 (queue-element size) is
/// reported in words via held_words/wait_words.
template <typename L>
struct lock_traits;  // primary template intentionally undefined

/// Convenience: paper Table 1 row, in words (8-byte) like the paper.
struct SpaceRow {
  const char* name;
  std::size_t lock_words;    ///< lock body size
  std::size_t held_words;    ///< extra space per lock currently held
  std::size_t wait_words;    ///< extra space per lock being waited on
  std::size_t thread_words;  ///< per-thread state reserved for locking
  bool nontrivial_init;      ///< requires non-trivial ctor/dtor (CLH dummy)
};

/// Materialize the Table 1 row for lock type L from its traits.
template <typename L>
SpaceRow space_row() {
  using T = lock_traits<L>;
  return SpaceRow{T::name,       T::lock_words,  T::held_words,
                  T::wait_words, T::thread_words, T::nontrivial_init};
}

}  // namespace hemlock
