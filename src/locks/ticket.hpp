// ticket.hpp — classic Ticket Lock.
//
// Baseline from the paper (§1, §5): "Ticket Locks are simple and
// compact, requiring just two words for each lock instance and no
// per-thread data. They perform well in the absence of contention
// ... Under contention, however, performance suffers because all
// threads contending for a given lock will busy-wait on a central
// location." FIFO; uncontended acquire is one fetch-and-add and
// uncontended release a plain store (Table: atomic counts, §2).
//
// The Waiting template parameter selects the waiting tier
// (core/waiting.hpp). All waiters share the now-serving word (global
// spinning), but each knows the exact ticket value it awaits, so the
// parking tiers sleep on a per-(lock, ticket) slot of the global
// ticket ring (queue_wait::ticket_slot) rather than on the shared
// word: a release wakes only the front waiter's slot instead of the
// whole herd (which previously re-parked N-1 sleepers per hand-off).
// Spin and yield tiers are untouched — they never sleep.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// Classic two-word ticket lock (dispenser + now-serving),
/// parameterized over the waiting tier.
template <typename Waiting = QueueSpinWaiting>
class HEMLOCK_CAPABILITY("mutex") TicketLockT {
 public:
  /// Acquire: draw a ticket, wait until it is served (global
  /// waiting — every waiter polls now_serving_; parking tiers sleep
  /// on their ticket's own ring slot, see wait_ticket).
  void lock() noexcept HEMLOCK_ACQUIRE() {
    // mo: relaxed draw — the ticket value itself carries no payload;
    // the wait on now_serving_ below supplies acquire ordering.
    const std::uint64_t my = next_.fetch_add(1, std::memory_order_relaxed);
    // Ticket drawn, not yet polling now-serving: the release that
    // serves us may land entirely inside this window.
    HEMLOCK_VERIFY_YIELD("ticket:drawn");
    if constexpr (requires { Waiting::wait_ticket(now_serving_, my); }) {
      Waiting::wait_ticket(now_serving_, my);
    } else {
      Waiting::wait_until(now_serving_, my);
    }
  }

  /// Opportunistic non-blocking attempt: succeeds only when no ticket
  /// is outstanding. NOTE: the paper (§2) observes Ticket Locks do
  /// not admit a *trivial* try_lock via CAS-instead-of-SWAP the way
  /// MCS/Hemlock do; this CAS-on-dispenser form is a documented
  /// extension and preserves correctness (it never draws a ticket it
  /// cannot immediately use).
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    // mo: acquire on now_serving_ — the previous owner's unlock
    // released *this* word, not next_, so a successful attempt must
    // observe it with acquire to carry that critical section's writes
    // (a relaxed load here is a genuine — TSan-visible — race with
    // the next CS).
    std::uint64_t served = now_serving_.load(std::memory_order_acquire);
    std::uint64_t expected = served;
    // mo: acquire on success backstops the load above (the CAS may
    // observe a newer dispenser value); relaxed on failure — no
    // acquisition, nothing to order.
    return next_.compare_exchange_strong(expected, served + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  /// Release: advance now-serving (a wait-free store; the paper notes
  /// Ticket/CLH unlock is wait-free, unlike MCS/Hemlock). The parking
  /// tiers wake only the served ticket's ring slot via publish_ticket.
  void unlock() noexcept HEMLOCK_RELEASE() {
    // mo: relaxed — only the owner writes now_serving_, so our own
    // prior store (or the init value) is all this load can see; the
    // publish below carries release ordering to the next owner.
    const std::uint64_t next =
        now_serving_.load(std::memory_order_relaxed) + 1;
    HEMLOCK_VERIFY_YIELD("ticket:serve");
    if constexpr (requires { Waiting::publish_ticket(now_serving_, next); }) {
      Waiting::publish_ticket(now_serving_, next);
    } else {
      Waiting::publish(now_serving_, next);
    }
  }

 private:
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> now_serving_{0};
};

/// The paper's baseline: pure busy-wait.
using TicketLock = TicketLockT<QueueSpinWaiting>;
/// Spin-then-yield tier for mildly oversubscribed hosts.
using TicketYieldLock = TicketLockT<QueueYieldWaiting>;
/// Spin-then-park (futex) tier for heavy oversubscription.
using TicketParkLock = TicketLockT<SpinThenParkWaiting>;
/// Governor-adaptive tier (spin -> yield -> park as contention grows).
using TicketGovernedLock = TicketLockT<GovernedWaiting>;

namespace detail {
template <typename W>
struct ticket_traits_base {
  static constexpr std::size_t lock_words = 2;  // Table 1: Lock = 2
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = true;  // extension, see try_lock()
  static constexpr Spinning spinning = Spinning::kGlobal;
  static constexpr const char* waiting = W::name;
  static constexpr bool oversub_safe = W::oversub_safe;
};
}  // namespace detail

template <>
struct lock_traits<TicketLock>
    : detail::ticket_traits_base<QueueSpinWaiting> {
  static constexpr const char* name = "ticket";
};
template <>
struct lock_traits<TicketYieldLock>
    : detail::ticket_traits_base<QueueYieldWaiting> {
  static constexpr const char* name = "ticket-yield";
};
template <>
struct lock_traits<TicketParkLock>
    : detail::ticket_traits_base<SpinThenParkWaiting> {
  static constexpr const char* name = "ticket-park";
};
template <>
struct lock_traits<TicketGovernedLock>
    : detail::ticket_traits_base<GovernedWaiting> {
  static constexpr const char* name = "ticket-adaptive";
};

}  // namespace hemlock
