// ticket.hpp — classic Ticket Lock.
//
// Baseline from the paper (§1, §5): "Ticket Locks are simple and
// compact, requiring just two words for each lock instance and no
// per-thread data. They perform well in the absence of contention
// ... Under contention, however, performance suffers because all
// threads contending for a given lock will busy-wait on a central
// location." FIFO; uncontended acquire is one fetch-and-add and
// uncontended release a plain store (Table: atomic counts, §2).
#pragma once

#include <atomic>
#include <cstdint>

#include "locks/lock_traits.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// Classic two-word ticket lock (dispenser + now-serving).
class TicketLock {
 public:
  /// Acquire: draw a ticket, spin until it is served (global
  /// spinning — every waiter polls now_serving_).
  void lock() noexcept {
    const std::uint64_t my = next_.fetch_add(1, std::memory_order_relaxed);
    while (now_serving_.load(std::memory_order_acquire) != my) {
      cpu_relax();
    }
  }

  /// Opportunistic non-blocking attempt: succeeds only when no ticket
  /// is outstanding. NOTE: the paper (§2) observes Ticket Locks do
  /// not admit a *trivial* try_lock via CAS-instead-of-SWAP the way
  /// MCS/Hemlock do; this CAS-on-dispenser form is a documented
  /// extension and preserves correctness (it never draws a ticket it
  /// cannot immediately use).
  bool try_lock() noexcept {
    std::uint64_t served = now_serving_.load(std::memory_order_relaxed);
    std::uint64_t expected = served;
    return next_.compare_exchange_strong(expected, served + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  /// Release: advance now-serving (a wait-free plain store; the paper
  /// notes Ticket/CLH unlock is wait-free, unlike MCS/Hemlock).
  void unlock() noexcept {
    now_serving_.store(now_serving_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> now_serving_{0};
};

template <>
struct lock_traits<TicketLock> {
  static constexpr const char* name = "ticket";
  static constexpr std::size_t lock_words = 2;  // Table 1: Lock = 2
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = true;  // extension, see try_lock()
  static constexpr Spinning spinning = Spinning::kGlobal;
};

}  // namespace hemlock
