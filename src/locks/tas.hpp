// tas.hpp — test-and-set and test-and-test-and-set spin locks.
//
// Baselines from the paper's related work (§4): "Simple test-and-set
// or polite test-and-test-and-set locks are compact and exhibit
// excellent latency for uncontended operations, but fail to scale and
// may allow unfairness and even indefinite starvation." They anchor
// the non-FIFO, global-spinning end of the comparison space.
#pragma once

#include <atomic>
#include <cstdint>

#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// Crude test-and-set lock: every acquisition attempt is an atomic
/// exchange, even while the lock is held (maximum coherence abuse).
class HEMLOCK_CAPABILITY("mutex") TasLock {
 public:
  /// Acquire; spins with exchange until the flag was clear.
  void lock() noexcept HEMLOCK_ACQUIRE() {
    // mo: acquire on the winning exchange pairs with unlock's release
    // store, carrying the previous critical section.
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      cpu_relax();
    }
  }

  /// Non-blocking attempt; true on acquisition.
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    // mo: acquire on success for the same release-pairing as lock().
    return flag_.exchange(1, std::memory_order_acquire) == 0;
  }

  /// Release (caller owns the lock).
  void unlock() noexcept HEMLOCK_RELEASE() {
    // mo: release publishes this critical section to the next acquirer.
    flag_.store(0, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

/// Polite test-and-test-and-set: spin on a plain load (line stays
/// shared among waiters) and attempt the exchange only when the lock
/// is observed free — Anderson's classic improvement [5], cited in
/// §2.1 when the paper argues CTR inverts this wisdom for Hemlock's
/// 1-to-1 Grant protocol.
class HEMLOCK_CAPABILITY("mutex") TtasLock {
 public:
  /// Acquire.
  void lock() noexcept HEMLOCK_ACQUIRE() {
    for (;;) {
      // mo: relaxed peek is ordering-free by design (only the winning
      // exchange below synchronizes); acquire on it pairs with
      // unlock's release.
      if (flag_.load(std::memory_order_relaxed) == 0 &&
          flag_.exchange(1, std::memory_order_acquire) == 0) {
        return;
      }
      cpu_relax();
    }
  }

  /// Non-blocking attempt; true on acquisition.
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    // mo: same pair as lock() — relaxed peek, acquire exchange.
    return flag_.load(std::memory_order_relaxed) == 0 &&
           flag_.exchange(1, std::memory_order_acquire) == 0;
  }

  /// Release (caller owns the lock).
  void unlock() noexcept HEMLOCK_RELEASE() {
    // mo: release publishes this critical section to the next acquirer.
    flag_.store(0, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

/// TTAS with bounded exponential backoff between attempts: trades
/// fairness and handover latency for reduced coherence storms at high
/// thread counts.
class HEMLOCK_CAPABILITY("mutex") TtasBackoffLock {
 public:
  /// Acquire.
  void lock() noexcept HEMLOCK_ACQUIRE() {
    std::uint32_t ceiling = kMinBackoff;
    for (;;) {
      // mo: relaxed peek is ordering-free by design; acquire on the
      // winning exchange pairs with unlock's release.
      if (flag_.load(std::memory_order_relaxed) == 0 &&
          flag_.exchange(1, std::memory_order_acquire) == 0) {
        return;
      }
      for (std::uint32_t i = 0; i < ceiling; ++i) cpu_relax();
      ceiling = ceiling < kMaxBackoff ? ceiling * 2 : kMaxBackoff;
    }
  }

  /// Non-blocking attempt; true on acquisition.
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true) {
    // mo: same pair as lock() — relaxed peek, acquire exchange.
    return flag_.load(std::memory_order_relaxed) == 0 &&
           flag_.exchange(1, std::memory_order_acquire) == 0;
  }

  /// Release (caller owns the lock).
  void unlock() noexcept HEMLOCK_RELEASE() {
    // mo: release publishes this critical section to the next acquirer.
    flag_.store(0, std::memory_order_release);
  }

 private:
  static constexpr std::uint32_t kMinBackoff = 4;
  static constexpr std::uint32_t kMaxBackoff = 4096;
  std::atomic<std::uint32_t> flag_{0};
};

template <>
struct lock_traits<TasLock> {
  static constexpr const char* name = "tas";
  static constexpr std::size_t lock_words = 1;
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = false;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kGlobal;
};

template <>
struct lock_traits<TtasLock> {
  static constexpr const char* name = "ttas";
  static constexpr std::size_t lock_words = 1;
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = false;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kGlobal;
};

template <>
struct lock_traits<TtasBackoffLock> {
  static constexpr const char* name = "ttas-backoff";
  static constexpr std::size_t lock_words = 1;
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = false;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kGlobal;
};

}  // namespace hemlock
