// clh.hpp — CLH queue lock (Craig; Landin & Hagersten), standard
// interface variant.
//
// Matches the paper's baseline (§5.1): "CLH based on Scott's CLH
// variant with a standard interface, Figure 4.14 of [50]" — the head
// (owner's node) is stored in the lock body so no context passes from
// lock to unlock; the lock is pre-initialized with a dummy node that
// must be recovered at destruction (Table 1's Init column), and nodes
// *migrate*: on acquisition a thread reclaims its predecessor's node
// for its own future use (§2.3: "a thread contributes an element but
// ... recovers a different element from the queue – elements migrate
// between locks and threads").
//
// The Waiting template parameter selects the waiting tier
// (core/waiting.hpp); QueueSpinWaiting is the paper's pure busy-wait
// baseline, the yield/park/governed tiers survive oversubscription.
// Tiers are a per-lock-instance property: a migrated node's flag is
// always polled and published by parties of the same lock, so mixing
// tiers across locks sharing the node pool is safe.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "locks/node_pool.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// CLH queue element: a single flag, padded to a line. `locked`
/// transitions true -> false exactly once per enqueue epoch.
struct alignas(kCacheLineSize) ClhNode {
  std::atomic<std::uint32_t> locked{0};
  ClhNode* pool_next = nullptr;  ///< node_pool intrusive link
};
static_assert(sizeof(ClhNode) == kCacheLineSize);

/// CLH lock, 2-word body (tail + head) plus the resident dummy
/// element (Table 1 row "CLH": Lock = 2+E, Init = yes), parameterized
/// over the waiting tier.
template <typename Waiting = QueueSpinWaiting>
class HEMLOCK_CAPABILITY("mutex") ClhLockT {
 public:
  /// Provision the required dummy element (unlocked state).
  ClhLockT() {
    ClhNode* dummy = NodePool<ClhNode>::acquire();
    // mo: relaxed — construction precedes any concurrent use; the
    // caller publishes the lock object itself.
    dummy->locked.store(0, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  /// Recover the current dummy element (paper: "When the lock is
  /// ultimately destroyed, the element must be recovered").
  ~ClhLockT() {
    // mo: relaxed — destruction requires the lock unheld and
    // unawaited, so no concurrent access remains to order against.
    ClhNode* dummy = tail_.load(std::memory_order_relaxed);
    if (dummy != nullptr) NodePool<ClhNode>::release(dummy);
  }

  ClhLockT(const ClhLockT&) = delete;
  ClhLockT& operator=(const ClhLockT&) = delete;

  /// Acquire. Uncontended: SWAP + one (satisfied) load. Contended:
  /// wait (per the tier) on the predecessor's node — local waiting,
  /// the element is not shared with any other waiter.
  void lock() HEMLOCK_ACQUIRE() {
    ClhNode* n = NodePool<ClhNode>::acquire();
    // mo: relaxed init — the doorstep SWAP below releases locked=1 to
    // the successor that will wait on it.
    n->locked.store(1, std::memory_order_relaxed);
    // mo: doorstep SWAP is acq_rel — release publishes our node's
    // locked=1; acquire observes the predecessor's publication.
    ClhNode* pred = tail_.exchange(n, std::memory_order_acq_rel);
    // Enqueued (tail swung to our node) but not yet waiting on the
    // predecessor's flag.
    HEMLOCK_VERIFY_YIELD("clh:queued");
    Waiting::wait_until(pred->locked, std::uint32_t{0});
    // Acquired. The predecessor's element now belongs to us (node
    // migration); keep it for a future acquisition.
    NodePool<ClhNode>::release(pred);
    head_ = n;  // protected by the lock itself
  }

  /// Release: a single store (paper §4: "the unlock operator for CLH
  /// and Tickets is wait-free") — plus, for the parking tiers, the
  /// census-gated wake folded into publish(). Our node is inherited
  /// by the successor (or becomes the lock's dummy if none).
  void unlock() HEMLOCK_RELEASE() {
    ClhNode* n = head_;
    HEMLOCK_VERIFY_YIELD("clh:handoff");
    Waiting::publish(n->locked, std::uint32_t{0});
  }

 private:
  std::atomic<ClhNode*> tail_;
  ClhNode* head_ = nullptr;  ///< owner's node; valid only while held
};

/// The paper's baseline: pure busy-wait.
using ClhLock = ClhLockT<QueueSpinWaiting>;
/// Spin-then-yield tier for mildly oversubscribed hosts.
using ClhYieldLock = ClhLockT<QueueYieldWaiting>;
/// Spin-then-park (futex) tier for heavy oversubscription.
using ClhParkLock = ClhLockT<SpinThenParkWaiting>;
/// Governor-adaptive tier (spin -> yield -> park as contention grows).
using ClhGovernedLock = ClhLockT<GovernedWaiting>;

namespace detail {
template <typename W>
struct clh_traits_base {
  // Table 1: lock body = 2 words + resident dummy element E.
  static constexpr std::size_t lock_words =
      2 + sizeof(ClhNode) / sizeof(void*);
  static constexpr std::size_t held_words = 0;  // Table 1: Held = 0
  static constexpr std::size_t wait_words = sizeof(ClhNode) / sizeof(void*);
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = true;  // dummy provision/recovery
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = false;  // paper §2: CLH does not
  static constexpr Spinning spinning = Spinning::kLocal;
  static constexpr const char* waiting = W::name;
  static constexpr bool oversub_safe = W::oversub_safe;
};
}  // namespace detail

template <>
struct lock_traits<ClhLock> : detail::clh_traits_base<QueueSpinWaiting> {
  static constexpr const char* name = "clh";
};
template <>
struct lock_traits<ClhYieldLock>
    : detail::clh_traits_base<QueueYieldWaiting> {
  static constexpr const char* name = "clh-yield";
};
template <>
struct lock_traits<ClhParkLock>
    : detail::clh_traits_base<SpinThenParkWaiting> {
  static constexpr const char* name = "clh-park";
};
template <>
struct lock_traits<ClhGovernedLock>
    : detail::clh_traits_base<GovernedWaiting> {
  static constexpr const char* name = "clh-adaptive";
};

}  // namespace hemlock
