// boxed.hpp — heap-boxed storage adapter for oversized roster locks.
//
// AnyLock's inline buffer is sized to the LARGEST algorithm in the
// registry (api/any_lock.hpp). Anderson's waiting array (~4 KiB at
// the default capacity) and the sharded-ingress rwlock (one cache
// line per reader shard) used to dominate that maximum, so EVERY
// erased lock — including the one-word Hemlock the paper is about —
// paid kilobytes per instance. That is exactly backwards for the
// sharded serving layer, which holds one erased lock per shard.
//
// BoxedLock<L> demotes such algorithms to a side-storage path: the
// erased footprint is one pointer (plus the vtable AnyLock already
// carries) and the big body lives on the heap, allocated once at
// construction. The traits — and therefore the factory name, the
// Table-1 accounting, the waiting tier, the max_threads bound — are
// inherited from L: "anderson" is still Anderson, it just no longer
// taxes every other algorithm's inline storage.
//
// The cost is deliberate and disclosed: construction allocates, and
// every operation adds one pointer chase. Hence the two trait
// overrides below: nontrivial_init (there is now a real ctor/dtor)
// and pthread_overlay_safe = false — the interposition shim must
// never host a lock whose construction can call malloc, because the
// allocator may itself take a pthread mutex and re-enter the shim.
#pragma once

#include <memory>

#include "locks/lock_traits.hpp"
#include "locks/lockable.hpp"
#include "runtime/annotations.hpp"

namespace hemlock {

/// Heap-boxed adapter: same locking surface as L, pointer-sized body.
/// The box is the capability; the inner L (itself annotated) is an
/// implementation detail the analysis must not double-track, so every
/// forwarding body opts out: tracking *inner_ too would report each
/// acquisition as "still held at end of function".
template <BasicLockable L>
class HEMLOCK_CAPABILITY("mutex") BoxedLock {
 public:
  BoxedLock() : inner_(std::make_unique<L>()) {}
  BoxedLock(const BoxedLock&) = delete;
  BoxedLock& operator=(const BoxedLock&) = delete;

  // NO_THREAD_SAFETY_ANALYSIS: forwarding to the annotated inner
  // lock; the box's interface annotations carry the contract.
  void lock() HEMLOCK_ACQUIRE() HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    inner_->lock();
  }
  // NO_THREAD_SAFETY_ANALYSIS: as lock().
  void unlock() HEMLOCK_RELEASE() HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    inner_->unlock();
  }

  // NO_THREAD_SAFETY_ANALYSIS: as lock().
  bool try_lock() HEMLOCK_TRY_ACQUIRE(true) HEMLOCK_NO_THREAD_SAFETY_ANALYSIS
    requires TryLockable<L>
  {
    return inner_->try_lock();
  }

  // NO_THREAD_SAFETY_ANALYSIS: as lock().
  void lock_shared() HEMLOCK_ACQUIRE_SHARED() HEMLOCK_NO_THREAD_SAFETY_ANALYSIS
    requires SharedLockable<L>
  {
    inner_->lock_shared();
  }
  // NO_THREAD_SAFETY_ANALYSIS: as lock().
  void unlock_shared()
      HEMLOCK_RELEASE_SHARED() HEMLOCK_NO_THREAD_SAFETY_ANALYSIS
    requires SharedLockable<L>
  {
    inner_->unlock_shared();
  }
  // NO_THREAD_SAFETY_ANALYSIS: as lock().
  bool try_lock_shared()
      HEMLOCK_TRY_ACQUIRE_SHARED(true) HEMLOCK_NO_THREAD_SAFETY_ANALYSIS
    requires SharedLockable<L>
  {
    return inner_->try_lock_shared();
  }

  /// The boxed algorithm (tests peeking at capacity() etc.).
  L& inner() noexcept { return *inner_; }

 private:
  std::unique_ptr<L> inner_;
};

/// Boxed locks keep the inner algorithm's identity (name, Table 1
/// accounting, FIFO-ness, bounds, waiting tier) — only the storage
/// facts change.
template <BasicLockable L>
struct lock_traits<BoxedLock<L>> : lock_traits<L> {
  static constexpr bool nontrivial_init = true;  // heap-allocating ctor
  /// Construction mallocs: hosting this inside an interposed
  /// pthread_mutex_t could re-enter the shim through the allocator's
  /// own lock. The shim falls back to its compact families instead.
  static constexpr bool pthread_overlay_safe = false;
  static constexpr bool condvar_capable = false;
};

}  // namespace hemlock
