// mcs_k42.hpp — the K42 variation of the MCS lock.
//
// Discussed in the paper §2.3: "The K42 variation of MCS can recover
// the queue element before returning from lock whereas classic MCS
// recovers the queue element in unlock. That is, under K42, a queue
// element is needed only while waiting but not while the lock is
// held, and as such, queue elements can always be allocated on stack
// ... While appealing, the paths are much more complex and touch more
// cache lines than the classic version, impacting performance."
//
// The lock body doubles as a queue element: `tail_` is the MCS tail
// and `head_` the owner's successor hint. A waiter's element lives on
// its own stack frame and is abandoned before lock() returns. This
// port follows the published K42 algorithm (Auslander et al., US
// 2003/0200457; Scott, Shared-Memory Synchronization Fig. 4.15).
#pragma once

#include <atomic>
#include <cstdint>

#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/pause.hpp"

namespace hemlock {

/// K42 MCS lock. 2-word body, on-stack waiter elements, element
/// recovered before lock() returns.
class HEMLOCK_CAPABILITY("mutex") McsK42Lock {
 public:
  McsK42Lock() = default;
  McsK42Lock(const McsK42Lock&) = delete;
  McsK42Lock& operator=(const McsK42Lock&) = delete;

  /// Acquire. The on-stack node is dead once lock() returns.
  void lock() HEMLOCK_ACQUIRE() {
    for (;;) {
      // mo: acquire — a non-null tail may be republished by an exiting
      // owner; acquire orders our read of its node fields after that.
      Node* prev = tail_.load(std::memory_order_acquire);
      if (prev == nullptr) {
        // Lock appears free: installing the lock's own pseudo-node as
        // tail marks "held, no waiters". Invariant: whenever tail_ is
        // null, head_ is already null (see unlock), so no stale
        // successor hint survives into this fast path.
        Node* expected = nullptr;
        // mo: acq_rel — acquire pairs with the releasing unlock CAS so
        // the prior critical section is visible; relaxed on failure
        // (the retry loop re-reads tail). Release side orders our
        // pseudo-node install before any successor's linkage.
        if (tail_.compare_exchange_weak(expected, &lock_node_,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
          return;
        }
      } else {
        alignas(kCacheLineSize) Node me;
        // mo: relaxed init — the releasing tail CAS below publishes
        // these fields before any other thread can see &me.
        me.status.store(kWaiting, std::memory_order_relaxed);
        me.next.store(nullptr, std::memory_order_relaxed);
        // mo: acq_rel enqueue — release publishes me.status/me.next;
        // acquire orders our use of prev's fields after its publisher.
        // Relaxed on failure: the outer loop re-reads tail.
        if (tail_.compare_exchange_weak(prev, &me, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
          // Queued. Link from predecessor: if prev is the lock's own
          // pseudo-node the owner has no waiters yet and the hand-off
          // hint lives in head_.
          if (prev == &lock_node_) {
            // mo: release link — pairs with the owner's acquire load
            // of head_ in unlock.
            head_.store(&me, std::memory_order_release);
          } else {
            // mo: release link — pairs with the predecessor's acquire
            // load of me.next after it is granted.
            prev->next.store(&me, std::memory_order_release);
          }
          // mo: acquire poll — pairs with unlock's kGranted release
          // store; the previous critical section happens-before us.
          while (me.status.load(std::memory_order_acquire) == kWaiting) {
            cpu_relax();
          }
          // We own the lock. Recover the element before returning:
          // transplant the successor hint into the lock body.
          // mo: acquire — pairs with the successor's release link,
          // ordering our reads of the successor node after its init.
          Node* succ = me.next.load(std::memory_order_acquire);
          if (succ == nullptr) {
            // mo: relaxed — we own the lock; head_ is only read by the
            // owner (unlock) until we publish a successor.
            head_.store(nullptr, std::memory_order_relaxed);
            Node* expected = &me;
            // mo: acq_rel — on success, release retires `me` from the
            // queue before the frame dies; relaxed failure is fine
            // (the acquire re-read of me.next below synchronizes).
            if (!tail_.compare_exchange_strong(expected, &lock_node_,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
              // Somebody appended behind us; wait for the link.
              // mo: acquire — as the me.next load above.
              while ((succ = me.next.load(std::memory_order_acquire)) ==
                     nullptr) {
                cpu_relax();
              }
              // mo: release — transplant the hint; pairs with unlock's
              // acquire head_ load (possibly by a later owner).
              head_.store(succ, std::memory_order_release);
            }
          } else {
            // mo: release — as the transplant store above.
            head_.store(succ, std::memory_order_release);
          }
          return;  // `me` is dead; nobody holds a reference to it
        }
      }
    }
  }

  /// Non-blocking attempt.
  bool try_lock() HEMLOCK_TRY_ACQUIRE(true) {
    Node* expected = nullptr;
    // mo: acq_rel — same pairing as the lock() fast path; relaxed on
    // failure, no state was read.
    return tail_.compare_exchange_strong(expected, &lock_node_,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  /// Release.
  void unlock() HEMLOCK_RELEASE() {
    // mo: acquire — pairs with a waiter's release link into head_ so
    // we read the successor's initialized node.
    Node* succ = head_.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = &lock_node_;
      // mo: release hand-off — the critical section happens-before
      // the next acquirer's acquire CAS on tail_; relaxed on failure
      // (the head_ re-poll below synchronizes instead).
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        return;  // head_ was already null — fast-path invariant holds
      }
      // A waiter swapped in but has not linked through head_ yet.
      // mo: acquire — as the head_ load above.
      while ((succ = head_.load(std::memory_order_acquire)) == nullptr) {
        cpu_relax();
      }
    }
    // mo: relaxed — only the owner touches head_ between hand-offs;
    // the kGranted release below publishes it to the successor.
    head_.store(nullptr, std::memory_order_relaxed);
    // mo: release hand-off — critical section happens-before the
    // successor's acquire poll of its status word.
    succ->status.store(kGranted, std::memory_order_release);
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> status{0};
  };

  static constexpr std::uint32_t kWaiting = 1;
  static constexpr std::uint32_t kGranted = 0;

  std::atomic<Node*> tail_{nullptr};
  std::atomic<Node*> head_{nullptr};  ///< owner's successor hint
  Node lock_node_;  ///< pseudo-node standing in for the owner
};

template <>
struct lock_traits<McsK42Lock> {
  static constexpr const char* name = "mcs-k42";
  static constexpr std::size_t lock_words = 4;  // tail + head + 2-word pseudo-node
  static constexpr std::size_t held_words = 0;   // element recovered in lock()
  static constexpr std::size_t wait_words = 2;   // on-stack node while waiting
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = false;
  static constexpr bool is_fifo = true;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kLocal;
};

}  // namespace hemlock
