// rwlock.hpp — compact Hemlock-style reader-writer locks.
//
// Reader/writer is the two-session special case of group mutual
// exclusion (Gokhale & Mittal), and Hemlock's grant-based hand-off
// extends to it naturally: the *writer* path is exactly a Hemlock —
// writers serialize through HemlockBase's one-word tail and hand over
// through the per-thread CTR Grant word (core/hemlock.hpp), so the
// writer arrival path stays constant-space the way Hapax/Hemlock
// arrival paths are. Readers arrive through an ingress counter and
// leave through a matching egress decrement; a single writer-present
// word (`wflag_`) is the gate between the two sessions.
//
// Protocol:
//
//   lock_shared():  shard.fetch_add(1)                 (announce)
//                   if wflag_ == 0: done                (fast path)
//                   shard.fetch_sub(1); wait wflag_==0; retry
//   lock():         writers_.lock()                     (Hemlock FIFO)
//                   wflag_ = 1                          (close the gate)
//                   for each shard: wait shard == 0     (drain readers)
//   unlock():       wflag_ = 0 (wakes gated readers); writers_.unlock()
//   unlock_shared():shard.fetch_sub(1)  (wakes a draining writer)
//
// The announce/check pair and the gate-close/drain pair form a Dekker
// handshake (both sides seq_cst): a reader that read wflag_ == 0
// incremented its shard before the writer's drain scan, so the writer
// waits for it; a reader that read wflag_ != 0 backs out and cannot
// be inside the read-side critical section.
//
// Writer preference, by construction: once a writer closes the gate,
// new readers back out and wait, so the writer's drain is bounded by
// the readers already admitted — a continuous reader stream cannot
// starve writers. (The converse discipline is the documented one:
// like glibc's PREFER_WRITER_NONRECURSIVE_NP, a thread re-acquiring
// the read lock while a writer waits can deadlock — recursive read
// acquisition is not supported.)
//
// Sharding: under read-mostly load the ingress counter is the only
// contended line, and a single fetch-and-add word serializes every
// reader's cache-line acquisition. The default family therefore
// shards ingress across `kRwDefaultShards` cache-line-separated
// counters indexed by thread id — readers on different shards never
// touch each other's lines, and only the (rare) writer walks all of
// them. The "-compact" family collapses to one packed counter: 16
// bytes total, sized for hosting inside an interposed
// pthread_rwlock_t (src/interpose/shim_rwlock.*).
//
// The Waiting template parameter is the queue-lock waiting tier
// (core/waiting.hpp): it decides how gated readers wait on wflag_ and
// how draining writers wait on the shard counters, so -yield/-park/
// -adaptive variants come for free from the governor. The writer-side
// Hemlock takes the matching Grant policy (CTR for spin, futex for
// park, the governed grant policy for yield/adaptive).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/hemlock.hpp"
#include "core/waiting.hpp"
#include "locks/lock_traits.hpp"
#include "runtime/annotations.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/thread_rec.hpp"

namespace hemlock {

namespace detail {

/// The Hemlock Grant policy matching a queue-lock waiting tier, so
/// "rwlock-park"'s writers park exactly like "hemlock-futex"'s and
/// "rwlock-adaptive"'s escalate exactly like "hemlock-adaptive"'s.
/// (The Hemlock family has no fixed yield Grant policy; yield maps to
/// the governed one, mirroring the shim's HEMLOCK_WAIT=yield rule.)
template <typename Waiting>
struct rw_grant_policy {
  using type = GovernedGrantWaiting;
};
template <>
struct rw_grant_policy<QueueSpinWaiting> {
  using type = CtrCasWaiting;
};
template <>
struct rw_grant_policy<SpinThenParkWaiting> {
  using type = FutexWaiting;
};

/// Reader-ingress storage: cache-line-sharded counters, or one packed
/// word for the compact (pthread_rwlock_t-hostable) instantiation.
template <std::uint32_t Shards>
struct RwIngress {
  CacheAligned<std::atomic<std::uint32_t>> shard[Shards];
  std::atomic<std::uint32_t>& mine() noexcept {
    return shard[self().id % Shards].value;
  }
  std::atomic<std::uint32_t>& at(std::uint32_t i) noexcept {
    return shard[i].value;
  }
};
template <>
struct RwIngress<1> {
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint32_t>& mine() noexcept { return count; }
  std::atomic<std::uint32_t>& at(std::uint32_t) noexcept { return count; }
};

}  // namespace detail

/// Default ingress shard count for the standalone family: enough to
/// spread readers on the thread counts the figure sweeps use without
/// making the writer's drain walk long.
inline constexpr std::uint32_t kRwDefaultShards = 8;

/// Reader-writer lock: Hemlock writer path, sharded reader ingress,
/// writer-preferring gate. Satisfies BasicLockable (the writer side),
/// TryLockable and SharedLockable.
template <typename Waiting = QueueSpinWaiting,
          std::uint32_t Shards = kRwDefaultShards>
class HEMLOCK_CAPABILITY("mutex") RwLockT {
  using Grant = typename detail::rw_grant_policy<Waiting>::type;

 public:
  RwLockT() = default;
  RwLockT(const RwLockT&) = delete;
  RwLockT& operator=(const RwLockT&) = delete;

  /// Writer acquire: FIFO among writers (Hemlock), then close the
  /// reader gate and drain admitted readers shard by shard.
  // Body exempt: the exclusive hold is a composite (inner writers_
  // Hemlock + gate word) the analysis would misread as a leaked inner
  // capability; callers see only the outer RwLockT capability.
  void lock() noexcept HEMLOCK_ACQUIRE() HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    writers_.lock();
    close_gate_and_drain();
  }

  /// Writer non-blocking attempt: fails when another writer holds or
  /// queues, or when any reader is admitted (a transiently backing-out
  /// reader can also fail it — allowed for try operations).
  // Body exempt: same composite-capability shape as lock().
  bool try_lock() noexcept HEMLOCK_TRY_ACQUIRE(true)
      HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    if (!writers_.try_lock()) return false;
    // mo: seq_cst gate close + fence — the Dekker pairing with
    // lock_shared's seq_cst announce/check (see close_gate_and_drain).
    wflag_.store(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (std::uint32_t i = 0; i < Shards; ++i) {
      HEMLOCK_VERIFY_YIELD("rwlock:try-scan");
      // mo: acquire so a zero scan carries the departing readers'
      // critical sections into ours.
      if (ingress_.at(i).load(std::memory_order_acquire) != 0) {
        reopen_gate();
        writers_.unlock();
        return false;
      }
    }
    return true;
  }

  /// Writer release: reopen the gate (waking gated readers), then pass
  /// the writer baton.
  // Body exempt: releases the composite hold via the inner writers_
  // Hemlock the analysis never saw this function acquire.
  void unlock() noexcept HEMLOCK_RELEASE() HEMLOCK_NO_THREAD_SAFETY_ANALYSIS {
    reopen_gate();
    writers_.unlock();
  }

  /// Reader acquire: announce on this thread's shard, admit if no
  /// writer holds or drains; else back out and wait for the gate.
  void lock_shared() noexcept HEMLOCK_ACQUIRE_SHARED() {
    std::atomic<std::uint32_t>& c = ingress_.mine();
    for (;;) {
      // mo: seq_cst announce — Dekker handshake with the writer's
      // seq_cst gate-close + drain scan; either the writer sees our
      // increment or we see its wflag_ (both seq_cst keeps the pair
      // in the single total order).
      c.fetch_add(1, std::memory_order_seq_cst);
      // THE Dekker window: announced on the shard, wflag_ not yet
      // checked — a writer closing the gate right here must find our
      // increment in its drain scan.
      HEMLOCK_VERIFY_YIELD("rwlock:announced");
      // mo: seq_cst check — the other half of the handshake above.
      if (wflag_.load(std::memory_order_seq_cst) == 0) return;
      HEMLOCK_VERIFY_YIELD("rwlock:backout");
      egress(c);  // back out: the writer's drain must not wait for us
      Waiting::wait_until(wflag_, std::uint32_t{0});
    }
  }

  /// Reader non-blocking attempt.
  bool try_lock_shared() noexcept HEMLOCK_TRY_ACQUIRE_SHARED(true) {
    std::atomic<std::uint32_t>& c = ingress_.mine();
    // mo: seq_cst announce/check — same Dekker pair as lock_shared.
    c.fetch_add(1, std::memory_order_seq_cst);
    HEMLOCK_VERIFY_YIELD("rwlock:announced");
    // mo: seq_cst gate check — ordered after the announce above.
    if (wflag_.load(std::memory_order_seq_cst) == 0) return true;
    egress(c);
    return false;
  }

  /// Reader release.
  void unlock_shared() noexcept HEMLOCK_RELEASE_SHARED() {
    egress(ingress_.mine());
  }

  /// True if no thread holds the lock in either mode (racy snapshot;
  /// tests only).
  bool appears_unlocked() noexcept {
    if (!writers_.appears_unlocked()) return false;
    for (std::uint32_t i = 0; i < Shards; ++i) {
      // mo: acquire so test assertions reading through this snapshot
      // see the last releasing reader's writes.
      if (ingress_.at(i).load(std::memory_order_acquire) != 0) return false;
    }
    return true;
  }

 private:
  void close_gate_and_drain() noexcept {
    // mo: seq_cst gate close — Dekker handshake with lock_shared's
    // seq_cst announce/check.
    wflag_.store(1, std::memory_order_seq_cst);
    // Gate closed, drain not yet started: late readers must now be
    // backing out, admitted readers must still be counted.
    HEMLOCK_VERIFY_YIELD("rwlock:gate-closed");
    // mo: seq_cst fence so the drain scan below cannot read a shard
    // value older than the increment of any reader that was admitted
    // (read wflag_ == 0) before the gate closed — the Dekker pairing
    // with lock_shared's seq_cst announce/check.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (std::uint32_t i = 0; i < Shards; ++i) {
      // Between shard waits: a shard already passed must not be
      // re-enterable while the gate stays closed.
      HEMLOCK_VERIFY_YIELD("rwlock:drain-next");
      Waiting::wait_until(ingress_.at(i), std::uint32_t{0});
    }
  }

  void reopen_gate() noexcept {
    HEMLOCK_VERIFY_YIELD("rwlock:reopen");
    // The tier's publish wakes readers parked on the gate word.
    Waiting::publish(wflag_, std::uint32_t{0});
  }

  /// Decrement a shard; the reader whose decrement completes a
  /// writer's drain wakes that (possibly parked) writer. The fence +
  /// census-gated wake is the same Dekker handshake as
  /// queue_wait::publish_and_wake, with the RMW playing the store.
  static void egress(std::atomic<std::uint32_t>& c) noexcept {
    HEMLOCK_VERIFY_YIELD("rwlock:egress");
    // mo: seq_cst decrement — releases our read-side section to the
    // draining writer and orders against the census check below.
    const std::uint32_t prior = c.fetch_sub(1, std::memory_order_seq_cst);
    if constexpr (Waiting::may_park) {
      if (prior == 1) {
        // mo: seq_cst fence — store-to-load Dekker against a parking
        // writer (decrement above vs. its census registration), same
        // handshake as queue_wait::publish_and_wake.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (ContentionGovernor::instance().parked(&c) != 0) {
          futex_wake_all(queue_wait::futex_word(c));
        }
      }
    }
  }

  HemlockBase<Grant> writers_;             ///< writer-writer exclusion
  std::atomic<std::uint32_t> wflag_{0};    ///< writer present / draining
  detail::RwIngress<Shards> ingress_;      ///< admitted-reader counts
};

/// The standalone (sharded-ingress) family, one name per waiting tier.
using RwLock = RwLockT<QueueSpinWaiting>;
using RwYieldLock = RwLockT<QueueYieldWaiting>;
using RwParkLock = RwLockT<SpinThenParkWaiting>;
using RwGovernedLock = RwLockT<GovernedWaiting>;

/// The compact family: one packed ingress word, 16 bytes total —
/// what the pthread_rwlock_t interposition overlay hosts.
using RwCompactLock = RwLockT<QueueSpinWaiting, 1>;
using RwCompactYieldLock = RwLockT<QueueYieldWaiting, 1>;
using RwCompactParkLock = RwLockT<SpinThenParkWaiting, 1>;
using RwCompactGovernedLock = RwLockT<GovernedWaiting, 1>;

static_assert(sizeof(RwCompactLock) == 16,
              "compact rwlock must stay pthread_rwlock_t-hostable");

namespace detail {
template <typename W, std::uint32_t S>
struct rwlock_traits_base {
  static constexpr std::size_t lock_words =
      sizeof(RwLockT<W, S>) / sizeof(void*);
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  // The writer path hands over through the thread's Grant word.
  static constexpr std::size_t thread_words = 1;
  static constexpr bool nontrivial_init = false;
  // Writers are FIFO (Hemlock); readers are admitted as a group.
  static constexpr bool is_fifo = false;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kGlobal;
  static constexpr const char* waiting = W::name;
  static constexpr bool oversub_safe = W::oversub_safe;
};
}  // namespace detail

template <>
struct lock_traits<RwLock>
    : detail::rwlock_traits_base<QueueSpinWaiting, kRwDefaultShards> {
  static constexpr const char* name = "rwlock";
};
template <>
struct lock_traits<RwYieldLock>
    : detail::rwlock_traits_base<QueueYieldWaiting, kRwDefaultShards> {
  static constexpr const char* name = "rwlock-yield";
};
template <>
struct lock_traits<RwParkLock>
    : detail::rwlock_traits_base<SpinThenParkWaiting, kRwDefaultShards> {
  static constexpr const char* name = "rwlock-park";
};
template <>
struct lock_traits<RwGovernedLock>
    : detail::rwlock_traits_base<GovernedWaiting, kRwDefaultShards> {
  static constexpr const char* name = "rwlock-adaptive";
};
template <>
struct lock_traits<RwCompactLock>
    : detail::rwlock_traits_base<QueueSpinWaiting, 1> {
  static constexpr const char* name = "rwlock-compact";
};
template <>
struct lock_traits<RwCompactYieldLock>
    : detail::rwlock_traits_base<QueueYieldWaiting, 1> {
  static constexpr const char* name = "rwlock-compact-yield";
};
template <>
struct lock_traits<RwCompactParkLock>
    : detail::rwlock_traits_base<SpinThenParkWaiting, 1> {
  static constexpr const char* name = "rwlock-compact-park";
};
template <>
struct lock_traits<RwCompactGovernedLock>
    : detail::rwlock_traits_base<GovernedWaiting, 1> {
  static constexpr const char* name = "rwlock-compact-adaptive";
};

}  // namespace hemlock
