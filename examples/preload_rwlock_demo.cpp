// preload_rwlock_demo — a deliberately plain pthreads rwlock workload.
//
// Like the other preload demos it knows nothing about this library:
// readers and writers share a small table guarded by one
// pthread_rwlock_t. Run it bare and it uses glibc's rwlock; run it
// under the interposition library and the same binary runs on the
// compact hemlock-style rwlock family:
//
//   LD_PRELOAD=$BUILD/libhemlock_preload.so HEMLOCK_RWLOCK=rwlock-compact
//     HEMLOCK_WAIT=park ./preload_rwlock_demo
//
// Every writer advances all table cells by one, keeping them equal;
// every reader (rdlock and occasionally timedrdlock) snapshots the
// table and checks the cells agree — a reader overlapping a writer
// sees torn cells and the demo exits nonzero. Exit code 0 iff no
// reader ever observed a torn table, the final generation equals the
// writer count, and a trywrlock taken mid-run behaved. This makes
// the binary double as the rwlock overlay's integration test (a lost
// writer wake hangs it; the CI smoke runs it under `timeout`).
#include <pthread.h>
#include <time.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace {

long env_long(const char* key, long def) {
  const char* env = std::getenv(key);
  const long parsed = env != nullptr ? std::atol(env) : 0;
  return parsed > 0 ? parsed : def;
}

/// Total threads; HEMLOCK_DEMO_THREADS overrides (the CI
/// oversubscription smoke runs at a multiple of the host's cores).
/// Split ~3/4 readers, at least one of each role.
int threads() {
  static const int n = static_cast<int>(env_long("HEMLOCK_DEMO_THREADS", 8));
  return n >= 2 ? n : 2;
}
int writers() { return threads() / 4 > 0 ? threads() / 4 : 1; }
int readers() { return threads() - writers(); }

/// Write generations per writer; HEMLOCK_DEMO_ITERS overrides.
long iters() {
  static const long n = env_long("HEMLOCK_DEMO_ITERS", 2000);
  return n;
}

constexpr int kCells = 8;

pthread_rwlock_t g_table_lock = PTHREAD_RWLOCK_INITIALIZER;  // lazy adoption
long g_table[kCells];

long g_torn_observations = 0;  // readers: cells disagreed (exclusion bug)
long g_reads = 0;              // successful reader snapshots
/// Per-thread result slots (reads, then torn counts), summed after
/// join so reader threads never share a counter.
std::vector<long>* g_sink;

void* writer(void*) {
  for (long i = 0, n = iters(); i < n; ++i) {
    pthread_rwlock_wrlock(&g_table_lock);
    for (long& cell : g_table) ++cell;
    pthread_rwlock_unlock(&g_table_lock);
  }
  return nullptr;
}

void* reader(void* arg) {
  const long id = reinterpret_cast<long>(arg);
  long reads = 0, torn = 0;
  for (;;) {
    // Alternate plain and timed read acquires so both overlay paths
    // run; the timed deadline is generous (200 ms) so timeouts only
    // fire if writers wedge the lock.
    int rc;
    if ((reads & 7) == 7) {
      struct timespec deadline;
      clock_gettime(CLOCK_REALTIME, &deadline);
      deadline.tv_nsec += 200 * 1000 * 1000;
      if (deadline.tv_nsec >= 1000000000L) {
        deadline.tv_nsec -= 1000000000L;
        ++deadline.tv_sec;
      }
      rc = pthread_rwlock_timedrdlock(&g_table_lock, &deadline);
    } else {
      rc = pthread_rwlock_rdlock(&g_table_lock);
    }
    if (rc != 0) continue;
    const long first = g_table[0];
    for (const long cell : g_table) {
      if (cell != first) {
        ++torn;
        break;
      }
    }
    pthread_rwlock_unlock(&g_table_lock);
    ++reads;
    if (first >= static_cast<long>(writers()) * iters()) break;  // done
    if ((reads & 3) == 0) {
      // Brief backoff so writers make progress even under glibc's
      // default reader-preferring rwlock (bare, un-preloaded runs);
      // the interposed family is writer-preferring and needs none.
      struct timespec nap{0, 100 * 1000};
      nanosleep(&nap, nullptr);
    }
  }
  (*g_sink)[static_cast<std::size_t>(id)] = reads;
  (*g_sink)[static_cast<std::size_t>(readers() + id)] = torn;
  return nullptr;
}

}  // namespace

int main() {
  g_sink = new std::vector<long>(static_cast<std::size_t>(2 * readers()), 0);

  std::vector<pthread_t> workers(
      static_cast<std::size_t>(readers() + writers()));
  for (int r = 0; r < readers(); ++r) {
    pthread_create(&workers[static_cast<std::size_t>(r)], nullptr, reader,
                   reinterpret_cast<void*>(static_cast<long>(r)));
  }
  for (int w = 0; w < writers(); ++w) {
    pthread_create(&workers[static_cast<std::size_t>(readers() + w)], nullptr,
                   writer, nullptr);
  }

  // Mid-run trywrlock sanity from the main thread: either acquire
  // (then the table must be coherent) or observe EBUSY — never hang.
  bool try_ok = true;
  if (pthread_rwlock_trywrlock(&g_table_lock) == 0) {
    const long first = g_table[0];
    for (const long cell : g_table) try_ok = try_ok && cell == first;
    pthread_rwlock_unlock(&g_table_lock);
  }

  for (auto& w : workers) pthread_join(w, nullptr);
  for (int r = 0; r < readers(); ++r) {
    g_reads += (*g_sink)[static_cast<std::size_t>(r)];
    g_torn_observations += (*g_sink)[static_cast<std::size_t>(readers() + r)];
  }

  const long expected = static_cast<long>(writers()) * iters();
  const bool generations_ok = g_table[0] == expected;
  pthread_rwlock_destroy(&g_table_lock);

  std::printf("writers: %d x %ld generations (final %ld, expected %ld)\n",
              writers(), iters(), g_table[0], expected);
  std::printf("readers: %d threads, %ld snapshots, %ld torn\n", readers(),
              g_reads, g_torn_observations);

  const bool ok =
      generations_ok && g_torn_observations == 0 && try_ok && g_reads > 0;
  std::puts(ok ? "OK" : "FAILED");
  delete g_sink;
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
