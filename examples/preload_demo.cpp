// preload_demo — a deliberately plain pthreads program.
//
// It knows nothing about this library: it creates pthread mutexes
// (one dynamic, one PTHREAD_MUTEX_INITIALIZER static), hammers them
// from several threads, and prints the counters. Run it bare and it
// uses glibc's mutex; run it under the interposition library and the
// same binary runs on any HEMLOCK_LOCK algorithm (the paper's §5
// evaluation mechanism):
//
//   LD_PRELOAD=$BUILD/src/interpose/libhemlock_preload.so  # plus
//   HEMLOCK_LOCK=hemlock ./preload_demo
//
// Exit code 0 iff the counters are exact — which makes this binary
// double as the interposition integration test.
#include <pthread.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace {

/// Positive long from the environment, or `def` when unset/invalid.
long env_long(const char* key, long def) {
  const char* env = std::getenv(key);
  const long parsed = env != nullptr ? std::atol(env) : 0;
  return parsed > 0 ? parsed : def;
}

/// Contending threads; HEMLOCK_DEMO_THREADS overrides (the CI
/// oversubscription smoke runs at a multiple of the host's cores to
/// prove the shim's adaptive waiting tier keeps queue locks from
/// convoying when threads outnumber CPUs).
int threads() {
  static const int n = static_cast<int>(env_long("HEMLOCK_DEMO_THREADS", 8));
  return n;
}

/// Iterations per thread; HEMLOCK_DEMO_ITERS overrides (the
/// interposition integration test dials this down so that sweeping
/// every algorithm stays fast on small hosts — queue locks hand over
/// at scheduler speed when cores are scarce).
long iters() {
  static const long n = env_long("HEMLOCK_DEMO_ITERS", 20000);
  return n;
}

pthread_mutex_t g_static_mu = PTHREAD_MUTEX_INITIALIZER;  // lazy adoption
pthread_mutex_t g_dynamic_mu;                             // pthread_mutex_init
long g_static_counter = 0;
long g_dynamic_counter = 0;
long g_trylock_wins = 0;

void* worker(void*) {
  for (long i = 0, n = iters(); i < n; ++i) {
    pthread_mutex_lock(&g_static_mu);
    ++g_static_counter;
    pthread_mutex_unlock(&g_static_mu);

    pthread_mutex_lock(&g_dynamic_mu);
    ++g_dynamic_counter;
    pthread_mutex_unlock(&g_dynamic_mu);

    if (pthread_mutex_trylock(&g_static_mu) == 0) {
      ++g_trylock_wins;  // protected: we hold the lock
      ++g_static_counter;
      pthread_mutex_unlock(&g_static_mu);
    }
  }
  return nullptr;
}

}  // namespace

int main() {
  pthread_mutex_init(&g_dynamic_mu, nullptr);

  std::vector<pthread_t> workers(threads());
  for (auto& t : workers) pthread_create(&t, nullptr, worker, nullptr);
  for (auto& t : workers) pthread_join(t, nullptr);

  const long expected_static =
      static_cast<long>(threads()) * iters() + g_trylock_wins;
  const long expected_dynamic = static_cast<long>(threads()) * iters();
  std::printf("static counter : %ld (expected %ld)\n", g_static_counter,
              expected_static);
  std::printf("dynamic counter: %ld (expected %ld)\n", g_dynamic_counter,
              expected_dynamic);
  std::printf("trylock wins   : %ld\n", g_trylock_wins);

  pthread_mutex_destroy(&g_dynamic_mu);
  const bool ok = g_static_counter == expected_static &&
                  g_dynamic_counter == expected_dynamic;
  std::puts(ok ? "OK" : "FAILED");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
