// pipeline — a lock-protected multi-stage pipeline showing coupled
// ("hand-over-hand") locking, the usage pattern the paper notes does
// NOT cause multi-waiting (§2.2: "common usage patterns such as
// hand-over-hand 'coupled' locking do not result in multi-waiting").
//
// Work items flow through a chain of stages; each stage has its own
// Hemlock-guarded slot. A worker holds at most two stage locks at a
// time (the one it reads from and the one it writes to), so every
// thread's Grant word has at most one waiter — purely local spinning,
// verified live with the §5.4 profiler.
//
//   build/examples/pipeline [stages] [items]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "api/hemlock_api.hpp"
#include "stats/lock_profiler.hpp"

namespace {

struct Stage {
  hemlock::Hemlock mu;
  std::optional<std::uint64_t> slot;  // protected by mu
  std::uint64_t processed = 0;        // protected by mu
};

}  // namespace

int main(int argc, char** argv) {
  const int num_stages = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t num_items =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 20000;

  std::vector<Stage> stages(num_stages);

  hemlock::ThreadRegistry::reset_profile();
  hemlock::LockProfiler::enable(true);

  // One mover thread per adjacent stage pair: takes an item from
  // stage i and pushes it to stage i+1, holding both locks briefly
  // (coupled locking).
  std::vector<std::thread> movers;
  for (int s = 0; s + 1 < num_stages; ++s) {
    movers.emplace_back([&, s] {
      Stage& src = stages[s];
      Stage& dst = stages[s + 1];
      std::uint64_t moved = 0;
      while (moved < num_items) {
        src.mu.lock();
        if (!src.slot.has_value()) {
          src.mu.unlock();
          hemlock::cpu_relax();
          continue;
        }
        dst.mu.lock();  // coupled: hold src and dst
        if (dst.slot.has_value()) {
          dst.mu.unlock();
          src.mu.unlock();
          hemlock::cpu_relax();
          continue;
        }
        dst.slot = *src.slot + 1;  // "process": increment per stage
        src.slot.reset();
        ++dst.processed;
        src.mu.unlock();  // arbitrary release order
        dst.mu.unlock();
        ++moved;
      }
    });
  }

  // Producer feeds stage 0; consumer drains the last stage.
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < num_items;) {
      stages[0].mu.lock();
      if (!stages[0].slot.has_value()) {
        stages[0].slot = i;
        ++stages[0].processed;
        ++i;
      }
      stages[0].mu.unlock();
    }
  });
  std::uint64_t checksum = 0;
  std::thread consumer([&] {
    Stage& last = stages[num_stages - 1];
    for (std::uint64_t drained = 0; drained < num_items;) {
      last.mu.lock();
      if (last.slot.has_value()) {
        checksum += *last.slot;
        last.slot.reset();
        ++drained;
      }
      last.mu.unlock();
    }
  });

  producer.join();
  for (auto& m : movers) m.join();
  consumer.join();
  hemlock::LockProfiler::enable(false);

  // Every item passed num_stages-1 increments; sum over i of
  // (i + stages-1) = n(n-1)/2 + n*(stages-1).
  const std::uint64_t expected = num_items * (num_items - 1) / 2 +
                                 num_items * (num_stages - 1);
  const auto profile = hemlock::collect_lock_usage_profile();
  std::cout << "stages=" << num_stages << " items=" << num_items
            << " checksum=" << checksum << " (expected " << expected
            << ")\n\n"
            << profile.describe()
            << "\n(coupled locking holds at most 2 locks; the paper "
               "predicts at most 2 waiters per Grant word and, typically, "
               "purely local spinning)\n";
  hemlock::ThreadRegistry::reset_profile();
  return checksum == expected ? 0 : 1;
}
