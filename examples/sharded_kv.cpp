// sharded_kv — the sharded serving layer as an application: hash-
// partitioned shards with runtime-chosen locks, epoch-protected
// lock-free reads, tombstoned deletes and cross-shard scans.
//
//   build/examples/sharded_kv [clients] [seconds] [lock-name] [shards]
//
// Contrast with examples/kv_store (one central mutex): here every
// shard has its own factory-named lock, the read path holds NO lock
// (quiescent-state reclamation keeps retired memtables/versions alive
// until in-flight readers exit), and the same binary can flip to
// shared-mode locked reads for comparison.
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/hemlock_api.hpp"
#include "minikv/db_bench.hpp"
#include "minikv/sharded_db.hpp"

int main(int argc, char** argv) {
  using namespace hemlock;
  const int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;
  const std::string lock_name = argc > 3 ? argv[3] : "hemlock";
  const std::size_t shards =
      argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 16;
  constexpr std::uint64_t kKeys = 50000;

  const LockInfo* lock_info = LockFactory::instance().info(lock_name);
  if (lock_info == nullptr) {
    std::cerr << "unknown lock \"" << lock_name << "\"; available:";
    for (const auto n : LockFactory::instance().names()) {
      std::cerr << " " << n;
    }
    std::cerr << "\n";
    return 2;
  }
  std::cout << "shards=" << shards << " shard lock=" << lock_name
            << " (reads are epoch-protected, lock-free)\n";

  minikv::ShardedDbOptions opts;
  opts.num_shards = shards;
  minikv::ShardedDB<AnyLock> db(opts, lock_name);

  std::cout << "populating " << kKeys << " keys...\n";
  const std::string value(100, 'v');
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    db.put(minikv::bench_key(k), value);
  }
  db.flush();

  // Mixed serving traffic: every client does mostly gets with some
  // scans, overwrites and deletes (deleted keys are re-created, so
  // lookups of live keys always succeed).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 prng(77 + c);
      std::string v;
      std::vector<std::pair<std::string, std::string>> range;
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = prng.below(kKeys);
        const auto roll = prng.below(100);
        if (roll < 90) {
          (void)db.get(minikv::bench_key(k), &v);
        } else if (roll < 95) {
          db.put(minikv::bench_key(k), value);
        } else if (roll < 97) {
          db.del(minikv::bench_key(k));
          db.put(minikv::bench_key(k), value);  // resurrect
        } else {
          db.scan(minikv::bench_key(k), 16, &range);
        }
        ++n;
      }
      ops.fetch_add(n);
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  stop.store(true);
  for (auto& t : threads) t.join();

  const auto st = db.stats();
  std::cout << "\nclients=" << clients << " duration=" << seconds << "s\n"
            << "aggregate ops: " << ops.load() << " ("
            << static_cast<double>(ops.load()) / seconds / 1e6
            << " M ops/sec)\n"
            << "gets: " << st.epoch_gets << " epoch-protected, "
            << st.locked_gets << " locked; scans: " << st.scans << "\n"
            << "flushes: " << st.flushes << ", compactions: "
            << st.compactions << ", tables now: " << db.num_tables() << "\n"
            << "reclamation: epoch " << st.reclaim.epoch << ", "
            << st.reclaim.freed << " freed, " << st.reclaim.pending
            << " pending, " << st.reclaim.advances << " advances ("
            << st.reclaim.advance_blocked << " blocked by in-flight "
            << "readers)\n"
            << "block cache: " << db.cache_hits() << " hits, "
            << db.cache_misses() << " misses\n";
  return 0;
}
