// kv_store — MiniKV with a runtime-selected central mutex: the
// Figure-8 architecture as an application (coarse-grained locking
// around a read-mostly store), with live §5.4 profiling.
//
//   build/examples/kv_store [readers] [seconds] [lock-name]
//
// The central mutex is an AnyLock resolved through the LockFactory —
// the same binary runs the store on Hemlock, MCS, CLH, Ticket, ...
// exactly like the paper swaps pthread_mutex implementations with
// LD_PRELOAD (§5). Compile-time embedders use DB<Hemlock> instead.
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "api/hemlock_api.hpp"
#include "minikv/db.hpp"
#include "minikv/db_bench.hpp"
#include "stats/lock_profiler.hpp"

int main(int argc, char** argv) {
  using namespace hemlock;
  const int readers = argc > 1 ? std::atoi(argv[1]) : 8;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;
  const std::string lock_name = argc > 3 ? argv[3] : "hemlock";
  constexpr std::uint64_t kKeys = 50000;

  const LockInfo* lock_info = LockFactory::instance().info(lock_name);
  if (lock_info == nullptr) {
    std::cerr << "unknown lock \"" << lock_name << "\"; available:";
    for (const auto n : LockFactory::instance().names()) {
      std::cerr << " " << n;
    }
    std::cerr << "\n";
    return 2;
  }
  // readers + 1 writer contend on the central mutex; bounded-capacity
  // algorithms (Anderson) corrupt their slot ring past the bound.
  if (lock_info->max_threads != 0 &&
      static_cast<std::size_t>(readers) + 1 > lock_info->max_threads) {
    std::cerr << "lock \"" << lock_name << "\" supports at most "
              << lock_info->max_threads << " concurrent threads (asked "
              << readers + 1 << ")\n";
    return 2;
  }
  std::cout << "central mutex: " << lock_name << "\n";
  minikv::DB<AnyLock> db(minikv::DbOptions{}, lock_name);

  std::cout << "populating " << kKeys << " keys (fillseq)...\n";
  minikv::fill_seq(db, kKeys, 100);
  std::cout << "tables=" << db.num_tables()
            << " compactions=" << db.compactions() << "\n";

  ThreadRegistry::reset_profile();
  LockProfiler::enable(true);

  // Read-mostly workload with a background writer, like LevelDB under
  // a mixed load: readers do random gets; the writer keeps updating.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      Xoshiro256 prng(77 + r);
      std::string value;
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k = prng.below(kKeys);
        if (!db.get(minikv::bench_key(k), &value).is_ok()) {
          std::cerr << "lost key!\n";
          std::abort();
        }
        ++n;
      }
      reads.fetch_add(n);
    });
  }
  std::thread writer([&] {
    Xoshiro256 prng(1234);
    std::uint64_t version = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto k = prng.below(kKeys);
      db.put(minikv::bench_key(k), "updated-" + std::to_string(++version));
    }
  });

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  stop.store(true);
  for (auto& t : threads) t.join();
  writer.join();
  LockProfiler::enable(false);

  std::cout << "\nreaders=" << readers << " duration=" << seconds << "s\n"
            << "aggregate reads: " << reads.load() << " ("
            << static_cast<double>(reads.load()) / seconds / 1e6
            << " M reads/sec)\n"
            << "block cache: " << db.cache_hits() << " hits, "
            << db.cache_misses() << " misses\n\n"
            << collect_lock_usage_profile().describe()
            << "(single central lock => the paper's §5.4 prediction: "
               "purely local spinning)\n";
  ThreadRegistry::reset_profile();
  return 0;
}
