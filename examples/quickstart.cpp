// quickstart — the 5-minute tour of the Hemlock library.
//
//   build/examples/quickstart [lock-name]
//
// Shows: creating a Hemlock (one word!), RAII guards, try_lock,
// std::scoped_lock interop, a multi-threaded counter, the per-thread
// Grant record that makes it all work — and the runtime public API:
// picking any roster algorithm by name through the LockFactory and
// driving it through the type-erased AnyLock.
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "api/hemlock_api.hpp"

int main(int argc, char** argv) {
  // A Hemlock is a single word: the tail of its implicit queue.
  hemlock::Hemlock lock;
  static_assert(sizeof(lock) == sizeof(void*));
  std::cout << "sizeof(Hemlock) = " << sizeof(lock) << " bytes\n";

  // 1. Plain lock/unlock — context-free: nothing passes between them.
  lock.lock();
  std::cout << "acquired (uncontended path: one atomic SWAP)\n";
  lock.unlock();

  // 2. RAII — our guard or any std::lock-family adapter works.
  {
    hemlock::LockGuard<hemlock::Hemlock> g(lock);
    std::cout << "guarded critical section\n";
  }
  {
    std::scoped_lock g(lock);  // BasicLockable-compatible
    std::cout << "std::scoped_lock works too\n";
  }

  // 3. try_lock — a single CAS (paper §2).
  if (lock.try_lock()) {
    std::cout << "try_lock succeeded\n";
    lock.unlock();
  }

  // 4. Real contention: 8 threads, one shared counter.
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100000; ++i) {
        hemlock::with_lock(lock, [&] { ++counter; });
      }
    });
  }
  for (auto& t : threads) t.join();
  std::cout << "counter = " << counter << " (expected 800000)\n";

  // 5. The entire per-thread cost: one Grant word (on its own cache
  // line), registered automatically on first use.
  std::cout << "this thread's Grant word is at " << &hemlock::self().grant.value
            << " and is currently "
            << (hemlock::self().grant.value.load() == hemlock::kGrantEmpty
                    ? "empty"
                    : "busy")
            << "\n";
  std::cout << "threads ever registered: "
            << hemlock::ThreadRegistry::ever_registered() << "\n";

  // 6. Runtime selection — the paper swaps algorithms with an
  // environment variable (§5); the public API swaps them with a
  // string. Same code, any roster algorithm:
  const auto& factory = hemlock::LockFactory::instance();
  std::cout << "\nfactory roster (" << factory.size() << " algorithms):";
  for (const auto name : factory.names()) std::cout << " " << name;
  std::cout << "\n";

  const std::string chosen = argc > 1 ? argv[1] : "mcs";
  if (factory.find(chosen) == nullptr) {
    std::cerr << "unknown lock \"" << chosen << "\" — pick from the roster "
              << "above\n";
    return 2;  // same exit code as the benches' unknown-name path
  }
  hemlock::AnyLock any(chosen);  // constructed in-place, no heap
  std::cout << "AnyLock(\"" << chosen << "\"): fifo="
            << (any.info().is_fifo ? "yes" : "no")
            << " trylock=" << (any.info().has_trylock ? "yes" : "no")
            << " spinning=" << hemlock::spinning_name(any.info().spinning)
            << " body=" << any.info().lock_words << " word(s)\n";

  long any_counter = 0;
  threads.clear();
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        hemlock::with_lock(any, [&] { ++any_counter; });
      }
    });
  }
  for (auto& t : threads) t.join();
  std::cout << "counter via AnyLock(\"" << chosen << "\") = " << any_counter
            << " (expected 200000)\n";

  return counter == 800000 && any_counter == 200000 ? 0 : 1;
}
