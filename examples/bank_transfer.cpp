// bank_transfer — multiple locks held simultaneously, released in
// arbitrary order: the workload requirement the paper calls out for
// pthread-compatible locks (§4) and the regime where Hemlock's
// "fere-local" spinning (§3) differs from CLH/MCS's strictly local
// spinning.
//
// A classic bank: N accounts, each guarded by its own Hemlock (one
// word per account — with 1<<16 accounts that is 512 KiB of locks
// under MCS-with-head vs 256 KiB under Hemlock; Table 1's point at
// scale). Transfer threads lock two accounts in canonical (address)
// order — the standard deadlock-avoidance discipline — move money,
// and release. An auditor occasionally locks ALL accounts to take a
// consistent snapshot, exercising deep multi-lock holding (the
// Figure-9 leader pattern).
//
//   build/examples/bank_transfer [num-accounts] [num-threads]
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "api/hemlock_api.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/prng.hpp"

namespace {

struct Account {
  hemlock::Hemlock mu;  // one word of lock per account
  long balance = 0;     // protected by mu
};

}  // namespace

int main(int argc, char** argv) {
  const int num_accounts = argc > 1 ? std::atoi(argv[1]) : 64;
  const int num_threads = argc > 2 ? std::atoi(argv[2]) : 8;
  constexpr long kInitialBalance = 1000;
  constexpr int kTransfersPerThread = 50000;

  std::vector<Account> accounts(num_accounts);
  for (auto& a : accounts) a.balance = kInitialBalance;
  const long expected_total = static_cast<long>(num_accounts) * kInitialBalance;

  std::atomic<bool> stop{false};
  std::atomic<long> audits{0};

  // Auditor: lock everything (ascending), sum, unlock (descending).
  std::thread auditor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      long total = 0;
      for (auto& a : accounts) a.mu.lock();
      for (auto& a : accounts) total += a.balance;
      for (auto it = accounts.rbegin(); it != accounts.rend(); ++it) {
        it->mu.unlock();
      }
      if (total != expected_total) {
        std::cerr << "AUDIT FAILED: " << total << " != " << expected_total
                  << "\n";
        std::abort();
      }
      audits.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  // Transfer workers.
  std::vector<std::thread> workers;
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      hemlock::Xoshiro256 prng(0xBA4Cull + t);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const auto from = prng.below(static_cast<std::uint32_t>(num_accounts));
        auto to = prng.below(static_cast<std::uint32_t>(num_accounts));
        if (to == from) to = (to + 1) % num_accounts;
        const long amount = 1 + prng.below(100);

        // Canonical lock order prevents deadlock while holding two
        // locks at once (hand-over-hand style usage, §2.2).
        Account& first = accounts[std::min(from, to)];
        Account& second = accounts[std::max(from, to)];
        first.mu.lock();
        second.mu.lock();
        accounts[from].balance -= amount;
        accounts[to].balance += amount;
        // Arbitrary release order is fine (paper §4 requirement).
        first.mu.unlock();
        second.mu.unlock();
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  auditor.join();

  long total = 0;
  for (auto& a : accounts) total += a.balance;
  std::cout << "accounts=" << num_accounts << " threads=" << num_threads
            << " transfers=" << (static_cast<long>(num_threads) *
                                 kTransfersPerThread)
            << " audits=" << audits.load() << "\n"
            << "final total = " << total << " (expected " << expected_total
            << ")\n"
            << "lock memory = " << num_accounts * sizeof(hemlock::Hemlock)
            << " bytes for " << num_accounts << " accounts\n";
  return total == expected_total ? 0 : 1;
}
