// preload_cond_demo — a deliberately plain pthreads producer/consumer.
//
// Like preload_demo it knows nothing about this library, but unlike it
// this program *lives* on pthread_cond_wait / timedwait / signal /
// broadcast: producers and consumers exchange items through a small
// bounded ring guarded by one mutex and two condition variables (the
// textbook shape most real preload targets use). Run it bare and it
// uses glibc's mutex+condvar; run it under the interposition library
// and the same binary runs on any HEMLOCK_LOCK algorithm with the
// futex condvar overlay doing the waiting:
//
//   LD_PRELOAD=$BUILD/libhemlock_preload.so  # plus
//   HEMLOCK_LOCK=mcs HEMLOCK_WAIT=park ./preload_cond_demo
//
// Exit code 0 iff every produced item is consumed exactly once and
// the checksums agree — which makes this binary double as the condvar
// overlay's integration test (lost wakeups hang it; the CI smoke runs
// it under `timeout`).
#include <pthread.h>
#include <time.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace {

/// Positive long from the environment, or `def` when unset/invalid.
long env_long(const char* key, long def) {
  const char* env = std::getenv(key);
  const long parsed = env != nullptr ? std::atol(env) : 0;
  return parsed > 0 ? parsed : def;
}

/// Total threads; HEMLOCK_DEMO_THREADS overrides (the CI
/// oversubscription smoke runs at a multiple of the host's cores).
/// Split half producers / half consumers, at least one of each.
int threads() {
  static const int n = static_cast<int>(env_long("HEMLOCK_DEMO_THREADS", 8));
  return n >= 2 ? n : 2;
}
int producers() { return threads() / 2; }
int consumers() { return threads() - producers(); }

/// Items per producer; HEMLOCK_DEMO_ITERS overrides.
long iters() {
  static const long n = env_long("HEMLOCK_DEMO_ITERS", 5000);
  return n;
}

constexpr int kRingCapacity = 16;

pthread_mutex_t g_mu = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t g_not_empty = PTHREAD_COND_INITIALIZER;  // lazy adoption
pthread_cond_t g_not_full;                              // pthread_cond_init

long g_ring[kRingCapacity];
int g_ring_head = 0;  // next slot to consume
int g_ring_size = 0;  // occupied slots

long g_produced_count = 0;
long g_produced_sum = 0;
long g_consumed_count = 0;
long g_consumed_sum = 0;
bool g_done_producing = false;
long g_timedwait_timeouts = 0;  // exercised, not required to be nonzero

void* producer(void* arg) {
  const long id = reinterpret_cast<long>(arg);
  for (long i = 0, n = iters(); i < n; ++i) {
    const long item = id * n + i + 1;
    pthread_mutex_lock(&g_mu);
    while (g_ring_size == kRingCapacity) {
      pthread_cond_wait(&g_not_full, &g_mu);
    }
    g_ring[(g_ring_head + g_ring_size) % kRingCapacity] = item;
    ++g_ring_size;
    ++g_produced_count;
    g_produced_sum += item;
    pthread_mutex_unlock(&g_mu);
    pthread_cond_signal(&g_not_empty);
  }
  return nullptr;
}

void* consumer(void*) {
  for (;;) {
    pthread_mutex_lock(&g_mu);
    while (g_ring_size == 0 && !g_done_producing) {
      // Alternate untimed and timed waits so both overlay paths run;
      // the deadline is generous enough that timeouts stay rare, but
      // either return reason is followed by the predicate re-check
      // (spurious wakeups are allowed and absorbed here).
      if ((g_consumed_count & 1) == 0) {
        pthread_cond_wait(&g_not_empty, &g_mu);
      } else {
        struct timespec deadline;
        clock_gettime(CLOCK_REALTIME, &deadline);
        deadline.tv_nsec += 50 * 1000 * 1000;  // 50 ms
        if (deadline.tv_nsec >= 1000000000L) {
          deadline.tv_nsec -= 1000000000L;
          ++deadline.tv_sec;
        }
        if (pthread_cond_timedwait(&g_not_empty, &g_mu, &deadline) != 0) {
          ++g_timedwait_timeouts;
        }
      }
    }
    if (g_ring_size == 0) {  // done producing and drained
      pthread_mutex_unlock(&g_mu);
      return nullptr;
    }
    const long item = g_ring[g_ring_head];
    g_ring_head = (g_ring_head + 1) % kRingCapacity;
    --g_ring_size;
    ++g_consumed_count;
    g_consumed_sum += item;
    pthread_mutex_unlock(&g_mu);
    pthread_cond_signal(&g_not_full);
  }
}

}  // namespace

int main() {
  pthread_cond_init(&g_not_full, nullptr);

  std::vector<pthread_t> workers(
      static_cast<std::size_t>(producers() + consumers()));
  for (int p = 0; p < producers(); ++p) {
    pthread_create(&workers[static_cast<std::size_t>(p)], nullptr, producer,
                   reinterpret_cast<void*>(static_cast<long>(p)));
  }
  for (int c = 0; c < consumers(); ++c) {
    pthread_create(&workers[static_cast<std::size_t>(producers() + c)],
                   nullptr, consumer, nullptr);
  }

  for (int p = 0; p < producers(); ++p) {
    pthread_join(workers[static_cast<std::size_t>(p)], nullptr);
  }
  // All items are in flight or consumed; release the consumers.
  pthread_mutex_lock(&g_mu);
  g_done_producing = true;
  pthread_mutex_unlock(&g_mu);
  pthread_cond_broadcast(&g_not_empty);
  for (int c = 0; c < consumers(); ++c) {
    pthread_join(workers[static_cast<std::size_t>(producers() + c)], nullptr);
  }

  const long expected = static_cast<long>(producers()) * iters();
  std::printf("produced: %ld items (sum %ld)\n", g_produced_count,
              g_produced_sum);
  std::printf("consumed: %ld items (sum %ld, expected %ld items)\n",
              g_consumed_count, g_consumed_sum, expected);
  std::printf("timedwait timeouts: %ld\n", g_timedwait_timeouts);

  pthread_cond_destroy(&g_not_empty);
  pthread_cond_destroy(&g_not_full);
  pthread_mutex_destroy(&g_mu);
  const bool ok = g_produced_count == expected &&
                  g_consumed_count == expected &&
                  g_consumed_sum == g_produced_sum;
  std::puts(ok ? "OK" : "FAILED");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
