// bench_fig9_multiwait — reproduces Figure 9, the adversarial
// multi-waiting benchmark (§5.6).
//
// Paper: "an array of 10 shared locks. There is a single dedicated
// 'leader' thread which loops as follows: acquire all 10 locks in
// ascending order and then release the locks in reverse order. ...
// All the other threads loop, picking a single random lock from the
// set of 10, and then acquire and release that lock. We ignore the
// number of iterations completed by the non-leader threads."
//
// Expected shape: everyone degrades with threads; Ticket good at low
// counts then falls behind; Hemlock- somewhat worse than CLH/MCS;
// Hemlock (CTR) worse than Hemlock- — "The CTR optimization is
// actually harmful under high degrees of multi-waiting."
//
// Flags: --duration-ms --runs --max-threads --oversubscribe --csv
//        --locks (default 10) --lock=<name>[,...] (factory algorithms
//        via the runtime AnyLock path instead of the figure roster)
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hemlock;
  using namespace hemlock::bench;
  Options opts(argc, argv);
  const auto args = parse_figure_args(opts);
  const auto nlocks =
      static_cast<std::uint32_t>(opts.get_int("locks", 10));
  reject_unknown(opts);

  std::cout << "=== Figure 9: Multi-waiting (leader holds " << nlocks
            << " locks) ===\n"
            << host_banner() << "\n"
            << "duration=" << args.duration_ms << "ms runs=" << args.runs
            << "\nworst-case waiters per location: CLH/MCS 1, Ticket T-1, "
               "Hemlock min(T-1, N-1)\n\n";

  const auto sweep = figure_thread_sweep(args.max_threads);
  Table table(figure_lock_headers(args));

  for (const std::uint32_t t : sweep) {
    if (t < 2) continue;  // need a leader and at least one non-leader
    MultiWaitConfig cfg;
    cfg.threads = t;
    cfg.num_locks = nlocks;
    cfg.duration_ms = args.duration_ms;
    std::vector<std::string> row{std::to_string(t)};
    if (args.locks.empty()) {
      for_each_lock_type<PaperFigureLockTags>([&](auto tag) {
        using L = typename decltype(tag)::type;
        row.push_back(Table::fmt(multiwait_median<L>(cfg, args.runs), 4));
      });
    } else {
      for (const auto& name : args.locks) {
        row.push_back(guarded_cell(name, t, [&] {
          return Table::fmt(multiwait_median_named(name, cfg, args.runs), 4);
        }));
      }
    }
    table.add_row(std::move(row));
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(Y values: leader throughput, M steps/sec — one step = "
               "acquire all locks ascending + release descending.)\n";
  return 0;
}
