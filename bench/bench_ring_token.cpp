// bench_ring_token — the §5.5 token-ring validation of CTR.
//
// Paper: "We can show similar benefits from CTR with a simple program
// where a set of concurrent threads are configured in a ring, and
// circulate a single token. A thread waits for its mailbox to become
// non-zero, clears the mailbox, and deposits the token in its
// successor's mailbox. Using CAS, SWAP or Fetch-and-Add to busy-wait
// improves the circulation rate as compared to the naive form which
// uses loads."
//
// Flags: --threads (ring size, default 8) --duration-ms --runs --csv
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "harness/mutexbench.hpp"  // host_banner
#include "harness/options.hpp"
#include "harness/table.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/pause.hpp"
#include "runtime/timing.hpp"
#include "runtime/topology.hpp"
#include "stats/summary.hpp"

namespace {

using namespace hemlock;

enum class WaitKind { kLoad, kCas, kSwap, kFaa };

const char* wait_name(WaitKind k) {
  switch (k) {
    case WaitKind::kLoad: return "load (naive)";
    case WaitKind::kCas: return "CAS";
    case WaitKind::kSwap: return "SWAP";
    case WaitKind::kFaa: return "FAA";
  }
  return "?";
}

/// Wait until the mailbox is non-zero and clear it, with the selected
/// polling primitive; returns the observed token.
std::uint64_t take(std::atomic<std::uint64_t>& box, WaitKind kind,
                   std::atomic<bool>& stop) {
  for (;;) {
    if (stop.load(std::memory_order_relaxed)) return 0;
    switch (kind) {
      case WaitKind::kLoad: {
        const std::uint64_t v = box.load(std::memory_order_acquire);
        if (v != 0) {
          box.store(0, std::memory_order_release);  // S->M upgrade
          return v;
        }
        break;
      }
      case WaitKind::kCas: {
        std::uint64_t e = 1;
        if (box.compare_exchange_weak(e, 0, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
          return 1;
        }
        break;
      }
      case WaitKind::kSwap: {
        const std::uint64_t v = box.exchange(0, std::memory_order_acq_rel);
        if (v != 0) return v;
        break;
      }
      case WaitKind::kFaa: {
        if (box.fetch_add(0, std::memory_order_acquire) != 0) {
          box.store(0, std::memory_order_release);  // line already in M
          return 1;
        }
        break;
      }
    }
    cpu_relax();
  }
}

double run_ring(WaitKind kind, std::uint32_t threads,
                std::int64_t duration_ms) {
  struct Shared {
    std::vector<CacheAligned<std::atomic<std::uint64_t>>> boxes;
    CacheAligned<std::atomic<bool>> stop{false};
    SpinBarrier barrier;
    Shared(std::uint32_t n, std::uint32_t parties)
        : boxes(n), barrier(parties) {}
  };
  auto shared = std::make_unique<Shared>(threads, threads + 1);

  std::vector<std::uint64_t> laps(threads, 0);
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& my_box = shared->boxes[t].value;
      auto& next_box = shared->boxes[(t + 1) % threads].value;
      std::uint64_t count = 0;
      shared->barrier.arrive_and_wait();
      if (t == 0) next_box.store(1, std::memory_order_release);  // inject
      while (!shared->stop.value.load(std::memory_order_relaxed)) {
        if (take(my_box, kind, shared->stop.value) == 0) break;
        next_box.store(1, std::memory_order_release);
        ++count;
      }
      laps[t] = count;
      shared->barrier.arrive_and_wait();
    });
  }
  shared->barrier.arrive_and_wait();
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  shared->stop.value.store(true, std::memory_order_relaxed);
  shared->barrier.arrive_and_wait();
  const std::int64_t elapsed = timer.elapsed_ns();
  for (auto& w : workers) w.join();

  std::uint64_t hops = 0;
  for (auto l : laps) hops += l;
  return ops_per_sec(hops, elapsed) / 1e6;  // M hops/sec
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto threads = static_cast<std::uint32_t>(opts.get_int(
      "threads", std::min<std::int64_t>(8, topology().logical_cpus)));
  const auto duration_ms = opts.get_int("duration-ms", 300);
  const int runs = static_cast<int>(opts.get_int("runs", 3));
  const bool csv = opts.has("csv");
  // Tolerate the common figure-bench flags from driver scripts.
  (void)opts.get_int("max-threads", 0);
  (void)opts.has("oversubscribe");
  if (!opts.unconsumed().empty()) {
    std::cerr << "unknown option(s)\n";
    return 2;
  }

  std::cout << "=== §5.5 token ring: busy-wait primitive vs circulation "
               "rate ===\n"
            << host_banner() << "\n"
            << "ring=" << threads << " threads, duration=" << duration_ms
            << "ms, median of " << runs << "\n\n";

  Table table({"waiting primitive", "M hops/sec"});
  for (const WaitKind k :
       {WaitKind::kLoad, WaitKind::kCas, WaitKind::kSwap, WaitKind::kFaa}) {
    Summary s;
    for (int r = 0; r < runs; ++r) {
      s.add(run_ring(k, threads, duration_ms));
    }
    table.add_row({wait_name(k), Table::fmt(s.median())});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(paper: RMW-based waiting improves the circulation rate "
               "over the naive load form.)\n";
  return 0;
}
