// bench_any_lock_overhead — measures the type-erasure tax.
//
// AnyLock promises "one indirect call of overhead" on the uncontended
// path (api/any_lock.hpp). This bench measures it instead of assuming
// it: for every algorithm in the factory roster it times uncontended
// acquire/release pairs (the §5.1 T=1 latency regime) through the
// direct template — the compiler sees the concrete type, can inline
// everything — through AnyLock's static-vtable dispatch, and through
// AnyLock with a *named telemetry handle* (stats/telemetry.hpp), so
// the telemetry hooks' uncontended cost is a measured number, not a
// claim. Expected: a few ns of erasure tax, flat across algorithms,
// and a telemetry tax within noise (the hooks are two thread-local
// relaxed increments plus a 1-in-64 sampled clock pair).
//
// Flags: --iters (pairs per measurement, default 2000000)
//        --runs  (median-of-N, default 3)  --csv
//        --json=<path>    hemlock-bench-v1 trajectory (unit
//                         pairs_per_sec; series <lock>@direct,
//                         <lock>@anylock, <lock>@anylock-telemetry)
//        --max-tax-pct=<p>  exit non-zero when the median telemetry
//                         tax across the roster exceeds p percent of
//                         the anylock baseline (CI perf-smoke's gate)
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/timing.hpp"
#include "stats/telemetry.hpp"

namespace {

using namespace hemlock;

/// ns per uncontended lock()+unlock() pair over `iters` pairs.
template <typename L, typename... Args>
double direct_pair_ns(std::uint64_t iters, const Args&... args) {
  CacheAligned<L> lock(args...);
  Timer timer;
  for (std::uint64_t i = 0; i < iters; ++i) {
    lock.value.lock();
    lock.value.unlock();
  }
  return static_cast<double>(timer.elapsed_ns()) /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto iters =
      static_cast<std::uint64_t>(opts.get_int("iters", 2'000'000));
  const int runs = static_cast<int>(opts.get_int("runs", 3));
  const bool csv = opts.has("csv");
  const std::string json_path = opts.get_string("json", "");
  const double max_tax_pct =
      static_cast<double>(opts.get_int("max-tax-pct", -1));
  bench::reject_unknown(opts);

  std::cout << "=== AnyLock type-erasure tax: uncontended acquire/release "
               "===\n"
            << host_banner() << "\n"
            << "iters=" << iters << " runs=" << runs
            << " (median); single thread — the §5.1 T=1 latency regime\n\n";

  Table table({"lock", "direct ns/pair", "anylock ns/pair", "erasure ns",
               "telemetry ns/pair", "tm tax ns"});

  bench::BenchSeries series;
  series.threads.push_back(1);
  std::vector<std::optional<double>> row;
  std::vector<double> tax_pcts;

  for_each_lock_type<AllLockTags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    const char* name = lock_traits<L>::name;

    Summary direct;
    for (int r = 0; r < runs; ++r) direct.add(direct_pair_ns<L>(iters));

    Summary erased;
    const LockVTable* vt = find_lock(name);
    for (int r = 0; r < runs; ++r) {
      erased.add(direct_pair_ns<AnyLock>(iters, *vt));
    }

    // Same dispatch, plus the telemetry hooks behind a named handle
    // (one shared name: the probe releases it between measurements,
    // so the 32-slot handle table never fills across the roster).
    Summary telem;
    for (int r = 0; r < runs; ++r) {
      telem.add(direct_pair_ns<AnyLock>(iters, *vt,
                                        std::string_view("overhead-probe")));
    }

    const double d = direct.median();
    const double e = erased.median();
    const double t = telem.median();
    table.add_row({name, Table::fmt(d, 2), Table::fmt(e, 2),
                   Table::fmt(e - d, 2), Table::fmt(t, 2),
                   Table::fmt(t - e, 2)});
    series.locks.push_back(std::string(name) + "@direct");
    series.locks.push_back(std::string(name) + "@anylock");
    series.locks.push_back(std::string(name) + "@anylock-telemetry");
    row.emplace_back(1e9 / d);
    row.emplace_back(1e9 / e);
    row.emplace_back(1e9 / t);
    tax_pcts.push_back((t - e) / e * 100.0);
  });
  series.values.push_back(std::move(row));

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(direct = concrete template, fully inlinable; anylock = "
               "static-vtable dispatch; telemetry = anylock with a named "
               "per-lock metrics handle. The erasure tax buys runtime "
               "algorithm selection; the telemetry tax buys the per-lock "
               "counters of docs/OBSERVABILITY.md.)\n";

  if (!json_path.empty()) {
    if (!bench::write_bench_json(json_path, "any_lock_overhead",
                                 "pairs_per_sec", 0, runs, series)) {
      return 1;
    }
    std::cout << "(JSON trajectory written to " << json_path << ")\n";
  }

  if (max_tax_pct >= 0 && !tax_pcts.empty()) {
    // Gate on the roster-wide median: single-lock numbers at ~10 ns
    // per pair are noisy on shared CI hosts, the median is stable.
    std::nth_element(tax_pcts.begin(), tax_pcts.begin() + tax_pcts.size() / 2,
                     tax_pcts.end());
    const double med = tax_pcts[tax_pcts.size() / 2];
    std::printf("\nmedian telemetry tax: %.1f%% (gate: %.0f%%)\n", med,
                max_tax_pct);
    if (med > max_tax_pct) {
      std::fprintf(stderr, "telemetry tax gate FAILED\n");
      return 1;
    }
  }
  return 0;
}
