// bench_any_lock_overhead — measures the type-erasure tax.
//
// AnyLock promises "one indirect call of overhead" on the uncontended
// path (api/any_lock.hpp). This bench measures it instead of assuming
// it: for every algorithm in the factory roster it times uncontended
// acquire/release pairs (the §5.1 T=1 latency regime) through the
// direct template — the compiler sees the concrete type, can inline
// everything — and through AnyLock's static-vtable dispatch, and
// reports both plus the delta. Expected: a few ns of tax, flat across
// algorithms (it is the same two indirect calls regardless of what
// they dispatch to).
//
// Flags: --iters (pairs per measurement, default 2000000)
//        --runs  (median-of-N, default 3)  --csv
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/timing.hpp"

namespace {

using namespace hemlock;

/// ns per uncontended lock()+unlock() pair over `iters` pairs.
template <typename L, typename... Args>
double direct_pair_ns(std::uint64_t iters, const Args&... args) {
  CacheAligned<L> lock(args...);
  Timer timer;
  for (std::uint64_t i = 0; i < iters; ++i) {
    lock.value.lock();
    lock.value.unlock();
  }
  return static_cast<double>(timer.elapsed_ns()) /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto iters =
      static_cast<std::uint64_t>(opts.get_int("iters", 2'000'000));
  const int runs = static_cast<int>(opts.get_int("runs", 3));
  const bool csv = opts.has("csv");
  bench::reject_unknown(opts);

  std::cout << "=== AnyLock type-erasure tax: uncontended acquire/release "
               "===\n"
            << host_banner() << "\n"
            << "iters=" << iters << " runs=" << runs
            << " (median); single thread — the §5.1 T=1 latency regime\n\n";

  Table table({"lock", "direct ns/pair", "anylock ns/pair", "tax ns",
               "ratio"});

  for_each_lock_type<AllLockTags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    const char* name = lock_traits<L>::name;

    Summary direct;
    for (int r = 0; r < runs; ++r) direct.add(direct_pair_ns<L>(iters));

    Summary erased;
    const LockVTable* vt = find_lock(name);
    for (int r = 0; r < runs; ++r) {
      erased.add(direct_pair_ns<AnyLock>(iters, *vt));
    }

    const double d = direct.median();
    const double e = erased.median();
    table.add_row({name, Table::fmt(d, 2), Table::fmt(e, 2),
                   Table::fmt(e - d, 2), Table::fmt(e / d, 2)});
  });

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(direct = concrete template, fully inlinable; anylock = "
               "static-vtable dispatch. The tax buys runtime algorithm "
               "selection by name.)\n";
  return 0;
}
